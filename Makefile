GO ?= go

.PHONY: verify vet race faultsmoke bench ci

# Tier-1: the gate every change must pass (see ROADMAP.md).
verify:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Tier-2: static analysis + race detector over the full suite.
race: vet
	$(GO) test -race ./...

# Fault-injection smoke: seeded dropped-fill run must recover, validate
# against the golden model, and replay byte-for-byte from its seed.
faultsmoke:
	$(GO) test -run TestFaultSmoke ./internal/check

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

ci: verify race faultsmoke
