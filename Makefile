GO ?= go

.PHONY: verify vet fmt golden race faultsmoke soak servesmoke slosmoke approx-check fuzz-smoke fuzz litmus execdiff bench bench-json bench-json-0 bench-diff ci

# Tier-1: the gate every change must pass (see ROADMAP.md), plus the
# static gates and the race detector over the parallel sweep engine.
# The exp determinism/golden tests pin 8-worker runners internally, so
# the race run exercises real cross-worker interleavings.
verify: vet fmt
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/exp/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Regenerate the golden snapshots after an intentional metric change,
# then inspect the diff before committing.
golden:
	$(GO) test ./internal/exp -run TestGoldenOutputs -update

# Tier-2: static analysis + race detector over the full suite.
race: vet
	$(GO) test -race ./...

# Fault-injection smoke: seeded dropped-fill run must recover, validate
# against the golden model, and replay byte-for-byte from its seed.
faultsmoke:
	$(GO) test -run TestFaultSmoke ./internal/check

# Fault-matrix soak: the widened injector matrix (every fault class ×
# several seeds × three DSAs) driven through the resilient sweep engine
# under the race detector. Plain `go test` runs the short matrix; this
# target is the verify-tier full version. See internal/exp/runner/README.md.
soak:
	XCACHE_SOAK=full $(GO) test -race -run TestFaultMatrixSoak -count=1 -v ./internal/exp/runner

# Serve smoke: the multi-tenant service layer under the race detector.
# The serve loop drives Parallelize'd controller shards over one shared
# DRAM mux — the first genuinely concurrent shared-state path beyond the
# sweep worker pool — so the race detector must gate it in ci. Covers
# the unloaded smoke, the serial-vs-parallel determinism cross-check and
# the full chaos soak (seeded faults, byte-stable stats).
servesmoke:
	$(GO) test -race -count=1 -run 'TestSmoke|TestDeterminism|TestChaosSoak' ./internal/serve

# SLO smoke: the graceful-degradation tier under the race detector —
# the AIMD governor's convergence proofs (tight budget throttles and
# sheds, slack budget never does, factor recovers off the floor after
# pressure lifts) plus the channel-outage acceptance proof (seeded
# outage at 1.5x load: conservation holds, the mux quarantines and
# re-steers, SLO attainment recovers to its pre-fault level within
# bounded epochs, and the report is byte-stable serial vs 8 workers)
# and the multi-channel knee shift.
slosmoke:
	$(GO) test -race -count=1 -run 'TestSLOGovernorThrottles|TestSLOSlackBudget|TestSLOGovernorRecovers|TestChannelOutageRecovery|TestMultiChannelKnee|TestMuxFailover' ./internal/serve

# Approx-tier validation: the internal/approx unit+property tests plus
# the scale-25 approx-vs-exact harness (TestApproxErrorBounds fails if
# any approximate cell exceeds its declared error bound or the work
# reduction drops below 10x) and the cross-worker byte-determinism
# check. The exact cells come from the same content-addressed run cache
# the golden suite populates, so a warm cache finishes in seconds.
approx-check:
	$(GO) test -count=1 ./internal/approx
	$(GO) test -count=1 -run 'TestApproxErrorBounds|TestApproxDeterminism' ./internal/exp

# Fuzz smoke: replay the checked-in seed corpora (testdata/fuzz/) through
# every fuzz target deterministically — no -fuzz randomness, so it is a
# stable CI tier (~seconds). FuzzDecode/FuzzAssemble pin the ISA layer;
# FuzzVerify pins accepts-implies-no-structural-trap on a live
# controller; FuzzParseTenantSpec pins the xcache-serve tenant grammar
# (accept implies valid, canonical-format round-trip);
# FuzzIntervalPlan/FuzzReplayTags pin the approx tier's
# reject-degenerate-plans-with-typed-errors contract; FuzzCoherence pins
# the coherent hierarchy against its flat single-port oracle (including
# the committed regression input for the grant/back-inval race).
fuzz-smoke:
	$(GO) test -run Fuzz -count=1 ./internal/isa ./internal/ctrl ./internal/serve ./internal/approx ./internal/hier

# Open-ended fuzzing (not part of ci): 30s per target, promote anything
# interesting from the build cache into testdata/fuzz/ before committing.
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime 30s ./internal/isa
	$(GO) test -fuzz FuzzAssemble -fuzztime 30s ./internal/isa
	$(GO) test -fuzz FuzzVerify -fuzztime 30s ./internal/ctrl
	$(GO) test -fuzz FuzzExecDiff -fuzztime 30s ./internal/ctrl
	$(GO) test -fuzz FuzzParseTenantSpec -fuzztime 30s ./internal/serve
	$(GO) test -fuzz FuzzIntervalPlan -fuzztime 30s ./internal/approx
	$(GO) test -fuzz FuzzReplayTags -fuzztime 30s ./internal/approx
	$(GO) test -fuzz FuzzCoherence -fuzztime 30s ./internal/hier

# Coherence litmus + protocol suite, race-gated: the golden-pinned litmus
# outcomes (store buffering, message passing, load buffering, write
# serialization, upgrade, inclusion), the MESI-lite unit tests (sharing,
# invalidation, eviction writeback, merge serialization, fault retry and
# the liveness trap), and the coh-share figure's golden + shape checks.
litmus:
	$(GO) test -race -count=1 -run 'TestLitmus|TestCoh' ./internal/hier
	$(GO) test -race -count=1 -run 'TestCohShare' ./internal/exp

# Executor equivalence, race-gated: the per-cycle lockstep differential
# harness and trap-parity matrix over both microcode executors
# (internal/ctrl), plus the end-to-end result-equivalence sweep across
# every DSA's real walker program (internal/exp/runner).
execdiff:
	$(GO) test -race -count=1 -run 'TestExecDiff|TestTrapMatrix|TestTrapMalformedBinaryRegression|TestMakeRoom|TestAllocRetry' ./internal/ctrl
	$(GO) test -race -count=1 -run TestExecPathEquivalence ./internal/exp/runner

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# Perf baseline: regenerate the committed BENCH_1.json — the full
# deterministic figure set plus the hotloop executor microbenchmark.
# The deterministic figures are seed-pinned and worker-count-invariant
# (byte-identical to BENCH_0.json's); the hotloop figure carries
# wall-clock ns-per-action and the fast-path speedup, which are
# machine-dependent by nature.
bench-json:
	XCACHE_BENCH_WORKERS=8 $(GO) run ./cmd/xcache-bench -scale 25 -hotloop -json BENCH_1.json >/dev/null

# The original perf baseline, without the wall-clock hotloop figure:
# regenerating it on an unchanged tree must be byte-identical to the
# checked-in copy, which is the result-invariance proof speed PRs rely
# on (ROADMAP item 1).
bench-json-0:
	XCACHE_BENCH_WORKERS=8 $(GO) run ./cmd/xcache-bench -scale 25 -json BENCH_0.json >/dev/null

# Perf gate: re-run the evaluation and compare against the committed
# BENCH_1.json. Deterministic figures must match exactly; the hotloop
# fast-path speedup may not regress more than 5%. Fails (exit 1) on
# either violation.
bench-diff:
	XCACHE_BENCH_WORKERS=8 $(GO) run ./cmd/xcache-bench -scale 25 -hotloop -bench-diff BENCH_1.json >/dev/null

ci: verify race faultsmoke soak servesmoke slosmoke approx-check fuzz-smoke litmus execdiff
