GO ?= go

.PHONY: verify vet fmt golden race faultsmoke soak bench ci

# Tier-1: the gate every change must pass (see ROADMAP.md), plus the
# static gates and the race detector over the parallel sweep engine.
# The exp determinism/golden tests pin 8-worker runners internally, so
# the race run exercises real cross-worker interleavings.
verify: vet fmt
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/exp/...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Regenerate the golden snapshots after an intentional metric change,
# then inspect the diff before committing.
golden:
	$(GO) test ./internal/exp -run TestGoldenOutputs -update

# Tier-2: static analysis + race detector over the full suite.
race: vet
	$(GO) test -race ./...

# Fault-injection smoke: seeded dropped-fill run must recover, validate
# against the golden model, and replay byte-for-byte from its seed.
faultsmoke:
	$(GO) test -run TestFaultSmoke ./internal/check

# Fault-matrix soak: the widened injector matrix (every fault class ×
# several seeds × three DSAs) driven through the resilient sweep engine
# under the race detector. Plain `go test` runs the short matrix; this
# target is the verify-tier full version. See internal/exp/runner/README.md.
soak:
	XCACHE_SOAK=full $(GO) test -race -run TestFaultMatrixSoak -count=1 -v ./internal/exp/runner

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

ci: verify race faultsmoke soak
