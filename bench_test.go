// Package xcache's top-level benchmark suite regenerates every table and
// figure of the paper's evaluation (§8) as testing.B benchmarks, one per
// artifact, reporting the headline quantities as custom benchmark metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The workload scale divisor defaults to 25 (seconds per figure); set
// XCACHE_BENCH_SCALE=1 to run the published workload sizes and
// XCACHE_BENCH_WORKERS to pin the sweep-engine worker count (default
// GOMAXPROCS; results are identical for any value).
package xcache

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"xcache/internal/dsa/widx"
	"xcache/internal/exp"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
	"xcache/internal/program"
)

func benchEnvInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return def
}

func benchScale() int { return benchEnvInt("XCACHE_BENCH_SCALE", 25) }

var (
	runnerOnce  sync.Once
	benchRunner *runner.Runner

	sweepOnce sync.Once
	sweepVal  *exp.Sweep
	sweepErr  error
)

// benchRun returns the process-wide runner: one content-addressed run
// cache shared by every benchmark, so points repeated across figures
// simulate once.
func benchRun() *runner.Runner {
	runnerOnce.Do(func() {
		benchRunner = runner.New(benchEnvInt("XCACHE_BENCH_WORKERS", 0))
	})
	return benchRunner
}

// sweep runs the shared Fig 14 sweep once; a sweep failure is surfaced
// through b.Fatal by every benchmark that depends on it, not just the
// first caller.
func sweep(b *testing.B) *exp.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = exp.RunSweep(benchRun(), benchScale())
	})
	if sweepErr != nil {
		b.Fatalf("sweep failed: %v", sweepErr)
	}
	return sweepVal
}

func report(b *testing.B, out *exp.Out) {
	b.Helper()
	for k, v := range out.Metrics {
		b.ReportMetric(v, k)
	}
	if testing.Verbose() {
		fmt.Println(out.Table.String())
	}
}

// TestVerifierCostIsLoadTime guards the performance contract of the
// static microcode verifier: it runs when a program is loaded into a
// controller, never on the execution path. A full Widx run covers tens of
// thousands of controller cycles; if Verify leaked into step() or Tick(),
// the call counter would scale with cycles instead of with program loads
// (RunXCache loads twice: the placeholder-shift program at build, then
// the workload-specific recompile).
func TestVerifierCostIsLoadTime(t *testing.T) {
	before := program.VerifyCalls()
	res, err := widx.RunXCache(widx.DefaultWork(hashidx.TPCH()[0], 400), widx.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < 1000 {
		t.Fatalf("workload too small to be meaningful: %d cycles", res.Cycles)
	}
	if delta := program.VerifyCalls() - before; delta > 2 {
		t.Fatalf("Verify ran %d times for one run over %d cycles — it must be load-time only (2 loads expected)", delta, res.Cycles)
	}
}

// BenchmarkFig04LoadToUse regenerates Fig 4: load-to-use latency of
// meta-tags vs address tags across the five DSAs.
func BenchmarkFig04LoadToUse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig4(sweep(b)))
	}
}

// BenchmarkFig07Occupancy regenerates Fig 7: controller occupancy with
// coroutines vs blocking threads across off-chip fractions.
func BenchmarkFig07Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.Fig7(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkFig14Speedup regenerates Fig 14: X-Cache vs hardwired DSAs and
// vs address-based caches, plus the memory-access reduction.
func BenchmarkFig14Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig14(sweep(b)))
	}
}

// BenchmarkFig15Power regenerates Fig 15: total on-chip power, X-Cache vs
// address-based caches.
func BenchmarkFig15Power(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig15(sweep(b)))
	}
}

// BenchmarkFig16Breakdown regenerates Fig 16: the X-Cache power breakdown
// (data RAM, meta-tags, routine RAM, controller).
func BenchmarkFig16Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig16(sweep(b)))
	}
}

// BenchmarkFig17CapacitySweep regenerates Fig 17: X-Cache vs Widx runtime
// as the fraction of the index held on chip grows (TPC-H-22).
func BenchmarkFig17CapacitySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.Fig17(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkFig18ParallelismSweep regenerates Fig 18: sweeping #Active and
// #Exe for GraphPulse and Widx.
func BenchmarkFig18ParallelismSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.Fig18(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkFig19FPGASynthesis regenerates Fig 19: FPGA utilization of the
// generated controller per design point.
func BenchmarkFig19FPGASynthesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig19())
	}
}

// BenchmarkFig20ASICLayout regenerates Fig 20: 45 nm controller area.
func BenchmarkFig20ASICLayout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Fig20())
	}
}

// BenchmarkAblationProgrammability measures the cost of the programmable
// controller against a hardwired FSM with identical structures.
func BenchmarkAblationProgrammability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.AblationProgrammability(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkAblationDesignChoices measures the §3 design decisions
// (decoupled preload distance, coroutines vs blocking threads).
func BenchmarkAblationDesignChoices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.AblationDesignChoices(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkExtensionBTree runs the beyond-the-paper B+-tree walker (the
// sixth DSA family, composed as §6 MXA).
func BenchmarkExtensionBTree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.ExtensionBTree(benchRun(), benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report(b, out)
	}
}

// BenchmarkTable1Taxonomy prints the storage-idiom comparison matrix.
func BenchmarkTable1Taxonomy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table1())
	}
}

// BenchmarkTable2Features prints the per-DSA feature matrix.
func BenchmarkTable2Features(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table2())
	}
}

// BenchmarkTable3DesignPoints prints the per-DSA generator parameters.
func BenchmarkTable3DesignPoints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table3())
	}
}

// BenchmarkTable4EnergyParams prints the energy model constants.
func BenchmarkTable4EnergyParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		report(b, exp.Table4())
	}
}
