// Command xcache-asm is the microcode tool of the X-Cache toolflow: it
// compiles walker specifications to routine tables + microcode,
// assembles/disassembles raw routines, and statically verifies programs
// against a controller configuration.
//
// Usage:
//
//	xcache-asm -spec widx                # dump a built-in walker's compiled image
//	xcache-asm -spec rowfetch -o rf.xbin # emit the loadable microcode binary
//	xcache-asm -in rf.xbin               # disassemble a microcode binary
//	xcache-asm -in rf.xbin -verify       # statically verify a binary
//	xcache-asm -spec widx -verify        # compile + verify a built-in spec
//	xcache-asm -file walker.xasm         # assemble one routine from a file
//	echo 'allocm
//	halt Valid' | xcache-asm             # assemble a routine from stdin
//
// On failure the process emits a structured JSON error record on stderr
// (mirroring xcache-sim's convention) and exits with a kind-specific
// code so toolflow drivers can triage without parsing prose:
//
//	0  success
//	1  usage / IO error
//	2  assembly error (bad mnemonic, operand, label, immediate range)
//	3  compile error (malformed spec, bad transition table)
//	4  malformed or unencodable microcode binary
//	6  program rejected by the static verifier (same code as xcache-sim)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/isa"
	"xcache/internal/program"
)

func main() {
	spec := flag.String("spec", "", "built-in walker: widx | dasx | rowfetch | eventstore | btree")
	file := flag.String("file", "", "assemble a single routine from this file (default stdin)")
	shift := flag.Uint("shift", 56, "hash shift for widx/dasx specs (64 - log2 buckets)")
	out := flag.String("o", "", "write the compiled microcode binary to this file")
	in := flag.String("in", "", "load and dump a microcode binary")
	verify := flag.Bool("verify", false, "statically verify the program (with -spec or -in)")
	xregs := flag.Int("xregs", 0, "verifier: X-register file size (default 16)")
	fillWords := flag.Int("fillwords", 0, "verifier: max words per fill (default 8)")
	flag.Parse()

	if *verify && *spec == "" && *in == "" {
		fail("usage", 1, errors.New("-verify needs -spec or -in"))
	}
	vcfg := program.DefaultVerifyConfig()
	if *xregs > 0 {
		vcfg.NumXRegs = *xregs
	}
	if *fillWords > 0 {
		vcfg.MaxFillWords = *fillWords
	}

	if *in != "" {
		loadBinary(*in, *verify, vcfg)
		return
	}
	if *spec != "" {
		dumpSpec(*spec, *shift, *out, *verify, vcfg)
		return
	}
	assembleRoutine(*file)
}

// asmFailure is the machine-readable error record emitted on stderr,
// mirroring xcache-sim's simFailure convention.
type asmFailure struct {
	Error string `json:"error"`
	Kind  string `json:"kind"` // usage | assemble | compile | binary | verify
	// Verifier rejections carry their location so drivers can point at
	// the offending routine without re-parsing the message.
	Program string `json:"program,omitempty"`
	State   string `json:"state,omitempty"`
	Event   string `json:"event,omitempty"`
	PC      int    `json:"pc,omitempty"`
}

// fail emits the structured record and terminates with the kind's code.
func fail(kind string, code int, err error) {
	f := asmFailure{Error: err.Error(), Kind: kind}
	var ve *program.VerifyError
	if errors.As(err, &ve) {
		f.Kind = "verify"
		code = 6
		f.Program, f.State, f.Event, f.PC = ve.Program, ve.State, ve.Event, ve.PC
	}
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(f); encErr != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
	}
	os.Exit(code)
}

func loadBinary(path string, verify bool, vcfg program.VerifyConfig) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("usage", 1, err)
	}
	var p program.Program
	if err := p.UnmarshalBinary(data); err != nil {
		fail("binary", 4, err)
	}
	if verify {
		if err := program.Verify(&p, vcfg); err != nil {
			fail("verify", 6, err)
		}
		fmt.Printf("verify OK: %s (%d words, %d states, %d events)\n",
			p.Name, len(p.Code), p.NumStates(), p.NumEvents())
		return
	}
	fmt.Print(p.Dump())
}

func dumpSpec(name string, shift uint, out string, verify bool, vcfg program.VerifyConfig) {
	var s program.Spec
	switch name {
	case "widx":
		s = widx.Spec(shift)
	case "dasx":
		s = dasx.Spec(shift)
	case "rowfetch", "sparch", "gamma":
		s = spgemm.Spec()
	case "eventstore", "graphpulse":
		s = graphpulse.Spec()
	case "btree", "btreeidx":
		s = btreeidx.Spec()
	default:
		fail("usage", 1, fmt.Errorf("unknown spec %q", name))
	}
	p, err := s.Compile()
	if err != nil {
		fail("compile", 3, err)
	}
	if verify {
		if err := program.Verify(p, vcfg); err != nil {
			fail("verify", 6, err)
		}
		fmt.Printf("verify OK: %s (%d words, %d states, %d events)\n",
			p.Name, len(p.Code), p.NumStates(), p.NumEvents())
		if out == "" {
			return
		}
	}
	if out != "" {
		data, err := p.MarshalBinary()
		if err != nil {
			fail("binary", 4, err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			fail("usage", 1, err)
		}
		fmt.Printf("wrote %d-byte microcode binary to %s\n", len(data), out)
		return
	}
	fmt.Print(p.Dump())
	fmt.Println("\nencoded microcode:")
	for pc, in := range p.Code {
		word, err := in.Encode()
		if err != nil {
			fail("binary", 4, fmt.Errorf("code[%d]: %w", pc, err))
		}
		fmt.Printf("  %3d: %08x  %s\n", pc, word, in.String())
	}
}

func assembleRoutine(file string) {
	var src []byte
	var err error
	if file == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		fail("usage", 1, err)
	}
	// Routines assembled standalone see the built-in states/statuses.
	syms := map[string]int64{
		"Valid": program.StateValid, "Default": program.StateInvalid,
		"OK": program.StatusOK, "NOTFOUND": program.StatusNotFound,
	}
	code, err := isa.Assemble(string(src), syms)
	if err != nil {
		fail("assemble", 2, err)
	}
	for pc, in := range code {
		word, err := in.Encode()
		if err != nil {
			fail("assemble", 2, fmt.Errorf("pc %d: %w", pc, err))
		}
		fmt.Printf("%3d: %08x  %s\n", pc, word, in.String())
	}
}
