// Command xcache-asm is the microcode tool of the X-Cache toolflow: it
// compiles walker specifications to routine tables + microcode and
// assembles/disassembles raw routines.
//
// Usage:
//
//	xcache-asm -spec widx                # dump a built-in walker's compiled image
//	xcache-asm -spec rowfetch -o rf.xbin # emit the loadable microcode binary
//	xcache-asm -in rf.xbin               # disassemble a microcode binary
//	xcache-asm -file walker.xasm         # assemble one routine from a file
//	echo 'allocm
//	halt Valid' | xcache-asm             # assemble a routine from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/isa"
	"xcache/internal/program"
)

func main() {
	spec := flag.String("spec", "", "built-in walker: widx | dasx | rowfetch | eventstore")
	file := flag.String("file", "", "assemble a single routine from this file (default stdin)")
	shift := flag.Uint("shift", 56, "hash shift for widx/dasx specs (64 - log2 buckets)")
	out := flag.String("o", "", "write the compiled microcode binary to this file")
	in := flag.String("in", "", "load and dump a microcode binary")
	flag.Parse()

	if *in != "" {
		loadBinary(*in)
		return
	}
	if *spec != "" {
		dumpSpec(*spec, *shift, *out)
		return
	}
	assembleRoutine(*file)
}

func loadBinary(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
		os.Exit(1)
	}
	var p program.Program
	if err := p.UnmarshalBinary(data); err != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
		os.Exit(1)
	}
	fmt.Print(p.Dump())
}

func dumpSpec(name string, shift uint, out string) {
	var s program.Spec
	switch name {
	case "widx":
		s = widx.Spec(shift)
	case "dasx":
		s = dasx.Spec(shift)
	case "rowfetch", "sparch", "gamma":
		s = spgemm.Spec()
	case "eventstore", "graphpulse":
		s = graphpulse.Spec()
	default:
		fmt.Fprintf(os.Stderr, "xcache-asm: unknown spec %q\n", name)
		os.Exit(1)
	}
	p, err := s.Compile()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
		os.Exit(1)
	}
	if out != "" {
		data, err := p.MarshalBinary()
		if err == nil {
			err = os.WriteFile(out, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "xcache-asm:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d-byte microcode binary to %s\n", len(data), out)
		return
	}
	fmt.Print(p.Dump())
	fmt.Println("\nencoded microcode:")
	for pc, in := range p.Code {
		fmt.Printf("  %3d: %08x  %s\n", pc, in.Encode(), in.String())
	}
}

func assembleRoutine(file string) {
	var src []byte
	var err error
	if file == "" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
		os.Exit(1)
	}
	// Routines assembled standalone see the built-in states/statuses.
	syms := map[string]int64{
		"Valid": program.StateValid, "Default": program.StateInvalid,
		"OK": program.StatusOK, "NOTFOUND": program.StatusNotFound,
	}
	code, err := isa.Assemble(string(src), syms)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-asm:", err)
		os.Exit(1)
	}
	for pc, in := range code {
		fmt.Printf("%3d: %08x  %s\n", pc, in.Encode(), in.String())
	}
}
