// Command xcache-bench regenerates the paper's evaluation: every table
// and figure of §8, at a configurable workload scale.
//
// Usage:
//
//	xcache-bench [-scale N] [-parallel N] [-v] [-fig all|none|4,7,14,15,16,17,18,19,20,t1,t2,t3,t4,btree,ablation]
//	             [-approx] [-partial] [-checkpoint dir] [-retries N] [-backoff dur] [-spec-wall dur]
//	             [-hotloop] [-hotloop-exec both|interp|fast] [-bench-diff FILE]
//
// scale divides the published workload sizes (and cache capacities with
// them); -scale 1 runs the paper-scale configuration and takes several
// minutes. -parallel sets the sweep-engine worker count (default
// $XCACHE_BENCH_WORKERS, else GOMAXPROCS); output is byte-identical for
// every worker count. -v prints the runner statistics (runs
// launched/cached/failed, per-run cycles and wall time, peak workers) on
// stderr.
//
// -approx additionally emits the approximate evaluation tier
// (internal/approx): the tag-replay and sampled-interval variants of the
// cacheDiv/geometry sweeps, with every cell annotated exact, tags or
// interval, plus the approx_error validation table comparing each
// approximate cell against the exact simulator under the tier's declared
// error bounds.
//
// -hotloop appends the controller hot-loop microbenchmark (figure id
// "hotloop"): the ALU-dense spin routine timed on the selected executor
// backends, reporting ns-per-action and the pre-decoded fast path's
// speedup over the reference interpreter. Wall-clock metrics are
// machine-dependent; the deterministic figures stay byte-reproducible.
// -fig none selects no standard figures, so `-fig none -hotloop` runs
// the microbenchmark alone.
//
// -bench-diff FILE compares the run against a committed baseline: every
// deterministic figure must match the baseline exactly, and the hotloop
// speedup may not regress more than 5% below the baseline's. A
// violation exits 1 — this is the `make bench-diff` perf gate.
//
// -json FILE additionally writes every selected figure's metrics, notes
// and table rows as one machine-readable JSON document. Everything in
// the file is seed-pinned and worker-count-invariant, so regenerating it
// with the same flags is byte-identical — `make bench-json` maintains
// the committed BENCH_0.json perf baseline this way. Wall time is
// deliberately reported on stderr only, to keep the file reproducible.
//
// Resilience:
//
//	-checkpoint dir   journal completed runs to dir and resume from it;
//	                  an interrupted invocation re-run with the same flags
//	                  produces byte-identical output to an uninterrupted one
//	-retries N        retry transiently failing runs up to N times
//	-backoff dur      base backoff before a retry (doubles per attempt)
//	-spec-wall dur    per-run wall deadline; a runaway run becomes a typed
//	                  error instead of hanging the pool
//	-partial          don't abort on a failed cell: annotate it in the
//	                  affected tables/notes, keep going, and report the
//	                  failure summary on stderr (exit code stays 0 — the
//	                  degradation is explicit in the output)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"xcache/internal/exp"
	"xcache/internal/exp/runner"
)

// benchBaseline is the -json document: the deterministic slice of a
// bench run (metrics, notes, rendered rows — no wall times), so the
// committed BENCH_0.json stays byte-stable across regenerations.
type benchBaseline struct {
	Schema  string         `json:"schema"` // "xcache-bench/1"
	Scale   int            `json:"scale"`
	Workers int            `json:"workers"`
	Figures []figureResult `json:"figures"`
}

type figureResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title,omitempty"`
	Header  []string           `json:"header,omitempty"`
	Rows    [][]string         `json:"rows,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

// writeBaseline marshals the outs into path. Figures keep their emission
// order; metrics maps marshal with sorted keys, so the bytes are a pure
// function of the results.
func writeBaseline(path string, scale, workers int, outs []*exp.Out) error {
	doc := benchBaseline{Schema: "xcache-bench/1", Scale: scale, Workers: workers}
	for _, o := range outs {
		f := figureResult{ID: o.ID, Metrics: o.Metrics, Notes: o.Notes}
		if o.Table != nil {
			f.Title = o.Table.Title
			f.Header = o.Table.Header
			f.Rows = o.Table.Rows
		}
		doc.Figures = append(doc.Figures, f)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// defaultWorkers honors XCACHE_BENCH_WORKERS (the same pin the
// benchmark suite uses) so `make bench-json` can fix the worker count
// without per-invocation flags; results are identical for any value.
func defaultWorkers() int {
	if s := os.Getenv("XCACHE_BENCH_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

func main() {
	start := time.Now()
	scale := flag.Int("scale", 25, "workload scale divisor (1 = paper scale)")
	parallel := flag.Int("parallel", defaultWorkers(), "sweep-engine workers (results are identical for any value)")
	verbose := flag.Bool("v", false, "print runner statistics (launched/cached/failed, per-run wall time)")
	figs := flag.String("fig", "all", "comma-separated ids (4,7,14..20, t1..t4, btree, ablation) or 'all'")
	approxTier := flag.Bool("approx", false, "emit the approximate evaluation tier (tag replay + sampled intervals) with per-cell exact|tags|interval annotation and error bounds")
	partial := flag.Bool("partial", false, "annotate failed cells instead of aborting the run")
	checkpoint := flag.String("checkpoint", "", "journal completed runs to this directory and resume from it")
	retries := flag.Int("retries", 0, "retry transiently failing runs up to N times (deterministic backoff)")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "base retry backoff (doubles per attempt)")
	specWall := flag.Duration("spec-wall", 0, "per-run wall deadline (0 = none)")
	jsonPath := flag.String("json", "", "write a machine-readable (and byte-reproducible) result baseline to this file")
	hotloop := flag.Bool("hotloop", false, "append the controller hot-loop executor microbenchmark (figure id 'hotloop')")
	hotloopExec := flag.String("hotloop-exec", "both", "hotloop executor selection: both|interp|fast")
	benchDiff := flag.String("bench-diff", "", "compare against this baseline file: exact match for deterministic figures, 5% tolerance on the hotloop speedup; exit 1 on regression")
	flag.Parse()

	// validFigs is the closed set of -fig ids; anything else is a typo
	// worth an error, not a silently empty run.
	// "none" selects no standard figures (for -hotloop-only runs).
	validFigs := []string{"4", "7", "14", "15", "16", "17", "18", "19", "20",
		"t1", "t2", "t3", "t4", "btree", "ablation", "none"}
	want := map[string]bool{}
	if *figs != "all" {
		valid := map[string]bool{}
		for _, id := range validFigs {
			valid[id] = true
		}
		for _, f := range strings.Split(*figs, ",") {
			id := strings.TrimSpace(f)
			if !valid[id] {
				fmt.Fprintf(os.Stderr, "xcache-bench: unknown -fig id %q (valid ids: %s, or 'all')\n",
					id, strings.Join(validFigs, ", "))
				os.Exit(2)
			}
			want[id] = true
		}
	}
	sel := func(id string) bool { return *figs == "all" || want[id] }

	// One runner for the whole invocation: points shared between figures
	// (the sweep baselines reappear in Fig 7/17 and the ablations) are
	// simulated once and served from the content-addressed run cache.
	run, err := runner.NewFrom(runner.Config{
		Workers:       *parallel,
		Retry:         runner.Retry{Max: *retries, Backoff: *backoff},
		CheckpointDir: *checkpoint,
		SpecWall:      *specWall,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-bench:", err)
		os.Exit(1)
	}

	var outs []*exp.Out
	var degraded []string
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "xcache-bench:", err)
		os.Exit(1)
	}
	// tolerate runs a figure generator under the -partial policy: a
	// failure degrades to a stderr note and a summary line instead of
	// aborting the whole evaluation.
	tolerate := func(id string, f func() (*exp.Out, error)) {
		o, err := f()
		if err == nil {
			outs = append(outs, o)
			return
		}
		if !*partial {
			fail(err)
		}
		degraded = append(degraded, fmt.Sprintf("fig %s: %v", id, err))
		fmt.Fprintf(os.Stderr, "xcache-bench: fig %s degraded: %v\n", id, err)
	}

	if sel("t1") {
		outs = append(outs, exp.Table1())
	}
	if sel("t2") {
		outs = append(outs, exp.Table2())
	}
	if sel("t3") {
		outs = append(outs, exp.Table3())
	}
	if sel("t4") {
		outs = append(outs, exp.Table4())
	}

	needSweep := sel("4") || sel("14") || sel("15") || sel("16")
	var sw *exp.Sweep
	if needSweep {
		fmt.Fprintf(os.Stderr, "running full DSA sweep at scale %d (%d workers)...\n", *scale, run.Workers())
		var err error
		if *partial {
			sw, err = exp.RunSweepPartial(context.Background(), run, *scale)
		} else {
			sw, err = exp.RunSweep(run, *scale)
		}
		if err != nil {
			fail(err)
		}
		for _, n := range sw.FailureNotes() {
			degraded = append(degraded, "sweep: "+n)
		}
	}
	if sel("4") {
		outs = append(outs, exp.Fig4(sw))
	}
	if sel("7") {
		tolerate("7", func() (*exp.Out, error) { return exp.Fig7(run, *scale) })
	}
	if sel("14") {
		outs = append(outs, exp.Fig14(sw))
	}
	if sel("15") {
		outs = append(outs, exp.Fig15(sw))
	}
	if sel("16") {
		outs = append(outs, exp.Fig16(sw))
	}
	if sel("17") {
		tolerate("17", func() (*exp.Out, error) { return exp.Fig17(run, *scale) })
	}
	if sel("18") {
		tolerate("18", func() (*exp.Out, error) { return exp.Fig18(run, *scale) })
	}
	if sel("19") {
		outs = append(outs, exp.Fig19())
	}
	if sel("20") {
		outs = append(outs, exp.Fig20())
	}
	if sel("btree") {
		tolerate("btree", func() (*exp.Out, error) { return exp.ExtensionBTree(run, *scale) })
	}
	if sel("ablation") {
		tolerate("ablation-prog", func() (*exp.Out, error) { return exp.AblationProgrammability(run, *scale) })
		tolerate("ablation-design", func() (*exp.Out, error) { return exp.AblationDesignChoices(run, *scale) })
	}
	if *hotloop {
		tolerate("hotloop", func() (*exp.Out, error) { return exp.Hotloop(*hotloopExec, 512) })
	}
	if *approxTier {
		tolerate("approx-fig17", func() (*exp.Out, error) { return exp.ApproxCacheDiv(run, *scale) })
		tolerate("approx-geom", func() (*exp.Out, error) { return exp.ApproxGeometry(run, *scale) })
		tolerate("approx_error", func() (*exp.Out, error) { return exp.ApproxError(run, *scale) })
	}

	for _, o := range outs {
		fmt.Println(o.Table.String())
		for _, n := range o.Notes {
			fmt.Println("note:", n)
		}
		if len(o.Metrics) > 0 {
			keys := make([]string, 0, len(o.Metrics))
			for k := range o.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("metric: %s = %.3f\n", k, o.Metrics[k])
			}
		}
		fmt.Println()
	}

	if len(degraded) > 0 {
		fmt.Fprintf(os.Stderr, "xcache-bench: partial results — %d cell(s)/figure(s) failed:\n", len(degraded))
		for _, d := range degraded {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
	}

	if *jsonPath != "" {
		if err := writeBaseline(*jsonPath, *scale, run.Workers(), outs); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "xcache-bench: wrote %s (%d figures, scale %d, %.1fs wall)\n",
			*jsonPath, len(outs), *scale, time.Since(start).Seconds())
	}

	if *verbose {
		st := run.Stats()
		fmt.Fprint(os.Stderr, st.String())
		fmt.Fprint(os.Stderr, st.Detail())
	}

	if *benchDiff != "" {
		if err := diffBaseline(*benchDiff, outs); err != nil {
			fmt.Fprintln(os.Stderr, "xcache-bench: bench-diff:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "xcache-bench: bench-diff OK against %s\n", *benchDiff)
	}
}

// diffBaseline checks the current outs against a committed baseline
// file. Deterministic figures must match bit-for-bit (they are
// seed-pinned and worker-count-invariant, so any drift is a real result
// change); the wall-clock hotloop figure is gated on its speedup ratio
// instead, tolerating up to a 5% regression.
func diffBaseline(path string, outs []*exp.Out) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchBaseline
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	current := map[string]*exp.Out{}
	for _, o := range outs {
		current[o.ID] = o
	}
	for _, bf := range base.Figures {
		cur, ok := current[bf.ID]
		if !ok {
			return fmt.Errorf("baseline figure %q missing from this run", bf.ID)
		}
		if bf.ID == "hotloop" {
			bs, cs := bf.Metrics["speedup_x"], cur.Metrics["speedup_x"]
			if bs > 0 && cs < bs*0.95 {
				return fmt.Errorf("hotloop speedup regressed >5%%: baseline %.2fx, now %.2fx", bs, cs)
			}
			continue
		}
		cf := figureResult{ID: cur.ID, Metrics: cur.Metrics, Notes: cur.Notes}
		if cur.Table != nil {
			cf.Title = cur.Table.Title
			cf.Header = cur.Table.Header
			cf.Rows = cur.Table.Rows
		}
		bj, err := json.Marshal(bf)
		if err != nil {
			return err
		}
		cj, err := json.Marshal(cf)
		if err != nil {
			return err
		}
		if string(bj) != string(cj) {
			return fmt.Errorf("deterministic figure %q diverged from the baseline", bf.ID)
		}
	}
	return nil
}
