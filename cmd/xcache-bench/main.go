// Command xcache-bench regenerates the paper's evaluation: every table
// and figure of §8, at a configurable workload scale.
//
// Usage:
//
//	xcache-bench [-scale N] [-parallel N] [-v] [-fig all|4,7,14,15,16,17,18,19,20,t1,t2,t3,t4,btree,ablation]
//
// scale divides the published workload sizes (and cache capacities with
// them); -scale 1 runs the paper-scale configuration and takes several
// minutes. -parallel sets the sweep-engine worker count (default
// GOMAXPROCS); output is byte-identical for every worker count. -v
// prints the runner statistics (runs launched/cached/failed, per-run
// cycles and wall time, peak workers) on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"xcache/internal/exp"
	"xcache/internal/exp/runner"
)

func main() {
	scale := flag.Int("scale", 25, "workload scale divisor (1 = paper scale)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "sweep-engine workers (results are identical for any value)")
	verbose := flag.Bool("v", false, "print runner statistics (launched/cached/failed, per-run wall time)")
	figs := flag.String("fig", "all", "comma-separated ids (4,7,14..20, t1..t4, btree, ablation) or 'all'")
	flag.Parse()

	want := map[string]bool{}
	if *figs != "all" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	sel := func(id string) bool { return *figs == "all" || want[id] }

	// One runner for the whole invocation: points shared between figures
	// (the sweep baselines reappear in Fig 7/17 and the ablations) are
	// simulated once and served from the content-addressed run cache.
	run := runner.New(*parallel)

	var outs []*exp.Out
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "xcache-bench:", err)
		os.Exit(1)
	}

	if sel("t1") {
		outs = append(outs, exp.Table1())
	}
	if sel("t2") {
		outs = append(outs, exp.Table2())
	}
	if sel("t3") {
		outs = append(outs, exp.Table3())
	}
	if sel("t4") {
		outs = append(outs, exp.Table4())
	}

	needSweep := sel("4") || sel("14") || sel("15") || sel("16")
	var sw *exp.Sweep
	if needSweep {
		fmt.Fprintf(os.Stderr, "running full DSA sweep at scale %d (%d workers)...\n", *scale, run.Workers())
		var err error
		sw, err = exp.RunSweep(run, *scale)
		if err != nil {
			fail(err)
		}
	}
	if sel("4") {
		outs = append(outs, exp.Fig4(sw))
	}
	if sel("7") {
		o, err := exp.Fig7(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
	}
	if sel("14") {
		outs = append(outs, exp.Fig14(sw))
	}
	if sel("15") {
		outs = append(outs, exp.Fig15(sw))
	}
	if sel("16") {
		outs = append(outs, exp.Fig16(sw))
	}
	if sel("17") {
		o, err := exp.Fig17(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
	}
	if sel("18") {
		o, err := exp.Fig18(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
	}
	if sel("19") {
		outs = append(outs, exp.Fig19())
	}
	if sel("20") {
		outs = append(outs, exp.Fig20())
	}
	if sel("btree") {
		o, err := exp.ExtensionBTree(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
	}
	if sel("ablation") {
		o, err := exp.AblationProgrammability(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
		o, err = exp.AblationDesignChoices(run, *scale)
		if err != nil {
			fail(err)
		}
		outs = append(outs, o)
	}

	for _, o := range outs {
		fmt.Println(o.Table.String())
		for _, n := range o.Notes {
			fmt.Println("note:", n)
		}
		if len(o.Metrics) > 0 {
			keys := make([]string, 0, len(o.Metrics))
			for k := range o.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("metric: %s = %.3f\n", k, o.Metrics[k])
			}
		}
		fmt.Println()
	}

	if *verbose {
		st := run.Stats()
		fmt.Fprint(os.Stderr, st.String())
		fmt.Fprint(os.Stderr, st.Detail())
	}
}
