// Command xcache-serve runs the overload-safe multi-tenant X-Cache
// service (internal/serve): N controller shards over M DRAM channels
// behind a failover mux, fed by synthetic open-loop tenant streams, with
// SLO-governed admission control, backpressure, deadlines/retries, and
// per-shard circuit breakers. It prints the full stats report as JSON on
// stdout.
//
// Usage:
//
//	xcache-serve -shards 4 -tenants "8@0:rate=0.05;56@2:rate=0.01,skew=1.2"
//	xcache-serve -overload 2.0 -duration 200000       # the 2x overload experiment
//	xcache-serve -sweep 1,8,64,512                    # tenant-count sweep (JSON array)
//	xcache-serve -chaos -seed 42                      # deterministic chaos soak
//	xcache-serve -channels 4 -channel-policy affine   # multi-channel DRAM
//	xcache-serve -slo 4096                            # p99 budget for all tenants
//	xcache-serve -channels 2 -chaos-channel "1:outage:20000+8000"
//
// Like xcache-sim, failures are machine-readable: a JSON failure record
// on stderr plus a kind-specific exit code. Three extra codes classify
// *successful but degraded* runs, with fatal > degraded > breaker >
// overload:
//
//	0  clean: served within capacity
//	1  usage / configuration error
//	2  stall (watchdog: no forward progress)
//	3  invariant violation (including shared-state corruption and overflow)
//	4  cycle budget exhausted
//	7  overload: the run shed ≥ 20% of offered load (admission control dominated)
//	8  breaker: at least one shard's circuit breaker tripped during the run
//	9  degraded: a DRAM channel was still quarantined when the run ended
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"xcache/internal/check"
	"xcache/internal/serve"
)

// Exit codes for degraded-but-successful runs.
const (
	exitClean    = 0
	exitUsage    = 1
	exitOverload = 7
	exitBreaker  = 8
	exitDegraded = 9
)

// overloadShedFrac is the shed fraction at or above which a successful
// run is classified overload-dominated (exit 7).
const overloadShedFrac = 0.20

func main() {
	shards := flag.Int("shards", 4, "controller shards")
	channels := flag.Int("channels", 1, "independent DRAM channels behind the mux")
	chanPolicy := flag.String("channel-policy", "interleave", "channel steering: interleave|affine")
	tenants := flag.String("tenants", "64:rate=0.01",
		"tenant mix: COUNT[@PRIO][:rate=F,skew=F,burst=LEN/DUTY,slo=CYCLES];... (prio 7 sheds last)")
	slo := flag.Int("slo", 0, "default p99 latency budget in cycles for groups without slo= (0 = ungoverned)")
	keys := flag.Int("keys", 1<<16, "shared key-space size")
	duration := flag.Int("duration", 50_000, "arrival window in cycles")
	seed := flag.Uint64("seed", 1, "run seed (same seed → byte-identical stats)")
	overload := flag.Float64("overload", 1.0, "offered-load multiplier (2.0 = 2x overload experiment)")
	sweep := flag.String("sweep", "", "comma-separated total tenant counts to sweep (e.g. 1,8,64,512)")
	workers := flag.Int("workers", 0, "parallel shard-tick workers (<=1 serial; results identical)")
	deadline := flag.Int("deadline", 8192, "per-request deadline in cycles")
	timeout := flag.Int("timeout", 2048, "per-attempt timeout in cycles")
	retries := flag.Int("retries", 2, "retry budget per request")
	watchdog := flag.Int("watchdog", 50_000, "stall window in cycles")
	chaos := flag.Bool("chaos", false, "inject the full seeded fault cocktail")
	drop := flag.Float64("drop", 0, "DRAM response drop probability")
	delay := flag.Float64("delay", 0, "DRAM response delay probability")
	clog := flag.Float64("clog", 0, "queue clog probability per queue-cycle")
	flip := flag.Float64("flip", 0, "meta-tag bit-flip probability per cycle")
	chaosChannel := flag.String("chaos-channel", "",
		"channel fault episodes: CH:MODE:START+LEN[+EXTRA];... (mode outage|stall|burst)")
	flag.Parse()

	groups, err := serve.ParseTenantSpec(*tenants)
	if err != nil {
		fail(err, "usage", exitUsage)
	}
	if *slo > 0 {
		for i := range groups {
			if groups[i].SLO == 0 {
				groups[i].SLO = *slo
			}
		}
	}
	policy, err := serve.ParseChannelPolicy(*chanPolicy)
	if err != nil {
		fail(err, "usage", exitUsage)
	}
	faults := check.FaultConfig{DropResp: *drop, DelayResp: *delay, ClogQueue: *clog, FlipBit: *flip}
	if *chaos {
		faults = check.FaultConfig{DropResp: 0.01, DelayResp: 0.02, DelayMax: 128, ClogQueue: 0.002, FlipBit: 0.0005}
	}
	if *chaosChannel != "" {
		cf, err := check.ParseChannelFaults(*chaosChannel)
		if err != nil {
			fail(err, "usage", exitUsage)
		}
		faults.Channels = cf
	}
	base := serve.Config{
		Shards: *shards, Channels: *channels, ChannelPolicy: policy,
		Tenants: groups, Keys: *keys, Duration: *duration,
		Seed: *seed, Overload: *overload, Deadline: *deadline, Timeout: *timeout,
		Retries: *retries, Watchdog: *watchdog, TickWorkers: *workers, Faults: faults,
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if *sweep == "" {
		r := runOne(base)
		if err := enc.Encode(r); err != nil {
			fail(err, "usage", exitUsage)
		}
		summarize(r)
		os.Exit(classify(r))
	}

	var totals []int
	for _, tok := range strings.Split(*sweep, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 1 {
			fail(fmt.Errorf("bad -sweep entry %q", tok), "usage", exitUsage)
		}
		totals = append(totals, n)
	}
	code := exitClean
	var reports []*serve.Report
	for _, total := range totals {
		cfg := base
		cfg.Tenants = serve.ScaleTenants(groups, total)
		r := runOne(cfg)
		reports = append(reports, r)
		summarize(r)
		if c := classify(r); c > code {
			code = c
		}
	}
	if err := enc.Encode(reports); err != nil {
		fail(err, "usage", exitUsage)
	}
	os.Exit(code)
}

// runOne builds and runs one service configuration, terminating the
// process with a structured failure record if the run fails.
func runOne(cfg serve.Config) *serve.Report {
	s, err := serve.New(cfg)
	if err != nil {
		fail(err, "usage", exitUsage)
	}
	r, err := s.Run()
	if err != nil {
		f := serveFailure{Error: err.Error(), Kind: "usage"}
		code := exitUsage
		var cf *check.Failure
		if errors.As(err, &cf) {
			f.Kind = cf.Kind.String()
			switch cf.Kind {
			case check.FailStall:
				code = 2
			case check.FailInvariant, check.FailOverflow:
				code = 3
			case check.FailBudget:
				code = 4
			case check.FailTrap:
				code = 5
			}
			if rep := cf.Report; rep != nil {
				f.Cycle = int64(rep.Cycle)
				f.StallCycles = int64(rep.StallCycles)
				f.StuckQueues = rep.StuckQueues()
				f.Report = rep
			}
		}
		emit(f)
		os.Exit(code)
	}
	return r
}

// classify maps a successful report onto the degraded exit codes: a
// still-quarantined channel outranks breaker trips, which outrank
// overload shedding.
func classify(r *serve.Report) int {
	if r.Degraded != nil && r.Degraded.EndedDegraded {
		return exitDegraded
	}
	for _, sh := range r.Shards {
		if sh.BreakerTrips > 0 {
			return exitBreaker
		}
	}
	if r.Totals.ShedRate >= overloadShedFrac {
		return exitOverload
	}
	return exitClean
}

// summarize prints a one-line human summary per run on stderr (stdout
// stays pure JSON).
func summarize(r *serve.Report) {
	var trips uint64
	for _, sh := range r.Shards {
		trips += sh.BreakerTrips
	}
	fmt.Fprintf(os.Stderr,
		"xcache-serve: tenants=%d shards=%d channels=%d overload=%.2g: generated=%d completed=%d shed=%.1f%% failed=%d p50=%d p99=%d p999=%d trips=%d\n",
		r.Config.TenantCount, r.Config.Shards, r.Config.Channels, r.Config.Overload,
		r.Totals.Generated, r.Totals.Completed, 100*r.Totals.ShedRate,
		r.Totals.Failed, r.Latency.P50, r.Latency.P99, r.Latency.P999, trips)
	if r.SLO != nil {
		for _, a := range r.SLO.Attainment {
			fmt.Fprintf(os.Stderr, "xcache-serve:   slo prio %d: attainment %.1f%% (%d/%d)\n",
				a.Priority, 100*a.Attainment, a.Met, a.Measured)
		}
	}
	if r.Degraded != nil {
		fmt.Fprintf(os.Stderr, "xcache-serve:   degraded: %d quarantines, %d degraded cycles, %d resteered, ended_degraded=%v\n",
			r.Degraded.Quarantines, r.Degraded.DegradedCycles, r.Degraded.Resteered, r.Degraded.EndedDegraded)
	}
}

// serveFailure is the machine-readable failure record on stderr,
// structurally identical to xcache-sim's.
type serveFailure struct {
	Error       string             `json:"error"`
	Kind        string             `json:"kind"` // stall | invariant | overflow | budget | usage
	Cycle       int64              `json:"cycle,omitempty"`
	StallCycles int64              `json:"stall_cycles,omitempty"`
	StuckQueues []string           `json:"stuck_queues,omitempty"`
	Report      *check.StallReport `json:"report,omitempty"`
}

func emit(f serveFailure) {
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		fmt.Fprintln(os.Stderr, "xcache-serve:", f.Error)
	}
}

func fail(err error, kind string, code int) {
	emit(serveFailure{Error: err.Error(), Kind: kind})
	os.Exit(code)
}
