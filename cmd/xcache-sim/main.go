// Command xcache-sim runs a single DSA simulation — one accelerator, one
// workload, one storage idiom — and prints its measurements. It is the
// quickest way to poke at a configuration.
//
// Usage:
//
//	xcache-sim -dsa widx -kind xcache -query TPC-H-19 -scale 50
//	xcache-sim -dsa gamma -kind addr -scale 30
//	xcache-sim -dsa graphpulse -kind baseline -scale 10
package main

import (
	"flag"
	"fmt"
	"os"

	"xcache/internal/dsa"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
)

func main() {
	name := flag.String("dsa", "widx", "widx | dasx | sparch | gamma | graphpulse")
	kind := flag.String("kind", "xcache", "xcache | addr | baseline")
	query := flag.String("query", "TPC-H-19", "TPC-H query profile (widx/dasx)")
	scale := flag.Int("scale", 25, "workload scale divisor (1 = paper scale)")
	flag.Parse()

	r, err := run(*name, *kind, *query, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xcache-sim:", err)
		os.Exit(1)
	}
	fmt.Println(r.String())
	fmt.Printf("  cycles           %d\n", r.Cycles)
	fmt.Printf("  DRAM accesses    %d (%d words read)\n", r.DRAMAccesses, r.DRAMReadWords)
	fmt.Printf("  hit rate         %.3f\n", r.HitRate)
	fmt.Printf("  load-to-use      %.1f cycles (hits: %.1f)\n", r.AvgLoadToUse, r.HitLoadToUse)
	fmt.Printf("  on-chip energy   %.0f pJ (data %.0f, tag %.0f, rtn %.0f, ctrl %.0f)\n",
		r.Energy.OnChip(), r.Energy.DataRAM, r.Energy.TagRAM, r.Energy.RoutineRAM, r.Energy.Controller())
	fmt.Printf("  validated        %v\n", r.Checked)
}

func run(name, kind, query string, scale int) (dsa.Result, error) {
	var profile hashidx.Profile
	found := false
	for _, p := range hashidx.TPCH() {
		if p.Name == query {
			profile, found = p, true
		}
	}
	if !found {
		return dsa.Result{}, fmt.Errorf("unknown query %q", query)
	}
	hashWork := widx.DefaultWork(profile, scale)

	switch name {
	case "widx":
		switch kind {
		case "xcache":
			return widx.RunXCache(hashWork, widx.Options{})
		case "addr":
			return widx.RunAddr(hashWork, widx.Options{})
		case "baseline":
			return widx.RunBaseline(hashWork, widx.Options{})
		}
	case "dasx":
		switch kind {
		case "xcache":
			return dasx.RunXCache(hashWork, dasx.Options{})
		case "addr":
			return dasx.RunAddr(hashWork, dasx.Options{})
		case "baseline":
			return dasx.RunBaseline(hashWork, dasx.Options{})
		}
	case "sparch", "gamma":
		alg := spgemm.SpArch
		if name == "gamma" {
			alg = spgemm.Gamma
		}
		w := spgemm.P2PGnutella31(scale)
		switch kind {
		case "xcache":
			return spgemm.RunXCache(alg, w, spgemm.Options{})
		case "addr":
			return spgemm.RunAddr(alg, w, spgemm.Options{})
		case "baseline":
			return spgemm.RunBaseline(alg, w, spgemm.Options{})
		}
	case "graphpulse":
		w := graphpulse.P2PGnutella08(scale)
		switch kind {
		case "xcache":
			return graphpulse.RunXCache(w, graphpulse.Options{})
		case "addr":
			return graphpulse.RunAddr(w, graphpulse.Options{})
		case "baseline":
			return graphpulse.RunBaseline(w, graphpulse.Options{})
		}
	default:
		return dsa.Result{}, fmt.Errorf("unknown DSA %q", name)
	}
	return dsa.Result{}, fmt.Errorf("unknown kind %q", kind)
}
