// Command xcache-sim runs a single DSA simulation — one accelerator, one
// workload, one storage idiom — and prints its measurements. It is the
// quickest way to poke at a configuration.
//
// Usage:
//
//	xcache-sim -dsa widx -kind xcache -query TPC-H-19 -scale 50
//	xcache-sim -dsa gamma -kind addr -scale 30
//	xcache-sim -dsa graphpulse -kind baseline -scale 10
//
// Hardening (X-Cache runs only):
//
//	xcache-sim -dsa widx -check                  # watchdog + invariant checkers
//	xcache-sim -dsa widx -faults 1e-3 -seed 7    # drop 0.1% of DRAM fills, seeded
//	xcache-sim -dsa widx -check -watchdog 20000  # custom stall window
//
// A fault run is exactly reproducible from its seed; on a wedge or
// invariant violation the process emits a structured JSON failure record
// on stderr — kind, cycle, stuck queues, and the full stall report —
// and exits with a kind-specific code so sweep drivers can triage
// without parsing prose:
//
//	0  success
//	1  usage / configuration error
//	2  stall (watchdog: no forward progress)
//	3  invariant violation (including recovered queue overflow)
//	4  cycle budget exhausted
//	5  microcode trap (structural program fault; walker quiesced)
//	6  program rejected by the static verifier at load
//	7  coherence protocol violation (multi-level hierarchy runs)
//
// Hierarchy mode runs the coherent two-level system instead of a DSA:
//
//	xcache-sim -hier mx2                  # canned 2-port scenario over a shared L2
//	xcache-sim -hier mx2 -faults 0.3      # drop 30% of snoops (retry path)
//	xcache-sim -hier mx2 -faults 1        # exhaust retries: liveness trap, exit 7
//
// In -hier mode -faults is the snoop-drop probability; coherence
// invariants (single-writer, inclusion, no-stale-fill) are always on.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"xcache/internal/check"
	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
	"xcache/internal/hier"
	"xcache/internal/program"
)

func main() {
	name := flag.String("dsa", "widx", "widx | dasx | sparch | gamma | graphpulse | btreeidx")
	kind := flag.String("kind", "xcache", "xcache | addr | baseline")
	query := flag.String("query", "TPC-H-19", "TPC-H query profile (widx/dasx)")
	scale := flag.Int("scale", 25, "workload scale divisor (1 = paper scale)")
	doCheck := flag.Bool("check", false, "enable the watchdog and invariant checkers (xcache runs)")
	faults := flag.Float64("faults", 0, "DRAM read-response drop probability (enables fault injection + -check)")
	seed := flag.Uint64("seed", 1, "fault-injection seed (same seed → identical run)")
	watchdog := flag.Int("watchdog", 50_000, "cycles without forward progress before declaring a stall")
	hierMode := flag.String("hier", "", "mx2 → run the coherent 2-port hierarchy scenario instead of a DSA")
	flag.Parse()

	if *faults < 0 || *faults > 1 {
		fmt.Fprintln(os.Stderr, "xcache-sim: -faults must be a probability in [0, 1]")
		os.Exit(1)
	}
	if *hierMode != "" {
		if err := runHier(*hierMode, *faults, *seed, *watchdog); err != nil {
			exit(err)
		}
		return
	}
	var cc *check.Config
	if *doCheck || *faults > 0 {
		cc = &check.Config{Watchdog: *watchdog, Invariants: true, Seed: *seed}
		if *faults > 0 {
			cc.Faults = check.FaultConfig{DropResp: *faults}
		}
	}
	if cc != nil && *kind != "xcache" {
		fmt.Fprintln(os.Stderr, "xcache-sim: -check/-faults apply to -kind xcache only")
		os.Exit(1)
	}

	r, err := run(*name, *kind, *query, *scale, cc)
	if err != nil {
		exit(err)
	}
	fmt.Println(r.String())
	fmt.Printf("  cycles           %d\n", r.Cycles)
	fmt.Printf("  DRAM accesses    %d (%d words read)\n", r.DRAMAccesses, r.DRAMReadWords)
	fmt.Printf("  hit rate         %.3f\n", r.HitRate)
	fmt.Printf("  load-to-use      %.1f cycles (hits: %.1f)\n", r.AvgLoadToUse, r.HitLoadToUse)
	fmt.Printf("  on-chip energy   %.0f pJ (data %.0f, tag %.0f, rtn %.0f, ctrl %.0f)\n",
		r.Energy.OnChip(), r.Energy.DataRAM, r.Energy.TagRAM, r.Energy.RoutineRAM, r.Energy.Controller())
	fmt.Printf("  validated        %v\n", r.Checked)
	if *faults > 0 {
		fmt.Printf("  faults           %d fills dropped, %d retries, %d parity scrubs (seed %d)\n",
			r.DroppedFills, r.FillRetries, r.ParityScrubs, *seed)
	}
}

// simFailure is the machine-readable failure record emitted on stderr.
type simFailure struct {
	Error       string             `json:"error"`
	Kind        string             `json:"kind"` // stall | invariant | overflow | budget | trap | verify | coherence | usage
	TrapKind    string             `json:"trap_kind,omitempty"`
	Cycle       int64              `json:"cycle,omitempty"`
	StallCycles int64              `json:"stall_cycles,omitempty"`
	StuckQueues []string           `json:"stuck_queues,omitempty"`
	Report      *check.StallReport `json:"report,omitempty"`
	// Coherence carries the typed protocol violation (rule, key, cycle)
	// when Kind is "coherence".
	Coherence *check.CoherenceViolation `json:"coherence,omitempty"`
}

// exit classifies err through the check taxonomy, emits the structured
// JSON record on stderr, and terminates with the kind's exit code.
func exit(err error) {
	f := simFailure{Error: err.Error(), Kind: "usage"}
	code := 1
	var cf *check.Failure
	var trap *ctrl.Trap
	var ve *program.VerifyError
	var cv *check.CoherenceViolation
	if errors.As(err, &cf) {
		f.Kind = cf.Kind.String()
		switch cf.Kind {
		case check.FailStall:
			code = 2
		case check.FailInvariant, check.FailOverflow:
			code = 3
		case check.FailBudget:
			code = 4
		case check.FailTrap:
			code = 5
		case check.FailCoherence:
			code = 7
		}
		if rep := cf.Report; rep != nil {
			f.Cycle = int64(rep.Cycle)
			f.StallCycles = int64(rep.StallCycles)
			f.StuckQueues = rep.StuckQueues()
			f.Report = rep
		}
	} else if errors.As(err, &cv) {
		// A violation latched by the hierarchy directly (liveness trap or
		// per-cycle invariant), outside a supervised check.Run.
		f.Kind = "coherence"
		code = 7
	} else if errors.As(err, &trap) {
		// A trap surfaced outside a supervised run (the DSA's post-run
		// Trap() check on an unsupervised kernel).
		f.Kind = "trap"
		code = 5
	} else if errors.As(err, &ve) {
		f.Kind = "verify"
		code = 6
	}
	if errors.As(err, &trap) {
		f.TrapKind = trap.Kind.String()
	}
	if errors.As(err, &cv) {
		f.Coherence = cv
		f.Cycle = int64(cv.Cycle)
	}
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	if encErr := enc.Encode(f); encErr != nil {
		fmt.Fprintln(os.Stderr, "xcache-sim:", err)
	}
	os.Exit(code)
}

// runHier runs the canned coherent-hierarchy scenario: two L1 X-Cache
// ports over a shared inclusive L2, driven through a deterministic mix of
// read sharing, ownership migration, and capacity pressure, under the
// full per-cycle coherence invariant checker. faultProb is the seeded
// snoop-drop probability: moderate drops recover through the retry path;
// total loss exhausts the retry budget and traps with exit code 7.
func runHier(mode string, faultProb float64, seed uint64, watchdog int) error {
	if mode != "mx2" {
		return fmt.Errorf("unknown -hier mode %q (supported: mx2)", mode)
	}
	// A 64-entry shared L2 under a 128-key footprint: the cold sweep
	// forces L2 capacity evictions, so inclusion back-invalidation runs
	// as part of the scenario, not just the litmus suite.
	s, err := hier.NewCohSystem(hier.CohConfig{
		Ports:   2,
		L1:      hier.L1Config{Sets: 16, Ways: 2, WordsPerSector: 1},
		L2Sets:  16,
		L2Ways:  4,
		NumKeys: 128,
		Faults:  hier.CohFaults{DropSnoop: faultProb, Seed: seed},
	})
	if err != nil {
		return err
	}
	for i := 0; i < s.Cfg.NumKeys; i++ {
		s.Seed(i, uint64(1000+i*3))
	}
	// 512 ops per port in three interleaved flavours: shared reads over a
	// hot region, merges migrating ownership between the ports, and a
	// cold sweep that pressures the L2 into back-invalidations.
	scripts := make([][]hier.ScriptOp, 2)
	for p := 0; p < 2; p++ {
		for i := 0; i < 512; i++ {
			switch i % 3 {
			case 0:
				scripts[p] = append(scripts[p], hier.Ld(uint64((i*7+p)%32)))
			case 1:
				scripts[p] = append(scripts[p], hier.Merge(uint64(i%16), 1))
			default:
				scripts[p] = append(scripts[p], hier.Ld(uint64(32+(i*13+p*61)%96)))
			}
		}
	}
	h := check.Attach(s.K, &check.Config{Watchdog: watchdog, Invariants: true})
	if _, err := hier.RunScripts(s, h, scripts, 2_000_000); err != nil {
		return err
	}
	fmt.Printf("hier mx2: 2 ports × 512 ops over a shared inclusive L2\n")
	fmt.Printf("  cycles           %d\n", s.K.Cycle())
	for p, l1 := range s.Ports {
		st := l1.Stats()
		hitPct := 0.0
		if st.Hits+st.Misses > 0 {
			hitPct = 100 * float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		fmt.Printf("  L1[%d]            %d loads, %d stores, %.1f%% hit, %d upgrades, %d snoops, %d evictions\n",
			p, st.Loads, st.Stores, hitPct, st.Upgrades, st.Snoops, st.Evictions)
	}
	ds := s.Dir.Stats()
	fmt.Printf("  directory        %d txns, %d grants, %d invals, %d downgrades\n",
		ds.Txns, ds.Grants, ds.Invals, ds.Downgrades)
	fmt.Printf("  inclusion        %d back-invals, %d writebacks, %d flushes\n",
		ds.BackInvals, ds.Writebacks, ds.Flushes)
	if faultProb > 0 {
		fmt.Printf("  faults           %d snoops dropped, %d retried (seed %d)\n",
			ds.SnoopDrops, ds.SnoopRetry, seed)
	}
	fmt.Printf("  invariants       single-writer, inclusion, no-stale-fill held for %d cycles\n", s.K.Cycle())
	return nil
}

func run(name, kind, query string, scale int, cc *check.Config) (dsa.Result, error) {
	var profile hashidx.Profile
	found := false
	for _, p := range hashidx.TPCH() {
		if p.Name == query {
			profile, found = p, true
		}
	}
	if !found {
		return dsa.Result{}, fmt.Errorf("unknown query %q", query)
	}
	hashWork := widx.DefaultWork(profile, scale)

	switch name {
	case "widx":
		switch kind {
		case "xcache":
			return widx.RunXCache(hashWork, widx.Options{Check: cc})
		case "addr":
			return widx.RunAddr(hashWork, widx.Options{})
		case "baseline":
			return widx.RunBaseline(hashWork, widx.Options{})
		}
	case "dasx":
		switch kind {
		case "xcache":
			return dasx.RunXCache(hashWork, dasx.Options{Check: cc})
		case "addr":
			return dasx.RunAddr(hashWork, dasx.Options{})
		case "baseline":
			return dasx.RunBaseline(hashWork, dasx.Options{})
		}
	case "sparch", "gamma":
		alg := spgemm.SpArch
		if name == "gamma" {
			alg = spgemm.Gamma
		}
		w := spgemm.P2PGnutella31(scale)
		switch kind {
		case "xcache":
			return spgemm.RunXCache(alg, w, spgemm.Options{Check: cc})
		case "addr":
			return spgemm.RunAddr(alg, w, spgemm.Options{})
		case "baseline":
			return spgemm.RunBaseline(alg, w, spgemm.Options{})
		}
	case "graphpulse":
		w := graphpulse.P2PGnutella08(scale)
		switch kind {
		case "xcache":
			return graphpulse.RunXCache(w, graphpulse.Options{Check: cc})
		case "addr":
			return graphpulse.RunAddr(w, graphpulse.Options{})
		case "baseline":
			return graphpulse.RunBaseline(w, graphpulse.Options{})
		}
	case "btreeidx":
		w := btreeidx.DefaultWork(scale)
		switch kind {
		case "xcache":
			return btreeidx.RunXCache(w, btreeidx.Options{Check: cc})
		case "addr", "baseline":
			// The pure address-cache build is the baseline for B+-tree
			// probing (the paper does not define a hardwired variant).
			return btreeidx.RunAddr(w, btreeidx.Options{})
		}
	default:
		return dsa.Result{}, fmt.Errorf("unknown DSA %q", name)
	}
	return dsa.Result{}, fmt.Errorf("unknown kind %q", kind)
}
