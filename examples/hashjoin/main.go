// Hashjoin: the Widx scenario (§5) — probing a database hash index.
//
// The index is a chained-bucket hash table in simulated DRAM. Three
// storage idioms run the same Zipf-skewed probe trace:
//
//   - X-Cache: meta-tags are the probe keys; a hit skips hashing and the
//     chain walk entirely;
//   - an address-based cache with an ideal walker (the paper's red bar);
//   - the original Widx, which hashes on every probe (≈60 cycles for
//     string keys) and walks through its address cache.
//
// Run:  go run ./examples/hashjoin
package main

import (
	"fmt"
	"log"

	"xcache/internal/dsa"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
)

func main() {
	profile := hashidx.TPCH()[0] // TPC-H-19: string keys, heavy skew
	work := widx.DefaultWork(profile, 50)
	opt := widx.Options{}

	fmt.Printf("hash join probe: %s — %d keys, %d probes, %d-cycle hash\n\n",
		profile.Name, work.NumKeys, work.Probes, profile.HashCycles)

	type runner struct {
		name string
		f    func(widx.Work, widx.Options) (dsa.Result, error)
	}
	results := map[string]dsa.Result{}
	for _, r := range []runner{
		{"X-Cache", widx.RunXCache},
		{"addr-cache + ideal walker", widx.RunAddr},
		{"original Widx", widx.RunBaseline},
	} {
		res, err := r.f(work, opt)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Checked {
			log.Fatalf("%s: RIDs did not match the reference index!", r.name)
		}
		results[r.name] = res
		fmt.Printf("%-28s %9d cycles  %7d DRAM accs  hit %.2f  l2u %6.1f\n",
			r.name, res.Cycles, res.DRAMAccesses, res.HitRate, res.AvgLoadToUse)
	}

	x := results["X-Cache"]
	fmt.Printf("\nX-Cache speedup: %.2fx over the address cache, %.2fx over Widx\n",
		x.Speedup(results["addr-cache + ideal walker"]),
		x.Speedup(results["original Widx"]))
	fmt.Println("every probe's RID was validated against a pure-Go reference walk")
}
