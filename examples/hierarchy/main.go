// Hierarchy: the §6 compositions — MX (two-level X-Cache) and MXA
// (X-Cache over an address cache).
//
// Meta-tags form a global namespace, just like addresses, so X-Caches
// stack: the upstream L1 holds no walker and simply requests one meta-tag
// at a time from the level below; only the last level walks and
// translates to addresses. An X-Cache can also sit on top of a
// conventional cache, whose line namespace is disjoint (non-inclusive).
//
// Run:  go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"xcache/internal/addrcache"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/hier"
	"xcache/internal/mem"
	"xcache/internal/program"
	"xcache/internal/sim"
)

func walkerSpec() program.Spec {
	return program.Spec{
		Name:   "arraywalk",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid`},
		},
	}
}

func l2Config() core.Config {
	return core.Config{Name: "L2", Sets: 256, Ways: 4, WordsPerSector: 4,
		NumActive: 8, NumExe: 2, RespDataWords: 8}
}

func fillArray(img *mem.Image, n int) uint64 {
	base := img.AllocWords(n)
	for i := 0; i < n; i++ {
		img.W64(base+uint64(i)*8, uint64(i*7))
	}
	return base
}

func probe(k *sim.Kernel, reqQ *sim.Queue[ctrl.MetaReq], respQ *sim.Queue[ctrl.MetaResp], key uint64) (uint64, sim.Cycle) {
	start := k.Cycle()
	reqQ.MustPush(ctrl.MetaReq{ID: key, Op: ctrl.MetaLoad, Key: core.Key{key, 0}, Issued: start})
	var resp ctrl.MetaResp
	if !k.RunUntil(func() bool {
		r, ok := respQ.Pop()
		resp = r
		return ok
	}, 100000) {
		log.Fatal("no response")
	}
	return resp.Value, k.Cycle() - start
}

func main() {
	// ---- MX: MetaL1 over a walking X-Cache over DRAM. ----
	fmt.Println("MX: two-level X-Cache (L1 has no walker)")
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	l2, err := core.Build(k, l2Config(), walkerSpec(), d.Req, d.Resp, meter)
	if err != nil {
		log.Fatal(err)
	}
	l1, err := hier.NewMetaL1(k, hier.L1Config{Sets: 16, Ways: 2, WordsPerSector: 4}, l2.Ctrl, meter)
	if err != nil {
		log.Fatal(err)
	}
	l2.SetEnv(0, fillArray(img, 512))

	v, cold := probe(k, l1.ReqQ, l1.RespQ, 42)
	_, warm := probe(k, l1.ReqQ, l1.RespQ, 42)
	fmt.Printf("  array[42] = %d: cold (walked in L2) %d cycles, L1 hit %d cycles\n", v, cold, warm)
	fmt.Printf("  L1: %d hits / %d misses, %d forwards to L2\n\n",
		l1.Stats().Hits, l1.Stats().Misses, l1.Stats().Forwards)

	// ---- MXA: the walker's fills go through an address cache. ----
	fmt.Println("MXA: X-Cache walker over an address-based cache")
	k2 := sim.NewKernel()
	img2 := mem.NewImage()
	d2 := dram.New(k2, dram.DefaultConfig(), img2)
	meter2 := &energy.Counters{}
	ac := addrcache.New(k2, addrcache.Config{Sets: 64, Ways: 4}, d2.Req, d2.Resp, meter2)
	_, xcReq, xcResp := hier.NewXCOverAddr(k2, ac)
	xc, err := core.Build(k2, l2Config(), walkerSpec(), xcReq, xcResp, meter2)
	if err != nil {
		log.Fatal(err)
	}
	xc.SetEnv(0, fillArray(img2, 512))

	for key := uint64(0); key < 16; key++ { // sequential walks share lines
		probe(k2, xc.Ctrl.ReqQ, xc.Ctrl.RespQ, key)
	}
	st := ac.Stats()
	fmt.Printf("  16 sequential walks: %d line requests to the address cache, %d hits (spatial locality)\n",
		st.Accesses, st.Hits)
	fmt.Printf("  DRAM reads filtered to %d (non-inclusive, different namespaces)\n", d2.Stats().Reads)
	fmt.Println("\nMXS (X-Cache beside a stream port) is what the SpGEMM and PageRank")
	fmt.Println("examples already use: matrix A / adjacency stream with addresses,")
	fmt.Println("dynamic accesses go through X-Cache.")
}
