// PageRank: the GraphPulse scenario (§5, §7.2) — X-Cache as an
// event-coalescing store.
//
// GraphPulse processes graphs as delta events. X-Cache replaces its event
// queue: an event (vertex, delta) is a meta store-merge tagged by vertex
// id — on a hit the delta is added into the data RAM by the hit pipeline
// (coalescing); on a miss a three-action walker allocates the entry, with
// no DRAM walk at all. Between supersteps the datapath drains the
// coalesced events and streams adjacency for the active vertices.
//
// Run:  go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"xcache/internal/dsa/graphpulse"
	"xcache/internal/graph"
)

func main() {
	work := graphpulse.P2PGnutella08(5) // N=1260, E=4200
	fmt.Printf("PageRank on a %d-vertex, %d-edge power-law graph\n\n", work.N, work.E)

	x, err := graphpulse.RunXCache(work, graphpulse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !x.Checked {
		log.Fatal("ranks diverged from the delta-PageRank reference")
	}
	fmt.Printf("X-Cache event store:   %8d cycles, hit (coalesce) rate %.2f, %d DRAM accs\n",
		x.Cycles, x.HitRate, x.DRAMAccesses)

	a, err := graphpulse.RunAddr(work, graphpulse.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dense array via L1:    %8d cycles (must scan every vertex per superstep)\n", a.Cycles)
	fmt.Printf("speedup %.2fx, energy ratio %.2fx\n\n",
		x.Speedup(a), a.Energy.OnChip()/x.Energy.OnChip())

	// Show the converged ranks agree with power iteration.
	g := graph.RMAT(work.N, work.E, work.Seed)
	ref := graph.PageRank(g, graph.PageRankParams{})
	top, topRank := 0, 0.0
	for v, r := range ref {
		if r > topRank {
			top, topRank = v, r
		}
	}
	fmt.Printf("highest-rank vertex: %d (rank %.5f by power iteration)\n", top, topRank)
	fmt.Println("the event-driven run was validated against the delta-propagation reference")

	// Same hardware, different merge operator: single-source shortest
	// paths coalesces events with MIN instead of ADD in the hit pipeline.
	s, err := graphpulse.RunSSSP(work, graphpulse.Options{}, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !s.Checked {
		log.Fatal("SSSP distances diverged from BFS")
	}
	fmt.Printf("\nSSSP on the same event store (MIN-coalescing): %d cycles, hit rate %.2f\n",
		s.Cycles, s.HitRate)
	fmt.Println("distances validated against a BFS reference")
}
