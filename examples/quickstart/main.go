// Quickstart: build an X-Cache, program a walker, issue meta loads.
//
// This example caches elements of a simple array laid out in simulated
// DRAM. The meta-tag is the array index — the datapath never computes an
// address. The walker (two coroutine states) translates a missing index
// to an address, fetches the element, and caches it; hits short-circuit
// straight to the data RAM with a 3-cycle load-to-use.
//
// Run:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/program"
)

func main() {
	// 1. The walker: a table-driven spec, one line per (state, event)
	// transition, exactly the template the paper gives designers (§4.2).
	spec := program.Spec{
		Name:   "arraywalk",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			// A meta load missed: compute &array[key] and fetch it.
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm             ; reserve the meta-tag entry
				lde r4, e0         ; e0 = array base (a DSA-specific operand)
				shl r5, r1, 3      ; r1 = key (spawn convention); ×8 bytes
				add r5, r4, r5
				enqfilli r5, 1     ; one-word DRAM fill
				state WaitFill     ; yield until the fill arrives
			`},
			// The fill arrived: cache it and answer the datapath.
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0         ; word 0 of the DRAM response
				allocdi r7, 1      ; one data-RAM sector
				writed r7, r6
				li r8, 1
				update r7, r8      ; entry points at its sector
				enqresp r6, OK
				halt Valid         ; stable: future loads are 3-cycle hits
			`},
		},
	}

	// 2. The generator parameters (Fig 13): geometry + parallelism.
	cfg := core.Config{
		Name: "quickstart",
		Sets: 64, Ways: 4, WordsPerSector: 4,
		NumActive: 8, NumExe: 2,
	}

	sys, err := core.NewSystem(cfg, dram.DefaultConfig(), spec)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Lay out the data structure in simulated DRAM.
	const n = 256
	base := sys.Img.AllocWords(n)
	for i := 0; i < n; i++ {
		sys.Img.W64(base+uint64(i)*8, uint64(i*i))
	}
	sys.Cache.SetEnv(0, base)

	// 4. Issue meta loads: each references an element by index only.
	fmt.Println("probing array elements through X-Cache (key -> value):")
	keys := []uint64{3, 200, 3, 77, 200, 3, 12, 77}
	for _, key := range keys {
		sys.Cache.Ctrl.ReqQ.MustPush(ctrl.MetaReq{
			ID: key, Op: ctrl.MetaLoad, Key: core.Key{key, 0}, Issued: sys.K.Cycle(),
		})
		var resp ctrl.MetaResp
		if !sys.K.RunUntil(func() bool {
			r, ok := sys.Cache.Ctrl.RespQ.Pop()
			resp = r
			return ok
		}, 100000) {
			log.Fatal("no response")
		}
		fmt.Printf("  array[%3d] = %6d\n", key, resp.Value)
	}

	st := sys.Snapshot()
	fmt.Printf("\n%d cycles, %d hits / %d misses, %d DRAM reads\n",
		st.Cycles, st.Ctrl.Hits, st.Ctrl.Misses, st.DRAM.Reads)
	fmt.Printf("avg load-to-use %.1f cycles (hits %.1f)\n",
		st.Ctrl.AvgLoadToUse(), st.Ctrl.AvgHitLoadToUse())
	fmt.Printf("on-chip energy %.0f pJ (data %.0f, tags %.0f, controller %.0f)\n",
		st.Energy.OnChip(), st.Energy.DataRAM, st.Energy.TagRAM, st.Energy.Controller())
}
