// SpGEMM: sparse matrix-matrix multiplication on SpArch and Gamma (§5).
//
// Both DSAs stream matrix A and fetch rows of matrix B through X-Cache,
// meta-tagged by row index; the walker reads B.row_ptr and performs a
// variable-length tiled refill. The two DSAs share the exact same cache
// microarchitecture and walker program — only the dataflow differs:
// SpArch pairs column k of A with row k of B (outer product, almost no
// reuse, hidden by decoupled preload), while Gamma requests B rows per
// A-nonzero (Gustavson, input-dependent reuse the meta-tags capture).
//
// Run:  go run ./examples/spgemm
package main

import (
	"fmt"
	"log"

	"xcache/internal/dsa/spgemm"
	"xcache/internal/sparse"
)

func main() {
	work := spgemm.P2PGnutella31(40) // power-law matrices, scaled down
	fmt.Printf("A, B: %d x %d R-MAT matrices, %d nonzeros each\n",
		67000/40, 67000/40, 147000/40)

	// The reference algorithms agree with each other (and the DSA
	// pipelines are validated against matrix B row by row).
	a := sparse.RMAT(work.N, work.NNZ, work.Seed)
	b := sparse.RMAT(work.N, work.NNZ, work.Seed+1)
	c := sparse.MulGustavson(a, b)
	if !sparse.Equal(c, sparse.MulOuter(a, b), 1e-9) {
		log.Fatal("reference SpGEMM algorithms disagree")
	}
	fmt.Printf("C = A x B has %d nonzeros (Gustavson and outer product agree)\n\n", c.NNZ())

	for _, alg := range []spgemm.Algorithm{spgemm.SpArch, spgemm.Gamma} {
		x, err := spgemm.RunXCache(alg, work, spgemm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ad, err := spgemm.RunAddr(alg, work, spgemm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if !x.Checked || !ad.Checked {
			log.Fatalf("%s: fetched B rows did not match the matrix", alg)
		}
		fmt.Printf("%s:\n", alg)
		fmt.Printf("  X-Cache    %8d cycles  %6d DRAM accs  B-row hit rate %.2f\n",
			x.Cycles, x.DRAMAccesses, x.HitRate)
		fmt.Printf("  addr-cache %8d cycles  %6d DRAM accs  (walks row_ptr on every access)\n",
			ad.Cycles, ad.DRAMAccesses)
		fmt.Printf("  speedup %.2fx, memory accesses reduced %.2fx\n\n",
			x.Speedup(ad), float64(ad.DRAMAccesses)/float64(x.DRAMAccesses))
	}
	fmt.Println("note: SpArch and Gamma ran on the identical X-Cache microarchitecture;")
	fmt.Println("      only the datapath streaming order differs (§1).")
}
