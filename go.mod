module xcache

go 1.22
