package addrcache

import (
	"testing"

	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/sim"
)

func setup(t *testing.T, cfg Config) (*sim.Kernel, *mem.Image, *dram.DRAM, *Cache) {
	t.Helper()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	c := New(k, cfg, d.Req, d.Resp, &energy.Counters{})
	return k, img, d, c
}

func await(t *testing.T, k *sim.Kernel, c *Cache, n int) []AccessResp {
	t.Helper()
	var out []AccessResp
	if !k.RunUntil(func() bool {
		for {
			r, ok := c.RespQ.Pop()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return len(out) >= n
	}, 100000) {
		t.Fatalf("timeout: %d/%d responses", len(out), n)
	}
	return out
}

func TestMissThenHit(t *testing.T) {
	k, img, _, c := setup(t, Config{Sets: 16, Ways: 2})
	base := img.AllocWords(8)
	img.WriteWords(base, []uint64{1, 2, 3, 4, 5, 6, 7, 8})

	c.ReqQ.MustPush(Access{ID: 0, Addr: base + 8, Issued: k.Cycle()})
	r := await(t, k, c, 1)[0]
	if r.Data[1] != 2 {
		t.Fatalf("miss data: %v", r.Data)
	}
	missCycles := k.Cycle()

	start := k.Cycle()
	c.ReqQ.MustPush(Access{ID: 1, Addr: base, Issued: k.Cycle()})
	r = await(t, k, c, 1)[0]
	if r.Data[0] != 1 {
		t.Fatalf("hit data: %v", r.Data)
	}
	hitCycles := k.Cycle() - start
	if uint64(hitCycles) >= uint64(missCycles) {
		t.Fatalf("hit (%d) not faster than miss (%d)", hitCycles, missCycles)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMSHRMergesSameBlock(t *testing.T) {
	k, img, d, c := setup(t, Config{Sets: 16, Ways: 2})
	base := img.AllocWords(4)
	img.W64(base, 99)
	c.ReqQ.MustPush(Access{ID: 0, Addr: base, Issued: 0})
	c.ReqQ.MustPush(Access{ID: 1, Addr: base + 16, Issued: 0})
	rs := await(t, k, c, 2)
	if rs[0].Data[0] != 99 || rs[1].Data[0] != 99 {
		t.Fatalf("merged responses: %+v", rs)
	}
	if d.Stats().Reads != 1 {
		t.Fatalf("dram reads %d, want 1 (MSHR merge)", d.Stats().Reads)
	}
	if c.Stats().MSHRMerge != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestEvictionLRU(t *testing.T) {
	// 1 set, 1 way: every distinct block evicts the previous one.
	k, img, d, c := setup(t, Config{Sets: 1, Ways: 1})
	base := img.AllocWords(64)
	for i := 0; i < 3; i++ {
		img.W64(base+uint64(i)*32, uint64(i))
		c.ReqQ.MustPush(Access{ID: uint64(i), Addr: base + uint64(i)*32, Issued: 0})
		await(t, k, c, 1)
	}
	// Re-access block 0: must miss again.
	c.ReqQ.MustPush(Access{ID: 9, Addr: base, Issued: 0})
	await(t, k, c, 1)
	if d.Stats().Reads != 4 {
		t.Fatalf("dram reads %d, want 4", d.Stats().Reads)
	}
}

// chainWalk follows a linked list laid out as [next, value] nodes until
// value == target, mimicking a hash-bucket walk.
type chainWalk struct {
	head   uint64
	target uint64
	cur    uint64
	hash   int
	state  int
}

func (w *chainWalk) Next(blockBase uint64, data []uint64) (Step, *Result) {
	switch w.state {
	case 0: // issue head load, after optional hash compute
		w.state = 1
		w.cur = w.head
		return Step{Addr: w.head, ComputeCycles: w.hash}, nil
	default:
		off := (w.cur - blockBase) / 8
		next, val := data[off], data[off+1]
		if val == w.target {
			return Step{}, &Result{Found: true, Value: val, Words: 1}
		}
		if next == 0 {
			return Step{}, &Result{Found: false}
		}
		w.cur = next
		return Step{Addr: next}, nil
	}
}

// buildChain lays out a 2-word-node chain with the given values, aligned
// to 32 bytes so every node is a single block access.
func buildChain(img *mem.Image, vals []uint64) uint64 {
	nodes := make([]uint64, len(vals))
	for i := range vals {
		nodes[i] = img.Alloc(16, 32)
	}
	for i, v := range vals {
		next := uint64(0)
		if i+1 < len(vals) {
			next = nodes[i+1]
		}
		img.W64(nodes[i], next)
		img.W64(nodes[i]+8, v)
	}
	return nodes[0]
}

func TestEngineChainWalk(t *testing.T) {
	k, img, _, c := setup(t, Config{Sets: 16, Ways: 4})
	e := NewEngine(k, EngineConfig{Contexts: 2}, c)
	head := buildChain(img, []uint64{10, 20, 30, 40})

	e.Jobs.MustPush(Job{ID: 1, W: &chainWalk{head: head, target: 30}, Issued: k.Cycle()})
	var resp JobResp
	if !k.RunUntil(func() bool {
		r, ok := e.Resp.Pop()
		if ok {
			resp = r
		}
		return ok
	}, 100000) {
		t.Fatal("walk did not complete")
	}
	if !resp.Result.Found || resp.Result.Value != 30 {
		t.Fatalf("result %+v", resp.Result)
	}
	if e.Stats().Steps != 3 {
		t.Fatalf("steps %d, want 3 (head, node2, node3)", e.Stats().Steps)
	}
}

func TestEngineNotFoundAndComputeCost(t *testing.T) {
	k, img, _, c := setup(t, Config{Sets: 16, Ways: 4})
	e := NewEngine(k, EngineConfig{Contexts: 1}, c)
	head := buildChain(img, []uint64{1, 2})

	// Without hash cost.
	e.Jobs.MustPush(Job{ID: 1, W: &chainWalk{head: head, target: 99}, Issued: k.Cycle()})
	var r JobResp
	k.RunUntil(func() bool { rr, ok := e.Resp.Pop(); r = rr; return ok }, 100000)
	if r.Result.Found {
		t.Fatal("found nonexistent value")
	}
	fast := e.Stats().L2USum

	// With a 60-cycle hash: latency grows by exactly the compute cost
	// (cache state identical: chain now resident).
	e.Jobs.MustPush(Job{ID: 2, W: &chainWalk{head: head, target: 99, hash: 60}, Issued: k.Cycle()})
	k.RunUntil(func() bool { _, ok := e.Resp.Pop(); return ok }, 100000)
	slowDelta := e.Stats().L2USum - fast
	if slowDelta < 60 {
		t.Fatalf("hash cost not reflected: delta %d", slowDelta)
	}
	if e.Stats().ComputeCycles != 60 {
		t.Fatalf("compute cycles %d", e.Stats().ComputeCycles)
	}
}

func TestEngineParallelContexts(t *testing.T) {
	k, img, _, c := setup(t, Config{Sets: 64, Ways: 4})
	e := NewEngine(k, EngineConfig{Contexts: 4}, c)
	heads := make([]uint64, 8)
	for i := range heads {
		heads[i] = buildChain(img, []uint64{uint64(i), uint64(i + 100)})
	}
	for i, h := range heads {
		e.Jobs.MustPush(Job{ID: uint64(i), W: &chainWalk{head: h, target: uint64(i + 100)}, Issued: k.Cycle()})
	}
	got := 0
	if !k.RunUntil(func() bool {
		for {
			if _, ok := e.Resp.Pop(); !ok {
				break
			}
			got++
		}
		return got == 8
	}, 200000) {
		t.Fatalf("only %d/8 walks completed", got)
	}
	if !e.Idle() || !c.Idle() {
		t.Fatal("engine or cache not idle after drain")
	}
}

func TestWalkAlwaysWalksEvenWhenResident(t *testing.T) {
	// The address-tag pathology (§3.1): after caching the whole chain, a
	// repeat probe still performs every walk step.
	k, img, _, c := setup(t, Config{Sets: 64, Ways: 4})
	e := NewEngine(k, EngineConfig{Contexts: 1}, c)
	head := buildChain(img, []uint64{1, 2, 3, 4, 5})
	for i := 0; i < 2; i++ {
		e.Jobs.MustPush(Job{ID: uint64(i), W: &chainWalk{head: head, target: 5}, Issued: k.Cycle()})
		k.RunUntil(func() bool { _, ok := e.Resp.Pop(); return ok }, 100000)
	}
	if e.Stats().Steps != 10 {
		t.Fatalf("steps %d, want 10 (5 per probe, both probes walk)", e.Stats().Steps)
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Fatal("second probe should hit in the cache while still walking")
	}
}

func TestWriteHitAndReadback(t *testing.T) {
	k, img, _, c := setup(t, Config{Sets: 16, Ways: 2})
	base := img.AllocWords(4)
	img.W64(base, 5)
	// Load the block, then store over word 0, then read it back.
	c.ReqQ.MustPush(Access{ID: 0, Addr: base, Issued: 0})
	await(t, k, c, 1)
	c.ReqQ.MustPush(Access{ID: 1, Addr: base, Write: true, Data: 99, Issued: 0})
	await(t, k, c, 1)
	c.ReqQ.MustPush(Access{ID: 2, Addr: base, Issued: 0})
	r := await(t, k, c, 1)[0]
	if r.Data[0] != 99 {
		t.Fatalf("readback after store: %d", r.Data[0])
	}
	if c.Stats().Writebacks != 0 {
		t.Fatal("no eviction yet, no writeback expected")
	}
}

func TestWriteAllocateOnMiss(t *testing.T) {
	k, img, d, c := setup(t, Config{Sets: 16, Ways: 2})
	base := img.AllocWords(4)
	img.WriteWords(base, []uint64{1, 2, 3, 4})
	c.ReqQ.MustPush(Access{ID: 0, Addr: base + 8, Write: true, Data: 77, Issued: 0})
	r := await(t, k, c, 1)[0]
	if r.Data[1] != 77 || r.Data[0] != 1 {
		t.Fatalf("write-allocate merged wrong: %v", r.Data)
	}
	if d.Stats().Reads != 1 {
		t.Fatalf("write-allocate should fetch the block once: %d", d.Stats().Reads)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// 1 set, 1 way: storing then touching another block evicts dirty data.
	k, img, d, c := setup(t, Config{Sets: 1, Ways: 1})
	base := img.AllocWords(16)
	c.ReqQ.MustPush(Access{ID: 0, Addr: base, Write: true, Data: 42, Issued: 0})
	await(t, k, c, 1)
	c.ReqQ.MustPush(Access{ID: 1, Addr: base + 64, Issued: 0}) // conflicting block
	await(t, k, c, 1)
	if !k.RunUntil(func() bool { return d.Idle() }, 10000) {
		t.Fatal("writeback never drained")
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks %d", c.Stats().Writebacks)
	}
	if img.R64(base) != 42 {
		t.Fatalf("dirty data lost: %d", img.R64(base))
	}
	// Re-reading must return the written value from memory.
	c.ReqQ.MustPush(Access{ID: 2, Addr: base, Issued: 0})
	if r := await(t, k, c, 1)[0]; r.Data[0] != 42 {
		t.Fatalf("readback after writeback: %d", r.Data[0])
	}
}
