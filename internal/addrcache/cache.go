// Package addrcache implements the baseline the paper compares against: a
// conventional address-tagged set-associative cache (with MSHRs) fronted
// by a walk engine. Because the tags are addresses, the DSA must walk its
// data structure — hash, chase pointers, read row_ptr — through the cache
// on every access, even when the element it wants is already on chip;
// that is precisely the behaviour X-Cache's meta-tags short-circuit.
package addrcache

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/sim"
)

// Access is a block read — or, with Write set, a word store (the cache
// write-allocates and marks the line dirty) — issued to the cache.
type Access struct {
	ID     uint64
	Addr   uint64 // any address inside the block
	Write  bool
	Data   uint64 // word stored at Addr when Write
	Issued sim.Cycle
}

// AccessResp returns the whole enclosing block.
type AccessResp struct {
	ID        uint64
	BlockBase uint64
	Data      []uint64
}

// Config sets cache geometry and timing.
type Config struct {
	Sets       int
	Ways       int
	BlockWords int // words per block (4 → 32-byte blocks)
	HitLatency int
	MSHRs      int
	TagBytes   int // address tag bytes per way, charged per set probe
	ReqDepth   int
	RespDepth  int
}

func (c *Config) defaults() {
	if c.BlockWords == 0 {
		c.BlockWords = 4
	}
	if c.HitLatency == 0 {
		c.HitLatency = 3
	}
	if c.MSHRs == 0 {
		c.MSHRs = 16
	}
	if c.TagBytes == 0 {
		c.TagBytes = 4
	}
	if c.ReqDepth == 0 {
		c.ReqDepth = 32
	}
	if c.RespDepth == 0 {
		c.RespDepth = 64
	}
}

// Stats counts cache activity.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	MSHRMerge  uint64
	Fills      uint64
	Writebacks uint64
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	data  []uint64
	lru   uint64
}

type mshr struct {
	block   uint64
	waiters []Access
}

type pendingResp struct {
	readyAt sim.Cycle
	resp    AccessResp
	access  Access
}

// Cache is the address-tagged baseline cache.
type Cache struct {
	Cfg   Config
	ReqQ  *sim.Queue[Access]
	RespQ *sim.Queue[AccessResp]

	MemReq  *sim.Queue[dram.Request]
	MemResp *sim.Queue[dram.Response]

	sets    [][]line
	mshrs   map[uint64]*mshr
	pend    []pendingResp
	tick    uint64
	stats   Stats
	Meter   *energy.Counters
	nextTag uint64
	// Latency accounting mirrors ctrl.Stats so harnesses can compare.
	L2USum, L2UCount uint64
}

// New builds the cache and registers it with the kernel.
func New(k *sim.Kernel, cfg Config, memReq *sim.Queue[dram.Request],
	memResp *sim.Queue[dram.Response], meter *energy.Counters) *Cache {

	cfg.defaults()
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("addrcache: bad geometry %+v", cfg))
	}
	c := &Cache{
		Cfg:     cfg,
		MemReq:  memReq,
		MemResp: memResp,
		Meter:   meter,
		ReqQ:    sim.NewQueue[Access](k, "ac.req", cfg.ReqDepth),
		RespQ:   sim.NewQueue[AccessResp](k, "ac.resp", cfg.RespDepth),
		mshrs:   map[uint64]*mshr{},
	}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	k.Add(c)
	return c
}

// Stats returns a copy of the statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Idle reports whether no work is queued or in flight.
func (c *Cache) Idle() bool {
	return c.ReqQ.Len() == 0 && len(c.mshrs) == 0 && len(c.pend) == 0
}

// BlockBytes returns the block size in bytes.
func (c *Cache) BlockBytes() uint64 { return uint64(c.Cfg.BlockWords) * 8 }

func (c *Cache) blockOf(addr uint64) uint64 { return addr &^ (c.BlockBytes() - 1) }

func (c *Cache) setOf(block uint64) []line {
	idx := (block / c.BlockBytes()) & uint64(c.Cfg.Sets-1)
	return c.sets[idx]
}

// Tick implements sim.Component.
func (c *Cache) Tick(cy sim.Cycle) {
	c.deliver(cy)
	c.acceptFills(cy)

	// One lookup per cycle (single tag port, like the X-Cache front-end).
	acc, ok := c.ReqQ.Peek()
	if !ok {
		return
	}
	block := c.blockOf(acc.Addr)

	// Charge a set probe. CACTI serial (low-power) mode reads the tag
	// array once and then a single data way — one way-sized tag access.
	if c.Meter != nil {
		c.Meter.TagBytes += uint64(c.Cfg.TagBytes)
	}

	if m, exists := c.mshrs[block]; exists {
		if len(m.waiters) >= 8 {
			return // MSHR waiter list full: stall the port
		}
		c.ReqQ.Pop()
		c.stats.Accesses++
		c.stats.Misses++
		c.stats.MSHRMerge++
		m.waiters = append(m.waiters, acc)
		return
	}

	set := c.setOf(block)
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == block {
			c.ReqQ.Pop()
			c.stats.Accesses++
			c.stats.Hits++
			c.tick++
			ln.lru = c.tick
			if acc.Write {
				ln.data[(acc.Addr-block)/8] = acc.Data
				ln.dirty = true
			}
			if c.Meter != nil {
				c.Meter.DataBytes += c.BlockBytes()
			}
			c.pend = append(c.pend, pendingResp{
				readyAt: cy + sim.Cycle(c.Cfg.HitLatency),
				resp:    AccessResp{ID: acc.ID, BlockBase: block, Data: append([]uint64(nil), ln.data...)},
				access:  acc,
			})
			return
		}
	}

	// Miss: need an MSHR and a memory-request slot.
	if len(c.mshrs) >= c.Cfg.MSHRs || !c.MemReq.CanPush() {
		return
	}
	c.ReqQ.Pop()
	c.stats.Accesses++
	c.stats.Misses++
	c.mshrs[block] = &mshr{block: block, waiters: []Access{acc}}
	c.MemReq.MustPush(dram.Request{ID: block, Addr: block, Words: c.Cfg.BlockWords})
	if c.Meter != nil {
		c.Meter.DRAMAccesses++
		c.Meter.DRAMBytes += c.BlockBytes()
	}
}

func (c *Cache) deliver(cy sim.Cycle) {
	keep := c.pend[:0]
	for _, p := range c.pend {
		if p.readyAt <= cy && c.RespQ.CanPush() {
			c.RespQ.MustPush(p.resp)
			c.L2USum += uint64(cy - p.access.Issued)
			c.L2UCount++
			continue
		}
		keep = append(keep, p)
	}
	c.pend = keep
}

const wbFlag = uint64(1) << 63

// writeback pushes a dirty line to memory. Writebacks are off the
// critical path; if the memory queue is full the line is written back
// lazily on a later fill (a simplification a victim buffer would hide).
func (c *Cache) writeback(ln *line) {
	if !c.MemReq.Push(dram.Request{ID: wbFlag | ln.tag, Addr: ln.tag,
		Words: len(ln.data), Write: true, Data: append([]uint64(nil), ln.data...)}) {
		return
	}
	ln.dirty = false
	c.stats.Writebacks++
	if c.Meter != nil {
		c.Meter.DataBytes += c.BlockBytes()
		c.Meter.DRAMAccesses++
		c.Meter.DRAMBytes += c.BlockBytes()
	}
}

func (c *Cache) acceptFills(cy sim.Cycle) {
	for {
		resp, ok := c.MemResp.Peek()
		if !ok {
			break
		}
		if resp.ID&wbFlag != 0 {
			c.MemResp.Pop()
			continue // writeback ack
		}
		m, exists := c.mshrs[resp.ID]
		if !exists {
			panic(fmt.Sprintf("addrcache: fill for unknown block %#x", resp.ID))
		}
		c.MemResp.Pop()
		c.stats.Fills++
		delete(c.mshrs, resp.ID)

		// Install (LRU victim), writing back a dirty victim first.
		set := c.setOf(m.block)
		victim := &set[0]
		for i := range set {
			ln := &set[i]
			if !ln.valid {
				victim = ln
				break
			}
			if ln.lru < victim.lru {
				victim = ln
			}
		}
		if victim.valid && victim.dirty {
			c.writeback(victim)
		}
		c.tick++
		*victim = line{valid: true, tag: m.block, data: append([]uint64(nil), resp.Data...), lru: c.tick}
		if c.Meter != nil {
			c.Meter.DataBytes += c.BlockBytes()
		}

		// Answer every waiter, applying write-allocated stores in order.
		for _, acc := range m.waiters {
			if acc.Write {
				victim.data[(acc.Addr-m.block)/8] = acc.Data
				victim.dirty = true
			}
			if c.Meter != nil {
				c.Meter.DataBytes += c.BlockBytes()
			}
			c.pend = append(c.pend, pendingResp{
				readyAt: cy + sim.Cycle(c.Cfg.HitLatency),
				resp:    AccessResp{ID: acc.ID, BlockBase: m.block, Data: append([]uint64(nil), victim.data...)},
				access:  acc,
			})
		}
	}
}

// InvalidateAll drops every line (the DASX baseline reloads its
// read-only object cache each refill-compute-update round); dirty lines
// are discarded, so only use on read-only workloads.
func (c *Cache) InvalidateAll() {
	for si := range c.sets {
		for wi := range c.sets[si] {
			c.sets[si][wi] = line{}
		}
	}
}
