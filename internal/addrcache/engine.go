package addrcache

import (
	"xcache/internal/sim"
)

// Step is one address load of a data-structure walk, optionally preceded
// by datapath compute (e.g., Widx spends up to 60 cycles hashing a string
// key before it can index the bucket array).
type Step struct {
	Addr          uint64
	ComputeCycles int
}

// Result ends a walk.
type Result struct {
	Found bool
	Value uint64
	Words int // data words the walk produced (for bandwidth accounting)
}

// Walk is a stateful data-structure traversal. Next receives the block
// data of the previous step (nil on the first call, with the block base
// address) and returns either the next step or a final result.
type Walk interface {
	Next(blockBase uint64, data []uint64) (Step, *Result)
}

// Job submits a walk to the engine.
type Job struct {
	ID     uint64
	W      Walk
	Issued sim.Cycle
}

// JobResp completes a Job.
type JobResp struct {
	ID     uint64
	Result Result
}

// EngineConfig sets walk-engine parallelism.
type EngineConfig struct {
	Contexts  int // concurrent walks (matched to #Active for fairness)
	JobDepth  int
	RespDepth int
}

type ctxState uint8

const (
	ctxIdle ctxState = iota
	ctxCompute
	ctxWaitMem
)

type walkCtx struct {
	state   ctxState
	job     Job
	readyAt sim.Cycle // compute completion
	step    Step
}

// EngineStats counts engine activity.
type EngineStats struct {
	Jobs             uint64
	Steps            uint64
	ComputeCycles    uint64
	L2USum, L2UCount uint64
	L2UMax           uint64
}

// AvgLoadToUse is the mean job latency — for an address-tagged design the
// walk is on the critical path of every access, so this is the Fig 4
// "load-to-use" quantity.
func (s EngineStats) AvgLoadToUse() float64 {
	if s.L2UCount == 0 {
		return 0
	}
	return float64(s.L2USum) / float64(s.L2UCount)
}

// Engine drives Walks through the cache with bounded parallelism. The
// paper's comparison point makes orchestration decisions free (zero
// decision cost) but still pays for every address load the walk performs.
type Engine struct {
	Cfg   EngineConfig
	Jobs  *sim.Queue[Job]
	Resp  *sim.Queue[JobResp]
	cache *Cache
	ctxs  []walkCtx
	stats EngineStats
}

// resultBuffered charges the on-chip staging of a walk's produced words:
// the datapath consumes results from a row/object buffer exactly as it
// consumes X-Cache's data RAM, so the comparison stays symmetric.
func (e *Engine) resultBuffered(words int) {
	if e.cache.Meter != nil && words > 0 {
		e.cache.Meter.DataBytes += uint64(words) * 8
	}
}

// NewEngine builds a walk engine over cache.
func NewEngine(k *sim.Kernel, cfg EngineConfig, cache *Cache) *Engine {
	if cfg.Contexts == 0 {
		cfg.Contexts = 8
	}
	if cfg.JobDepth == 0 {
		cfg.JobDepth = 32
	}
	if cfg.RespDepth == 0 {
		cfg.RespDepth = 64
	}
	e := &Engine{
		Cfg:   cfg,
		Jobs:  sim.NewQueue[Job](k, "walk.jobs", cfg.JobDepth),
		Resp:  sim.NewQueue[JobResp](k, "walk.resp", cfg.RespDepth),
		cache: cache,
		ctxs:  make([]walkCtx, cfg.Contexts),
	}
	k.Add(e)
	return e
}

// Stats returns a copy of engine statistics.
func (e *Engine) Stats() EngineStats { return e.stats }

// Idle reports whether all contexts are idle and no jobs are queued.
func (e *Engine) Idle() bool {
	if e.Jobs.Len() > 0 {
		return false
	}
	for i := range e.ctxs {
		if e.ctxs[i].state != ctxIdle {
			return false
		}
	}
	return true
}

// Tick implements sim.Component.
func (e *Engine) Tick(cy sim.Cycle) {
	// Route cache responses back to waiting contexts.
	for {
		resp, ok := e.cache.RespQ.Peek()
		if !ok {
			break
		}
		ctx := &e.ctxs[resp.ID]
		if ctx.state != ctxWaitMem {
			panic("addrcache: response for non-waiting context")
		}
		e.cache.RespQ.Pop()
		e.advance(cy, ctx, resp.BlockBase, resp.Data)
	}

	for i := range e.ctxs {
		ctx := &e.ctxs[i]
		switch ctx.state {
		case ctxIdle:
			job, ok := e.Jobs.Pop()
			if !ok {
				continue
			}
			ctx.job = job
			e.stats.Jobs++
			e.advance(cy, ctx, 0, nil)
		case ctxCompute:
			if ctx.readyAt <= cy {
				e.issue(cy, ctx)
			}
		}
	}
}

// advance feeds data to the walk and handles its next step or result.
func (e *Engine) advance(cy sim.Cycle, ctx *walkCtx, blockBase uint64, data []uint64) {
	step, res := ctx.job.W.Next(blockBase, data)
	if res != nil {
		e.resultBuffered(res.Words)
		lat := uint64(cy - ctx.job.Issued)
		e.stats.L2USum += lat
		e.stats.L2UCount++
		if lat > e.stats.L2UMax {
			e.stats.L2UMax = lat
		}
		e.Resp.MustPush(JobResp{ID: ctx.job.ID, Result: *res})
		ctx.state = ctxIdle
		return
	}
	ctx.step = step
	e.stats.Steps++
	if step.ComputeCycles > 0 {
		e.stats.ComputeCycles += uint64(step.ComputeCycles)
		ctx.state = ctxCompute
		ctx.readyAt = cy + sim.Cycle(step.ComputeCycles)
		return
	}
	e.issue(cy, ctx)
}

func (e *Engine) issue(cy sim.Cycle, ctx *walkCtx) {
	idx := uint64(0)
	for i := range e.ctxs {
		if &e.ctxs[i] == ctx {
			idx = uint64(i)
			break
		}
	}
	if !e.cache.ReqQ.Push(Access{ID: idx, Addr: ctx.step.Addr, Issued: cy}) {
		// Port busy: stay in compute state and retry next cycle.
		ctx.state = ctxCompute
		ctx.readyAt = cy + 1
		return
	}
	ctx.state = ctxWaitMem
}
