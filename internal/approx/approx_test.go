package approx

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
)

// testScale keeps package tests in the sub-second range while leaving
// enough probes (~13k) for merges, evictions and replays to occur.
const testScale = 60

func testSpec() runner.Spec {
	return runner.Spec{
		DSA: runner.DSAWidx, Kind: dsa.KindXCache,
		Workload: "TPC-H-22", Scale: testScale,
	}
}

// testCapture memoises the donor run across tests.
var (
	capOnce sync.Once
	capVal  *Capture
	capErr  error
)

func testCapture(t *testing.T) *Capture {
	t.Helper()
	capOnce.Do(func() { capVal, capErr = CaptureWidx(testSpec()) })
	if capErr != nil {
		t.Fatalf("CaptureWidx: %v", capErr)
	}
	return capVal
}

// donorGeometry reproduces the exact path's scaling of the donor config.
func donorGeometry(scale int) core.Config {
	return core.WidxConfig().Scaled(runner.CacheDiv(scale))
}

func TestCaptureSelfConsistent(t *testing.T) {
	cap := testCapture(t)
	if len(cap.Events) == 0 {
		t.Fatal("capture recorded no events")
	}
	if cap.DonorHits != cap.Donor.OnChipHits || cap.DonorMisses != cap.Donor.OnChipMisses {
		t.Fatalf("trace classes %d/%d disagree with donor result %d/%d",
			cap.DonorHits, cap.DonorMisses, cap.Donor.OnChipHits, cap.Donor.OnChipMisses)
	}
	if !cap.Donor.Checked {
		t.Fatal("donor run failed functional validation")
	}
}

// TestTagSimSingleConfigExact is the tier's keystone property: Engine A
// replayed against the donor's own geometry must reproduce the full
// simulator's controller hit/miss counts bit-exactly, with zero
// synthesized walks.
func TestTagSimSingleConfigExact(t *testing.T) {
	cap := testCapture(t)
	g := donorGeometry(testScale)
	res, err := ReplayTags(cap, []TagConfig{{Name: "donor", Sets: g.Sets, Ways: g.Ways}})
	if err != nil {
		t.Fatalf("ReplayTags: %v", err)
	}
	r := res[0]
	if r.Hits != cap.Donor.OnChipHits || r.Misses != cap.Donor.OnChipMisses {
		t.Fatalf("donor replay %d/%d, exact simulator %d/%d",
			r.Hits, r.Misses, cap.Donor.OnChipHits, cap.Donor.OnChipMisses)
	}
	if r.Synthesized != 0 {
		t.Fatalf("donor replay synthesized %d walks; must be 0", r.Synthesized)
	}
}

// TestTagSimMultiConfigIndependence: evaluating the donor geometry
// alongside others in one pass must not perturb it, and capacity must
// order hit rates sanely.
func TestTagSimMultiConfigIndependence(t *testing.T) {
	cap := testCapture(t)
	g := donorGeometry(testScale)
	cfgs := []TagConfig{
		{Name: "eighth", Sets: g.Sets / 8, Ways: g.Ways},
		{Name: "donor", Sets: g.Sets, Ways: g.Ways},
		{Name: "double", Sets: g.Sets * 2, Ways: g.Ways},
	}
	res, err := ReplayTags(cap, cfgs)
	if err != nil {
		t.Fatalf("ReplayTags: %v", err)
	}
	if res[1].Hits != cap.Donor.OnChipHits || res[1].Misses != cap.Donor.OnChipMisses {
		t.Fatalf("donor cell perturbed by co-evaluated configs: %d/%d vs %d/%d",
			res[1].Hits, res[1].Misses, cap.Donor.OnChipHits, cap.Donor.OnChipMisses)
	}
	if res[0].HitRate() > res[1].HitRate() {
		t.Fatalf("eighth-capacity hit rate %.4f exceeds donor %.4f",
			res[0].HitRate(), res[1].HitRate())
	}
	if res[2].HitRate() < res[1].HitRate() {
		t.Fatalf("double-capacity hit rate %.4f below donor %.4f",
			res[2].HitRate(), res[1].HitRate())
	}
}

func TestCaptureDeterministic(t *testing.T) {
	cap1 := testCapture(t)
	cap2, err := CaptureWidx(testSpec())
	if err != nil {
		t.Fatalf("second capture: %v", err)
	}
	if !reflect.DeepEqual(cap1.Events, cap2.Events) {
		t.Fatal("two captures of the same spec produced different event streams")
	}
	if cap1.Donor != cap2.Donor {
		t.Fatal("two captures of the same spec produced different donor results")
	}
}

func TestCaptureRejects(t *testing.T) {
	cases := map[string]runner.Spec{
		"wrong dsa":  {DSA: runner.DSADASX, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: testScale},
		"wrong kind": {DSA: runner.DSAWidx, Kind: dsa.KindBaseline, Workload: "TPC-H-22", Scale: testScale},
		"hardened":   {DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: testScale, Check: true},
		"faults": {DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: testScale,
			Faults: check.FaultConfig{DropResp: 0.01}},
		"windowed": {DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: testScale, WinLen: 10},
		"threaded": {DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: testScale,
			Mode: ctrl.ModeThread},
	}
	for name, spec := range cases {
		if _, err := CaptureWidx(spec); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: want ErrUnsupported, got %v", name, err)
		}
	}
}

func TestReplayTagsErrors(t *testing.T) {
	cap := testCapture(t)
	cases := map[string][]TagConfig{
		"empty":     {},
		"unnamed":   {{Sets: 64, Ways: 8}},
		"duplicate": {{Name: "a", Sets: 64, Ways: 8}, {Name: "a", Sets: 32, Ways: 8}},
		"zero sets": {{Name: "a", Sets: 0, Ways: 8}},
		"non-pow2":  {{Name: "a", Sets: 48, Ways: 8}},
		"zero ways": {{Name: "a", Sets: 64, Ways: 0}},
	}
	for name, cfgs := range cases {
		if _, err := ReplayTags(cap, cfgs); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: want ErrBadConfig, got %v", name, err)
		}
	}
	if _, err := ReplayTags(nil, []TagConfig{{Name: "a", Sets: 64, Ways: 8}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil capture: want ErrBadConfig, got %v", err)
	}
}

func TestIntervalPlanErrors(t *testing.T) {
	cases := map[string]IntervalPlan{
		"zero windows":     {Windows: 0, WindowFrac: 0.1},
		"negative windows": {Windows: -3, WindowFrac: 0.1},
		"zero frac":        {Windows: 2, WindowFrac: 0},
		"frac > 1":         {Windows: 2, WindowFrac: 1.5},
		"nan frac":         {Windows: 2, WindowFrac: math.NaN()},
		"inf frac":         {Windows: 2, WindowFrac: math.Inf(1)},
		"neg warmup":       {Windows: 2, WindowFrac: 0.1, WarmupFrac: -0.2},
		"warmup >= 1":      {Windows: 2, WindowFrac: 0.1, WarmupFrac: 1},
		"nan warmup":       {Windows: 2, WindowFrac: 0.1, WarmupFrac: math.NaN()},
		"warmup too long":  {Windows: 2, WindowFrac: 0.5, WarmupFrac: 0.9},
	}
	for name, plan := range cases {
		if _, err := plan.layout(1000); !errors.Is(err, ErrBadPlan) {
			t.Errorf("%s: want ErrBadPlan, got %v", name, err)
		}
	}
	if _, err := (IntervalPlan{Windows: 1, WindowFrac: 0.1}).layout(0); !errors.Is(err, ErrBadPlan) {
		t.Errorf("empty workload: want ErrBadPlan, got %v", err)
	}
}

func TestEstimateWidxRejects(t *testing.T) {
	r := runner.New(1)
	plan := IntervalPlan{Windows: 2, WindowFrac: 0.05, WarmupFrac: 0.05}
	spec := testSpec()
	if _, err := EstimateWidx(nil, spec, plan); !errors.Is(err, ErrBadPlan) {
		t.Errorf("nil runner: want ErrBadPlan, got %v", err)
	}
	bad := spec
	bad.DSA = runner.DSAGamma
	if _, err := EstimateWidx(r, bad, plan); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unsupported dsa: want ErrUnsupported, got %v", err)
	}
	bad = spec
	bad.WinLen = 7
	if _, err := EstimateWidx(r, bad, plan); !errors.Is(err, ErrUnsupported) {
		t.Errorf("pre-windowed spec: want ErrUnsupported, got %v", err)
	}
	bad = spec
	bad.Check = true
	if _, err := EstimateWidx(r, bad, plan); !errors.Is(err, ErrUnsupported) {
		t.Errorf("hardened spec: want ErrUnsupported, got %v", err)
	}
	bad = spec
	bad.Workload = "no-such-workload"
	if _, err := EstimateWidx(r, bad, plan); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unknown workload: want ErrUnsupported, got %v", err)
	}
	if _, err := EstimateWidx(r, spec, IntervalPlan{}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("degenerate plan: want ErrBadPlan, got %v", err)
	}
}

func TestEstimateWidxSanity(t *testing.T) {
	r := runner.New(2)
	spec := testSpec()
	plan := IntervalPlan{Windows: 3, WindowFrac: 0.05, WarmupFrac: 0.05}
	est, err := EstimateWidx(r, spec, plan)
	if err != nil {
		t.Fatalf("EstimateWidx: %v", err)
	}
	if !est.Checked {
		t.Fatal("window runs failed functional validation")
	}
	exact, err := r.One(spec)
	if err != nil {
		t.Fatalf("exact run: %v", err)
	}
	if d := math.Abs(est.HitRate - exact.HitRate); d > 0.15 {
		t.Errorf("hit-rate estimate %.4f vs exact %.4f (|err| %.4f)", est.HitRate, exact.HitRate, d)
	}
	if rel := math.Abs(est.Cycles-float64(exact.Cycles)) / float64(exact.Cycles); rel > 0.5 {
		t.Errorf("cycles estimate %.0f vs exact %d (rel err %.2f)", est.Cycles, exact.Cycles, rel)
	}
	if est.SimCycles == 0 || est.SampledProbes == 0 {
		t.Error("estimate reports no simulated work")
	}
	if est.SampledProbes >= est.Probes {
		t.Errorf("sampled %d probes of %d — not a reduction", est.SampledProbes, est.Probes)
	}

	// Byte-level determinism across worker counts: a fresh serial runner
	// must reproduce the estimate exactly.
	est2, err := EstimateWidx(runner.New(1), spec, plan)
	if err != nil {
		t.Fatalf("serial EstimateWidx: %v", err)
	}
	if *est != *est2 {
		t.Fatalf("estimate differs across runners:\n%+v\n%+v", est, est2)
	}
}
