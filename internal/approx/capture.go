// Package approx is the approximate evaluation tier: fast, bounded-error
// estimates of sweep cells that the exact cycle-accurate simulator would
// take orders of magnitude longer to produce.
//
// Two engines, both fed from the exact simulator so they inherit its
// workload generation and semantics rather than re-modelling them:
//
//   - Engine A (ReplayTags): one-pass multi-configuration tag simulation.
//     A single exact "donor" run records its meta-tag reference trace;
//     replaying that trace against N alternative cache geometries
//     simultaneously yields each geometry's hit/miss ratio in one pass.
//     Replaying against the donor's own geometry is bit-exact.
//
//   - Engine B (EstimateWidx): warm-up + sampled execution windows. K
//     short windows of the full simulator are run (each preceded by a
//     warm-up slice whose stats are subtracted out) and the per-window
//     rates are extrapolated to the full run with Student-t confidence
//     intervals.
package approx

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
)

// Capture is one donor run's recorded reference trace plus the exact
// result it produced. It is the input to Engine A.
type Capture struct {
	Spec   runner.Spec
	Events []ctrl.TraceEvent
	Donor  dsa.Result

	// DonorHits/DonorMisses are recomputed from the event classes and
	// cross-checked against the donor result at capture time, so a
	// Capture in hand is already validated self-consistent.
	DonorHits   uint64
	DonorMisses uint64
}

// recorder is the trivial TraceSink: append everything.
type recorder struct{ events []ctrl.TraceEvent }

func (r *recorder) Trace(ev ctrl.TraceEvent) { r.events = append(r.events, ev) }

// CaptureWidx runs the spec exactly once with the controller trace tap
// attached and returns the recorded reference stream. The spec must be a
// plain Widx/X-Cache cell: no fault injection, no hardening harness, no
// sampled window, default (coroutine) exec mode — anything else either
// cannot emit a trace or would emit one the replay model cannot mirror.
func CaptureWidx(spec runner.Spec) (*Capture, error) {
	if spec.DSA != runner.DSAWidx || spec.Kind != dsa.KindXCache {
		return nil, fmt.Errorf("%w: capture requires %s[%s], got %s[%s]",
			ErrUnsupported, runner.DSAWidx, dsa.KindXCache, spec.DSA, spec.Kind)
	}
	if spec.Check || spec.Faults.Any() {
		return nil, fmt.Errorf("%w: capture cannot run under the hardening harness", ErrUnsupported)
	}
	if spec.WinLen != 0 {
		return nil, fmt.Errorf("%w: capture requires the full run, not a sampled window", ErrUnsupported)
	}
	if spec.Mode != ctrl.ModeCoroutine {
		return nil, fmt.Errorf("%w: capture requires the default exec mode", ErrUnsupported)
	}
	rec := &recorder{}
	res, err := spec.ExecuteTraced(rec)
	if err != nil {
		return nil, err
	}
	c := &Capture{Spec: spec, Events: rec.events, Donor: res}
	for _, ev := range rec.events {
		switch ev.Kind {
		case ctrl.TraceReq:
			switch ev.Class {
			case ctrl.ClassHit:
				c.DonorHits++
			case ctrl.ClassMiss:
				c.DonorMisses++
			}
		case ctrl.TraceAllocRetry:
			// An allocation conflict pushed the origin request back to
			// replay, where the front-end classifies it a second time.
			// The replay model cannot tell that re-admission from a
			// waiter replay, so the donor-exactness guarantee is void.
			return nil, fmt.Errorf("%w: donor trace contains allocation retries", ErrUnsupported)
		}
	}
	if c.DonorHits != res.OnChipHits || c.DonorMisses != res.OnChipMisses {
		return nil, fmt.Errorf("approx: capture self-check failed: trace classes %d/%d vs controller %d/%d",
			c.DonorHits, c.DonorMisses, res.OnChipHits, res.OnChipMisses)
	}
	return c, nil
}
