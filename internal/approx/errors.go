package approx

import "errors"

// Sentinel errors. Every rejection the package can produce wraps one of
// these, so callers (and the fuzz harness) can classify failures with
// errors.Is instead of string matching — degenerate plans must surface
// as typed errors, never panics.
var (
	// ErrBadPlan rejects a degenerate interval-sampling plan: zero
	// windows, a non-positive window, warm-up plus window longer than
	// the run, or an unsupported confidence level.
	ErrBadPlan = errors.New("approx: invalid interval plan")

	// ErrBadConfig rejects a degenerate tag-simulation request: no
	// configurations, duplicate names, or an impossible geometry.
	ErrBadConfig = errors.New("approx: invalid tag-simulation configuration")

	// ErrUnsupported rejects a capture or estimate over a spec the
	// approximation tier cannot soundly evaluate (wrong DSA/kind, fault
	// injection, thread mode, nested windows) — or a donor run whose
	// trace contains events the replay model cannot mirror exactly
	// (allocation retries).
	ErrUnsupported = errors.New("approx: unsupported spec for approximate evaluation")
)
