package approx

import (
	"errors"
	"testing"

	"xcache/internal/ctrl"
	"xcache/internal/metatag"
)

// FuzzIntervalPlan: any plan/workload combination must either fail with
// the typed ErrBadPlan or lay out exactly Windows in-bounds windows —
// never panic, never place a window outside the probe trace.
func FuzzIntervalPlan(f *testing.F) {
	f.Add(3, 0.05, 0.05, 10000)
	f.Add(0, 0.1, 0.0, 100)   // zero windows
	f.Add(2, 0.5, 0.9, 100)   // warm-up longer than the run leaves room for
	f.Add(1, 1.0, 0.0, 1)     // whole-trace window
	f.Add(5, -0.1, 0.5, 1000) // negative window
	f.Add(4, 0.25, -1.0, 0)   // empty workload
	f.Add(1<<20, 0.001, 0.001, 1<<20)
	f.Fuzz(func(t *testing.T, windows int, winFrac, warmFrac float64, total int) {
		plan := IntervalPlan{Windows: windows, WindowFrac: winFrac, WarmupFrac: warmFrac}
		ws, err := plan.layout(total)
		if err != nil {
			if !errors.Is(err, ErrBadPlan) {
				t.Fatalf("layout error is not ErrBadPlan: %v", err)
			}
			return
		}
		if len(ws) != windows {
			t.Fatalf("laid out %d windows, want %d", len(ws), windows)
		}
		for i, w := range ws {
			if w.start < 0 || w.warm < 0 || w.length < 1 {
				t.Fatalf("window %d degenerate: %+v", i, w)
			}
			if w.start+w.warm+w.length > total {
				t.Fatalf("window %d overruns the %d-probe trace: %+v", i, total, w)
			}
		}
	})
}

// FuzzReplayTags feeds Engine A adversarial synthetic event streams: the
// replay model must never panic and must account every admitted request
// at most once, regardless of stream shape. Events are decoded from raw
// bytes so the fuzzer can construct orderings the real controller never
// emits (double allocs, settles without walks, replays never merged).
func FuzzReplayTags(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 4, 2)
	f.Add([]byte{1, 1, 1, 1, 0, 0, 2, 2, 3, 3, 4, 4}, 1, 1)
	f.Add([]byte{}, 8, 8)
	f.Fuzz(func(t *testing.T, raw []byte, setsLog, ways int) {
		if setsLog < 0 || setsLog > 8 || ways < 1 || ways > 16 {
			return
		}
		events := make([]ctrl.TraceEvent, 0, len(raw)/2)
		reqs := uint64(0)
		for i := 0; i+1 < len(raw); i += 2 {
			kind := ctrl.TraceKind(raw[i] % 8)
			key := metatag.Key{uint64(raw[i+1] % 16)}
			ev := ctrl.TraceEvent{Kind: kind, Key: key}
			switch kind {
			case ctrl.TraceReq:
				ev.Class = ctrl.ReqClass(raw[i+1] % 3)
				ev.Replay = raw[i+1]&16 != 0
				ev.ID = reqs
				reqs++
			case ctrl.TraceAlloc:
				ev.State = int(raw[i+1] % 4)
			case ctrl.TraceSettle:
				ev.HasEntry = raw[i+1]&32 != 0
				ev.Store = raw[i+1]&64 != 0
			}
			events = append(events, ev)
		}
		cap := &Capture{Events: events}
		res, err := ReplayTags(cap, []TagConfig{
			{Name: "fuzz", Sets: 1 << setsLog, Ways: ways},
		})
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		if res[0].Hits+res[0].Misses > reqs {
			t.Fatalf("accounted %d+%d requests, stream admitted %d",
				res[0].Hits, res[0].Misses, reqs)
		}
	})
}
