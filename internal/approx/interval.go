package approx

import (
	"fmt"
	"math"

	"xcache/internal/dsa"
	"xcache/internal/dsa/widx"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
)

// IntervalPlan configures Engine B: K sampled execution windows, each a
// WindowFrac slice of the probe trace preceded by a WarmupFrac warm-up
// slice whose statistics are subtracted out (run twice, warm-up-only and
// warm-up+window, and differenced — the simulator has no state snapshot).
type IntervalPlan struct {
	Windows    int
	WindowFrac float64 // fraction of the probe trace per measured window
	WarmupFrac float64 // fraction of the probe trace warmed before each window
}

// window is one laid-out sample: warm probes of warm-up starting at
// start, then length measured probes.
type window struct {
	start, warm, length int
}

// layout validates the plan against a run of total probes and returns the
// stratified window placement: window starts spread evenly over the trace
// so phase behaviour at either end is represented.
func (p IntervalPlan) layout(total int) ([]window, error) {
	if total <= 0 {
		return nil, fmt.Errorf("%w: empty workload (%d probes)", ErrBadPlan, total)
	}
	if p.Windows <= 0 {
		return nil, fmt.Errorf("%w: zero sample windows", ErrBadPlan)
	}
	if !(p.WindowFrac > 0) || p.WindowFrac > 1 || math.IsInf(p.WindowFrac, 0) {
		return nil, fmt.Errorf("%w: window fraction %v outside (0, 1]", ErrBadPlan, p.WindowFrac)
	}
	if !(p.WarmupFrac >= 0) || p.WarmupFrac >= 1 || math.IsInf(p.WarmupFrac, 0) {
		return nil, fmt.Errorf("%w: warm-up fraction %v outside [0, 1)", ErrBadPlan, p.WarmupFrac)
	}
	warm := int(p.WarmupFrac * float64(total))
	length := int(p.WindowFrac * float64(total))
	if length < 1 {
		length = 1
	}
	span := warm + length
	if span > total {
		return nil, fmt.Errorf("%w: warm-up (%d) plus window (%d) exceed the run (%d probes)",
			ErrBadPlan, warm, length, total)
	}
	ws := make([]window, p.Windows)
	for j := range ws {
		var start int
		if p.Windows == 1 {
			start = (total - span) / 2
		} else {
			start = j * (total - span) / (p.Windows - 1)
		}
		ws[j] = window{start: start, warm: warm, length: length}
	}
	return ws, nil
}

// IntervalEstimate is Engine B's extrapolation for one spec: full-run
// totals estimated from the sampled windows, each with a two-sided 95%
// Student-t confidence half-width (zero when only one window was
// sampled — a point estimate carries no variance information).
type IntervalEstimate struct {
	Probes  int // full-run probe count being extrapolated to
	Windows int

	Cycles    float64
	CyclesCI  float64
	HitRate   float64
	HitRateCI float64
	Misses    float64
	MissesCI  float64
	EnergyPJ  float64
	EnergyCI  float64

	// SampledProbes is the number of probes actually simulated (warm-up
	// and measurement, across both runs of every window) and SimCycles
	// the simulated cycles spent — the numerator of the tier's
	// work-reduction claim. Both are deterministic simulation counters,
	// not wall-clock.
	SampledProbes int
	SimCycles     uint64

	// Checked is true when every window run passed the simulator's
	// functional validation against the reference implementation.
	Checked bool
}

// EstimateWidx samples spec through the runner (so window runs land in
// the content-addressed cache under their own window-keyed hashes) and
// extrapolates full-run cycles, misses, hit rate and on-chip energy.
func EstimateWidx(r *runner.Runner, spec runner.Spec, plan IntervalPlan) (*IntervalEstimate, error) {
	if r == nil {
		return nil, fmt.Errorf("%w: nil runner", ErrBadPlan)
	}
	if spec.DSA != runner.DSAWidx && spec.DSA != runner.DSADASX {
		return nil, fmt.Errorf("%w: %s does not support sampled windows", ErrUnsupported, spec.DSA)
	}
	if spec.WinLen != 0 {
		return nil, fmt.Errorf("%w: spec already carries a window", ErrUnsupported)
	}
	if spec.Check || spec.Faults.Any() {
		return nil, fmt.Errorf("%w: sampled estimation under fault injection is not meaningful", ErrUnsupported)
	}
	var prof hashidx.Profile
	found := false
	for _, p := range hashidx.TPCH() {
		if p.Name == spec.Workload {
			prof, found = p, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: unknown workload %q", ErrUnsupported, spec.Workload)
	}
	ws := spec.WorkScale
	if ws <= 0 {
		ws = spec.Scale
	}
	total := widx.DefaultWork(prof, ws).Probes
	wins, err := plan.layout(total)
	if err != nil {
		return nil, err
	}

	// Two runs per window (warm-up-only, warm-up+window); the warm-up-only
	// run is skipped when the plan has no warm-up.
	specs := make([]runner.Spec, 0, 2*len(wins))
	warmAt := make([]int, len(wins)) // index into specs, -1 when skipped
	fullAt := make([]int, len(wins))
	for j, w := range wins {
		warmAt[j] = -1
		if w.warm > 0 {
			s := spec
			s.WinStart, s.WinLen = w.start, w.warm
			warmAt[j] = len(specs)
			specs = append(specs, s)
		}
		s := spec
		s.WinStart, s.WinLen = w.start, w.warm+w.length
		fullAt[j] = len(specs)
		specs = append(specs, s)
	}
	results, err := r.Run(specs)
	if err != nil {
		return nil, err
	}

	est := &IntervalEstimate{Probes: total, Windows: len(wins), Checked: true}
	cycPP := make([]float64, len(wins)) // cycles per probe
	rates := make([]float64, len(wins))
	missPP := make([]float64, len(wins))
	enPP := make([]float64, len(wins))
	for j, w := range wins {
		full := results[fullAt[j]]
		var warm dsa.Result
		if warmAt[j] >= 0 {
			warm = results[warmAt[j]]
		}
		est.Checked = est.Checked && full.Checked && (warmAt[j] < 0 || warm.Checked)
		est.SimCycles += full.Cycles + warm.Cycles
		est.SampledProbes += (w.warm + w.length) + w.warm

		dCyc := subU64(full.Cycles, warm.Cycles)
		dHit := subU64(full.OnChipHits, warm.OnChipHits)
		dMiss := subU64(full.OnChipMisses, warm.OnChipMisses)
		dEn := full.Energy.OnChip() - warm.Energy.OnChip()
		if dEn < 0 {
			dEn = 0
		}
		n := float64(w.length)
		cycPP[j] = float64(dCyc) / n
		missPP[j] = float64(dMiss) / n
		enPP[j] = dEn / n
		if dHit+dMiss > 0 {
			rates[j] = float64(dHit) / float64(dHit+dMiss)
		}
	}

	p := float64(total)
	est.Cycles, est.CyclesCI = scaleStat(cycPP, p)
	est.Misses, est.MissesCI = scaleStat(missPP, p)
	est.EnergyPJ, est.EnergyCI = scaleStat(enPP, p)
	est.HitRate, est.HitRateCI = scaleStat(rates, 1)
	return est, nil
}

// subU64 is saturating subtraction: the warm-up-only run is a prefix of
// the window run, so its counters never exceed the window run's except
// through sub-cycle drain effects, which clamp to zero.
func subU64(a, b uint64) uint64 {
	if b > a {
		return 0
	}
	return a - b
}

// scaleStat returns mean(xs)*scale and the matching 95% t-interval
// half-width. One sample yields a zero half-width.
func scaleStat(xs []float64, scale float64) (mean, ci float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	if len(xs) < 2 {
		return mean * scale, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / (n - 1))
	ci = tCrit95(len(xs)-1) * sd / math.Sqrt(n)
	return mean * scale, ci * scale
}

// tCrit95 is the two-sided 95% Student-t critical value for df degrees of
// freedom. Engine B samples a handful of windows, so a small exact table
// suffices; larger df fall back to the normal approximation.
func tCrit95(df int) float64 {
	table := [...]float64{
		1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
		6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
	}
	if df >= 1 && df <= 10 {
		return table[df]
	}
	return 1.960
}
