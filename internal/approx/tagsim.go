package approx

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/metatag"
	"xcache/internal/program"
)

// TagConfig is one alternative meta-tag geometry to evaluate against a
// captured reference trace.
type TagConfig struct {
	Name          string
	Sets          int // must be a positive power of two
	Ways          int // must be positive
	KeyWords      int // 0 defaults to the donor array's 1
	IdentityIndex bool
}

// SoundFor reports whether Engine A's replay model is inside its
// validity envelope for this geometry, given the donor controller's
// walker concurrency. The replay sees the donor's reference stream but
// not the model geometry's own timing: allocation-conflict stalls (every
// way of a set held transiently by concurrent walkers) and the walk
// retries they trigger are invisible to it, and those effects dominate
// the hit rate once associativity drops below ~4 or total capacity
// stops comfortably exceeding the number of concurrent walkers.
// Out-of-envelope geometries should be estimated with Engine B (sampled
// windows of the full simulator), which does model them.
func (c TagConfig) SoundFor(numActive int) bool {
	return c.Ways >= 4 && c.Sets*c.Ways >= 4*numActive
}

// TagResult is Engine A's estimate for one geometry: the hit/miss counts
// the controller front-end would have reported. Exact when the geometry
// equals the donor's; an approximation otherwise (see the package README
// for the two cross-geometry modelling assumptions).
type TagResult struct {
	Name   string
	Sets   int
	Ways   int
	Hits   uint64
	Misses uint64
	// Synthesized counts walks the model fabricated from learned key
	// outcomes because the donor served the access without walking
	// (possible only when the model geometry differs from the donor's);
	// it is a direct measure of how far off-policy the replay ran.
	Synthesized uint64
}

// HitRate returns Hits / (Hits + Misses), or 0 for an empty run.
func (r TagResult) HitRate() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// ReplayTags replays the captured reference trace against every config in
// one pass over the event stream and returns per-config hit/miss counts
// in config order. An empty config list is a typed error, not a no-op: a
// zero-configuration Engine A plan is degenerate.
func ReplayTags(cap *Capture, cfgs []TagConfig) ([]TagResult, error) {
	if cap == nil {
		return nil, fmt.Errorf("%w: nil capture", ErrBadConfig)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("%w: no geometries to evaluate", ErrBadConfig)
	}
	seen := make(map[string]struct{}, len(cfgs))
	models := make([]*tagModel, len(cfgs))
	for i, cfg := range cfgs {
		if cfg.Name == "" {
			return nil, fmt.Errorf("%w: config %d has no name", ErrBadConfig, i)
		}
		if _, dup := seen[cfg.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate config name %q", ErrBadConfig, cfg.Name)
		}
		seen[cfg.Name] = struct{}{}
		if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
			return nil, fmt.Errorf("%w: %s: sets must be a positive power of two, got %d",
				ErrBadConfig, cfg.Name, cfg.Sets)
		}
		if cfg.Ways <= 0 {
			return nil, fmt.Errorf("%w: %s: ways must be positive, got %d",
				ErrBadConfig, cfg.Name, cfg.Ways)
		}
		kw := cfg.KeyWords
		if kw == 0 {
			kw = 1
		}
		models[i] = newTagModel(metatag.Config{
			Sets: cfg.Sets, Ways: cfg.Ways, KeyWords: kw,
			IdentityIndex: cfg.IdentityIndex,
		})
	}
	for _, ev := range cap.Events {
		for _, m := range models {
			m.apply(ev)
		}
	}
	out := make([]TagResult, len(cfgs))
	for i, cfg := range cfgs {
		out[i] = TagResult{
			Name: cfg.Name, Sets: cfg.Sets, Ways: cfg.Ways,
			Hits: models[i].hits, Misses: models[i].misses,
			Synthesized: models[i].synth,
		}
	}
	return out, nil
}

// walk mirrors one in-flight donor walk in the model: the donor's
// Alloc/Settle/Abort/Dealloc events for the key drive the model entry's
// lifecycle. Model walk lifetimes are a subset of donor walk lifetimes
// (the model only opens a walk at a donor spawn or a donor merge), which
// is what makes attributing donor walker events by key unambiguous.
type walk struct {
	entry *metatag.Entry
}

// tagModel replays the donor reference stream against one geometry. The
// donor config replays bit-exactly: events are emitted at the donor's
// array-mutation points in temporal order, metatag.Array supplies the
// identical victim/LRU policy, and the merged-waiter bookkeeping mirrors
// the controller's replay-queue accounting (see classify).
type tagModel struct {
	tags     *metatag.Array
	inflight map[metatag.Key]*walk
	// mergedIDs holds request ids this model merged behind an in-flight
	// walk. The donor replays its own merged waiters after the walk
	// settles; a replayed request is classified here only if this model
	// also merged it, and a replayed request this model already served
	// is skipped (it was counted at first admission).
	mergedIDs map[uint64]struct{}
	// keyCaches is the learned outcome per key: true when a completed
	// donor walk left a stable entry (found), false when it aborted
	// (not-found) or settled entry-less. It lets the model synthesize an
	// instant walk when it misses where the donor hit.
	keyCaches map[metatag.Key]bool

	hits, misses, synth uint64
}

func newTagModel(cfg metatag.Config) *tagModel {
	return &tagModel{
		tags:      metatag.New(cfg, nil),
		inflight:  make(map[metatag.Key]*walk),
		mergedIDs: make(map[uint64]struct{}),
		keyCaches: make(map[metatag.Key]bool),
	}
}

func (m *tagModel) apply(ev ctrl.TraceEvent) {
	switch ev.Kind {
	case ctrl.TraceReq:
		if ev.Replay {
			if _, merged := m.mergedIDs[ev.ID]; !merged {
				return // this model served it at first admission
			}
			delete(m.mergedIDs, ev.ID)
		}
		m.classify(ev)

	case ctrl.TraceAlloc:
		w := m.inflight[ev.Key]
		if w == nil || w.entry != nil || m.tags.Probe(ev.Key) != nil {
			return
		}
		if e, _, ok := m.tags.Alloc(ev.Key, ev.State, 0); ok {
			w.entry = e
		}
		// On failure (all ways transient in this smaller geometry) the
		// walk continues entry-less; Settle retries with a stable entry.

	case ctrl.TraceDealloc:
		if w := m.inflight[ev.Key]; w != nil && w.entry != nil {
			m.tags.Dealloc(w.entry)
			w.entry = nil
		}

	case ctrl.TraceSettle:
		m.keyCaches[ev.Key] = ev.HasEntry
		w := m.inflight[ev.Key]
		if w == nil {
			return
		}
		delete(m.inflight, ev.Key)
		if w.entry != nil {
			w.entry.State = program.StateValid
			w.entry.Walker = metatag.NoWalker
			if ev.Store {
				w.entry.Dirty = true
			}
		} else if ev.HasEntry && m.tags.Probe(ev.Key) == nil {
			// The walk's allocation failed (or the model joined the walk
			// after the donor's allocm); install the settled entry now.
			m.tags.Alloc(ev.Key, program.StateValid, metatag.NoWalker)
		}

	case ctrl.TraceAbort:
		m.keyCaches[ev.Key] = false
		w := m.inflight[ev.Key]
		if w == nil {
			return
		}
		delete(m.inflight, ev.Key)
		if w.entry != nil {
			m.tags.Dealloc(w.entry)
		}

	case ctrl.TraceDrain, ctrl.TraceFlush:
		// Bulk stable-entry removal; transient entries stay, as in the
		// controller's drain/flush loops.
		m.tags.ForEach(func(e *metatag.Entry) {
			if e.Walker == metatag.NoWalker && e.State == program.StateValid {
				m.tags.Dealloc(e)
			}
		})
	}
}

// classify mirrors the controller front-end's admission decision against
// this model's array state. On the donor geometry the decision always
// matches ev.Class; on other geometries ev.Class tells the model what the
// donor did, which decides how a model-side miss is serviced.
func (m *tagModel) classify(ev ctrl.TraceEvent) {
	if e := m.tags.Probe(ev.Key); e != nil {
		if e.Walker == metatag.NoWalker && e.State == program.StateValid {
			m.hits++
			m.tags.Touch(e)
			if ev.Op != ctrl.MetaLoad {
				e.Dirty = true
			}
			return
		}
		// Transient entry: merge behind its walk.
		m.mergedIDs[ev.ID] = struct{}{}
		return
	}
	if _, busy := m.inflight[ev.Key]; busy {
		// Entry-less walk in flight for the key (bitmap merge).
		m.mergedIDs[ev.ID] = struct{}{}
		return
	}
	m.misses++
	if ev.Class == ctrl.ClassMiss {
		// The donor spawns a walk here; its Alloc/Settle/Abort events
		// will drive the model's entry lifecycle.
		m.inflight[ev.Key] = &walk{}
		return
	}
	// The donor served this access without spawning (stable hit, or a
	// merge onto an already-running walk) but this geometry evicted or
	// never kept the entry: synthesize an instant walk from the learned
	// key outcome. A hash-index walk's outcome depends only on the key
	// and the (immutable) index, so the learned outcome is authoritative.
	if caches, known := m.keyCaches[ev.Key]; known {
		m.synth++
		if caches {
			m.tags.Alloc(ev.Key, program.StateValid, metatag.NoWalker)
		}
		return
	}
	// Outcome not learned yet: the donor's walk for this key is still in
	// flight (ev.Class is a merge). Ride it like a spawn — the donor's
	// settle/abort will complete the model walk.
	m.inflight[ev.Key] = &walk{}
}
