// Package area provides the structural area model behind the paper's
// synthesis results (§8.4). The paper synthesized the generated controller
// with Quartus II 13.0 (FPGA: Altera Cyclone IV GX EP4CGX150DF31C8) and
// with OpenROAD to GDS at 45 nm. We calibrate per-module linear
// coefficients to the published design point — #Exe=4, #Active=8: 6985
// logic elements, 5766 combinational functions, 3457 registers, 0.11 mm²
// and 65K cells, with X-Reg dominating registers and the Action-Executor
// units dominating logic — and scale them structurally with the generator
// parameters, exactly as the Chisel generator's structures scale.
package area

// Module names used in the Fig 19 breakdowns.
const (
	ModRtnTable   = "Rtn.Table"
	ModActMeta    = "Act.Meta"
	ModXReg       = "X-Reg"
	ModActionExec = "ActionExec"
	ModOthers     = "Others"
)

// Modules lists the breakdown order used in reports.
var Modules = []string{ModRtnTable, ModActMeta, ModXReg, ModActionExec, ModOthers}

// Inputs are the generator parameters the structures scale with.
type Inputs struct {
	NumExe          int
	NumActive       int
	NumXRegs        int // registers per walker (default 16)
	RtnTableEntries int // states × events (default 16)
	MicrocodeWords  int // routine RAM words (default 64)
}

func (in *Inputs) defaults() {
	if in.NumXRegs == 0 {
		in.NumXRegs = 16
	}
	if in.RtnTableEntries == 0 {
		in.RtnTableEntries = 16
	}
	if in.MicrocodeWords == 0 {
		in.MicrocodeWords = 64
	}
}

// Reference design point (the paper's synthesis configuration).
const (
	refExe         = 4
	refActive      = 8
	refLEs         = 6985.0
	refComb        = 5766.0
	refRegs        = 3457.0
	refCells       = 65000.0
	refMM2         = 0.11
	ramMM2Per256KB = 0.8 // "a 256K RAM under 45nm technology requires 0.8mm²"
)

// Published Fig 19 module shares at the reference point.
var refRegShare = map[string]float64{
	ModXReg:       0.31,
	ModActMeta:    0.24,
	ModActionExec: 0.15,
	ModRtnTable:   0.10,
	ModOthers:     0.20,
}

var refLogicShare = map[string]float64{
	ModActionExec: 0.45,
	ModActMeta:    0.20,
	ModRtnTable:   0.11,
	ModXReg:       0.04,
	ModOthers:     0.20,
}

// scale returns each module's structural scaling factor relative to the
// reference point.
func scale(in Inputs) map[string]float64 {
	in.defaults()
	return map[string]float64{
		// X-registers scale with walkers × registers per walker.
		ModXReg: float64(in.NumActive*in.NumXRegs) / float64(refActive*16),
		// Active meta-tag tracking scales with walker count.
		ModActMeta: float64(in.NumActive) / refActive,
		// Executors scale with issue width.
		ModActionExec: float64(in.NumExe) / refExe,
		// Routine table scales with its entry count.
		ModRtnTable: float64(in.RtnTableEntries) / 16,
		// Queues, scheduler, decode: fixed.
		ModOthers: 1,
	}
}

// FPGA is a Quartus-style utilization estimate.
type FPGA struct {
	LEs       int
	Comb      int
	Registers int
	RegByMod  map[string]int
	LEByMod   map[string]int
}

// EstimateFPGA returns the utilization estimate for the configuration.
func EstimateFPGA(in Inputs) FPGA {
	s := scale(in)
	out := FPGA{RegByMod: map[string]int{}, LEByMod: map[string]int{}}
	var regs, les float64
	for _, m := range Modules {
		r := refRegs * refRegShare[m] * s[m]
		l := refLEs * refLogicShare[m] * s[m]
		out.RegByMod[m] = int(r + 0.5)
		out.LEByMod[m] = int(l + 0.5)
		regs += r
		les += l
	}
	out.Registers = int(regs + 0.5)
	out.LEs = int(les + 0.5)
	out.Comb = int(les*(refComb/refLEs) + 0.5)
	return out
}

// ASIC is an OpenROAD-style 45 nm estimate for the controller (no RAMs).
type ASIC struct {
	Cells         int
	ControllerMM2 float64
}

// EstimateASIC returns the controller cells/area estimate.
func EstimateASIC(in Inputs) ASIC {
	s := scale(in)
	var f float64
	for _, m := range Modules {
		// ASIC cells follow the logic proportions.
		f += refLogicShare[m] * s[m]
	}
	return ASIC{
		Cells:         int(refCells*f + 0.5),
		ControllerMM2: refMM2 * f,
	}
}

// RAMMM2 estimates the 45 nm area of a RAM of the given byte capacity
// (data RAM + meta-tags), from the paper's 256 KB = 0.8 mm² point.
func RAMMM2(bytes int) float64 {
	return ramMM2Per256KB * float64(bytes) / (256 * 1024)
}
