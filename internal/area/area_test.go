package area

import (
	"math"
	"testing"
)

func refInputs() Inputs { return Inputs{NumExe: 4, NumActive: 8} }

func TestCalibrationPointMatchesPaper(t *testing.T) {
	f := EstimateFPGA(refInputs())
	if math.Abs(float64(f.LEs)-6985) > 5 {
		t.Errorf("LEs %d, paper 6985", f.LEs)
	}
	if math.Abs(float64(f.Registers)-3457) > 5 {
		t.Errorf("registers %d, paper 3457", f.Registers)
	}
	if math.Abs(float64(f.Comb)-5766) > 10 {
		t.Errorf("comb %d, paper 5766", f.Comb)
	}
	a := EstimateASIC(refInputs())
	if math.Abs(float64(a.Cells)-65000) > 100 {
		t.Errorf("cells %d, paper 65K", a.Cells)
	}
	if math.Abs(a.ControllerMM2-0.11) > 0.001 {
		t.Errorf("area %v, paper 0.11 mm²", a.ControllerMM2)
	}
}

func TestModuleDominance(t *testing.T) {
	f := EstimateFPGA(refInputs())
	// Paper: "X-Reg uses the most register, and Action-Executor units use
	// the majority of the logic."
	for m, v := range f.RegByMod {
		if m != ModXReg && v > f.RegByMod[ModXReg] {
			t.Errorf("register dominance: %s (%d) > X-Reg (%d)", m, v, f.RegByMod[ModXReg])
		}
	}
	for m, v := range f.LEByMod {
		if m != ModActionExec && v > f.LEByMod[ModActionExec] {
			t.Errorf("logic dominance: %s (%d) > ActionExec (%d)", m, v, f.LEByMod[ModActionExec])
		}
	}
}

func TestScalingMonotonic(t *testing.T) {
	base := EstimateFPGA(refInputs())
	moreExe := EstimateFPGA(Inputs{NumExe: 8, NumActive: 8})
	if moreExe.LEByMod[ModActionExec] <= base.LEByMod[ModActionExec] {
		t.Error("doubling #Exe did not grow executor logic")
	}
	if moreExe.RegByMod[ModXReg] != base.RegByMod[ModXReg] {
		t.Error("#Exe change affected X-Reg area")
	}
	moreActive := EstimateFPGA(Inputs{NumExe: 4, NumActive: 32})
	if moreActive.RegByMod[ModXReg] <= base.RegByMod[ModXReg] {
		t.Error("more walkers did not grow X-Reg registers")
	}
	asicBase := EstimateASIC(refInputs())
	asicBig := EstimateASIC(Inputs{NumExe: 8, NumActive: 32})
	if asicBig.ControllerMM2 <= asicBase.ControllerMM2 {
		t.Error("ASIC area did not scale")
	}
}

func TestRAMArea(t *testing.T) {
	if got := RAMMM2(256 * 1024); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("256KB RAM %v mm², paper 0.8", got)
	}
	if got := RAMMM2(128 * 1024); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("128KB RAM %v mm²", got)
	}
}

func TestFig20Claim(t *testing.T) {
	// "At 45nm, the controller occupies 0.1mm² (a 256K cache requires
	// 1.1mm² just for the data RAM and tags)": 0.8 for the RAM plus tags
	// and controller lands near 1.1 total with the controller included.
	total := EstimateASIC(refInputs()).ControllerMM2 + RAMMM2(256*1024) + RAMMM2(64*1024)
	if total < 0.9 || total > 1.3 {
		t.Errorf("256K-cache system area %v mm², paper ≈1.1+0.11", total)
	}
}
