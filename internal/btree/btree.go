// Package btree provides a B+-tree index substrate — a data structure the
// paper does not evaluate, used to demonstrate that the X-Cache idiom
// ports beyond its five published DSAs: the same controller, meta-tagged
// by search key, runs a multi-level descent walker expressed in the same
// microcode action set.
//
// Node layout (8 words, 64 bytes, matching one walker fill):
//
//	word 0..2  keys k0 ≤ k1 ≤ k2 (unused slots hold MaxUint64)
//	word 3..6  children c0..c3 (internal) — or values v0..v2 + 0 (leaf)
//	word 7     1 for leaf nodes, 0 for internal nodes
//
// Descent picks the first key slot with searchKey < k_i and follows
// child c_i (c3 when none); leaves match exactly.
package btree

import (
	"sort"

	"xcache/internal/mem"
)

// KeyInf is the unused-slot sentinel. It is below 2^63 so the walker's
// signed blt compare orders every legal key beneath it; keys must be in
// (0, KeyInf).
const KeyInf = uint64(1) << 62

// NodeWords is the node size in words.
const NodeWords = 8

// Fanout is the number of children per internal node.
const Fanout = 4

// keysPerNode is the number of keys stored per node.
const keysPerNode = 3

// Tree is a B+-tree resident in a memory image.
type Tree struct {
	Root   uint64
	Height int
	Keys   []uint64
	Values map[uint64]uint64
	img    *mem.Image
	nodes  int
}

// Build constructs a B+-tree over the given keys (values = 3·key+7),
// bottom-up, in the image. Keys are deduplicated and sorted.
func Build(img *mem.Image, keys []uint64) *Tree {
	t := &Tree{img: img, Values: map[uint64]uint64{}}
	seen := map[uint64]bool{}
	for _, k := range keys {
		if k == 0 || seen[k] {
			continue // key 0 reserved (null child)
		}
		seen[k] = true
		t.Keys = append(t.Keys, k)
		t.Values[k] = 3*k + 7
	}
	sort.Slice(t.Keys, func(i, j int) bool { return t.Keys[i] < t.Keys[j] })

	// Leaf level.
	type nodeRef struct {
		addr uint64
		min  uint64 // smallest key in subtree
	}
	var level []nodeRef
	for i := 0; i < len(t.Keys); i += keysPerNode {
		end := i + keysPerNode
		if end > len(t.Keys) {
			end = len(t.Keys)
		}
		addr := img.Alloc(NodeWords*8, 64)
		t.nodes++
		for j := 0; j < keysPerNode; j++ {
			key := KeyInf
			val := uint64(0)
			if i+j < end {
				key = t.Keys[i+j]
				val = t.Values[key]
			}
			img.W64(addr+uint64(j)*8, key)
			img.W64(addr+uint64(3+j)*8, val)
		}
		img.W64(addr+7*8, 1) // leaf flag
		level = append(level, nodeRef{addr: addr, min: t.Keys[i]})
	}
	if len(level) == 0 {
		// Empty tree: a single empty leaf.
		addr := img.Alloc(NodeWords*8, 64)
		t.nodes++
		for j := 0; j < keysPerNode; j++ {
			img.W64(addr+uint64(j)*8, KeyInf)
		}
		img.W64(addr+7*8, 1)
		level = append(level, nodeRef{addr: addr})
	}
	t.Height = 1

	// Internal levels.
	for len(level) > 1 {
		var next []nodeRef
		for i := 0; i < len(level); i += Fanout {
			end := i + Fanout
			if end > len(level) {
				end = len(level)
			}
			addr := img.Alloc(NodeWords*8, 64)
			t.nodes++
			// Separator keys: min key of children 1..end-1.
			for j := 0; j < keysPerNode; j++ {
				key := KeyInf
				if i+j+1 < end {
					key = level[i+j+1].min
				}
				img.W64(addr+uint64(j)*8, key)
			}
			for j := 0; j < Fanout; j++ {
				child := uint64(0)
				if i+j < end {
					child = level[i+j].addr
				}
				img.W64(addr+uint64(3+j)*8, child)
			}
			img.W64(addr+7*8, 0)
			next = append(next, nodeRef{addr: addr, min: level[i].min})
		}
		level = next
		t.Height++
	}
	t.Root = level[0].addr
	return t
}

// Nodes returns the number of nodes built.
func (t *Tree) Nodes() int { return t.nodes }

// Lookup is the pure-Go reference descent.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	addr := t.Root
	for {
		leaf := t.img.R64(addr+7*8) == 1
		if leaf {
			for j := 0; j < keysPerNode; j++ {
				if t.img.R64(addr+uint64(j)*8) == key {
					return t.img.R64(addr + uint64(3+j)*8), true
				}
			}
			return 0, false
		}
		slot := keysPerNode // default: rightmost child
		for j := 0; j < keysPerNode; j++ {
			if key < t.img.R64(addr+uint64(j)*8) {
				slot = j
				break
			}
		}
		addr = t.img.R64(addr + uint64(3+slot)*8)
		if addr == 0 {
			return 0, false
		}
	}
}
