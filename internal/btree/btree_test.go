package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
)

func TestBuildAndLookup(t *testing.T) {
	img := mem.NewImage()
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i*3 + 1)
	}
	tr := Build(img, keys)
	if tr.Height < 3 {
		t.Fatalf("height %d for 200 keys", tr.Height)
	}
	for _, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != 3*k+7 {
			t.Fatalf("key %d: (%d,%v)", k, v, ok)
		}
	}
	for _, absent := range []uint64{2, 5, 1000000} {
		if _, ok := tr.Lookup(absent); ok {
			t.Fatalf("found absent key %d", absent)
		}
	}
}

func TestEmptyAndTinyTrees(t *testing.T) {
	img := mem.NewImage()
	tr := Build(img, nil)
	if _, ok := tr.Lookup(5); ok {
		t.Fatal("empty tree found a key")
	}
	tr2 := Build(img, []uint64{42})
	if v, ok := tr2.Lookup(42); !ok || v != 3*42+7 {
		t.Fatalf("single-key tree: (%d,%v)", v, ok)
	}
	if tr2.Height != 1 {
		t.Fatalf("single-key height %d", tr2.Height)
	}
}

func TestKeyZeroAndDuplicatesIgnored(t *testing.T) {
	img := mem.NewImage()
	tr := Build(img, []uint64{0, 7, 7, 9})
	if len(tr.Keys) != 2 {
		t.Fatalf("keys %v", tr.Keys)
	}
}

// Property: every inserted key found with the right value; neighbours of
// inserted keys that were not inserted are absent.
func TestLookupProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		img := mem.NewImage()
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(5000))*2 + 2 // even keys only
		}
		tr := Build(img, keys)
		for _, k := range tr.Keys {
			if v, ok := tr.Lookup(k); !ok || v != 3*k+7 {
				return false
			}
		}
		// Odd keys were never inserted.
		for i := 0; i < 20; i++ {
			if _, ok := tr.Lookup(uint64(rng.Intn(10000))*2 + 1); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodesAligned(t *testing.T) {
	img := mem.NewImage()
	tr := Build(img, []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if tr.Root%64 != 0 {
		t.Fatalf("root at %#x not 64B aligned", tr.Root)
	}
}
