package check

import (
	"fmt"
	"strconv"
	"strings"

	"xcache/internal/dram"
	"xcache/internal/sim"
)

// ChannelFaultMode selects what a channel-level fault episode does to
// its DRAM channel while active.
type ChannelFaultMode int

// The channel fault modes.
const (
	// ChanOutage freezes the channel completely: nothing is admitted,
	// issued, completed or delivered for the episode. The layer above
	// must detect the silence and fail over.
	ChanOutage ChannelFaultMode = iota + 1
	// ChanStall suppresses bank issue but lets already-completed work
	// drain — the channel looks alive until its backlog runs dry.
	ChanStall
	// ChanBurst adds Extra cycles of latency to every response that
	// completes during the episode (a congestion/thermal-throttle spike).
	ChanBurst
)

// String names the mode for logs, specs and errors.
func (m ChannelFaultMode) String() string {
	switch m {
	case ChanOutage:
		return "outage"
	case ChanStall:
		return "stall"
	case ChanBurst:
		return "burst"
	}
	return fmt.Sprintf("chanfault(%d)", int(m))
}

// defaultBurstExtra is the added response latency of a burst episode
// that does not specify one.
const defaultBurstExtra = 64

// ChannelFault is one deterministic channel-level fault episode: channel
// Channel enters Mode at cycle Start for Cycles cycles. Extra is the
// added latency of a ChanBurst episode (default 64; ignored otherwise).
type ChannelFault struct {
	Channel int
	Mode    ChannelFaultMode
	Start   int
	Cycles  int
	Extra   int
}

// Validate rejects episodes the injector cannot honor.
func (f ChannelFault) Validate() error {
	if f.Channel < 0 {
		return fmt.Errorf("check: channel fault on negative channel %d", f.Channel)
	}
	switch f.Mode {
	case ChanOutage, ChanStall, ChanBurst:
	default:
		return fmt.Errorf("check: unknown channel fault mode %d", int(f.Mode))
	}
	if f.Start < 0 {
		return fmt.Errorf("check: channel fault start %d negative", f.Start)
	}
	if f.Cycles <= 0 {
		return fmt.Errorf("check: channel fault length %d not positive", f.Cycles)
	}
	if f.Extra < 0 {
		return fmt.Errorf("check: channel fault extra delay %d negative", f.Extra)
	}
	return nil
}

// active reports whether the episode covers cycle c.
func (f ChannelFault) active(c sim.Cycle) bool {
	return int64(c) >= int64(f.Start) && int64(c) < int64(f.Start)+int64(f.Cycles)
}

// ParseChannelFaults parses the channel-fault mini-language used by
// xcache-serve's -chaos-channel flag. Episodes are joined by ';':
//
//	episode := CHANNEL ':' MODE ':' START '+' LEN [ '+' EXTRA ]
//	mode    := 'outage' | 'stall' | 'burst'
//
// e.g. "1:outage:20000+8000" — channel 1 goes dark at cycle 20000 for
// 8000 cycles — or "0:burst:5000+2000+128" for a latency spike.
// FormatChannelFaults is the canonical inverse.
func ParseChannelFaults(s string) ([]ChannelFault, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("check: empty channel fault spec")
	}
	var out []ChannelFault
	for i, part := range strings.Split(s, ";") {
		f, err := parseChannelFault(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("check: channel fault %d %q: %w", i, part, err)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseChannelFault(s string) (ChannelFault, error) {
	var f ChannelFault
	fields := strings.Split(s, ":")
	if len(fields) != 3 {
		return f, fmt.Errorf("want CHANNEL:MODE:START+LEN[+EXTRA]")
	}
	ch, err := strconv.Atoi(strings.TrimSpace(fields[0]))
	if err != nil {
		return f, fmt.Errorf("bad channel %q: %v", fields[0], err)
	}
	f.Channel = ch
	switch mode := strings.TrimSpace(fields[1]); mode {
	case "outage":
		f.Mode = ChanOutage
	case "stall":
		f.Mode = ChanStall
	case "burst":
		f.Mode = ChanBurst
	default:
		return f, fmt.Errorf("unknown mode %q (want outage|stall|burst)", mode)
	}
	nums := strings.Split(fields[2], "+")
	if len(nums) != 2 && len(nums) != 3 {
		return f, fmt.Errorf("bad window %q: want START+LEN[+EXTRA]", fields[2])
	}
	if f.Start, err = strconv.Atoi(strings.TrimSpace(nums[0])); err != nil {
		return f, fmt.Errorf("bad start %q: %v", nums[0], err)
	}
	if f.Cycles, err = strconv.Atoi(strings.TrimSpace(nums[1])); err != nil {
		return f, fmt.Errorf("bad length %q: %v", nums[1], err)
	}
	if len(nums) == 3 {
		if f.Extra, err = strconv.Atoi(strings.TrimSpace(nums[2])); err != nil {
			return f, fmt.Errorf("bad extra delay %q: %v", nums[2], err)
		}
	}
	if err := f.Validate(); err != nil {
		return f, err
	}
	return f, nil
}

// FormatChannelFaults renders episodes in the canonical spec syntax, the
// exact inverse of ParseChannelFaults for valid episodes.
func FormatChannelFaults(faults []ChannelFault) string {
	var b strings.Builder
	for i, f := range faults {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%d:%s:%d+%d", f.Channel, f.Mode, f.Start, f.Cycles)
		if f.Extra != 0 {
			fmt.Fprintf(&b, "+%d", f.Extra)
		}
	}
	return b.String()
}

// chanDisruptor adapts the injector's episode table to one channel's
// dram.Disruptor hook. Purely time-driven (no randomness), so channel
// faults never perturb the other fault classes' PRNG streams.
type chanDisruptor struct {
	in       *Injector
	episodes []ChannelFault
}

// ChannelState implements dram.Disruptor: overlapping episodes compose
// (any outage freezes; any stall stalls; burst delays add).
func (d *chanDisruptor) ChannelState(c sim.Cycle) (frozen, stalled bool, extraDelay int) {
	for _, e := range d.episodes {
		if !e.active(c) {
			continue
		}
		d.in.ChanFaults++
		switch e.Mode {
		case ChanOutage:
			frozen = true
		case ChanStall:
			stalled = true
		case ChanBurst:
			extra := e.Extra
			if extra == 0 {
				extra = defaultBurstExtra
			}
			extraDelay += extra
		}
	}
	return frozen, stalled, extraDelay
}

// ChannelDisruptor returns the dram.Disruptor for channel idx, driving
// the FaultConfig.Channels episodes that name it. Returns nil when no
// episode targets the channel, so callers can wire hooks only where
// they do something.
func (in *Injector) ChannelDisruptor(idx int) dram.Disruptor {
	var eps []ChannelFault
	for _, f := range in.cfg.Channels {
		if f.Channel == idx {
			eps = append(eps, f)
		}
	}
	if len(eps) == 0 {
		return nil
	}
	return &chanDisruptor{in: in, episodes: eps}
}
