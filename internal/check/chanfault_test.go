package check

import (
	"strings"
	"testing"

	"xcache/internal/sim"
)

func TestParseChannelFaults(t *testing.T) {
	cases := []struct {
		spec string
		want []ChannelFault
	}{
		{"1:outage:20000+8000", []ChannelFault{
			{Channel: 1, Mode: ChanOutage, Start: 20000, Cycles: 8000},
		}},
		{"0:burst:5000+2000+128", []ChannelFault{
			{Channel: 0, Mode: ChanBurst, Start: 5000, Cycles: 2000, Extra: 128},
		}},
		{" 2 : stall : 100 + 50 ", []ChannelFault{
			{Channel: 2, Mode: ChanStall, Start: 100, Cycles: 50},
		}},
		{"0:burst:5000+3000+64;1:outage:15000+5000;1:stall:32000+1500", []ChannelFault{
			{Channel: 0, Mode: ChanBurst, Start: 5000, Cycles: 3000, Extra: 64},
			{Channel: 1, Mode: ChanOutage, Start: 15000, Cycles: 5000},
			{Channel: 1, Mode: ChanStall, Start: 32000, Cycles: 1500},
		}},
	}
	for _, tc := range cases {
		got, err := ParseChannelFaults(tc.spec)
		if err != nil {
			t.Errorf("ParseChannelFaults(%q): %v", tc.spec, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseChannelFaults(%q) = %d episodes, want %d", tc.spec, len(got), len(tc.want))
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseChannelFaults(%q)[%d] = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

// TestFormatChannelFaultsRoundTrip: Format is the exact inverse of Parse
// for valid episodes.
func TestFormatChannelFaultsRoundTrip(t *testing.T) {
	specs := []string{
		"1:outage:20000+8000",
		"0:burst:5000+2000+128",
		"0:burst:5000+3000+64;1:outage:15000+5000;1:stall:32000+1500",
	}
	for _, spec := range specs {
		eps, err := ParseChannelFaults(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		if got := FormatChannelFaults(eps); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		again, err := ParseChannelFaults(FormatChannelFaults(eps))
		if err != nil {
			t.Fatalf("reparse of %q: %v", spec, err)
		}
		for i := range eps {
			if again[i] != eps[i] {
				t.Errorf("reparse of %q changed episode %d: %+v vs %+v", spec, i, again[i], eps[i])
			}
		}
	}
}

func TestParseChannelFaultsErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"", "empty"},
		{"1:outage", "want CHANNEL:MODE:START+LEN"},
		{"x:outage:1+2", "bad channel"},
		{"1:meltdown:1+2", "unknown mode"},
		{"1:outage:1", "bad window"},
		{"1:outage:1+2+3+4", "bad window"},
		{"1:outage:x+2", "bad start"},
		{"1:outage:1+x", "bad length"},
		{"1:burst:1+2+x", "bad extra"},
		{"-1:outage:1+2", "negative channel"},
		{"1:outage:-5+2", "start -5 negative"},
		{"1:outage:1+0", "length 0 not positive"},
		{"1:burst:1+2+-3", "extra delay -3 negative"},
		{"1:outage:10+5;bogus", "channel fault 1"},
	}
	for _, tc := range cases {
		_, err := ParseChannelFaults(tc.spec)
		if err == nil {
			t.Errorf("ParseChannelFaults(%q) accepted invalid spec", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseChannelFaults(%q) error %q, want substring %q", tc.spec, err, tc.wantSub)
		}
	}
}

// TestChannelFaultValidate covers the struct-level validation xcache-serve
// and serve.Config rely on.
func TestChannelFaultValidate(t *testing.T) {
	ok := ChannelFault{Channel: 0, Mode: ChanOutage, Start: 0, Cycles: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid episode rejected: %v", err)
	}
	bad := []ChannelFault{
		{Channel: -1, Mode: ChanOutage, Cycles: 1},
		{Channel: 0, Mode: 0, Cycles: 1},
		{Channel: 0, Mode: ChannelFaultMode(99), Cycles: 1},
		{Channel: 0, Mode: ChanOutage, Start: -1, Cycles: 1},
		{Channel: 0, Mode: ChanOutage, Cycles: 0},
		{Channel: 0, Mode: ChanBurst, Cycles: 1, Extra: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("bad episode %d accepted: %+v", i, f)
		}
	}
}

// TestChannelDisruptorComposition: overlapping episodes on one channel
// compose — any outage freezes, any stall stalls, burst delays add — and
// episodes on other channels are invisible.
func TestChannelDisruptorComposition(t *testing.T) {
	k := sim.NewKernel()
	cfg := FaultConfig{Channels: []ChannelFault{
		{Channel: 0, Mode: ChanBurst, Start: 100, Cycles: 100, Extra: 32},
		{Channel: 0, Mode: ChanBurst, Start: 150, Cycles: 100}, // default extra
		{Channel: 0, Mode: ChanOutage, Start: 180, Cycles: 10},
		{Channel: 0, Mode: ChanStall, Start: 300, Cycles: 10},
		{Channel: 1, Mode: ChanOutage, Start: 0, Cycles: 1000},
	}}
	in := NewInjector(7, cfg, k)

	d0 := in.ChannelDisruptor(0)
	if d0 == nil {
		t.Fatal("channel 0 has episodes but no disruptor")
	}
	if in.ChannelDisruptor(2) != nil {
		t.Fatal("channel 2 has no episodes but got a disruptor")
	}

	type state struct {
		frozen, stalled bool
		extra           int
	}
	cases := []struct {
		cycle sim.Cycle
		want  state
	}{
		{0, state{}},            // before anything
		{120, state{extra: 32}}, // first burst only
		{160, state{extra: 32 + defaultBurstExtra}},               // bursts overlap, delays add
		{185, state{frozen: true, extra: 32 + defaultBurstExtra}}, // outage joins
		{210, state{extra: defaultBurstExtra}},                    // first burst and outage over
		{305, state{stalled: true}},
		{400, state{}}, // all over
	}
	for _, tc := range cases {
		frozen, stalled, extra := d0.ChannelState(tc.cycle)
		got := state{frozen, stalled, extra}
		if got != tc.want {
			t.Errorf("cycle %d: state %+v, want %+v", tc.cycle, got, tc.want)
		}
	}
	if in.ChanFaults == 0 {
		t.Error("active episodes did not count ChanFaults")
	}

	// Channel 1's disruptor sees only its own outage.
	d1 := in.ChannelDisruptor(1)
	if frozen, stalled, extra := d1.ChannelState(500); !frozen || stalled || extra != 0 {
		t.Errorf("channel 1 at cycle 500: frozen=%v stalled=%v extra=%d, want frozen only",
			frozen, stalled, extra)
	}
}
