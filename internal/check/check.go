// Package check is the simulation hardening-and-verification layer: a
// deadlock/livelock watchdog that turns silent budget exhaustion into a
// structured StallReport, invariant checkers that validate the kernel's
// microarchitectural discipline every cycle, and a deterministic, seeded
// fault injector (dropped/delayed DRAM responses, transiently-full
// queues, meta-tag bit flips) that exercises the controller's recovery
// paths.
//
// The repo replaces the paper's RTL simulation with a hand-written
// cycle-level kernel, so this layer is the only thing standing between a
// kernel bug and a silently-wrong figure reproduction. Everything is
// opt-in: a nil *Config attaches nothing and costs nothing, so benchmarks
// are unaffected.
//
// Usage:
//
//	h := check.Attach(sys.K, &check.Config{Watchdog: 50_000, Invariants: true})
//	ok, report := check.Run(h, sys.K, done, maxCycles)
//	if !ok {
//	    log.Fatal(report) // names stuck queues, in-flight walkers, bank state
//	}
package check

import (
	"errors"
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/sim"
)

// Config selects which hardening features attach to a kernel.
type Config struct {
	// Watchdog is the number of cycles without forward progress (no queue
	// push/pop, no component activity) before the run is declared wedged
	// and aborted with a StallReport. 0 disables the watchdog.
	Watchdog int
	// Invariants enables the per-cycle checkers: queue conservation
	// (pushes − pops == occupancy), DRAM timing-protocol assertions, and
	// controller bounds (≤ #Exe wakes and actions per cycle, MSHR ledger
	// consistency).
	Invariants bool
	// Faults configures deterministic fault injection; the zero value
	// injects nothing.
	Faults FaultConfig
	// Seed drives every fault decision; the same seed replays the same
	// run exactly.
	Seed uint64
}

// Default returns the standard verification configuration: watchdog and
// invariants on, faults off.
func Default() *Config {
	return &Config{Watchdog: 50_000, Invariants: true}
}

// FaultConfig sets per-event fault probabilities. All rates are
// per-opportunity (per response, per queue per cycle, per cycle).
type FaultConfig struct {
	DropResp  float64 // probability a DRAM read response is dropped
	DelayResp float64 // probability a DRAM read response is delayed
	DelayMax  int     // maximum extra cycles for a delayed response (default 256)
	ClogQueue float64 // probability a controller queue reports full a given cycle
	FlipBit   float64 // probability per cycle of flipping a stored meta-tag key bit

	// FillTimeout overrides the controller's retry timeout for unanswered
	// fills: 0 derives a default, negative disables retry entirely (used
	// to test the watchdog against a genuine wedge).
	FillTimeout int

	// Channels holds deterministic channel-level fault episodes (hard
	// outage, issue stall, burst latency) for multi-channel DRAM
	// topologies. Each episode names the channel it applies to; the
	// owning service wires the per-channel Disruptor via
	// Injector.ChannelDisruptor.
	Channels []ChannelFault
}

// Any reports whether any fault class is enabled.
func (f FaultConfig) Any() bool {
	return f.DropResp > 0 || f.DelayResp > 0 || f.ClogQueue > 0 || f.FlipBit > 0 ||
		len(f.Channels) > 0
}

// defaultFillTimeout is generous against worst-case DRAM queueing so a
// slow genuine response is rarely declared lost (the duplicate would be
// discarded as spurious, costing only redundant DRAM traffic).
const defaultFillTimeout = 1024

// selfChecker is implemented by components that can audit their own
// invariants after a step (ctrl.Controller, dram.DRAM).
type selfChecker interface {
	CheckInvariants(c sim.Cycle) error
}

// activitySource is a component exposing a monotonic progress counter.
type activitySource interface {
	ActivityCount() uint64
}

// Diagnoser is a component that can describe its internal state for a
// StallReport.
type Diagnoser interface {
	DiagnoseName() string
	Diagnose() []string
}

// Harness holds everything attached to one kernel.
type Harness struct {
	Cfg Config

	k     *sim.Kernel
	wd    *watchdog
	inv   *invariants
	inj   *Injector
	diags []Diagnoser
	ctrls []*ctrl.Controller
}

// Attach wires the configured hardening features into the kernel. Call it
// after every component is registered (it discovers controllers, DRAM
// channels and queues by inspection). A nil cfg returns a nil harness;
// Run on a nil harness falls back to the kernel's plain RunUntil.
func Attach(k *sim.Kernel, cfg *Config) *Harness {
	if cfg == nil {
		return nil
	}
	h := &Harness{Cfg: *cfg, k: k}

	var ctrls []*ctrl.Controller
	var drams []*dram.DRAM
	var cohs []CoherenceSource
	for _, c := range k.Components() {
		switch v := c.(type) {
		case *ctrl.Controller:
			ctrls = append(ctrls, v)
		case *dram.DRAM:
			drams = append(drams, v)
		}
		if s, ok := c.(CoherenceSource); ok {
			cohs = append(cohs, s)
		}
		if d, ok := c.(Diagnoser); ok {
			h.diags = append(h.diags, d)
		}
	}
	h.ctrls = ctrls

	if cfg.Watchdog > 0 {
		h.wd = newWatchdog(k, cfg.Watchdog)
		k.Observe(h.wd)
	}
	if cfg.Invariants {
		for _, d := range drams {
			d.EnableProtocolCheck()
		}
		h.inv = newInvariants(k)
		for _, s := range cohs {
			h.inv.checkers = append(h.inv.checkers, newCohChecker(s))
		}
		k.Observe(h.inv)
	}
	if cfg.Faults.Any() {
		h.inj = newInjector(cfg.Seed, cfg.Faults, k)
		// Dropped/delayed responses are recovered by the controller's
		// timeout+retry, so they are only injected on DRAM channels whose
		// response queue feeds a controller directly; a channel below an
		// address-cache level has no retry path above it.
		for _, c := range ctrls {
			attached := false
			for _, d := range drams {
				if d.Resp == c.MemResp {
					if cfg.Faults.DropResp > 0 || cfg.Faults.DelayResp > 0 {
						d.Faults = h.inj
					}
					if cfg.Faults.ClogQueue > 0 {
						h.inj.clog(d.Resp)
					}
					attached = true
				}
			}
			if cfg.Faults.FillTimeout >= 0 && (attached || cfg.Faults.FillTimeout > 0) {
				c.Cfg.FillTimeout = cfg.Faults.FillTimeout
				if c.Cfg.FillTimeout == 0 {
					c.Cfg.FillTimeout = defaultFillTimeout
				}
			}
			if cfg.Faults.FlipBit > 0 {
				c.Cfg.ParityCheck = true
				h.inj.tags = append(h.inj.tags, c.Tags)
			}
			if cfg.Faults.ClogQueue > 0 {
				for _, q := range c.FaultQueues() {
					h.inj.clog(q)
				}
			}
		}
		if cfg.Faults.FlipBit > 0 {
			k.Observe(h.inj)
		}
	}
	return h
}

// Injector returns the fault injector, or nil when faults are disabled.
func (h *Harness) Injector() *Injector {
	if h == nil {
		return nil
	}
	return h.inj
}

// Err returns the first invariant violation observed, or nil.
func (h *Harness) Err() error {
	if h == nil || h.inv == nil {
		return nil
	}
	return h.inv.err
}

// Step advances the kernel one supervised cycle, converting a recovered
// queue-overflow panic into an error. It is the building block for run
// loops that cannot use Run because they must keep executing across
// conditions Run treats as fatal (internal/serve handles controller traps
// through its circuit breaker instead of aborting).
func (h *Harness) Step() error {
	if h == nil {
		return fmt.Errorf("check: Step on nil harness")
	}
	return h.step()
}

// Stalled reports whether the watchdog has observed no forward progress
// for its full window ending at cycle c. Always false without a watchdog.
func (h *Harness) Stalled(c sim.Cycle) bool {
	return h != nil && h.wd != nil && h.wd.stalled(c)
}

// StallFor returns how many cycles the machine has made no progress
// (0 without a watchdog).
func (h *Harness) StallFor(c sim.Cycle) sim.Cycle {
	if h == nil || h.wd == nil {
		return 0
	}
	return h.wd.stallFor(c)
}

// Report assembles a StallReport from the kernel's current state, for
// callers that run their own supervised loop over Step.
func (h *Harness) Report(kind FailureKind, reason string) *StallReport {
	return h.report(kind, reason)
}

// trapped returns the first structural microcode trap raised by any
// supervised controller, or nil.
func (h *Harness) trapped() *ctrl.Trap {
	for _, c := range h.ctrls {
		if t := c.Trap(); t != nil {
			return t
		}
	}
	return nil
}

// Run steps the kernel until done reports true or the budget of max
// cycles is exhausted, under the harness's supervision. On failure —
// watchdog stall, invariant violation, queue overflow (a recovered
// MustPush panic), or budget exhaustion — it returns ok=false and a
// StallReport explaining the state of every queue and component. A nil
// harness degrades to the kernel's plain RunUntil with a nil report.
func Run(h *Harness, k *sim.Kernel, done func() bool, max int) (bool, *StallReport) {
	if h == nil {
		return k.RunUntil(done, max), nil
	}
	for i := 0; i < max; i++ {
		if done() {
			if err := h.Err(); err != nil {
				return false, h.report(invariantKind(err), fmt.Sprintf("invariant violated: %v", err))
			}
			if t := h.trapped(); t != nil {
				return false, h.trapReport(t)
			}
			return true, nil
		}
		if err := h.step(); err != nil {
			return false, h.report(FailOverflow, fmt.Sprintf("queue overflow: %v", err))
		}
		if err := h.Err(); err != nil {
			return false, h.report(invariantKind(err), fmt.Sprintf("invariant violated: %v", err))
		}
		if t := h.trapped(); t != nil {
			return false, h.trapReport(t)
		}
		if h.wd != nil && h.wd.stalled(h.k.Cycle()) {
			return false, h.report(FailStall, fmt.Sprintf("no forward progress for %d cycles", h.Cfg.Watchdog))
		}
	}
	if done() {
		if err := h.Err(); err != nil {
			return false, h.report(invariantKind(err), fmt.Sprintf("invariant violated: %v", err))
		}
		if t := h.trapped(); t != nil {
			return false, h.trapReport(t)
		}
		return true, nil
	}
	return false, h.report(FailBudget, fmt.Sprintf("cycle budget (%d) exhausted", max))
}

// step advances the kernel one cycle, recovering a queue-overflow panic
// into an error so it can be folded into a StallReport instead of
// crashing the process.
func (h *Harness) step() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if qf, ok := r.(*sim.QueueFullError); ok {
				err = qf
				return
			}
			panic(r)
		}
	}()
	h.k.Step()
	return nil
}

// invariantKind classifies a latched invariant error: coherence protocol
// violations get their own FailureKind so callers can separate a protocol
// bug from an ordinary microarchitectural invariant failure.
func invariantKind(err error) FailureKind {
	var cv *CoherenceViolation
	if errors.As(err, &cv) {
		return FailCoherence
	}
	return FailInvariant
}

// trapReport folds a structural microcode trap into a StallReport. The
// controller has already quiesced the walker, so the machine is healthy —
// the run still aborts, because a trapped program's results are garbage.
func (h *Harness) trapReport(t *ctrl.Trap) *StallReport {
	r := h.report(FailTrap, fmt.Sprintf("microcode trap: %v", t))
	r.Trap = t
	return r
}

// report assembles a StallReport from the kernel's current state.
func (h *Harness) report(kind FailureKind, reason string) *StallReport {
	r := &StallReport{Kind: kind, Cycle: h.k.Cycle(), Reason: reason}
	if h.wd != nil {
		r.StallCycles = h.wd.stallFor(h.k.Cycle())
	}
	for i, q := range h.k.Queues() {
		qs := QueueState{
			Name: q.Name(), Len: q.Len(), Staged: q.StagedLen(),
			Cap: q.Cap(), MaxLen: q.MaxLen(), Pushes: q.Pushes(), Pops: q.Pops(),
		}
		// A queue is stuck when it holds entries that nobody has popped
		// for a full watchdog window.
		if qs.Len > 0 && (h.wd == nil || h.wd.frozen(i, r.Cycle)) {
			qs.Stuck = true
		}
		r.Queues = append(r.Queues, qs)
	}
	for _, d := range h.diags {
		r.Components = append(r.Components, ComponentState{Name: d.DiagnoseName(), Detail: d.Diagnose()})
	}
	return r
}

// --- deterministic PRNG (splitmix64 finalizer over hashed streams) ---

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
