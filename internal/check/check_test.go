// External tests: the harness supervising real DSA runs. These live in
// package check_test so they can import the DSA packages (check itself
// is imported by them).
package check_test

import (
	"regexp"
	"strings"
	"testing"

	"xcache/internal/check"
	"xcache/internal/dsa"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
)

func widxWork() widx.Work { return widx.DefaultWork(hashidx.TPCH()[0], 100) }

// TestFaultSmoke is the CI fault-injection smoke test: a seeded run with
// dropped DRAM fills must complete with golden-validated results, and the
// same seed must reproduce the run exactly.
func TestFaultSmoke(t *testing.T) {
	cfg := func() *check.Config {
		return &check.Config{
			Watchdog:   50_000,
			Invariants: true,
			Seed:       7,
			Faults:     check.FaultConfig{DropResp: 2e-3},
		}
	}
	r1, err := widx.RunXCache(widxWork(), widx.Options{Check: cfg()})
	if err != nil {
		t.Fatalf("faulted run failed: %v", err)
	}
	if !r1.Checked {
		t.Fatal("faulted run produced wrong results: retry recovery broke the golden model")
	}
	if r1.DroppedFills == 0 {
		t.Fatal("no fills dropped: the injector never fired (rate too low for this workload?)")
	}
	if r1.FillRetries < r1.DroppedFills {
		t.Fatalf("%d fills dropped but only %d retries: lost fills were not all recovered",
			r1.DroppedFills, r1.FillRetries)
	}
	r2, err := widx.RunXCache(widxWork(), widx.Options{Check: cfg()})
	if err != nil {
		t.Fatalf("replay run failed: %v", err)
	}
	if r1 != r2 {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", r1, r2)
	}
	// A different seed must drive different fault decisions (otherwise the
	// seed isn't actually feeding the PRNG).
	alt := cfg()
	alt.Seed = 8
	r3, err := widx.RunXCache(widxWork(), widx.Options{Check: alt})
	if err != nil {
		t.Fatalf("alt-seed run failed: %v", err)
	}
	if !r3.Checked {
		t.Fatal("alt-seed run produced wrong results")
	}
	if r3.Cycles == r1.Cycles && r3.DroppedFills == r1.DroppedFills {
		t.Logf("note: seeds 7 and 8 happened to produce identical runs (%d cycles)", r1.Cycles)
	}
}

// With every fill response dropped and retries disabled, the machine
// genuinely wedges: the watchdog must fire and the report must name the
// stuck request queue.
func TestWatchdogNamesStuckQueue(t *testing.T) {
	cfg := &check.Config{
		Watchdog:   2_000,
		Invariants: true,
		Seed:       1,
		Faults:     check.FaultConfig{DropResp: 1, FillTimeout: -1},
	}
	_, err := widx.RunXCache(widxWork(), widx.Options{Check: cfg})
	if err == nil {
		t.Fatal("a fully-wedged run completed")
	}
	msg := err.Error()
	if !strings.Contains(msg, "no forward progress for 2000 cycles") {
		t.Fatalf("error does not carry the watchdog reason:\n%s", msg)
	}
	if !regexp.MustCompile(`xc\.req.*STUCK`).MatchString(msg) {
		t.Fatalf("stall report does not flag the stuck request queue:\n%s", msg)
	}
	if !strings.Contains(msg, "--- ctrl ---") || !strings.Contains(msg, "fills outstanding") {
		t.Fatalf("stall report lacks the controller's in-flight walker state:\n%s", msg)
	}
	if !strings.Contains(msg, "--- dram ---") || !strings.Contains(msg, "bank 0") {
		t.Fatalf("stall report lacks per-bank DRAM state:\n%s", msg)
	}
}

// Budget exhaustion (done never true, but machine still making progress)
// must also produce a report rather than a bare timeout string.
func TestBudgetExhaustionReport(t *testing.T) {
	cfg := &check.Config{Watchdog: 50_000, Invariants: true}
	_, err := widx.RunXCache(widxWork(), widx.Options{Check: cfg, MaxCycles: 500})
	if err == nil {
		t.Fatal("run completed inside an impossible budget")
	}
	if !strings.Contains(err.Error(), "cycle budget (500) exhausted") {
		t.Fatalf("budget exhaustion not reported: %v", err)
	}
	if !strings.Contains(err.Error(), "queue") {
		t.Fatalf("no queue table in budget report: %v", err)
	}
}

// Every DSA runs fault-free under the full harness (watchdog + invariant
// checkers) and still matches its golden model: the checkers themselves
// must not perturb simulation results.
func TestHarnessCleanRunAllDSAs(t *testing.T) {
	cfg := func() *check.Config { return check.Default() }
	cases := []struct {
		name string
		run  func() (dsa.Result, error)
	}{
		{"widx", func() (dsa.Result, error) {
			return widx.RunXCache(widxWork(), widx.Options{Check: cfg()})
		}},
		{"dasx", func() (dsa.Result, error) {
			return dasx.RunXCache(widxWork(), dasx.Options{Check: cfg()})
		}},
		{"sparch", func() (dsa.Result, error) {
			return spgemm.RunXCache(spgemm.SpArch, spgemm.P2PGnutella31(200), spgemm.Options{Check: cfg()})
		}},
		{"gamma", func() (dsa.Result, error) {
			return spgemm.RunXCache(spgemm.Gamma, spgemm.P2PGnutella31(200), spgemm.Options{Check: cfg()})
		}},
		{"graphpulse", func() (dsa.Result, error) {
			return graphpulse.RunXCache(graphpulse.P2PGnutella08(20), graphpulse.Options{Check: cfg()})
		}},
		{"btreeidx", func() (dsa.Result, error) {
			return btreeidx.RunXCache(btreeidx.DefaultWork(200), btreeidx.Options{Check: cfg()})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := tc.run()
			if err != nil {
				t.Fatalf("supervised clean run failed: %v", err)
			}
			if !r.Checked {
				t.Fatal("clean run did not validate against the golden model")
			}
		})
	}
}

// Every DSA with a direct DRAM attachment completes correctly under
// dropped-fill injection; DSAs whose fills are served above a DRAM
// channel (btreeidx's MXA) or that never fill (graphpulse) get queue-clog
// faults instead.
func TestGoldenUnderFaultsAllDSAs(t *testing.T) {
	drop := func(rate float64) *check.Config {
		return &check.Config{Watchdog: 200_000, Invariants: true, Seed: 3,
			Faults: check.FaultConfig{DropResp: rate}}
	}
	clog := func(rate float64) *check.Config {
		return &check.Config{Watchdog: 200_000, Invariants: true, Seed: 3,
			Faults: check.FaultConfig{ClogQueue: rate}}
	}
	cases := []struct {
		name string
		run  func() (dsa.Result, error)
	}{
		{"widx-drop", func() (dsa.Result, error) {
			return widx.RunXCache(widxWork(), widx.Options{Check: drop(2e-3)})
		}},
		{"widx-clog", func() (dsa.Result, error) {
			return widx.RunXCache(widxWork(), widx.Options{Check: clog(5e-3)})
		}},
		{"dasx-drop", func() (dsa.Result, error) {
			return dasx.RunXCache(widxWork(), dasx.Options{Check: drop(2e-3)})
		}},
		{"sparch-drop", func() (dsa.Result, error) {
			return spgemm.RunXCache(spgemm.SpArch, spgemm.P2PGnutella31(200), spgemm.Options{Check: drop(1e-3)})
		}},
		{"gamma-drop", func() (dsa.Result, error) {
			return spgemm.RunXCache(spgemm.Gamma, spgemm.P2PGnutella31(200), spgemm.Options{Check: drop(1e-3)})
		}},
		{"graphpulse-clog", func() (dsa.Result, error) {
			return graphpulse.RunXCache(graphpulse.P2PGnutella08(20), graphpulse.Options{Check: clog(1e-3)})
		}},
		{"btreeidx-clog", func() (dsa.Result, error) {
			return btreeidx.RunXCache(btreeidx.DefaultWork(200), btreeidx.Options{Check: clog(1e-3)})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := tc.run()
			if err != nil {
				t.Fatalf("faulted run failed: %v", err)
			}
			if !r.Checked {
				t.Fatal("faulted run produced wrong results")
			}
		})
	}
}

// Meta-tag bit flips: the parity scrub must detect corrupted entries and
// the refetch path must keep results golden. Gamma reuses B rows heavily,
// so flipped entries are re-probed and scrubbed.
func TestBitFlipsScrubbedAndRefetched(t *testing.T) {
	cfg := &check.Config{Watchdog: 200_000, Invariants: true, Seed: 5,
		Faults: check.FaultConfig{FlipBit: 2e-3}}
	r, err := spgemm.RunXCache(spgemm.Gamma, spgemm.P2PGnutella31(200), spgemm.Options{Check: cfg})
	if err != nil {
		t.Fatalf("flip run failed: %v", err)
	}
	if !r.Checked {
		t.Fatal("bit flips corrupted the result: scrub/refetch path is broken")
	}
	if r.ParityScrubs == 0 {
		t.Fatal("no parity scrubs recorded: either no flips landed or the scrub never ran")
	}
}
