package check

import (
	"fmt"

	"xcache/internal/sim"
)

// Coherence invariant checking for multi-level hierarchies
// (internal/hier's MESI-lite L1s over a shared inclusive L2). The
// hierarchy exposes its protocol state through CoherenceSource; Attach
// discovers every source on the kernel and audits it per cycle alongside
// the other invariant checkers:
//
//   - single-writer: at most one L1 holds a line Modified, and a Modified
//     copy excludes Shared copies elsewhere;
//   - inclusion: any line cached in an L1 is present in the L2, or is in
//     flight inside the directory (a transaction or back-invalidation);
//   - no-stale-fill: every value an L1 serves (hit, grant, store result)
//     must match an event-driven oracle fed by the grant/store history.
//
// A violation is latched as a typed *CoherenceViolation and surfaces
// through the supervised Run with its own FailureKind (FailCoherence), so
// callers — cmd/xcache-sim in particular — can distinguish a protocol
// bug from an ordinary invariant failure.

// Coherence states as reported in CohLine.L1 / CohEvent.State.
const (
	CohAbsent int8 = 0
	CohShared int8 = 1
	CohMod    int8 = 2
)

// CohEvent kinds.
const (
	CohEvGrant uint8 = iota + 1 // directory granted the line to a port
	CohEvHit                    // an L1 served a load locally
	CohEvApply                  // an L1 applied a store under M; Value is the post-store value
)

// CohLine is one line's cross-hierarchy state inside a snapshot.
type CohLine struct {
	Key     [2]uint64
	L1      []int8 // per-port: CohAbsent / CohShared / CohMod
	L2      bool   // present and stable in the shared L2
	Pending bool   // a directory transaction, L2 walk, or back-inval is in flight
}

// CohSnapshot is the hierarchy's protocol state after one cycle, with
// lines in deterministic (sorted-key) order.
type CohSnapshot struct {
	Lines []CohLine
}

// CohEvent is one value-carrying protocol event, in causal order.
type CohEvent struct {
	Cycle sim.Cycle
	Port  int
	Key   [2]uint64
	Kind  uint8
	State int8
	Value uint64
}

// CoherenceSource is implemented by a component (internal/hier's
// directory) that can snapshot protocol state and surrender the cycle's
// value events. CohEvents drains: each event is returned exactly once.
type CoherenceSource interface {
	CohSnapshot() CohSnapshot
	CohEvents() []CohEvent
}

// CoherenceViolation is the typed error a coherence invariant failure
// latches: the rule that broke, the line, and the evidence.
type CoherenceViolation struct {
	Cycle  sim.Cycle
	Rule   string // single-writer | inclusion | no-stale-fill | liveness
	Key    [2]uint64
	Detail string
}

func (v *CoherenceViolation) Error() string {
	return fmt.Sprintf("cycle %d: coherence %s violation on key {%d,%d}: %s",
		v.Cycle, v.Rule, v.Key[0], v.Key[1], v.Detail)
}

// cohChecker audits one CoherenceSource per cycle. The value oracle is
// event-driven: the first grant of a line seeds it (the checker does not
// know the backing image), store-applies advance it, and every
// subsequently observed value — hit, grant, store result — must match.
type cohChecker struct {
	src    CoherenceSource
	oracle map[[2]uint64]uint64
}

func newCohChecker(src CoherenceSource) *cohChecker {
	return &cohChecker{src: src, oracle: map[[2]uint64]uint64{}}
}

// CheckInvariants implements selfChecker, so Attach folds coherence
// checking into the standard invariants observer.
func (cc *cohChecker) CheckInvariants(c sim.Cycle) error {
	for _, ev := range cc.src.CohEvents() {
		want, seeded := cc.oracle[ev.Key]
		switch ev.Kind {
		case CohEvGrant, CohEvHit:
			if !seeded {
				cc.oracle[ev.Key] = ev.Value
				continue
			}
			if ev.Value != want {
				kind := "grant"
				if ev.Kind == CohEvHit {
					kind = "hit"
				}
				return &CoherenceViolation{Cycle: ev.Cycle, Rule: "no-stale-fill", Key: ev.Key,
					Detail: fmt.Sprintf("port %d %s served value %d, oracle holds %d", ev.Port, kind, ev.Value, want)}
			}
		case CohEvApply:
			cc.oracle[ev.Key] = ev.Value
		}
	}
	snap := cc.src.CohSnapshot()
	for _, ln := range snap.Lines {
		mods, shared, modPort := 0, 0, -1
		for p, st := range ln.L1 {
			switch st {
			case CohMod:
				mods++
				modPort = p
			case CohShared:
				shared++
			}
		}
		if mods > 1 {
			return &CoherenceViolation{Cycle: c, Rule: "single-writer", Key: ln.Key,
				Detail: fmt.Sprintf("%d ports hold the line Modified", mods)}
		}
		if mods == 1 && shared > 0 {
			return &CoherenceViolation{Cycle: c, Rule: "single-writer", Key: ln.Key,
				Detail: fmt.Sprintf("port %d holds M while %d other ports hold S", modPort, shared)}
		}
		if (mods > 0 || shared > 0) && !ln.L2 && !ln.Pending {
			return &CoherenceViolation{Cycle: c, Rule: "inclusion", Key: ln.Key,
				Detail: "line cached in an L1 but absent from the L2 with no transaction in flight"}
		}
	}
	return nil
}
