package check

import (
	"sync/atomic"

	"xcache/internal/dram"
	"xcache/internal/metatag"
	"xcache/internal/sim"
)

// PRNG stream selectors: every fault decision hashes (seed, stream,
// cycle, salt) through an independent stream so enabling one fault class
// never perturbs another class's decisions.
const (
	streamDrop = 1 + iota
	streamDelay
	streamDelayAmt
	streamClog
	streamFlipGate
	streamFlipPick
	streamFlipWord
	streamFlipBit
	streamFlipArr
)

// Injector makes every fault decision from a stateless hash of
// (seed, stream, cycle, salt), so a run is exactly reproducible from its
// seed: no hidden PRNG state, no dependence on call order, and queue-full
// decisions are stable across repeated CanPush calls within a cycle.
type Injector struct {
	cfg  FaultConfig
	seed uint64
	k    *sim.Kernel
	tags []*metatag.Array

	// Counters of injected faults (for logs and smoke tests). Clogs is
	// updated atomically — clog hooks fire from CanPush, which parallel
	// tick groups (sim.Parallelize) may call concurrently — so read it
	// only after the run quiesces.
	Drops  uint64
	Delays uint64
	Clogs  uint64
	Flips  uint64
	// ChanFaults counts channel-cycle fault applications (one per active
	// episode per cycle). Channel disruptors fire from DRAM ticks, which
	// run serially, so a plain counter suffices.
	ChanFaults uint64
}

func newInjector(seed uint64, cfg FaultConfig, k *sim.Kernel) *Injector {
	if cfg.DelayMax <= 0 {
		cfg.DelayMax = 256
	}
	return &Injector{cfg: cfg, seed: seed, k: k}
}

// NewInjector creates a standalone fault injector for service layers
// (internal/serve) whose topology Attach cannot discover — e.g. a DRAM
// channel reached through a mux, or ingress queues the harness does not
// know about. The caller wires it up: assign it to dram.DRAM.Faults for
// drop/delay faults, Clog the queues that should clog, WatchTags +
// kernel.Observe for bit flips.
func NewInjector(seed uint64, cfg FaultConfig, k *sim.Kernel) *Injector {
	return newInjector(seed, cfg, k)
}

// Clog installs the transient-fullness fault hook on a queue (exported
// wrapper over the hook Attach wires automatically).
func (in *Injector) Clog(q sim.Clogger) { in.clog(q) }

// WatchTags registers a meta-tag array as a bit-flip target. The caller
// must also register the injector as a kernel observer (k.Observe) for
// the per-cycle flip gate to fire, and should enable the owning
// controller's ParityCheck so corruptions are scrubbed rather than served.
func (in *Injector) WatchTags(a *metatag.Array) { in.tags = append(in.tags, a) }

// roll returns a uniform value in [0,1) determined entirely by the seed,
// the stream, and the two salts.
func (in *Injector) roll(stream, a, b uint64) float64 {
	z := in.seed ^ stream*0x9e3779b97f4a7c15 ^ a*0xff51afd7ed558ccd ^ b*0xc4ceb9fe1a85ec53
	return float64(mix64(z)>>11) / (1 << 53)
}

// ReadResponse implements dram.FaultInjector: called once per read
// response at completion time. Retries of a dropped fill arrive at later
// cycles and therefore roll independently, so a bounded retry budget
// converges even at high drop rates.
func (in *Injector) ReadResponse(r dram.Response, c sim.Cycle) (drop bool, delay int) {
	salt := r.Addr ^ r.ID<<1
	if in.cfg.DropResp > 0 && in.roll(streamDrop, uint64(c), salt) < in.cfg.DropResp {
		in.Drops++
		return true, 0
	}
	if in.cfg.DelayResp > 0 && in.roll(streamDelay, uint64(c), salt) < in.cfg.DelayResp {
		in.Delays++
		d := 1 + int(in.roll(streamDelayAmt, uint64(c), salt)*float64(in.cfg.DelayMax))
		return false, d
	}
	return false, 0
}

// clog installs a transient-fullness hook on a queue: some cycles the
// queue reports full to producers even though slots are free, forcing
// their back-pressure paths. The decision depends only on (seed, queue
// name, cycle) so it is identical on every CanPush call within a cycle.
func (in *Injector) clog(q sim.Clogger) {
	name := hashString(q.Name())
	q.SetClog(func() bool {
		if in.roll(streamClog, uint64(in.k.Cycle()), name) < in.cfg.ClogQueue {
			atomic.AddUint64(&in.Clogs, 1)
			return true
		}
		return false
	})
}

// AfterStep implements sim.Observer; it fires the per-cycle bit-flip
// gate and corrupts one stored meta-tag key bit in a randomly chosen
// clean stable entry. Only parity-intact entries are eligible: a second
// flip in the same word pair would restore even parity and make the
// corruption undetectable, which models a double-bit error the paper's
// single-parity tag RAM cannot catch either.
func (in *Injector) AfterStep(c sim.Cycle) {
	if in.cfg.FlipBit <= 0 || in.roll(streamFlipGate, uint64(c), 0) >= in.cfg.FlipBit {
		return
	}
	eligible := func(e *metatag.Entry) bool {
		return e.Walker == metatag.NoWalker && !e.Dirty && e.ParityOK()
	}
	// Choose uniformly among the arrays that currently hold an eligible
	// entry (multi-shard topologies register one array per shard; always
	// flipping the first would spare the rest). With a single eligible
	// array the choice is index 0, identical to the historical behavior.
	var cand []int
	counts := make([]int, len(in.tags))
	for ti, a := range in.tags {
		a.ForEach(func(e *metatag.Entry) {
			if eligible(e) {
				counts[ti]++
			}
		})
		if counts[ti] > 0 {
			cand = append(cand, ti)
		}
	}
	if len(cand) > 0 {
		ci := min(int(in.roll(streamFlipArr, uint64(c), 0)*float64(len(cand))), len(cand)-1)
		ti := cand[ci]
		a, n := in.tags[ti], counts[ti]
		pick := min(int(in.roll(streamFlipPick, uint64(c), uint64(ti))*float64(n)), n-1)
		word := 0
		if a.Cfg.KeyWords > 1 {
			word = min(int(in.roll(streamFlipWord, uint64(c), uint64(ti))*float64(a.Cfg.KeyWords)), a.Cfg.KeyWords-1)
		}
		bit := min(int(in.roll(streamFlipBit, uint64(c), uint64(ti))*64), 63)
		i := 0
		a.ForEach(func(e *metatag.Entry) {
			if !eligible(e) {
				return
			}
			if i == pick {
				a.CorruptKeyBit(e, word, bit)
				in.Flips++
			}
			i++
		})
		return
	}
}
