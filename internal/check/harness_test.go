package check

import (
	"errors"
	"strings"
	"testing"

	"xcache/internal/sim"
)

func TestRollDeterministicAndStreamSeparated(t *testing.T) {
	in := newInjector(42, FaultConfig{DropResp: 0.5}, sim.NewKernel())
	for i := uint64(0); i < 1000; i++ {
		a := in.roll(streamDrop, i, i*3)
		if b := in.roll(streamDrop, i, i*3); a != b {
			t.Fatalf("roll not deterministic at %d: %v vs %v", i, a, b)
		}
		if a < 0 || a >= 1 {
			t.Fatalf("roll out of [0,1): %v", a)
		}
	}
	// Streams must decorrelate: identical salts, different streams.
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if (in.roll(streamDrop, i, 0) < 0.5) == (in.roll(streamDelay, i, 0) < 0.5) {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Fatalf("streams correlated: %d/1000 agreements", same)
	}
	// Different seeds must decorrelate too.
	in2 := newInjector(43, FaultConfig{}, sim.NewKernel())
	same = 0
	for i := uint64(0); i < 1000; i++ {
		if (in.roll(streamDrop, i, 0) < 0.5) == (in2.roll(streamDrop, i, 0) < 0.5) {
			same++
		}
	}
	if same > 600 || same < 400 {
		t.Fatalf("seeds correlated: %d/1000 agreements", same)
	}
}

func TestClogStableWithinCycle(t *testing.T) {
	k := sim.NewKernel()
	q := sim.NewQueue[int](k, "q", 4)
	in := newInjector(9, FaultConfig{ClogQueue: 0.5}, k)
	in.clog(q)
	flips := 0
	for cy := 0; cy < 200; cy++ {
		first := q.CanPush()
		for i := 0; i < 5; i++ {
			if q.CanPush() != first {
				t.Fatalf("cycle %d: clog decision changed within the cycle", cy)
			}
		}
		k.Step()
		if q.CanPush() != first {
			flips++
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
	if flips == 0 {
		t.Fatal("clog decision never changed across 200 cycles at rate 0.5")
	}
}

func TestWatchdogFiresOnlyWhenIdle(t *testing.T) {
	k := sim.NewKernel()
	q := sim.NewQueue[int](k, "q", 4)
	active := true
	k.Add(sim.ComponentFunc(func(c sim.Cycle) {
		if active {
			q.Push(1)
			q.Pop()
		}
	}))
	w := newWatchdog(k, 10)
	k.Observe(w)
	k.Run(50)
	if w.stalled(k.Cycle()) {
		t.Fatal("watchdog fired while queue traffic was flowing")
	}
	active = false
	k.Run(8)
	if w.stalled(k.Cycle()) {
		t.Fatal("watchdog fired before the window elapsed")
	}
	k.Run(2)
	if !w.stalled(k.Cycle()) {
		t.Fatal("watchdog missed a genuine stall")
	}
}

type failingComponent struct{ err error }

func (f *failingComponent) Tick(c sim.Cycle)                {}
func (f *failingComponent) CheckInvariants(sim.Cycle) error { return f.err }
func (f *failingComponent) DiagnoseName() string            { return "failing" }
func (f *failingComponent) Diagnose() []string              { return []string{"broken state"} }

func TestRunAbortsOnInvariantViolation(t *testing.T) {
	k := sim.NewKernel()
	fc := &failingComponent{}
	k.Add(fc)
	h := Attach(k, Default())
	n := 0
	k.Add(sim.ComponentFunc(func(c sim.Cycle) {
		n++
		if n == 3 {
			fc.err = errors.New("ledger out of balance")
		}
	}))
	ok, rep := Run(h, k, func() bool { return false }, 100)
	if ok {
		t.Fatal("run reported success despite an invariant violation")
	}
	if rep == nil || !strings.Contains(rep.Reason, "ledger out of balance") {
		t.Fatalf("report missing the violation: %+v", rep)
	}
	if n != 3 {
		t.Fatalf("run continued %d cycles past the violation", n)
	}
	if !strings.Contains(rep.String(), "broken state") {
		t.Fatal("report lacks the failing component's diagnosis")
	}
}

func TestRunRecoversQueueOverflowPanic(t *testing.T) {
	k := sim.NewKernel()
	q := sim.NewQueue[int](k, "victim", 1)
	k.Add(sim.ComponentFunc(func(c sim.Cycle) { q.MustPush(int(c)) }))
	h := Attach(k, Default())
	ok, rep := Run(h, k, func() bool { return false }, 100)
	if ok || rep == nil {
		t.Fatal("overflow did not abort the run")
	}
	if !strings.Contains(rep.Reason, "queue overflow") || !strings.Contains(rep.Reason, "victim") {
		t.Fatalf("overflow not attributed: %s", rep.Reason)
	}
}

func TestNilHarnessFallsBackToPlainRun(t *testing.T) {
	k := sim.NewKernel()
	n := 0
	k.Add(sim.ComponentFunc(func(c sim.Cycle) { n++ }))
	h := Attach(k, nil)
	if h != nil {
		t.Fatal("nil config produced a harness")
	}
	ok, rep := Run(h, k, func() bool { return n >= 5 }, 100)
	if !ok || rep != nil {
		t.Fatalf("nil-harness run: ok=%v rep=%v", ok, rep)
	}
}

func TestStallReportStuckMarking(t *testing.T) {
	k := sim.NewKernel()
	stuck := sim.NewQueue[int](k, "stuck", 4)
	flowing := sim.NewQueue[int](k, "flowing", 4)
	k.Add(sim.ComponentFunc(func(c sim.Cycle) {
		if c == 0 {
			stuck.Push(1) // never popped
		}
		flowing.Push(int(c))
		flowing.Pop()
	}))
	h := Attach(k, &Config{Watchdog: 5, Invariants: true})
	ok, rep := Run(h, k, func() bool { return false }, 50)
	if ok {
		t.Fatal("budget run reported success")
	}
	names := rep.StuckQueues()
	if len(names) != 1 || names[0] != "stuck" {
		t.Fatalf("StuckQueues=%v, want [stuck]", names)
	}
}
