package check

import (
	"fmt"

	"xcache/internal/sim"
)

// invariants audits the kernel after every step: per-queue conservation
// (pushes − pops == occupancy, nothing staged after commit, occupancy ≤
// capacity) plus each component's own CheckInvariants (controller wake
// and action budgets, MSHR ledger, DRAM timing protocol). The first
// violation is latched; the supervised Run aborts on it with a
// StallReport so the failing cycle's full machine state is preserved.
type invariants struct {
	queues   []sim.QueueInfo
	checkers []selfChecker
	err      error
}

func newInvariants(k *sim.Kernel) *invariants {
	v := &invariants{queues: k.Queues()}
	for _, c := range k.Components() {
		if sc, ok := c.(selfChecker); ok {
			v.checkers = append(v.checkers, sc)
		}
	}
	return v
}

// AfterStep implements sim.Observer.
func (v *invariants) AfterStep(c sim.Cycle) {
	if v.err != nil {
		return
	}
	for _, q := range v.queues {
		if q.Pushes()-q.Pops() != uint64(q.Len()) {
			v.err = fmt.Errorf("cycle %d: queue %s conservation: %d pushes - %d pops != occupancy %d",
				c, q.Name(), q.Pushes(), q.Pops(), q.Len())
			return
		}
		if q.StagedLen() != 0 {
			v.err = fmt.Errorf("cycle %d: queue %s holds %d staged entries after commit",
				c, q.Name(), q.StagedLen())
			return
		}
		if q.Len() > q.Cap() {
			v.err = fmt.Errorf("cycle %d: queue %s occupancy %d exceeds capacity %d",
				c, q.Name(), q.Len(), q.Cap())
			return
		}
	}
	for _, sc := range v.checkers {
		if err := sc.CheckInvariants(c); err != nil {
			v.err = err
			return
		}
	}
}
