package check_test

import (
	"errors"
	"strings"
	"testing"

	"xcache/internal/check"
	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// TestRunAbortsOnTrap pins the trap path end to end through the harness:
// a microcode trap (here a runaway loop, which passes the static verifier
// because only loops can exhaust the step budget at runtime) must abort a
// supervised run with FailTrap, carry the *ctrl.Trap for errors.As, and
// do so immediately — not by stalling until the watchdog window expires.
func TestRunAbortsOnTrap(t *testing.T) {
	spec := program.Spec{
		Name: "runaway",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: "top: inc r5\njmp top\nhalt Valid"},
		},
	}
	prog, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 16, Ways: 4, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 64, WordsPerSector: 4}, meter)
	c, err := ctrl.New(k, ctrl.Config{MaxRoutineSteps: 64}, prog, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		t.Fatal(err)
	}
	pushed := false
	k.Add(sim.ComponentFunc(func(cy sim.Cycle) {
		if !pushed {
			pushed = c.ReqQ.Push(ctrl.MetaReq{ID: 1, Op: ctrl.MetaLoad, Key: metatag.Key{1, 0}, Issued: cy})
		}
	}))
	h := check.Attach(k, check.Default())
	ok, rep := check.Run(h, k, func() bool { return false }, 200_000)
	if ok {
		t.Fatal("trapped run reported success")
	}
	if rep.Kind != check.FailTrap {
		t.Fatalf("abort kind %s, want trap:\n%s", rep.Kind, rep)
	}
	if !strings.Contains(rep.Reason, "runaway-routine") {
		t.Fatalf("report reason does not name the trap kind: %q", rep.Reason)
	}
	// The trap aborts promptly; it must not degrade into a watchdog stall.
	if rep.Cycle >= 50_000 {
		t.Fatalf("trap abort took %d cycles — did the watchdog fire instead?", rep.Cycle)
	}
	var tr *ctrl.Trap
	if !errors.As(rep.Failure(), &tr) {
		t.Fatalf("Failure() does not unwrap to *ctrl.Trap: %v", rep.Failure())
	}
	if tr.Kind != ctrl.TrapRunawayRoutine {
		t.Fatalf("trap kind %s, want runaway-routine", tr.Kind)
	}
}

// TestVerifierRejectsAtBuild pins the other defense layer through the
// same stack: ctrl.New refuses a program the static verifier rejects.
func TestVerifierRejectsAtBuild(t *testing.T) {
	spec := program.Spec{
		Name: "bigfill",
		Transitions: []program.Transition{
			// A 12-word fill exceeds the default MaxFillWords=8: statically
			// decidable, but only against the controller's configuration, so
			// the assembler and compiler both accept it.
			{State: "Default", Event: "MetaLoad", Asm: "allocm\nenqfilli r4, 12\nstate Valid"},
		},
	}
	prog, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 16, Ways: 4, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 64, WordsPerSector: 4}, meter)
	_, err = ctrl.New(k, ctrl.Config{}, prog, tags, data, d.Req, d.Resp, meter)
	if err == nil {
		t.Fatal("ctrl.New accepted a program the verifier must reject")
	}
	var ve *program.VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("load error does not unwrap to *program.VerifyError: %v", err)
	}
	if !strings.Contains(err.Error(), "rejected at load") {
		t.Fatalf("load error lacks context: %v", err)
	}
}
