package check

import (
	"encoding/json"
	"fmt"
	"strings"

	"xcache/internal/sim"
	"xcache/internal/stats"
)

// watchdog detects deadlock and livelock by folding every queue's
// push/pop counters and every component's activity counter into a single
// progress signature each cycle. All counters are monotonic, so the sum
// strictly increases whenever anything happens; a frozen sum for the
// configured window means the machine is wedged.
type watchdog struct {
	window sim.Cycle
	queues []sim.QueueInfo
	acts   []activitySource

	lastSig    uint64
	lastChange sim.Cycle
	// lastPops/popCycle track, per queue, the pop counter and the last
	// cycle it moved, so a report can single out the queues nobody has
	// drained for a full window even while the rest of the machine runs.
	lastPops []uint64
	popCycle []sim.Cycle
}

func newWatchdog(k *sim.Kernel, window int) *watchdog {
	w := &watchdog{window: sim.Cycle(window), queues: k.Queues()}
	for _, c := range k.Components() {
		if a, ok := c.(activitySource); ok {
			w.acts = append(w.acts, a)
		}
	}
	w.lastPops = make([]uint64, len(w.queues))
	w.popCycle = make([]sim.Cycle, len(w.queues))
	return w
}

func (w *watchdog) signature() uint64 {
	var s uint64
	for _, q := range w.queues {
		s += q.Pushes() + q.Pops()
	}
	for _, a := range w.acts {
		s += a.ActivityCount()
	}
	return s
}

// AfterStep implements sim.Observer.
func (w *watchdog) AfterStep(c sim.Cycle) {
	if s := w.signature(); s != w.lastSig {
		w.lastSig = s
		w.lastChange = c
	}
	for i, q := range w.queues {
		if p := q.Pops(); p != w.lastPops[i] {
			w.lastPops[i] = p
			w.popCycle[i] = c
		}
	}
}

// stalled reports whether no forward progress has been observed for the
// full window.
func (w *watchdog) stalled(c sim.Cycle) bool {
	return c-w.lastChange >= w.window
}

// stallFor returns how long the machine has made no progress.
func (w *watchdog) stallFor(c sim.Cycle) sim.Cycle {
	return c - w.lastChange
}

// frozen reports whether queue i has gone a full window without a pop.
func (w *watchdog) frozen(i int, now sim.Cycle) bool {
	return now-w.popCycle[i] >= w.window
}

// QueueState is one queue's occupancy snapshot inside a StallReport.
type QueueState struct {
	Name   string
	Len    int
	Staged int
	Cap    int
	MaxLen int
	Pushes uint64
	Pops   uint64
	// Stuck marks a queue holding entries that nobody has popped since
	// the last observed forward progress — the prime deadlock suspects.
	Stuck bool
}

// ComponentState carries a component's self-description (in-flight
// walkers, per-bank DRAM state, ...) inside a StallReport.
type ComponentState struct {
	Name   string
	Detail []string
}

// FailureKind classifies why a supervised run aborted. It is the root
// of the structured error taxonomy consumed by internal/exp/runner (which
// folds it into transient-vs-permanent retry classes) and by
// cmd/xcache-sim's exit codes.
type FailureKind int

// The supervised abort causes.
const (
	FailStall     FailureKind = iota + 1 // watchdog: no forward progress for a full window
	FailInvariant                        // per-cycle invariant checker violation
	FailOverflow                         // recovered queue-overflow (MustPush) panic
	FailBudget                           // cycle budget exhausted while still making progress
	FailTrap                             // structural microcode fault (ctrl.Trap): walker quiesced
	FailCoherence                        // hierarchy coherence protocol violation (CoherenceViolation)
)

// MarshalJSON renders the kind by name, so a serialized StallReport is
// self-describing.
func (k FailureKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// String names the kind for logs and JSON output.
func (k FailureKind) String() string {
	switch k {
	case FailStall:
		return "stall"
	case FailInvariant:
		return "invariant"
	case FailOverflow:
		return "overflow"
	case FailBudget:
		return "budget"
	case FailTrap:
		return "trap"
	case FailCoherence:
		return "coherence"
	}
	return fmt.Sprintf("failure(%d)", int(k))
}

// Failure is the typed error a supervised run aborts with: the kind plus
// the full StallReport (nil only for an unsupervised budget exhaustion,
// where no harness was attached to collect one). For FailTrap, Trap
// carries the underlying ctrl.Trap so errors.As can reach it.
type Failure struct {
	Kind   FailureKind
	Report *StallReport
	Trap   error // the *ctrl.Trap behind a FailTrap abort, else nil
}

// Error renders the full report so existing log output keeps its
// diagnostic tables.
func (f *Failure) Error() string {
	if f.Report != nil {
		return f.Report.String()
	}
	return fmt.Sprintf("%s: cycle budget exhausted (unsupervised run)", f.Kind)
}

// Unwrap exposes the underlying trap (if any) to errors.Is/As.
func (f *Failure) Unwrap() error { return f.Trap }

// StallReport is the structured post-mortem produced when a supervised
// run fails: watchdog stall, invariant violation, queue overflow, or
// cycle-budget exhaustion.
type StallReport struct {
	Kind        FailureKind
	Cycle       sim.Cycle
	Reason      string
	StallCycles sim.Cycle // cycles since the last observed forward progress
	Queues      []QueueState
	Components  []ComponentState

	// Trap carries the underlying *ctrl.Trap when Kind == FailTrap; its
	// rendering is already folded into Reason, so it is skipped in JSON.
	Trap error `json:"-"`
}

// Failure wraps the report as a typed error. It is nil-safe: a nil
// report (unsupervised run that never reached done within its budget)
// yields a bare budget failure, so call sites can wrap unconditionally.
func (r *StallReport) Failure() *Failure {
	if r == nil {
		return &Failure{Kind: FailBudget}
	}
	return &Failure{Kind: r.Kind, Report: r, Trap: r.Trap}
}

// StuckQueues returns the names of queues flagged Stuck, the usual
// starting point for diagnosing a wedge.
func (r *StallReport) StuckQueues() []string {
	if r == nil {
		return nil
	}
	var names []string
	for _, q := range r.Queues {
		if q.Stuck {
			names = append(names, q.Name)
		}
	}
	return names
}

// Suffix renders the report for appending to an error message; it is
// nil-safe so callers can use it unconditionally.
func (r *StallReport) Suffix() string {
	if r == nil {
		return ""
	}
	return "\n" + r.String()
}

// String renders the full report: reason, queue table, component detail.
func (r *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall report @ cycle %d: %s", r.Cycle, r.Reason)
	// The watchdog reason already states the stall length; add it only for
	// the other failure modes (overflow, invariant, budget).
	if r.StallCycles > 0 && !strings.HasPrefix(r.Reason, "no forward progress") {
		fmt.Fprintf(&b, " (no progress for %d cycles)", r.StallCycles)
	}
	b.WriteString("\n")
	t := stats.NewTable("", "queue", "len", "staged", "cap", "max", "pushes", "pops", "")
	for _, q := range r.Queues {
		mark := ""
		if q.Stuck {
			mark = "STUCK"
		}
		t.Add(q.Name, stats.I(q.Len), stats.I(q.Staged), stats.I(q.Cap),
			stats.I(q.MaxLen), stats.I(q.Pushes), stats.I(q.Pops), mark)
	}
	b.WriteString(t.String())
	for _, c := range r.Components {
		fmt.Fprintf(&b, "--- %s ---\n", c.Name)
		for _, line := range c.Detail {
			b.WriteString("  " + line + "\n")
		}
	}
	return b.String()
}
