// Package core is the public face of the X-Cache library — the analogue
// of the paper's Chisel generator top module (Fig 13) plus its toolflow
// (Fig 12). A designer provides:
//
//   - a Config: the generator parameters — meta-tag geometry (ways, sets,
//     key fields), data-RAM geometry (#Word per sector, sector count),
//     and controller parallelism (#Active walkers, #Exe action slots);
//   - a program.Spec: the table-driven walker — one line per
//     (state, event) transition with the microcode actions to run.
//
// Build compiles the walker, instantiates the meta-tag array, data RAM
// and programmable controller, and wires them to a memory port. The DSA
// datapath then issues meta loads/stores through Cache.Ctrl.ReqQ and
// consumes responses from Cache.Ctrl.RespQ; on hits X-Cache answers in a
// 3-cycle load-to-use, and on misses the compiled walker traverses the
// DSA's data structure in DRAM.
//
// The package also ships the paper's Table 3 per-DSA configurations.
package core

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// Key re-exports the meta-tag key type for datapath convenience.
type Key = metatag.Key

// Config collects every generator knob of Fig 13.
type Config struct {
	Name string

	// Meta-tag geometry.
	Sets     int // power of two
	Ways     int
	KeyWords int // meta-tag fields compared (1 or 2)
	TagBytes int // stored tag entry bytes (energy model)
	// IdentityIndex indexes sets by the raw key (dense-id DSAs like
	// GraphPulse) instead of a mixed hash.
	IdentityIndex bool

	// Data RAM geometry.
	WordsPerSector int // #Word delivered per sector (#wlen stripe)
	Sectors        int // total sectors; 0 → 2 × Sets × Ways
	Banks          int // 0 → WordsPerSector

	// Controller.
	NumActive    int // concurrent walkers
	NumExe       int // action slots per cycle
	NumXRegs     int
	MaxFillWords int
	Mode         ctrl.ExecMode
	Exec         ctrl.ExecPath // microcode executor backend (fast pre-decoded by default)
	Hardwired    bool          // hardwired-FSM baseline (no routine RAM)

	// Queue depths (0 → controller defaults).
	MetaQueueDepth int
	RespQueueDepth int

	// RespDataWords caps the words copied into MetaResp.Data for
	// functional validation (energy is charged for the full transfer).
	RespDataWords int
}

// Validate reports configuration errors a hardware generator would reject.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("core: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("core: Ways must be positive, got %d", c.Ways)
	}
	if c.WordsPerSector <= 0 {
		return fmt.Errorf("core: WordsPerSector must be positive, got %d", c.WordsPerSector)
	}
	if c.KeyWords < 0 || c.KeyWords > 2 {
		return fmt.Errorf("core: KeyWords must be 1 or 2, got %d", c.KeyWords)
	}
	if c.NumActive < 0 || c.NumExe < 0 {
		return fmt.Errorf("core: negative controller parallelism")
	}
	return nil
}

// withDefaults fills derived values.
func (c Config) withDefaults() Config {
	if c.Sectors == 0 {
		c.Sectors = 2 * c.Sets * c.Ways
	}
	if c.KeyWords == 0 {
		c.KeyWords = 1
	}
	return c
}

// Cache is a built X-Cache instance.
type Cache struct {
	Cfg   Config
	Prog  *program.Program
	Ctrl  *ctrl.Controller
	Tags  *metatag.Array
	Data  *dataram.RAM
	Meter *energy.Counters
}

// Build compiles spec and instantiates the cache against the given memory
// port (usually a dram.DRAM's queues, or a lower cache level in the MX /
// MXA hierarchies of §6).
func Build(k *sim.Kernel, cfg Config, spec program.Spec,
	memReq *sim.Queue[dram.Request], memResp *sim.Queue[dram.Response],
	meter *energy.Counters) (*Cache, error) {

	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	prog, err := spec.Compile()
	if err != nil {
		return nil, fmt.Errorf("core: compiling walker %q: %w", spec.Name, err)
	}
	if meter == nil {
		meter = &energy.Counters{}
	}
	tags := metatag.New(metatag.Config{
		Sets: cfg.Sets, Ways: cfg.Ways, KeyWords: cfg.KeyWords, TagBytes: cfg.TagBytes,
		IdentityIndex: cfg.IdentityIndex,
	}, meter)
	data := dataram.New(dataram.Config{
		Sectors: cfg.Sectors, WordsPerSector: cfg.WordsPerSector, Banks: cfg.Banks,
	}, meter)
	cc, err := ctrl.New(k, ctrl.Config{
		NumActive: cfg.NumActive, NumExe: cfg.NumExe, NumXRegs: cfg.NumXRegs,
		MaxFillWords: cfg.MaxFillWords, Mode: cfg.Mode, Exec: cfg.Exec, Hardwired: cfg.Hardwired,
		MetaQueueDepth: cfg.MetaQueueDepth, RespQueueDepth: cfg.RespQueueDepth,
		RespDataWords: cfg.RespDataWords,
	}, prog, tags, data, memReq, memResp, meter)
	if err != nil {
		return nil, fmt.Errorf("core: walker %q: %w", spec.Name, err)
	}
	return &Cache{Cfg: cfg, Prog: prog, Ctrl: cc, Tags: tags, Data: data, Meter: meter}, nil
}

// SetEnv forwards a DSA environment operand to the controller.
func (c *Cache) SetEnv(i int, v uint64) { c.Ctrl.SetEnv(i, v) }

// System bundles the common single-level setup: kernel, memory image,
// DRAM channel and one X-Cache.
type System struct {
	K     *sim.Kernel
	Img   *mem.Image
	DRAM  *dram.DRAM
	Cache *Cache
	Meter *energy.Counters
}

// NewSystem builds a kernel+DRAM+X-Cache stack.
func NewSystem(cfg Config, dramCfg dram.Config, spec program.Spec) (*System, error) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dramCfg, img)
	meter := &energy.Counters{}
	c, err := Build(k, cfg, spec, d.Req, d.Resp, meter)
	if err != nil {
		return nil, err
	}
	return &System{K: k, Img: img, DRAM: d, Cache: c, Meter: meter}, nil
}

// RunStats is a full measurement snapshot.
type RunStats struct {
	Cycles uint64
	Ctrl   ctrl.Stats
	Tags   metatag.Stats
	Data   dataram.Stats
	DRAM   dram.Stats
	Energy energy.Breakdown
}

// Snapshot captures all statistics at the current cycle.
func (s *System) Snapshot() RunStats {
	return RunStats{
		Cycles: uint64(s.K.Cycle()),
		Ctrl:   s.Cache.Ctrl.Stats(),
		Tags:   s.Cache.Tags.Stats(),
		Data:   s.Cache.Data.Stats(),
		DRAM:   s.DRAM.Stats(),
		Energy: s.Meter.Energy(energy.DefaultParams()),
	}
}

// Drain runs the kernel until the cache and DRAM are idle (all issued
// work answered), up to max cycles. It reports whether it drained.
func (s *System) Drain(max int) bool {
	return s.K.RunUntil(func() bool { return s.Cache.Ctrl.Idle() && s.DRAM.Idle() }, max)
}

// --- Table 3: the paper's per-DSA design points. ---

// WidxConfig returns the Widx design point (#Active 16, #Exe 2, 8 ways,
// 1024 sets, 4 words).
func WidxConfig() Config {
	return Config{Name: "Widx", NumActive: 16, NumExe: 2,
		Ways: 8, Sets: 1024, WordsPerSector: 4, KeyWords: 1}
}

// DASXConfig returns the DASX hash design point (#Active 16, #Exe 4).
func DASXConfig() Config {
	return Config{Name: "DASX", NumActive: 16, NumExe: 4,
		Ways: 8, Sets: 1024, WordsPerSector: 4, KeyWords: 1}
}

// SpArchConfig returns the SpArch design point (#Active 32, #Exe 4,
// 8 ways, 512 sets, 4 words).
func SpArchConfig() Config {
	return Config{Name: "SpArch", NumActive: 32, NumExe: 4,
		Ways: 8, Sets: 512, WordsPerSector: 4, KeyWords: 1, MaxFillWords: 8}
}

// GammaConfig returns the Gamma design point — the same microarchitecture
// as SpArch (§1: "we only had to reprogram the controller").
func GammaConfig() Config {
	c := SpArchConfig()
	c.Name = "Gamma"
	return c
}

// GraphPulseConfig returns the GraphPulse design point (#Active 16,
// #Exe 4, direct-mapped, 131072 sets, 8 words).
func GraphPulseConfig() Config {
	return Config{Name: "GraphPulse", NumActive: 16, NumExe: 4,
		Ways: 1, Sets: 131072, WordsPerSector: 8, KeyWords: 1, IdentityIndex: true,
		TagBytes: 6} // vertex-id tags are narrow
}

// Table3 lists all five design points in paper order.
func Table3() []Config {
	return []Config{WidxConfig(), DASXConfig(), SpArchConfig(), GammaConfig(), GraphPulseConfig()}
}

// Scaled shrinks a configuration by div in sets and sectors (capacity),
// keeping ways/words/parallelism; unit tests use it to keep runtimes
// short while exercising the same structures.
func (c Config) Scaled(div int) Config {
	c.Sets /= div
	if c.Sets < 1 {
		c.Sets = 1
	}
	for c.Sets&(c.Sets-1) != 0 {
		c.Sets++
	}
	if c.Sectors > 0 {
		c.Sectors /= div
	}
	return c
}
