package core

import (
	"strings"
	"testing"

	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/program"
)

// idxSpec is the quickstart walker: cache array[key] words.
func idxSpec() program.Spec {
	return program.Spec{
		Name:   "idx",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

func smallCfg() Config {
	return Config{Name: "t", Sets: 16, Ways: 2, WordsPerSector: 4, NumActive: 4, NumExe: 2}
}

func TestNewSystemEndToEnd(t *testing.T) {
	s, err := NewSystem(smallCfg(), dram.DefaultConfig(), idxSpec())
	if err != nil {
		t.Fatal(err)
	}
	base := s.Img.AllocWords(64)
	for i := 0; i < 64; i++ {
		s.Img.W64(base+uint64(i)*8, uint64(i*i))
	}
	s.Cache.SetEnv(0, base)

	for i := 0; i < 20; i++ {
		key := uint64(i % 10)
		s.Cache.Ctrl.ReqQ.MustPush(ctrl.MetaReq{
			ID: uint64(i), Op: ctrl.MetaLoad, Key: Key{key, 0}, Issued: s.K.Cycle()})
		var resp ctrl.MetaResp
		if !s.K.RunUntil(func() bool {
			r, ok := s.Cache.Ctrl.RespQ.Pop()
			resp = r
			return ok
		}, 100000) {
			t.Fatalf("no response for request %d", i)
		}
		if resp.Value != key*key {
			t.Fatalf("key %d: value %d want %d", key, resp.Value, key*key)
		}
	}
	if !s.Drain(10000) {
		t.Fatal("system did not drain")
	}
	st := s.Snapshot()
	if st.Ctrl.Hits != 10 || st.Ctrl.Misses != 10 {
		t.Fatalf("hits=%d misses=%d", st.Ctrl.Hits, st.Ctrl.Misses)
	}
	if st.Energy.OnChip() <= 0 {
		t.Fatal("no energy recorded")
	}
	if st.DRAM.Reads != 10 {
		t.Fatalf("dram reads %d", st.DRAM.Reads)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		frag   string
	}{
		{func(c *Config) { c.Sets = 3 }, "power of two"},
		{func(c *Config) { c.Sets = 0 }, "power of two"},
		{func(c *Config) { c.Ways = 0 }, "Ways"},
		{func(c *Config) { c.WordsPerSector = 0 }, "WordsPerSector"},
		{func(c *Config) { c.KeyWords = 3 }, "KeyWords"},
	}
	for _, tc := range cases {
		cfg := smallCfg()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("cfg %+v: err=%v want containing %q", cfg, err, tc.frag)
		}
	}
	if err := smallCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	spec := idxSpec()
	spec.Transitions[0].Asm = "bogus r1"
	_, err := NewSystem(smallCfg(), dram.DefaultConfig(), spec)
	if err == nil || !strings.Contains(err.Error(), "compiling walker") {
		t.Fatalf("err=%v", err)
	}
}

func TestTable3DesignPoints(t *testing.T) {
	cfgs := Table3()
	if len(cfgs) != 5 {
		t.Fatalf("%d design points", len(cfgs))
	}
	byName := map[string]Config{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		byName[c.Name] = c
	}
	w := byName["Widx"]
	if w.NumActive != 16 || w.NumExe != 2 || w.Ways != 8 || w.Sets != 1024 || w.WordsPerSector != 4 {
		t.Fatalf("Widx design point drifted: %+v", w)
	}
	g := byName["GraphPulse"]
	if g.Ways != 1 || g.Sets != 131072 || g.WordsPerSector != 8 {
		t.Fatalf("GraphPulse design point drifted: %+v", g)
	}
	// SpArch and Gamma share a microarchitecture.
	sp, ga := byName["SpArch"], byName["Gamma"]
	sp.Name, ga.Name = "", ""
	if sp != ga {
		t.Fatalf("SpArch %+v and Gamma %+v must share a microarchitecture", sp, ga)
	}
}

func TestScaledKeepsInvariants(t *testing.T) {
	c := GraphPulseConfig().Scaled(1024)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Sets > 131072/1024+1 {
		t.Fatalf("not scaled: %d sets", c.Sets)
	}
	if c.Ways != 1 || c.WordsPerSector != 8 {
		t.Fatal("scaling changed non-capacity parameters")
	}
}

func TestDefaultSectorProvisioning(t *testing.T) {
	cfg := smallCfg().withDefaults()
	if cfg.Sectors != 2*16*2 {
		t.Fatalf("sectors %d", cfg.Sectors)
	}
}
