// Package ctrl implements X-Cache's programmable cache controller
// (Fig 8/9). The front-end is an event loop: it monitors the message
// queues (meta requests from the DSA datapath, DRAM fills, internal
// events), maps messages to events through the trigger table, and wakes at
// most one walker per cycle. The back-end is an in-order routine pipeline
// executing up to #Exe microcode actions per cycle across the in-flight
// routines. Hits bypass the walkers entirely through a dedicated
// fully-pipelined port with a 3-cycle load-to-use latency.
//
// Walkers are coroutines: a routine runs non-blocking to a terminal action
// and the walker sleeps until the next event re-wakes it, releasing the
// pipeline. The package also retains a blocking-thread execution mode used
// only for the paper's Fig 7 occupancy ablation.
//
// The back-end has two executor implementations, selected by
// Config.Exec. The default (ExecFast, exec_fast.go) pre-decodes every
// verified microcode word into a step closure at load time, discharging
// the checks the program verifier has already proven — operand decode,
// register bounds, immediate ranges — and keeping only the
// runtime-decidable traps dynamic. ExecInterp (exec.go) is the
// reference interpreter that re-decodes every word on every step; it
// remains the semantic ground truth the fast path is differentially
// tested against (exec_diff_test.go, FuzzExecDiff). See DESIGN.md §12
// for the pre-decode pipeline and the soundness argument, and this
// package's README.md for the file map.
package ctrl

import (
	"fmt"
	"math/bits"

	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
	"xcache/internal/stats"
)

// MetaOp is the operation of a meta access.
type MetaOp uint8

// Meta access operations issued by DSA datapaths.
const (
	// MetaLoad requests the element tagged by Key; a miss runs the walker.
	MetaLoad MetaOp = iota
	// MetaStore overwrites the element's first data word.
	MetaStore
	// MetaStoreMerge accumulates Payload into the element's first data
	// word (GraphPulse event coalescing), allocating on miss.
	MetaStoreMerge
	// MetaStoreMergeMin keeps the minimum of the stored word and Payload
	// (SSSP-style relaxation coalescing), allocating on miss.
	MetaStoreMergeMin
)

// MetaReq is a meta load/store from the datapath.
type MetaReq struct {
	ID      uint64
	Op      MetaOp
	Key     metatag.Key
	Payload uint64
	Issued  sim.Cycle // set by the datapath; used for load-to-use stats
}

// MetaResp answers a MetaReq.
type MetaResp struct {
	ID     uint64
	Status int    // program.StatusOK or program.StatusNotFound
	Value  uint64 // scalar result (first data word / walker enqresp value)
	Words  int    // data words delivered on a block hit
	Data   []uint64
}

// ExecMode selects how walkers share the controller pipeline.
type ExecMode uint8

// Execution modes (§3.3).
const (
	// ModeCoroutine multiplexes walkers on the pipeline, yielding at
	// long-latency events. This is X-Cache's design point.
	ModeCoroutine ExecMode = iota
	// ModeThread pins each walker to a hardware pipeline for its whole
	// lifetime, blocking across DRAM fills (the prior-work baseline of
	// Fig 7).
	ModeThread
)

// Config parameterizes the controller (the Fig 13 generator knobs).
type Config struct {
	NumActive int // #Active: concurrent walkers (X-register files)
	NumExe    int // #Exe: action slots per cycle / thread pipelines
	NumXRegs  int // registers per walker (default 16)

	MetaQueueDepth int
	RespQueueDepth int
	EvQueueDepth   int
	HitLatency     int // dedicated hit-port load-to-use (default 3)
	MaxFillWords   int // largest single DRAM fill a routine may request

	Mode      ExecMode
	Exec      ExecPath // back-end executor: pre-decoded fast path (default) or reference interpreter
	Hardwired bool     // hardwired-FSM baseline: whole routine in 1 cycle, no µcode fetches

	MaxRoutineSteps int // runaway-microcode guard (default 4096)
	RespDataWords   int // cap on words copied into MetaResp.Data
	MaxWaiters      int // merged requests per walker before backpressure

	// Hardening knobs (internal/check wires these; both default off so
	// benchmarks pay nothing).
	FillTimeout    int  // cycles before an unanswered DRAM fill is reissued (0 = off)
	MaxFillRetries int  // reissues before the fill is declared failed (default 8)
	ParityCheck    bool // scrub probed sets for parity-corrupted meta-tags
}

func (c *Config) defaults() {
	if c.NumActive == 0 {
		c.NumActive = 8
	}
	if c.NumExe == 0 {
		c.NumExe = 4
	}
	if c.NumXRegs == 0 {
		c.NumXRegs = 16
	}
	if c.MetaQueueDepth == 0 {
		c.MetaQueueDepth = 16
	}
	if c.RespQueueDepth == 0 {
		c.RespQueueDepth = 64
	}
	if c.EvQueueDepth == 0 {
		c.EvQueueDepth = 64
	}
	if c.HitLatency == 0 {
		c.HitLatency = 3
	}
	if c.MaxFillWords == 0 {
		c.MaxFillWords = 8
	}
	if c.MaxRoutineSteps == 0 {
		c.MaxRoutineSteps = 4096
	}
	if c.RespDataWords == 0 {
		c.RespDataWords = 16
	}
	if c.MaxWaiters == 0 {
		c.MaxWaiters = 8
	}
	if c.MaxFillRetries == 0 {
		c.MaxFillRetries = 8
	}
}

// Stats aggregates controller activity.
type Stats struct {
	Loads, Stores    uint64
	Hits, Misses     uint64 // stable-entry hits vs walker spawns+merges
	MergedWaiters    uint64
	NotFound         uint64
	Responses        uint64
	WalkerSpawns     uint64
	RoutineRuns      uint64
	Actions          uint64
	FillsIssued      uint64
	WritebacksIssued uint64
	AllocRetries     uint64 // allocM conflicts pushed back to replay
	MaxFillsInFlight int    // high-water mark of outstanding DRAM fills
	StallCycles      uint64 // backend cycles lost to full queues
	Traps            uint64 // structural microcode faults (walkers quiesced)

	// Fault-recovery accounting (zero unless hardening is enabled).
	FillRetries   uint64 // timed-out DRAM fills reissued
	SpuriousFills uint64 // duplicate/late responses discarded after a retry
	ParityScrubs  uint64 // parity-corrupted meta-tags invalidated for refetch

	// Load-to-use accounting (request issue → response push).
	L2USum, L2UCount, L2UMax uint64
	HitL2USum, HitL2UCount   uint64
	L2UHist                  stats.Histogram

	// Occupancy (Fig 7): Σ live-register-bytes × cycles.
	OccupancyByteCycles uint64
}

// AvgLoadToUse returns mean cycles from issue to response.
func (s Stats) AvgLoadToUse() float64 {
	if s.L2UCount == 0 {
		return 0
	}
	return float64(s.L2USum) / float64(s.L2UCount)
}

// AvgHitLoadToUse returns the mean load-to-use over stable hits only.
func (s Stats) AvgHitLoadToUse() float64 {
	if s.HitL2UCount == 0 {
		return 0
	}
	return float64(s.HitL2USum) / float64(s.HitL2UCount)
}

// HitRate returns hits / (hits + misses).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const (
	wbIDFlag = uint64(1) << 63 // DRAM request id flag: eviction writeback
)

// message is a pending wakeup for a walker.
type message struct {
	event int
	addr  uint64
	data  []uint64
}

type walker struct {
	active   bool
	id       int32
	key      metatag.Key
	state    int
	entry    *metatag.Entry
	regs     []uint64
	liveMask uint32 // registers holding values right now
	persist  uint32 // allocr-marked registers that survive yields
	origin   MetaReq
	waiters  []MetaReq
	msg      message
	pending  []message
	running  bool
	fills    int // outstanding DRAM fills for this walker
	spawned  sim.Cycle
	isStore  bool
	pipeline int32 // thread mode: pipeline index, else -1

	// trapped marks a quiesced walker still draining outstanding fills;
	// responded records that the origin request was already answered, so
	// a later trap must not answer it twice.
	trapped   bool
	responded bool
}

type run struct {
	walker int32
	start  int32
	pc     int32
	steps  int
}

type hitJob struct {
	readyAt sim.Cycle
	resp    MetaResp
}

// Controller is the programmable X-Cache controller.
type Controller struct {
	Cfg  Config
	Prog *program.Program

	Tags *metatag.Array
	Data *dataram.RAM

	// Datapath-facing queues.
	ReqQ  *sim.Queue[MetaReq]
	RespQ *sim.Queue[MetaResp]

	// Memory-side queues (owned by the DRAM model or a lower cache level).
	MemReq  *sim.Queue[dram.Request]
	MemResp *sim.Queue[dram.Response]

	evq    *sim.Queue[message] // internal events; message.addr carries walker id
	replay []MetaReq

	env      [16]uint64
	walkers  []walker
	freeW    []int32
	inflight []run
	hitPipe  []hitJob
	hitAvail int     // banked hit-port word budget (refreshed per cycle)
	pipes    []int32 // thread mode: pipeline -> walker or -1

	Meter *energy.Counters
	stats Stats

	// fast is the pre-decoded step-closure table, indexed by absolute pc
	// (exec_fast.go); nil when Cfg.Exec selects the reference interpreter.
	fast []fastFn

	outstandingFills int

	// Hardening state.
	fillTable   []fillRec // outstanding fills, tracked when FillTimeout > 0
	fillFailure error     // a fill exhausted MaxFillRetries
	cycWakes    int       // walker wake-ups this cycle (invariant: ≤ #Exe)
	cycActions  int       // actions executed this cycle (invariant: ≤ #Exe)

	// Trap state: the first structural microcode fault, and NotFound
	// responses for quiesced walkers awaiting response-queue space.
	trap      *Trap
	trapResps []MetaResp

	// sink, when non-nil, receives the meta-tag reference trace (see
	// trace.go); internal/approx replays it against other geometries.
	sink TraceSink

	// evictHook, when non-nil, observes every stable entry leaving the
	// meta-tag array (see SetEvictHook). internal/hier's coherence
	// directory uses it for inclusion-enforced back-invalidation.
	evictHook func(EvictNote) bool
}

// EvictNote describes a meta-tag entry leaving the controller's array —
// capacity eviction, drain, flush, or parity scrub. Words holds the
// entry's data words read before the sectors are freed (nil when the
// entry held no sectors, or when a parity scrub made them untrustworthy).
type EvictNote struct {
	Key   metatag.Key
	Dirty bool
	Words []uint64
}

// SetEvictHook registers fn to observe every stable entry leaving the
// array. When fn returns true for a dirty victim it has taken ownership
// of the writeback and the controller skips its own spill to the victim
// region; the return value is ignored on all other paths. Entries removed
// by the walker itself (abort, deallocm) are its own transient
// allocations — no upstream level ever observed them as present — and do
// not fire the hook.
func (c *Controller) SetEvictHook(fn func(EvictNote) bool) { c.evictHook = fn }

// fillRec tracks one outstanding DRAM fill for the timeout/retry path.
type fillRec struct {
	walker  int32
	addr    uint64
	words   int
	issued  sim.Cycle
	retries int
}

// verifyConfig derives the static-verifier limits from an
// already-defaulted controller configuration and its data RAM.
func (cfg Config) verifyConfig(data *dataram.RAM) program.VerifyConfig {
	vc := program.VerifyConfig{
		NumXRegs:        cfg.NumXRegs,
		MaxFillWords:    cfg.MaxFillWords,
		MaxRoutineSteps: cfg.MaxRoutineSteps,
		EnvSlots:        16,
	}
	if data != nil {
		vc.DataSectors = data.Cfg.Sectors
	}
	return vc
}

// New wires a controller. memReq/memResp connect it to DRAM (or a lower
// level); tags and data are the RAM arrays it manages. The program is
// statically verified against the configuration once, here at load time;
// a rejected program never executes a cycle.
func New(k *sim.Kernel, cfg Config, prog *program.Program, tags *metatag.Array,
	data *dataram.RAM, memReq *sim.Queue[dram.Request], memResp *sim.Queue[dram.Response],
	meter *energy.Counters) (*Controller, error) {

	cfg.defaults()
	facts, err := program.VerifyFacts(prog, cfg.verifyConfig(data))
	if err != nil {
		return nil, fmt.Errorf("ctrl: program rejected at load: %w", err)
	}
	c := &Controller{
		Cfg:     cfg,
		Prog:    prog,
		Tags:    tags,
		Data:    data,
		MemReq:  memReq,
		MemResp: memResp,
		Meter:   meter,
		ReqQ:    sim.NewQueue[MetaReq](k, "xc.req", cfg.MetaQueueDepth),
		RespQ:   sim.NewQueue[MetaResp](k, "xc.resp", cfg.RespQueueDepth),
		evq:     sim.NewQueue[message](k, "xc.evq", cfg.EvQueueDepth),
	}
	c.walkers = make([]walker, cfg.NumActive)
	for i := range c.walkers {
		c.walkers[i] = walker{id: int32(i), regs: make([]uint64, cfg.NumXRegs), pipeline: -1}
		c.freeW = append(c.freeW, int32(i))
	}
	c.pipes = make([]int32, cfg.NumExe)
	for i := range c.pipes {
		c.pipes[i] = -1
	}
	if cfg.Exec == ExecFast {
		c.predecode(facts)
	}
	k.Add(c)
	return c, nil
}

// LoadProgram swaps in a new walker program, verifying it against the
// controller's configuration first. The previous program (and any pending
// trap) is kept on rejection.
func (c *Controller) LoadProgram(p *program.Program) error {
	facts, err := program.VerifyFacts(p, c.Cfg.verifyConfig(c.Data))
	if err != nil {
		return fmt.Errorf("ctrl: program rejected at load: %w", err)
	}
	c.Prog = p
	c.trap = nil
	if c.Cfg.Exec == ExecFast {
		c.predecode(facts)
	}
	return nil
}

// SetEnv installs a DSA-specific environment operand (lde source).
func (c *Controller) SetEnv(i int, v uint64) { c.env[i] = v }

// Stats returns a copy of the controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Idle reports whether no walkers, routines, queued work, hit returns or
// deferred trap responses remain.
func (c *Controller) Idle() bool {
	return len(c.inflight) == 0 && len(c.replay) == 0 && len(c.hitPipe) == 0 &&
		c.ReqQ.Len() == 0 && c.evq.Len() == 0 && c.outstandingFills == 0 &&
		len(c.freeW) == len(c.walkers) && len(c.trapResps) == 0
}

// Tick implements sim.Component.
func (c *Controller) Tick(cy sim.Cycle) {
	c.cycWakes, c.cycActions = 0, 0
	if len(c.trapResps) > 0 {
		c.flushTrapResps()
	}
	c.drainHitPipe(cy)
	c.acceptFills(cy)
	if c.Cfg.FillTimeout > 0 {
		c.retryFills(cy)
	}
	c.frontend(cy)
	c.backend(cy)
	c.accumulateOccupancy()
}

// retryFills reissues DRAM fills that have gone unanswered for longer
// than FillTimeout cycles (dropped responses under fault injection). The
// logical fill stays the same — outstanding counts are not re-incremented
// — so a late original and the retry's response cannot both wake the
// walker; the second is discarded as spurious in acceptFills.
func (c *Controller) retryFills(cy sim.Cycle) {
	for i := range c.fillTable {
		r := &c.fillTable[i]
		if cy < r.issued+sim.Cycle(c.Cfg.FillTimeout) {
			continue
		}
		if r.retries >= c.Cfg.MaxFillRetries {
			if c.fillFailure == nil {
				c.fillFailure = fmt.Errorf("ctrl: fill %#x (%d words) for walker %d failed after %d retries",
					r.addr, r.words, r.walker, r.retries)
			}
			continue
		}
		if !c.MemReq.CanPush() {
			return // full memory queue: retry next cycle
		}
		c.MemReq.MustPush(dram.Request{ID: uint64(r.walker), Addr: r.addr, Words: r.words})
		r.issued = cy
		r.retries++
		c.stats.FillRetries++
	}
}

// matchFill consumes the fill record for (walker, addr); ok is false when
// no record exists (a duplicate response after a retry already landed).
func (c *Controller) matchFill(wid int32, addr uint64) bool {
	for i := range c.fillTable {
		r := &c.fillTable[i]
		if r.walker == wid && r.addr == addr {
			c.fillTable[i] = c.fillTable[len(c.fillTable)-1]
			c.fillTable = c.fillTable[:len(c.fillTable)-1]
			return true
		}
	}
	return false
}

func (c *Controller) drainHitPipe(cy sim.Cycle) {
	keep := c.hitPipe[:0]
	for _, h := range c.hitPipe {
		if h.readyAt <= cy && c.RespQ.CanPush() {
			c.RespQ.MustPush(h.resp)
			c.stats.Responses++
			continue
		}
		keep = append(keep, h)
	}
	c.hitPipe = keep
}

// acceptFills pops DRAM responses and routes them to walkers' pending
// message lists (writeback acks are discarded).
func (c *Controller) acceptFills(cy sim.Cycle) {
	for {
		resp, ok := c.MemResp.Peek()
		if !ok {
			break
		}
		if resp.ID&wbIDFlag != 0 {
			c.MemResp.Pop()
			continue
		}
		wid := int32(resp.ID & 0xffffffff)
		if c.Cfg.FillTimeout > 0 && !c.matchFill(wid, resp.Addr) {
			// A retry's response already woke the walker; this is the late
			// original (or vice versa). Discard it.
			c.MemResp.Pop()
			c.stats.SpuriousFills++
			continue
		}
		w := &c.walkers[wid]
		if !w.active {
			// A fill addressed to a freed walker means this package lost
			// track of an MSHR — a simulator contract violation, not a
			// program fault, so it stays a (typed) panic.
			specBug("fill for inactive walker %d", wid)
		}
		c.MemResp.Pop()
		c.outstandingFills--
		w.fills--
		if w.trapped {
			// Quiesced walker draining: discard the data, free the context
			// once the last outstanding fill lands.
			if w.fills == 0 {
				c.freeTrapped(w)
			}
			continue
		}
		if c.Meter != nil {
			c.Meter.QueueBytes += uint64(len(resp.Data)) * 8
		}
		w.pending = append(w.pending, message{event: program.EvFill, addr: resp.Addr, data: resp.Data})
	}
}

// frontend processes up to #Exe front-end slots per cycle: walker
// wake-ups (DRAM fills, internal events) and meta-request admissions
// (hit serves, waiter merges, walker spawns). The trigger/decode stage is
// replicated per executor lane, so #Exe is a genuine throughput knob —
// the behaviour Fig 18 sweeps.
func (c *Controller) frontend(cy sim.Cycle) {
	budget := c.Cfg.NumExe

	// Refresh the banked hit-port word budget (debt from multi-sector
	// returns carries over and blocks later cycles).
	c.hitAvail += c.Data.Cfg.Banks
	if c.hitAvail > c.Data.Cfg.Banks {
		c.hitAvail = c.Data.Cfg.Banks
	}

	// 1. Deliver pending messages (DRAM fills, stashed events) to idle
	// walkers.
	for i := range c.walkers {
		if budget == 0 {
			return
		}
		w := &c.walkers[i]
		if !w.active || w.trapped || w.running || len(w.pending) == 0 {
			continue
		}
		w.msg = w.pending[0]
		w.pending = w.pending[1:]
		c.fire(cy, w, w.msg.event)
		budget--
	}

	// 2. Internal event queue.
	for budget > 0 {
		m, ok := c.evq.Peek()
		if !ok {
			break
		}
		w := &c.walkers[int32(m.addr)]
		c.evq.Pop()
		if !w.active || w.trapped {
			continue
		}
		if w.running {
			w.pending = append(w.pending, m)
			continue
		}
		w.msg = m
		c.fire(cy, w, m.event)
		budget--
	}

	// 3. Meta requests: replay queue first (completed walkers' waiters),
	// then the datapath queue.
	for budget > 0 {
		var req MetaReq
		var fromReplay bool
		if len(c.replay) > 0 {
			req, fromReplay = c.replay[0], true
		} else if r, ok := c.ReqQ.Peek(); ok {
			req = r
		} else {
			return
		}

		if c.Cfg.ParityCheck {
			c.Tags.ScrubSet(req.Key, c.scrubEntry)
		}
		entry := c.Tags.Probe(req.Key)
		if entry != nil && entry.State == program.StateValid {
			if !c.serveHit(cy, req, entry) {
				return // hit port saturated this cycle
			}
			c.Tags.Account(true)
			c.consumeReq(fromReplay)
			c.trace(TraceEvent{Kind: TraceReq, Class: ClassHit, Op: req.Op, ID: req.ID, Key: req.Key, Replay: fromReplay})
			budget--
			continue
		}
		if entry != nil {
			if !c.merge(&c.walkers[entry.Walker], req, fromReplay) {
				return // waiter list full: backpressure
			}
			c.Tags.Account(true)
			c.trace(TraceEvent{Kind: TraceReq, Class: ClassMerge, Op: req.Op, ID: req.ID, Key: req.Key, Replay: fromReplay})
			budget--
			continue
		}
		// Active meta-tag bitmap (§4.1 y1): a walker may be live for this
		// key before its allocm has executed; merge, don't duplicate.
		merged := false
		for i := range c.walkers {
			w := &c.walkers[i]
			if w.active && !w.trapped && c.keyEq(w.key, req.Key) {
				if !c.merge(w, req, fromReplay) {
					return
				}
				merged = true
				break
			}
		}
		if merged {
			c.trace(TraceEvent{Kind: TraceReq, Class: ClassMerge, Op: req.Op, ID: req.ID, Key: req.Key, Replay: fromReplay})
			budget--
			continue
		}

		// Miss: spawn a walker.
		if len(c.freeW) == 0 {
			return
		}
		if c.Cfg.Mode == ModeThread && c.freePipe() < 0 {
			return
		}
		c.Tags.Account(false)
		c.consumeReq(fromReplay)
		c.trace(TraceEvent{Kind: TraceReq, Class: ClassMiss, Op: req.Op, ID: req.ID, Key: req.Key, Replay: fromReplay})
		c.spawn(cy, req)
		budget--
	}
}

func (c *Controller) keyEq(a, b metatag.Key) bool {
	if a[0] != b[0] {
		return false
	}
	return c.Tags.Cfg.KeyWords < 2 || a[1] == b[1]
}

// merge parks a request behind the walker already handling its key.
func (c *Controller) merge(w *walker, req MetaReq, fromReplay bool) bool {
	if len(w.waiters) >= c.Cfg.MaxWaiters {
		return false // backpressure
	}
	w.waiters = append(w.waiters, req)
	c.stats.MergedWaiters++
	c.consumeReq(fromReplay)
	return true
}

func (c *Controller) consumeReq(fromReplay bool) {
	if fromReplay {
		c.replay = c.replay[1:]
	} else {
		c.ReqQ.Pop()
	}
}

func (c *Controller) freePipe() int32 {
	for i, w := range c.pipes {
		if w < 0 {
			return int32(i)
		}
	}
	return -1
}

// serveHit runs the dedicated hit port: meta-tag hit, data sectors
// pipelined out through the crossbar. Returns false when the data port is
// still busy with a prior multi-sector return.
func (c *Controller) serveHit(cy sim.Cycle, req MetaReq, entry *metatag.Entry) bool {
	if c.hitAvail < 1 {
		return false
	}
	c.Tags.Touch(entry)
	c.stats.Hits++
	words := int(entry.SectorCount) * c.Data.Cfg.WordsPerSector
	resp := MetaResp{ID: req.ID, Status: program.StatusOK, Words: words}
	base := c.Data.SectorWordBase(entry.SectorBase)
	switch req.Op {
	case MetaLoad:
		c.stats.Loads++
		if words > 0 {
			// Every delivered word streams out of the banked data RAM;
			// Read charges energy per word. Words beyond the functional
			// snapshot cap are charged without being copied.
			keep := words
			if keep > c.Cfg.RespDataWords {
				keep = c.Cfg.RespDataWords
			}
			resp.Data = make([]uint64, keep)
			for i := 0; i < keep; i++ {
				resp.Data[i] = c.Data.Read(base + int32(i))
			}
			resp.Value = resp.Data[0]
			if c.Meter != nil && words > keep {
				c.Meter.DataBytes += uint64(words-keep) * 8
			}
		}
	case MetaStore:
		c.stats.Stores++
		c.Data.Write(base, req.Payload)
		entry.Dirty = true
		resp.Value = req.Payload
	case MetaStoreMerge:
		c.stats.Stores++
		old := c.Data.Read(base)
		c.Data.Write(base, old+req.Payload)
		entry.Dirty = true
		resp.Value = old + req.Payload
		if c.Meter != nil {
			c.Meter.AddOps++
		}
	case MetaStoreMergeMin:
		c.stats.Stores++
		old := c.Data.Read(base)
		v := old
		if req.Payload < v {
			v = req.Payload
			c.Data.Write(base, v)
			entry.Dirty = true
		}
		resp.Value = v
		if c.Meter != nil {
			c.Meter.BitOps++ // comparator
		}
	}
	banks := c.Data.Cfg.Banks
	occ := (words + banks - 1) / banks
	if occ < 1 {
		occ = 1
	}
	cost := words
	if req.Op != MetaLoad {
		cost = 1 // stores/merges touch one word
	}
	if cost < 1 {
		cost = 1
	}
	c.hitAvail -= cost
	ready := cy + sim.Cycle(c.Cfg.HitLatency+occ-1)
	c.hitPipe = append(c.hitPipe, hitJob{readyAt: ready, resp: resp})
	c.noteLatency(req, ready, true)
	return true
}

func (c *Controller) noteLatency(req MetaReq, done sim.Cycle, hit bool) {
	l := uint64(done - req.Issued)
	c.stats.L2UHist.Add(l)
	c.stats.L2USum += l
	c.stats.L2UCount++
	if l > c.stats.L2UMax {
		c.stats.L2UMax = l
	}
	if hit {
		c.stats.HitL2USum += l
		c.stats.HitL2UCount++
	}
}

// spawn allocates a walker context for a missing key and fires the
// (Default, MetaLoad/MetaStore) routine.
func (c *Controller) spawn(cy sim.Cycle, req MetaReq) {
	wid := c.freeW[len(c.freeW)-1]
	c.freeW = c.freeW[:len(c.freeW)-1]
	w := &c.walkers[wid]
	*w = walker{
		id: wid, active: true, key: req.Key, state: program.StateInvalid,
		regs: w.regs, origin: req, spawned: cy, pipeline: -1,
		isStore: req.Op != MetaLoad,
	}
	for i := range w.regs {
		w.regs[i] = 0
	}
	// Spawn conventions: r0 = payload, r1/r2 = key words.
	w.regs[0], w.regs[1], w.regs[2] = req.Payload, req.Key[0], req.Key[1]
	w.liveMask = 0b111
	if c.Meter != nil {
		c.Meter.RegBitsWritten += 3 * 64
	}
	if c.Cfg.Mode == ModeThread {
		p := c.freePipe()
		w.pipeline = p
		c.pipes[p] = wid
	}
	c.stats.Misses++
	c.stats.WalkerSpawns++
	if req.Op == MetaLoad {
		c.stats.Loads++
	} else {
		c.stats.Stores++
	}
	ev := program.EvMetaLoad
	if req.Op != MetaLoad {
		ev = program.EvMetaStore
	}
	w.msg = message{event: ev}
	c.fire(cy, w, ev)
}

// scrubEntry releases the data sectors of a parity-corrupted meta-tag
// before the array invalidates it; the next probe of its key misses and
// the walker refetches clean data from DRAM.
func (c *Controller) scrubEntry(e *metatag.Entry) {
	if c.evictHook != nil {
		// Scrubbed data is untrustworthy; report the invalidation without
		// a value so an upstream level back-invalidates rather than adopts.
		c.evictHook(EvictNote{Key: e.Key})
	}
	if e.SectorCount > 0 {
		c.Data.Free(e.SectorBase, e.SectorCount)
	}
	c.stats.ParityScrubs++
}

// fire starts the routine for (walker.state, event). A (state, event)
// pair with no routine traps and quiesces the walker: the static verifier
// cannot rule out event deliveries the program never declared (a walker
// can yield into a state that handles some events but not this one), so
// this stays a runtime check.
func (c *Controller) fire(cy sim.Cycle, w *walker, event int) {
	pc, ok := c.Prog.Lookup(w.state, event)
	if !ok {
		c.raise(cy, w, TrapMissingTransition, -1, 0,
			fmt.Sprintf("no transition for event %s", eventName(c.Prog, event)))
		return
	}
	w.running = true
	c.cycWakes++
	c.stats.RoutineRuns++
	c.inflight = append(c.inflight, run{walker: w.id, start: pc, pc: pc})
}

// eventName renders an event id, tolerating out-of-table ids.
func eventName(p *program.Program, ev int) string {
	if ev >= 0 && ev < len(p.EventNames) {
		return p.EventNames[ev]
	}
	return fmt.Sprintf("event%d", ev)
}

// backend executes up to #Exe actions across in-flight routines.
func (c *Controller) backend(cy sim.Cycle) {
	if len(c.inflight) == 0 {
		return
	}
	slots := c.Cfg.NumExe
	keep := c.inflight[:0]
	stalled := false
	for idx := 0; idx < len(c.inflight); idx++ {
		r := &c.inflight[idx]
		status := stepAgain
		for status == stepAgain {
			if !c.Cfg.Hardwired {
				if slots == 0 {
					break
				}
				slots--
			}
			if c.fast != nil {
				status = c.stepFast(cy, r)
			} else {
				status = c.step(cy, r)
			}
		}
		if status == stepStall && !stalled {
			c.stats.StallCycles++
			stalled = true
		}
		if status != stepDone {
			keep = append(keep, *r)
		}
		if slots == 0 && !c.Cfg.Hardwired {
			keep = append(keep, c.inflight[idx+1:]...)
			break
		}
	}
	c.inflight = keep
}

// accumulateOccupancy integrates the Fig 7 metric: #active-reg ×
// size-bytes × lifetime-cycles. Threads allocate at coarse granularity —
// every thread context (full register file plus pipeline latches) is
// provisioned for as long as the controller has work, exactly the
// prior-work designs §3.3 critiques. Coroutines hold only the X-registers
// a walker has actually made live, only while that walker exists.
func (c *Controller) accumulateOccupancy() {
	if c.Cfg.Mode == ModeThread {
		busy := len(c.freeW) < len(c.walkers) || len(c.inflight) > 0 ||
			c.ReqQ.Len() > 0 || len(c.replay) > 0
		if busy {
			ctx := uint64(c.Cfg.NumXRegs)*8 + 192
			c.stats.OccupancyByteCycles += uint64(len(c.walkers)) * ctx
		}
		return
	}
	for i := range c.walkers {
		w := &c.walkers[i]
		if !w.active {
			continue
		}
		c.stats.OccupancyByteCycles += uint64(bits.OnesCount32(w.liveMask)) * 8
	}
}

// finish releases a walker: waiters replay (they will now hit or respawn),
// thread pipelines free, context returns to the pool.
func (c *Controller) finish(w *walker, notFound bool) {
	if w.fills != 0 || len(w.pending) != 0 {
		// A program cannot reach this: fills are only issued by the routine
		// that waits for them, and the front-end delivers every pending
		// message before re-firing. Reaching it means this package broke
		// the coroutine discipline — a simulator bug, kept as a typed panic.
		specBug("walker %d finished with %d outstanding fills and %d pending messages",
			w.id, w.fills, len(w.pending))
	}
	for _, waiter := range w.waiters {
		if notFound {
			if c.RespQ.Push(MetaResp{ID: waiter.ID, Status: program.StatusNotFound}) {
				c.stats.Responses++
				c.stats.NotFound++
				continue
			}
		}
		c.replay = append(c.replay, waiter)
	}
	w.waiters = nil
	w.pending = nil
	w.active = false
	w.running = false
	if w.pipeline >= 0 {
		c.pipes[w.pipeline] = -1
		w.pipeline = -1
	}
	c.freeW = append(c.freeW, w.id)
}

// setState moves the walker (and its entry, if allocated) to state s.
func (c *Controller) setState(w *walker, s int) {
	w.state = s
	if w.entry != nil {
		w.entry.State = s
		c.Tags.Update()
	}
}

// Drained is one entry removed by DrainStable.
type Drained struct {
	Key   metatag.Key
	Value uint64 // first data word of the entry
}

// DrainStable removes every stable (Valid, walker-free) entry, invoking fn
// with its key and first data word, freeing its sectors, and charging the
// data-RAM read and tag write. GraphPulse uses this to pop its coalesced
// events between supersteps.
func (c *Controller) DrainStable(fn func(Drained)) int {
	c.trace(TraceEvent{Kind: TraceDrain})
	n := 0
	c.Tags.ForEach(func(e *metatag.Entry) {
		if e.Walker != metatag.NoWalker || e.State != program.StateValid {
			return
		}
		if c.Cfg.ParityCheck && !e.ParityOK() {
			// A corrupted key would drain under the wrong identity; drop
			// the entry instead (graceful degradation, counted).
			c.scrubEntry(e)
			c.Tags.Dealloc(e)
			return
		}
		var v uint64
		if e.SectorCount > 0 {
			v = c.Data.Read(c.Data.SectorWordBase(e.SectorBase))
			if c.evictHook != nil {
				words := int(e.SectorCount) * c.Data.Cfg.WordsPerSector
				base := c.Data.SectorWordBase(e.SectorBase)
				data := make([]uint64, words)
				for i := range data {
					data[i] = c.Data.Read(base + int32(i))
				}
				c.evictHook(EvictNote{Key: e.Key, Dirty: e.Dirty, Words: data})
			}
			c.Data.Free(e.SectorBase, e.SectorCount)
		} else if c.evictHook != nil {
			c.evictHook(EvictNote{Key: e.Key, Dirty: e.Dirty})
		}
		if fn != nil {
			fn(Drained{Key: e.Key, Value: v})
		}
		c.Tags.Dealloc(e)
		n++
	})
	return n
}

// FlushStable invalidates every stable entry without reading it (DASX's
// end-of-round object-cache reload). Dirty data is dropped; DASX caches
// read-only index objects.
func (c *Controller) FlushStable() int {
	c.trace(TraceEvent{Kind: TraceFlush})
	n := 0
	c.Tags.ForEach(func(e *metatag.Entry) {
		if e.Walker != metatag.NoWalker || e.State != program.StateValid {
			return
		}
		if c.evictHook != nil {
			// Flush drops data by contract, so no value travels with the note.
			c.evictHook(EvictNote{Key: e.Key, Dirty: e.Dirty})
		}
		if e.SectorCount > 0 {
			c.Data.Free(e.SectorBase, e.SectorCount)
		}
		c.Tags.Dealloc(e)
		n++
	})
	return n
}

// --- Hardening hooks (internal/check) ---

// ActivityCount returns a monotonic progress counter the deadlock
// watchdog folds into its forward-progress signature.
func (c *Controller) ActivityCount() uint64 {
	return c.stats.Actions + c.stats.Responses + c.stats.Hits + c.stats.RoutineRuns
}

// CheckInvariants verifies the controller's per-cycle microarchitectural
// bounds after a kernel step: the front-end woke at most #Exe walkers,
// the back-end retired at most #Exe actions (unless hardwired), the
// outstanding-fill count matches the per-walker ledgers, and the walker
// free list is conserved. It also surfaces a fill that exhausted its
// retries.
func (c *Controller) CheckInvariants(cy sim.Cycle) error {
	if c.fillFailure != nil {
		return c.fillFailure
	}
	if c.cycWakes > c.Cfg.NumExe {
		return fmt.Errorf("ctrl: %d walker wakes in cycle %d exceeds #Exe=%d", c.cycWakes, cy, c.Cfg.NumExe)
	}
	if !c.Cfg.Hardwired && c.cycActions > c.Cfg.NumExe {
		return fmt.Errorf("ctrl: %d actions in cycle %d exceeds #Exe=%d", c.cycActions, cy, c.Cfg.NumExe)
	}
	sum, active := 0, 0
	for i := range c.walkers {
		w := &c.walkers[i]
		if w.fills < 0 {
			return fmt.Errorf("ctrl: walker %d has negative fill count %d", w.id, w.fills)
		}
		sum += w.fills
		if w.active {
			active++
		}
	}
	if sum != c.outstandingFills {
		return fmt.Errorf("ctrl: outstanding fills %d != per-walker sum %d (MSHR ledger skew)",
			c.outstandingFills, sum)
	}
	if active+len(c.freeW) != len(c.walkers) {
		return fmt.Errorf("ctrl: %d active + %d free walkers != %d contexts", active, len(c.freeW), len(c.walkers))
	}
	if c.Cfg.FillTimeout > 0 && len(c.fillTable) != c.outstandingFills {
		return fmt.Errorf("ctrl: fill table holds %d records for %d outstanding fills", len(c.fillTable), c.outstandingFills)
	}
	return nil
}

// DiagnoseName labels this component in stall reports.
func (c *Controller) DiagnoseName() string { return "ctrl" }

// Diagnose describes every in-flight walker routine and the controller's
// queue-side state for stall reports.
func (c *Controller) Diagnose() []string {
	out := []string{fmt.Sprintf("%d/%d walkers active, %d routines in flight, %d replaying, %d fills outstanding, hit pipe %d",
		len(c.walkers)-len(c.freeW), len(c.walkers), len(c.inflight), len(c.replay), c.outstandingFills, len(c.hitPipe))}
	if c.trap != nil {
		out = append(out, fmt.Sprintf("TRAP (%d total): %v", c.stats.Traps, c.trap))
	}
	for i := range c.walkers {
		w := &c.walkers[i]
		if !w.active {
			continue
		}
		state := "?"
		if w.state >= 0 && w.state < len(c.Prog.StateNames) {
			state = c.Prog.StateNames[w.state]
		}
		run := "sleeping"
		if w.running {
			run = "running"
		}
		out = append(out, fmt.Sprintf("walker %d: key=%#x state=%s %s, %d fills outstanding, %d waiters, %d pending msgs, spawned @%d",
			w.id, w.key[0], state, run, w.fills, len(w.waiters), len(w.pending), w.spawned))
	}
	for _, r := range c.fillTable {
		out = append(out, fmt.Sprintf("fill: walker %d addr=%#x words=%d issued @%d retries=%d",
			r.walker, r.addr, r.words, r.issued, r.retries))
	}
	return out
}

// FaultQueues lists the queues whose producers all tolerate transient
// fullness, i.e. the safe targets for clog fault injection.
func (c *Controller) FaultQueues() []sim.Clogger {
	return []sim.Clogger{c.ReqQ, c.RespQ, c.evq, c.MemReq}
}
