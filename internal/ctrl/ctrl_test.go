package ctrl

import (
	"strings"
	"testing"

	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// arrayWalkSpec is a minimal real walker: the meta-tag is an array index,
// the walk loads array[key] from DRAM (env e0 = array base) and caches the
// single word. Keys >= e1 (the array bound) are not-found.
func arrayWalkSpec() program.Spec {
	return program.Spec{
		Name:   "arraywalk",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				lde r4, e1
				bge r1, r4, nf
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill
			nf:
				li r6, 0
				enqresp r6, NOTFOUND
				abort
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

// storeSpec handles MetaStore misses by allocating an entry and storing
// the payload (the GraphPulse insert path).
func storeSpec() program.Spec {
	s := arrayWalkSpec()
	s.Transitions = append(s.Transitions, program.Transition{
		State: "Default", Event: "MetaStore", Asm: `
			allocm
			allocdi r7, 1
			writed r7, r0
			li r8, 1
			update r7, r8
			enqresp r0, OK
			halt Valid
		`,
	})
	return s
}

type rig struct {
	t     *testing.T
	k     *sim.Kernel
	img   *mem.Image
	d     *dram.DRAM
	c     *Controller
	meter *energy.Counters
	next  uint64
}

func newRig(t *testing.T, cfg Config, spec program.Spec, tagCfg metatag.Config, dataCfg dataram.Config) *rig {
	t.Helper()
	prog, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(tagCfg, meter)
	data := dataram.New(dataCfg, meter)
	c, err := New(k, cfg, prog, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{t: t, k: k, img: img, d: d, c: c, meter: meter}
}

// fillArray lays out array[i] = 10*i+7 and points e0/e1 at it.
func (r *rig) fillArray(n int) uint64 {
	base := r.img.AllocWords(n)
	for i := 0; i < n; i++ {
		r.img.W64(base+uint64(i)*8, uint64(10*i+7))
	}
	r.c.SetEnv(0, base)
	r.c.SetEnv(1, uint64(n))
	return base
}

func (r *rig) issue(op MetaOp, key, payload uint64) uint64 {
	r.next++
	id := r.next
	req := MetaReq{ID: id, Op: op, Key: metatag.Key{key, 0}, Payload: payload, Issued: r.k.Cycle()}
	if !r.k.RunUntil(func() bool { return r.c.ReqQ.Push(req) }, 10000) {
		r.t.Fatal("request queue never drained")
	}
	return id
}

func (r *rig) await(n int) map[uint64]MetaResp {
	got := map[uint64]MetaResp{}
	if !r.k.RunUntil(func() bool {
		for {
			resp, ok := r.c.RespQ.Pop()
			if !ok {
				break
			}
			got[resp.ID] = resp
		}
		return len(got) >= n
	}, 200000) {
		r.t.Fatalf("timed out: %d/%d responses (ctrl stats %+v)", len(got), n, r.c.Stats())
	}
	return got
}

func defaultTagCfg() metatag.Config {
	return metatag.Config{Sets: 16, Ways: 4, KeyWords: 1}
}

func defaultDataCfg() dataram.Config {
	return dataram.Config{Sectors: 64, WordsPerSector: 4}
}

func TestMissWalkThenHit(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(32)

	id := r.issue(MetaLoad, 5, 0)
	resp := r.await(1)[id]
	if resp.Status != program.StatusOK || resp.Value != 57 {
		t.Fatalf("miss response: %+v", resp)
	}
	st := r.c.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.FillsIssued != 1 {
		t.Fatalf("after miss: %+v", st)
	}
	missLat := st.L2USum

	id2 := r.issue(MetaLoad, 5, 0)
	resp2 := r.await(1)[id2]
	if resp2.Status != program.StatusOK || resp2.Value != 57 {
		t.Fatalf("hit response: %+v", resp2)
	}
	st = r.c.Stats()
	if st.Hits != 1 || st.FillsIssued != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	hitLat := st.L2USum - missLat
	if hitLat >= missLat {
		t.Fatalf("hit latency %d not faster than miss %d", hitLat, missLat)
	}
	// Dedicated hit port: ~HitLatency plus queue registration.
	if hitLat > uint64(r.c.Cfg.HitLatency)+4 {
		t.Fatalf("hit load-to-use %d too slow", hitLat)
	}
}

func TestNotFound(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	id := r.issue(MetaLoad, 100, 0)
	resp := r.await(1)[id]
	if resp.Status != program.StatusNotFound {
		t.Fatalf("resp: %+v", resp)
	}
	if r.c.Tags.Live() != 0 {
		t.Fatalf("not-found left %d live entries", r.c.Tags.Live())
	}
	if r.c.Stats().NotFound != 1 {
		t.Fatalf("stats: %+v", r.c.Stats())
	}
}

func TestWaiterMergingSharesOneWalk(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(32)
	idA := r.issue(MetaLoad, 9, 0)
	idB := r.issue(MetaLoad, 9, 0) // should merge behind A's walker
	got := r.await(2)
	if got[idA].Value != 97 || got[idB].Value != 97 {
		t.Fatalf("responses: %+v", got)
	}
	st := r.c.Stats()
	if st.FillsIssued != 1 {
		t.Fatalf("merged access refetched: fills=%d", st.FillsIssued)
	}
	if st.MergedWaiters != 1 {
		t.Fatalf("merged waiters=%d", st.MergedWaiters)
	}
}

func TestParallelWalkersOverlapFills(t *testing.T) {
	r := newRig(t, Config{NumActive: 8}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(64)
	ids := make([]uint64, 8)
	for i := range ids {
		ids[i] = r.issue(MetaLoad, uint64(i*7%32), 0)
	}
	got := r.await(8)
	for i, id := range ids {
		want := uint64(10*(i*7%32) + 7)
		if got[id].Value != want {
			t.Fatalf("key %d: got %d want %d", i*7%32, got[id].Value, want)
		}
	}
	if r.c.Stats().MaxFillsInFlight < 2 {
		t.Fatalf("no memory-level parallelism: max fills in flight %d", r.c.Stats().MaxFillsInFlight)
	}
}

func TestEvictionAndRefetch(t *testing.T) {
	tagCfg := metatag.Config{Sets: 1, Ways: 2, KeyWords: 1}
	r := newRig(t, Config{}, arrayWalkSpec(), tagCfg, defaultDataCfg())
	r.fillArray(16)
	for _, k := range []uint64{1, 2, 3} { // 3 keys, 2 ways: key 1 evicted
		id := r.issue(MetaLoad, k, 0)
		r.await(1)
		_ = id
	}
	if live := r.c.Tags.Live(); live != 2 {
		t.Fatalf("live entries %d, want 2", live)
	}
	fillsBefore := r.c.Stats().FillsIssued
	id := r.issue(MetaLoad, 1, 0)
	resp := r.await(1)[id]
	if resp.Value != 17 {
		t.Fatalf("refetched value %d", resp.Value)
	}
	if r.c.Stats().FillsIssued != fillsBefore+1 {
		t.Fatal("evicted key did not re-walk")
	}
	// Sector conservation: 2 live single-sector entries.
	if free := r.c.Data.FreeSectors(); free != defaultDataCfg().Sectors-2 {
		t.Fatalf("free sectors %d", free)
	}
}

func TestStoreMergeCoalesces(t *testing.T) {
	r := newRig(t, Config{}, storeSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	idA := r.issue(MetaStoreMerge, 3, 5)
	r.await(1)
	_ = idA
	idB := r.issue(MetaStoreMerge, 3, 11) // hit-path merge
	r.await(1)
	_ = idB
	idC := r.issue(MetaLoad, 3, 0)
	resp := r.await(1)[idC]
	if resp.Value != 16 {
		t.Fatalf("merged value %d, want 16", resp.Value)
	}
	st := r.c.Stats()
	if st.FillsIssued != 0 {
		t.Fatalf("store-merge touched DRAM: %+v", st)
	}
	e := r.c.Tags.Lookup(metatag.Key{3, 0})
	if e == nil || !e.Dirty {
		t.Fatal("merged entry not marked dirty")
	}
}

func TestAllocConflictReplays(t *testing.T) {
	// One set, one way: the second key's allocm must fail while the first
	// walker is transient, then replay to completion.
	tagCfg := metatag.Config{Sets: 1, Ways: 1, KeyWords: 1}
	r := newRig(t, Config{NumActive: 4}, arrayWalkSpec(), tagCfg, defaultDataCfg())
	r.fillArray(16)
	idA := r.issue(MetaLoad, 1, 0)
	idB := r.issue(MetaLoad, 2, 0)
	got := r.await(2)
	if got[idA].Value != 17 || got[idB].Value != 27 {
		t.Fatalf("responses: %+v", got)
	}
	if r.c.Stats().AllocRetries == 0 {
		t.Fatal("expected an allocm retry with 1-way tags")
	}
}

func TestHardwiredModeSameResultsNoMicrocodeEnergy(t *testing.T) {
	run := func(hardwired bool) (uint64, uint64, sim.Cycle) {
		r := newRig(t, Config{Hardwired: hardwired}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
		r.fillArray(32)
		var sum uint64
		for i := 0; i < 16; i++ {
			id := r.issue(MetaLoad, uint64(i%8), 0)
			sum += r.await(1)[id].Value
		}
		return sum, r.meter.RtnBytes, r.k.Cycle()
	}
	sumP, rtnP, cycP := run(false)
	sumH, rtnH, cycH := run(true)
	if sumP != sumH {
		t.Fatalf("functional divergence: %d vs %d", sumP, sumH)
	}
	if rtnH != 0 || rtnP == 0 {
		t.Fatalf("routine RAM bytes: programmable=%d hardwired=%d", rtnP, rtnH)
	}
	if cycH > cycP {
		t.Fatalf("hardwired (%d cyc) slower than programmable (%d cyc)", cycH, cycP)
	}
}

func TestThreadModeOccupancyExceedsCoroutine(t *testing.T) {
	run := func(mode ExecMode) (occ uint64, cycles sim.Cycle) {
		r := newRig(t, Config{Mode: mode, NumActive: 8, NumExe: 2},
			arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
		r.fillArray(64)
		pending := 0
		for i := 0; i < 32; i++ {
			r.issue(MetaLoad, uint64(i), 0)
			pending++
		}
		r.await(pending)
		return r.c.Stats().OccupancyByteCycles, r.k.Cycle()
	}
	occC, cycC := run(ModeCoroutine)
	occT, cycT := run(ModeThread)
	if occT < occC*20 {
		t.Fatalf("thread occupancy %d not ≫ coroutine %d", occT, occC)
	}
	if cycT < cycC {
		t.Fatalf("thread mode (%d cyc) should not beat coroutines (%d cyc)", cycT, cycC)
	}
}

func TestControllerIdleAfterDrain(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(32)
	for i := 0; i < 8; i++ {
		r.issue(MetaLoad, uint64(i), 0)
	}
	r.await(8)
	r.k.Run(200) // let stragglers settle
	if !r.c.Idle() {
		t.Fatal("controller not idle after draining all work")
	}
	if !r.d.Idle() {
		t.Fatal("dram not idle")
	}
}

// multiFillSpec caches an 8-word element (2 sectors × 4 words) fetched
// with two 4-word fills, placing each arriving block by its address —
// the SpArch row-refill pattern.
func multiFillSpec() program.Spec {
	return program.Spec{
		Name:   "multifill",
		States: []string{"Filling"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 6      ; key * 64 bytes
				add r5, r4, r5
				allocr r14         ; survives yields: element base address
				allocr r7          ; survives yields: data-RAM base
				allocr r10         ; survives yields: fills outstanding
				mov r14, r5
				allocdi r7, 2
				li r8, 2
				update r7, r8
				li r10, 2
				enqfilli r5, 4
				addi r5, r5, 32
				enqfilli r5, 4
				state Filling
			`},
			{State: "Filling", Event: "Fill", Asm: `
				peek r11, -1       ; block address
				not r13, r14
				inc r13
				add r13, r13, r11  ; addr - base
				shr r13, r13, 3
				add r13, r13, r7   ; destination word index
				peek r12, 0
				writed r13, r12
				inc r13
				peek r12, 1
				writed r13, r12
				inc r13
				peek r12, 2
				writed r13, r12
				inc r13
				peek r12, 3
				writed r13, r12
				dec r10
				bnz r10, more
				readd r6, r7
				enqresp r6, OK
				halt Valid
			more:
				state Filling
			`},
		},
	}
}

func TestMultiSectorFillAndBlockHit(t *testing.T) {
	r := newRig(t, Config{}, multiFillSpec(), defaultTagCfg(), defaultDataCfg())
	// Elements of 8 words at base + key*64.
	base := r.img.AllocWords(8 * 8)
	for i := 0; i < 64; i++ {
		r.img.W64(base+uint64(i)*8, uint64(1000+i))
	}
	r.c.SetEnv(0, base)

	id := r.issue(MetaLoad, 2, 0)
	resp := r.await(1)[id]
	if resp.Status != program.StatusOK || resp.Value != 1016 {
		t.Fatalf("miss resp: %+v", resp)
	}
	// Block hit: full 8-word element streamed back.
	id2 := r.issue(MetaLoad, 2, 0)
	resp2 := r.await(1)[id2]
	if resp2.Words != 8 || len(resp2.Data) != 8 {
		t.Fatalf("hit words=%d data=%d", resp2.Words, len(resp2.Data))
	}
	for i, v := range resp2.Data {
		if v != uint64(1016+i) {
			t.Fatalf("hit data[%d]=%d want %d", i, v, 1016+i)
		}
	}
	if r.c.Stats().FillsIssued != 2 {
		t.Fatalf("fills issued %d want 2", r.c.Stats().FillsIssued)
	}
}

func TestEnergyCountersPopulated(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(32)
	for i := 0; i < 8; i++ {
		id := r.issue(MetaLoad, uint64(i%4), 0)
		r.await(1)
		_ = id
	}
	m := r.meter
	if m.TagBytes == 0 || m.DataBytes == 0 || m.RtnBytes == 0 ||
		m.RegBitsWritten == 0 || m.AddOps == 0 || m.QueueBytes == 0 {
		t.Fatalf("counters not populated: %+v", m)
	}
	b := m.Energy(energy.DefaultParams())
	if b.OnChip() <= 0 {
		t.Fatal("no on-chip energy accumulated")
	}
}

// dropOnce drops the first read response for each listed address.
type dropOnce struct{ addrs map[uint64]bool }

func (f *dropOnce) ReadResponse(r dram.Response, c sim.Cycle) (bool, int) {
	if f.addrs[r.Addr] {
		delete(f.addrs, r.Addr)
		return true, 0
	}
	return false, 0
}

func TestFillTimeoutRetriesDroppedFill(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1, FillTimeout: 200}
	r := newRig(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	base := r.fillArray(8)
	r.d.Faults = &dropOnce{addrs: map[uint64]bool{base + 3*8: true}}
	id := r.issue(MetaLoad, 3, 0)
	got := r.await(1)
	if got[id].Status != program.StatusOK || got[id].Value != 37 {
		t.Fatalf("resp after retry: %+v", got[id])
	}
	st := r.c.Stats()
	if st.FillRetries == 0 {
		t.Fatal("dropped fill recovered without a recorded retry")
	}
	if err := r.c.CheckInvariants(r.k.Cycle()); err != nil {
		t.Fatalf("invariants after retry: %v", err)
	}
}

// A delayed original plus a reissued retry produce a duplicate response;
// the second arrival must be discarded as spurious, not crash the walker.
func TestDuplicateFillDiscardedAsSpurious(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1, FillTimeout: 60}
	r := newRig(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	base := r.fillArray(8)
	// Delay the first response past the (short) timeout so the retry is
	// in flight when the original finally lands.
	delayed := false
	r.d.Faults = faultFunc(func(resp dram.Response, c sim.Cycle) (bool, int) {
		if resp.Addr == base+2*8 && !delayed {
			delayed = true
			return false, 300
		}
		return false, 0
	})
	id := r.issue(MetaLoad, 2, 0)
	got := r.await(1)
	if got[id].Status != program.StatusOK || got[id].Value != 27 {
		t.Fatalf("resp: %+v", got[id])
	}
	// Let the delayed duplicate arrive and be discarded.
	r.k.RunUntil(func() bool { return r.d.Idle() }, 10000)
	r.k.Run(5)
	st := r.c.Stats()
	if st.SpuriousFills == 0 {
		t.Fatal("duplicate response was not discarded as spurious")
	}
	if err := r.c.CheckInvariants(r.k.Cycle()); err != nil {
		t.Fatalf("invariants after duplicate: %v", err)
	}
}

type faultFunc func(r dram.Response, c sim.Cycle) (bool, int)

func (f faultFunc) ReadResponse(r dram.Response, c sim.Cycle) (bool, int) { return f(r, c) }

func TestParityScrubRefetchesCorruptedEntry(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1, ParityCheck: true}
	r := newRig(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	id := r.issue(MetaLoad, 5, 0)
	if got := r.await(1); got[id].Value != 57 {
		t.Fatalf("first walk: %+v", got[id])
	}
	// Corrupt the settled entry's stored key, then probe the same key:
	// the frontend must scrub the bad entry and re-walk from DRAM.
	e := r.c.Tags.Probe(metatag.Key{5, 0})
	if e == nil {
		t.Fatal("entry not cached after walk")
	}
	r.c.Tags.CorruptKeyBit(e, 0, 1)
	id2 := r.issue(MetaLoad, 5, 0)
	got := r.await(1)
	if got[id2].Status != program.StatusOK || got[id2].Value != 57 {
		t.Fatalf("post-corruption walk: %+v", got[id2])
	}
	st := r.c.Stats()
	if st.ParityScrubs != 1 {
		t.Fatalf("ParityScrubs=%d, want 1", st.ParityScrubs)
	}
	if st.Hits != 0 {
		t.Fatalf("corrupted entry served %d hits", st.Hits)
	}
	if err := r.c.CheckInvariants(r.k.Cycle()); err != nil {
		t.Fatalf("invariants after scrub: %v", err)
	}
}

func TestControllerDiagnoseListsActiveWalkers(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1}
	r := newRig(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	r.issue(MetaLoad, 1, 0)
	r.k.Run(3) // mid-walk
	if r.c.DiagnoseName() != "ctrl" {
		t.Fatalf("DiagnoseName=%q", r.c.DiagnoseName())
	}
	lines := r.c.Diagnose()
	found := false
	for _, l := range lines {
		if strings.Contains(l, "walker") && strings.Contains(l, "key=0x1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diagnose lacks the in-flight walker: %v", lines)
	}
	r.await(1)
}

func TestFaultQueuesCoverControllerBoundaries(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1}
	r := newRig(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	names := map[string]bool{}
	for _, q := range r.c.FaultQueues() {
		names[q.Name()] = true
	}
	for _, want := range []string{"xc.req", "xc.resp", "xc.evq"} {
		if !names[want] {
			t.Fatalf("FaultQueues misses %s: %v", want, names)
		}
	}
}
