package ctrl

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/isa"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

type stepStatus uint8

const (
	stepAgain stepStatus = iota // action retired, routine continues
	stepStall                   // structural hazard (full queue); retry next cycle
	stepDone                    // routine ended (terminal action or walker freed)
)

// step executes the single action at r.pc. The executor is in-order and
// non-blocking: the only way a routine waits is a structural stall on a
// full queue. Structural faults — an out-of-range register, a runaway
// routine, a data-RAM access outside the array — raise a typed Trap that
// quiesces the walker instead of panicking; the static verifier rejects
// most of them at load, but register-indirect values and loops are only
// decidable here.
func (c *Controller) step(cy sim.Cycle, r *run) stepStatus {
	w := &c.walkers[r.walker]
	if r.pc < 0 || int(r.pc) >= len(c.Prog.Code) {
		return c.trapStep(cy, r, w, TrapIllegalOp,
			fmt.Sprintf("pc %d outside the %d-word microcode RAM", r.pc, len(c.Prog.Code)))
	}
	in := c.Prog.Code[r.pc]
	r.steps++
	if r.steps > c.Cfg.MaxRoutineSteps {
		return c.trapStep(cy, r, w, TrapRunawayRoutine,
			fmt.Sprintf("routine at %d exceeded %d steps", r.start, c.Cfg.MaxRoutineSteps))
	}
	if bad, which := regOOB(in, len(w.regs)); bad {
		return c.trapStep(cy, r, w, TrapRegOOB,
			fmt.Sprintf("%s outside the %d-entry X-register file", which, len(w.regs)))
	}

	// Microcode fetch energy (hardwired baselines have no routine RAM).
	if c.Meter != nil && !c.Cfg.Hardwired {
		c.Meter.RtnBytes += isa.WordBytes
	}
	c.stats.Actions++
	c.cycActions++

	// Register operands are bounds-checked once per action above (regOOB),
	// so the accessors index directly.
	reg := func(i uint8) uint64 { return w.regs[i] }
	setReg := func(i uint8, v uint64) {
		w.regs[i] = v
		w.liveMask |= 1 << i
		if c.Meter != nil {
			c.Meter.RegBitsWritten += 64
		}
	}
	branch := func(taken bool) {
		if c.Meter != nil {
			c.Meter.BitOps++
		}
		if taken {
			r.pc = r.start + in.Imm
		} else {
			r.pc++
		}
	}

	switch in.Op {
	// ---- AGEN ----
	case isa.OpAdd:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+reg(in.B))
	case isa.OpAddi:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+uint64(int64(in.Imm)))
	case isa.OpInc:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)+1)
	case isa.OpDec:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)-1)
	case isa.OpAnd:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)&reg(in.B))
	case isa.OpOr:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)|reg(in.B))
	case isa.OpXor:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)^reg(in.B))
	case isa.OpNot:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, ^reg(in.A))
	case isa.OpShl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)<<uint(in.Imm&63))
	case isa.OpShr, isa.OpSrl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)>>uint(in.Imm&63))
	case isa.OpSra:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, uint64(int64(reg(in.A))>>uint(in.Imm&63)))
	case isa.OpMul:
		c.chargeALU(0, 1, 0, 0)
		setReg(in.Dst, reg(in.A)*reg(in.B))
	case isa.OpLi:
		setReg(in.Dst, uint64(int64(in.Imm)))
	case isa.OpMov:
		setReg(in.Dst, reg(in.A))
	case isa.OpLde:
		if in.Imm < 0 || int(in.Imm) >= len(c.env) {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("environment operand %d out of range [0,%d)", in.Imm, len(c.env)))
		}
		setReg(in.Dst, c.env[in.Imm])
	case isa.OpAllocR:
		// allocR marks a register as walker state that must survive
		// yields (§4.2: "routines allocate temporary X-register to store
		// the access key and the address of the DRAM refill being waited
		// on"). Unmarked registers are pipeline temporaries and are
		// cleared when the routine yields.
		w.persist |= 1 << in.Dst
		w.liveMask |= 1 << in.Dst

	// ---- Queues ----
	case isa.OpEnqFill, isa.OpEnqFillI:
		words := int(uint64(in.Imm))
		if in.Op == isa.OpEnqFill {
			words = int(reg(in.A))
		}
		if words <= 0 || words > c.Cfg.MaxFillWords {
			return c.trapStep(cy, r, w, TrapFillOverflow,
				fmt.Sprintf("fill of %d words (MaxFillWords=%d)", words, c.Cfg.MaxFillWords))
		}
		if !c.MemReq.CanPush() {
			return stepStall
		}
		// The address bus is word-granular: low bits a routine computed into
		// the address register are dropped, exactly as hardware would.
		c.MemReq.MustPush(dram.Request{ID: uint64(w.id), Addr: reg(in.Dst) &^ 7, Words: words})
		c.outstandingFills++
		w.fills++
		c.stats.FillsIssued++
		if c.Cfg.FillTimeout > 0 {
			c.fillTable = append(c.fillTable, fillRec{walker: w.id, addr: reg(in.Dst) &^ 7, words: words, issued: cy})
		}
		if c.outstandingFills > c.stats.MaxFillsInFlight {
			c.stats.MaxFillsInFlight = c.outstandingFills
		}
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
			c.Meter.DRAMAccesses++
			c.Meter.DRAMBytes += uint64(words) * 8
		}
	case isa.OpEnqWb:
		words := int(in.Imm)
		if words <= 0 || words > c.Cfg.MaxFillWords {
			return c.trapStep(cy, r, w, TrapFillOverflow,
				fmt.Sprintf("writeback of %d words (MaxFillWords=%d)", words, c.Cfg.MaxFillWords))
		}
		base := int32(reg(in.A))
		if base < 0 || int(base)+words > c.Data.Words() {
			return c.trapStep(cy, r, w, TrapDataOOB,
				fmt.Sprintf("writeback source [%d,%d) outside the %d-word data RAM", base, int(base)+words, c.Data.Words()))
		}
		if !c.MemReq.CanPush() {
			return stepStall
		}
		data := make([]uint64, words)
		for i := range data {
			data[i] = c.Data.Read(base + int32(i))
		}
		c.MemReq.MustPush(dram.Request{ID: wbIDFlag | uint64(w.id), Addr: reg(in.Dst) &^ 7,
			Words: words, Write: true, Data: data})
		c.stats.WritebacksIssued++
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
			c.Meter.DRAMAccesses++
			c.Meter.DRAMBytes += uint64(words) * 8
		}
	case isa.OpEnqResp:
		if !c.RespQ.CanPush() {
			return stepStall
		}
		resp := MetaResp{ID: w.origin.ID, Status: int(in.Imm), Value: reg(in.Dst)}
		if resp.Status == program.StatusOK && w.entry != nil {
			resp.Words = int(w.entry.SectorCount) * c.Data.Cfg.WordsPerSector
			// The refilled sectors stream to the datapath through the
			// data port, exactly like a hit return.
			if resp.Words > 0 {
				keep := resp.Words
				if keep > c.Cfg.RespDataWords {
					keep = c.Cfg.RespDataWords
				}
				resp.Data = c.Data.ReadRun(w.entry.SectorBase, keep)
				if c.Meter != nil && resp.Words > keep {
					c.Meter.DataBytes += uint64(resp.Words-keep) * 8
				}
			}
		}
		if resp.Status == program.StatusNotFound {
			c.stats.NotFound++
		}
		c.RespQ.MustPush(resp)
		w.responded = true
		c.stats.Responses++
		c.noteLatency(w.origin, cy, false)
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
		}
	case isa.OpEnqEv:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumEvents() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("event operand %d out of range [0,%d)", in.Imm, c.Prog.NumEvents()))
		}
		if !c.evq.CanPush() {
			return stepStall
		}
		c.evq.MustPush(message{event: int(in.Imm), addr: uint64(w.id)})
		if c.Meter != nil {
			c.Meter.QueueBytes += 8
		}
	case isa.OpPeek:
		switch {
		case in.Imm == -1:
			setReg(in.Dst, w.msg.addr)
		case in.Imm == -2:
			setReg(in.Dst, uint64(len(w.msg.data)))
		case in.Imm < 0 || int(in.Imm) >= len(w.msg.data):
			// A negative peek other than the -1/-2 pseudo-slots used to
			// fall through to a raw negative slice index; both directions
			// now trap.
			return c.trapStep(cy, r, w, TrapPeekOOB,
				fmt.Sprintf("peek %d beyond %d-word message", in.Imm, len(w.msg.data)))
		default:
			setReg(in.Dst, w.msg.data[in.Imm])
		}
	case isa.OpDeq:
		// The front-end consumed the message at wake; explicit deq is an
		// accounting no-op retained for spec fidelity.

	// ---- Meta-tags ----
	case isa.OpAllocM:
		if w.entry != nil {
			// A second allocm would double-allocate the key in the
			// meta-tag array (which asserts on duplicates).
			return c.trapStep(cy, r, w, TrapAllocOverflow, "duplicate allocm: walker already holds an entry")
		}
		if !c.MemReq.CanPush() {
			return stepStall // a dirty victim may need a writeback slot
		}
		entry, ev, ok := c.Tags.Alloc(w.key, w.state, w.id)
		if !ok {
			// Every way transient: hand the request back and retire the
			// walker; the replay path re-probes once a conflicting walker
			// settles.
			c.stats.AllocRetries++
			c.trace(TraceEvent{Kind: TraceAllocRetry, Key: w.key})
			c.replay = append(c.replay, w.origin)
			c.finish(w, false)
			return stepDone
		}
		w.entry = entry
		c.trace(TraceEvent{Kind: TraceAlloc, Key: w.key, State: w.state})
		c.reclaim(ev)
	case isa.OpDeallocM:
		if w.entry != nil {
			if w.entry.SectorCount > 0 {
				c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			}
			c.Tags.Dealloc(w.entry)
			w.entry = nil
			c.trace(TraceEvent{Kind: TraceDealloc, Key: w.key})
		}
	case isa.OpUpdate:
		if w.entry == nil {
			return c.trapStep(cy, r, w, TrapMisalignedUpdate, "update with no meta-tag entry (missing allocm)")
		}
		wlen := int32(c.Data.Cfg.WordsPerSector)
		base := int32(reg(in.Dst))
		if base < 0 || base%wlen != 0 {
			return c.trapStep(cy, r, w, TrapMisalignedUpdate,
				fmt.Sprintf("update base %d not sector aligned (wlen=%d)", base, wlen))
		}
		count := int32(reg(in.A))
		if count < 0 || int(base/wlen)+int(count) > c.Data.Cfg.Sectors {
			return c.trapStep(cy, r, w, TrapDataOOB,
				fmt.Sprintf("update sector run [%d,%d) outside the %d-sector data RAM",
					base/wlen, int(base/wlen)+int(count), c.Data.Cfg.Sectors))
		}
		w.entry.SectorBase = base / wlen
		w.entry.SectorCount = count
		c.Tags.Update()
	case isa.OpState:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumStates() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("state operand %d out of range [0,%d)", in.Imm, c.Prog.NumStates()))
		}
		c.setState(w, int(in.Imm))
		w.running = false
		// Yield: only allocr-marked registers survive; scratch registers
		// are freed (and cleared, so specs cannot silently rely on them).
		for i := range w.regs {
			if w.persist&(1<<uint(i)) == 0 {
				w.regs[i] = 0
			}
		}
		w.liveMask = w.persist
		return stepDone
	case isa.OpHalt:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumStates() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("state operand %d out of range [0,%d)", in.Imm, c.Prog.NumStates()))
		}
		c.setState(w, int(in.Imm))
		if w.entry != nil {
			w.entry.Walker = int32(-1)
			if w.isStore {
				w.entry.Dirty = true
			}
		}
		c.trace(TraceEvent{Kind: TraceSettle, Key: w.key, Store: w.isStore, HasEntry: w.entry != nil})
		c.finish(w, false)
		return stepDone
	case isa.OpAbort:
		if w.entry != nil {
			if w.entry.SectorCount > 0 {
				c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			}
			c.Tags.Dealloc(w.entry)
			w.entry = nil
		}
		c.trace(TraceEvent{Kind: TraceAbort, Key: w.key})
		c.finish(w, true)
		return stepDone

	// ---- Control ----
	case isa.OpBmiss:
		branch(w.entry == nil || w.entry.State != program.StateValid)
		return stepAgain
	case isa.OpBhit:
		branch(w.entry != nil && w.entry.State == program.StateValid)
		return stepAgain
	case isa.OpBeq:
		branch(reg(in.Dst) == reg(in.A))
		return stepAgain
	case isa.OpBnz:
		branch(reg(in.Dst) != 0)
		return stepAgain
	case isa.OpBlt:
		branch(int64(reg(in.Dst)) < int64(reg(in.A)))
		return stepAgain
	case isa.OpBge:
		branch(int64(reg(in.Dst)) >= int64(reg(in.A)))
		return stepAgain
	case isa.OpBle:
		branch(int64(reg(in.Dst)) <= int64(reg(in.A)))
		return stepAgain
	case isa.OpJmp:
		branch(true)
		return stepAgain

	// ---- Data RAM ----
	case isa.OpAllocD, isa.OpAllocDI:
		n := int(in.Imm)
		if in.Op == isa.OpAllocD {
			n = int(int64(reg(in.A)))
		}
		if n <= 0 || n > c.Data.Cfg.Sectors {
			// An over-capacity request would replay forever (no eviction
			// can ever make room), so it traps rather than livelocks.
			return c.trapStep(cy, r, w, TrapAllocOverflow,
				fmt.Sprintf("allocation of %d sectors (data RAM holds %d)", n, c.Data.Cfg.Sectors))
		}
		base, ok := c.Data.Alloc(n)
		if !ok {
			if !c.MemReq.CanPush() {
				return stepStall
			}
			if !c.makeRoom(n) {
				// Capacity exhausted by transient entries: retire and
				// replay, as with allocm conflicts.
				c.stats.AllocRetries++
				c.trace(TraceEvent{Kind: TraceAllocRetry, Key: w.key})
				if w.entry != nil {
					c.Tags.Dealloc(w.entry)
					w.entry = nil
				}
				c.replay = append(c.replay, w.origin)
				c.finish(w, false)
				return stepDone
			}
			return stepStall // retry the allocation next cycle
		}
		setReg(in.Dst, uint64(c.Data.SectorWordBase(base)))
	case isa.OpDeallocD:
		if w.entry != nil && w.entry.SectorCount > 0 {
			c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			w.entry.SectorBase, w.entry.SectorCount = 0, 0
		}
	case isa.OpReadD:
		idx := int32(reg(in.A))
		if idx < 0 || int(idx) >= c.Data.Words() {
			return c.trapStep(cy, r, w, TrapDataOOB,
				fmt.Sprintf("read of word %d outside the %d-word data RAM", idx, c.Data.Words()))
		}
		setReg(in.Dst, c.Data.Read(idx))
	case isa.OpWriteD:
		idx := int32(reg(in.Dst))
		if idx < 0 || int(idx) >= c.Data.Words() {
			return c.trapStep(cy, r, w, TrapDataOOB,
				fmt.Sprintf("write of word %d outside the %d-word data RAM", idx, c.Data.Words()))
		}
		c.Data.Write(idx, reg(in.A))

	default:
		return c.trapStep(cy, r, w, TrapIllegalOp, fmt.Sprintf("undefined or unimplemented op %s", in.Op.Name()))
	}
	r.pc++
	return stepAgain
}

// regOOB reports whether any register operand the op's shape actually
// uses indexes beyond the nx-entry X-register file. Unused fields carry
// don't-care bits from decode and are ignored.
func regOOB(in isa.Instr, nx int) (bool, string) {
	chk := func(name string, r uint8) (bool, string) {
		if int(r) >= nx {
			return true, fmt.Sprintf("%s=r%d", name, r)
		}
		return false, ""
	}
	switch in.Op.OpShape() {
	case isa.ShapeR, isa.ShapeRI, isa.ShapeRL:
		return chk("dst", in.Dst)
	case isa.ShapeRR, isa.ShapeRRI, isa.ShapeRRL:
		if bad, which := chk("dst", in.Dst); bad {
			return bad, which
		}
		return chk("a", in.A)
	case isa.ShapeRRR:
		if bad, which := chk("dst", in.Dst); bad {
			return bad, which
		}
		if bad, which := chk("a", in.A); bad {
			return bad, which
		}
		return chk("b", in.B)
	}
	return false, ""
}

func (c *Controller) chargeALU(add, mul, bit, shift uint64) {
	if c.Meter == nil {
		return
	}
	c.Meter.AddOps += add
	c.Meter.MulOps += mul
	c.Meter.BitOps += bit
	c.Meter.ShiftOps += shift
}

// reclaim releases an evicted entry's sectors and writes back dirty data.
// The caller has already guaranteed MemReq space.
func (c *Controller) reclaim(ev *metatag.Evicted) {
	if ev == nil {
		return
	}
	if ev.SectorCount > 0 {
		if ev.Dirty {
			words := int(ev.SectorCount) * c.Data.Cfg.WordsPerSector
			base := c.Data.SectorWordBase(ev.SectorBase)
			data := make([]uint64, words)
			for i := range data {
				data[i] = c.Data.Read(base + int32(i))
			}
			// Dirty meta data spills to a per-cache victim region keyed by
			// tag hash; DSAs that need spilled data back re-walk for it.
			addr := c.spillAddr(ev.Key)
			c.MemReq.MustPush(dram.Request{ID: wbIDFlag, Addr: addr, Words: words, Write: true, Data: data})
			c.stats.WritebacksIssued++
			if c.Meter != nil {
				c.Meter.DRAMAccesses++
				c.Meter.DRAMBytes += uint64(words) * 8
			}
		}
		c.Data.Free(ev.SectorBase, ev.SectorCount)
	}
}

// makeRoom evicts stable entries until n contiguous sectors could
// plausibly be freed. It returns false when nothing is evictable. Each
// eviction may need a writeback slot, so the memory queue is re-checked
// per victim — the caller only guaranteed space for the first.
func (c *Controller) makeRoom(n int) bool {
	evicted := false
	for i := 0; i < 4; i++ {
		if !c.MemReq.CanPush() {
			return evicted
		}
		ev, ok := c.Tags.EvictLRUStable()
		if !ok {
			return evicted
		}
		c.reclaim(ev)
		evicted = true
		if c.Data.FreeSectors() >= n*2 {
			break
		}
	}
	return true
}

func (c *Controller) spillAddr(k metatag.Key) uint64 {
	const spillRegion = uint64(0x4000_0000_0000)
	slot := k.Mix() % (1 << 20)
	return spillRegion + slot*256
}
