package ctrl

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/isa"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

type stepStatus uint8

const (
	stepAgain stepStatus = iota // action retired, routine continues
	stepStall                   // structural hazard (full queue); retry next cycle
	stepDone                    // routine ended (terminal action or walker freed)
)

// step executes the single action at r.pc through the reference
// interpreter: fetch, decode, bounds-check, dispatch — every cycle. The
// executor is in-order and non-blocking: the only way a routine waits is
// a structural stall on a full queue. Structural faults — an out-of-range
// register, a runaway routine, a data-RAM access outside the array —
// raise a typed Trap that quiesces the walker instead of panicking; the
// static verifier rejects most of them at load, but register-indirect
// values and loops are only decidable here.
//
// This is the semantic reference the pre-decoded path (exec_fast.go) is
// differentially tested against; keep the two in lockstep.
func (c *Controller) step(cy sim.Cycle, r *run) stepStatus {
	w := &c.walkers[r.walker]
	if r.pc < 0 || int(r.pc) >= len(c.Prog.Code) {
		return c.trapStep(cy, r, w, TrapIllegalOp,
			fmt.Sprintf("pc %d outside the %d-word microcode RAM", r.pc, len(c.Prog.Code)))
	}
	in := c.Prog.Code[r.pc]
	r.steps++
	if r.steps > c.Cfg.MaxRoutineSteps {
		return c.trapStep(cy, r, w, TrapRunawayRoutine,
			fmt.Sprintf("routine at %d exceeded %d steps", r.start, c.Cfg.MaxRoutineSteps))
	}
	if bad, which := regOOB(in, len(w.regs)); bad {
		return c.trapStep(cy, r, w, TrapRegOOB,
			fmt.Sprintf("%s outside the %d-entry X-register file", which, len(w.regs)))
	}
	c.chargeAction()
	return c.exec1(cy, r, w, in)
}

// chargeAction accounts one issued action: microcode fetch energy
// (hardwired baselines have no routine RAM) and the action counters. A
// stalled action is re-charged on every retry cycle, exactly as the
// pipeline slot it occupies is.
func (c *Controller) chargeAction() {
	if c.Meter != nil && !c.Cfg.Hardwired {
		c.Meter.RtnBytes += isa.WordBytes
	}
	c.stats.Actions++
	c.cycActions++
}

// exec1 dispatches one already-fetched, bounds-checked, charged action.
// Both executors funnel their residual dynamic checks through the exec*
// helpers below so trap kinds, details and ordering cannot diverge.
func (c *Controller) exec1(cy sim.Cycle, r *run, w *walker, in isa.Instr) stepStatus {
	// Register operands are bounds-checked once per action (regOOB or the
	// load-time verifier), so the accessors index directly.
	reg := func(i uint8) uint64 { return w.regs[i] }
	setReg := func(i uint8, v uint64) { c.fsetReg(w, i, v) }
	branch := func(taken bool) { c.fbranch(r, taken, in.Imm) }

	switch in.Op {
	// ---- AGEN ----
	case isa.OpAdd:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+reg(in.B))
	case isa.OpAddi:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+uint64(int64(in.Imm)))
	case isa.OpInc:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)+1)
	case isa.OpDec:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)-1)
	case isa.OpAnd:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)&reg(in.B))
	case isa.OpOr:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)|reg(in.B))
	case isa.OpXor:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)^reg(in.B))
	case isa.OpNot:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, ^reg(in.A))
	case isa.OpShl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)<<uint(in.Imm&63))
	case isa.OpShr, isa.OpSrl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)>>uint(in.Imm&63))
	case isa.OpSra:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, uint64(int64(reg(in.A))>>uint(in.Imm&63)))
	case isa.OpMul:
		c.chargeALU(0, 1, 0, 0)
		setReg(in.Dst, reg(in.A)*reg(in.B))
	case isa.OpLi:
		setReg(in.Dst, uint64(int64(in.Imm)))
	case isa.OpMov:
		setReg(in.Dst, reg(in.A))
	case isa.OpLde:
		if in.Imm < 0 || int(in.Imm) >= len(c.env) {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("environment operand %d out of range [0,%d)", in.Imm, len(c.env)))
		}
		setReg(in.Dst, c.env[in.Imm])
	case isa.OpAllocR:
		// allocR marks a register as walker state that must survive
		// yields (§4.2: "routines allocate temporary X-register to store
		// the access key and the address of the DRAM refill being waited
		// on"). Unmarked registers are pipeline temporaries and are
		// cleared when the routine yields.
		w.persist |= 1 << in.Dst
		w.liveMask |= 1 << in.Dst

	// ---- Queues ----
	case isa.OpEnqFill, isa.OpEnqFillI:
		words := int(uint64(in.Imm))
		if in.Op == isa.OpEnqFill {
			words = int(reg(in.A))
		}
		return c.execFill(cy, r, w, reg(in.Dst), words)
	case isa.OpEnqWb:
		return c.execWb(cy, r, w, reg(in.Dst), int32(reg(in.A)), int(in.Imm))
	case isa.OpEnqResp:
		return c.execResp(cy, r, w, int(in.Imm), reg(in.Dst))
	case isa.OpEnqEv:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumEvents() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("event operand %d out of range [0,%d)", in.Imm, c.Prog.NumEvents()))
		}
		return c.execEnqEv(r, w, int(in.Imm))
	case isa.OpPeek:
		switch {
		case in.Imm == -1:
			setReg(in.Dst, w.msg.addr)
		case in.Imm == -2:
			setReg(in.Dst, uint64(len(w.msg.data)))
		case in.Imm < 0 || int(in.Imm) >= len(w.msg.data):
			// A negative peek other than the -1/-2 pseudo-slots used to
			// fall through to a raw negative slice index; both directions
			// now trap.
			return c.trapStep(cy, r, w, TrapPeekOOB,
				fmt.Sprintf("peek %d beyond %d-word message", in.Imm, len(w.msg.data)))
		default:
			setReg(in.Dst, w.msg.data[in.Imm])
		}
	case isa.OpDeq:
		// The front-end consumed the message at wake; explicit deq is an
		// accounting no-op retained for spec fidelity.

	// ---- Meta-tags ----
	case isa.OpAllocM:
		return c.execAllocM(cy, r, w)
	case isa.OpDeallocM:
		c.execDeallocM(w)
	case isa.OpUpdate:
		return c.execUpdate(cy, r, w, int32(reg(in.Dst)), int32(reg(in.A)))
	case isa.OpState:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumStates() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("state operand %d out of range [0,%d)", in.Imm, c.Prog.NumStates()))
		}
		return c.execYield(w, int(in.Imm))
	case isa.OpHalt:
		if in.Imm < 0 || int(in.Imm) >= c.Prog.NumStates() {
			return c.trapStep(cy, r, w, TrapImmRange,
				fmt.Sprintf("state operand %d out of range [0,%d)", in.Imm, c.Prog.NumStates()))
		}
		return c.execHalt(w, int(in.Imm))
	case isa.OpAbort:
		return c.execAbort(w)

	// ---- Control ----
	case isa.OpBmiss:
		branch(w.entry == nil || w.entry.State != program.StateValid)
		return stepAgain
	case isa.OpBhit:
		branch(w.entry != nil && w.entry.State == program.StateValid)
		return stepAgain
	case isa.OpBeq:
		branch(reg(in.Dst) == reg(in.A))
		return stepAgain
	case isa.OpBnz:
		branch(reg(in.Dst) != 0)
		return stepAgain
	case isa.OpBlt:
		branch(int64(reg(in.Dst)) < int64(reg(in.A)))
		return stepAgain
	case isa.OpBge:
		branch(int64(reg(in.Dst)) >= int64(reg(in.A)))
		return stepAgain
	case isa.OpBle:
		branch(int64(reg(in.Dst)) <= int64(reg(in.A)))
		return stepAgain
	case isa.OpJmp:
		branch(true)
		return stepAgain

	// ---- Data RAM ----
	case isa.OpAllocD, isa.OpAllocDI:
		n := int(in.Imm)
		if in.Op == isa.OpAllocD {
			n = int(int64(reg(in.A)))
		}
		return c.execAllocData(cy, r, w, in.Dst, n)
	case isa.OpDeallocD:
		c.execDeallocD(w)
	case isa.OpReadD:
		return c.execReadD(cy, r, w, in.Dst, reg(in.A))
	case isa.OpWriteD:
		return c.execWriteD(cy, r, w, reg(in.Dst), reg(in.A))

	default:
		return c.trapStep(cy, r, w, TrapIllegalOp, fmt.Sprintf("undefined or unimplemented op %s", in.Op.Name()))
	}
	r.pc++
	return stepAgain
}

// fsetReg writes a walker register, marking it live and charging the
// register-file write energy (the interpreter's setReg and the fast
// path's closures share it).
func (c *Controller) fsetReg(w *walker, i uint8, v uint64) {
	w.regs[i] = v
	w.liveMask |= 1 << i
	if c.Meter != nil {
		c.Meter.RegBitsWritten += 64
	}
}

// fbranch resolves a branch: one comparator charge, then the pc moves to
// the routine-relative target or falls through. The target is computed
// against the *live* r.start, not the compile-time extent: a trailing
// not-taken branch may legally fall through into the next routine extent
// with the original routine's base still in force.
func (c *Controller) fbranch(r *run, taken bool, imm int32) {
	if c.Meter != nil {
		c.Meter.BitOps++
	}
	if taken {
		r.pc = r.start + imm
	} else {
		r.pc++
	}
}

// execFill pushes a DRAM read of words at addr. The word count is
// runtime-checked here because enqfill takes it from a register; the
// verifier discharges the check for enqfilli's immediate form, which
// reaches this helper only with a compile-time-valid count.
func (c *Controller) execFill(cy sim.Cycle, r *run, w *walker, addr uint64, words int) stepStatus {
	if words <= 0 || words > c.Cfg.MaxFillWords {
		return c.trapStep(cy, r, w, TrapFillOverflow,
			fmt.Sprintf("fill of %d words (MaxFillWords=%d)", words, c.Cfg.MaxFillWords))
	}
	if !c.MemReq.CanPush() {
		return stepStall
	}
	// The address bus is word-granular: low bits a routine computed into
	// the address register are dropped, exactly as hardware would.
	addr &^= 7
	c.MemReq.MustPush(dram.Request{ID: uint64(w.id), Addr: addr, Words: words})
	c.outstandingFills++
	w.fills++
	c.stats.FillsIssued++
	if c.Cfg.FillTimeout > 0 {
		c.fillTable = append(c.fillTable, fillRec{walker: w.id, addr: addr, words: words, issued: cy})
	}
	if c.outstandingFills > c.stats.MaxFillsInFlight {
		c.stats.MaxFillsInFlight = c.outstandingFills
	}
	if c.Meter != nil {
		c.Meter.QueueBytes += 16
		c.Meter.DRAMAccesses++
		c.Meter.DRAMBytes += uint64(words) * 8
	}
	r.pc++
	return stepAgain
}

// execWb pushes a DRAM writeback of words data-RAM words starting at
// base. The source range is register-derived, so its bounds stay a
// runtime trap on both executor paths.
func (c *Controller) execWb(cy sim.Cycle, r *run, w *walker, addr uint64, base int32, words int) stepStatus {
	if words <= 0 || words > c.Cfg.MaxFillWords {
		return c.trapStep(cy, r, w, TrapFillOverflow,
			fmt.Sprintf("writeback of %d words (MaxFillWords=%d)", words, c.Cfg.MaxFillWords))
	}
	if base < 0 || int(base)+words > c.Data.Words() {
		return c.trapStep(cy, r, w, TrapDataOOB,
			fmt.Sprintf("writeback source [%d,%d) outside the %d-word data RAM", base, int(base)+words, c.Data.Words()))
	}
	if !c.MemReq.CanPush() {
		return stepStall
	}
	data := make([]uint64, words)
	for i := range data {
		data[i] = c.Data.Read(base + int32(i))
	}
	c.MemReq.MustPush(dram.Request{ID: wbIDFlag | uint64(w.id), Addr: addr &^ 7,
		Words: words, Write: true, Data: data})
	c.stats.WritebacksIssued++
	if c.Meter != nil {
		c.Meter.QueueBytes += 16
		c.Meter.DRAMAccesses++
		c.Meter.DRAMBytes += uint64(words) * 8
	}
	r.pc++
	return stepAgain
}

// execResp answers the walker's origin request with status/value.
func (c *Controller) execResp(cy sim.Cycle, r *run, w *walker, status int, value uint64) stepStatus {
	if !c.RespQ.CanPush() {
		return stepStall
	}
	resp := MetaResp{ID: w.origin.ID, Status: status, Value: value}
	if resp.Status == program.StatusOK && w.entry != nil {
		resp.Words = int(w.entry.SectorCount) * c.Data.Cfg.WordsPerSector
		// The refilled sectors stream to the datapath through the
		// data port, exactly like a hit return.
		if resp.Words > 0 {
			keep := resp.Words
			if keep > c.Cfg.RespDataWords {
				keep = c.Cfg.RespDataWords
			}
			resp.Data = c.Data.ReadRun(w.entry.SectorBase, keep)
			if c.Meter != nil && resp.Words > keep {
				c.Meter.DataBytes += uint64(resp.Words-keep) * 8
			}
		}
	}
	if resp.Status == program.StatusNotFound {
		c.stats.NotFound++
	}
	c.RespQ.MustPush(resp)
	w.responded = true
	c.stats.Responses++
	c.noteLatency(w.origin, cy, false)
	if c.Meter != nil {
		c.Meter.QueueBytes += 16
	}
	r.pc++
	return stepAgain
}

// execEnqEv enqueues internal event ev to the walker itself. The event
// id was range-checked by the caller (interpreter) or the verifier (fast
// path).
func (c *Controller) execEnqEv(r *run, w *walker, ev int) stepStatus {
	if !c.evq.CanPush() {
		return stepStall
	}
	c.evq.MustPush(message{event: ev, addr: uint64(w.id)})
	if c.Meter != nil {
		c.Meter.QueueBytes += 8
	}
	r.pc++
	return stepAgain
}

// execAllocM allocates a meta-tag entry for the walker's key, evicting
// (and possibly writing back) an LRU-stable victim.
func (c *Controller) execAllocM(cy sim.Cycle, r *run, w *walker) stepStatus {
	if w.entry != nil {
		// A second allocm would double-allocate the key in the
		// meta-tag array (which asserts on duplicates).
		return c.trapStep(cy, r, w, TrapAllocOverflow, "duplicate allocm: walker already holds an entry")
	}
	if !c.MemReq.CanPush() {
		return stepStall // a dirty victim may need a writeback slot
	}
	entry, ev, ok := c.Tags.Alloc(w.key, w.state, w.id)
	if !ok {
		// Every way transient: hand the request back and retire the
		// walker; the replay path re-probes once a conflicting walker
		// settles.
		c.stats.AllocRetries++
		c.trace(TraceEvent{Kind: TraceAllocRetry, Key: w.key})
		c.replay = append(c.replay, w.origin)
		c.finish(w, false)
		return stepDone
	}
	w.entry = entry
	c.trace(TraceEvent{Kind: TraceAlloc, Key: w.key, State: w.state})
	c.reclaim(ev)
	r.pc++
	return stepAgain
}

// execDeallocM releases the walker's entry and its sectors (no-op when
// it holds none).
func (c *Controller) execDeallocM(w *walker) {
	if w.entry != nil {
		if w.entry.SectorCount > 0 {
			c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
		}
		c.Tags.Dealloc(w.entry)
		w.entry = nil
		c.trace(TraceEvent{Kind: TraceDealloc, Key: w.key})
	}
}

// execUpdate points the walker's entry at the sector run [base/wlen,
// base/wlen+count). Both operands are register values, so alignment and
// range stay runtime traps on both executor paths.
func (c *Controller) execUpdate(cy sim.Cycle, r *run, w *walker, base, count int32) stepStatus {
	if w.entry == nil {
		return c.trapStep(cy, r, w, TrapMisalignedUpdate, "update with no meta-tag entry (missing allocm)")
	}
	wlen := int32(c.Data.Cfg.WordsPerSector)
	if base < 0 || base%wlen != 0 {
		return c.trapStep(cy, r, w, TrapMisalignedUpdate,
			fmt.Sprintf("update base %d not sector aligned (wlen=%d)", base, wlen))
	}
	if count < 0 || int(base/wlen)+int(count) > c.Data.Cfg.Sectors {
		return c.trapStep(cy, r, w, TrapDataOOB,
			fmt.Sprintf("update sector run [%d,%d) outside the %d-sector data RAM",
				base/wlen, int(base/wlen)+int(count), c.Data.Cfg.Sectors))
	}
	w.entry.SectorBase = base / wlen
	w.entry.SectorCount = count
	c.Tags.Update()
	r.pc++
	return stepAgain
}

// execYield parks the walker in state s: only allocr-marked registers
// survive; scratch registers are freed (and cleared, so specs cannot
// silently rely on them).
func (c *Controller) execYield(w *walker, s int) stepStatus {
	c.setState(w, s)
	w.running = false
	for i := range w.regs {
		if w.persist&(1<<uint(i)) == 0 {
			w.regs[i] = 0
		}
	}
	w.liveMask = w.persist
	return stepDone
}

// execHalt settles the entry in state s and frees the walker.
func (c *Controller) execHalt(w *walker, s int) stepStatus {
	c.setState(w, s)
	if w.entry != nil {
		w.entry.Walker = int32(-1)
		if w.isStore {
			w.entry.Dirty = true
		}
	}
	c.trace(TraceEvent{Kind: TraceSettle, Key: w.key, Store: w.isStore, HasEntry: w.entry != nil})
	c.finish(w, false)
	return stepDone
}

// execAbort deallocates the entry (if any) and frees the walker with a
// not-found disposition.
func (c *Controller) execAbort(w *walker) stepStatus {
	if w.entry != nil {
		if w.entry.SectorCount > 0 {
			c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
		}
		c.Tags.Dealloc(w.entry)
		w.entry = nil
	}
	c.trace(TraceEvent{Kind: TraceAbort, Key: w.key})
	c.finish(w, true)
	return stepDone
}

// execAllocData allocates n data-RAM sectors into dst, evicting stable
// entries via makeRoom when the free pool is exhausted.
func (c *Controller) execAllocData(cy sim.Cycle, r *run, w *walker, dst uint8, n int) stepStatus {
	if n <= 0 || n > c.Data.Cfg.Sectors {
		// An over-capacity request would replay forever (no eviction
		// can ever make room), so it traps rather than livelocks.
		return c.trapStep(cy, r, w, TrapAllocOverflow,
			fmt.Sprintf("allocation of %d sectors (data RAM holds %d)", n, c.Data.Cfg.Sectors))
	}
	base, ok := c.Data.Alloc(n)
	if !ok {
		if !c.MemReq.CanPush() {
			return stepStall
		}
		if !c.makeRoom(n) {
			// Capacity exhausted by transient entries: retire and
			// replay, as with allocm conflicts.
			c.stats.AllocRetries++
			c.trace(TraceEvent{Kind: TraceAllocRetry, Key: w.key})
			if w.entry != nil {
				c.Tags.Dealloc(w.entry)
				w.entry = nil
			}
			c.replay = append(c.replay, w.origin)
			c.finish(w, false)
			return stepDone
		}
		return stepStall // retry the allocation next cycle
	}
	c.fsetReg(w, dst, uint64(c.Data.SectorWordBase(base)))
	r.pc++
	return stepAgain
}

// execDeallocD frees the walker entry's sectors.
func (c *Controller) execDeallocD(w *walker) {
	if w.entry != nil && w.entry.SectorCount > 0 {
		c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
		w.entry.SectorBase, w.entry.SectorCount = 0, 0
	}
}

// execReadD loads data-RAM word a into dst; the index is a register
// value, so the bounds stay a runtime trap.
func (c *Controller) execReadD(cy sim.Cycle, r *run, w *walker, dst uint8, a uint64) stepStatus {
	idx := int32(a)
	if idx < 0 || int(idx) >= c.Data.Words() {
		return c.trapStep(cy, r, w, TrapDataOOB,
			fmt.Sprintf("read of word %d outside the %d-word data RAM", idx, c.Data.Words()))
	}
	c.fsetReg(w, dst, c.Data.Read(idx))
	r.pc++
	return stepAgain
}

// execWriteD stores v to data-RAM word d.
func (c *Controller) execWriteD(cy sim.Cycle, r *run, w *walker, d, v uint64) stepStatus {
	idx := int32(d)
	if idx < 0 || int(idx) >= c.Data.Words() {
		return c.trapStep(cy, r, w, TrapDataOOB,
			fmt.Sprintf("write of word %d outside the %d-word data RAM", idx, c.Data.Words()))
	}
	c.Data.Write(idx, v)
	r.pc++
	return stepAgain
}

// regOOB reports whether any register operand the op's shape actually
// uses indexes beyond the nx-entry X-register file. Unused fields carry
// don't-care bits from decode and are ignored.
func regOOB(in isa.Instr, nx int) (bool, string) {
	regs, n := in.RegOperands()
	for k := 0; k < n; k++ {
		if int(regs[k]) >= nx {
			return true, fmt.Sprintf("%s=r%d", isa.RegFieldName(k), regs[k])
		}
	}
	return false, ""
}

func (c *Controller) chargeALU(add, mul, bit, shift uint64) {
	if c.Meter == nil {
		return
	}
	c.Meter.AddOps += add
	c.Meter.MulOps += mul
	c.Meter.BitOps += bit
	c.Meter.ShiftOps += shift
}

// reclaim releases an evicted entry's sectors and writes back dirty data.
// The caller has already guaranteed MemReq space.
func (c *Controller) reclaim(ev *metatag.Evicted) {
	if ev == nil {
		return
	}
	if ev.SectorCount > 0 {
		if ev.Dirty || c.evictHook != nil {
			words := int(ev.SectorCount) * c.Data.Cfg.WordsPerSector
			base := c.Data.SectorWordBase(ev.SectorBase)
			data := make([]uint64, words)
			for i := range data {
				data[i] = c.Data.Read(base + int32(i))
			}
			handled := false
			if c.evictHook != nil {
				handled = c.evictHook(EvictNote{Key: ev.Key, Dirty: ev.Dirty, Words: data})
			}
			if ev.Dirty && !handled {
				// Dirty meta data spills to a per-cache victim region keyed by
				// tag hash; DSAs that need spilled data back re-walk for it.
				addr := c.spillAddr(ev.Key)
				c.MemReq.MustPush(dram.Request{ID: wbIDFlag, Addr: addr, Words: words, Write: true, Data: data})
				c.stats.WritebacksIssued++
				if c.Meter != nil {
					c.Meter.DRAMAccesses++
					c.Meter.DRAMBytes += uint64(words) * 8
				}
			}
		}
		c.Data.Free(ev.SectorBase, ev.SectorCount)
	} else if c.evictHook != nil {
		c.evictHook(EvictNote{Key: ev.Key, Dirty: ev.Dirty})
	}
}

// makeRoom evicts stable entries until n contiguous sectors could
// plausibly be freed. It returns false when nothing is evictable. Each
// eviction may need a writeback slot, so the memory queue is re-checked
// per victim — the caller only guaranteed space for the first.
func (c *Controller) makeRoom(n int) bool {
	evicted := false
	for i := 0; i < 4; i++ {
		if !c.MemReq.CanPush() {
			return evicted
		}
		ev, ok := c.Tags.EvictLRUStable()
		if !ok {
			return evicted
		}
		c.reclaim(ev)
		evicted = true
		if c.Data.FreeSectors() >= n*2 {
			break
		}
	}
	return true
}

func (c *Controller) spillAddr(k metatag.Key) uint64 {
	const spillRegion = uint64(0x4000_0000_0000)
	slot := k.Mix() % (1 << 20)
	return spillRegion + slot*256
}
