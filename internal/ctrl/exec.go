package ctrl

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/isa"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

type stepStatus uint8

const (
	stepAgain stepStatus = iota // action retired, routine continues
	stepStall                   // structural hazard (full queue); retry next cycle
	stepDone                    // routine ended (terminal action or walker freed)
)

// step executes the single action at r.pc. The executor is in-order and
// non-blocking: the only way a routine waits is a structural stall on a
// full queue.
func (c *Controller) step(cy sim.Cycle, r *run) stepStatus {
	w := &c.walkers[r.walker]
	in := c.Prog.Code[r.pc]
	r.steps++
	if r.steps > c.Cfg.MaxRoutineSteps {
		panic(fmt.Sprintf("ctrl: routine at %d exceeded %d steps (runaway microcode in %s)",
			r.start, c.Cfg.MaxRoutineSteps, c.Prog.Name))
	}

	// Microcode fetch energy (hardwired baselines have no routine RAM).
	if c.Meter != nil && !c.Cfg.Hardwired {
		c.Meter.RtnBytes += isa.WordBytes
	}
	c.stats.Actions++
	c.cycActions++

	reg := func(i uint8) uint64 {
		if int(i) >= len(w.regs) {
			panic(fmt.Sprintf("ctrl: r%d out of range (%d X-registers)", i, len(w.regs)))
		}
		return w.regs[i]
	}
	setReg := func(i uint8, v uint64) {
		if int(i) >= len(w.regs) {
			panic(fmt.Sprintf("ctrl: r%d out of range (%d X-registers)", i, len(w.regs)))
		}
		w.regs[i] = v
		w.liveMask |= 1 << i
		if c.Meter != nil {
			c.Meter.RegBitsWritten += 64
		}
	}
	branch := func(taken bool) {
		if c.Meter != nil {
			c.Meter.BitOps++
		}
		if taken {
			r.pc = r.start + in.Imm
		} else {
			r.pc++
		}
	}

	switch in.Op {
	// ---- AGEN ----
	case isa.OpAdd:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+reg(in.B))
	case isa.OpAddi:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.A)+uint64(int64(in.Imm)))
	case isa.OpInc:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)+1)
	case isa.OpDec:
		c.chargeALU(1, 0, 0, 0)
		setReg(in.Dst, reg(in.Dst)-1)
	case isa.OpAnd:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)&reg(in.B))
	case isa.OpOr:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)|reg(in.B))
	case isa.OpXor:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, reg(in.A)^reg(in.B))
	case isa.OpNot:
		c.chargeALU(0, 0, 1, 0)
		setReg(in.Dst, ^reg(in.A))
	case isa.OpShl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)<<uint(in.Imm&63))
	case isa.OpShr, isa.OpSrl:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, reg(in.A)>>uint(in.Imm&63))
	case isa.OpSra:
		c.chargeALU(0, 0, 0, 1)
		setReg(in.Dst, uint64(int64(reg(in.A))>>uint(in.Imm&63)))
	case isa.OpMul:
		c.chargeALU(0, 1, 0, 0)
		setReg(in.Dst, reg(in.A)*reg(in.B))
	case isa.OpLi:
		setReg(in.Dst, uint64(int64(in.Imm)))
	case isa.OpMov:
		setReg(in.Dst, reg(in.A))
	case isa.OpLde:
		setReg(in.Dst, c.env[in.Imm&15])
	case isa.OpAllocR:
		// allocR marks a register as walker state that must survive
		// yields (§4.2: "routines allocate temporary X-register to store
		// the access key and the address of the DRAM refill being waited
		// on"). Unmarked registers are pipeline temporaries and are
		// cleared when the routine yields.
		w.persist |= 1 << in.Dst
		w.liveMask |= 1 << in.Dst

	// ---- Queues ----
	case isa.OpEnqFill, isa.OpEnqFillI:
		words := int(uint64(in.Imm))
		if in.Op == isa.OpEnqFill {
			words = int(reg(in.A))
		}
		if words <= 0 || words > c.Cfg.MaxFillWords {
			panic(fmt.Sprintf("ctrl: fill of %d words (MaxFillWords=%d)", words, c.Cfg.MaxFillWords))
		}
		if !c.MemReq.CanPush() {
			return stepStall
		}
		c.MemReq.MustPush(dram.Request{ID: uint64(w.id), Addr: reg(in.Dst), Words: words})
		c.outstandingFills++
		w.fills++
		c.stats.FillsIssued++
		if c.Cfg.FillTimeout > 0 {
			c.fillTable = append(c.fillTable, fillRec{walker: w.id, addr: reg(in.Dst), words: words, issued: cy})
		}
		if c.outstandingFills > c.stats.MaxFillsInFlight {
			c.stats.MaxFillsInFlight = c.outstandingFills
		}
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
			c.Meter.DRAMAccesses++
			c.Meter.DRAMBytes += uint64(words) * 8
		}
	case isa.OpEnqWb:
		if !c.MemReq.CanPush() {
			return stepStall
		}
		words := int(in.Imm)
		base := int32(reg(in.A))
		data := make([]uint64, words)
		for i := range data {
			data[i] = c.Data.Read(base + int32(i))
		}
		c.MemReq.MustPush(dram.Request{ID: wbIDFlag | uint64(w.id), Addr: reg(in.Dst),
			Words: words, Write: true, Data: data})
		c.stats.WritebacksIssued++
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
			c.Meter.DRAMAccesses++
			c.Meter.DRAMBytes += uint64(words) * 8
		}
	case isa.OpEnqResp:
		if !c.RespQ.CanPush() {
			return stepStall
		}
		resp := MetaResp{ID: w.origin.ID, Status: int(in.Imm), Value: reg(in.Dst)}
		if resp.Status == program.StatusOK && w.entry != nil {
			resp.Words = int(w.entry.SectorCount) * c.Data.Cfg.WordsPerSector
			// The refilled sectors stream to the datapath through the
			// data port, exactly like a hit return.
			if resp.Words > 0 {
				keep := resp.Words
				if keep > c.Cfg.RespDataWords {
					keep = c.Cfg.RespDataWords
				}
				resp.Data = c.Data.ReadRun(w.entry.SectorBase, keep)
				if c.Meter != nil && resp.Words > keep {
					c.Meter.DataBytes += uint64(resp.Words-keep) * 8
				}
			}
		}
		if resp.Status == program.StatusNotFound {
			c.stats.NotFound++
		}
		c.RespQ.MustPush(resp)
		c.stats.Responses++
		c.noteLatency(w.origin, cy, false)
		if c.Meter != nil {
			c.Meter.QueueBytes += 16
		}
	case isa.OpEnqEv:
		if !c.evq.CanPush() {
			return stepStall
		}
		c.evq.MustPush(message{event: int(in.Imm), addr: uint64(w.id)})
		if c.Meter != nil {
			c.Meter.QueueBytes += 8
		}
	case isa.OpPeek:
		switch in.Imm {
		case -1:
			setReg(in.Dst, w.msg.addr)
		case -2:
			setReg(in.Dst, uint64(len(w.msg.data)))
		default:
			if int(in.Imm) >= len(w.msg.data) {
				panic(fmt.Sprintf("ctrl: peek %d beyond %d-word message", in.Imm, len(w.msg.data)))
			}
			setReg(in.Dst, w.msg.data[in.Imm])
		}
	case isa.OpDeq:
		// The front-end consumed the message at wake; explicit deq is an
		// accounting no-op retained for spec fidelity.

	// ---- Meta-tags ----
	case isa.OpAllocM:
		if !c.MemReq.CanPush() {
			return stepStall // a dirty victim may need a writeback slot
		}
		entry, ev, ok := c.Tags.Alloc(w.key, w.state, w.id)
		if !ok {
			// Every way transient: hand the request back and retire the
			// walker; the replay path re-probes once a conflicting walker
			// settles.
			c.stats.AllocRetries++
			c.replay = append(c.replay, w.origin)
			c.finish(w, false)
			return stepDone
		}
		w.entry = entry
		c.reclaim(ev)
	case isa.OpDeallocM:
		if w.entry != nil {
			if w.entry.SectorCount > 0 {
				c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			}
			c.Tags.Dealloc(w.entry)
			w.entry = nil
		}
	case isa.OpUpdate:
		if w.entry == nil {
			panic("ctrl: update with no meta-tag entry (missing allocm)")
		}
		wlen := int32(c.Data.Cfg.WordsPerSector)
		base := int32(reg(in.Dst))
		if base%wlen != 0 {
			panic("ctrl: update base not sector aligned")
		}
		w.entry.SectorBase = base / wlen
		w.entry.SectorCount = int32(reg(in.A))
		c.Tags.Update()
	case isa.OpState:
		c.setState(w, int(in.Imm))
		w.running = false
		// Yield: only allocr-marked registers survive; scratch registers
		// are freed (and cleared, so specs cannot silently rely on them).
		for i := range w.regs {
			if w.persist&(1<<uint(i)) == 0 {
				w.regs[i] = 0
			}
		}
		w.liveMask = w.persist
		return stepDone
	case isa.OpHalt:
		c.setState(w, int(in.Imm))
		if w.entry != nil {
			w.entry.Walker = int32(-1)
			if w.isStore {
				w.entry.Dirty = true
			}
		}
		c.finish(w, false)
		return stepDone
	case isa.OpAbort:
		if w.entry != nil {
			if w.entry.SectorCount > 0 {
				c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			}
			c.Tags.Dealloc(w.entry)
			w.entry = nil
		}
		c.finish(w, true)
		return stepDone

	// ---- Control ----
	case isa.OpBmiss:
		branch(w.entry == nil || w.entry.State != program.StateValid)
		return stepAgain
	case isa.OpBhit:
		branch(w.entry != nil && w.entry.State == program.StateValid)
		return stepAgain
	case isa.OpBeq:
		branch(reg(in.Dst) == reg(in.A))
		return stepAgain
	case isa.OpBnz:
		branch(reg(in.Dst) != 0)
		return stepAgain
	case isa.OpBlt:
		branch(int64(reg(in.Dst)) < int64(reg(in.A)))
		return stepAgain
	case isa.OpBge:
		branch(int64(reg(in.Dst)) >= int64(reg(in.A)))
		return stepAgain
	case isa.OpBle:
		branch(int64(reg(in.Dst)) <= int64(reg(in.A)))
		return stepAgain
	case isa.OpJmp:
		branch(true)
		return stepAgain

	// ---- Data RAM ----
	case isa.OpAllocD, isa.OpAllocDI:
		n := int(in.Imm)
		if in.Op == isa.OpAllocD {
			n = int(reg(in.A))
		}
		if n <= 0 {
			panic(fmt.Sprintf("ctrl: allocd of %d sectors", n))
		}
		base, ok := c.Data.Alloc(n)
		if !ok {
			if !c.MemReq.CanPush() {
				return stepStall
			}
			if !c.makeRoom(n) {
				// Capacity exhausted by transient entries: retire and
				// replay, as with allocm conflicts.
				c.stats.AllocRetries++
				if w.entry != nil {
					c.Tags.Dealloc(w.entry)
					w.entry = nil
				}
				c.replay = append(c.replay, w.origin)
				c.finish(w, false)
				return stepDone
			}
			return stepStall // retry the allocation next cycle
		}
		setReg(in.Dst, uint64(c.Data.SectorWordBase(base)))
	case isa.OpDeallocD:
		if w.entry != nil && w.entry.SectorCount > 0 {
			c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
			w.entry.SectorBase, w.entry.SectorCount = 0, 0
		}
	case isa.OpReadD:
		setReg(in.Dst, c.Data.Read(int32(reg(in.A))))
	case isa.OpWriteD:
		c.Data.Write(int32(reg(in.Dst)), reg(in.A))

	default:
		panic(fmt.Sprintf("ctrl: unimplemented op %s", in.Op.Name()))
	}
	r.pc++
	return stepAgain
}

func (c *Controller) chargeALU(add, mul, bit, shift uint64) {
	if c.Meter == nil {
		return
	}
	c.Meter.AddOps += add
	c.Meter.MulOps += mul
	c.Meter.BitOps += bit
	c.Meter.ShiftOps += shift
}

// reclaim releases an evicted entry's sectors and writes back dirty data.
// The caller has already guaranteed MemReq space.
func (c *Controller) reclaim(ev *metatag.Evicted) {
	if ev == nil {
		return
	}
	if ev.SectorCount > 0 {
		if ev.Dirty {
			words := int(ev.SectorCount) * c.Data.Cfg.WordsPerSector
			base := c.Data.SectorWordBase(ev.SectorBase)
			data := make([]uint64, words)
			for i := range data {
				data[i] = c.Data.Read(base + int32(i))
			}
			// Dirty meta data spills to a per-cache victim region keyed by
			// tag hash; DSAs that need spilled data back re-walk for it.
			addr := c.spillAddr(ev.Key)
			c.MemReq.MustPush(dram.Request{ID: wbIDFlag, Addr: addr, Words: words, Write: true, Data: data})
			c.stats.WritebacksIssued++
			if c.Meter != nil {
				c.Meter.DRAMAccesses++
				c.Meter.DRAMBytes += uint64(words) * 8
			}
		}
		c.Data.Free(ev.SectorBase, ev.SectorCount)
	}
}

// makeRoom evicts stable entries until n contiguous sectors could
// plausibly be freed. It returns false when nothing is evictable. Each
// eviction may need a writeback slot, so the memory queue is re-checked
// per victim — the caller only guaranteed space for the first.
func (c *Controller) makeRoom(n int) bool {
	evicted := false
	for i := 0; i < 4; i++ {
		if !c.MemReq.CanPush() {
			return evicted
		}
		ev, ok := c.Tags.EvictLRUStable()
		if !ok {
			return evicted
		}
		c.reclaim(ev)
		evicted = true
		if c.Data.FreeSectors() >= n*2 {
			break
		}
	}
	return true
}

func (c *Controller) spillAddr(k metatag.Key) uint64 {
	const spillRegion = uint64(0x4000_0000_0000)
	slot := k.Mix() % (1 << 20)
	return spillRegion + slot*256
}
