package ctrl

// Microbenchmarks for the two executor backends over an ALU-dense spin
// routine (no DRAM traffic — nearly every simulated cycle is a
// microcode step). `go test -bench ExecStep ./internal/ctrl` prints the
// per-action cost of each; the committed perf gate is the xcache-bench
// hotloop figure (make bench-diff), which measures the same loop.

import (
	"testing"

	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

func benchSpinSpec() program.Spec {
	return program.Spec{
		Name: "benchspin",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				li r4, 96
				li r5, 3
				li r6, 7
			loop:
				add r6, r6, r5
				xor r7, r6, r4
				shl r8, r7, 3
				shr r9, r8, 2
				and r10, r9, r6
				or r11, r10, r5
				mul r12, r11, r5
				addi r6, r12, 13
				dec r4
				bnz r4, loop
				enqresp r6, OK
				abort
			`},
		},
	}
}

func benchExec(b *testing.B, exec ExecPath) {
	prog, err := benchSpinSpec().Compile()
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 64, Ways: 4, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 64, WordsPerSector: 4}, meter)
	c, err := New(k, Config{NumActive: 8, NumExe: 4, Exec: exec},
		prog, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		b.Fatal(err)
	}
	sent, done := 0, 0
	k.Add(sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			if _, ok := c.RespQ.Pop(); !ok {
				break
			}
			done++
		}
		for sent < b.N {
			r := MetaReq{ID: uint64(sent + 1), Op: MetaLoad,
				Key: metatag.Key{uint64(sent), 0}, Issued: cy}
			if !c.ReqQ.Push(r) {
				return
			}
			sent++
		}
	}))
	b.ResetTimer()
	if !k.RunUntil(func() bool { return done >= b.N }, 100_000_000) {
		b.Fatalf("spin never drained: %d/%d", done, b.N)
	}
	b.StopTimer()
	if tr := c.Trap(); tr != nil {
		b.Fatal(tr)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(c.Stats().Actions), "ns/action")
}

func BenchmarkExecStepInterp(b *testing.B) { benchExec(b, ExecInterp) }
func BenchmarkExecStepFast(b *testing.B)   { benchExec(b, ExecFast) }
