package ctrl

// Differential harness for the two microcode executors: the reference
// interpreter (exec.go) and the pre-decoded fast path (exec_fast.go) are
// run in lockstep — two identical rigs, one cycle at a time, the same
// request schedule — and every observable must match every cycle: the
// full Stats snapshot, the trap register, the response stream, the trace
// stream, the energy meter and the storage occupancy. Any divergence is
// reported at the first cycle it appears, which pins the faulting
// routine step rather than a downstream symptom.

import (
	"testing"

	"xcache/internal/dataram"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// traceLog is a TraceSink that records the stream.
type traceLog struct{ evs []TraceEvent }

func (l *traceLog) Trace(ev TraceEvent) { l.evs = append(l.evs, ev) }

// diffReq schedules one meta request for the lockstep driver.
type diffReq struct {
	at      sim.Cycle
	op      MetaOp
	key     uint64
	payload uint64
}

// diffPair is one executor pair under lockstep comparison.
type diffPair struct {
	ri, rf *rig      // interpreter / fast-path rigs
	ti, tf *traceLog // their trace streams
}

// newDiffPair builds two rigs identical in every respect except
// Config.Exec and attaches trace sinks to both.
func newDiffPair(t *testing.T, cfg Config, spec program.Spec,
	tagCfg metatag.Config, dataCfg dataram.Config) *diffPair {
	t.Helper()
	ci, cf := cfg, cfg
	ci.Exec, cf.Exec = ExecInterp, ExecFast
	p := &diffPair{
		ri: newRig(t, ci, spec, tagCfg, dataCfg),
		rf: newRig(t, cf, spec, tagCfg, dataCfg),
		ti: &traceLog{}, tf: &traceLog{},
	}
	if p.ri.c.fast != nil {
		t.Fatal("interpreter rig has a pre-decoded table")
	}
	if p.rf.c.fast == nil {
		t.Fatal("fast rig has no pre-decoded table")
	}
	p.ri.c.SetTraceSink(p.ti)
	p.rf.c.SetTraceSink(p.tf)
	return p
}

// lockstep drives both rigs through the schedule one cycle at a time and
// asserts identical observable state at every cycle boundary.
func (p *diffPair) lockstep(t *testing.T, reqs []diffReq, maxCycles int) {
	t.Helper()
	var nextID uint64
	pushed := 0
	var respI, respF []MetaResp
	drained := 0 // consecutive idle cycles after the schedule completes

	for cy := 0; cy < maxCycles; cy++ {
		// Admit due requests to both sides; queue acceptance must agree.
		for pushed < len(reqs) && reqs[pushed].at <= p.ri.k.Cycle() {
			q := reqs[pushed]
			req := MetaReq{ID: nextID + 1, Op: q.op, Key: metatag.Key{q.key, 0},
				Payload: q.payload, Issued: p.ri.k.Cycle()}
			okI := p.ri.c.ReqQ.Push(req)
			okF := p.rf.c.ReqQ.Push(req)
			if okI != okF {
				t.Fatalf("cycle %d: request %d admission diverged: interp=%t fast=%t",
					p.ri.k.Cycle(), req.ID, okI, okF)
			}
			if !okI {
				break // full on both sides; retry next cycle
			}
			nextID++
			pushed++
		}

		p.ri.k.Run(1)
		p.rf.k.Run(1)

		for {
			r, ok := p.ri.c.RespQ.Pop()
			if !ok {
				break
			}
			respI = append(respI, r)
		}
		for {
			r, ok := p.rf.c.RespQ.Pop()
			if !ok {
				break
			}
			respF = append(respF, r)
		}
		p.compareCycle(t, respI, respF)

		if pushed == len(reqs) && p.ri.c.Idle() && p.rf.c.Idle() &&
			p.ri.d.Idle() && p.rf.d.Idle() {
			if drained++; drained >= 3 {
				break
			}
		} else {
			drained = 0
		}
	}
	if pushed < len(reqs) {
		t.Fatalf("schedule incomplete: %d/%d requests admitted in %d cycles",
			pushed, len(reqs), maxCycles)
	}
	if len(respI) == 0 {
		t.Fatal("lockstep run produced no responses")
	}
	p.compareFinal(t, respI, respF)
}

// compareCycle checks the per-cycle observables.
func (p *diffPair) compareCycle(t *testing.T, respI, respF []MetaResp) {
	t.Helper()
	cy := p.ri.k.Cycle()
	if si, sf := p.ri.c.Stats(), p.rf.c.Stats(); si != sf {
		t.Fatalf("cycle %d: stats diverged\ninterp: %+v\nfast:   %+v", cy, si, sf)
	}
	if len(respI) != len(respF) {
		t.Fatalf("cycle %d: response count diverged: interp=%d fast=%d", cy, len(respI), len(respF))
	}
	for i := range respI {
		if !sameResp(respI[i], respF[i]) {
			t.Fatalf("cycle %d: response %d diverged\ninterp: %+v\nfast:   %+v",
				cy, i, respI[i], respF[i])
		}
	}
	ti, tf := p.ri.c.Trap(), p.rf.c.Trap()
	switch {
	case (ti == nil) != (tf == nil):
		t.Fatalf("cycle %d: trap presence diverged: interp=%v fast=%v", cy, ti, tf)
	case ti != nil && *ti != *tf:
		t.Fatalf("cycle %d: trap diverged\ninterp: %+v\nfast:   %+v", cy, *ti, *tf)
	}
}

// compareFinal checks the end-of-run observables the per-cycle pass does
// not cover: energy accounting, trace streams, storage occupancy.
func (p *diffPair) compareFinal(t *testing.T, respI, respF []MetaResp) {
	t.Helper()
	if *p.ri.meter != *p.rf.meter {
		t.Fatalf("energy meters diverged\ninterp: %+v\nfast:   %+v", *p.ri.meter, *p.rf.meter)
	}
	if len(p.ti.evs) != len(p.tf.evs) {
		t.Fatalf("trace length diverged: interp=%d fast=%d", len(p.ti.evs), len(p.tf.evs))
	}
	for i := range p.ti.evs {
		if p.ti.evs[i] != p.tf.evs[i] {
			t.Fatalf("trace event %d diverged\ninterp: %+v\nfast:   %+v",
				i, p.ti.evs[i], p.tf.evs[i])
		}
	}
	if li, lf := p.ri.c.Tags.Live(), p.rf.c.Tags.Live(); li != lf {
		t.Fatalf("live meta-tag entries diverged: interp=%d fast=%d", li, lf)
	}
	if fi, ff := p.ri.c.Data.FreeSectors(), p.rf.c.Data.FreeSectors(); fi != ff {
		t.Fatalf("free data sectors diverged: interp=%d fast=%d", fi, ff)
	}
	_ = respI
	_ = respF
}

func sameResp(a, b MetaResp) bool {
	if a.ID != b.ID || a.Status != b.Status || a.Value != b.Value ||
		a.Words != b.Words || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestExecDiffLockstep sweeps every walker program the unit suite uses —
// and several controller configurations — through the lockstep harness.
func TestExecDiffLockstep(t *testing.T) {
	// A load mix with hits, misses, not-founds, duplicate keys in flight
	// (waiter merging) and an eventual re-walk of an evicted key.
	loadMix := func(n int) []diffReq {
		var reqs []diffReq
		for i := 0; i < n; i++ {
			key := uint64(i * 7 % 24)
			if i%9 == 8 {
				key = 100 + uint64(i) // not-found: beyond the array bound
			}
			reqs = append(reqs, diffReq{at: sim.Cycle(i * 3), op: MetaLoad, key: key})
			if i%5 == 4 {
				// Duplicate while the first may still be walking.
				reqs = append(reqs, diffReq{at: sim.Cycle(i*3 + 1), op: MetaLoad, key: key})
			}
		}
		return reqs
	}
	storeMix := func(n int) []diffReq {
		var reqs []diffReq
		for i := 0; i < n; i++ {
			key := uint64(i % 12)
			op := MetaLoad
			switch i % 4 {
			case 1:
				op = MetaStore
			case 3:
				op = MetaStoreMerge
			}
			reqs = append(reqs, diffReq{at: sim.Cycle(i * 2), op: op, key: key, payload: uint64(i) * 3})
		}
		return reqs
	}

	cases := []struct {
		name    string
		cfg     Config
		spec    program.Spec
		tagCfg  metatag.Config
		dataCfg dataram.Config
		reqs    []diffReq
		array   int // fillArray size, 0 → multiFill element layout
	}{
		{name: "arraywalk_load_mix", cfg: Config{NumActive: 8},
			spec: arrayWalkSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: loadMix(48), array: 32},
		{name: "store_mix", cfg: Config{NumActive: 8},
			spec: storeSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: storeMix(40), array: 16},
		{name: "alloc_conflict_single_way", cfg: Config{NumActive: 4},
			spec: arrayWalkSpec(), tagCfg: metatag.Config{Sets: 1, Ways: 1, KeyWords: 1},
			dataCfg: defaultDataCfg(), reqs: loadMix(24), array: 32},
		{name: "tight_data_ram_makeroom", cfg: Config{NumActive: 4},
			spec: arrayWalkSpec(), tagCfg: metatag.Config{Sets: 4, Ways: 2, KeyWords: 1},
			dataCfg: dataram.Config{Sectors: 4, WordsPerSector: 4},
			reqs:    loadMix(32), array: 32},
		{name: "thread_mode", cfg: Config{Mode: ModeThread, NumActive: 8, NumExe: 2},
			spec: arrayWalkSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: loadMix(32), array: 32},
		{name: "hardwired", cfg: Config{Hardwired: true},
			spec: arrayWalkSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: loadMix(24), array: 32},
		{name: "single_slot_backend", cfg: Config{NumActive: 4, NumExe: 1},
			spec: arrayWalkSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: loadMix(24), array: 32},
		{name: "multifill_block_hits", cfg: Config{NumActive: 4},
			spec: multiFillSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: loadMix(20), array: 0},
		{name: "runaway_trap", cfg: Config{MaxRoutineSteps: 64},
			spec: loopSpec(), tagCfg: defaultTagCfg(), dataCfg: defaultDataCfg(),
			reqs: []diffReq{{at: 0, op: MetaLoad, key: 1}, {at: 40, op: MetaLoad, key: 2}}, array: 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := newDiffPair(t, c.cfg, c.spec, c.tagCfg, c.dataCfg)
			if c.array > 0 {
				p.ri.fillArray(c.array)
				p.rf.fillArray(c.array)
			} else {
				for _, r := range []*rig{p.ri, p.rf} {
					base := r.img.AllocWords(8 * 24)
					for i := 0; i < 8*24; i++ {
						r.img.W64(base+uint64(i)*8, uint64(1000+i))
					}
					r.c.SetEnv(0, base)
				}
			}
			p.lockstep(t, c.reqs, 400000)
		})
	}
}

// loopSpec busy-loops until the runaway budget trips — the one
// dynamically-reachable trap both executors keep (the step counter lives
// in the shared preamble).
func loopSpec() program.Spec {
	return program.Spec{
		Name:   "looper",
		States: []string{"Spin"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				li r4, 1
			spin:
				bnz r4, spin
				abort
			`},
		},
	}
}

// TestExecDiffFaultRecovery runs the lockstep pair against a DRAM channel
// that drops the first fill response, exercising the timeout/retry and
// spurious-duplicate machinery on both executors.
func TestExecDiffFaultRecovery(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1, FillTimeout: 200}
	p := newDiffPair(t, cfg, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	baseI := p.ri.fillArray(8)
	baseF := p.rf.fillArray(8)
	if baseI != baseF {
		t.Fatalf("memory layouts diverged before the run: %#x vs %#x", baseI, baseF)
	}
	p.ri.d.Faults = &dropOnce{addrs: map[uint64]bool{baseI + 3*8: true}}
	p.rf.d.Faults = &dropOnce{addrs: map[uint64]bool{baseF + 3*8: true}}
	p.lockstep(t, []diffReq{
		{at: 0, op: MetaLoad, key: 3},
		{at: 2, op: MetaLoad, key: 5},
		{at: 400, op: MetaLoad, key: 3},
	}, 100000)
	if p.ri.c.Stats().FillRetries == 0 {
		t.Fatal("fault schedule never tripped the fill retry path")
	}
}
