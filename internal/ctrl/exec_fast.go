package ctrl

import (
	"fmt"

	"xcache/internal/isa"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// ExecPath selects the back-end executor implementation.
type ExecPath uint8

// Executor paths. The zero value is the pre-decoded fast path, so every
// existing construction site gets it without opting in; the interpreter
// stays available as the semantic reference for differential testing.
const (
	// ExecFast pre-decodes each verified instruction once at load time
	// into a step closure with operands resolved and statically-discharged
	// checks stripped (see DESIGN.md §12).
	ExecFast ExecPath = iota
	// ExecInterp forces the reference interpreter (exec.go), which
	// re-decodes and re-bounds-checks every instruction on every step.
	ExecInterp
)

// fastFn is one pre-decoded step: the action at a fixed pc, compiled
// against the loaded program. It runs the residual dynamic checks only
// (runaway budget and pc bounds live one level up in stepFast) and
// returns the same status protocol as the interpreter's step.
type fastFn func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus

// predecode compiles the loaded program into the per-pc closure table
// the fast path dispatches through. It must be called with the facts
// returned by the verification of exactly c.Prog: a pc inside a verified
// routine extent (facts.Start[pc] >= 0) gets a closure with the
// statically-discharged checks stripped; a pc outside every extent is
// unreachable from the routine table but can still execute through a
// stale program counter after LoadProgram, so it gets a closure with the
// interpreter's full dynamic checks.
func (c *Controller) predecode(facts *program.Facts) {
	code := c.Prog.Code
	fast := make([]fastFn, len(code))
	for pc := range code {
		if facts != nil && int(facts.Start[pc]) >= 0 {
			fast[pc] = compileVerified(code[pc], c.Prog, facts.Start[pc])
		} else {
			fast[pc] = compileUnverified(code[pc])
		}
	}
	c.fast = fast
}

// stepFast executes the single action at r.pc through the pre-decoded
// table. Only the dynamically-decidable preamble checks remain: the pc
// bounds (a stale routine can outlive a LoadProgram swap, and a trailing
// branch can fall through past the last routine) and the runaway budget.
// Everything else is inside the compiled closure.
func (c *Controller) stepFast(cy sim.Cycle, r *run) stepStatus {
	w := &c.walkers[r.walker]
	if r.pc < 0 || int(r.pc) >= len(c.fast) {
		return c.trapStep(cy, r, w, TrapIllegalOp,
			fmt.Sprintf("pc %d outside the %d-word microcode RAM", r.pc, len(c.Prog.Code)))
	}
	r.steps++
	if r.steps > c.Cfg.MaxRoutineSteps {
		return c.trapStep(cy, r, w, TrapRunawayRoutine,
			fmt.Sprintf("routine at %d exceeded %d steps", r.start, c.Cfg.MaxRoutineSteps))
	}
	return c.fast[r.pc](c, cy, r, w)
}

// fbranchPre is the fast path's branch resolver: when the run's live
// routine base matches the pc's compile-time extent base, the taken
// target is the pre-resolved absolute pc; a stale run executing this pc
// under a different base (fall-through past a routine boundary) resolves
// against the live r.start, identically to the interpreter's fbranch.
func (c *Controller) fbranchPre(r *run, taken bool, imm, start, abs int32) {
	if c.Meter != nil {
		c.Meter.BitOps++
	}
	if !taken {
		r.pc++
		return
	}
	if r.start == start {
		r.pc = abs
	} else {
		r.pc = r.start + imm
	}
}

// compileUnverified wraps one instruction from outside every verified
// routine extent: full interpreter semantics (register bounds check, then
// the charged dispatch), minus only the fetch the table already did.
func compileUnverified(in isa.Instr) fastFn {
	return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
		if bad, which := regOOB(in, len(w.regs)); bad {
			return c.trapStep(cy, r, w, TrapRegOOB,
				fmt.Sprintf("%s outside the %d-entry X-register file", which, len(w.regs)))
		}
		c.chargeAction()
		return c.exec1(cy, r, w, in)
	}
}

// compileVerified builds the pre-decoded closure for one instruction
// inside a verified routine extent. The verifier has already proven: the
// op is defined, every register operand the shape uses is inside the
// X-register file, and every immediate is inside its operand's domain
// (environment slot, event, state, fill/writeback word count, peek
// pseudo-slot). Those checks are therefore absent here. Register-valued
// operands (data-RAM addresses and sizes, fill counts from registers,
// live message widths) and machine-state conditions (duplicate allocm,
// queue space, allocation pressure) remain runtime checks, shared with
// the interpreter through the exec* helpers so the two paths cannot
// drift.
func compileVerified(in isa.Instr, p *program.Program, start int32) fastFn {
	d, a, b := in.Dst, in.A, in.B
	imm := in.Imm
	// Pre-resolved branch target for the common case where the run's live
	// routine base equals this pc's compile-time extent base; fbranchPre
	// guards on that and falls back to live resolution otherwise.
	abs := start + imm

	switch in.Op {
	// ---- AGEN: operands resolved, no residual checks ----
	case isa.OpAdd:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(1, 0, 0, 0)
			c.fsetReg(w, d, w.regs[a]+w.regs[b])
			r.pc++
			return stepAgain
		}
	case isa.OpAddi:
		v := uint64(int64(imm))
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(1, 0, 0, 0)
			c.fsetReg(w, d, w.regs[a]+v)
			r.pc++
			return stepAgain
		}
	case isa.OpInc:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(1, 0, 0, 0)
			c.fsetReg(w, d, w.regs[d]+1)
			r.pc++
			return stepAgain
		}
	case isa.OpDec:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(1, 0, 0, 0)
			c.fsetReg(w, d, w.regs[d]-1)
			r.pc++
			return stepAgain
		}
	case isa.OpAnd:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 1, 0)
			c.fsetReg(w, d, w.regs[a]&w.regs[b])
			r.pc++
			return stepAgain
		}
	case isa.OpOr:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 1, 0)
			c.fsetReg(w, d, w.regs[a]|w.regs[b])
			r.pc++
			return stepAgain
		}
	case isa.OpXor:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 1, 0)
			c.fsetReg(w, d, w.regs[a]^w.regs[b])
			r.pc++
			return stepAgain
		}
	case isa.OpNot:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 1, 0)
			c.fsetReg(w, d, ^w.regs[a])
			r.pc++
			return stepAgain
		}
	case isa.OpShl:
		sh := uint(imm & 63)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 0, 1)
			c.fsetReg(w, d, w.regs[a]<<sh)
			r.pc++
			return stepAgain
		}
	case isa.OpShr, isa.OpSrl:
		sh := uint(imm & 63)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 0, 1)
			c.fsetReg(w, d, w.regs[a]>>sh)
			r.pc++
			return stepAgain
		}
	case isa.OpSra:
		sh := uint(imm & 63)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 0, 0, 1)
			c.fsetReg(w, d, uint64(int64(w.regs[a])>>sh))
			r.pc++
			return stepAgain
		}
	case isa.OpMul:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.chargeALU(0, 1, 0, 0)
			c.fsetReg(w, d, w.regs[a]*w.regs[b])
			r.pc++
			return stepAgain
		}
	case isa.OpLi:
		v := uint64(int64(imm))
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fsetReg(w, d, v)
			r.pc++
			return stepAgain
		}
	case isa.OpMov:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fsetReg(w, d, w.regs[a])
			r.pc++
			return stepAgain
		}
	case isa.OpLde:
		// imm-range discharged: the verifier proved imm ∈ [0, EnvSlots).
		ei := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fsetReg(w, d, c.env[ei])
			r.pc++
			return stepAgain
		}
	case isa.OpAllocR:
		mask := uint32(1) << d
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			w.persist |= mask
			w.liveMask |= mask
			r.pc++
			return stepAgain
		}

	// ---- Queues ----
	case isa.OpEnqFill:
		// The word count comes from a register: its range check stays
		// dynamic, inside execFill.
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execFill(cy, r, w, w.regs[d], int(w.regs[a]))
		}
	case isa.OpEnqFillI:
		// Word-count range discharged: imm ∈ [1, MaxFillWords].
		words := int(uint64(imm))
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execFill(cy, r, w, w.regs[d], words)
		}
	case isa.OpEnqWb:
		// Word-count range discharged; the register-derived source range
		// stays dynamic, inside execWb.
		words := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execWb(cy, r, w, w.regs[d], int32(w.regs[a]), words)
		}
	case isa.OpEnqResp:
		status := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execResp(cy, r, w, status, w.regs[d])
		}
	case isa.OpEnqEv:
		// Event-id range discharged: imm ∈ [0, NumEvents).
		ev := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execEnqEv(r, w, ev)
		}
	case isa.OpPeek:
		// The pseudo-slot split is resolved at compile time; a payload
		// peek keeps its check against the *live* message width, which
		// only the wake-time fill response determines.
		switch {
		case imm == -1:
			return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
				c.chargeAction()
				c.fsetReg(w, d, w.msg.addr)
				r.pc++
				return stepAgain
			}
		case imm == -2:
			return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
				c.chargeAction()
				c.fsetReg(w, d, uint64(len(w.msg.data)))
				r.pc++
				return stepAgain
			}
		case imm >= 0:
			pi := int(imm)
			return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
				c.chargeAction()
				if pi >= len(w.msg.data) {
					return c.trapStep(cy, r, w, TrapPeekOOB,
						fmt.Sprintf("peek %d beyond %d-word message", pi, len(w.msg.data)))
				}
				c.fsetReg(w, d, w.msg.data[pi])
				r.pc++
				return stepAgain
			}
		}
	case isa.OpDeq:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			r.pc++
			return stepAgain
		}

	// ---- Meta-tags ----
	case isa.OpAllocM:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execAllocM(cy, r, w)
		}
	case isa.OpDeallocM:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.execDeallocM(w)
			r.pc++
			return stepAgain
		}
	case isa.OpUpdate:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execUpdate(cy, r, w, int32(w.regs[d]), int32(w.regs[a]))
		}
	case isa.OpState:
		// State-range and wakeable-state checks discharged.
		s := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execYield(w, s)
		}
	case isa.OpHalt:
		s := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execHalt(w, s)
		}
	case isa.OpAbort:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execAbort(w)
		}

	// ---- Control: the absolute target is pre-resolved against this
	// pc's compile-time extent base (abs, above). That is only valid
	// while the run's live base matches: the verifier accepts a routine
	// whose last action is a conditional branch, and its not-taken path
	// falls through into the next extent with the original routine's
	// base still in force — fbranchPre guards on r.start and resolves
	// live in that case, exactly like the interpreter.
	case isa.OpBmiss:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, w.entry == nil || w.entry.State != program.StateValid, imm, start, abs)
			return stepAgain
		}
	case isa.OpBhit:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, w.entry != nil && w.entry.State == program.StateValid, imm, start, abs)
			return stepAgain
		}
	case isa.OpBeq:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, w.regs[d] == w.regs[a], imm, start, abs)
			return stepAgain
		}
	case isa.OpBnz:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, w.regs[d] != 0, imm, start, abs)
			return stepAgain
		}
	case isa.OpBlt:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, int64(w.regs[d]) < int64(w.regs[a]), imm, start, abs)
			return stepAgain
		}
	case isa.OpBge:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, int64(w.regs[d]) >= int64(w.regs[a]), imm, start, abs)
			return stepAgain
		}
	case isa.OpBle:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, int64(w.regs[d]) <= int64(w.regs[a]), imm, start, abs)
			return stepAgain
		}
	case isa.OpJmp:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.fbranchPre(r, true, imm, start, abs)
			return stepAgain
		}

	// ---- Data RAM ----
	case isa.OpAllocD:
		// Register-valued sector count: range stays dynamic.
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execAllocData(cy, r, w, d, int(int64(w.regs[a])))
		}
	case isa.OpAllocDI:
		// Sector-count range discharged when the verifier knew the RAM
		// capacity; allocation pressure (makeRoom/replay) stays dynamic.
		n := int(imm)
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execAllocData(cy, r, w, d, n)
		}
	case isa.OpDeallocD:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			c.execDeallocD(w)
			r.pc++
			return stepAgain
		}
	case isa.OpReadD:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execReadD(cy, r, w, d, w.regs[a])
		}
	case isa.OpWriteD:
		return func(c *Controller, cy sim.Cycle, r *run, w *walker) stepStatus {
			c.chargeAction()
			return c.execWriteD(cy, r, w, w.regs[d], w.regs[a])
		}
	}
	// Anything the verifier accepted but this compiler does not know is a
	// contract skew between the two; fall back to reference semantics
	// rather than guessing.
	return compileUnverified(in)
}
