// Differential fuzzer for the two microcode executors. FuzzVerify (in
// fuzz_test.go) pins "verifier acceptance implies no structural trap";
// this harness pins the stronger property the pre-decoded path depends
// on: for ANY accepted program — not just the hand-written walkers — the
// interpreter and the fast path are observationally equivalent. Fuzzed
// bytes that parse and verify are run through twin controller stacks,
// one per executor, and every terminal observable must match: response
// stream, trap record, statistics, energy meter, storage occupancy.
package ctrl_test

import (
	"testing"

	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// execOutcome is the observable closure of one bounded run.
type execOutcome struct {
	stats  ctrl.Stats
	meter  energy.Counters
	resps  []ctrl.MetaResp
	trap   *ctrl.Trap
	live   int
	free   int
	cycles sim.Cycle
}

// runExecPath executes p for a bounded number of cycles on a small
// controller pinned to the given executor backend and captures the
// outcome. The stack mirrors execAccepted's exactly.
func runExecPath(t *testing.T, p *program.Program, exec ctrl.ExecPath) execOutcome {
	t.Helper()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 2, Ways: 2, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 8, WordsPerSector: 2}, meter)
	cfg := fuzzCfg()
	cfg.Exec = exec
	c, err := ctrl.New(k, cfg, p, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		t.Fatalf("ctrl.New rejected a program Verify accepted with the same limits: %v", err)
	}
	base := img.AllocWords(64)
	for i := 0; i < 16; i++ {
		c.SetEnv(i, base)
	}
	reqs := []ctrl.MetaReq{
		{ID: 1, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}},
		{ID: 2, Op: ctrl.MetaStore, Key: metatag.Key{5, 0}, Payload: 9},
		{ID: 3, Op: ctrl.MetaStoreMerge, Key: metatag.Key{5, 0}, Payload: 4},
		{ID: 4, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}},
	}
	var out execOutcome
	sent := 0
	k.Add(sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			r, ok := c.RespQ.Pop()
			if !ok {
				break
			}
			out.resps = append(out.resps, r)
		}
		for sent < len(reqs) {
			r := reqs[sent]
			r.Issued = cy
			if !c.ReqQ.Push(r) {
				return
			}
			sent++
		}
	}))
	k.Run(20_000)
	out.stats = c.Stats()
	out.meter = *meter
	out.trap = c.Trap()
	out.live = c.Tags.Live()
	out.free = c.Data.FreeSectors()
	out.cycles = k.Cycle()
	return out
}

// diverged compares two outcomes and reports the first mismatch.
func diverged(a, b execOutcome) string {
	if a.stats != b.stats {
		return "stats"
	}
	if a.meter != b.meter {
		return "energy meter"
	}
	if len(a.resps) != len(b.resps) {
		return "response count"
	}
	for i := range a.resps {
		ra, rb := a.resps[i], b.resps[i]
		if ra.ID != rb.ID || ra.Status != rb.Status || ra.Value != rb.Value ||
			ra.Words != rb.Words || len(ra.Data) != len(rb.Data) {
			return "response"
		}
		for j := range ra.Data {
			if ra.Data[j] != rb.Data[j] {
				return "response data"
			}
		}
	}
	switch {
	case (a.trap == nil) != (b.trap == nil):
		return "trap presence"
	case a.trap != nil && *a.trap != *b.trap:
		return "trap record"
	}
	if a.live != b.live {
		return "live meta-tag entries"
	}
	if a.free != b.free {
		return "free data sectors"
	}
	if a.cycles != b.cycles {
		return "cycle count"
	}
	return ""
}

// FuzzExecDiff feeds fuzzed-but-verified programs through both executors
// and fails on any observable divergence. The seed corpus is every real
// DSA walker plus the historical panic-regression mutants; the committed
// testdata corpus adds inputs that exercise each op class.
func FuzzExecDiff(f *testing.F) {
	for _, bin := range seedBinaries(f) {
		f.Add(bin)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var pi, pf program.Program
		if err := pi.UnmarshalBinary(data); err != nil {
			return
		}
		if err := program.Verify(&pi, fuzzVerifyCfg()); err != nil {
			return
		}
		if err := pf.UnmarshalBinary(data); err != nil {
			t.Fatalf("second unmarshal of accepted bytes failed: %v", err)
		}
		oi := runExecPath(t, &pi, ctrl.ExecInterp)
		of := runExecPath(t, &pf, ctrl.ExecFast)
		if where := diverged(oi, of); where != "" {
			t.Fatalf("executors diverged at %s\ninterp: %+v\nfast:   %+v", where, oi, of)
		}
	})
}
