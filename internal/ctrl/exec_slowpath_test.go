package ctrl

// Explicit coverage for the allocation slow paths both executors share:
// makeRoom's partial-eviction behaviour against a capacity-starved
// memory queue, and the retire-and-replay path when the data RAM is
// exhausted by transient (not-yet-settled) entries that no eviction can
// reclaim. Each scenario runs through the lockstep differential pair, so
// the slow paths are simultaneously pinned for behaviour and proven
// identical across executors.

import (
	"testing"

	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// TestMakeRoomPartialEvictionWithFullMemReq drives eviction-heavy stores
// through an effectively capacity-1 memory request queue. Every victim
// is dirty, so each eviction needs a writeback slot; with at most one
// slot free at a time, makeRoom must bail out mid-sweep (its per-victim
// CanPush recheck) and the walker must stall and resume — not wedge, not
// skip the writeback.
func TestMakeRoomPartialEvictionWithFullMemReq(t *testing.T) {
	cfg := Config{NumActive: 2, NumExe: 1}
	dataCfg := dataram.Config{Sectors: 4, WordsPerSector: 4}
	// A roomy tag array (64 entries for 8 keys) keeps allocm from ever
	// evicting: the only way to free a sector is allocd's makeRoom.
	p := newDiffPair(t, cfg, storeSpec(), metatag.Config{Sets: 16, Ways: 4, KeyWords: 1}, dataCfg)
	p.ri.fillArray(16)
	p.rf.fillArray(16)
	// Capacity-1 memory queue: refuse pushes while anything is in flight.
	for _, r := range []*rig{p.ri, p.rf} {
		q := r.c.MemReq
		q.SetClog(func() bool { return q.Len() >= 1 })
	}
	// 4 stores fill the 4-sector data RAM with dirty stable entries, then
	// 4 more force one eviction (and one writeback) each.
	var reqs []diffReq
	for i := 0; i < 8; i++ {
		reqs = append(reqs, diffReq{at: sim.Cycle(i * 12), op: MetaStore,
			key: uint64(i), payload: uint64(100 + i)})
	}
	p.lockstep(t, reqs, 200000)

	st := p.ri.c.Stats()
	if st.WritebacksIssued < 4 {
		t.Fatalf("dirty evictions skipped writebacks: %d issued, want >= 4", st.WritebacksIssued)
	}
	if st.StallCycles == 0 {
		t.Fatal("capacity-1 memory queue never stalled the backend")
	}
	if st.Responses != 8 {
		t.Fatalf("responses %d, want 8", st.Responses)
	}
	if tr := p.ri.c.Trap(); tr != nil {
		t.Fatalf("slow path trapped: %v", tr)
	}
}

// transientAllocSpec allocates its data sector up front — before the
// fill round-trip — so the sector is held by a transient entry for the
// whole DRAM latency. With a sector-starved data RAM this is the shape
// that exhausts capacity with nothing evictable.
func transientAllocSpec() program.Spec {
	return program.Spec{
		Name:   "transientalloc",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				allocr r7
				allocdi r7, 1
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				li r8, 1
				update r7, r8
				enqfilli r5, 1
				state WaitFill
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				writed r7, r6
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

// TestAllocRetryWhenTransientsExhaustCapacity wedges every data sector
// behind walkers that are still waiting on (artificially slow) fills:
// the next walker's allocdi finds the pool empty AND makeRoom finds no
// stable victim, so it must take the retire-and-replay exit — releasing
// its meta-tag entry — and the replayed request must complete once the
// early walkers settle and become evictable.
func TestAllocRetryWhenTransientsExhaustCapacity(t *testing.T) {
	cfg := Config{NumActive: 4, NumExe: 1}
	dataCfg := dataram.Config{Sectors: 2, WordsPerSector: 4}
	p := newDiffPair(t, cfg, transientAllocSpec(), defaultTagCfg(), dataCfg)
	p.ri.fillArray(8)
	p.rf.fillArray(8)
	// Stretch every fill's DRAM latency so all in-flight walkers hold
	// their transient sectors simultaneously.
	for _, r := range []*rig{p.ri, p.rf} {
		r.d.Faults = faultFunc(func(resp dram.Response, c sim.Cycle) (bool, int) {
			return false, 150
		})
	}
	p.lockstep(t, []diffReq{
		{at: 0, op: MetaLoad, key: 1},
		{at: 1, op: MetaLoad, key: 2},
		{at: 2, op: MetaLoad, key: 3},
	}, 200000)

	st := p.ri.c.Stats()
	if st.AllocRetries == 0 {
		t.Fatal("transient-exhausted data RAM never took the retire-and-replay exit")
	}
	if st.Responses != 3 || st.NotFound != 0 {
		t.Fatalf("stats %+v: want 3 OK responses", st)
	}
	if tr := p.ri.c.Trap(); tr != nil {
		t.Fatalf("slow path trapped: %v", tr)
	}
	// The replayed walker's sector landed after eviction of a settled
	// entry: exactly 2 of the 3 single-sector entries can still be live.
	if live := p.ri.c.Tags.Live(); live != 2 {
		t.Fatalf("live entries %d, want 2 (one evicted for the replay)", live)
	}
}
