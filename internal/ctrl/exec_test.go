package ctrl

import (
	"fmt"
	"testing"

	"xcache/internal/dataram"
	"xcache/internal/metatag"
	"xcache/internal/program"
)

// aluSpec builds a one-routine program that computes with the spawn
// registers (r0 = payload, r1 = key) and responds with r9.
func aluSpec(body string) program.Spec {
	return program.Spec{
		Name: "alu",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: body + "\nenqresp r9, OK\nabort"},
		},
	}
}

// evalALU runs one request through the given routine body and returns the
// responded value.
func evalALU(t *testing.T, body string, key, payload uint64, env map[int]uint64) uint64 {
	t.Helper()
	r := newRig(t, Config{}, aluSpec(body), defaultTagCfg(), defaultDataCfg())
	for i, v := range env {
		r.c.SetEnv(i, v)
	}
	id := r.issue(MetaLoad, key, payload)
	resp := r.await(1)[id]
	if resp.Status != program.StatusOK {
		t.Fatalf("status %d", resp.Status)
	}
	return resp.Value
}

// TestActionSemantics exercises every AGEN/control action through real
// microcode execution, one golden case per op.
func TestActionSemantics(t *testing.T) {
	cases := []struct {
		name string
		body string
		key  uint64
		pay  uint64
		env  map[int]uint64
		want uint64
	}{
		{"add", "add r9, r1, r0", 7, 5, nil, 12},
		{"addi_neg", "addi r9, r1, -3", 10, 0, nil, 7},
		{"and", "and r9, r1, r0", 0b1100, 0b1010, nil, 0b1000},
		{"or", "or r9, r1, r0", 0b1100, 0b1010, nil, 0b1110},
		{"xor", "xor r9, r1, r0", 0b1100, 0b1010, nil, 0b0110},
		{"not", "not r9, r1", 0, 0, nil, ^uint64(0)},
		{"inc", "mov r9, r1\ninc r9", 41, 0, nil, 42},
		{"dec", "mov r9, r1\ndec r9", 43, 0, nil, 42},
		{"shl", "shl r9, r1, 4", 3, 0, nil, 48},
		{"shr", "shr r9, r1, 2", 20, 0, nil, 5},
		{"srl", "srl r9, r1, 2", 20, 0, nil, 5},
		{"sra_sign", "not r9, r0\nsra r9, r9, 8", 0, 0, nil, ^uint64(0)},
		{"mul", "mul r9, r1, r0", 6, 7, nil, 42},
		{"li", "li r9, 1234", 0, 0, nil, 1234},
		{"mov", "mov r9, r0", 0, 99, nil, 99},
		{"lde", "lde r9, e3", 0, 0, map[int]uint64{3: 777}, 777},
		{"beq_taken", "li r9, 1\nbeq r1, r0, done\nli r9, 2\ndone:", 5, 5, nil, 1},
		{"beq_nottaken", "li r9, 1\nbeq r1, r0, done\nli r9, 2\ndone:", 5, 6, nil, 2},
		{"bnz_loop", `
			mov r5, r1
			li r9, 0
		top:
			addi r9, r9, 10
			dec r5
			bnz r5, top`, 4, 0, nil, 40},
		{"blt", "li r9, 1\nblt r1, r0, d\nli r9, 0\nd:", 3, 9, nil, 1},
		{"bge", "li r9, 1\nbge r1, r0, d\nli r9, 0\nd:", 9, 3, nil, 1},
		{"ble", "li r9, 1\nble r1, r0, d\nli r9, 0\nd:", 3, 3, nil, 1},
		{"jmp", "li r9, 1\njmp d\nli r9, 0\nd:", 0, 0, nil, 1},
		{"bmiss_on_miss_path", "li r9, 0\nbmiss d\nli r9, 1\nd:", 1, 0, nil, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := evalALU(t, c.body, c.key, c.pay, c.env); got != c.want {
				t.Fatalf("got %d want %d", got, c.want)
			}
		})
	}
}

func TestBhitAfterAllocSettles(t *testing.T) {
	// A walker whose entry is still transient sees bhit not-taken.
	spec := program.Spec{
		Name: "bhit",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				li r9, 0
				bhit d
				li r9, 1      ; transient: falls through here
			d:
				enqresp r9, OK
				abort`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	id := r.issue(MetaLoad, 5, 0)
	if got := r.await(1)[id].Value; got != 1 {
		t.Fatalf("bhit on transient entry taken (got %d)", got)
	}
}

func TestEnqWbWritesDRAM(t *testing.T) {
	// The walker stores two words in the data RAM, writes them back to a
	// DSA-chosen address, and the image must contain them afterwards.
	spec := program.Spec{
		Name: "wb",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				allocdi r7, 1
				li r5, 111
				writed r7, r5
				mov r6, r7
				inc r6
				li r5, 222
				writed r6, r5
				lde r4, e2        ; writeback target address
				enqwb r4, r7, 2
				li r8, 1
				update r7, r8
				enqresp r5, OK
				halt Valid`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	dst := r.img.AllocWords(2)
	r.c.SetEnv(2, dst)
	id := r.issue(MetaLoad, 9, 0)
	r.await(1)
	_ = id
	if !r.k.RunUntil(func() bool { return r.d.Idle() }, 10000) {
		t.Fatal("writeback never drained")
	}
	if r.img.R64(dst) != 111 || r.img.R64(dst+8) != 222 {
		t.Fatalf("writeback contents: %d %d", r.img.R64(dst), r.img.R64(dst+8))
	}
	if r.c.Stats().WritebacksIssued != 1 {
		t.Fatalf("writebacks %d", r.c.Stats().WritebacksIssued)
	}
}

func TestDeallocMFreesEntryAndSectors(t *testing.T) {
	spec := program.Spec{
		Name: "dealloc",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				allocdi r7, 2
				li r8, 2
				update r7, r8
				deallocm           ; frees entry AND its sectors
				li r9, 7
				enqresp r9, OK
				abort`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	id := r.issue(MetaLoad, 3, 0)
	r.await(1)
	_ = id
	if r.c.Tags.Live() != 0 {
		t.Fatal("deallocm left a live entry")
	}
	if r.c.Data.FreeSectors() != defaultDataCfg().Sectors {
		t.Fatalf("sectors leaked: %d free", r.c.Data.FreeSectors())
	}
}

func TestPeekSpecialIndices(t *testing.T) {
	// peek -1 = message address, -2 = word count.
	spec := program.Spec{
		Name:   "peekspecial",
		States: []string{"W"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				enqfilli r4, 3
				state W`},
			{State: "W", Event: "Fill", Asm: `
				peek r5, -1        ; address
				peek r6, -2        ; word count
				add r9, r5, r6
				enqresp r9, OK
				abort`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	base := r.img.AllocWords(4)
	r.c.SetEnv(0, base)
	id := r.issue(MetaLoad, 1, 0)
	if got, want := r.await(1)[id].Value, base+3; got != want {
		t.Fatalf("peek specials: got %d want %d", got, want)
	}
}

func TestRunawayMicrocodeTraps(t *testing.T) {
	// An infinite microcode loop must not panic (PR 5): the walker traps
	// with runaway-routine, the origin still gets a NotFound response, and
	// the controller drains back to idle.
	spec := program.Spec{
		Name: "runaway",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: "top: inc r5\njmp top\nhalt Valid"},
		},
	}
	r := newRig(t, Config{MaxRoutineSteps: 64}, spec, defaultTagCfg(), defaultDataCfg())
	id := r.issue(MetaLoad, 1, 0)
	resp := r.await(1)[id]
	if resp.Status != program.StatusNotFound {
		t.Fatalf("trapped walker answered %+v, want NOTFOUND", resp)
	}
	tr := r.c.Trap()
	if tr == nil || tr.Kind != TrapRunawayRoutine {
		t.Fatalf("trap = %v, want runaway-routine", tr)
	}
	if tr.Program != "runaway" || tr.Cycle == 0 {
		t.Fatalf("trap context incomplete: %+v", tr)
	}
	if got := r.c.Stats().Traps; got != 1 {
		t.Fatalf("trap count %d, want 1", got)
	}
	r.k.Run(100)
	if !r.c.Idle() {
		t.Fatal("controller wedged after trap")
	}
}

func TestWaiterBackpressure(t *testing.T) {
	r := newRig(t, Config{MaxWaiters: 1}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(16)
	ids := []uint64{r.issue(MetaLoad, 4, 0), r.issue(MetaLoad, 4, 0), r.issue(MetaLoad, 4, 0)}
	got := r.await(3)
	for _, id := range ids {
		if got[id].Value != 47 {
			t.Fatalf("id %d: %+v", id, got[id])
		}
	}
	if r.c.Stats().FillsIssued != 1 {
		t.Fatalf("fills %d; same-key requests must not refetch", r.c.Stats().FillsIssued)
	}
}

func TestRespDataWordsCap(t *testing.T) {
	r := newRig(t, Config{RespDataWords: 2}, multiFillSpec(), defaultTagCfg(), defaultDataCfg())
	base := r.img.AllocWords(8 * 8)
	for i := 0; i < 64; i++ {
		r.img.W64(base+uint64(i)*8, uint64(i))
	}
	r.c.SetEnv(0, base)
	r.issue(MetaLoad, 1, 0)
	r.await(1)
	id := r.issue(MetaLoad, 1, 0) // hit: full 8 words, snapshot capped at 2
	resp := r.await(1)[id]
	if resp.Words != 8 {
		t.Fatalf("words %d", resp.Words)
	}
	if len(resp.Data) != 2 {
		t.Fatalf("snapshot %d words, want cap 2", len(resp.Data))
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, Stats) {
		r := newRig(t, Config{NumActive: 4}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
		r.fillArray(64)
		for i := 0; i < 40; i++ {
			r.issue(MetaLoad, uint64((i*13)%50), 0)
		}
		r.await(40)
		return uint64(r.k.Cycle()), r.c.Stats()
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("non-deterministic cycles: %d vs %d", c1, c2)
	}
	if s1 != s2 {
		t.Fatalf("non-deterministic stats:\n%+v\n%+v", s1, s2)
	}
}

func TestThreadModeSerializesOnPipelines(t *testing.T) {
	// One pipeline (#Exe=1) in thread mode: walks are fully serial.
	r := newRig(t, Config{Mode: ModeThread, NumExe: 1, NumActive: 8},
		arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(32)
	for i := 0; i < 8; i++ {
		r.issue(MetaLoad, uint64(i), 0)
	}
	r.await(8)
	if r.c.Stats().MaxFillsInFlight != 1 {
		t.Fatalf("thread mode with one pipeline overlapped fills: %d", r.c.Stats().MaxFillsInFlight)
	}
}

func TestCustomInternalEvent(t *testing.T) {
	// A walker that defers its work through enqev: spawn → raise Kick →
	// the Kick routine responds.
	spec := program.Spec{
		Name:   "kick",
		States: []string{"Waiting"},
		Events: []string{"Kick"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocr r1
				allocm
				enqev Kick
				state Waiting`},
			{State: "Waiting", Event: "Kick", Asm: `
				shl r9, r1, 1
				enqresp r9, OK
				abort`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	id := r.issue(MetaLoad, 21, 0)
	if got := r.await(1)[id].Value; got != 42 {
		t.Fatalf("custom event path: got %d", got)
	}
}

func TestAbortFreesAllocatedSectors(t *testing.T) {
	spec := program.Spec{
		Name: "abortfree",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				allocdi r7, 3
				li r8, 3
				update r7, r8
				li r9, 0
				enqresp r9, NOTFOUND
				abort`},
		},
	}
	r := newRig(t, Config{}, spec, defaultTagCfg(), defaultDataCfg())
	for i := 0; i < 10; i++ {
		r.issue(MetaLoad, uint64(i), 0)
		r.await(1)
	}
	if r.c.Data.FreeSectors() != defaultDataCfg().Sectors {
		t.Fatalf("abort leaked sectors: %d free of %d",
			r.c.Data.FreeSectors(), defaultDataCfg().Sectors)
	}
	if r.c.Tags.Live() != 0 {
		t.Fatal("abort leaked entries")
	}
}

func TestPlainStoreOverwritesOnHit(t *testing.T) {
	r := newRig(t, Config{}, storeSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	r.issue(MetaStore, 2, 50)
	r.await(1)
	r.issue(MetaStore, 2, 60) // hit: plain store overwrites
	r.await(1)
	id := r.issue(MetaLoad, 2, 0)
	if got := r.await(1)[id].Value; got != 60 {
		t.Fatalf("store-overwrite: got %d want 60", got)
	}
}

func TestStoreMergeMinKeepsMinimum(t *testing.T) {
	r := newRig(t, Config{}, storeSpec(), defaultTagCfg(), defaultDataCfg())
	r.fillArray(8)
	r.issue(MetaStoreMergeMin, 4, 9)
	r.await(1)
	r.issue(MetaStoreMergeMin, 4, 3) // smaller: kept
	r.await(1)
	r.issue(MetaStoreMergeMin, 4, 7) // larger: ignored
	r.await(1)
	id := r.issue(MetaLoad, 4, 0)
	if got := r.await(1)[id].Value; got != 3 {
		t.Fatalf("min-merge kept %d, want 3", got)
	}
	if r.c.Stats().FillsIssued != 0 {
		t.Fatal("min-merge touched DRAM")
	}
}

func TestManyKeysStress(t *testing.T) {
	// Churn far beyond capacity; every response must still be correct.
	r := newRig(t, Config{NumActive: 16, NumExe: 4}, arrayWalkSpec(),
		metatag.Config{Sets: 4, Ways: 2, KeyWords: 1},
		dataram.Config{Sectors: 16, WordsPerSector: 4})
	r.fillArray(200)
	const n = 400
	issued := 0
	got := 0
	bad := 0
	if !r.k.RunUntil(func() bool {
		for issued < n {
			key := uint64((issued * 7) % 200)
			req := MetaReq{ID: uint64(issued), Op: MetaLoad, Key: metatag.Key{key, 0}, Issued: r.k.Cycle()}
			if !r.c.ReqQ.Push(req) {
				break
			}
			issued++
		}
		for {
			resp, ok := r.c.RespQ.Pop()
			if !ok {
				break
			}
			key := (resp.ID * 7) % 200
			if resp.Value != uint64(10*key+7) {
				bad++
			}
			got++
		}
		return got == n
	}, 2_000_000) {
		t.Fatalf("stress run stalled at %d/%d (stats %+v)", got, n, r.c.Stats())
	}
	if bad != 0 {
		t.Fatalf("%d wrong responses under churn", bad)
	}
	r.k.Run(100)
	if !r.c.Idle() {
		t.Fatal("controller not idle after stress")
	}
}

func TestStatsStringers(t *testing.T) {
	var s Stats
	if s.AvgLoadToUse() != 0 || s.AvgHitLoadToUse() != 0 || s.HitRate() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
	s.L2USum, s.L2UCount = 10, 2
	s.Hits, s.Misses = 3, 1
	if s.AvgLoadToUse() != 5 || s.HitRate() != 0.75 {
		t.Fatalf("stats math: %+v", s)
	}
	_ = fmt.Sprintf("%+v", s)
}
