// Fuzz harness for the verifier/trap contract. It lives in an external
// test package so it can import the real DSA walker programs as the seed
// corpus without an import cycle.
package ctrl_test

import (
	"testing"

	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/energy"
	"xcache/internal/isa"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// fuzzCfg is the small controller instance accepted programs execute
// against. The verifier runs with exactly these limits, so acceptance
// must imply the absence of every statically-guaranteed trap kind.
func fuzzCfg() ctrl.Config {
	return ctrl.Config{NumActive: 2, NumExe: 1, NumXRegs: 8,
		MaxFillWords: 4, MaxRoutineSteps: 32}
}

func fuzzVerifyCfg() program.VerifyConfig {
	return program.VerifyConfig{NumXRegs: 8, MaxFillWords: 4,
		MaxRoutineSteps: 32, DataSectors: 8, EnvSlots: 16}
}

// seedBinaries marshals every real walker program, plus mutated variants
// that historically panicked, as the corpus.
func seedBinaries(f *testing.F) [][]byte {
	var bins [][]byte
	for _, s := range []program.Spec{
		widx.Spec(56), dasx.Spec(56), spgemm.Spec(), graphpulse.Spec(), btreeidx.Spec(),
	} {
		p, err := s.Compile()
		if err != nil {
			f.Fatal(err)
		}
		bin, err := p.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		bins = append(bins, bin)
		// The regression class: corrupt one immediate to a negative peek.
		for pc, in := range p.Code {
			if in.Op == isa.OpPeek && in.Imm >= 0 {
				p.Code[pc].Imm = -3
				if mut, err := p.MarshalBinary(); err == nil {
					bins = append(bins, mut)
				}
				p.Code[pc].Imm = in.Imm
				break
			}
		}
	}
	return bins
}

// FuzzVerify pins the three-layer contract:
//
//  1. UnmarshalBinary never panics on arbitrary bytes;
//  2. Verify never panics on any program that parses;
//  3. accepts-implies-no-structural-trap: executing an accepted program
//     against a controller with the same limits never raises a trap kind
//     the verifier claims to guarantee absent (illegal-op, reg-oob,
//     imm-range), and never panics.
//
// Runtime-only kinds (peek-oob on a short message, register-valued fill
// sizes and data-RAM addresses, runaway loops, missing transitions,
// duplicate allocm) are legal outcomes — the trap model's job.
func FuzzVerify(f *testing.F) {
	for _, bin := range seedBinaries(f) {
		f.Add(bin)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var p program.Program
		if err := p.UnmarshalBinary(data); err != nil {
			return
		}
		if err := program.Verify(&p, fuzzVerifyCfg()); err != nil {
			return
		}
		execAccepted(t, &p)
	})
}

// execAccepted runs a verifier-accepted program on a small live
// controller for a bounded number of cycles.
func execAccepted(t *testing.T, p *program.Program) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 2, Ways: 2, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 8, WordsPerSector: 2}, meter)
	c, err := ctrl.New(k, fuzzCfg(), p, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		t.Fatalf("ctrl.New rejected a program Verify accepted with the same limits: %v", err)
	}
	base := img.AllocWords(64)
	for i := 0; i < 16; i++ {
		c.SetEnv(i, base)
	}
	reqs := []ctrl.MetaReq{
		{ID: 1, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}},
		{ID: 2, Op: ctrl.MetaStore, Key: metatag.Key{5, 0}, Payload: 9},
		{ID: 3, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}},
	}
	sent := 0
	k.Add(sim.ComponentFunc(func(cy sim.Cycle) {
		for sent < len(reqs) {
			r := reqs[sent]
			r.Issued = cy
			if !c.ReqQ.Push(r) {
				return
			}
			sent++
		}
	}))
	k.Run(20_000)
	if tr := c.Trap(); tr != nil {
		switch tr.Kind {
		case ctrl.TrapIllegalOp, ctrl.TrapRegOOB, ctrl.TrapImmRange:
			t.Fatalf("statically-guaranteed trap escaped the verifier: %v", tr)
		}
	}
}
