package ctrl

import "xcache/internal/metatag"

// TraceKind labels one observable controller event on the meta-tag
// reference path. The stream of TraceEvents a run emits is exactly the
// sequence of meta-tag array operations in donor time order, which is
// what lets internal/approx replay it against alternative cache
// geometries (one-pass multi-configuration tag simulation) with the
// guarantee that replaying against the donor's own geometry reproduces
// its hit/miss counts bit-exactly.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceReq is one admitted meta request: a datapath request consumed
	// from ReqQ, or (Replay=true) a merged waiter re-admitted from the
	// replay queue after its walker settled.
	TraceReq TraceKind = iota
	// TraceAlloc is a walker's allocm: the key's meta-tag entry was
	// allocated (in the walker's pre-settle state).
	TraceAlloc
	// TraceSettle is a walker halt: its entry (if any) became stable and
	// hit-serviceable.
	TraceSettle
	// TraceDealloc is an explicit deallocm of the walker's entry.
	TraceDealloc
	// TraceAbort is a walker abort: the walk ended without a stable
	// entry (not-found on the reference path).
	TraceAbort
	// TraceAllocRetry is an allocm/allocd conflict: the walker retired
	// and its origin request was pushed back to replay. Captures for
	// approximate replay reject traces containing these (the request is
	// re-admitted and double-classified).
	TraceAllocRetry
	// TraceDrain and TraceFlush are the bulk stable-entry removals
	// (GraphPulse superstep pops, DASX round flushes).
	TraceDrain
	TraceFlush
)

// ReqClass is the front-end's classification of an admitted request.
type ReqClass uint8

// Request classifications. They mirror the Stats accounting exactly:
// ClassHit increments Hits, ClassMiss increments Misses, ClassMerge
// increments neither (a merged waiter is re-admitted — and then
// classified — after its walker settles, or answered directly when the
// walk ends not-found).
const (
	ClassHit ReqClass = iota
	ClassMerge
	ClassMiss
)

// TraceEvent is one controller trace record. Field validity depends on
// Kind: Class/Op/ID/Replay are set for TraceReq; State for TraceAlloc;
// Store/HasEntry for TraceSettle; Key for everything except
// TraceDrain/TraceFlush.
type TraceEvent struct {
	Kind     TraceKind
	Class    ReqClass
	Op       MetaOp
	ID       uint64
	Key      metatag.Key
	State    int
	Replay   bool
	Store    bool
	HasEntry bool
}

// TraceSink receives controller trace events in emission order. A sink
// must not mutate controller state; it is called synchronously from the
// simulation loop.
type TraceSink interface {
	Trace(TraceEvent)
}

// SetTraceSink installs (or, with nil, removes) the controller's trace
// sink. With no sink attached the reference path pays only a nil check
// per admitted request.
func (c *Controller) SetTraceSink(s TraceSink) { c.sink = s }

// trace forwards ev to the sink, if any.
func (c *Controller) trace(ev TraceEvent) {
	if c.sink != nil {
		c.sink.Trace(ev)
	}
}
