package ctrl

import (
	"fmt"

	"xcache/internal/isa"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// TrapKind classifies structural microcode faults: a routine (or a
// bit-flipped microcode word) asked the hardware for something it cannot
// do. A trap is a property of the loaded program, not of the simulator —
// the controller quiesces the offending walker and keeps running, and the
// fault surfaces through check.Failure/runner.RunError as kind "trap".
type TrapKind int

// The trap taxonomy.
const (
	// TrapIllegalOp: undefined opcode, or the program counter escaped the
	// microcode RAM (a branch past a routine's end).
	TrapIllegalOp TrapKind = iota + 1
	// TrapRegOOB: a register operand indexes beyond the X-register file.
	TrapRegOOB
	// TrapImmRange: an immediate outside its operand's domain (state,
	// event, or environment-slot number).
	TrapImmRange
	// TrapPeekOOB: a message peek beyond the waking message's words.
	TrapPeekOOB
	// TrapFillOverflow: a DRAM fill or writeback outside [1, MaxFillWords].
	TrapFillOverflow
	// TrapMisalignedUpdate: update with no allocated meta-tag entry, or a
	// sector base that is not sector aligned.
	TrapMisalignedUpdate
	// TrapRunawayRoutine: a routine exceeded MaxRoutineSteps actions.
	TrapRunawayRoutine
	// TrapMissingTransition: a walker was woken for a (state, event) pair
	// with no routine in the table.
	TrapMissingTransition
	// TrapAllocOverflow: a duplicate allocm, or a data-RAM allocation of
	// ≤0 sectors or more sectors than the RAM holds.
	TrapAllocOverflow
	// TrapDataOOB: a register-addressed data-RAM access (readd, writed,
	// enqwb, update sector range) outside the RAM.
	TrapDataOOB
)

// String names the kind in the kebab-case used by JSON failure records.
func (k TrapKind) String() string {
	switch k {
	case TrapIllegalOp:
		return "illegal-op"
	case TrapRegOOB:
		return "reg-oob"
	case TrapImmRange:
		return "imm-range"
	case TrapPeekOOB:
		return "peek-oob"
	case TrapFillOverflow:
		return "fill-overflow"
	case TrapMisalignedUpdate:
		return "misaligned-update"
	case TrapRunawayRoutine:
		return "runaway-routine"
	case TrapMissingTransition:
		return "missing-transition"
	case TrapAllocOverflow:
		return "alloc-overflow"
	case TrapDataOOB:
		return "data-oob"
	}
	return fmt.Sprintf("trap(%d)", int(k))
}

// Trap is the typed error raised when microcode faults structurally. The
// offending walker is quiesced — its entry and sectors released, its
// outstanding fills drained and discarded, its origin and merged waiters
// answered NotFound — so the machine never wedges and never panics on a
// bad program. The first trap is retained; later traps only count.
type Trap struct {
	Kind    TrapKind
	Program string
	Walker  int32
	State   string // walker state name at the fault
	Event   string // event that woke the faulting routine
	PC      int32  // absolute microcode index, -1 outside routine execution
	Op      isa.Op
	Cycle   sim.Cycle
	Detail  string
}

// Error implements error.
func (t *Trap) Error() string {
	loc := fmt.Sprintf("[%s, %s]", t.State, t.Event)
	if t.PC >= 0 {
		loc += fmt.Sprintf(" pc %d (%s)", t.PC, t.Op.Name())
	}
	return fmt.Sprintf("ctrl: trap %s in program %s %s walker %d @ cycle %d: %s",
		t.Kind, t.Program, loc, t.Walker, t.Cycle, t.Detail)
}

// SpecBug is the typed panic value for the asserts that remain panics: a
// violated simulator-internal contract (e.g. a fill addressed to a freed
// walker, a walker finishing with fills outstanding) is a bug in this
// package, not in the loaded program, so it must fail loudly rather than
// degrade into a trap.
type SpecBug struct{ Msg string }

// Error implements error so recovered values render cleanly.
func (b *SpecBug) Error() string { return "ctrl spec bug: " + b.Msg }

func specBug(format string, args ...any) {
	panic(&SpecBug{Msg: fmt.Sprintf(format, args...)})
}

// Trap returns the first trap raised since the program was loaded, or nil.
func (c *Controller) Trap() *Trap { return c.trap }

// ClearTrap discards the latched trap and returns it, re-arming trap
// capture without reloading the program. The machine is already healthy —
// raise() quiesced the offending walker when the trap fired — so this is
// the reset hook for supervisors (internal/serve's circuit breaker) that
// drain a controller after a trap and then resume feeding it. Stats.Traps
// keeps its cumulative count.
func (c *Controller) ClearTrap() *Trap {
	t := c.trap
	c.trap = nil
	return t
}

// trapStep raises a trap from the back-end executor: the action at r.pc
// faulted. It quiesces the walker and retires the routine (stepDone).
func (c *Controller) trapStep(cy sim.Cycle, r *run, w *walker, kind TrapKind, detail string) stepStatus {
	var op isa.Op
	if r.pc >= 0 && int(r.pc) < len(c.Prog.Code) {
		op = c.Prog.Code[r.pc].Op
	}
	c.raise(cy, w, kind, r.pc, op, detail)
	return stepDone
}

// raise records the trap (first one wins) and quiesces the walker.
func (c *Controller) raise(cy sim.Cycle, w *walker, kind TrapKind, pc int32, op isa.Op, detail string) {
	if c.trap == nil {
		t := &Trap{Kind: kind, Program: c.Prog.Name, Walker: w.id, PC: pc, Op: op, Cycle: cy, Detail: detail}
		if w.state >= 0 && w.state < len(c.Prog.StateNames) {
			t.State = c.Prog.StateNames[w.state]
		} else {
			t.State = fmt.Sprintf("state%d", w.state)
		}
		if w.msg.event >= 0 && w.msg.event < len(c.Prog.EventNames) {
			t.Event = c.Prog.EventNames[w.msg.event]
		} else {
			t.Event = fmt.Sprintf("event%d", w.msg.event)
		}
		c.trap = t
	}
	c.stats.Traps++
	c.quiesce(w)
}

// quiesce retires a faulted walker without wedging anything: the meta-tag
// entry and data sectors are released (so no stale transient entry blocks
// the key forever), the thread pipeline is freed, and every request parked
// on the walker is answered NotFound through the deferred-response list
// (the response queue may be full mid-cycle). If DRAM fills are
// outstanding the walker context stays allocated in a trapped state until
// acceptFills drains them — their data is discarded — and only then
// returns to the free list.
func (c *Controller) quiesce(w *walker) {
	w.running = false
	w.trapped = true
	w.pending = nil
	if w.entry != nil {
		if w.entry.SectorCount > 0 {
			c.Data.Free(w.entry.SectorBase, w.entry.SectorCount)
		}
		c.Tags.Dealloc(w.entry)
		w.entry = nil
	}
	if w.pipeline >= 0 {
		c.pipes[w.pipeline] = -1
		w.pipeline = -1
	}
	if !w.responded {
		c.trapResps = append(c.trapResps, MetaResp{ID: w.origin.ID, Status: program.StatusNotFound})
	}
	for _, waiter := range w.waiters {
		c.trapResps = append(c.trapResps, MetaResp{ID: waiter.ID, Status: program.StatusNotFound})
	}
	w.waiters = nil
	if w.fills == 0 {
		c.freeTrapped(w)
	}
}

// freeTrapped returns a fully-drained trapped walker to the free list.
func (c *Controller) freeTrapped(w *walker) {
	w.active = false
	w.trapped = false
	c.freeW = append(c.freeW, w.id)
}

// flushTrapResps delivers deferred NotFound responses for quiesced
// walkers as response-queue space allows.
func (c *Controller) flushTrapResps() {
	for len(c.trapResps) > 0 && c.RespQ.CanPush() {
		c.RespQ.MustPush(c.trapResps[0])
		c.trapResps = c.trapResps[1:]
		c.stats.Responses++
		c.stats.NotFound++
	}
}
