package ctrl

import (
	"errors"
	"strings"
	"testing"

	"xcache/internal/isa"
	"xcache/internal/program"
)

// respondSpec answers every miss immediately; its routine is the mutation
// target for the statically-rejectable trap kinds.
func respondSpec() program.Spec {
	return program.Spec{
		Name: "respond",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: "li r9, 0\nallocm\nenqresp r9, OK\nabort"},
		},
	}
}

// fillSpec issues a 1-word fill and runs body on the Fill wake.
func fillSpec(body string) program.Spec {
	return program.Spec{
		Name:   "filltrap",
		States: []string{"W"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				enqfilli r4, 1
				state W`},
			{State: "W", Event: "Fill", Asm: body},
		},
	}
}

// metaLoadStart locates the (Default, MetaLoad) routine entry point.
func metaLoadStart(t *testing.T, p *program.Program) int32 {
	t.Helper()
	pc, ok := p.Lookup(program.StateInvalid, program.EvMetaLoad)
	if !ok {
		t.Fatal("no MetaLoad routine")
	}
	return pc
}

// TestTrapMatrix drives every TrapKind through a live controller and
// asserts the uniform quiesce contract: the origin request is answered
// NotFound, the trap records the right kind, the controller drains back
// to idle (nothing wedges, no watchdog would fire), and the machine keeps
// serving requests afterwards.
//
// Kinds the load-time verifier would reject (illegal-op, reg-oob,
// imm-range) are provoked by mutating the already-loaded program —
// modelling a bit-flipped microcode word — to prove the runtime backstop
// stands on its own.
func TestTrapMatrix(t *testing.T) {
	cases := []struct {
		name   string
		kind   TrapKind
		cfg    Config
		spec   program.Spec
		mutate func(t *testing.T, p *program.Program)
		env    bool // point e0 at a mapped DRAM word
	}{
		{name: "illegal_op", kind: TrapIllegalOp, spec: respondSpec(),
			mutate: func(t *testing.T, p *program.Program) {
				p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.Op(60)}
			}},
		{name: "pc_escape", kind: TrapIllegalOp, spec: respondSpec(),
			mutate: func(t *testing.T, p *program.Program) {
				p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpJmp, Imm: 3000}
			}},
		{name: "reg_oob", kind: TrapRegOOB, spec: respondSpec(),
			mutate: func(t *testing.T, p *program.Program) {
				p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpInc, Dst: 25}
			}},
		{name: "imm_range_env", kind: TrapImmRange, spec: respondSpec(),
			mutate: func(t *testing.T, p *program.Program) {
				p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpLde, Dst: 4, Imm: 20}
			}},
		{name: "imm_range_state", kind: TrapImmRange, spec: respondSpec(),
			mutate: func(t *testing.T, p *program.Program) {
				p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpState, Imm: 99}
			}},
		{name: "peek_oob", kind: TrapPeekOOB, env: true,
			// The fill returned 1 word; peek 3 passes the verifier (which
			// bounds peeks by MaxFillWords) but overruns the live message.
			spec: fillSpec("peek r5, 3\nenqresp r5, OK\nabort")},
		{name: "fill_overflow", kind: TrapFillOverflow, spec: program.Spec{
			Name: "bigfill",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					allocm
					li r5, 100
					enqfill r4, r5
					halt Valid`},
			}}},
		{name: "misaligned_update", kind: TrapMisalignedUpdate, spec: program.Spec{
			Name: "misalign",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					allocm
					allocdi r7, 1
					inc r7
					li r8, 1
					update r7, r8
					enqresp r8, OK
					halt Valid`},
			}}},
		{name: "update_without_allocm", kind: TrapMisalignedUpdate, spec: program.Spec{
			Name: "noentry",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					li r7, 0
					li r8, 1
					update r7, r8
					enqresp r8, OK
					abort`},
			}}},
		{name: "runaway_routine", kind: TrapRunawayRoutine,
			cfg: Config{MaxRoutineSteps: 64}, spec: program.Spec{
				Name: "runaway",
				Transitions: []program.Transition{
					{State: "Default", Event: "MetaLoad", Asm: "top: inc r5\njmp top\nhalt Valid"},
				}}},
		{name: "missing_transition", kind: TrapMissingTransition, env: true,
			// State W only handles the custom Kick event; the fill's wake
			// finds no (W, Fill) routine.
			spec: program.Spec{
				Name:   "nofill",
				States: []string{"W"},
				Events: []string{"Kick"},
				Transitions: []program.Transition{
					{State: "Default", Event: "MetaLoad", Asm: `
						allocm
						lde r4, e0
						enqfilli r4, 1
						state W`},
					{State: "W", Event: "Kick", Asm: "li r9, 0\nenqresp r9, OK\nabort"},
				}}},
		{name: "alloc_overflow_duplicate_allocm", kind: TrapAllocOverflow, spec: program.Spec{
			Name: "dupalloc",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					allocm
					allocm
					enqresp r9, OK
					abort`},
			}}},
		{name: "alloc_overflow_capacity", kind: TrapAllocOverflow, spec: program.Spec{
			Name: "bigalloc",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					allocm
					li r5, 10000
					allocd r7, r5
					enqresp r7, OK
					abort`},
			}}},
		{name: "data_oob", kind: TrapDataOOB, spec: program.Spec{
			Name: "wild",
			Transitions: []program.Transition{
				{State: "Default", Event: "MetaLoad", Asm: `
					allocm
					li r6, 30000
					li r5, 1
					writed r6, r5
					enqresp r5, OK
					abort`},
			}}},
	}
	execPaths := []struct {
		name string
		exec ExecPath
	}{{"interp", ExecInterp}, {"fast", ExecFast}}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			paths := execPaths
			if c.mutate != nil {
				// Post-load mutation models a bit-flipped microcode word.
				// The pre-decoded table compiled the pristine words, so the
				// flip is invisible there — the runtime-backstop claim is
				// interpreter-only, and TestTrapMatrixFastPathDischarge pins
				// what the fast path does with these words instead.
				paths = paths[:1]
			}
			traps := make(map[string]*Trap)
			for _, p := range paths {
				t.Run(p.name, func(t *testing.T) {
					cfg := c.cfg
					cfg.Exec = p.exec
					r := newRig(t, cfg, c.spec, defaultTagCfg(), defaultDataCfg())
					if c.mutate != nil {
						c.mutate(t, r.c.Prog)
					}
					if c.env {
						base := r.img.AllocWords(4)
						r.c.SetEnv(0, base)
					}
					id := r.issue(MetaLoad, 1, 0)
					resp := r.await(1)[id]
					if resp.Status != program.StatusNotFound {
						t.Fatalf("trapped walker answered %+v, want NOTFOUND", resp)
					}
					tr := r.c.Trap()
					if tr == nil {
						t.Fatal("no trap recorded")
					}
					if tr.Kind != c.kind {
						t.Fatalf("trap kind %s, want %s (%v)", tr.Kind, c.kind, tr)
					}
					if !strings.Contains(tr.Error(), c.kind.String()) {
						t.Fatalf("trap error %q missing kind name", tr.Error())
					}
					// The walker quiesced: the controller drains to idle instead of
					// wedging (a watchdog would stay silent — progress never stops).
					r.k.Run(200)
					if !r.c.Idle() {
						t.Fatalf("controller wedged after trap: %v", r.c.Diagnose())
					}
					if r.c.Tags.Live() != 0 {
						t.Fatal("trap leaked a live meta-tag entry")
					}
					// The machine still serves requests after the trap.
					id2 := r.issue(MetaLoad, 2, 0)
					if _, ok := r.await(1)[id2]; !ok {
						t.Fatal("no response after trap")
					}
					if r.c.Stats().Traps == 0 {
						t.Fatal("trap not counted")
					}
					traps[p.name] = tr
				})
			}
			// Trap parity: a dynamically-reachable kind must fault
			// identically on both executors — same kind, same pc, same
			// faulting op, same context, same rendered detail.
			ti, tf := traps["interp"], traps["fast"]
			if ti == nil || tf == nil {
				return
			}
			if *ti != *tf {
				t.Fatalf("executor trap divergence:\ninterp: %+v\nfast:   %+v", *ti, *tf)
			}
		})
	}
}

// TestTrapMatrixFastPathDischarge proves the flip side of the mutation
// cases above: the kinds the verifier discharges statically (illegal op,
// pc escape via a branch immediate, register bounds, lde/state immediate
// ranges) are *unreachable* on the pre-decoded path. The same post-load
// word flips that trap the interpreter leave the fast path executing the
// pristine pre-decoded closures: every request completes normally and no
// trap is raised.
func TestTrapMatrixFastPathDischarge(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(t *testing.T, p *program.Program)
	}{
		{"illegal_op", func(t *testing.T, p *program.Program) {
			p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.Op(60)}
		}},
		{"pc_escape", func(t *testing.T, p *program.Program) {
			p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpJmp, Imm: 3000}
		}},
		{"reg_oob", func(t *testing.T, p *program.Program) {
			p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpInc, Dst: 25}
		}},
		{"imm_range_env", func(t *testing.T, p *program.Program) {
			p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpLde, Dst: 4, Imm: 20}
		}},
		{"imm_range_state", func(t *testing.T, p *program.Program) {
			p.Code[metaLoadStart(t, p)] = isa.Instr{Op: isa.OpState, Imm: 99}
		}},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			r := newRig(t, Config{Exec: ExecFast}, respondSpec(), defaultTagCfg(), defaultDataCfg())
			m.mutate(t, r.c.Prog)
			id := r.issue(MetaLoad, 1, 0)
			resp := r.await(1)[id]
			if resp.Status != program.StatusOK {
				t.Fatalf("discharged path answered %+v, want OK", resp)
			}
			if tr := r.c.Trap(); tr != nil {
				t.Fatalf("statically-discharged kind reached the fast path: %v", tr)
			}
			if r.c.Stats().Traps != 0 {
				t.Fatal("trap counted on the discharged path")
			}
		})
	}
}

// TestTrapMalformedBinaryRegression pins the fuzz-found crash class that
// motivated PR 5: a binary whose Fill routine peeks a negative slot other
// than the -1/-2 pseudo-slots used to drive a raw negative slice index —
// a panic — straight through the executor. Now the verifier rejects the
// binary at load, and the runtime backstop (for a word corrupted after
// load) raises a typed peek-oob trap instead of panicking.
func TestTrapMalformedBinaryRegression(t *testing.T) {
	spec := fillSpec("peek r5, 0\nenqresp r5, OK\nabort")
	p, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the peek slot to -3 and round-trip through the binary
	// format, exactly as a fuzzed .xbin would arrive.
	for pc, in := range p.Code {
		if in.Op == isa.OpPeek {
			p.Code[pc].Imm = -3
		}
	}
	bin, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q program.Program
	if err := q.UnmarshalBinary(bin); err != nil {
		t.Fatal(err)
	}

	// Layer 1: the verifier rejects the binary at load...
	verr := program.Verify(&q, program.DefaultVerifyConfig())
	if verr == nil {
		t.Fatal("verifier accepted the malformed binary")
	}
	var ve *program.VerifyError
	if !errors.As(verr, &ve) || !strings.Contains(ve.Reason, "peek") {
		t.Fatalf("wrong rejection: %v", verr)
	}
	// ...so LoadProgram refuses it end-to-end.
	r := newRig(t, Config{}, fillSpec("peek r5, 0\nenqresp r5, OK\nabort"),
		defaultTagCfg(), defaultDataCfg())
	if err := r.c.LoadProgram(&q); err == nil {
		t.Fatal("LoadProgram accepted the malformed binary")
	}

	// Layer 2: even with the verifier bypassed (word corrupted after
	// load), the interpreter traps instead of panicking. The interpreter
	// is pinned here because only it re-decodes the corrupted word; the
	// fast path's behaviour on the same corruption is layer 3.
	ri := newRig(t, Config{Exec: ExecInterp}, fillSpec("peek r5, 0\nenqresp r5, OK\nabort"),
		defaultTagCfg(), defaultDataCfg())
	for pc, in := range ri.c.Prog.Code {
		if in.Op == isa.OpPeek {
			ri.c.Prog.Code[pc].Imm = -3
		}
	}
	base := ri.img.AllocWords(4)
	ri.c.SetEnv(0, base)
	id := ri.issue(MetaLoad, 1, 0)
	resp := ri.await(1)[id]
	if resp.Status != program.StatusNotFound {
		t.Fatalf("got %+v, want NOTFOUND", resp)
	}
	if tr := ri.c.Trap(); tr == nil || tr.Kind != TrapPeekOOB {
		t.Fatalf("trap = %v, want peek-oob", ri.c.Trap())
	}

	// Layer 3: the pre-decoded path compiled the pristine peek slot, so
	// the post-load corruption is discharged — the walker completes with
	// the original semantics and no trap.
	rf := newRig(t, Config{Exec: ExecFast}, fillSpec("peek r5, 0\nenqresp r5, OK\nabort"),
		defaultTagCfg(), defaultDataCfg())
	for pc, in := range rf.c.Prog.Code {
		if in.Op == isa.OpPeek {
			rf.c.Prog.Code[pc].Imm = -3
		}
	}
	base = rf.img.AllocWords(4)
	rf.c.SetEnv(0, base)
	id = rf.issue(MetaLoad, 1, 0)
	respf := rf.await(1)[id]
	if respf.Status != program.StatusOK {
		t.Fatalf("discharged peek answered %+v, want OK", respf)
	}
	if tr := rf.c.Trap(); tr != nil {
		t.Fatalf("discharged corruption reached the fast path: %v", tr)
	}
}

// TestLoadProgramSwapsAndReverifies pins the dynamic-reload path: a good
// program swaps in (clearing any previous trap), a bad one is rejected
// and leaves the current program in place.
func TestLoadProgramSwapsAndReverifies(t *testing.T) {
	r := newRig(t, Config{}, arrayWalkSpec(), defaultTagCfg(), defaultDataCfg())
	good, err := respondSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.c.LoadProgram(good); err != nil {
		t.Fatal(err)
	}
	if r.c.Prog.Name != "respond" {
		t.Fatal("program not swapped")
	}
	bad, err := respondSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	bad.Code[0] = isa.Instr{Op: isa.Op(60)}
	if err := r.c.LoadProgram(bad); err == nil {
		t.Fatal("LoadProgram accepted a bad program")
	}
	if r.c.Prog.Name != "respond" || r.c.Prog.Code[0].Op == isa.Op(60) {
		t.Fatal("rejected load clobbered the running program")
	}
}

// TestSpecBugPanicsStayPanics pins that the simulator-contract asserts
// remain loud: a fill addressed to an inactive walker is a bug in this
// package, not a program fault, and must panic with a typed SpecBug.
func TestSpecBugPanicsStayPanics(t *testing.T) {
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected SpecBug panic")
		}
		if _, ok := rec.(*SpecBug); !ok {
			t.Fatalf("panic value %T, want *SpecBug", rec)
		}
	}()
	specBug("synthetic contract violation %d", 7)
}
