// Package dataram implements the banked, sector-organized data RAM of
// §4.1 y6. The RAM is logically an array of fixed-granularity sectors;
// each cached element occupies a contiguous run of sectors (the meta-tag
// entry stores the start pointer and count, like a decoupled sector
// cache). Banking is represented by a per-cycle word bandwidth the
// controller enforces; this package provides storage, allocation and
// energy accounting.
package dataram

import (
	"fmt"

	"xcache/internal/energy"
)

// Config sets the RAM geometry.
type Config struct {
	Sectors        int // total sectors
	WordsPerSector int // #wlen: words striped across banks per sector
	Banks          int // physical banks (= words deliverable per cycle)
}

// Stats counts RAM activity.
type Stats struct {
	WordReads   uint64
	WordWrites  uint64
	SectorAlloc uint64
	SectorFree  uint64
	AllocFails  uint64
}

// RAM is the data store.
type RAM struct {
	Cfg   Config
	words []uint64
	used  []bool // per sector
	free  int
	stats Stats
	Meter *energy.Counters
	// firstFree is a scan hint for the first-fit allocator.
	firstFree int
}

// New builds the RAM.
func New(cfg Config, meter *energy.Counters) *RAM {
	if cfg.Sectors <= 0 || cfg.WordsPerSector <= 0 {
		panic(fmt.Sprintf("dataram: bad geometry %+v", cfg))
	}
	if cfg.Banks <= 0 {
		cfg.Banks = cfg.WordsPerSector
	}
	return &RAM{
		Cfg:   cfg,
		words: make([]uint64, cfg.Sectors*cfg.WordsPerSector),
		used:  make([]bool, cfg.Sectors),
		free:  cfg.Sectors,
		Meter: meter,
	}
}

// Stats returns a copy of lifetime stats.
func (r *RAM) Stats() Stats { return r.stats }

// FreeSectors reports unallocated sectors.
func (r *RAM) FreeSectors() int { return r.free }

// Words returns total word capacity.
func (r *RAM) Words() int { return len(r.words) }

// Bytes returns the RAM capacity in bytes.
func (r *RAM) Bytes() int { return len(r.words) * 8 }

// Alloc reserves a contiguous run of n sectors (first fit) and returns the
// starting sector index. ok is false when no run is available; the walker
// retries after evictions free space.
func (r *RAM) Alloc(n int) (base int32, ok bool) {
	if n <= 0 {
		panic(fmt.Sprintf("dataram: alloc %d sectors", n))
	}
	if n > r.free {
		r.stats.AllocFails++
		return 0, false
	}
	run := 0
	start := 0
	for i := r.firstFree; i < r.Cfg.Sectors; i++ {
		if r.used[i] {
			run = 0
			continue
		}
		if run == 0 {
			start = i
		}
		run++
		if run == n {
			for j := start; j < start+n; j++ {
				r.used[j] = true
			}
			r.free -= n
			r.stats.SectorAlloc += uint64(n)
			if start == r.firstFree {
				r.firstFree = start + n
			}
			return int32(start), true
		}
	}
	// Wrap: retry the scan from 0 once (hint may have skipped freed runs).
	if r.firstFree != 0 {
		r.firstFree = 0
		return r.Alloc(n)
	}
	r.stats.AllocFails++
	return 0, false
}

// Free releases a run allocated by Alloc.
func (r *RAM) Free(base int32, n int32) {
	for i := base; i < base+n; i++ {
		if !r.used[i] {
			panic(fmt.Sprintf("dataram: double free of sector %d", i))
		}
		r.used[i] = false
	}
	r.free += int(n)
	r.stats.SectorFree += uint64(n)
	if int(base) < r.firstFree {
		r.firstFree = int(base)
	}
}

// Read returns the word at word index w, charging data-RAM energy.
func (r *RAM) Read(w int32) uint64 {
	r.stats.WordReads++
	if r.Meter != nil {
		r.Meter.DataBytes += 8
	}
	return r.words[w]
}

// Write stores v at word index w, charging data-RAM energy.
func (r *RAM) Write(w int32, v uint64) {
	r.stats.WordWrites++
	if r.Meter != nil {
		r.Meter.DataBytes += 8
	}
	r.words[w] = v
}

// SectorWordBase converts a sector index to its first word index.
func (r *RAM) SectorWordBase(sector int32) int32 {
	return sector * int32(r.Cfg.WordsPerSector)
}

// ReadRun reads nWords starting at the first word of sector base
// (hit-path block return), charging energy once per word.
func (r *RAM) ReadRun(base int32, nWords int) []uint64 {
	out := make([]uint64, nWords)
	w := r.SectorWordBase(base)
	for i := range out {
		out[i] = r.Read(w + int32(i))
	}
	return out
}
