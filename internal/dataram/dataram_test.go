package dataram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/energy"
)

func TestAllocFreeBasic(t *testing.T) {
	r := New(Config{Sectors: 8, WordsPerSector: 4}, nil)
	a, ok := r.Alloc(3)
	if !ok {
		t.Fatal("alloc failed")
	}
	b, ok := r.Alloc(5)
	if !ok {
		t.Fatal("second alloc failed")
	}
	if a == b {
		t.Fatal("overlapping allocations")
	}
	if _, ok := r.Alloc(1); ok {
		t.Fatal("alloc succeeded on full RAM")
	}
	r.Free(a, 3)
	if r.FreeSectors() != 3 {
		t.Fatalf("free sectors %d", r.FreeSectors())
	}
	if _, ok := r.Alloc(3); !ok {
		t.Fatal("alloc after free failed")
	}
}

func TestContiguityAfterFragmentation(t *testing.T) {
	r := New(Config{Sectors: 10, WordsPerSector: 1}, nil)
	a, _ := r.Alloc(3) // 0..2
	b, _ := r.Alloc(3) // 3..5
	c, _ := r.Alloc(3) // 6..8
	_ = b
	r.Free(a, 3)
	r.Free(c, 3)
	// 7 sectors free but max contiguous run is 4 (6..9): a 5-run must fail.
	if _, ok := r.Alloc(5); ok {
		t.Fatal("allocated non-contiguous run")
	}
	if base, ok := r.Alloc(4); !ok || base != 6 {
		t.Fatalf("4-run: base=%d ok=%v", base, ok)
	}
}

func TestReadWriteWords(t *testing.T) {
	r := New(Config{Sectors: 4, WordsPerSector: 4}, nil)
	base, _ := r.Alloc(2)
	w := r.SectorWordBase(base)
	for i := int32(0); i < 8; i++ {
		r.Write(w+i, uint64(100+i))
	}
	run := r.ReadRun(base, 8)
	for i, v := range run {
		if v != uint64(100+i) {
			t.Fatalf("word %d: %d", i, v)
		}
	}
}

func TestEnergyCharged(t *testing.T) {
	m := &energy.Counters{}
	r := New(Config{Sectors: 4, WordsPerSector: 2}, m)
	base, _ := r.Alloc(1)
	r.Write(r.SectorWordBase(base), 1)
	r.Read(r.SectorWordBase(base))
	if m.DataBytes != 16 {
		t.Fatalf("data bytes %d want 16", m.DataBytes)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	r := New(Config{Sectors: 4, WordsPerSector: 1}, nil)
	a, _ := r.Alloc(2)
	r.Free(a, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Free(a, 2)
}

// Property: free-sector conservation and no overlap under random
// alloc/free traffic.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sectors = 64
		r := New(Config{Sectors: sectors, WordsPerSector: 2}, nil)
		type run struct{ base, n int32 }
		var runs []run
		owned := map[int32]bool{}
		total := 0
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				n := int32(rng.Intn(6) + 1)
				base, ok := r.Alloc(int(n))
				if !ok {
					continue
				}
				for s := base; s < base+n; s++ {
					if owned[s] {
						return false // overlap
					}
					owned[s] = true
				}
				runs = append(runs, run{base, n})
				total += int(n)
			} else if len(runs) > 0 {
				i := rng.Intn(len(runs))
				rr := runs[i]
				r.Free(rr.base, rr.n)
				for s := rr.base; s < rr.base+rr.n; s++ {
					delete(owned, s)
				}
				runs[i] = runs[len(runs)-1]
				runs = runs[:len(runs)-1]
				total -= int(rr.n)
			}
			if r.FreeSectors() != sectors-total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFullDrainThenReuse(t *testing.T) {
	r := New(Config{Sectors: 16, WordsPerSector: 1}, nil)
	var bases []int32
	for i := 0; i < 16; i++ {
		b, ok := r.Alloc(1)
		if !ok {
			t.Fatal("alloc failed before capacity")
		}
		bases = append(bases, b)
	}
	for _, b := range bases {
		r.Free(b, 1)
	}
	if b, ok := r.Alloc(16); !ok || b != 0 {
		t.Fatalf("whole-RAM alloc after drain: base=%d ok=%v", b, ok)
	}
}
