// Package dram models the off-chip memory the paper attaches through
// DRAMsim2. It is a bank/row-buffer timing model: requests queue at the
// channel, banks hold an open row, and service latency is composed from
// tRCD/tCAS/tRP plus a per-word burst time on a shared data bus. Responses
// carry real data served from the mem.Image, so cache walkers consume
// genuine pointer chains and matrix rows.
package dram

import (
	"fmt"

	"xcache/internal/mem"
	"xcache/internal/sim"
)

// Request is a memory read or write issued by a cache controller.
type Request struct {
	ID    uint64   // opaque caller tag, echoed in the Response
	Addr  uint64   // byte address, word aligned
	Words int      // number of 8-byte words
	Write bool     // true for writebacks
	Data  []uint64 // write payload (len == Words)
}

// Response completes a Request. Writes are acknowledged with Data nil.
type Response struct {
	ID   uint64
	Addr uint64
	Data []uint64
}

// Config sets the channel geometry and timing (in controller cycles).
type Config struct {
	// Name labels the channel's queues and stall-report entries; empty
	// means "dram". Multi-channel topologies must name each channel so
	// queue diagnostics (and the fault injector's per-queue clog streams,
	// which hash queue names) stay distinguishable.
	Name         string
	Banks        int    // number of banks on the channel
	RowBytes     uint64 // row-buffer size per bank
	TRCD         int    // activate → column command
	TCAS         int    // column command → first data
	TRP          int    // precharge time (row conflict penalty)
	TBusPerWord  int    // data-bus cycles per 8-byte word
	ChannelFixed int    // fixed command/queueing overhead per access
	QueueDepth   int    // request queue capacity
	RespDepth    int    // response queue capacity
	WindowDepth  int    // scheduler window (pending requests considered)
}

// DefaultConfig models a single DDR-like channel clocked against a 1 GHz
// controller: a closed-bank random access costs ≈ 40–60 cycles.
func DefaultConfig() Config {
	return Config{
		Banks:        8,
		RowBytes:     2048,
		TRCD:         14,
		TCAS:         14,
		TRP:          14,
		TBusPerWord:  1,
		ChannelFixed: 6,
		QueueDepth:   64,
		RespDepth:    64,
		WindowDepth:  32,
	}
}

// Stats aggregates lifetime activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank or conflict
	WordsRead    uint64
	WordsWritten uint64
	BusBusy      uint64 // cycles the data bus transferred
	TotalLatency uint64 // sum of (complete - enqueue) over all requests

	// Fault-injection accounting (zero unless a FaultInjector is set).
	DroppedResps uint64 // read responses suppressed by the injector
	DelayedResps uint64 // read responses held back by the injector

	// Channel-fault accounting (zero unless a Disruptor is set).
	OutageCycles uint64 // cycles the whole channel was frozen
	StallCycles  uint64 // cycles bank issue was suppressed
	BurstDelays  uint64 // responses held back by burst-latency episodes

	// PeakPending is the high-water mark of admitted-but-incomplete
	// requests (scheduler window + held + fault-delayed responses): the
	// channel-pressure gauge service layers watch for overload.
	PeakPending int
}

// Accesses returns total read+write requests served.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// AvgLatency returns the mean request latency in cycles.
func (s Stats) AvgLatency() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(n)
}

type bank struct {
	openRow   int64 // -1 when closed
	busyUntil sim.Cycle
	lastPre   sim.Cycle // scheduled precharge start of the last conflict
	lastAct   sim.Cycle // scheduled activate of the last row open
	preValid  bool      // lastPre holds a real precharge (not cold-start zero)
}

type pending struct {
	req      Request
	arrived  sim.Cycle
	started  bool
	complete sim.Cycle
}

// FaultInjector decides per-response faults. Implementations must be
// deterministic functions of (request, cycle) so runs replay from a seed.
type FaultInjector interface {
	// ReadResponse is consulted once per completed read. drop suppresses
	// the response entirely (the requester's timeout/retry path must
	// recover); delay holds it back the given number of cycles.
	ReadResponse(r Response, c sim.Cycle) (drop bool, delay int)
}

type delayedResp struct {
	readyAt sim.Cycle
	resp    Response
}

// Disruptor models channel-level fault state, consulted once at the top
// of every tick. Implementations must be deterministic functions of the
// cycle so runs replay from a seed. The three degrees of disruption:
// frozen is a hard outage (the channel does nothing at all — nothing
// admitted, issued, completed or delivered); stalled suppresses bank
// issue but lets already-completed work drain; extraDelay holds every
// response completing this cycle back by that many extra cycles (burst
// latency).
type Disruptor interface {
	ChannelState(c sim.Cycle) (frozen, stalled bool, extraDelay int)
}

// DRAM is the channel component. Push requests to Req; pop completions
// from Resp.
type DRAM struct {
	Cfg  Config
	Req  *sim.Queue[Request]
	Resp *sim.Queue[Response]

	// Faults, when non-nil, injects dropped/delayed read responses.
	Faults FaultInjector

	// Disrupt, when non-nil, injects channel-level fault episodes
	// (outage, issue stall, burst latency).
	Disrupt Disruptor

	// Label, when non-empty, names this channel in stall reports so
	// multi-channel topologies stay tellable apart.
	Label string

	img        *mem.Image
	banks      []bank
	window     []*pending
	busFree    sim.Cycle
	stats      Stats
	respHold   []Response    // completed but response queue was full
	delayed    []delayedResp // fault-injected response delays
	burstExtra int           // this tick's burst-latency hold (Disruptor)
	strict     bool          // timing-protocol assertions enabled
	protoErr   error         // first protocol violation observed
}

// New creates a DRAM channel over the given memory image and registers it
// with the kernel.
func New(k *sim.Kernel, cfg Config, img *mem.Image) *DRAM {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 {
		panic("dram: invalid geometry")
	}
	name := cfg.Name
	if name == "" {
		name = "dram"
	}
	d := &DRAM{
		Cfg:   cfg,
		Req:   sim.NewQueue[Request](k, name+".req", cfg.QueueDepth),
		Resp:  sim.NewQueue[Response](k, name+".resp", cfg.RespDepth),
		img:   img,
		banks: make([]bank, cfg.Banks),
	}
	if cfg.Name != "" {
		d.Label = cfg.Name
	}
	for i := range d.banks {
		d.banks[i].openRow = -1
	}
	k.Add(d)
	return d
}

// Stats returns a copy of the lifetime statistics.
func (d *DRAM) Stats() Stats { return d.stats }

// Pending reports the number of requests admitted but not yet completed.
func (d *DRAM) Pending() int { return len(d.window) + len(d.respHold) + len(d.delayed) }

// Idle reports whether the channel has no queued or in-flight work.
func (d *DRAM) Idle() bool {
	return d.Req.Len() == 0 && len(d.window) == 0 && len(d.respHold) == 0 && len(d.delayed) == 0
}

// EnableProtocolCheck turns on the DDR timing-protocol assertions: every
// issued access must schedule its column command at least tRCD after the
// activate, its activate at least tRP after the precharge it follows, and
// must not start while the bank is busy. Violations are reported through
// CheckInvariants rather than panicking mid-tick.
func (d *DRAM) EnableProtocolCheck() { d.strict = true }

// CheckInvariants reports the first timing-protocol violation and any
// structural inconsistency in the scheduler state.
func (d *DRAM) CheckInvariants(c sim.Cycle) error {
	if d.protoErr != nil {
		return d.protoErr
	}
	if len(d.window) > d.Cfg.WindowDepth {
		return fmt.Errorf("dram: scheduler window %d exceeds depth %d", len(d.window), d.Cfg.WindowDepth)
	}
	for _, p := range d.window {
		if p.started && p.complete > d.busFree {
			return fmt.Errorf("dram: request %#x completes at %d after bus frees at %d", p.req.Addr, p.complete, d.busFree)
		}
	}
	return nil
}

// ActivityCount returns a monotonic progress counter the deadlock
// watchdog folds into its forward-progress signature.
func (d *DRAM) ActivityCount() uint64 {
	return d.stats.Reads + d.stats.Writes + d.stats.RowHits + d.stats.RowMisses
}

// DiagnoseName labels this component in stall reports.
func (d *DRAM) DiagnoseName() string {
	if d.Label != "" {
		return d.Label
	}
	return "dram"
}

// Diagnose describes per-bank and scheduler state for stall reports.
func (d *DRAM) Diagnose() []string {
	var out []string
	out = append(out, fmt.Sprintf("window %d/%d, respHold %d, delayed %d, busFree @%d",
		len(d.window), d.Cfg.WindowDepth, len(d.respHold), len(d.delayed), d.busFree))
	for i := range d.banks {
		b := &d.banks[i]
		state := "closed"
		if b.openRow >= 0 {
			state = fmt.Sprintf("row %d open", b.openRow)
		}
		out = append(out, fmt.Sprintf("bank %d: %s, busy until %d", i, state, b.busyUntil))
	}
	for _, p := range d.window {
		tag := "queued"
		if p.started {
			tag = fmt.Sprintf("completes @%d", p.complete)
		}
		out = append(out, fmt.Sprintf("req id=%d addr=%#x words=%d arrived @%d (%s)",
			p.req.ID, p.req.Addr, p.req.Words, p.arrived, tag))
	}
	return out
}

func (d *DRAM) mapAddr(addr uint64) (bankIdx int, row int64) {
	rowGlobal := addr / d.Cfg.RowBytes
	return int(rowGlobal % uint64(d.Cfg.Banks)), int64(rowGlobal / uint64(d.Cfg.Banks))
}

// Tick implements sim.Component.
func (d *DRAM) Tick(c sim.Cycle) {
	stalled := false
	d.burstExtra = 0
	if d.Disrupt != nil {
		frozen, st, extra := d.Disrupt.ChannelState(c)
		if frozen {
			// Hard outage: the channel does nothing. Requests pile up in
			// Req, completed-but-undelivered work sits where it is, and
			// in-flight completion times simply pass unobserved (their
			// responses deliver on the first healthy cycle after the
			// episode). The layer above is expected to notice the silence
			// and fail over.
			d.stats.OutageCycles++
			return
		}
		stalled, d.burstExtra = st, extra
		if stalled {
			d.stats.StallCycles++
		}
	}

	// Release fault-delayed responses whose hold expired.
	if len(d.delayed) > 0 {
		keep := d.delayed[:0]
		for _, dr := range d.delayed {
			if dr.readyAt <= c {
				d.deliver(dr.resp)
				continue
			}
			keep = append(keep, dr)
		}
		d.delayed = keep
	}

	// Retry responses that were blocked on a full response queue.
	for len(d.respHold) > 0 {
		if !d.Resp.Push(d.respHold[0]) {
			break
		}
		d.respHold = d.respHold[1:]
	}

	// Admit new requests into the scheduling window.
	for len(d.window) < d.Cfg.WindowDepth {
		req, ok := d.Req.Pop()
		if !ok {
			break
		}
		d.window = append(d.window, &pending{req: req, arrived: c})
	}
	if p := d.Pending(); p > d.stats.PeakPending {
		d.stats.PeakPending = p
	}

	// Issue: for each idle bank, pick the oldest pending request targeting
	// it, preferring row hits (FR-FCFS-lite). A stall episode suppresses
	// issue entirely — admitted requests wait in the window.
	if !stalled {
		d.issue(c)
	}

	// Complete.
	remaining := d.window[:0]
	for _, p := range d.window {
		if !p.started || p.complete > c {
			remaining = append(remaining, p)
			continue
		}
		d.finish(p, c)
	}
	d.window = remaining
}

// issue picks, for each idle bank, the oldest pending request targeting
// it, preferring row hits (FR-FCFS-lite), and schedules it on the shared
// data bus.
func (d *DRAM) issue(c sim.Cycle) {
	for bi := range d.banks {
		b := &d.banks[bi]
		if b.busyUntil > c {
			continue
		}
		var pick *pending
		for _, p := range d.window {
			if p.started {
				continue
			}
			pb, prow := d.mapAddr(p.req.Addr)
			if pb != bi {
				continue
			}
			if pick == nil {
				pick = p
				continue
			}
			_, pickRow := d.mapAddr(pick.req.Addr)
			if prow == b.openRow && pickRow != b.openRow {
				pick = p
			}
		}
		if pick == nil {
			continue
		}
		_, row := d.mapAddr(pick.req.Addr)
		lat := d.Cfg.ChannelFixed + d.Cfg.TCAS
		issue := c + sim.Cycle(d.Cfg.ChannelFixed)
		switch {
		case b.openRow == row:
			d.stats.RowHits++
			if d.strict && b.openRow >= 0 && issue < b.lastAct+sim.Cycle(d.Cfg.TRCD) {
				d.violate("CAS to bank %d at %d before tRCD elapses (ACT at %d, tRCD %d)",
					bi, issue, b.lastAct, d.Cfg.TRCD)
			}
		case b.openRow == -1:
			d.stats.RowMisses++
			lat += d.Cfg.TRCD
			// A never-precharged bank (cold start) has no tRP window.
			if d.strict && b.preValid && issue < b.lastPre+sim.Cycle(d.Cfg.TRP) {
				d.violate("ACT to bank %d at %d before tRP elapses (PRE at %d, tRP %d)",
					bi, issue, b.lastPre, d.Cfg.TRP)
			}
			b.lastAct = issue
		default:
			// Row conflict: precharge at issue, activate tRP later.
			d.stats.RowMisses++
			lat += d.Cfg.TRP + d.Cfg.TRCD
			b.lastPre = issue
			b.preValid = true
			b.lastAct = issue + sim.Cycle(d.Cfg.TRP)
		}
		if d.strict && b.busyUntil > c {
			d.violate("issue to busy bank %d at cycle %d (busy until %d)", bi, c, b.busyUntil)
		}
		b.openRow = row
		burst := pick.req.Words * d.Cfg.TBusPerWord
		if burst < 1 {
			burst = 1
		}
		// Serialize bursts on the shared data bus.
		dataStart := c + sim.Cycle(lat)
		if d.busFree > dataStart {
			dataStart = d.busFree
		}
		d.busFree = dataStart + sim.Cycle(burst)
		d.stats.BusBusy += uint64(burst)
		pick.started = true
		pick.complete = d.busFree
		b.busyUntil = d.busFree
	}
}

// violate records the first timing-protocol violation.
func (d *DRAM) violate(format string, args ...any) {
	if d.protoErr == nil {
		d.protoErr = fmt.Errorf("dram: "+format, args...)
	}
}

func (d *DRAM) finish(p *pending, c sim.Cycle) {
	d.stats.TotalLatency += uint64(c - p.arrived)
	resp := Response{ID: p.req.ID, Addr: p.req.Addr}
	if p.req.Write {
		d.stats.Writes++
		d.stats.WordsWritten += uint64(p.req.Words)
		if len(p.req.Data) != p.req.Words {
			panic(fmt.Sprintf("dram: write %#x has %d data words, want %d", p.req.Addr, len(p.req.Data), p.req.Words))
		}
		d.img.WriteWords(p.req.Addr, p.req.Data)
	} else {
		d.stats.Reads++
		d.stats.WordsRead += uint64(p.req.Words)
		resp.Data = d.img.ReadWords(p.req.Addr, p.req.Words)
		if d.Faults != nil {
			drop, delay := d.Faults.ReadResponse(resp, c)
			if drop {
				d.stats.DroppedResps++
				return
			}
			if delay > 0 {
				d.stats.DelayedResps++
				d.delayed = append(d.delayed, delayedResp{readyAt: c + sim.Cycle(delay), resp: resp})
				return
			}
		}
	}
	// A burst-latency episode holds every response completing this cycle
	// (reads and write acks alike) back by the episode's extra delay.
	if d.burstExtra > 0 {
		d.stats.BurstDelays++
		d.delayed = append(d.delayed, delayedResp{readyAt: c + sim.Cycle(d.burstExtra), resp: resp})
		return
	}
	d.deliver(resp)
}

// deliver pushes a response, spilling to respHold when the queue is full.
func (d *DRAM) deliver(resp Response) {
	if !d.Resp.Push(resp) {
		d.respHold = append(d.respHold, resp)
	}
}
