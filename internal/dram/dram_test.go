package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
	"xcache/internal/sim"
)

func setup(cfg Config) (*sim.Kernel, *mem.Image, *DRAM) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := New(k, cfg, img)
	return k, img, d
}

func drain(t *testing.T, k *sim.Kernel, d *DRAM, n int) []Response {
	t.Helper()
	var out []Response
	if !k.RunUntil(func() bool {
		for {
			r, ok := d.Resp.Pop()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return len(out) >= n
	}, 100000) {
		t.Fatalf("timed out waiting for %d responses, got %d", n, len(out))
	}
	return out
}

func TestReadReturnsImageData(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(4)
	img.WriteWords(base, []uint64{10, 20, 30, 40})
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 4})
	rs := drain(t, k, d, 1)
	if rs[0].ID != 1 || len(rs[0].Data) != 4 || rs[0].Data[2] != 30 {
		t.Fatalf("bad response: %+v", rs[0])
	}
}

func TestWriteThenReadBack(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(2)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 2, Write: true, Data: []uint64{5, 6}})
	drain(t, k, d, 1)
	d.Req.MustPush(Request{ID: 2, Addr: base, Words: 2})
	rs := drain(t, k, d, 1)
	if rs[0].Data[0] != 5 || rs[0].Data[1] != 6 {
		t.Fatalf("readback: %v", rs[0].Data)
	}
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("writes=%d", got)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	// Two reads in the same row: second should be a row hit.
	k, img, d := setup(cfg)
	base := img.AllocWords(1024)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 1})
	d.Req.MustPush(Request{ID: 2, Addr: base + 64, Words: 1})
	drain(t, k, d, 2)
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d", st.RowHits, st.RowMisses)
	}

	// Same bank, different rows: both are misses.
	k2, img2, d2 := setup(cfg)
	_ = img2.AllocWords(1 << 20)
	stride := cfg.RowBytes * uint64(cfg.Banks) // same bank, next row
	d2.Req.MustPush(Request{ID: 1, Addr: 0x1000, Words: 1})
	d2.Req.MustPush(Request{ID: 2, Addr: 0x1000 + stride, Words: 1})
	drain(t, k2, d2, 2)
	if d2.Stats().RowHits != 0 {
		t.Fatalf("expected no row hits, got %d", d2.Stats().RowHits)
	}
	if d2.Stats().AvgLatency() <= st.AvgLatency() {
		t.Fatalf("conflict latency %v not worse than hit latency %v",
			d2.Stats().AvgLatency(), st.AvgLatency())
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TBusPerWord = 0 // isolate bank timing from bus serialization

	// 8 accesses to 8 different banks.
	k, img, d := setup(cfg)
	_ = img.AllocWords(1 << 20)
	for i := 0; i < 8; i++ {
		addr := 0x1000 + uint64(i)*cfg.RowBytes // consecutive banks
		d.Req.MustPush(Request{ID: uint64(i), Addr: addr, Words: 1})
	}
	drain(t, k, d, 8)
	parCycles := k.Cycle()

	// 8 accesses to different rows of one bank.
	k2, img2, d2 := setup(cfg)
	_ = img2.AllocWords(1 << 20)
	for i := 0; i < 8; i++ {
		addr := 0x1000 + uint64(i)*cfg.RowBytes*uint64(cfg.Banks)
		d2.Req.MustPush(Request{ID: uint64(i), Addr: addr, Words: 1})
	}
	drain(t, k2, d2, 8)
	serCycles := k2.Cycle()

	if serCycles < parCycles*2 {
		t.Fatalf("bank conflicts (%d cyc) should be ≫ parallel banks (%d cyc)", serCycles, parCycles)
	}
}

func TestLargeBurstOccupiesBus(t *testing.T) {
	cfg := DefaultConfig()
	k, img, d := setup(cfg)
	base := img.AllocWords(64)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 64})
	drain(t, k, d, 1)
	if d.Stats().BusBusy < 64 {
		t.Fatalf("bus busy %d < burst words 64", d.Stats().BusBusy)
	}
	if d.Stats().WordsRead != 64 {
		t.Fatalf("words read %d", d.Stats().WordsRead)
	}
}

// Property: every admitted request gets exactly one response with matching
// ID, and read responses carry the image contents at request time.
func TestEveryRequestAnswered(t *testing.T) {
	f := func(seed int64, nReq uint8) bool {
		n := int(nReq%32) + 1
		rng := rand.New(rand.NewSource(seed))
		k, img, d := setup(DefaultConfig())
		base := img.AllocWords((100+1)*4096/8 + 64)
		want := map[uint64]uint64{} // id -> expected first word
		for i := 0; i < n; i++ {
			// Unique address per request: a shared address would make the
			// expected value ambiguous.
			off := uint64(i)*8 + uint64(rng.Intn(100))*4096
			img.W64(base+off, uint64(i)+100)
			id := uint64(i)
			want[id] = uint64(i) + 100
			if !d.Req.Push(Request{ID: id, Addr: base + off, Words: 1}) {
				k.Run(200) // allow queue to drain, then retry once
				if !d.Req.Push(Request{ID: id, Addr: base + off, Words: 1}) {
					return false
				}
			}
		}
		got := map[uint64]uint64{}
		ok := k.RunUntil(func() bool {
			for {
				r, popped := d.Resp.Pop()
				if !popped {
					break
				}
				got[r.ID] = r.Data[0]
			}
			return len(got) == n
		}, 200000)
		if !ok {
			return false
		}
		for id, w := range want {
			if got[id] != w {
				return false
			}
		}
		return d.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseBackpressureDoesNotDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RespDepth = 1
	k, img, d := setup(cfg)
	base := img.AllocWords(64)
	for i := 0; i < 8; i++ {
		d.Req.MustPush(Request{ID: uint64(i), Addr: base + uint64(i)*8, Words: 1})
	}
	// Run a long time without draining: nothing may be lost.
	k.Run(2000)
	seen := 0
	if !k.RunUntil(func() bool {
		for {
			if _, ok := d.Resp.Pop(); !ok {
				break
			}
			seen++
		}
		return seen == 8
	}, 10000) {
		t.Fatalf("lost responses under backpressure: saw %d/8", seen)
	}
}
