package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
	"xcache/internal/sim"
)

func setup(cfg Config) (*sim.Kernel, *mem.Image, *DRAM) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := New(k, cfg, img)
	return k, img, d
}

func drain(t *testing.T, k *sim.Kernel, d *DRAM, n int) []Response {
	t.Helper()
	var out []Response
	if !k.RunUntil(func() bool {
		for {
			r, ok := d.Resp.Pop()
			if !ok {
				break
			}
			out = append(out, r)
		}
		return len(out) >= n
	}, 100000) {
		t.Fatalf("timed out waiting for %d responses, got %d", n, len(out))
	}
	return out
}

func TestReadReturnsImageData(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(4)
	img.WriteWords(base, []uint64{10, 20, 30, 40})
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 4})
	rs := drain(t, k, d, 1)
	if rs[0].ID != 1 || len(rs[0].Data) != 4 || rs[0].Data[2] != 30 {
		t.Fatalf("bad response: %+v", rs[0])
	}
}

func TestWriteThenReadBack(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(2)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 2, Write: true, Data: []uint64{5, 6}})
	drain(t, k, d, 1)
	d.Req.MustPush(Request{ID: 2, Addr: base, Words: 2})
	rs := drain(t, k, d, 1)
	if rs[0].Data[0] != 5 || rs[0].Data[1] != 6 {
		t.Fatalf("readback: %v", rs[0].Data)
	}
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("writes=%d", got)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	// Two reads in the same row: second should be a row hit.
	k, img, d := setup(cfg)
	base := img.AllocWords(1024)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 1})
	d.Req.MustPush(Request{ID: 2, Addr: base + 64, Words: 1})
	drain(t, k, d, 2)
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Fatalf("hits=%d misses=%d", st.RowHits, st.RowMisses)
	}

	// Same bank, different rows: both are misses.
	k2, img2, d2 := setup(cfg)
	_ = img2.AllocWords(1 << 20)
	stride := cfg.RowBytes * uint64(cfg.Banks) // same bank, next row
	d2.Req.MustPush(Request{ID: 1, Addr: 0x1000, Words: 1})
	d2.Req.MustPush(Request{ID: 2, Addr: 0x1000 + stride, Words: 1})
	drain(t, k2, d2, 2)
	if d2.Stats().RowHits != 0 {
		t.Fatalf("expected no row hits, got %d", d2.Stats().RowHits)
	}
	if d2.Stats().AvgLatency() <= st.AvgLatency() {
		t.Fatalf("conflict latency %v not worse than hit latency %v",
			d2.Stats().AvgLatency(), st.AvgLatency())
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TBusPerWord = 0 // isolate bank timing from bus serialization

	// 8 accesses to 8 different banks.
	k, img, d := setup(cfg)
	_ = img.AllocWords(1 << 20)
	for i := 0; i < 8; i++ {
		addr := 0x1000 + uint64(i)*cfg.RowBytes // consecutive banks
		d.Req.MustPush(Request{ID: uint64(i), Addr: addr, Words: 1})
	}
	drain(t, k, d, 8)
	parCycles := k.Cycle()

	// 8 accesses to different rows of one bank.
	k2, img2, d2 := setup(cfg)
	_ = img2.AllocWords(1 << 20)
	for i := 0; i < 8; i++ {
		addr := 0x1000 + uint64(i)*cfg.RowBytes*uint64(cfg.Banks)
		d2.Req.MustPush(Request{ID: uint64(i), Addr: addr, Words: 1})
	}
	drain(t, k2, d2, 8)
	serCycles := k2.Cycle()

	if serCycles < parCycles*2 {
		t.Fatalf("bank conflicts (%d cyc) should be ≫ parallel banks (%d cyc)", serCycles, parCycles)
	}
}

func TestLargeBurstOccupiesBus(t *testing.T) {
	cfg := DefaultConfig()
	k, img, d := setup(cfg)
	base := img.AllocWords(64)
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 64})
	drain(t, k, d, 1)
	if d.Stats().BusBusy < 64 {
		t.Fatalf("bus busy %d < burst words 64", d.Stats().BusBusy)
	}
	if d.Stats().WordsRead != 64 {
		t.Fatalf("words read %d", d.Stats().WordsRead)
	}
}

// Property: every admitted request gets exactly one response with matching
// ID, and read responses carry the image contents at request time.
func TestEveryRequestAnswered(t *testing.T) {
	f := func(seed int64, nReq uint8) bool {
		n := int(nReq%32) + 1
		rng := rand.New(rand.NewSource(seed))
		k, img, d := setup(DefaultConfig())
		base := img.AllocWords((100+1)*4096/8 + 64)
		want := map[uint64]uint64{} // id -> expected first word
		for i := 0; i < n; i++ {
			// Unique address per request: a shared address would make the
			// expected value ambiguous.
			off := uint64(i)*8 + uint64(rng.Intn(100))*4096
			img.W64(base+off, uint64(i)+100)
			id := uint64(i)
			want[id] = uint64(i) + 100
			if !d.Req.Push(Request{ID: id, Addr: base + off, Words: 1}) {
				k.Run(200) // allow queue to drain, then retry once
				if !d.Req.Push(Request{ID: id, Addr: base + off, Words: 1}) {
					return false
				}
			}
		}
		got := map[uint64]uint64{}
		ok := k.RunUntil(func() bool {
			for {
				r, popped := d.Resp.Pop()
				if !popped {
					break
				}
				got[r.ID] = r.Data[0]
			}
			return len(got) == n
		}, 200000)
		if !ok {
			return false
		}
		for id, w := range want {
			if got[id] != w {
				return false
			}
		}
		return d.Idle()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResponseBackpressureDoesNotDrop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RespDepth = 1
	k, img, d := setup(cfg)
	base := img.AllocWords(64)
	for i := 0; i < 8; i++ {
		d.Req.MustPush(Request{ID: uint64(i), Addr: base + uint64(i)*8, Words: 1})
	}
	// Run a long time without draining: nothing may be lost.
	k.Run(2000)
	seen := 0
	if !k.RunUntil(func() bool {
		for {
			if _, ok := d.Resp.Pop(); !ok {
				break
			}
			seen++
		}
		return seen == 8
	}, 10000) {
		t.Fatalf("lost responses under backpressure: saw %d/8", seen)
	}
}

// scriptedFaults drops or delays specific response IDs.
type scriptedFaults struct {
	drop  map[uint64]bool
	delay map[uint64]int
}

func (f *scriptedFaults) ReadResponse(r Response, c sim.Cycle) (bool, int) {
	if f.drop[r.ID] {
		delete(f.drop, r.ID) // drop only the first attempt
		return true, 0
	}
	return false, f.delay[r.ID]
}

func TestFaultInjectorDropsResponse(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(2)
	img.WriteWords(base, []uint64{1, 2})
	d.Faults = &scriptedFaults{drop: map[uint64]bool{1: true}}
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 1})
	d.Req.MustPush(Request{ID: 2, Addr: base + 8, Words: 1})
	rs := drain(t, k, d, 1)
	if rs[0].ID != 2 {
		t.Fatalf("got response %d, want only the undropped id 2", rs[0].ID)
	}
	k.Run(1000)
	if _, ok := d.Resp.Pop(); ok {
		t.Fatal("dropped response was still delivered")
	}
	if st := d.Stats(); st.DroppedResps != 1 {
		t.Fatalf("DroppedResps=%d, want 1", st.DroppedResps)
	}
	if !d.Idle() {
		t.Fatal("DRAM not idle after drop: the request leaked")
	}
}

func TestFaultInjectorDelaysResponse(t *testing.T) {
	cfg := DefaultConfig()
	k, img, d := setup(cfg)
	base := img.AllocWords(1)
	img.WriteWords(base, []uint64{77})
	const extra = 40
	d.Faults = &scriptedFaults{delay: map[uint64]int{1: extra}}
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 1})
	var got sim.Cycle
	rs := func() []Response {
		var out []Response
		k.RunUntil(func() bool {
			if r, ok := d.Resp.Pop(); ok {
				out = append(out, r)
				got = k.Cycle()
			}
			return len(out) >= 1
		}, 100000)
		return out
	}()
	if len(rs) != 1 || rs[0].Data[0] != 77 {
		t.Fatalf("delayed response wrong: %+v", rs)
	}
	// Re-run without the fault to find the natural latency.
	k2, img2, d2 := setup(cfg)
	base2 := img2.AllocWords(1)
	img2.WriteWords(base2, []uint64{77})
	d2.Req.MustPush(Request{ID: 1, Addr: base2, Words: 1})
	var natural sim.Cycle
	k2.RunUntil(func() bool {
		if _, ok := d2.Resp.Pop(); ok {
			natural = k2.Cycle()
			return true
		}
		return false
	}, 100000)
	if got < natural+extra {
		t.Fatalf("delayed delivery at %d, natural %d + %d extra not honored", got, natural, extra)
	}
	if st := d.Stats(); st.DelayedResps != 1 {
		t.Fatalf("DelayedResps=%d, want 1", st.DelayedResps)
	}
}

func TestDelayedResponseStillCountsPending(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(1)
	d.Faults = &scriptedFaults{delay: map[uint64]int{1: 500}}
	d.Req.MustPush(Request{ID: 1, Addr: base, Words: 1})
	k.Run(60) // enough for service, not for the injected delay
	if d.Idle() {
		t.Fatal("DRAM claims idle while a delayed response is in flight")
	}
	drain(t, k, d, 1)
}

// A randomized workload under strict protocol checking: the timing model
// must never violate its own tRP/tRCD discipline.
func TestProtocolCheckCleanUnderRandomLoad(t *testing.T) {
	cfg := DefaultConfig()
	k, img, d := setup(cfg)
	d.EnableProtocolCheck()
	base := img.AllocWords(4096)
	rng := rand.New(rand.NewSource(11))
	issued := 0
	k.Add(sim.ComponentFunc(func(c sim.Cycle) {
		for i := 0; i < 2 && issued < 400; i++ {
			if !d.Req.CanPush() {
				return
			}
			addr := base + uint64(rng.Intn(4096))*8
			d.Req.MustPush(Request{ID: uint64(issued), Addr: addr, Words: 1 + rng.Intn(4)})
			issued++
		}
	}))
	got := 0
	if !k.RunUntil(func() bool {
		for {
			if _, ok := d.Resp.Pop(); !ok {
				break
			}
			got++
		}
		return got >= 400
	}, 1_000_000) {
		t.Fatalf("drained %d/400", got)
	}
	if err := d.CheckInvariants(k.Cycle()); err != nil {
		t.Fatalf("protocol violation on a fault-free run: %v", err)
	}
}

func TestDiagnoseDescribesBanksAndWindow(t *testing.T) {
	k, img, d := setup(DefaultConfig())
	base := img.AllocWords(8)
	d.Req.MustPush(Request{ID: 9, Addr: base, Words: 2})
	k.Run(3)
	if d.DiagnoseName() != "dram" {
		t.Fatalf("DiagnoseName=%q", d.DiagnoseName())
	}
	lines := d.Diagnose()
	if len(lines) < int(DefaultConfig().Banks)+1 {
		t.Fatalf("diagnose too short: %v", lines)
	}
}
