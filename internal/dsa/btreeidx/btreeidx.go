// Package btreeidx ports X-Cache to a DSA family the paper does not
// evaluate: B+-tree index probing (the other index structure Widx-class
// database accelerators walk). It demonstrates two claims at once:
//
//   - reusability — the identical controller, ISA and compiler run a
//     multi-level descent walker with the search key as the meta-tag;
//   - the §6 MXA composition — trees are the structure where an address
//     cache genuinely helps the *miss* path (upper levels are shared by
//     every descent), so the X-Cache here sits on top of an address
//     cache: meta hits short-circuit the whole descent, and walker fills
//     hit the tree's hot upper levels on chip.
//
// The comparison splits the same total on-chip budget: the pure
// address-cache baseline gets all of it; the MXA build gives half to the
// meta-tagged level and half to the address level beneath it.
package btreeidx

import (
	"fmt"
	"math/rand"

	"xcache/internal/addrcache"
	"xcache/internal/btree"
	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/dsa"
	"xcache/internal/energy"
	"xcache/internal/hier"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// Work describes a probe workload.
type Work struct {
	NumKeys    int
	Probes     int
	ZipfS      float64
	AbsentFrac float64
	Seed       int64
}

// DefaultWork sizes a workload, divided by scale.
func DefaultWork(scale int) Work {
	if scale < 1 {
		scale = 1
	}
	keys := 100000 / scale
	if keys < 64 {
		keys = 64
	}
	return Work{NumKeys: keys, Probes: 4 * keys, ZipfS: 1.3, AbsentFrac: 0.05, Seed: 7}
}

// Options configure a run.
type Options struct {
	Cfg       core.Config
	DRAM      dram.Config
	MaxCycles int
	// Check attaches the hardening harness to the X-Cache run. DRAM
	// drop/delay faults never apply here — the controller's fills are
	// served by the address-cache level, not a DRAM channel.
	Check *check.Config
}

func (o *Options) defaults() {
	if o.Cfg.Sets == 0 {
		o.Cfg = Config()
	}
	if o.DRAM.Banks == 0 {
		o.DRAM = dram.DefaultConfig()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
}

// Config returns the design point: Widx-class geometry with 8-word fills
// for whole-node fetches.
func Config() core.Config {
	return core.Config{Name: "BTreeIdx", NumActive: 16, NumExe: 2,
		Ways: 8, Sets: 1024, WordsPerSector: 4, KeyWords: 1, MaxFillWords: 8}
}

// Spec is the B+-tree descent walker: fetch the root (e0), then per node
// either pick a child with three compares (internal) or match a leaf slot.
func Spec() program.Spec {
	return program.Spec{
		Name:   "btree",
		States: []string{"Node"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocr r1
				allocm
				lde r4, e0         ; root node address
				enqfilli r4, 8
				state Node
			`},
			{State: "Node", Event: "Fill", Asm: `
				peek r7, 7         ; leaf flag
				bnz r7, leaf
				peek r5, 0         ; separators: first k with key < k wins
				blt r1, r5, c0
				peek r5, 1
				blt r1, r5, c1
				peek r5, 2
				blt r1, r5, c2
				peek r6, 6         ; rightmost child
				jmp descend
			c0:
				peek r6, 3
				jmp descend
			c1:
				peek r6, 4
				jmp descend
			c2:
				peek r6, 5
			descend:
				bnz r6, go
				li r9, 0
				enqresp r9, NOTFOUND
				abort
			go:
				enqfilli r6, 8
				state Node
			leaf:
				peek r5, 0
				beq r5, r1, m0
				peek r5, 1
				beq r5, r1, m1
				peek r5, 2
				beq r5, r1, m2
				li r9, 0
				enqresp r9, NOTFOUND
				abort
			m0:
				peek r9, 3
				jmp found
			m1:
				peek r9, 4
				jmp found
			m2:
				peek r9, 5
			found:
				allocdi r7, 1
				writed r7, r9
				li r8, 1
				update r7, r8
				enqresp r9, OK
				halt Valid
			`},
		},
	}
}

// buildWorkload constructs the tree and a Zipf probe trace.
func buildWorkload(w Work, img *mem.Image) (*btree.Tree, []uint64) {
	keys := make([]uint64, w.NumKeys)
	for i := range keys {
		keys[i] = uint64(i)*2 + 2 // even keys; odd keys are absent probes
	}
	t := btree.Build(img, keys)
	rng := rand.New(rand.NewSource(w.Seed))
	zipf := rand.NewZipf(rng, w.ZipfS, 1, uint64(len(t.Keys)-1))
	perm := rng.Perm(len(t.Keys))
	trace := make([]uint64, w.Probes)
	for i := range trace {
		if rng.Float64() < w.AbsentFrac {
			trace[i] = uint64(rng.Intn(w.NumKeys*2))*2 + 1
			continue
		}
		trace[i] = t.Keys[perm[zipf.Uint64()]]
	}
	return t, trace
}

// RunXCache probes the tree through the MXA composition: a programmed
// X-Cache (half the on-chip budget) whose walker fills are served by an
// address cache (the other half) holding the tree's hot upper levels.
func RunXCache(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	// Split the budget: meta level gets half the sets.
	cfg := opt.Cfg
	cfg.Sets /= 2
	if cfg.Sets < 1 {
		cfg.Sets = 1
	}
	cfg.Sectors = 0 // re-derive from the halved geometry

	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	l2 := addrcache.New(k, addrGeometry(opt.Cfg, 2), d.Req, d.Resp, meter)
	_, xcReq, xcResp := hier.NewXCOverAddr(k, l2)
	xc, err := core.Build(k, cfg, Spec(), xcReq, xcResp, meter)
	if err != nil {
		return dsa.Result{}, err
	}
	t, trace := buildWorkload(w, img)
	xc.SetEnv(0, t.Root)

	cursor, done := 0, 0
	okAll := true
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, popped := xc.Ctrl.RespQ.Pop()
			if !popped {
				break
			}
			done++
			key := trace[resp.ID]
			want, present := t.Values[key]
			switch {
			case present && (resp.Status != program.StatusOK || resp.Value != want):
				okAll = false
			case !present && resp.Status != program.StatusNotFound:
				okAll = false
			}
		}
		for i := 0; i < 2 && cursor < len(trace); i++ {
			req := ctrl.MetaReq{ID: uint64(cursor), Op: ctrl.MetaLoad,
				Key: metatag.Key{trace[cursor], 0}, Issued: cy}
			if !xc.Ctrl.ReqQ.Push(req) {
				break
			}
			cursor++
		}
	})
	k.Add(pump)
	h := check.Attach(k, opt.Check)
	if ok, rep := check.Run(h, k, func() bool { return done == len(trace) }, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("btree xcache: aborted at %d/%d: %w", done, len(trace), rep.Failure())
	}
	if t := xc.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("btree xcache: %w", t)
	}
	cst := xc.Ctrl.Stats()
	return dsa.Result{
		DSA: "BTreeIdx", Workload: "zipf", Kind: dsa.KindXCache,
		Cycles: uint64(k.Cycle()), DRAMAccesses: d.Stats().Accesses(), DRAMReadWords: d.Stats().WordsRead,
		OnChipHits: cst.Hits, OnChipMisses: cst.Misses, HitRate: cst.HitRate(),
		AvgLoadToUse: cst.AvgLoadToUse(), HitLoadToUse: cst.AvgHitLoadToUse(),
		L2UP50: cst.L2UHist.Percentile(0.5), L2UP99: cst.L2UHist.Percentile(0.99),
		Occupancy: cst.OccupancyByteCycles,
		Energy:    meter.Energy(energy.DefaultParams()), Checked: okAll,
		FillRetries:  cst.FillRetries,
		DroppedFills: d.Stats().DroppedResps,
		ParityScrubs: cst.ParityScrubs,
	}, nil
}

// addrGeometry sizes an address cache to the X-Cache config's data bytes
// divided by div, with 64-byte node blocks.
func addrGeometry(cfg core.Config, div int) addrcache.Config {
	blocks := cfg.Sets * cfg.Ways * cfg.WordsPerSector / 8 / div
	ways := 8
	sets := 1
	for sets*2 <= blocks/ways {
		sets *= 2
	}
	return addrcache.Config{Sets: sets, Ways: ways, BlockWords: 8}
}

// treeWalk is the address-based descent (64-byte node blocks).
type treeWalk struct {
	t     *btree.Tree
	key   uint64
	cur   uint64
	begun bool
}

func (tw *treeWalk) Next(blockBase uint64, data []uint64) (addrcache.Step, *addrcache.Result) {
	if !tw.begun {
		tw.begun = true
		tw.cur = tw.t.Root
		return addrcache.Step{Addr: tw.cur}, nil
	}
	node := data[(tw.cur-blockBase)/8:]
	if node[7] == 1 { // leaf
		for j := 0; j < 3; j++ {
			if node[j] == tw.key {
				return addrcache.Step{}, &addrcache.Result{Found: true, Value: node[3+j], Words: 1}
			}
		}
		return addrcache.Step{}, &addrcache.Result{Found: false}
	}
	slot := 3
	for j := 0; j < 3; j++ {
		if tw.key < node[j] {
			slot = j
			break
		}
	}
	child := node[3+slot]
	if child == 0 {
		return addrcache.Step{}, &addrcache.Result{Found: false}
	}
	tw.cur = child
	return addrcache.Step{Addr: child}, nil
}

// RunAddr probes through an address-tagged cache with an ideal walker.
func RunAddr(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	// The whole on-chip budget, 64-byte (node-sized) blocks.
	cache := addrcache.New(k, addrGeometry(opt.Cfg, 1), d.Req, d.Resp, meter)
	eng := addrcache.NewEngine(k, addrcache.EngineConfig{Contexts: opt.Cfg.NumActive}, cache)
	t, trace := buildWorkload(w, img)

	cursor, done := 0, 0
	okAll := true
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, popped := eng.Resp.Pop()
			if !popped {
				break
			}
			done++
			key := trace[resp.ID]
			want, present := t.Values[key]
			if present != resp.Result.Found || (present && want != resp.Result.Value) {
				okAll = false
			}
		}
		for cursor < len(trace) {
			job := addrcache.Job{ID: uint64(cursor), W: &treeWalk{t: t, key: trace[cursor]}, Issued: cy}
			if !eng.Jobs.Push(job) {
				break
			}
			cursor++
		}
	})
	k.Add(pump)
	if !k.RunUntil(func() bool { return done == len(trace) }, opt.MaxCycles) {
		return dsa.Result{}, fmt.Errorf("btree addr: timeout at %d/%d", done, len(trace))
	}
	dst := d.Stats()
	return dsa.Result{
		DSA: "BTreeIdx", Workload: "zipf", Kind: dsa.KindAddr,
		Cycles: uint64(k.Cycle()), DRAMAccesses: dst.Accesses(), DRAMReadWords: dst.WordsRead,
		OnChipHits: cache.Stats().Hits, OnChipMisses: cache.Stats().Misses, HitRate: cache.Stats().HitRate(),
		AvgLoadToUse: eng.Stats().AvgLoadToUse(),
		Energy:       meter.Energy(energy.DefaultParams()), Checked: okAll,
	}, nil
}
