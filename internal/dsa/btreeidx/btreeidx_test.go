package btreeidx

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/dram"
)

func smallWork() Work { return DefaultWork(100) } // 1000 keys, 4000 probes

func smallOpts() Options {
	return Options{Cfg: Config().Scaled(16), MaxCycles: 20_000_000}
}

func TestSpecCompiles(t *testing.T) {
	if _, err := Spec().Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestXCacheFunctional(t *testing.T) {
	r, err := RunXCache(smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("B-tree probe values diverged from the reference descent")
	}
	if r.HitRate < 0.3 {
		t.Fatalf("hit rate %v; Zipf reuse not captured", r.HitRate)
	}
}

func TestAddrFunctional(t *testing.T) {
	r, err := RunAddr(smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("addr variant diverged")
	}
}

func TestXCacheBeatsAddrOnTreeDescent(t *testing.T) {
	w, opt := smallWork(), smallOpts()
	x, err := RunXCache(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAddr(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	// The descent is several dependent node reads; meta-tag hits skip it
	// entirely, so the deeper the structure the bigger the gap.
	if x.Cycles >= a.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than addr descent (%d cyc)", x.Cycles, a.Cycles)
	}
	if x.AvgLoadToUse >= a.AvgLoadToUse {
		t.Errorf("X-Cache l2u %v not below addr %v", x.AvgLoadToUse, a.AvgLoadToUse)
	}
}

func TestSharedControllerAcrossFamilies(t *testing.T) {
	// The reusability claim: the B-tree walker runs on the same generator
	// configuration class as the paper's five DSAs (no new hardware).
	cfg := Config()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.MaxFillWords != 8 {
		t.Fatal("node fetches need 8-word fills")
	}
	if _, err := core.NewSystem(cfg.Scaled(32), dram.DefaultConfig(), Spec()); err != nil {
		t.Fatal(err)
	}
}
