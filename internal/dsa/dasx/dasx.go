// Package dasx reproduces the DASX DSA (ICS'15): a hardware data-structure
// iterator whose collector runs ahead of the compute unit, refilling an
// object cache in refill-compute-update rounds. We study the hash-table
// configuration on the same MonetDB/TPC-H probe workloads as Widx
// (§7.2). DASX's hashing is coupled with walking, so X-Cache's gains are
// larger than on Widx: a meta-tag hit skips hash, walk, and the
// round-barrier reload of the baseline's object cache.
package dasx

import (
	"fmt"

	"xcache/internal/addrcache"
	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/dsa"
	"xcache/internal/dsa/widx"
	"xcache/internal/energy"
	"xcache/internal/hashidx"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// Options configure a DASX run.
type Options struct {
	Cfg        core.Config // zero value → core.DASXConfig()
	DRAM       dram.Config
	MaxCycles  int
	RoundSize  int // objects per refill-compute-update round
	Lookahead  int // collector preload distance (X-Cache runs)
	ComputePer int // compute cycles per object in the compute phase
	// Check attaches the hardening harness to the X-Cache run.
	Check *check.Config
}

func (o *Options) defaults() {
	if o.Cfg.Sets == 0 {
		o.Cfg = core.DASXConfig()
	}
	if o.DRAM.Banks == 0 {
		o.DRAM = dram.DefaultConfig()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	if o.RoundSize == 0 {
		o.RoundSize = 64
	}
	if o.Lookahead == 0 {
		o.Lookahead = 64
	}
	if o.ComputePer == 0 {
		o.ComputePer = 2
	}
}

const preloadBit = uint64(1) << 40

// Spec is the DASX walker: the Widx hash-index walk plus negative
// caching — the collector records not-found objects as zero-sector
// entries so the compute stream's probe hits instead of re-walking the
// chain (DASX's collector "refills multiple objects; subsequent accesses
// are cache hits").
func Spec(shift uint) program.Spec {
	return program.Spec{
		Name:   "dasx",
		States: []string{"Meta", "Data"},
		Consts: map[string]int64{"HSHIFT": int64(shift)},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocr r1
				allocm
				lde r4, e1
				mul r5, r1, r4
				shr r5, r5, HSHIFT
				shl r5, r5, 3
				lde r4, e0
				add r5, r4, r5
				enqfilli r5, 1
				state Meta
			`},
			{State: "Meta", Event: "Fill", Asm: `
				peek r5, 0
				bnz r5, walk
				li r6, 0
				update r6, r6      ; negative entry: zero sectors
				enqresp r6, OK
				halt Valid
			walk:
				enqfilli r5, 3
				state Data
			`},
			{State: "Data", Event: "Fill", Asm: `
				peek r6, 0
				beq r6, r1, match
				peek r5, 2
				bnz r5, chase
				li r6, 0
				update r6, r6      ; negative entry: zero sectors
				enqresp r6, OK
				halt Valid
			chase:
				enqfilli r5, 3
				state Data
			match:
				peek r6, 1
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

// collector drives the X-Cache: a preload stream Lookahead probes ahead
// of the compute stream. Preload responses are discarded; compute
// responses are validated.
type collector struct {
	c          *ctrl.Controller
	trace      []uint64
	ix         *hashidx.Index
	preCursor  int
	cursor     int
	done       int
	lookahead  int
	computeAt  sim.Cycle
	computePer int
	ok         bool
}

func (dp *collector) Tick(cy sim.Cycle) {
	for {
		resp, popped := dp.c.RespQ.Pop()
		if !popped {
			break
		}
		if resp.ID&preloadBit != 0 {
			continue // decoupled preload: no consumer
		}
		dp.done++
		key := dp.trace[resp.ID]
		rid, present := dp.ix.RIDs[key]
		switch {
		case present && (resp.Status != program.StatusOK || resp.Words == 0 || resp.Value != rid):
			dp.ok = false
		case !present && !(resp.Status == program.StatusNotFound ||
			(resp.Status == program.StatusOK && resp.Words == 0)):
			dp.ok = false
		}
		// Update phase: fixed compute per consumed object.
		dp.computeAt = cy + sim.Cycle(dp.computePer)
	}

	// Compute stream first (it must never starve behind the collector):
	// one object at a time, gated by the update phase.
	if dp.cursor < len(dp.trace) && cy >= dp.computeAt && dp.cursor < dp.done+4 {
		req := ctrl.MetaReq{ID: uint64(dp.cursor), Op: ctrl.MetaLoad,
			Key: metatag.Key{dp.trace[dp.cursor], 0}, Issued: cy}
		if dp.c.ReqQ.Push(req) {
			dp.cursor++
		}
	}

	// Collector: run ahead of the compute stream, leaving queue headroom
	// so preloads never monopolize the meta port.
	for dp.preCursor < len(dp.trace) && dp.preCursor < dp.cursor+dp.lookahead &&
		dp.c.ReqQ.Len() < dp.c.ReqQ.Cap()/2 {
		req := ctrl.MetaReq{ID: preloadBit | uint64(dp.preCursor), Op: ctrl.MetaLoad,
			Key: metatag.Key{dp.trace[dp.preCursor], 0}, Issued: cy}
		if !dp.c.ReqQ.Push(req) {
			break
		}
		dp.preCursor++
	}
}

// RunXCache measures DASX over X-Cache with the decoupled collector
// preloading through meta loads.
func RunXCache(w widx.Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	sys, err := core.NewSystem(opt.Cfg, opt.DRAM, Spec(0))
	if err != nil {
		return dsa.Result{}, err
	}
	ix, trace := widx.BuildWorkload(w, sys.Img)
	prog, err := Spec(ix.Shift).Compile()
	if err != nil {
		return dsa.Result{}, err
	}
	if err := sys.Cache.Ctrl.LoadProgram(prog); err != nil {
		return dsa.Result{}, fmt.Errorf("dasx xcache: %w", err)
	}
	sys.Cache.SetEnv(0, ix.Table)
	sys.Cache.SetEnv(1, hashidx.HashMul)

	dp := &collector{c: sys.Cache.Ctrl, trace: trace, ix: ix,
		lookahead: opt.Lookahead, computePer: opt.ComputePer, ok: true}
	sys.K.Add(dp)
	h := check.Attach(sys.K, opt.Check)
	if ok, rep := check.Run(h, sys.K, func() bool { return dp.done == len(trace) }, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("dasx xcache: aborted at %d/%d: %w", dp.done, len(trace), rep.Failure())
	}
	if t := sys.Cache.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("dasx xcache: %w", t)
	}
	st := sys.Snapshot()
	return dsa.Result{
		DSA: "DASX", Workload: w.Profile.Name, Kind: dsa.KindXCache,
		Cycles: st.Cycles, DRAMAccesses: st.DRAM.Accesses(), DRAMReadWords: st.DRAM.WordsRead,
		OnChipHits: st.Ctrl.Hits, OnChipMisses: st.Ctrl.Misses, HitRate: st.Ctrl.HitRate(),
		AvgLoadToUse: st.Ctrl.AvgLoadToUse(), HitLoadToUse: st.Ctrl.AvgHitLoadToUse(),
		L2UP50: st.Ctrl.L2UHist.Percentile(0.5), L2UP99: st.Ctrl.L2UHist.Percentile(0.99),
		Occupancy: st.Ctrl.OccupancyByteCycles,
		Energy:    st.Energy, Checked: dp.ok,
		FillRetries:  st.Ctrl.FillRetries,
		DroppedFills: st.DRAM.DroppedResps,
		ParityScrubs: st.Ctrl.ParityScrubs,
	}, nil
}

// RunAddr measures the same workload over an address cache with an ideal
// walker (no hashing cost, no round barriers).
func RunAddr(w widx.Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	r, err := widx.RunAddr(w, widx.Options{Cfg: opt.Cfg, DRAM: opt.DRAM, MaxCycles: opt.MaxCycles})
	r.DSA = "DASX"
	r.Kind = dsa.KindAddr
	return r, err
}

// RunBaseline measures the original DASX: refill-compute-update rounds
// over a hardwired object cache that is reloaded every round, with
// hashing coupled into every walk.
func RunBaseline(w widx.Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	cache := addrcache.New(k, widx.AddrGeometry(opt.Cfg), d.Req, d.Resp, meter)
	eng := addrcache.NewEngine(k, addrcache.EngineConfig{Contexts: opt.Cfg.NumActive}, cache)
	ix, trace := widx.BuildWorkload(w, img)

	var (
		roundStart = 0
		inflight   = 0
		issued     = 0
		done       = 0
		okAll      = true
		computing  = sim.Cycle(0)
	)
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, popped := eng.Resp.Pop()
			if !popped {
				break
			}
			inflight--
			done++
			key := trace[resp.ID]
			rid, present := ix.RIDs[key]
			if present != resp.Result.Found || (present && rid != resp.Result.Value) {
				okAll = false
			}
		}
		if cy < computing {
			return // compute phase of the previous round
		}
		roundEnd := roundStart + opt.RoundSize
		if roundEnd > len(trace) {
			roundEnd = len(trace)
		}
		// Refill phase: issue this round's objects.
		for issued < roundEnd {
			hash := w.Profile.HashCycles
			job := addrcache.Job{ID: uint64(issued),
				W: widx.NewProbeWalk(ix, trace[issued], hash), Issued: cy}
			if !eng.Jobs.Push(job) {
				return
			}
			meter.AddOps += uint64(hash)
			issued++
			inflight++
		}
		// Round barrier: all refills done → compute phase → reload cache.
		if inflight == 0 && issued == roundEnd && done == issued && roundStart < len(trace) {
			computing = cy + sim.Cycle(opt.ComputePer*(roundEnd-roundStart))
			roundStart = roundEnd
			cache.InvalidateAll()
		}
	})
	k.Add(pump)
	if !k.RunUntil(func() bool { return done == len(trace) && sim.Cycle(0) >= 0 && k.Cycle() >= computing }, opt.MaxCycles) {
		return dsa.Result{}, fmt.Errorf("dasx baseline: timeout at %d/%d", done, len(trace))
	}
	dst := d.Stats()
	return dsa.Result{
		DSA: "DASX", Workload: w.Profile.Name, Kind: dsa.KindBaseline,
		Cycles: uint64(k.Cycle()), DRAMAccesses: dst.Accesses(), DRAMReadWords: dst.WordsRead,
		OnChipHits: cache.Stats().Hits, OnChipMisses: cache.Stats().Misses, HitRate: cache.Stats().HitRate(),
		AvgLoadToUse: eng.Stats().AvgLoadToUse(),
		Energy:       meter.Energy(energy.DefaultParams()), Checked: okAll,
	}, nil
}
