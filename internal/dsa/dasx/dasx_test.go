package dasx

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
)

// smallWork uses the skewed string-key profile (TPC-H-19): the regime
// where index reuse exists for any cache to capture.
func smallWork() widx.Work {
	return widx.DefaultWork(hashidx.TPCH()[0], 200) // 1000 keys, 4000 probes
}

func smallOpts() Options {
	return Options{Cfg: core.DASXConfig().Scaled(32), MaxCycles: 20_000_000}
}

func TestXCacheFunctional(t *testing.T) {
	r, err := RunXCache(smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("functional validation failed")
	}
	if r.HitRate <= 0.2 {
		t.Fatalf("implausible hit rate %v", r.HitRate)
	}
}

func TestBaselineFunctionalAndRounds(t *testing.T) {
	r, err := RunBaseline(smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("functional validation failed")
	}
}

func TestXCacheBeatsBaseline(t *testing.T) {
	w, opt := smallWork(), smallOpts()
	x, err := RunXCache(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cycles >= b.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than DASX baseline (%d cyc)", x.Cycles, b.Cycles)
	}
	// The flush-per-round baseline refetches; X-Cache retains reuse.
	if x.DRAMAccesses >= b.DRAMAccesses {
		t.Errorf("X-Cache DRAM %d not below baseline %d", x.DRAMAccesses, b.DRAMAccesses)
	}
}

func TestPreloadingHidesLatency(t *testing.T) {
	w := smallWork()
	w = widx.DefaultWork(hashidx.TPCH()[0], 400) // high-reuse, latency-bound
	with := smallOpts()
	without := smallOpts()
	without.Lookahead = 1 // effectively no decoupling
	a, err := RunXCache(w, with)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunXCache(w, without)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles >= b.Cycles {
		t.Errorf("lookahead %d (%d cyc) not faster than lookahead 1 (%d cyc)",
			with.Lookahead, a.Cycles, b.Cycles)
	}
}
