// Package dsa defines the shared measurement vocabulary for the five
// domain-specific accelerators evaluated in the paper (Widx, DASX,
// GraphPulse, SpArch, Gamma). Each DSA subpackage provides three runners
// over the same workload:
//
//	RunXCache   — the DSA datapath in front of a programmed X-Cache;
//	RunAddr     — the same datapath over an address-tagged cache with an
//	              ideal (zero-decision-cost) walker, the paper's red bar;
//	RunBaseline — the original DSA's hardwired orchestration, the paper's
//	              black bar.
//
// All runners validate their functional output against a pure-Go
// reference before reporting numbers.
package dsa

import (
	"fmt"

	"xcache/internal/energy"
)

// Kind distinguishes the three storage idioms under comparison.
type Kind string

// The comparison points of Fig 14.
const (
	KindXCache   Kind = "xcache"
	KindAddr     Kind = "addr"
	KindBaseline Kind = "baseline"
)

// Result is one simulation measurement.
type Result struct {
	DSA      string
	Workload string
	Kind     Kind

	Cycles        uint64
	DRAMAccesses  uint64
	DRAMReadWords uint64
	OnChipHits    uint64
	OnChipMisses  uint64
	HitRate       float64
	AvgLoadToUse  float64 // mean issue→response over all accesses
	HitLoadToUse  float64 // mean over on-chip hits only (meta-tag short-circuit)
	L2UP50        uint64  // median load-to-use (bucketed upper bound)
	L2UP99        uint64  // tail load-to-use
	Occupancy     uint64  // byte-cycles (Fig 7 metric)

	Energy energy.Breakdown

	// Checked is true when the run's functional output matched the
	// reference implementation.
	Checked bool

	// Hardening counters, nonzero only when the run was supervised by
	// internal/check with fault injection enabled: fills re-issued after
	// a response timeout, DRAM read responses the injector dropped, and
	// meta-tag entries invalidated by the parity scrub.
	FillRetries  uint64
	DroppedFills uint64
	ParityScrubs uint64
}

// Speedup returns other.Cycles / r.Cycles (how much faster r is).
func (r Result) Speedup(other Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(other.Cycles) / float64(r.Cycles)
}

// String summarizes for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s[%s]: %d cyc, %d DRAM, hit %.2f, l2u %.1f, %.0f pJ",
		r.DSA, r.Workload, r.Kind, r.Cycles, r.DRAMAccesses, r.HitRate,
		r.AvgLoadToUse, r.Energy.OnChip())
}
