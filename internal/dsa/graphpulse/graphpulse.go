// Package graphpulse reproduces the GraphPulse DSA (MICRO'20): an
// event-driven asynchronous graph processor. Its event queue — which
// coalesces delta events to the same vertex — is replaced by X-Cache:
// incoming events are meta stores tagged by vertex id, merged by addition
// in the data RAM when the id hits, allocated when it misses (no DRAM
// walk at all). Between supersteps the datapath drains the coalesced
// events, streams the drained vertices' adjacency from a dedicated DRAM
// channel, and emits the next event wave (§7.2).
//
// Deltas are Q20.44 fixed point so the coalescing add is an integer
// operation, as in hardware.
package graphpulse

import (
	"fmt"
	"math"
	"sort"

	"xcache/internal/addrcache"
	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/dsa"
	"xcache/internal/energy"
	"xcache/internal/graph"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// FixShift is the fixed-point scale for delta payloads.
const FixShift = 44

// ToFix converts a float delta to the payload representation.
func ToFix(x float64) uint64 { return uint64(int64(x * (1 << FixShift))) }

// FromFix converts a payload back to float.
func FromFix(v uint64) float64 { return float64(int64(v)) / (1 << FixShift) }

// Work is one PageRank problem.
type Work struct {
	N     int
	E     int
	Seed  int64
	Name  string
	Eps   float64 // delta threshold: smaller drained deltas are discarded
	MaxSS int     // superstep cap
}

// P2PGnutella08 returns the paper's small input (N=6.3K, NNZ=21K),
// divided by scale.
func P2PGnutella08(scale int) Work {
	if scale < 1 {
		scale = 1
	}
	return Work{N: 6300 / scale, E: 21000 / scale, Seed: 8, Name: "p2p-08", Eps: 1e-7, MaxSS: 300}
}

// WebGoogle returns the paper's large input (N=916K, NNZ=5.1M), divided
// by scale.
func WebGoogle(scale int) Work {
	if scale < 1 {
		scale = 1
	}
	return Work{N: 916000 / scale, E: 5100000 / scale, Seed: 99, Name: "web-Google", Eps: 1e-7, MaxSS: 300}
}

// Options configure a run.
type Options struct {
	Cfg       core.Config // zero → core.GraphPulseConfig()
	DRAM      dram.Config
	MaxCycles int
	PEs       int // processing elements emitting events per cycle
	Damping   float64
	// Check attaches the hardening harness to the X-Cache run.
	Check *check.Config
}

func (o *Options) defaults() {
	if o.Cfg.Sets == 0 {
		o.Cfg = core.GraphPulseConfig()
	}
	if o.DRAM.Banks == 0 {
		o.DRAM = dram.DefaultConfig()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 500_000_000
	}
	if o.PEs == 0 {
		// Enough PEs that event-insertion throughput — the X-Cache port,
		// what Fig 18 sweeps — is the binding constraint.
		o.PEs = 16
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
}

// Spec is the GraphPulse event-store walker: a store miss allocates an
// entry for the vertex and deposits the payload. Merges on hits happen in
// the dedicated hit pipeline; there is no DRAM walk — the event structure
// lives entirely on chip.
func Spec() program.Spec {
	return program.Spec{
		Name: "eventstore",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaStore", Asm: `
				allocm
				allocdi r7, 1
				writed r7, r0     ; deposit the event payload
				li r8, 1
				update r7, r8
				halt Valid
			`},
		},
	}
}

// batch is a group of drained vertices with consecutive ids whose
// adjacency is fetched as one sequential burst — GraphPulse drains its
// event queue in vertex order precisely so edge fetches stream.
type batch struct {
	vs     []int
	deltas []float64
	words  int // adjacency words still to arrive
	cur    int // vertex being emitted
	emit   int // next out-edge of that vertex
}

type genState struct {
	v     int
	delta float64
	words int // adjacency words still to arrive
	emit  int // next out-edge index to emit
}

type algoMode int

const (
	modePageRank algoMode = iota
	modeSSSP
)

// engine is the PE array plus the superstep drain loop. It runs either
// delta-PageRank (add-coalescing events) or SSSP (min-coalescing events)
// — the same hardware, a different merge operator in the hit pipeline.
type engine struct {
	mode    algoMode
	src     int
	settled []int64 // SSSP: best applied distance per vertex
	c       *ctrl.Controller
	g       *graph.Graph
	lay     graph.Layout
	adj     *dram.DRAM // dedicated adjacency stream channel
	pes     int
	damping float64
	eps     float64
	maxSS   int

	rank         []float64
	drained      []ctrl.Drained
	fetchQ       []*batch       // awaiting adjacency
	readyQ       []*batch       // generating events
	inAdj        map[uint64]int // outstanding adjacency request id → fetchQ slot
	issueQ       []dram.Request // adjacency requests not yet accepted
	issueSlots   []int          // fetchQ slot per queued request
	nextID       uint64
	lastPush     sim.Cycle // last cycle an event was pushed (staged commits next cycle)
	drainedTotal uint64
	ss           int
	events       uint64
	done         bool
	seeded       bool
	seedPos      int
}

func (e *engine) Tick(cy sim.Cycle) {
	// Discard meta responses (stores need no consumer).
	for {
		if _, ok := e.c.RespQ.Pop(); !ok {
			break
		}
	}
	// Adjacency arrivals unblock generation.
	for {
		resp, ok := e.adj.Resp.Pop()
		if !ok {
			break
		}
		slot, exists := e.inAdj[resp.ID]
		if !exists {
			panic("graphpulse: stray adjacency response")
		}
		delete(e.inAdj, resp.ID)
		e.fetchQ[slot].words -= len(resp.Data)
	}
	// Move fully fetched vertices to the ready queue (in order). A head
	// with unissued requests still has words outstanding by construction.
	for len(e.fetchQ) > 0 && e.fetchQ[0].words <= 0 {
		e.readyQ = append(e.readyQ, e.fetchQ[0])
		e.fetchQ = e.fetchQ[1:]
		e.reindexAdj()
	}

	// Seeding superstep. PageRank injects (1-d)/N into every vertex;
	// SSSP injects distance 0 at the source.
	if !e.seeded {
		if e.mode == modeSSSP {
			if e.seedPos == 0 {
				req := ctrl.MetaReq{ID: e.nid(), Op: ctrl.MetaStoreMergeMin,
					Key: metatag.Key{uint64(e.src), 0}, Payload: 0, Issued: cy}
				if e.c.ReqQ.Push(req) {
					e.seedPos = 1
					e.lastPush = cy
				}
			}
			if e.seedPos == 1 && cy >= e.lastPush+2 && e.c.Idle() {
				e.seeded = true
			}
			return
		}
		init := (1 - e.damping) / float64(e.g.N)
		for i := 0; i < e.pes && e.seedPos < e.g.N; i++ {
			req := ctrl.MetaReq{ID: e.nid(), Op: ctrl.MetaStoreMerge,
				Key: metatag.Key{uint64(e.seedPos), 0}, Payload: ToFix(init), Issued: cy}
			if !e.c.ReqQ.Push(req) {
				break
			}
			e.lastPush = cy
			e.rank[e.seedPos] += init
			e.seedPos++
		}
		if e.seedPos == e.g.N && cy >= e.lastPush+2 && e.c.Idle() {
			e.seeded = true
		}
		return
	}

	// Generation: PEs emit events from ready batches.
	emitted := 0
	for emitted < e.pes && len(e.readyQ) > 0 {
		b := e.readyQ[0]
		if b.cur >= len(b.vs) {
			e.readyQ = e.readyQ[1:]
			continue
		}
		v := b.vs[b.cur]
		out := e.g.Out(v)
		if b.emit >= len(out) {
			b.cur++
			b.emit = 0
			continue
		}
		w := out[b.emit]
		var req ctrl.MetaReq
		var share float64
		if e.mode == modeSSSP {
			req = ctrl.MetaReq{ID: e.nid(), Op: ctrl.MetaStoreMergeMin,
				Key: metatag.Key{uint64(w), 0}, Payload: uint64(b.deltas[b.cur]) + 1, Issued: cy}
		} else {
			share = e.damping * b.deltas[b.cur] / float64(len(out))
			req = ctrl.MetaReq{ID: e.nid(), Op: ctrl.MetaStoreMerge,
				Key: metatag.Key{uint64(w), 0}, Payload: ToFix(share), Issued: cy}
		}
		if !e.c.ReqQ.Push(req) {
			break
		}
		e.lastPush = cy
		if e.mode == modePageRank {
			e.rank[w] += share
		}
		e.events++
		b.emit++
		emitted++
	}

	// Issue queued adjacency requests (bounded per cycle).
	for i := 0; i < 8 && len(e.issueQ) > 0; i++ {
		if !e.adj.Req.Push(e.issueQ[0]) {
			break
		}
		e.inAdj[e.issueQ[0].ID] = e.issueSlots[0]
		e.issueQ = e.issueQ[1:]
		e.issueSlots = e.issueSlots[1:]
	}

	// Prefetch adjacency for drained vertices: a decoupled fetcher running
	// well ahead of the PEs. Drained events are sorted by vertex id (the
	// order DrainStable+sort produces), so consecutive vertices' edge
	// lists coalesce into single sequential bursts.
	for len(e.drained) > 0 && len(e.inAdj)+len(e.issueQ) < 48 {
		b := &batch{}
		spanStart := -1
		for len(e.drained) > 0 {
			d := e.drained[0]
			v := int(d.Key[0])
			var delta float64
			if e.mode == modeSSSP {
				dist := int64(d.Value)
				if dist >= e.settled[v] {
					e.drained = e.drained[1:]
					continue // stale relaxation: event discarded
				}
				if e.g.OutDeg(v) == 0 {
					e.settled[v] = dist
					e.drained = e.drained[1:]
					continue
				}
				delta = float64(dist)
			} else {
				delta = FromFix(d.Value)
				if math.Abs(delta) < e.eps || e.g.OutDeg(v) == 0 {
					e.drained = e.drained[1:]
					continue // below threshold or sink: event discarded
				}
			}
			span := int(e.g.OutPtr[v+1]) + 2
			if spanStart < 0 {
				spanStart = int(e.g.OutPtr[v])
			}
			if span-spanStart > 64 && len(b.vs) > 0 {
				break // burst full: v stays at the head for the next batch
			}
			// The vertex is committed to this batch; only now may SSSP
			// settle its distance (settling earlier would make the
			// deferred-to-next-batch path discard it as stale).
			if e.mode == modeSSSP {
				e.settled[v] = int64(d.Value)
			}
			e.drained = e.drained[1:]
			b.vs = append(b.vs, v)
			b.deltas = append(b.deltas, delta)
			b.words = span - spanStart
		}
		if len(b.vs) == 0 {
			continue
		}
		addr := e.lay.OutDst + uint64(spanStart)*8
		for w := 0; w < b.words; w += 64 {
			n := b.words - w
			if n > 64 {
				n = 64
			}
			e.queueFetch(addr+uint64(w)*8, n, len(e.fetchQ))
		}
		e.fetchQ = append(e.fetchQ, b)
	}

	// Superstep barrier: all events applied (including pushes still staged
	// in the registered request queue — they commit a cycle after the
	// push), all generation finished.
	if len(e.drained) == 0 && len(e.fetchQ) == 0 && len(e.readyQ) == 0 &&
		len(e.inAdj) == 0 && len(e.issueQ) == 0 && cy >= e.lastPush+2 &&
		e.c.Idle() && e.adj.Idle() {
		e.ss++
		n := e.c.DrainStable(func(d ctrl.Drained) {
			e.drained = append(e.drained, d)
		})
		e.drainedTotal += uint64(n)
		sort.Slice(e.drained, func(i, j int) bool {
			return e.drained[i].Key[0] < e.drained[j].Key[0]
		})
		if n == 0 || e.ss > e.maxSS {
			e.done = true
		}
	}
}

func (e *engine) nid() uint64 {
	e.nextID++
	return e.nextID
}

func (e *engine) queueFetch(addr uint64, words, slot int) {
	id := e.nid()
	e.issueQ = append(e.issueQ, dram.Request{ID: id, Addr: addr, Words: words})
	e.issueSlots = append(e.issueSlots, slot)
}

// reindexAdj repairs slot references after the head of fetchQ retires.
func (e *engine) reindexAdj() {
	for id, slot := range e.inAdj {
		e.inAdj[id] = slot - 1
	}
	for i := range e.issueSlots {
		e.issueSlots[i]--
	}
}

// run executes PageRank to convergence over X-Cache (or its hardwired
// twin) and validates ranks against the delta-PageRank reference.
func run(w Work, opt Options, hardwired bool) (dsa.Result, error) {
	opt.defaults()
	cfg := opt.Cfg
	cfg.Hardwired = hardwired
	g := graph.RMAT(w.N, w.E, w.Seed)

	sys, err := core.NewSystem(cfg, opt.DRAM, Spec())
	if err != nil {
		return dsa.Result{}, err
	}
	lay := g.WriteTo(sys.Img)
	// GraphPulse streams adjacency over a wide dedicated interface; the
	// event-insertion path, not edge bandwidth, is the design bottleneck
	// Fig 18 studies.
	adjCfg := opt.DRAM
	adjCfg.TBusPerWord = 0
	adj := dram.New(sys.K, adjCfg, sys.Img)

	e := &engine{c: sys.Cache.Ctrl, g: g, lay: lay, adj: adj,
		pes: opt.PEs, damping: opt.Damping, eps: w.Eps, maxSS: w.MaxSS,
		rank: make([]float64, g.N), inAdj: map[uint64]int{}}
	sys.K.Add(e)

	h := check.Attach(sys.K, opt.Check)
	if ok, rep := check.Run(h, sys.K, func() bool { return e.done }, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("graphpulse: aborted in superstep %d: %w", e.ss, rep.Failure())
	}
	if t := sys.Cache.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("graphpulse: %w", t)
	}

	ref, _ := graph.DeltaPageRank(g, graph.PageRankParams{Damping: opt.Damping, Eps: w.Eps, MaxIter: w.MaxSS})
	checked := true
	for v := range ref {
		if math.Abs(ref[v]-e.rank[v]) > 1e-4*(1+math.Abs(ref[v])) {
			checked = false
			break
		}
	}

	st := sys.Snapshot()
	kind := dsa.KindXCache
	if hardwired {
		kind = dsa.KindBaseline
	}
	return dsa.Result{
		DSA: "GraphPulse", Workload: w.Name, Kind: kind,
		Cycles:        st.Cycles,
		DRAMAccesses:  st.DRAM.Accesses() + adj.Stats().Accesses(),
		DRAMReadWords: st.DRAM.WordsRead + adj.Stats().WordsRead,
		OnChipHits:    st.Ctrl.Hits, OnChipMisses: st.Ctrl.Misses, HitRate: st.Ctrl.HitRate(),
		AvgLoadToUse: st.Ctrl.AvgLoadToUse(), HitLoadToUse: st.Ctrl.AvgHitLoadToUse(),
		L2UP50: st.Ctrl.L2UHist.Percentile(0.5), L2UP99: st.Ctrl.L2UHist.Percentile(0.99),
		Occupancy: st.Ctrl.OccupancyByteCycles,
		Energy:    st.Energy, Checked: checked,
		FillRetries:  st.Ctrl.FillRetries,
		DroppedFills: st.DRAM.DroppedResps,
		ParityScrubs: st.Ctrl.ParityScrubs,
	}, nil
}

// RunXCache measures GraphPulse with X-Cache as the event store.
func RunXCache(w Work, opt Options) (dsa.Result, error) { return run(w, opt, false) }

// RunBaseline measures the original hardwired event queue (identical
// structures, fixed-function controller).
func RunBaseline(w Work, opt Options) (dsa.Result, error) { return run(w, opt, true) }

// RunAddr measures the address-based alternative: deltas live in a dense
// DRAM-resident array accessed read-modify-write through an address
// cache, and every superstep must scan the whole array to find active
// vertices — the footprint and scan cost meta-tags eliminate. Delta
// values genuinely flow through the cache (fixed-point words in the
// memory image); the final ranks are validated against the reference.
func RunAddr(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	g := graph.RMAT(w.N, w.E, w.Seed)
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	blocks := opt.Cfg.Sets * opt.Cfg.Ways * opt.Cfg.WordsPerSector / 4
	ways := 8
	sets := 1
	for sets*2 <= blocks/ways {
		sets *= 2
	}
	cache := addrcache.New(k, addrcache.Config{Sets: sets, Ways: ways, BlockWords: 4}, d.Req, d.Resp, meter)
	adjCfg := opt.DRAM
	adjCfg.TBusPerWord = 0
	adj := dram.New(k, adjCfg, img)
	deltaArr := img.AllocWords(g.N + 8)
	_ = g.WriteTo(img)

	// Seed: every vertex starts with delta (1-d)/N, resident in memory.
	rank := make([]float64, g.N)
	acc := make([]uint64, g.N) // mirror of the accumulated fixed-point deltas
	init := (1 - opt.Damping) / float64(g.N)
	for v := 0; v < g.N; v++ {
		rank[v] = init
		acc[v] = ToFix(init)
		img.W64(deltaArr+uint64(v)*8, acc[v])
	}

	const (
		idWrite = 1 // stores: ack ignored
		idScan  = 2 // scan reads: data processed
	)
	var (
		ss          int
		doneAll     bool
		outstanding int
		scanCursor  int
		scanning    = true
		genQ        []genState
		adjOut      int
		events      uint64
		pendWrites  []addrcache.Access // stores awaiting queue space
	)
	pushWrite := func(a addrcache.Access, cache *addrcache.Cache) {
		if cache.ReqQ.Push(a) {
			outstanding++
			return
		}
		pendWrites = append(pendWrites, a)
	}
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, ok := cache.RespQ.Pop()
			if !ok {
				break
			}
			outstanding--
			if resp.ID != idScan {
				continue
			}
			// Scan data: find active vertices, clear their deltas.
			for i, word := range resp.Data {
				v := int((resp.BlockBase-deltaArr)/8) + i
				if v < 0 || v >= g.N {
					continue
				}
				delta := FromFix(word)
				if math.Abs(delta) < w.Eps {
					continue
				}
				acc[v] = 0
				pushWrite(addrcache.Access{ID: idWrite, Addr: deltaArr + uint64(v)*8, Write: true, Data: 0, Issued: cy}, cache)
				if g.OutDeg(v) > 0 {
					genQ = append(genQ, genState{v: v, delta: delta})
				}
			}
		}
		for {
			if _, ok := adj.Resp.Pop(); !ok {
				break
			}
			adjOut--
		}
		if doneAll {
			return
		}
		// Flush stores that hit queue backpressure (they carry state the
		// next scan depends on).
		for len(pendWrites) > 0 {
			if !cache.ReqQ.Push(pendWrites[0]) {
				return
			}
			outstanding++
			pendWrites = pendWrites[1:]
		}
		// Phase 1: scan the delta array (every block, active or not).
		if scanning {
			for i := 0; i < 4 && scanCursor < g.N; i++ {
				if !cache.ReqQ.Push(addrcache.Access{ID: idScan, Addr: deltaArr + uint64(scanCursor)*8, Issued: cy}) {
					return
				}
				outstanding++
				scanCursor += 4 // one block covers 4 vertices
			}
			if scanCursor >= g.N && outstanding == 0 {
				scanning = false
				ss++
				if len(genQ) == 0 || ss > w.MaxSS {
					doneAll = true
				}
			}
			return
		}
		// Phase 2: generate events; each is an RMW on delta[w] through the
		// cache, plus adjacency streaming.
		emitted := 0
		for emitted < opt.PEs && len(genQ) > 0 {
			gs := &genQ[0]
			out := g.Out(gs.v)
			if gs.emit == 0 {
				if adjOut >= 8 {
					break // adjacency stream saturated
				}
				adj.Req.MustPush(dram.Request{ID: uint64(gs.v),
					Addr: 0x100000 + uint64(gs.v)*64, Words: len(out) + 2})
				adjOut++
			}
			if gs.emit >= len(out) {
				genQ = genQ[1:]
				continue
			}
			wv := out[gs.emit]
			share := opt.Damping * gs.delta / float64(len(out))
			newAcc := acc[wv] + ToFix(share)
			if !cache.ReqQ.CanPush() {
				break
			}
			pushWrite(addrcache.Access{ID: idWrite, Addr: deltaArr + uint64(wv)*8, Write: true, Data: newAcc, Issued: cy}, cache)
			acc[wv] = newAcc
			rank[wv] += share
			events++
			gs.emit++
			emitted++
		}
		if len(genQ) == 0 && outstanding == 0 && adjOut == 0 {
			scanning = true
			scanCursor = 0
		}
	})
	k.Add(pump)
	if !k.RunUntil(func() bool { return doneAll }, opt.MaxCycles) {
		return dsa.Result{}, fmt.Errorf("graphpulse addr: timeout in superstep %d", ss)
	}
	ref, _ := graph.DeltaPageRank(g, graph.PageRankParams{Damping: opt.Damping, Eps: w.Eps, MaxIter: w.MaxSS})
	checked := true
	for v := range ref {
		if math.Abs(ref[v]-rank[v]) > 1e-4*(1+math.Abs(ref[v])) {
			checked = false
			break
		}
	}
	dst := d.Stats()
	return dsa.Result{
		DSA: "GraphPulse", Workload: w.Name, Kind: dsa.KindAddr,
		Cycles:        uint64(k.Cycle()),
		DRAMAccesses:  dst.Accesses() + adj.Stats().Accesses(),
		DRAMReadWords: dst.WordsRead + adj.Stats().WordsRead,
		OnChipHits:    cache.Stats().Hits, OnChipMisses: cache.Stats().Misses, HitRate: cache.Stats().HitRate(),
		Energy:  meter.Energy(energy.DefaultParams()),
		Checked: checked,
	}, nil
}

// RunSSSP runs single-source shortest paths (unit weights) on the same
// event-store hardware: events coalesce with MIN instead of ADD in the
// hit pipeline — one changed merge operator, everything else identical.
// Distances are validated against a BFS reference.
func RunSSSP(w Work, opt Options, src int) (dsa.Result, error) {
	opt.defaults()
	g := graph.RMAT(w.N, w.E, w.Seed)
	sys, err := core.NewSystem(opt.Cfg, opt.DRAM, Spec())
	if err != nil {
		return dsa.Result{}, err
	}
	lay := g.WriteTo(sys.Img)
	adjCfg := opt.DRAM
	adjCfg.TBusPerWord = 0
	adj := dram.New(sys.K, adjCfg, sys.Img)

	const inf = int64(1) << 30
	e := &engine{mode: modeSSSP, src: src, c: sys.Cache.Ctrl, g: g, lay: lay, adj: adj,
		pes: opt.PEs, damping: opt.Damping, eps: w.Eps, maxSS: w.MaxSS,
		rank: make([]float64, g.N), settled: make([]int64, g.N), inAdj: map[uint64]int{}}
	for v := range e.settled {
		e.settled[v] = inf
	}
	sys.K.Add(e)
	h := check.Attach(sys.K, opt.Check)
	if ok, rep := check.Run(h, sys.K, func() bool { return e.done }, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("graphpulse sssp: aborted in superstep %d: %w", e.ss, rep.Failure())
	}
	if t := sys.Cache.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("graphpulse sssp: %w", t)
	}

	ref := graph.BFS(g, src)
	checked := true
	for v := range ref {
		got := e.settled[v]
		if v == src {
			// The source settles at 0 via its seed event.
			if got != 0 {
				checked = false
				break
			}
			continue
		}
		if ref[v] >= inf {
			if got < inf {
				checked = false
				break
			}
			continue
		}
		if got != ref[v] {
			checked = false
			break
		}
	}

	st := sys.Snapshot()
	return dsa.Result{
		DSA: "GraphPulse", Workload: w.Name + "/sssp", Kind: dsa.KindXCache,
		Cycles:        st.Cycles,
		DRAMAccesses:  st.DRAM.Accesses() + adj.Stats().Accesses(),
		DRAMReadWords: st.DRAM.WordsRead + adj.Stats().WordsRead,
		OnChipHits:    st.Ctrl.Hits, OnChipMisses: st.Ctrl.Misses, HitRate: st.Ctrl.HitRate(),
		AvgLoadToUse: st.Ctrl.AvgLoadToUse(), HitLoadToUse: st.Ctrl.AvgHitLoadToUse(),
		L2UP50: st.Ctrl.L2UHist.Percentile(0.5), L2UP99: st.Ctrl.L2UHist.Percentile(0.99),
		Occupancy: st.Ctrl.OccupancyByteCycles,
		Energy:    st.Energy, Checked: checked,
		FillRetries:  st.Ctrl.FillRetries,
		DroppedFills: st.DRAM.DroppedResps,
		ParityScrubs: st.Ctrl.ParityScrubs,
	}, nil
}
