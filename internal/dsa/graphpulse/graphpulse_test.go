package graphpulse

import (
	"math"
	"testing"

	"xcache/internal/core"
)

func smallWork() Work {
	w := P2PGnutella08(10) // N=630, E=2100
	return w
}

func smallOpts() Options {
	cfg := core.GraphPulseConfig()
	cfg.Sets = 1024 // ≥ N, identity-indexed: collision-free event store
	cfg.Sectors = 2048
	return Options{Cfg: cfg, MaxCycles: 100_000_000}
}

func TestFixedPointRoundTrip(t *testing.T) {
	for _, x := range []float64{0, 1e-7, 0.25, -0.001, 0.9999} {
		if got := FromFix(ToFix(x)); math.Abs(got-x) > 1e-12 {
			t.Fatalf("fix round trip %v -> %v", x, got)
		}
	}
}

func TestXCachePageRankConverges(t *testing.T) {
	r, err := RunXCache(smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("ranks diverged from the delta-PageRank reference")
	}
	if r.HitRate <= 0.3 {
		t.Fatalf("event coalescing ineffective: hit rate %v", r.HitRate)
	}
	// The event store never walks DRAM; the only cache-side DRAM traffic
	// would be dirty spills, which a collision-free store avoids.
	if r.DRAMAccesses == 0 {
		t.Fatal("adjacency streaming missing")
	}
}

func TestBaselineComparable(t *testing.T) {
	w, opt := smallWork(), smallOpts()
	x, err := RunXCache(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Checked {
		t.Fatal("baseline diverged")
	}
	// Every insert of a newly active vertex runs the microcoded allocation
	// routine, so GraphPulse is the most alloc-heavy DSA; parity within
	// ~1.5x of the hardwired FSM is the expected envelope here.
	ratio := float64(x.Cycles) / float64(b.Cycles)
	if ratio > 1.5 {
		t.Errorf("programmable event store %.2fx slower than hardwired", ratio)
	}
}

func TestAddrScanPenalty(t *testing.T) {
	w, opt := smallWork(), smallOpts()
	x, err := RunXCache(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAddr(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Checked {
		t.Fatal("addr variant diverged")
	}
	if x.Cycles >= a.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than dense-array scan (%d cyc)", x.Cycles, a.Cycles)
	}
}

func TestSSSPMinCoalescing(t *testing.T) {
	// Same event store, MIN merge operator: distances must equal BFS.
	r, err := RunSSSP(smallWork(), smallOpts(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("SSSP distances diverged from the BFS reference")
	}
	if r.HitRate <= 0 {
		t.Fatal("no relaxations coalesced in the event store")
	}
}

func TestSSSPDifferentSources(t *testing.T) {
	for _, src := range []int{1, 17, 100} {
		r, err := RunSSSP(smallWork(), smallOpts(), src)
		if err != nil {
			t.Fatalf("src %d: %v", src, err)
		}
		if !r.Checked {
			t.Fatalf("src %d: distances wrong", src)
		}
	}
}
