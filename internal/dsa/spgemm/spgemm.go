// Package spgemm reproduces the two sparse-GEMM DSAs of §5: SpArch
// (outer-product, HPCA'20) and Gamma (Gustavson's algorithm, ASPLOS'21).
// Both stream the multiplier matrix A from DRAM and use X-Cache to hold
// rows of matrix B, meta-tagged by row index. The walker reads
// B.row_ptr[k], allocates a variable number of sectors, and performs a
// tiled refill of the row's (col,val) pairs — SpArch and Gamma share the
// exact same X-Cache microarchitecture and walker; only the datapath
// streaming order differs (§1: "we only had to reprogram the controller").
package spgemm

import (
	"fmt"
	"math"

	"xcache/internal/addrcache"
	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/dsa"
	"xcache/internal/energy"
	"xcache/internal/hier"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
	"xcache/internal/sparse"
)

// Algorithm selects the dataflow.
type Algorithm string

// The two SpGEMM dataflows of §3.2/§5.
const (
	// SpArch streams A column-major (CSC) and pairs column k of A with
	// row k of B: near-sequential B rows, hidden by decoupled preload.
	SpArch Algorithm = "SpArch"
	// Gamma streams A row-major (Gustavson) and requests B row k for
	// every nonzero A[i,k]: dynamic, input-dependent reuse of B rows.
	Gamma Algorithm = "Gamma"
	// Inner is the paper's Fig 2 motivating dataflow: inner-product
	// SpGEMM with B stored column-major (CSC). X-Cache is meta-tagged by
	// B's column index; reuse is entirely input-dependent and conditional
	// on A's nonzero pattern. It runs on the same microarchitecture and
	// walker as SpArch/Gamma — only the metadata binding (CSC instead of
	// CSR) and the dataflow change.
	Inner Algorithm = "Inner"
)

// Work is one SpGEMM problem.
type Work struct {
	N    int
	NNZ  int
	Seed int64
}

// P2PGnutella31 returns the paper's SpGEMM input scale (N=67K, NNZ=147K),
// divided by scale for unit tests.
func P2PGnutella31(scale int) Work {
	if scale < 1 {
		scale = 1
	}
	return Work{N: 67000 / scale, NNZ: 147000 / scale, Seed: 31}
}

// Options configure a run.
type Options struct {
	Cfg       core.Config // zero → core.SpArchConfig()/GammaConfig()
	DRAM      dram.Config
	MaxCycles int
	Lanes     int // multiplier lanes (compute cycles = nnz products / lanes)
	Lookahead int // SpArch decoupled-preload distance (rows)
	// Check attaches the hardening harness to the X-Cache run.
	Check *check.Config
}

func (o *Options) defaults(alg Algorithm) {
	if o.Cfg.Sets == 0 {
		switch alg {
		case SpArch, Inner:
			o.Cfg = core.SpArchConfig()
		default:
			o.Cfg = core.GammaConfig()
		}
	}
	if o.DRAM.Banks == 0 {
		o.DRAM = dram.DefaultConfig()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 200_000_000
	}
	if o.Lanes == 0 {
		o.Lanes = 4
	}
	if o.Lookahead == 0 {
		o.Lookahead = 8
	}
}

// Spec is the shared row-fetch walker: META (read row_ptr[k], row_ptr[k+1])
// → AG/DATA (tiled refill of the row's interleaved (col,val) pairs in
// 8-word bursts, placed by fill address). Requires WordsPerSector = 4.
func Spec() program.Spec {
	return program.Spec{
		Name:   "rowfetch",
		States: []string{"Meta", "Filling"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocr r1
				allocm
				lde r4, e0         ; B.row_ptr base
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 2     ; row_ptr[k], row_ptr[k+1]
				state Meta
			`},
			{State: "Meta", Event: "Fill", Asm: `
				peek r5, 0         ; start
				peek r6, 1         ; end
				not r7, r5
				inc r7
				add r7, r7, r6     ; nnz
				bnz r7, nonempty
				li r8, 0
				update r8, r8      ; empty row: zero sectors
				enqresp r8, OK
				halt Valid
			nonempty:
				allocr r9          ; data-RAM word base
				allocr r14         ; row base address in DRAM
				allocr r10         ; fills outstanding
				shl r8, r7, 1      ; words = 2·nnz
				addi r8, r8, 7
				shr r8, r8, 3      ; fills = ceil(words/8)
				mov r10, r8
				shl r8, r8, 1      ; sectors = 2 per 8-word burst (wlen=4)
				allocd r9, r8
				update r9, r8
				lde r4, e1         ; CV pair-array base
				shl r5, r5, 4      ; start · 16 bytes
				add r14, r4, r5
				mov r11, r14
				mov r12, r10
			issue:
				enqfilli r11, 8    ; AG: tiled refill, full bursts
				addi r11, r11, 64
				dec r12
				bnz r12, issue
				state Filling
			`},
			{State: "Filling", Event: "Fill", Asm: `
				peek r11, -1       ; burst address → placement
				not r13, r14
				inc r13
				add r13, r13, r11
				shr r13, r13, 3
				add r13, r13, r9
				peek r12, 0
				writed r13, r12
				inc r13
				peek r12, 1
				writed r13, r12
				inc r13
				peek r12, 2
				writed r13, r12
				inc r13
				peek r12, 3
				writed r13, r12
				inc r13
				peek r12, 4
				writed r13, r12
				inc r13
				peek r12, 5
				writed r13, r12
				inc r13
				peek r12, 6
				writed r13, r12
				inc r13
				peek r12, 7
				writed r13, r12
				dec r10
				bnz r10, more
				readd r6, r9
				enqresp r6, OK
				halt Valid
			more:
				state Filling
			`},
		},
	}
}

// newStreamer opens the MXS stream port (§6) that feeds matrix A: its
// own DRAM channel over the same memory image, prefetched sequentially.
func newStreamer(k *sim.Kernel, dcfg dram.Config, img *mem.Image, from, words uint64) *hier.Stream {
	return hier.NewStream(k, dram.New(k, dcfg, img), from, words)
}

// maxStreamTake returns the largest single stream consumption in the
// schedule (the stream FIFO must cover it).
func maxStreamTake(sched []rowRequest) uint64 {
	var m uint64
	for _, r := range sched {
		if r.streamWords > m {
			m = r.streamWords
		}
	}
	return m
}

// rowRequest is one B-row demand from the dataflow: key is the row index;
// products is the number of multiply-accumulates it triggers.
type rowRequest struct {
	key      int64
	products int
	// streamWords is how much of the A stream this request consumes. One
	// element (2 words) for SpArch/Gamma; for Inner the whole A row is
	// consumed by its first pair and held in a row buffer for the rest.
	streamWords uint64
}

// buildSchedule flattens the dataflow's B-row request order.
func buildSchedule(alg Algorithm, a, b *sparse.CSR) []rowRequest {
	var sched []rowRequest
	switch alg {
	case Gamma:
		// Row-major over A: one request per nonzero A[i,k].
		for i := 0; i < a.Rows; i++ {
			cols, _ := a.Row(i)
			for _, k := range cols {
				sched = append(sched, rowRequest{key: k, products: b.RowNNZ(int(k)), streamWords: 2})
			}
		}
	case SpArch:
		// Column-major over A: one request per nonempty column k,
		// crossing the whole column with B row k.
		at := a.Transpose()
		for k := 0; k < at.Rows; k++ {
			nnzA := at.RowNNZ(k)
			if nnzA == 0 {
				continue
			}
			sched = append(sched, rowRequest{key: int64(k), products: nnzA * b.RowNNZ(k), streamWords: uint64(2 * nnzA)})
		}
	case Inner:
		// Row-major over A × column-major over B: for every output
		// C[i,j] the DSA intersects row i of A with column j of B. Empty
		// intersections are skipped (the MATCH step of Fig 2); each
		// productive pair requests B column j and scans both lists.
		bt := b.Transpose()
		c := sparse.MulGustavson(a, b)
		for i := 0; i < c.Rows; i++ {
			cols, _ := c.Row(i)
			nnzA := a.RowNNZ(i)
			first := uint64(2 * nnzA)
			for _, j := range cols {
				sched = append(sched, rowRequest{key: j, products: nnzA + bt.RowNNZ(int(j)), streamWords: first})
				first = 0
			}
		}
	}
	return sched
}

// datapath executes the schedule over X-Cache: it consumes A from the
// stream port, requests B rows as meta loads (with decoupled preload
// lookahead), and spends products/lanes cycles of multiplier time per
// response. Responses are validated against B.
type datapath struct {
	c         *ctrl.Controller
	stream    *hier.Stream
	b         *sparse.CSR
	sched     []rowRequest
	lanes     int
	lookahead int

	issue    int
	done     int
	busyTil  sim.Cycle
	ok       bool
	products uint64
}

func (dp *datapath) Tick(cy sim.Cycle) {
	for {
		resp, popped := dp.c.RespQ.Pop()
		if !popped {
			break
		}
		req := dp.sched[resp.ID]
		dp.done++
		dp.validate(resp, req)
		// Multiply phase: products/lanes cycles of datapath occupancy.
		cost := (req.products + dp.lanes - 1) / dp.lanes
		if cost < 1 {
			cost = 1
		}
		if dp.busyTil < cy {
			dp.busyTil = cy
		}
		dp.busyTil += sim.Cycle(cost)
		dp.products += uint64(req.products)
	}
	// Issue: consume A from the stream (2 words per scheduled element),
	// keep up to lookahead B-row requests in flight ahead of the
	// multiplier.
	for dp.issue < len(dp.sched) && dp.issue < dp.done+dp.lookahead {
		if cy < dp.busyTil && dp.issue > dp.done {
			break // multiplier saturated; don't run arbitrarily ahead
		}
		if !dp.stream.Take(dp.sched[dp.issue].streamWords) {
			break
		}
		req := ctrl.MetaReq{ID: uint64(dp.issue), Op: ctrl.MetaLoad,
			Key: metatag.Key{uint64(dp.sched[dp.issue].key), 0}, Issued: cy}
		if !dp.c.ReqQ.Push(req) {
			break
		}
		dp.issue++
	}
}

func (dp *datapath) validate(resp ctrl.MetaResp, req rowRequest) {
	if resp.Status != program.StatusOK {
		dp.ok = false
		return
	}
	cols, vals := dp.b.Row(int(req.key))
	if resp.Words < 2*len(cols) {
		dp.ok = false
		return
	}
	n := len(cols)
	if 2*n > len(resp.Data) {
		n = len(resp.Data) / 2
	}
	for i := 0; i < n; i++ {
		if resp.Data[2*i] != uint64(cols[i]) ||
			math.Float64frombits(resp.Data[2*i+1]) != vals[i] {
			dp.ok = false
			return
		}
	}
}

func (dp *datapath) finished() bool {
	return dp.done == len(dp.sched)
}

// runX executes the given algorithm over X-Cache (hardwired=false) or the
// hardwired prefetch buffer of the original DSA (hardwired=true — SpArch's
// and Gamma's fetchers are fixed-function implementations of this exact
// FSM, so the baseline shares the structures and differs only in
// microcode programmability).
func runX(alg Algorithm, w Work, opt Options, hardwired bool) (dsa.Result, error) {
	opt.defaults(alg)
	cfg := opt.Cfg
	cfg.Hardwired = hardwired
	if cfg.WordsPerSector != 4 {
		return dsa.Result{}, fmt.Errorf("spgemm: row-fetch walker requires WordsPerSector=4, got %d", cfg.WordsPerSector)
	}

	a := sparse.RMAT(w.N, w.NNZ, w.Seed)
	b := sparse.RMAT(w.N, w.NNZ, w.Seed+1)
	fetch := b
	if alg == Inner {
		fetch = b.Transpose() // the walker fetches B columns (CSC)
	}

	// Provision the response snapshot for the largest fetched row/column.
	maxRow := 0
	for r := 0; r < fetch.Rows; r++ {
		if n := fetch.RowNNZ(r); n > maxRow {
			maxRow = n
		}
	}
	cfg.RespDataWords = 2*maxRow + 8

	sys, err := core.NewSystem(cfg, opt.DRAM, Spec())
	if err != nil {
		return dsa.Result{}, err
	}
	bl := fetch.WriteTo(sys.Img)
	al := a.WriteTo(sys.Img)
	sys.Cache.SetEnv(0, bl.RowPtr)
	sys.Cache.SetEnv(1, bl.CV)

	sched := buildSchedule(alg, a, b)
	str := newStreamer(sys.K, opt.DRAM, sys.Img, al.CV, uint64(2*a.NNZ()))
	str.SetBuffer(maxStreamTake(sched) + 8)
	dp := &datapath{c: sys.Cache.Ctrl, stream: str, b: fetch, sched: sched,
		lanes: opt.Lanes, lookahead: opt.Lookahead, ok: true}
	sys.K.Add(dp)

	h := check.Attach(sys.K, opt.Check)
	if ok, rep := check.Run(h, sys.K, dp.finished, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("%s xcache: aborted at %d/%d rows: %w", alg, dp.done, len(sched), rep.Failure())
	}
	if t := sys.Cache.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("%s xcache: %w", alg, t)
	}
	st := sys.Snapshot()
	kind := dsa.KindXCache
	if hardwired {
		kind = dsa.KindBaseline
	}
	return dsa.Result{
		DSA: string(alg), Workload: "p2p-31", Kind: kind,
		Cycles:        st.Cycles,
		DRAMAccesses:  st.DRAM.Accesses() + str.DRAMStats().Accesses(),
		DRAMReadWords: st.DRAM.WordsRead + str.DRAMStats().WordsRead,
		OnChipHits:    st.Ctrl.Hits, OnChipMisses: st.Ctrl.Misses, HitRate: st.Ctrl.HitRate(),
		AvgLoadToUse: st.Ctrl.AvgLoadToUse(), HitLoadToUse: st.Ctrl.AvgHitLoadToUse(),
		L2UP50: st.Ctrl.L2UHist.Percentile(0.5), L2UP99: st.Ctrl.L2UHist.Percentile(0.99),
		Occupancy: st.Ctrl.OccupancyByteCycles,
		Energy:    st.Energy, Checked: dp.ok,
		FillRetries:  st.Ctrl.FillRetries,
		DroppedFills: st.DRAM.DroppedResps,
		ParityScrubs: st.Ctrl.ParityScrubs,
	}, nil
}

// RunXCache measures the algorithm over a programmed X-Cache.
func RunXCache(alg Algorithm, w Work, opt Options) (dsa.Result, error) {
	return runX(alg, w, opt, false)
}

// RunBaseline measures the original DSA's hardwired fetcher.
func RunBaseline(alg Algorithm, w Work, opt Options) (dsa.Result, error) {
	return runX(alg, w, opt, true)
}

// rowWalk is the address-based equivalent of one B-row access: read the
// row_ptr block, then every CV block of the row — even when the row is
// already on chip (§8.1: "an extra DRAM access is required to load the
// start pointer of the Row").
type rowWalk struct {
	rowPtr, cv uint64
	key        int64
	stage      int
	start, end int64
	nextBlk    uint64
	lastBlk    uint64
}

func (rw *rowWalk) Next(blockBase uint64, data []uint64) (addrcache.Step, *addrcache.Result) {
	switch rw.stage {
	case 0:
		rw.stage = 1
		return addrcache.Step{Addr: rw.rowPtr + uint64(rw.key)*8}, nil
	case 1:
		off := (rw.rowPtr + uint64(rw.key)*8 - blockBase) / 8
		rw.start = int64(data[off])
		if int(off)+1 < len(data) {
			rw.end = int64(data[off+1])
		} else {
			// row_ptr[k+1] falls in the next block.
			rw.stage = 2
			return addrcache.Step{Addr: rw.rowPtr + uint64(rw.key+1)*8}, nil
		}
		return rw.beginRow()
	case 2:
		rw.end = int64(data[(rw.rowPtr+uint64(rw.key+1)*8-blockBase)/8])
		return rw.beginRow()
	default:
		if rw.nextBlk > rw.lastBlk {
			return addrcache.Step{}, &addrcache.Result{Found: true, Words: int(2 * (rw.end - rw.start))}
		}
		st := addrcache.Step{Addr: rw.nextBlk}
		rw.nextBlk += 32
		return st, nil
	}
}

func (rw *rowWalk) beginRow() (addrcache.Step, *addrcache.Result) {
	if rw.end == rw.start {
		return addrcache.Step{}, &addrcache.Result{Found: true, Words: 0}
	}
	rw.stage = 3
	first := rw.cv + uint64(2*rw.start)*8
	last := rw.cv + uint64(2*rw.end-1)*8
	rw.nextBlk = first &^ 31
	rw.lastBlk = last &^ 31
	st := addrcache.Step{Addr: rw.nextBlk}
	rw.nextBlk += 32
	return st, nil
}

// RunAddr measures the address-tagged cache with an ideal walker.
func RunAddr(alg Algorithm, w Work, opt Options) (dsa.Result, error) {
	opt.defaults(alg)
	a := sparse.RMAT(w.N, w.NNZ, w.Seed)
	b := sparse.RMAT(w.N, w.NNZ, w.Seed+1)
	fetch := b
	if alg == Inner {
		fetch = b.Transpose()
	}
	sched := buildSchedule(alg, a, b)

	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	geo := addrGeometry(opt.Cfg)
	cache := addrcache.New(k, geo, d.Req, d.Resp, meter)
	eng := addrcache.NewEngine(k, addrcache.EngineConfig{Contexts: opt.Cfg.NumActive}, cache)
	bl := fetch.WriteTo(img)
	al := a.WriteTo(img)
	str := newStreamer(k, opt.DRAM, img, al.CV, uint64(2*a.NNZ()))
	str.SetBuffer(maxStreamTake(sched) + 8)

	var (
		issue, done int
		busyTil     sim.Cycle
		okAll       = true
	)
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, popped := eng.Resp.Pop()
			if !popped {
				break
			}
			done++
			req := sched[resp.ID]
			if resp.Result.Words != 2*fetch.RowNNZ(int(req.key)) {
				okAll = false
			}
			cost := (req.products + opt.Lanes - 1) / opt.Lanes
			if cost < 1 {
				cost = 1
			}
			if busyTil < cy {
				busyTil = cy
			}
			busyTil += sim.Cycle(cost)
		}
		for issue < len(sched) && issue < done+opt.Lookahead {
			if cy < busyTil && issue > done {
				break
			}
			if !str.Take(sched[issue].streamWords) {
				break
			}
			job := addrcache.Job{ID: uint64(issue),
				W:      &rowWalk{rowPtr: bl.RowPtr, cv: bl.CV, key: sched[issue].key},
				Issued: cy}
			if !eng.Jobs.Push(job) {
				break
			}
			issue++
		}
	})
	k.Add(pump)

	if !k.RunUntil(func() bool { return done == len(sched) }, opt.MaxCycles) {
		return dsa.Result{}, fmt.Errorf("%s addr: timeout at %d/%d rows", alg, done, len(sched))
	}
	dst := d.Stats()
	return dsa.Result{
		DSA: string(alg), Workload: "p2p-31", Kind: dsa.KindAddr,
		Cycles:        uint64(k.Cycle()),
		DRAMAccesses:  dst.Accesses() + str.DRAMStats().Accesses(),
		DRAMReadWords: dst.WordsRead + str.DRAMStats().WordsRead,
		OnChipHits:    cache.Stats().Hits, OnChipMisses: cache.Stats().Misses, HitRate: cache.Stats().HitRate(),
		AvgLoadToUse: eng.Stats().AvgLoadToUse(),
		Energy:       meter.Energy(energy.DefaultParams()), Checked: okAll,
	}, nil
}

// addrGeometry mirrors widx.AddrGeometry without the import cycle risk:
// same data capacity, 32-byte blocks, 8 ways.
func addrGeometry(cfg core.Config) addrcache.Config {
	blocks := cfg.Sets * cfg.Ways * cfg.WordsPerSector / 4
	ways := 8
	sets := 1
	for sets*2 <= blocks/ways {
		sets *= 2
	}
	return addrcache.Config{Sets: sets, Ways: ways, BlockWords: 4}
}
