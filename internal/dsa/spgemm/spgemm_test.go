package spgemm

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/dsa"
)

func smallWork() Work { return P2PGnutella31(60) } // ~1.1K rows, 2.4K nnz

func smallOpts() Options {
	return Options{Cfg: core.SpArchConfig().Scaled(8), MaxCycles: 30_000_000}
}

func gammaOpts() Options {
	return Options{Cfg: core.GammaConfig().Scaled(8), MaxCycles: 30_000_000}
}

func TestSpecCompiles(t *testing.T) {
	if _, err := Spec().Compile(); err != nil {
		t.Fatal(err)
	}
}

func TestSpArchXCacheFunctional(t *testing.T) {
	r, err := RunXCache(SpArch, smallWork(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("B-row responses did not match matrix B")
	}
}

func TestGammaXCacheFunctionalAndReuse(t *testing.T) {
	r, err := RunXCache(Gamma, smallWork(), gammaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Checked {
		t.Fatal("functional validation failed")
	}
	// Gustavson has input-dependent reuse: hit rate must be substantial.
	if r.HitRate < 0.3 {
		t.Fatalf("Gamma hit rate %v; expected B-row reuse", r.HitRate)
	}
}

func TestSharedMicroarchitecture(t *testing.T) {
	// SpArch and Gamma share the walker program verbatim.
	p1, err := Spec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Spec().Compile()
	if len(p1.Code) != len(p2.Code) {
		t.Fatal("walker must be identical for both SpGEMM DSAs")
	}
	sp, ga := core.SpArchConfig(), core.GammaConfig()
	sp.Name, ga.Name = "", ""
	if sp != ga {
		t.Fatal("SpArch and Gamma must share one microarchitecture")
	}
}

func TestXCacheVsAddrShape(t *testing.T) {
	w := smallWork()
	x, err := RunXCache(Gamma, w, gammaOpts())
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAddr(Gamma, w, gammaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Checked {
		t.Fatal("addr run functional validation failed")
	}
	if x.Cycles >= a.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than address cache (%d cyc)", x.Cycles, a.Cycles)
	}
	if x.DRAMAccesses >= a.DRAMAccesses {
		t.Errorf("X-Cache DRAM %d not below addr %d", x.DRAMAccesses, a.DRAMAccesses)
	}
}

func TestBaselineComparable(t *testing.T) {
	// The hardwired fetcher (original DSA) should be close to X-Cache:
	// the paper reports no loss from programmability beyond ~small factors.
	w := smallWork()
	x, err := RunXCache(SpArch, w, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(SpArch, w, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(x.Cycles) / float64(b.Cycles)
	if ratio > 1.5 {
		t.Errorf("programmable controller %.2fx slower than hardwired; paper reports parity", ratio)
	}
	if b.Kind != dsa.KindBaseline {
		t.Fatal("kind mislabeled")
	}
}

func TestInnerProductDataflow(t *testing.T) {
	// The Fig 2 dataflow: same walker, B bound as CSC, column-keyed tags.
	w := P2PGnutella31(200) // small: the pair schedule is quadratic-ish
	opt := Options{Cfg: core.SpArchConfig().Scaled(8), MaxCycles: 60_000_000}
	x, err := RunXCache(Inner, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Checked {
		t.Fatal("fetched B columns did not match the CSC matrix")
	}
	// Hot B columns are reused heavily across A rows.
	if x.HitRate < 0.5 {
		t.Fatalf("inner-product reuse not captured: hit rate %v", x.HitRate)
	}
	a, err := RunAddr(Inner, w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Checked {
		t.Fatal("addr variant functional validation failed")
	}
	if x.Cycles >= a.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than addr (%d cyc) on inner product", x.Cycles, a.Cycles)
	}
}
