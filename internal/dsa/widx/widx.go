// Package widx reproduces the Widx DSA ("Meet the Walkers", MICRO'13):
// hash-index probe acceleration for in-memory databases. The meta-tag is
// the probe key; X-Cache caches the hash-index nodes themselves, so a hit
// skips both the (up to 60-cycle, for TPC-H 19/20 string keys) hashing
// and the bucket-chain walk. The original Widx — the paper's baseline —
// hashes on every probe and walks an address-tagged cache.
package widx

import (
	"fmt"

	"xcache/internal/addrcache"
	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/dsa"
	"xcache/internal/energy"
	"xcache/internal/hashidx"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// Work describes one probe workload. A nonzero WinLen restricts the run
// to the probe-trace slice [WinStart, WinStart+WinLen) — the index is
// built in full, only the probe stream is windowed — which is what the
// sampled-interval approximation tier (internal/approx) executes.
type Work struct {
	NumKeys  int
	Buckets  int
	Probes   int
	Profile  hashidx.Profile
	Seed     int64
	WinStart int
	WinLen   int
}

// DefaultWork sizes a workload for the given TPC-H profile; scale divides
// the paper-scale sizes for fast unit tests.
func DefaultWork(p hashidx.Profile, scale int) Work {
	if scale < 1 {
		scale = 1
	}
	keys := 200000 / scale
	if keys < 64 {
		keys = 64
	}
	probes := int(float64(keys) * p.ProbesPerKey)
	// Buckets sized for average chain length 6: the deep-walk regime of a
	// 100 GB TPC-H hash join (the index vastly exceeds any on-chip cache
	// and probes traverse multi-node chains).
	return Work{NumKeys: keys, Buckets: keys / 6, Probes: probes, Profile: p, Seed: 42}
}

// Options configure a run.
type Options struct {
	Cfg              core.Config // zero value → core.WidxConfig()
	DRAM             dram.Config
	MaxCycles        int
	IssueWidth       int // datapath probes issued per cycle
	BaselineContexts int // hardware walkers in the original Widx
	Mode             ctrl.ExecMode
	// Check attaches the hardening harness (watchdog, invariant checkers,
	// fault injection) to the X-Cache run; nil runs unsupervised.
	Check *check.Config
	// Trace, when non-nil, receives the controller's meta-tag reference
	// trace (RunXCache only); internal/approx captures through it.
	Trace ctrl.TraceSink
}

func (o *Options) defaults() {
	if o.Cfg.Sets == 0 {
		o.Cfg = core.WidxConfig()
	}
	if o.DRAM.Banks == 0 {
		o.DRAM = dram.DefaultConfig()
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 50_000_000
	}
	if o.IssueWidth == 0 {
		o.IssueWidth = 2
	}
	if o.BaselineContexts == 0 {
		o.BaselineContexts = 4
	}
	o.Cfg.Mode = o.Mode
}

// Spec returns the Widx walker program (§5, Fig 10a): IDX (hash the key)
// → META (load the bucket head) → DATA/MATCH (chase the chain comparing
// keys). shift is 64−log2(buckets), compiled in as a DSA constant.
func Spec(shift uint) program.Spec {
	return program.Spec{
		Name:   "widx",
		States: []string{"Meta", "Data"},
		Consts: map[string]int64{"HSHIFT": int64(shift)},
		Transitions: []program.Transition{
			// IDX + META: hash the key, fetch the bucket head pointer.
			{State: "Default", Event: "MetaLoad", Asm: `
				allocr r1          ; probe key lives across yields
				allocm
				lde r4, e1         ; multiplicative hash constant
				mul r5, r1, r4
				shr r5, r5, HSHIFT ; bucket index
				shl r5, r5, 3
				lde r4, e0         ; bucket table base
				add r5, r4, r5
				enqfilli r5, 1     ; META: bucket head pointer
				state Meta
			`},
			{State: "Meta", Event: "Fill", Asm: `
				peek r5, 0
				bnz r5, walk
				li r6, 0
				enqresp r6, NOTFOUND
				abort
			walk:
				enqfilli r5, 3     ; AREF: node [key, rid, next]
				state Data
			`},
			// MATCH: compare, follow next, or finish.
			{State: "Data", Event: "Fill", Asm: `
				peek r6, 0         ; node key
				beq r6, r1, match
				peek r5, 2         ; next pointer
				bnz r5, chase
				li r6, 0
				enqresp r6, NOTFOUND
				abort
			chase:
				enqfilli r5, 3
				state Data
			match:
				peek r6, 1         ; RID
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

// BuildWorkload lays the index out in img and generates the probe trace,
// applying the Work's window (if any) to the probe stream. The window is
// clamped to the trace, so a plan sized for a different scale degrades
// to a shorter window instead of panicking.
func BuildWorkload(w Work, img *mem.Image) (*hashidx.Index, []uint64) {
	ix := hashidx.Build(img, hashidx.SeqKeys(w.NumKeys), w.Buckets)
	trace := hashidx.Trace(ix, w.Profile, w.Probes, w.Seed)
	if w.WinLen > 0 {
		lo, hi := w.WinStart, w.WinStart+w.WinLen
		if lo < 0 {
			lo = 0
		}
		if lo > len(trace) {
			lo = len(trace)
		}
		if hi > len(trace) {
			hi = len(trace)
		}
		trace = trace[lo:hi]
	}
	return ix, trace
}

// datapath drives meta probes against an X-Cache and validates RIDs.
type datapath struct {
	c       *ctrl.Controller
	trace   []uint64
	ix      *hashidx.Index
	cursor  int
	pending int
	done    int
	issueW  int
	ok      bool
}

func (dp *datapath) Tick(cy sim.Cycle) {
	for {
		resp, popped := dp.c.RespQ.Pop()
		if !popped {
			break
		}
		dp.pending--
		dp.done++
		key := dp.trace[resp.ID]
		rid, present := dp.ix.RIDs[key]
		switch {
		case present && (resp.Status != program.StatusOK || resp.Value != rid):
			dp.ok = false
		case !present && resp.Status != program.StatusNotFound:
			dp.ok = false
		}
	}
	for i := 0; i < dp.issueW && dp.cursor < len(dp.trace); i++ {
		req := ctrl.MetaReq{
			ID:     uint64(dp.cursor),
			Op:     ctrl.MetaLoad,
			Key:    metatag.Key{dp.trace[dp.cursor], 0},
			Issued: cy,
		}
		if !dp.c.ReqQ.Push(req) {
			break
		}
		dp.cursor++
		dp.pending++
	}
}

// RunXCache measures the Widx datapath over a programmed X-Cache.
func RunXCache(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	// Compile with a placeholder shift, then install the program compiled
	// for the actual (power-of-two-rounded) bucket count.
	sys, err := core.NewSystem(opt.Cfg, opt.DRAM, Spec(0))
	if err != nil {
		return dsa.Result{}, err
	}
	ix, trace := BuildWorkload(w, sys.Img)
	if err := sys.Cache.Ctrl.LoadProgram(mustProg(Spec(ix.Shift))); err != nil {
		return dsa.Result{}, fmt.Errorf("widx xcache: %w", err)
	}
	sys.Cache.SetEnv(0, ix.Table)
	sys.Cache.SetEnv(1, hashidx.HashMul)
	if opt.Trace != nil {
		sys.Cache.Ctrl.SetTraceSink(opt.Trace)
	}

	dp := &datapath{c: sys.Cache.Ctrl, trace: trace, ix: ix, issueW: opt.IssueWidth, ok: true}
	sys.K.Add(dp)

	h := check.Attach(sys.K, opt.Check)
	if ok, rep := check.Run(h, sys.K, func() bool { return dp.done == len(trace) }, opt.MaxCycles); !ok {
		return dsa.Result{}, fmt.Errorf("widx xcache: aborted at %d/%d probes: %w", dp.done, len(trace), rep.Failure())
	}
	if t := sys.Cache.Ctrl.Trap(); t != nil {
		return dsa.Result{}, fmt.Errorf("widx xcache: %w", t)
	}
	st := sys.Snapshot()
	return dsa.Result{
		DSA: "Widx", Workload: w.Profile.Name, Kind: dsa.KindXCache,
		Cycles:        st.Cycles,
		DRAMAccesses:  st.DRAM.Accesses(),
		DRAMReadWords: st.DRAM.WordsRead,
		OnChipHits:    st.Ctrl.Hits,
		OnChipMisses:  st.Ctrl.Misses,
		HitRate:       st.Ctrl.HitRate(),
		AvgLoadToUse:  st.Ctrl.AvgLoadToUse(),
		HitLoadToUse:  st.Ctrl.AvgHitLoadToUse(),
		L2UP50:        st.Ctrl.L2UHist.Percentile(0.5), L2UP99: st.Ctrl.L2UHist.Percentile(0.99),
		Occupancy:    st.Ctrl.OccupancyByteCycles,
		Energy:       st.Energy,
		Checked:      dp.ok,
		FillRetries:  st.Ctrl.FillRetries,
		DroppedFills: st.DRAM.DroppedResps,
		ParityScrubs: st.Ctrl.ParityScrubs,
	}, nil
}

func mustProg(s program.Spec) *program.Program {
	p, err := s.Compile()
	if err != nil {
		panic(err)
	}
	return p
}

// probeWalk is the address-based walk for one probe: bucket head, then
// the node chain. hash is the datapath compute charged before the first
// address (zero for the ideal walker, Profile.HashCycles for Widx).
// NewProbeWalk returns the address-based walk for one probe (shared with
// the DASX baseline, which walks the same index structure).
func NewProbeWalk(ix *hashidx.Index, key uint64, hashCycles int) addrcache.Walk {
	return &probeWalk{ix: ix, key: key, hash: hashCycles}
}

type probeWalk struct {
	ix    *hashidx.Index
	key   uint64
	hash  int
	stage int
	cur   uint64
}

func (p *probeWalk) Next(blockBase uint64, data []uint64) (addrcache.Step, *addrcache.Result) {
	switch p.stage {
	case 0:
		p.stage = 1
		p.cur = p.ix.HeadAddr(p.ix.BucketOf(p.key))
		return addrcache.Step{Addr: p.cur, ComputeCycles: p.hash}, nil
	case 1:
		head := data[(p.cur-blockBase)/8]
		if head == 0 {
			return addrcache.Step{}, &addrcache.Result{Found: false}
		}
		p.stage = 2
		p.cur = head
		return addrcache.Step{Addr: head}, nil
	default:
		off := (p.cur - blockBase) / 8
		nodeKey, rid, next := data[off], data[off+1], data[off+2]
		if nodeKey == p.key {
			return addrcache.Step{}, &addrcache.Result{Found: true, Value: rid, Words: 1}
		}
		if next == 0 {
			return addrcache.Step{}, &addrcache.Result{Found: false}
		}
		p.cur = next
		return addrcache.Step{Addr: next}, nil
	}
}

// AddrGeometry sizes an address cache to the same data capacity as an
// X-Cache configuration (same byte count, 32-byte blocks, 8 ways).
func AddrGeometry(cfg core.Config) addrcache.Config {
	blocks := cfg.Sets * cfg.Ways * cfg.WordsPerSector / 4
	ways := 8
	sets := 1
	for sets*2 <= blocks/ways {
		sets *= 2
	}
	return addrcache.Config{Sets: sets, Ways: ways, BlockWords: 4}
}

// runWalked is shared by RunAddr (hash=0: ideal walker) and RunBaseline
// (hash=Profile.HashCycles on every probe: the original Widx datapath).
func runWalked(w Work, opt Options, kind dsa.Kind, hashCycles, contexts int) (dsa.Result, error) {
	opt.defaults()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, opt.DRAM, img)
	meter := &energy.Counters{}
	cache := addrcache.New(k, AddrGeometry(opt.Cfg), d.Req, d.Resp, meter)
	eng := addrcache.NewEngine(k, addrcache.EngineConfig{Contexts: contexts}, cache)
	ix, trace := BuildWorkload(w, img)

	cursor, done := 0, 0
	okAll := true
	pump := sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			resp, popped := eng.Resp.Pop()
			if !popped {
				break
			}
			done++
			key := trace[resp.ID]
			rid, present := ix.RIDs[key]
			if present != resp.Result.Found || (present && rid != resp.Result.Value) {
				okAll = false
			}
		}
		for cursor < len(trace) {
			job := addrcache.Job{ID: uint64(cursor),
				W:      &probeWalk{ix: ix, key: trace[cursor], hash: hashCycles},
				Issued: cy}
			if !eng.Jobs.Push(job) {
				break
			}
			// Hashing energy: one ALU op per hash cycle on the datapath.
			meter.AddOps += uint64(hashCycles)
			cursor++
		}
	})
	k.Add(pump)

	if !k.RunUntil(func() bool { return done == len(trace) }, opt.MaxCycles) {
		return dsa.Result{}, fmt.Errorf("widx %s: timeout at %d/%d probes", kind, done, len(trace))
	}
	dst := d.Stats()
	return dsa.Result{
		DSA: "Widx", Workload: w.Profile.Name, Kind: kind,
		Cycles:        uint64(k.Cycle()),
		DRAMAccesses:  dst.Accesses(),
		DRAMReadWords: dst.WordsRead,
		OnChipHits:    cache.Stats().Hits,
		OnChipMisses:  cache.Stats().Misses,
		HitRate:       cache.Stats().HitRate(),
		AvgLoadToUse:  eng.Stats().AvgLoadToUse(),
		Energy:        meter.Energy(energy.DefaultParams()),
		Checked:       okAll,
	}, nil
}

// RunAddr measures the address-tagged cache with an ideal walker.
func RunAddr(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	return runWalked(w, opt, dsa.KindAddr, 0, opt.Cfg.NumActive)
}

// RunBaseline measures the original Widx: hardwired walkers that hash on
// every probe and walk through an address cache.
func RunBaseline(w Work, opt Options) (dsa.Result, error) {
	opt.defaults()
	return runWalked(w, opt, dsa.KindBaseline, w.Profile.HashCycles, opt.BaselineContexts)
}
