package widx

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/dsa"
	"xcache/internal/hashidx"
)

func smallWork(p hashidx.Profile) Work {
	w := DefaultWork(p, 100) // 2000 keys, 8000 probes
	return w
}

func smallOpts() Options {
	// Cache ≪ working set, as in the paper's 100 GB configuration.
	return Options{Cfg: core.WidxConfig().Scaled(32), MaxCycles: 20_000_000}
}

func TestXCacheFunctional(t *testing.T) {
	for _, p := range hashidx.TPCH() {
		r, err := RunXCache(smallWork(p), smallOpts())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !r.Checked {
			t.Fatalf("%s: functional validation failed", p.Name)
		}
		if r.HitRate <= 0.2 {
			t.Fatalf("%s: implausible hit rate %v", p.Name, r.HitRate)
		}
	}
}

func TestAddrAndBaselineFunctional(t *testing.T) {
	p := hashidx.TPCH()[2]
	w := smallWork(p)
	for _, run := range []func(Work, Options) (dsa.Result, error){RunAddr, RunBaseline} {
		r, err := run(w, smallOpts())
		if err != nil {
			t.Fatal(err)
		}
		if !r.Checked {
			t.Fatalf("%s: functional validation failed", r.Kind)
		}
	}
}

// The headline shapes: X-Cache beats the address-tagged cache, beats the
// original Widx on string-keyed queries, and makes fewer DRAM accesses.
func TestXCacheBeatsAddrAndBaseline(t *testing.T) {
	p := hashidx.TPCH()[0] // TPC-H-19: 60-cycle string hash
	w := smallWork(p)
	opt := smallOpts()
	x, err := RunXCache(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunAddr(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cycles >= a.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than address cache (%d cyc)", x.Cycles, a.Cycles)
	}
	if x.Cycles >= b.Cycles {
		t.Errorf("X-Cache (%d cyc) not faster than Widx baseline (%d cyc)", x.Cycles, b.Cycles)
	}
	if x.DRAMAccesses >= a.DRAMAccesses {
		t.Errorf("X-Cache DRAM accesses %d not below address cache %d", x.DRAMAccesses, a.DRAMAccesses)
	}
	if x.AvgLoadToUse >= a.AvgLoadToUse {
		t.Errorf("X-Cache load-to-use %v not below address-tag %v", x.AvgLoadToUse, a.AvgLoadToUse)
	}
}

func TestSpecCompiles(t *testing.T) {
	for _, shift := range []uint{50, 55, 60} {
		if _, err := Spec(shift).Compile(); err != nil {
			t.Fatalf("shift %d: %v", shift, err)
		}
	}
}
