// Package energy implements the event-driven energy model of §8.2. The
// paper feeds CACTI/bsg_fakeram RAM characterizations and validated logic
// synthesis numbers into an event count; Table 4 publishes the per-event
// constants it uses (1 GHz, 45 nm). We count the same events — RAM bytes
// touched, ALU operations, register bit writes, queue traffic, microcode
// fetches — and apply the same constants.
//
// One modelling note, recorded here because it determines the Fig 16 tag
// share: the paper describes the meta-tag array as "a miss map" with a
// dedicated hit port. We model lookups as touching a compact per-set
// signature (SigBytes) with the full tag entry (key + sector pointers +
// state) read/written only on the miss path and on refill updates. This is
// what lets tag energy land in the paper's 1.5–6.6%-of-total band despite
// tags costing more per byte than data RAM.
package energy

// Params holds per-event energies in picojoules (Table 4).
type Params struct {
	RegPerBit    float64 // register write, per bit
	Add          float64 // 64-bit add
	Mul          float64 // 64-bit multiply
	Bitwise      float64 // and/or/xor/not
	Shift        float64 // shifter use
	TagPerByte   float64 // tag RAM, per byte touched
	RAMPer32B    float64 // data RAM / L1, per 32-byte access
	RtnPerByte   float64 // routine (microcode) RAM fetch, per byte
	QueuePerByte float64 // message queue entry movement, per byte
	DRAMPerByte  float64 // off-chip access, per byte (reported separately)
}

// DefaultParams returns the Table 4 constants. Routine RAM is charged at
// the tag-RAM rate (both are small SRAMs); queues are register-built.
func DefaultParams() Params {
	return Params{
		RegPerBit:  8.9e-3,
		Add:        2.1e-1,
		Mul:        12.6,
		Bitwise:    1.8e-2,
		Shift:      4.1e-1,
		TagPerByte: 2.7,
		RAMPer32B:  44.8,
		// The routine RAM is tiny (tens of 32-bit words); per-byte access
		// energy for such small SRAM/register arrays is far below the
		// KB-scale tag arrays CACTI's 2.7 pJ/B characterizes.
		RtnPerByte:   0.15,
		QueuePerByte: 8.9e-3 * 8,
		DRAMPerByte:  20.0,
	}
}

// Counters accumulate events. Structures owning a Counters instance bump
// fields directly in their hot paths.
type Counters struct {
	RegBitsWritten uint64 // X-register and pipeline latch bits
	AddOps         uint64
	MulOps         uint64
	BitOps         uint64
	ShiftOps       uint64

	TagBytes     uint64 // meta-tag or address-tag RAM bytes touched
	DataBytes    uint64 // data RAM bytes read+written
	RtnBytes     uint64 // microcode words fetched
	QueueBytes   uint64 // message queue bytes moved
	DRAMBytes    uint64 // off-chip bytes transferred
	DRAMAccesses uint64
}

// Merge adds other into c.
func (c *Counters) Merge(other Counters) {
	c.RegBitsWritten += other.RegBitsWritten
	c.AddOps += other.AddOps
	c.MulOps += other.MulOps
	c.BitOps += other.BitOps
	c.ShiftOps += other.ShiftOps
	c.TagBytes += other.TagBytes
	c.DataBytes += other.DataBytes
	c.RtnBytes += other.RtnBytes
	c.QueueBytes += other.QueueBytes
	c.DRAMBytes += other.DRAMBytes
	c.DRAMAccesses += other.DRAMAccesses
}

// Breakdown is on-chip energy by component, in pJ.
type Breakdown struct {
	DataRAM    float64
	TagRAM     float64
	RoutineRAM float64
	Logic      float64 // ALU/AGEN operations
	Registers  float64
	Queues     float64
	DRAM       float64 // off-chip, reported separately from OnChip
}

// OnChip returns total on-chip energy (the quantity Fig 15/16 break down).
func (b Breakdown) OnChip() float64 {
	return b.DataRAM + b.TagRAM + b.RoutineRAM + b.Logic + b.Registers + b.Queues
}

// Controller returns the controller share (everything but the data and tag
// RAMs): routine RAM, logic, registers and queues. The paper reports this
// at ≈24% of X-Cache power.
func (b Breakdown) Controller() float64 {
	return b.RoutineRAM + b.Logic + b.Registers + b.Queues
}

// Energy converts counters to a Breakdown under params p.
func (c Counters) Energy(p Params) Breakdown {
	return Breakdown{
		DataRAM:    float64(c.DataBytes) / 32.0 * p.RAMPer32B,
		TagRAM:     float64(c.TagBytes) * p.TagPerByte,
		RoutineRAM: float64(c.RtnBytes) * p.RtnPerByte,
		Logic: float64(c.AddOps)*p.Add + float64(c.MulOps)*p.Mul +
			float64(c.BitOps)*p.Bitwise + float64(c.ShiftOps)*p.Shift,
		Registers: float64(c.RegBitsWritten) * p.RegPerBit,
		Queues:    float64(c.QueueBytes) * p.QueuePerByte,
		DRAM:      float64(c.DRAMBytes) * p.DRAMPerByte,
	}
}
