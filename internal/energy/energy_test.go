package energy

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEnergyConversion(t *testing.T) {
	p := DefaultParams()
	c := Counters{
		RegBitsWritten: 64,
		AddOps:         10,
		MulOps:         1,
		BitOps:         100,
		ShiftOps:       2,
		TagBytes:       8,
		DataBytes:      64,
		RtnBytes:       40,
		QueueBytes:     16,
	}
	b := c.Energy(p)
	if !almost(b.DataRAM, 64.0/32.0*44.8) {
		t.Errorf("data: %v", b.DataRAM)
	}
	if !almost(b.TagRAM, 8*2.7) {
		t.Errorf("tag: %v", b.TagRAM)
	}
	if !almost(b.Logic, 10*0.21+12.6+100*0.018+2*0.41) {
		t.Errorf("logic: %v", b.Logic)
	}
	if !almost(b.Registers, 64*8.9e-3) {
		t.Errorf("reg: %v", b.Registers)
	}
	wantOnChip := b.DataRAM + b.TagRAM + b.RoutineRAM + b.Logic + b.Registers + b.Queues
	if !almost(b.OnChip(), wantOnChip) {
		t.Errorf("onchip: %v want %v", b.OnChip(), wantOnChip)
	}
	if !almost(b.Controller(), b.RoutineRAM+b.Logic+b.Registers+b.Queues) {
		t.Errorf("controller: %v", b.Controller())
	}
}

func TestMerge(t *testing.T) {
	a := Counters{AddOps: 1, TagBytes: 2, DRAMBytes: 3}
	b := Counters{AddOps: 10, TagBytes: 20, DRAMBytes: 30, DRAMAccesses: 4}
	a.Merge(b)
	if a.AddOps != 11 || a.TagBytes != 22 || a.DRAMBytes != 33 || a.DRAMAccesses != 4 {
		t.Fatalf("merge: %+v", a)
	}
}

func TestTable4Constants(t *testing.T) {
	p := DefaultParams()
	// Pin the published Table 4 values so drift is caught.
	if p.RegPerBit != 8.9e-3 || p.Add != 0.21 || p.Mul != 12.6 ||
		p.Bitwise != 1.8e-2 || p.Shift != 0.41 ||
		p.TagPerByte != 2.7 || p.RAMPer32B != 44.8 {
		t.Fatalf("Table 4 constants changed: %+v", p)
	}
}

func TestZeroCountersZeroEnergy(t *testing.T) {
	var c Counters
	b := c.Energy(DefaultParams())
	if b.OnChip() != 0 || b.DRAM != 0 {
		t.Fatalf("zero counters produced energy: %+v", b)
	}
}
