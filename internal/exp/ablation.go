package exp

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// AblationProgrammability quantifies the cost of the programmable
// controller against a hardwired FSM with identical structures — the
// paper's "minimal penalty for being reusable" claim (§1: the
// programmable controller adds <7% energy; §8.1: no performance loss).
// The hardwired twin executes each routine in one cycle and fetches no
// microcode; everything else is shared.
func AblationProgrammability(scale int) (*Out, error) {
	t := stats.NewTable("Ablation — programmable controller vs hardwired FSM",
		"DSA", "Workload", "Cycles (prog)", "Cycles (hard)", "Slowdown", "Routine-RAM energy share")
	m := map[string]float64{}
	worstSlow, worstRtn := 0.0, 0.0

	record := func(name, workload string, progCycles, hardCycles uint64, rtnShare float64) {
		slow := float64(progCycles) / float64(hardCycles)
		if slow > worstSlow {
			worstSlow = slow
		}
		if rtnShare > worstRtn {
			worstRtn = rtnShare
		}
		t.Add(name, workload, stats.I(progCycles), stats.I(hardCycles),
			stats.F2(slow)+"x", stats.Pct(rtnShare))
	}

	// Widx (TPC-H-19): hardwired twin via the DASX runner? No — Widx's
	// baseline is the original Widx, so build the hardwired twin directly.
	p := hashidx.TPCH()[0]
	hw := widx.DefaultWork(p, scale)
	wOpt := widxOpts(scale)
	prog, err := widx.RunXCache(hw, wOpt)
	if err != nil {
		return nil, err
	}
	hOpt := wOpt
	hOpt.Cfg.Hardwired = true
	hard, err := widx.RunXCache(hw, hOpt)
	if err != nil {
		return nil, err
	}
	record("Widx", p.Name, prog.Cycles, hard.Cycles,
		prog.Energy.RoutineRAM/prog.Energy.OnChip())

	// DASX.
	dOpt := dasxOpts(scale)
	dProg, err := dasx.RunXCache(hw, dOpt)
	if err != nil {
		return nil, err
	}
	dhOpt := dOpt
	dhOpt.Cfg.Hardwired = true
	dHard, err := dasx.RunXCache(hw, dhOpt)
	if err != nil {
		return nil, err
	}
	record("DASX", p.Name, dProg.Cycles, dHard.Cycles,
		dProg.Energy.RoutineRAM/dProg.Energy.OnChip())

	// SpArch and Gamma: RunBaseline is exactly the hardwired twin.
	sp := spgemm.P2PGnutella31(scale)
	for _, alg := range []spgemm.Algorithm{spgemm.SpArch, spgemm.Gamma} {
		x, err := spgemm.RunXCache(alg, sp, spgemmOpts(alg, scale))
		if err != nil {
			return nil, err
		}
		h, err := spgemm.RunBaseline(alg, sp, spgemmOpts(alg, scale))
		if err != nil {
			return nil, err
		}
		record(string(alg), "p2p-31", x.Cycles, h.Cycles,
			x.Energy.RoutineRAM/x.Energy.OnChip())
	}

	// GraphPulse.
	gw := graphpulse.P2PGnutella08(scale)
	gx, err := graphpulse.RunXCache(gw, gpOpts(scale))
	if err != nil {
		return nil, err
	}
	gh, err := graphpulse.RunBaseline(gw, gpOpts(scale))
	if err != nil {
		return nil, err
	}
	record("GraphPulse", gw.Name, gx.Cycles, gh.Cycles,
		gx.Energy.RoutineRAM/gx.Energy.OnChip())

	m["worst_slowdown"] = worstSlow
	m["worst_routine_ram_share"] = worstRtn
	return &Out{ID: "ablation-prog", Table: t, Metrics: m,
		Notes: []string{"Paper: the programmable controller costs <7% energy and no performance relative to hardwired designs; alloc-heavy flows (GraphPulse) are the worst case."}}, nil
}

// AblationDesignChoices measures the individual design decisions
// DESIGN.md calls out: GraphPulse's identity set-indexing (vs a hashed
// index that causes conflict evictions in the direct-mapped event store)
// and DASX's decoupled preload distance.
func AblationDesignChoices(scale int) (*Out, error) {
	t := stats.NewTable("Ablation — design choices",
		"Choice", "Variant", "Cycles", "Note")
	m := map[string]float64{}

	// DASX preload lookahead.
	p := hashidx.TPCH()[0]
	hw := widx.DefaultWork(p, scale)
	var base uint64
	for _, la := range []int{1, 16, 64} {
		opt := dasxOpts(scale)
		opt.Lookahead = la
		r, err := dasx.RunXCache(hw, opt)
		if err != nil {
			return nil, err
		}
		if la == 1 {
			base = r.Cycles
		}
		t.Add("DASX preload", fmt.Sprintf("lookahead %d", la), stats.I(r.Cycles),
			fmt.Sprintf("%.2fx vs lookahead 1", float64(base)/float64(r.Cycles)))
		if la == 64 {
			m["dasx_preload_gain"] = float64(base) / float64(r.Cycles)
		}
	}

	// Coroutine vs thread (the §3.3 choice), runtime view.
	wOpt := widxOpts(scale)
	rc, err := widx.RunXCache(hw, wOpt)
	if err != nil {
		return nil, err
	}
	tOpt := wOpt
	tOpt.Mode = ctrl.ModeThread
	rt, err := widx.RunXCache(hw, tOpt)
	if err != nil {
		return nil, err
	}
	t.Add("Walker multiplexing", "coroutines", stats.I(rc.Cycles), "design point")
	t.Add("Walker multiplexing", "blocking threads", stats.I(rt.Cycles),
		fmt.Sprintf("%.2fx slower, %.0fx occupancy", float64(rt.Cycles)/float64(rc.Cycles),
			float64(rt.Occupancy)/float64(rc.Occupancy)))
	m["thread_slowdown"] = float64(rt.Cycles) / float64(rc.Cycles)
	m["thread_occupancy_ratio"] = float64(rt.Occupancy) / float64(rc.Occupancy)

	return &Out{ID: "ablation-design", Table: t, Metrics: m, Notes: []string{
		"Decoupled preload and coroutine multiplexing are the two §3 choices with runtime ablations; meta-tags vs address tags is Fig 14.",
	}}, nil
}

// ExtensionBTree runs the beyond-the-paper portability demonstration:
// the same controller programmed with a B+-tree descent walker, composed
// as §6's MXA (meta-tags over an address cache holding the tree's hot
// upper levels), against a pure address-cache baseline with the same
// total on-chip budget.
func ExtensionBTree(scale int) (*Out, error) {
	w := btreeidx.DefaultWork(scale)
	// Trees reward capacity on the hot path (upper levels + hot keys);
	// keep the budget in the regime where both systems capture reuse.
	div := scale / 8
	if div < 1 {
		div = 1
	}
	opt := btreeidx.Options{Cfg: btreeidx.Config().Scaled(div)}
	x, err := btreeidx.RunXCache(w, opt)
	if err != nil {
		return nil, err
	}
	a, err := btreeidx.RunAddr(w, opt)
	if err != nil {
		return nil, err
	}
	if !x.Checked || !a.Checked {
		return nil, fmt.Errorf("btree extension failed functional validation")
	}
	t := stats.NewTable("Extension — B+-tree index walker (MXA composition)",
		"System", "Cycles", "DRAM accs", "Hit rate", "Load-to-use")
	t.Add("X-Cache over addr cache (MXA)", stats.I(x.Cycles), stats.I(x.DRAMAccesses),
		stats.F2(x.HitRate), stats.F1(x.AvgLoadToUse))
	t.Add("address cache + ideal walker", stats.I(a.Cycles), stats.I(a.DRAMAccesses),
		stats.F2(a.HitRate), stats.F1(a.AvgLoadToUse))
	return &Out{ID: "ext-btree", Table: t, Metrics: map[string]float64{
		"btree_speedup":       x.Speedup(a),
		"btree_mem_reduction": float64(a.DRAMAccesses) / float64(x.DRAMAccesses),
	}, Notes: []string{
		"Not in the paper: demonstrates the idiom porting to a sixth DSA family with zero controller changes.",
	}}, nil
}
