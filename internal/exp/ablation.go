package exp

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// AblationProgrammability quantifies the cost of the programmable
// controller against a hardwired FSM with identical structures — the
// paper's "minimal penalty for being reusable" claim (§1: the
// programmable controller adds <7% energy; §8.1: no performance loss).
// The hardwired twin executes each routine in one cycle and fetches no
// microcode; everything else is shared.
func AblationProgrammability(r *runner.Runner, scale int) (*Out, error) {
	t := stats.NewTable("Ablation — programmable controller vs hardwired FSM",
		"DSA", "Workload", "Cycles (prog)", "Cycles (hard)", "Slowdown", "Routine-RAM energy share")
	m := map[string]float64{}
	worstSlow, worstRtn := 0.0, 0.0

	record := func(name, workload string, prog, hard dsa.Result) {
		slow := float64(prog.Cycles) / float64(hard.Cycles)
		if slow > worstSlow {
			worstSlow = slow
		}
		rtnShare := prog.Energy.RoutineRAM / prog.Energy.OnChip()
		if rtnShare > worstRtn {
			worstRtn = rtnShare
		}
		t.Add(name, workload, stats.I(prog.Cycles), stats.I(hard.Cycles),
			stats.F2(slow)+"x", stats.Pct(rtnShare))
	}

	// Widx and DASX (TPC-H-19): the hardwired twin shares every structure
	// and flips only Cfg.Hardwired. SpArch/Gamma's RunBaseline is exactly
	// the hardwired twin, as is GraphPulse's.
	p := hashidx.TPCH()[0]
	specs := []runner.Spec{
		{DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale},
		{DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale, Hardwired: true},
		{DSA: runner.DSADASX, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale},
		{DSA: runner.DSADASX, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale, Hardwired: true},
		{DSA: runner.DSASpArch, Kind: dsa.KindXCache, Workload: "p2p-31", Scale: scale},
		{DSA: runner.DSASpArch, Kind: dsa.KindBaseline, Workload: "p2p-31", Scale: scale},
		{DSA: runner.DSAGamma, Kind: dsa.KindXCache, Workload: "p2p-31", Scale: scale},
		{DSA: runner.DSAGamma, Kind: dsa.KindBaseline, Workload: "p2p-31", Scale: scale},
		{DSA: runner.DSAGraphPulse, Kind: dsa.KindXCache, Workload: "p2p-08", Scale: scale},
		{DSA: runner.DSAGraphPulse, Kind: dsa.KindBaseline, Workload: "p2p-08", Scale: scale},
	}
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	record("Widx", p.Name, res[0], res[1])
	record("DASX", p.Name, res[2], res[3])
	record("SpArch", "p2p-31", res[4], res[5])
	record("Gamma", "p2p-31", res[6], res[7])
	record("GraphPulse", "p2p-08", res[8], res[9])

	m["worst_slowdown"] = worstSlow
	m["worst_routine_ram_share"] = worstRtn
	return &Out{ID: "ablation-prog", Table: t, Metrics: m,
		Notes: []string{"Paper: the programmable controller costs <7% energy and no performance relative to hardwired designs; alloc-heavy flows (GraphPulse) are the worst case."}}, nil
}

// AblationDesignChoices measures the individual design decisions
// DESIGN.md calls out: DASX's decoupled preload distance and the §3.3
// coroutine-vs-thread walker multiplexing choice.
func AblationDesignChoices(r *runner.Runner, scale int) (*Out, error) {
	t := stats.NewTable("Ablation — design choices",
		"Choice", "Variant", "Cycles", "Note")
	m := map[string]float64{}

	p := hashidx.TPCH()[0]
	lookaheads := []int{1, 16, 64}
	var specs []runner.Spec
	for _, la := range lookaheads {
		specs = append(specs, runner.Spec{
			DSA: runner.DSADASX, Kind: dsa.KindXCache, Workload: p.Name,
			Scale: scale, Lookahead: la,
		})
	}
	specs = append(specs,
		runner.Spec{DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale},
		runner.Spec{DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name, Scale: scale, Mode: ctrl.ModeThread},
	)
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}

	// DASX preload lookahead.
	base := res[0].Cycles
	for i, la := range lookaheads {
		cyc := res[i].Cycles
		t.Add("DASX preload", fmt.Sprintf("lookahead %d", la), stats.I(cyc),
			fmt.Sprintf("%.2fx vs lookahead 1", float64(base)/float64(cyc)))
		if la == 64 {
			m["dasx_preload_gain"] = float64(base) / float64(cyc)
		}
	}

	// Coroutine vs thread (the §3.3 choice), runtime view.
	rc, rt := res[len(lookaheads)], res[len(lookaheads)+1]
	t.Add("Walker multiplexing", "coroutines", stats.I(rc.Cycles), "design point")
	t.Add("Walker multiplexing", "blocking threads", stats.I(rt.Cycles),
		fmt.Sprintf("%.2fx slower, %.0fx occupancy", float64(rt.Cycles)/float64(rc.Cycles),
			float64(rt.Occupancy)/float64(rc.Occupancy)))
	m["thread_slowdown"] = float64(rt.Cycles) / float64(rc.Cycles)
	m["thread_occupancy_ratio"] = float64(rt.Occupancy) / float64(rc.Occupancy)

	return &Out{ID: "ablation-design", Table: t, Metrics: m, Notes: []string{
		"Decoupled preload and coroutine multiplexing are the two §3 choices with runtime ablations; meta-tags vs address tags is Fig 14.",
	}}, nil
}

// ExtensionBTree runs the beyond-the-paper portability demonstration:
// the same controller programmed with a B+-tree descent walker, composed
// as §6's MXA (meta-tags over an address cache holding the tree's hot
// upper levels), against a pure address-cache baseline with the same
// total on-chip budget.
func ExtensionBTree(r *runner.Runner, scale int) (*Out, error) {
	// Trees reward capacity on the hot path (upper levels + hot keys);
	// keep the budget in the regime where both systems capture reuse.
	specs := []runner.Spec{
		{DSA: runner.DSABTreeIdx, Kind: dsa.KindXCache, Workload: "zipf", Scale: scale},
		{DSA: runner.DSABTreeIdx, Kind: dsa.KindAddr, Workload: "zipf", Scale: scale},
	}
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	x, a := res[0], res[1]
	if !x.Checked || !a.Checked {
		return nil, fmt.Errorf("btree extension failed functional validation")
	}
	t := stats.NewTable("Extension — B+-tree index walker (MXA composition)",
		"System", "Cycles", "DRAM accs", "Hit rate", "Load-to-use")
	t.Add("X-Cache over addr cache (MXA)", stats.I(x.Cycles), stats.I(x.DRAMAccesses),
		stats.F2(x.HitRate), stats.F1(x.AvgLoadToUse))
	t.Add("address cache + ideal walker", stats.I(a.Cycles), stats.I(a.DRAMAccesses),
		stats.F2(a.HitRate), stats.F1(a.AvgLoadToUse))
	return &Out{ID: "ext-btree", Table: t, Metrics: map[string]float64{
		"btree_speedup":       x.Speedup(a),
		"btree_mem_reduction": float64(a.DRAMAccesses) / float64(x.DRAMAccesses),
	}, Notes: []string{
		"Not in the paper: demonstrates the idiom porting to a sixth DSA family with zero controller changes.",
	}}, nil
}
