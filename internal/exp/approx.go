package exp

import (
	"fmt"
	"math"
	"sync"

	"xcache/internal/approx"
	"xcache/internal/core"
	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// The approximate evaluation tier (internal/approx) wired into the
// experiment harness: approximate variants of the Fig 17 cacheDiv sweep
// and an associativity scan, plus the validation harness (ApproxError)
// that compares every approximate cell against its exact counterpart,
// checks the declared error bounds, and measures the tier's work
// reduction.
//
// Per-cell annotation vocabulary:
//
//	exact    — full cycle-accurate simulation (the donor cell);
//	tags     — Engine A one-pass tag replay of the donor trace; cycle
//	           cells additionally pass through a linear cycles-vs-misses
//	           model calibrated on the exact donor and the sampled cells;
//	interval — Engine B warm-up + sampled execution windows.
//
// Engine selection per cell: Engine A inside its validity envelope
// (TagConfig.SoundFor — tag replay cannot see allocation-conflict
// stalls, which dominate tiny or low-associativity geometries), Engine B
// outside it.

// approxDivs extends Fig 17's cache-pressure points; div 1 is the donor
// whose trace feeds Engine A.
var approxDivs = []int{64, 32, 16, 8, 4, 2, 1}

// approxWays is the associativity scan at donor set count — the kind of
// curve the one-pass replay answers from a single donor run.
var approxWays = []int{1, 2, 4, 6, 8, 12, 16, 24, 32}

// approxPlan is Engine B's sampling schedule: three windows of 1% of the
// probe trace, each warmed by 1%.
var approxPlan = approx.IntervalPlan{Windows: 3, WindowFrac: 0.01, WarmupFrac: 0.01}

// Declared error bounds, validated by ApproxError (the approx-check CI
// gate) at the golden scale.
const (
	// approxTagsHitBound is the absolute hit-rate error allowed for
	// Engine A cells off the donor geometry.
	approxTagsHitBound = 0.05
	// approxIntervalHitBound is the absolute hit-rate error allowed for
	// Engine B cells. Wider than the tags bound: short windows both
	// sample noisily and under-represent the steady-state queue
	// congestion that depresses out-of-envelope cells' hit rates.
	approxIntervalHitBound = 0.15
	// approxCyclesBound is the relative cycle error allowed for both
	// Engine B estimates and calibrated-model predictions.
	approxCyclesBound = 0.25
)

// approxCapture memoises the donor capture per scale: one recorded trace
// serves both approximate sweeps and the validation harness.
var (
	approxMu   sync.Mutex
	approxCaps = map[int]*approx.Capture{}
)

func approxDonorSpec(scale int) runner.Spec {
	return runner.Spec{
		DSA: runner.DSAWidx, Kind: dsa.KindXCache,
		Workload: hashidx.TPCH()[2].Name, Scale: scale,
	}
}

func approxCapture(scale int) (*approx.Capture, error) {
	approxMu.Lock()
	defer approxMu.Unlock()
	if c, ok := approxCaps[scale]; ok {
		return c, nil
	}
	c, err := approx.CaptureWidx(approxDonorSpec(scale))
	if err != nil {
		return nil, err
	}
	approxCaps[scale] = c
	return c, nil
}

// approxCell is one point of an approximate sweep: its tag-replay
// geometry, its exact-counterpart spec, and whether it is the donor.
type approxCell struct {
	name  string
	cfg   approx.TagConfig
	spec  runner.Spec
	donor bool
}

func approxDivCells(scale int) []approxCell {
	cells := make([]approxCell, len(approxDivs))
	for i, div := range approxDivs {
		g := core.WidxConfig().Scaled(runner.CacheDiv(scale) * div)
		s := approxDonorSpec(scale)
		if div > 1 {
			s.DivMul = div
		}
		cells[i] = approxCell{
			name:  fmt.Sprintf("div%d", div),
			cfg:   approx.TagConfig{Name: fmt.Sprintf("div%d", div), Sets: g.Sets, Ways: g.Ways},
			spec:  s,
			donor: div == 1,
		}
	}
	return cells
}

func approxWayCells(scale int) []approxCell {
	g := core.WidxConfig().Scaled(runner.CacheDiv(scale))
	cells := make([]approxCell, len(approxWays))
	for i, w := range approxWays {
		s := approxDonorSpec(scale)
		if w != g.Ways {
			s.Ways = w
		}
		cells[i] = approxCell{
			name:  fmt.Sprintf("ways%d", w),
			cfg:   approx.TagConfig{Name: fmt.Sprintf("ways%d", w), Sets: g.Sets, Ways: w},
			spec:  s,
			donor: w == g.Ways,
		}
	}
	return cells
}

// approxEval is everything the three approx outputs derive from: the
// donor capture, Engine A results for both axes, Engine B estimates for
// every out-of-envelope cell, and the calibrated cycles model.
type approxEval struct {
	cap     *approx.Capture
	divs    []approxCell
	ways    []approxCell
	divTags []approx.TagResult
	wayTags []approx.TagResult
	ests    map[string]*approx.IntervalEstimate // by cell name, sampled cells only

	// cycles ≈ cycA + cycB × missRate, least-squares over the exact
	// donor and the Engine B cacheDiv estimates: the linear
	// DRAM-pressure model that turns Engine A hit rates into cycle
	// predictions.
	cycA, cycB float64

	// approxSimCycles is the tier's total simulated work: the donor
	// capture plus all sampled windows.
	approxSimCycles uint64
}

func approxSound(c approx.TagConfig) bool {
	return c.SoundFor(core.WidxConfig().NumActive)
}

func approxRun(r *runner.Runner, scale int) (*approxEval, error) {
	cap, err := approxCapture(scale)
	if err != nil {
		return nil, err
	}
	e := &approxEval{
		cap:  cap,
		divs: approxDivCells(scale),
		ways: approxWayCells(scale),
		ests: map[string]*approx.IntervalEstimate{},
	}
	cfgs := func(cells []approxCell) []approx.TagConfig {
		out := make([]approx.TagConfig, len(cells))
		for i, c := range cells {
			out[i] = c.cfg
		}
		return out
	}
	if e.divTags, err = approx.ReplayTags(cap, cfgs(e.divs)); err != nil {
		return nil, err
	}
	if e.wayTags, err = approx.ReplayTags(cap, cfgs(e.ways)); err != nil {
		return nil, err
	}
	e.approxSimCycles = cap.Donor.Cycles
	for _, cells := range [][]approxCell{e.divs, e.ways} {
		for _, c := range cells {
			if c.donor || approxSound(c.cfg) {
				continue
			}
			est, err := approx.EstimateWidx(r, c.spec, approxPlan)
			if err != nil {
				return nil, fmt.Errorf("exp: interval estimate %s: %w", c.name, err)
			}
			if !est.Checked {
				return nil, fmt.Errorf("exp: interval estimate %s failed functional validation", c.name)
			}
			e.ests[c.name] = est
			e.approxSimCycles += est.SimCycles
		}
	}

	// Calibrate the cycles-vs-miss-rate line on the cacheDiv cells whose
	// cycles the tier actually simulated: the exact donor plus the
	// Engine B samples. Miss RATE, not miss count, is the x axis —
	// retried walks re-classify and inflate absolute miss counts in the
	// full simulator, while Engine A counts each admission once, so only
	// rates are comparable across the two engines. Way-scan samples stay
	// out of the fit: they vary associativity, not capacity, and their
	// retry stalls follow a different cycles-per-miss relation.
	var xs, ys []float64
	xs = append(xs, 1-cap.Donor.HitRate)
	ys = append(ys, float64(cap.Donor.Cycles))
	for _, c := range e.divs {
		if est, ok := e.ests[c.name]; ok {
			xs = append(xs, 1-est.HitRate)
			ys = append(ys, est.Cycles)
		}
	}
	e.cycA, e.cycB = linfit(xs, ys)
	return e, nil
}

// linfit is least-squares y = a + b·x; degenerate inputs fall back to a
// flat line at the mean.
func linfit(xs, ys []float64) (a, b float64) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// cellHit returns the cell's approximate hit rate and its engine label.
func (e *approxEval) cellHit(c approxCell, tag approx.TagResult) (float64, string) {
	if c.donor {
		return e.cap.Donor.HitRate, "exact"
	}
	if approxSound(c.cfg) {
		return tag.HitRate(), "tags"
	}
	return e.ests[c.name].HitRate, "interval"
}

// cellCycles returns the cell's approximate cycle count, its 95%
// half-width (0 when not an interval estimate) and its engine label.
func (e *approxEval) cellCycles(c approxCell, tag approx.TagResult) (float64, float64, string) {
	if c.donor {
		return float64(e.cap.Donor.Cycles), 0, "exact"
	}
	if est, ok := e.ests[c.name]; ok {
		return est.Cycles, est.CyclesCI, "interval"
	}
	return e.cycA + e.cycB*(1-tag.HitRate()), 0, "tags"
}

// ApproxCacheDiv is the approximate variant of the Fig 17 cache-pressure
// sweep: one full donor simulation plus sampled windows instead of one
// full simulation per cell. Hit rates come from tag replay inside
// Engine A's envelope and from sampled windows outside it; cycles from
// the calibrated miss model or the windows.
func ApproxCacheDiv(r *runner.Runner, scale int) (*Out, error) {
	e, err := approxRun(r, scale)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Approx Fig 17 — Runtime vs % on-chip (TPC-H-22, approximate tier)",
		"CacheDiv", "HitRate", "HitSrc", "Cycles", "Cycles±95%", "CycSrc")
	for i, c := range e.divs {
		hit, hitSrc := e.cellHit(c, e.divTags[i])
		cyc, ci, cycSrc := e.cellCycles(c, e.divTags[i])
		t.Add(fmt.Sprintf("%d", approxDivs[i]), stats.F2(hit), hitSrc,
			stats.I(uint64(cyc)), stats.I(uint64(ci)), cycSrc)
	}
	m := map[string]float64{
		"approx_sim_cycles": float64(e.approxSimCycles),
		"donor_hit_rate":    e.cap.Donor.HitRate,
	}
	return &Out{ID: "approx-fig17", Table: t, Metrics: m,
		Notes: []string{
			"Approximate tier: one donor simulation (div=1) replayed against every geometry; out-of-envelope cells sampled with 3x1% windows (1% warm-up).",
			"Cycle cells labelled 'tags' pass Engine A misses through a linear model calibrated on the donor and the sampled cells.",
			"Validation against exact cells: see approx_error.",
		}}, nil
}

// ApproxGeometry is the associativity scan the exact tier never runs as
// a figure: hit rate across way counts at donor set count, every
// in-envelope cell answered by the same single donor trace.
func ApproxGeometry(r *runner.Runner, scale int) (*Out, error) {
	e, err := approxRun(r, scale)
	if err != nil {
		return nil, err
	}
	sets := core.WidxConfig().Scaled(runner.CacheDiv(scale)).Sets
	t := stats.NewTable("Approx geometry — Hit rate vs associativity (TPC-H-22, one-pass tag replay)",
		"Ways", "Sets", "HitRate", "Src")
	m := map[string]float64{}
	for i, c := range e.ways {
		hit, src := e.cellHit(c, e.wayTags[i])
		t.Add(fmt.Sprintf("%d", approxWays[i]), fmt.Sprintf("%d", sets), stats.F2(hit), src)
		m[fmt.Sprintf("hit_rate_ways%d", approxWays[i])] = hit
	}
	return &Out{ID: "approx-geom", Table: t, Metrics: m,
		Notes: []string{
			"All in-envelope cells replayed from one donor run (donor-way cell exact); ways below the envelope are sampled windows.",
		}}, nil
}

// ApproxError is the validation harness: every approximate cell is
// compared against the full simulator and must land within the tier's
// declared bound. It also measures the work reduction — exact simulated
// cycles over approximate simulated cycles for the same set of cells —
// which the approx-check gate requires to be at least 10x.
func ApproxError(r *runner.Runner, scale int) (*Out, error) {
	e, err := approxRun(r, scale)
	if err != nil {
		return nil, err
	}

	var specs []runner.Spec
	var cells []approxCell
	for _, cs := range [][]approxCell{e.divs, e.ways} {
		for _, c := range cs {
			if !c.donor {
				specs = append(specs, c.spec)
				cells = append(cells, c)
			}
		}
	}
	exact, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	exactBy := make(map[string]dsa.Result, len(cells))
	for i, c := range cells {
		exactBy[c.name] = exact[i]
	}

	t := stats.NewTable("Approx error — approximate cells vs exact simulator",
		"Cell", "Metric", "Engine", "Exact", "Approx", "Err", "Bound", "OK")
	exactWork := float64(e.cap.Donor.Cycles) // donor: run by both tiers
	approxWork := float64(e.approxSimCycles)
	var maxHitErr, maxCycErr float64
	allOK := true
	row := func(cell, metric, engine string, exactV, approxV, errV, bound float64) {
		ok := errV <= bound
		allOK = allOK && ok
		t.Add(cell, metric, engine, stats.F2(exactV), stats.F2(approxV),
			fmt.Sprintf("%.4f", errV), fmt.Sprintf("%.4f", bound), fmt.Sprintf("%t", ok))
	}

	// Donor cell: Engine A replay must be bit-exact (bound 0).
	for i, c := range e.divs {
		if !c.donor {
			continue
		}
		row(c.name, "hit_rate", "tags", e.cap.Donor.HitRate, e.divTags[i].HitRate(),
			math.Abs(e.divTags[i].HitRate()-e.cap.Donor.HitRate), 0)
	}

	check := func(c approxCell, tag approx.TagResult, withCycles bool) {
		ex := exactBy[c.name]
		hit, hitSrc := e.cellHit(c, tag)
		hitBound := approxTagsHitBound
		if hitSrc == "interval" {
			hitBound = approxIntervalHitBound
		}
		hitErr := math.Abs(hit - ex.HitRate)
		row(c.name, "hit_rate", hitSrc, ex.HitRate, hit, hitErr, hitBound)
		if hitErr > maxHitErr {
			maxHitErr = hitErr
		}
		if !withCycles {
			return
		}
		cyc, _, cycSrc := e.cellCycles(c, tag)
		cycErr := math.Abs(cyc-float64(ex.Cycles)) / float64(ex.Cycles)
		row(c.name, "cycles", cycSrc, float64(ex.Cycles), cyc, cycErr, approxCyclesBound)
		if cycErr > maxCycErr {
			maxCycErr = cycErr
		}
	}
	for i, c := range e.divs {
		if c.donor {
			continue
		}
		exactWork += float64(exactBy[c.name].Cycles)
		check(c, e.divTags[i], true)
	}
	for i, c := range e.ways {
		if c.donor {
			continue
		}
		exactWork += float64(exactBy[c.name].Cycles)
		check(c, e.wayTags[i], false)
	}

	reduction := 0.0
	if approxWork > 0 {
		reduction = exactWork / approxWork
	}
	ok := 0.0
	if allOK {
		ok = 1
	}
	m := map[string]float64{
		"work_reduction":      reduction,
		"max_hit_rate_err":    maxHitErr,
		"max_cycles_rel_err":  maxCycErr,
		"cells_within_bounds": ok,
	}
	return &Out{ID: "approx_error", Table: t, Metrics: m,
		Notes: []string{
			fmt.Sprintf("Declared bounds: hit-rate |err| <= %.2f (tags) / <= %.2f (interval); cycles rel err <= %.2f.",
				approxTagsHitBound, approxIntervalHitBound, approxCyclesBound),
			"Work is deterministic simulated cycles: all exact cells vs donor capture + sampled windows.",
		}}, nil
}
