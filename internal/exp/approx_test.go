package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"xcache/internal/exp/runner"
)

// TestApproxErrorBounds is the tier's acceptance gate (and the
// `make approx-check` target): at the golden scale every approximate
// cell must land within its declared error bound, and the tier must cut
// simulated work by at least 10x over the exact cells it replaces.
func TestApproxErrorBounds(t *testing.T) {
	r := runner.New(8)
	out, err := ApproxError(r, goldenScale)
	if err != nil {
		t.Fatalf("ApproxError: %v", err)
	}
	t.Logf("work_reduction=%.1fx max_hit_rate_err=%.4f max_cycles_rel_err=%.4f",
		out.Metrics["work_reduction"], out.Metrics["max_hit_rate_err"], out.Metrics["max_cycles_rel_err"])
	if out.Metrics["cells_within_bounds"] != 1 {
		t.Errorf("approximate cells exceed their declared bounds:\n%s", out.Table)
	}
	if red := out.Metrics["work_reduction"]; red < 10 {
		t.Errorf("work reduction %.2fx < 10x", red)
	}
}

// TestApproxDeterminism: the three approx outputs must be byte-identical
// across runner worker counts — the same contract the exact figures hold.
func TestApproxDeterminism(t *testing.T) {
	render := func(workers int) []byte {
		r := runner.New(workers)
		var buf bytes.Buffer
		for _, f := range []func(*runner.Runner, int) (*Out, error){ApproxCacheDiv, ApproxGeometry, ApproxError} {
			out, err := f(r, goldenScale)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			b, err := json.MarshalIndent(out, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			buf.Write(b)
			buf.WriteByte('\n')
		}
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("approx outputs differ between 1-worker and 8-worker runners")
	}
}
