package exp

import (
	"fmt"

	"xcache/internal/check"
	"xcache/internal/hier"
	"xcache/internal/stats"
)

// cohShareOps is the per-port script length of every FigCohShare cell:
// long enough that steady-state sharing behaviour dominates cold misses,
// short enough for the golden test.
const cohShareOps = 384

// cohSharePattern generates port p's script for one sharing pattern.
// All three patterns issue the same op count over the same key-space size,
// so the cells differ only in how the ports overlap:
//
//	private   — disjoint 16-key slices per port: no line ever has two homes
//	shared-rd — every port reads the same 16 keys: Shared copies everywhere
//	contended — every port merges into the same 8 keys: ownership migrates
func cohSharePattern(pattern string, p, ports int) []hier.ScriptOp {
	ops := make([]hier.ScriptOp, 0, cohShareOps)
	for i := 0; i < cohShareOps; i++ {
		switch pattern {
		case "private":
			k := uint64(p*16 + i%16)
			if i%4 == 3 {
				ops = append(ops, hier.Merge(k, 1))
			} else {
				ops = append(ops, hier.Ld(k))
			}
		case "shared-rd":
			ops = append(ops, hier.Ld(uint64((i+p*5)%16)))
		case "contended":
			ops = append(ops, hier.Merge(uint64((i+p*3)%8), 1))
		}
	}
	return ops
}

// runCohShare runs one (ports, pattern) cell under full invariant
// checking and returns the system plus the cycle count at completion.
func runCohShare(ports int, pattern string) (*hier.CohSystem, uint64, error) {
	// 64-entry L1s: the 16-key working sets below fit even under the
	// meta-tag array's hashed set index, so the private column measures
	// sharing cost, not conflict misses.
	s, err := hier.NewCohSystem(hier.CohConfig{
		Ports:   ports,
		L1:      hier.L1Config{Sets: 16, Ways: 4, WordsPerSector: 1},
		NumKeys: 64,
	})
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < 64; i++ {
		s.Seed(i, uint64(100+i))
	}
	scripts := make([][]hier.ScriptOp, ports)
	for p := 0; p < ports; p++ {
		scripts[p] = cohSharePattern(pattern, p, ports)
	}
	h := check.Attach(s.K, check.Default())
	if _, err := hier.RunScripts(s, h, scripts, 500_000); err != nil {
		return nil, 0, fmt.Errorf("coh-share %s/p%d: %w", pattern, ports, err)
	}
	return s, uint64(s.K.Cycle()), nil
}

// FigCohShare sweeps the coherent hierarchy over port counts × sharing
// patterns: the cost of coherence is the gap between the private column
// (pure capacity behaviour) and the contended one (ownership migration on
// every store). Every cell runs under the full per-cycle coherence
// invariant checker, so the figure doubles as a protocol soak.
func FigCohShare() (*Out, error) {
	t := stats.NewTable("Fig C — shared-L2 hierarchy under sharing patterns",
		"Ports", "Pattern", "Cycles", "L1 hit %", "Grants", "Invals", "Downgrades", "WB")
	m := map[string]float64{}
	cells := map[string]uint64{}
	for _, ports := range []int{1, 2, 4} {
		for _, pattern := range []string{"private", "shared-rd", "contended"} {
			s, cycles, err := runCohShare(ports, pattern)
			if err != nil {
				return nil, err
			}
			var hits, misses uint64
			for _, l1 := range s.Ports {
				st := l1.Stats()
				hits += st.Hits
				misses += st.Misses
			}
			hitPct := 0.0
			if hits+misses > 0 {
				hitPct = 100 * float64(hits) / float64(hits+misses)
			}
			ds := s.Dir.Stats()
			t.Add(fmt.Sprintf("%d", ports), pattern, stats.I(int(cycles)),
				fmt.Sprintf("%.1f", hitPct), stats.I(int(ds.Grants)),
				stats.I(int(ds.Invals)), stats.I(int(ds.Downgrades)), stats.I(int(ds.Writebacks)))
			cells[fmt.Sprintf("%s_p%d", pattern, ports)] = cycles
			if ports == 4 && pattern == "contended" {
				m["invals_per_op_contended_p4"] = float64(ds.Invals) / float64(4*cohShareOps)
			}
			if ports == 4 && pattern == "shared-rd" {
				m["shared_hit_pct_p4"] = hitPct
			}
		}
	}
	m["contended_vs_private_cycles_p4"] = float64(cells["contended_p4"]) / float64(cells["private_p4"])
	return &Out{ID: "coh-share", Table: t, Metrics: m,
		Notes: []string{
			"private at 4 ports exposes inclusion thrash: 64 keys hash one hot L2 set, and every L2 conflict eviction back-invalidates an L1 copy that must re-walk DRAM",
			"contended stays on-chip: each merge recalls the previous owner cache-to-cache, so it outruns DRAM-bound private despite ~1 invalidation per op",
			"shared-rd is free: Shared copies replicate without any snoop traffic",
			"all cells ran under per-cycle single-writer / inclusion / no-stale-fill checking",
		}}, nil
}
