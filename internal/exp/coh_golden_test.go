package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// cohGoldenPath lives beside — not inside — testdata/golden: the bench
// set and its stale-snapshot scan stay untouched by the hierarchy figure.
func cohGoldenPath() string {
	return filepath.Join("testdata", "coh-share.golden.json")
}

// TestCohShareGolden pins FigCohShare byte-for-byte: cycle counts, hit
// rates, and the directory's protocol ledger across every (ports,
// pattern) cell. Any protocol or timing change shows up as a diff here
// even when it stays architecturally legal. Regenerate with -update.
func TestCohShareGolden(t *testing.T) {
	o, err := FigCohShare()
	if err != nil {
		t.Fatal(err)
	}
	got := marshalOut(t, o)
	path := cohGoldenPath()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("coh-share drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCohShareShape checks the architectural claims the figure's notes
// make, independent of the pinned numbers.
func TestCohShareShape(t *testing.T) {
	o, err := FigCohShare()
	if err != nil {
		t.Fatal(err)
	}
	// Contended migrates ownership on nearly every merge.
	if v := o.Metrics["invals_per_op_contended_p4"]; v < 0.5 {
		t.Errorf("contended pattern invalidations per op = %.3f, want >= 0.5", v)
	}
	// Shared readers replicate freely and hit locally.
	if o.Metrics["shared_hit_pct_p4"] <= 50 {
		t.Errorf("shared read pattern hit rate %.1f%%, expected locality above 50%%",
			o.Metrics["shared_hit_pct_p4"])
	}
	// Ownership migration is cache-to-cache: contended must not be
	// DRAM-bound, so it stays within 2x of the private cells.
	if v := o.Metrics["contended_vs_private_cycles_p4"]; v <= 0 || v > 2 {
		t.Errorf("contended/private cycle ratio %.3f outside (0, 2]", v)
	}
}
