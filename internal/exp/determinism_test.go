package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"xcache/internal/check"
	"xcache/internal/exp/runner"
)

func marshalSweep(t *testing.T, sw *Sweep) []byte {
	t.Helper()
	b, err := json.MarshalIndent(sw, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepDeterminism is the runner's core contract: the full sweep,
// executed strictly serially (direct Spec.Execute in spec order, no
// pool, no cache), with one worker, and with eight workers, marshals to
// byte-identical output.
func TestSweepDeterminism(t *testing.T) {
	_, sw8 := goldenSweep(t) // shared 8-worker sweep at goldenScale
	b8 := marshalSweep(t, sw8)

	// Serial path: no Runner at all.
	serial := &Sweep{Scale: goldenScale}
	for _, s := range SweepSpecs(goldenScale) {
		res, err := s.Execute()
		if err != nil {
			t.Fatalf("%s: %v", s.Key(), err)
		}
		serial.Results = append(serial.Results, res)
	}
	bSerial := marshalSweep(t, serial)

	sw1, err := RunSweep(runner.New(1), goldenScale)
	if err != nil {
		t.Fatal(err)
	}
	b1 := marshalSweep(t, sw1)

	if !bytes.Equal(bSerial, b1) {
		t.Error("1-worker sweep differs from the serial path")
	}
	if !bytes.Equal(bSerial, b8) {
		t.Error("8-worker sweep differs from the serial path")
	}
}

// faultedSweepSpecs returns the sweep specs with seeded fault injection
// attached (the harness only supervises X-Cache runs; on the addr and
// baseline kinds the config is inert).
func faultedSweepSpecs(scale int, seed uint64) []runner.Spec {
	specs := SweepSpecs(scale)
	for i := range specs {
		specs[i].Check = true
		specs[i].Faults = check.FaultConfig{DropResp: 2e-3, DelayResp: 2e-3}
		specs[i].Seed = seed
	}
	return specs
}

// TestFaultedSweepDeterminism pins check's replay guarantee through the
// runner: under seeded fault injection the whole sweep is still
// byte-identical across worker counts, and a re-run with the same seed
// reproduces every result exactly.
func TestFaultedSweepDeterminism(t *testing.T) {
	const scale, seed = 200, 7

	r1, err := runner.New(1).Run(faultedSweepSpecs(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	r8, err := runner.New(8).Run(faultedSweepSpecs(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b8, _ := json.Marshal(r8)
	if !bytes.Equal(b1, b8) {
		t.Fatal("faulted sweep differs between 1 and 8 workers")
	}

	// The injector must actually have fired somewhere, or this test
	// proves nothing.
	var dropped uint64
	for _, r := range r1 {
		dropped += r.DroppedFills
	}
	if dropped == 0 {
		t.Fatal("no fills dropped across the faulted sweep: injector never fired")
	}

	// Same-seed replay through a fresh runner reproduces every result.
	r1b, err := runner.New(8).Run(faultedSweepSpecs(scale, seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r1b[i] {
			t.Fatalf("faulted run %d diverged on replay:\n  %+v\n  %+v", i, r1[i], r1b[i])
		}
	}
}

// TestRunCacheDedup verifies the content-addressed cache: requesting the
// same spec repeatedly in one batch launches exactly one simulation, and
// every requester sees the identical result.
func TestRunCacheDedup(t *testing.T) {
	spec := SweepSpecs(400)[0]
	specs := make([]runner.Spec, 16)
	for i := range specs {
		specs[i] = spec
	}
	r := runner.New(8)
	res, err := r.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i] != res[0] {
			t.Fatalf("request %d saw a different result", i)
		}
	}
	st := r.Stats()
	if st.Launched != 1 {
		t.Errorf("launched %d simulations for 16 identical specs", st.Launched)
	}
	if st.Cached != 15 {
		t.Errorf("cached %d, want 15", st.Cached)
	}
	if st.Failed != 0 {
		t.Errorf("failed %d, want 0", st.Failed)
	}
	if hr := st.HitRate(); hr < 0.93 || hr > 0.94 {
		t.Errorf("hit rate %v, want 15/16", hr)
	}
}

// TestRunnerErrorDeterminism: with several invalid specs in one batch,
// the reported error always names the lowest-indexed failure, whatever
// the completion order.
func TestRunnerErrorDeterminism(t *testing.T) {
	specs := SweepSpecs(400)[:4]
	specs[1].Workload = "no-such-workload-b"
	specs[3].Workload = "no-such-workload-d"
	for trial := 0; trial < 3; trial++ {
		_, err := runner.New(8).Run(specs)
		if err == nil {
			t.Fatal("invalid specs did not error")
		}
		if want := "no-such-workload-b"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Fatalf("error %q does not name the lowest-indexed failing spec %q", err, want)
		}
	}
}
