// Package exp is the evaluation harness: one entry point per table and
// figure of the paper's evaluation (§8), each regenerating the same rows
// or series the paper reports. Both cmd/xcache-bench and the repository's
// benchmark suite drive these functions.
//
// Every experiment takes a scale divisor: scale 1 runs the published
// workload sizes (Table 3 geometries, 100 GB-regime hash indices,
// p2p-Gnutella sparse inputs); larger scales divide the workload and
// cache capacities together so the cache-pressure regime — the thing the
// results depend on — is preserved while unit tests stay fast.
package exp

import (
	"context"
	"fmt"
	"math"

	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// Out is one regenerated table/figure.
type Out struct {
	ID      string
	Table   *stats.Table
	Metrics map[string]float64
	Notes   []string
}

// Sweep holds the full DSA × workload × storage-idiom result matrix that
// Figs 14/15/16 are cut from. Failed is empty on a clean strict run;
// under RunSweepPartial it carries every cell that could not be
// simulated, so the figures annotate failures instead of aborting.
type Sweep struct {
	Scale   int
	Results []dsa.Result
	Failed  []FailedCell `json:",omitempty"`
}

// FailedCell is one sweep point that produced no result: the cell's
// identity plus the runner's taxonomy classification (Fail/Class from
// runner.RunError, or "validation"/"permanent" when the simulation
// completed but did not match its reference model).
type FailedCell struct {
	DSA      string
	Workload string
	Kind     dsa.Kind
	Fail     string // taxonomy kind: stall, invariant, panic, deadline, validation, ...
	Class    string // transient | permanent
	Err      string
}

// FailureNotes renders one line per failed cell, for Out.Notes and the
// xcache-bench -partial summary.
func (s *Sweep) FailureNotes() []string {
	var notes []string
	for _, f := range s.Failed {
		notes = append(notes, fmt.Sprintf("FAILED %s/%s[%s]: %s (%s)", f.DSA, f.Workload, f.Kind, f.Fail, f.Class))
	}
	return notes
}

// Get returns the result for (dsaName, workload, kind), or false.
func (s *Sweep) Get(dsaName, workload string, kind dsa.Kind) (dsa.Result, bool) {
	for _, r := range s.Results {
		if r.DSA == dsaName && r.Workload == workload && r.Kind == kind {
			return r, true
		}
	}
	return dsa.Result{}, false
}

// Pairs returns the (xcache, other) result pairs for every workload that
// has both kinds.
func (s *Sweep) Pairs(other dsa.Kind) (xs, os []dsa.Result) {
	for _, r := range s.Results {
		if r.Kind != dsa.KindXCache {
			continue
		}
		o, ok := s.Get(r.DSA, r.Workload, other)
		if !ok {
			continue
		}
		xs = append(xs, r)
		os = append(os, o)
	}
	return xs, os
}

// sweepKinds is the serial-path kind order within each (DSA, workload).
var sweepKinds = []dsa.Kind{dsa.KindXCache, dsa.KindAddr, dsa.KindBaseline}

// SweepSpecs returns the full Fig 14 result matrix as independent run
// specs, in the canonical (historical serial-path) order.
func SweepSpecs(scale int) []runner.Spec {
	var specs []runner.Spec

	// Widx and DASX over the three TPC-H query profiles.
	for _, p := range hashidx.TPCH() {
		for _, d := range []string{runner.DSAWidx, runner.DSADASX} {
			for _, k := range sweepKinds {
				specs = append(specs, runner.Spec{DSA: d, Kind: k, Workload: p.Name, Scale: scale})
			}
		}
	}

	// SpArch and Gamma on p2p-Gnutella31.
	for _, d := range []string{runner.DSASpArch, runner.DSAGamma} {
		for _, k := range sweepKinds {
			specs = append(specs, runner.Spec{DSA: d, Kind: k, Workload: "p2p-31", Scale: scale})
		}
	}

	// GraphPulse on p2p-Gnutella08 and (further scaled — the published
	// input is 916K vertices / 5.1M edges) web-Google.
	for _, w := range []runner.Spec{
		{Workload: "p2p-08", Scale: scale},
		{Workload: "web-Google", Scale: scale, WorkScale: scale * 4},
	} {
		for _, k := range sweepKinds {
			s := w
			s.DSA = runner.DSAGraphPulse
			s.Kind = k
			specs = append(specs, s)
		}
	}
	return specs
}

// RunSweep executes every (DSA, workload, idiom) combination of Fig 14
// on the given runner. Results are ordered and validated identically to
// the historical serial path regardless of the runner's worker count.
func RunSweep(r *runner.Runner, scale int) (*Sweep, error) {
	results, err := r.Run(SweepSpecs(scale))
	if err != nil {
		return nil, err
	}
	sw := &Sweep{Scale: scale}
	for _, res := range results {
		if !res.Checked {
			return nil, fmt.Errorf("exp: %s/%s[%s] failed functional validation", res.DSA, res.Workload, res.Kind)
		}
		sw.Results = append(sw.Results, res)
	}
	return sw, nil
}

// RunSweepPartial is the graceful-degradation sweep: every cell runs to
// a terminal outcome and failures — classified runner errors or
// functional-validation mismatches — are recorded in Sweep.Failed
// instead of aborting the batch. Successful cells keep the strict
// sweep's order and values (a clean partial sweep is byte-identical to
// RunSweep's). It errors only when not a single cell survived.
func RunSweepPartial(ctx context.Context, r *runner.Runner, scale int) (*Sweep, error) {
	specs := SweepSpecs(scale)
	outs := r.RunAll(ctx, specs)
	sw := &Sweep{Scale: scale}
	for i, o := range outs {
		s := specs[i]
		switch {
		case o.Err != nil:
			sw.Failed = append(sw.Failed, FailedCell{
				DSA: s.DSA, Workload: s.Workload, Kind: s.Kind,
				Fail: o.Err.Kind.String(), Class: o.Err.Class.String(), Err: o.Err.Error(),
			})
		case !o.Res.Checked:
			sw.Failed = append(sw.Failed, FailedCell{
				DSA: s.DSA, Workload: s.Workload, Kind: s.Kind,
				Fail: "validation", Class: "permanent",
				Err: "functional output did not match the reference model",
			})
		default:
			sw.Results = append(sw.Results, o.Res)
		}
	}
	if len(sw.Results) == 0 && len(sw.Failed) > 0 {
		f := sw.Failed[0]
		return nil, fmt.Errorf("exp: all %d sweep cells failed (first: %s/%s[%s]: %s)",
			len(sw.Failed), f.DSA, f.Workload, f.Kind, f.Fail)
	}
	return sw, nil
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
