// Package exp is the evaluation harness: one entry point per table and
// figure of the paper's evaluation (§8), each regenerating the same rows
// or series the paper reports. Both cmd/xcache-bench and the repository's
// benchmark suite drive these functions.
//
// Every experiment takes a scale divisor: scale 1 runs the published
// workload sizes (Table 3 geometries, 100 GB-regime hash indices,
// p2p-Gnutella sparse inputs); larger scales divide the workload and
// cache capacities together so the cache-pressure regime — the thing the
// results depend on — is preserved while unit tests stay fast.
package exp

import (
	"fmt"
	"math"

	"xcache/internal/core"
	"xcache/internal/dsa"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// Out is one regenerated table/figure.
type Out struct {
	ID      string
	Table   *stats.Table
	Metrics map[string]float64
	Notes   []string
}

// cacheDiv maps a workload scale to the cache-capacity divisor that keeps
// the working-set-to-capacity ratio of the paper's configuration.
func cacheDiv(scale int) int {
	d := scale / 3
	if d < 1 {
		d = 1
	}
	return d
}

func widxOpts(scale int) widx.Options {
	return widx.Options{Cfg: core.WidxConfig().Scaled(cacheDiv(scale))}
}

func dasxOpts(scale int) dasx.Options {
	return dasx.Options{Cfg: core.DASXConfig().Scaled(cacheDiv(scale))}
}

func spgemmOpts(alg spgemm.Algorithm, scale int) spgemm.Options {
	d := scale / 8
	if d < 1 {
		d = 1
	}
	cfg := core.SpArchConfig()
	if alg == spgemm.Gamma {
		cfg = core.GammaConfig()
	}
	return spgemm.Options{Cfg: cfg.Scaled(d)}
}

func gpOpts(scale int) graphpulse.Options {
	return gpOptsFor(graphpulse.P2PGnutella08(scale), scale)
}

func gpOptsFor(w graphpulse.Work, scale int) graphpulse.Options {
	cfg := core.GraphPulseConfig()
	if scale > 1 || w.N > cfg.Sets {
		// Keep the collision-free identity-indexed store: sets ≥ 2N.
		sets := 1024
		for sets < 2*w.N {
			sets *= 2
		}
		cfg.Sets = sets
		cfg.Sectors = 2 * sets
	}
	return graphpulse.Options{Cfg: cfg}
}

// Sweep holds the full DSA × workload × storage-idiom result matrix that
// Figs 14/15/16 are cut from.
type Sweep struct {
	Scale   int
	Results []dsa.Result
}

// Get returns the result for (dsaName, workload, kind), or false.
func (s *Sweep) Get(dsaName, workload string, kind dsa.Kind) (dsa.Result, bool) {
	for _, r := range s.Results {
		if r.DSA == dsaName && r.Workload == workload && r.Kind == kind {
			return r, true
		}
	}
	return dsa.Result{}, false
}

// Pairs returns the (xcache, other) result pairs for every workload that
// has both kinds.
func (s *Sweep) Pairs(other dsa.Kind) (xs, os []dsa.Result) {
	for _, r := range s.Results {
		if r.Kind != dsa.KindXCache {
			continue
		}
		o, ok := s.Get(r.DSA, r.Workload, other)
		if !ok {
			continue
		}
		xs = append(xs, r)
		os = append(os, o)
	}
	return xs, os
}

// RunSweep executes every (DSA, workload, idiom) combination of Fig 14.
func RunSweep(scale int) (*Sweep, error) {
	sw := &Sweep{Scale: scale}
	add := func(r dsa.Result, err error) error {
		if err != nil {
			return err
		}
		if !r.Checked {
			return fmt.Errorf("exp: %s/%s[%s] failed functional validation", r.DSA, r.Workload, r.Kind)
		}
		sw.Results = append(sw.Results, r)
		return nil
	}

	// Widx and DASX over the three TPC-H query profiles.
	for _, p := range hashidx.TPCH() {
		w := widx.DefaultWork(p, scale)
		if err := add(widx.RunXCache(w, widxOpts(scale))); err != nil {
			return nil, err
		}
		if err := add(widx.RunAddr(w, widxOpts(scale))); err != nil {
			return nil, err
		}
		if err := add(widx.RunBaseline(w, widxOpts(scale))); err != nil {
			return nil, err
		}
		if err := add(dasx.RunXCache(w, dasxOpts(scale))); err != nil {
			return nil, err
		}
		if err := add(dasx.RunAddr(w, dasxOpts(scale))); err != nil {
			return nil, err
		}
		if err := add(dasx.RunBaseline(w, dasxOpts(scale))); err != nil {
			return nil, err
		}
	}

	// SpArch and Gamma on p2p-Gnutella31.
	sp := spgemm.P2PGnutella31(scale)
	for _, alg := range []spgemm.Algorithm{spgemm.SpArch, spgemm.Gamma} {
		if err := add(spgemm.RunXCache(alg, sp, spgemmOpts(alg, scale))); err != nil {
			return nil, err
		}
		if err := add(spgemm.RunAddr(alg, sp, spgemmOpts(alg, scale))); err != nil {
			return nil, err
		}
		if err := add(spgemm.RunBaseline(alg, sp, spgemmOpts(alg, scale))); err != nil {
			return nil, err
		}
	}

	// GraphPulse on p2p-Gnutella08 and (further scaled — the published
	// input is 916K vertices / 5.1M edges) web-Google.
	gw := graphpulse.P2PGnutella08(scale)
	web := graphpulse.WebGoogle(scale * 4)
	for _, w := range []graphpulse.Work{gw, web} {
		opt := gpOptsFor(w, scale)
		if err := add(graphpulse.RunXCache(w, opt)); err != nil {
			return nil, err
		}
		if err := add(graphpulse.RunAddr(w, opt)); err != nil {
			return nil, err
		}
		if err := add(graphpulse.RunBaseline(w, opt)); err != nil {
			return nil, err
		}
	}
	return sw, nil
}

func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}
