package exp

import (
	"strings"
	"testing"

	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
)

// testScale keeps unit-test sweeps to a couple of seconds while
// preserving the working-set-to-capacity regime.
const testScale = 100

// testRunner is shared by the whole test package: one content-addressed
// run cache, so points repeated across figure tests simulate once.
var testRunner = runner.New(0)

var sweepCache *Sweep

func sweep(t *testing.T) *Sweep {
	t.Helper()
	if sweepCache == nil {
		sw, err := RunSweep(testRunner, testScale)
		if err != nil {
			t.Fatal(err)
		}
		sweepCache = sw
	}
	return sweepCache
}

func TestSweepCoversAllDSAs(t *testing.T) {
	sw := sweep(t)
	// 3 queries × 2 hash DSAs × 3 kinds + 2 spgemm × 3 + 2 graphpulse
	// inputs × 3.
	if len(sw.Results) != 18+6+6 {
		t.Fatalf("sweep has %d results", len(sw.Results))
	}
	for _, r := range sw.Results {
		if !r.Checked {
			t.Errorf("%s/%s[%s] unchecked", r.DSA, r.Workload, r.Kind)
		}
		if r.Cycles == 0 {
			t.Errorf("%s/%s[%s] zero cycles", r.DSA, r.Workload, r.Kind)
		}
	}
	for _, name := range []string{"Widx", "DASX", "SpArch", "Gamma", "GraphPulse"} {
		found := false
		for _, r := range sw.Results {
			if r.DSA == name {
				found = true
			}
		}
		if !found {
			t.Errorf("DSA %s missing from sweep", name)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	out := Fig4(sweep(t))
	if out.Metrics["l2u_improvement_geomean"] <= 1.0 {
		t.Errorf("meta-tags did not improve load-to-use: %v", out.Metrics)
	}
	if len(out.Table.Rows) == 0 {
		t.Fatal("empty table")
	}
}

func TestFig14Shape(t *testing.T) {
	out := Fig14(sweep(t))
	m := out.Metrics
	// Paper: 1.7x over address caches. Accept a generous band at test scale.
	if m["speedup_vs_addr_geomean"] < 1.1 {
		t.Errorf("speedup vs addr %v below band", m["speedup_vs_addr_geomean"])
	}
	// Competitive with hardwired baselines (no big loss).
	if m["speedup_vs_baseline_geomean"] < 0.9 {
		t.Errorf("X-Cache loses to baselines overall: %v", m["speedup_vs_baseline_geomean"])
	}
	// Paper: memory accesses reduced 2-8x vs address-based caches. Our
	// address-cache baseline merges MSHRs and exploits block locality
	// aggressively, so the measured reduction is smaller; see
	// EXPERIMENTS.md for the per-workload numbers.
	if m["mem_reduction_geomean"] < 1.1 {
		t.Errorf("memory-access reduction %v below band", m["mem_reduction_geomean"])
	}
}

func TestFig15Shape(t *testing.T) {
	out := Fig15(sweep(t))
	if out.Metrics["addr_overhead_max"] <= 0.10 {
		t.Errorf("address-cache power overhead too small: %+v", out.Metrics)
	}
	// The time-independent invariant: X-Cache never costs more energy.
	if out.Metrics["addr_energy_overhead_min"] <= 0 {
		t.Errorf("some workload spent more energy on X-Cache than on the address cache: %+v", out.Metrics)
	}
}

func TestFig16Shape(t *testing.T) {
	out := Fig16(sweep(t))
	m := out.Metrics
	// Paper bands: data 66-89%, tags 1.5-6.6%, routine RAM <4.2%. Our
	// miss rates are higher than the paper's TPC-H runs (see
	// EXPERIMENTS.md), which shifts energy from the data port to tag
	// maintenance; these envelopes catch regressions in the same shape.
	if m["data_share_min"] < 0.40 {
		t.Errorf("data RAM share %v implausibly low", m["data_share_min"])
	}
	if m["tag_share_max"] > 0.40 {
		t.Errorf("tag share %v too high", m["tag_share_max"])
	}
	if m["routine_ram_share_max"] > 0.13 {
		t.Errorf("routine RAM share %v too high", m["routine_ram_share_max"])
	}
}

func TestFig7Shape(t *testing.T) {
	out, err := Fig7(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics["max_thread_over_coroutine"] < 10 {
		t.Errorf("thread/coroutine occupancy ratio %v too small", out.Metrics)
	}
}

func TestFig17Shape(t *testing.T) {
	out, err := Fig17(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m["hit_rate_spread"] <= 0 {
		t.Errorf("capacity sweep did not move hit rate: %+v", m)
	}
	// Larger caches help X-Cache at least as much as they help Widx.
	if m["xcache_gain_largest_cache"] < 1.0 {
		t.Errorf("bigger cache slowed X-Cache: %+v", m)
	}
}

func TestFig18Shape(t *testing.T) {
	out, err := Fig18(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m["graphpulse_gain"] < 1.0 || m["widx_gain"] < 0.9 {
		t.Errorf("parallelism sweep regressed: %+v", m)
	}
	// Paper: GraphPulse benefits from parallelism far more than Widx.
	if m["graphpulse_gain"] < m["widx_gain"] {
		t.Errorf("GraphPulse gain %v below Widx gain %v", m["graphpulse_gain"], m["widx_gain"])
	}
}

func TestExtensionBTree(t *testing.T) {
	out, err := ExtensionBTree(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if out.Metrics["btree_speedup"] <= 1.0 {
		t.Errorf("MXA B-tree did not beat the address baseline: %+v", out.Metrics)
	}
}

func TestStaticTables(t *testing.T) {
	for _, out := range []*Out{Table1(), Table2(), Table3(), Table4(), Fig19(), Fig20()} {
		s := out.Table.String()
		if len(s) < 50 {
			t.Errorf("%s: table suspiciously small:\n%s", out.ID, s)
		}
	}
	if !strings.Contains(Table3().Table.String(), "131072") {
		t.Error("Table 3 lost the GraphPulse geometry")
	}
	if Fig19().Metrics["ref_les"] != 6985 {
		t.Errorf("Fig 19 reference LEs drifted: %v", Fig19().Metrics)
	}
}

func TestSweepRejectsBrokenRuns(t *testing.T) {
	r := dsa.Result{DSA: "X", Workload: "w", Kind: dsa.KindXCache, Checked: false}
	sw := &Sweep{}
	// Emulate the add-path contract: unchecked results must not enter.
	if r.Checked {
		sw.Results = append(sw.Results, r)
	}
	if len(sw.Results) != 0 {
		t.Fatal("unchecked result admitted")
	}
}

func TestAblationProgrammability(t *testing.T) {
	out, err := AblationProgrammability(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	// Paper: no performance loss vs hardwired; alloc-heavy GraphPulse is
	// our worst case at ~1.4x (see EXPERIMENTS.md).
	if m["worst_slowdown"] > 1.6 {
		t.Errorf("programmability slowdown %v too high", m["worst_slowdown"])
	}
	// Paper: routine RAM <7% of energy.
	if m["worst_routine_ram_share"] > 0.13 {
		t.Errorf("routine RAM share %v too high", m["worst_routine_ram_share"])
	}
}

func TestAblationDesignChoices(t *testing.T) {
	out, err := AblationDesignChoices(testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	m := out.Metrics
	if m["dasx_preload_gain"] < 1.0 {
		t.Errorf("preload hurt DASX: %+v", m)
	}
	if m["thread_occupancy_ratio"] < 10 {
		t.Errorf("thread occupancy ratio %v too small", m)
	}
	if m["thread_slowdown"] < 1.0 {
		t.Errorf("blocking threads should not be faster: %+v", m)
	}
}
