package exp

import (
	"fmt"

	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
	"xcache/internal/stats"
)

// Fig4 regenerates "Load-to-use latency: Address Tags vs. Meta-tags" —
// the per-access latency of the address-tagged design (which must walk
// even when data is resident) against X-Cache's meta-tag path.
func Fig4(sw *Sweep) *Out {
	t := stats.NewTable("Fig 4 — Load-to-use latency (cycles)",
		"DSA", "Workload", "Meta-tag (X-Cache)", "Meta-tag hit", "p50", "p99", "Address-tag", "Improvement")
	xs, as := sw.Pairs(dsa.KindAddr)
	m := map[string]float64{}
	var ratios []float64
	for i := range xs {
		x, a := xs[i], as[i]
		if x.AvgLoadToUse == 0 || a.AvgLoadToUse == 0 {
			continue
		}
		imp := a.AvgLoadToUse / x.AvgLoadToUse
		ratios = append(ratios, imp)
		t.Add(x.DSA, x.Workload, stats.F1(x.AvgLoadToUse), stats.F1(x.HitLoadToUse),
			stats.I(x.L2UP50), stats.I(x.L2UP99),
			stats.F1(a.AvgLoadToUse), stats.F2(imp)+"x")
	}
	m["l2u_improvement_geomean"] = geomean(ratios)
	notes := []string{"Paper: meta-tags notably improve load-to-use; Widx hits are ~10x lower than the hashing+walking path."}
	notes = append(notes, sw.FailureNotes()...)
	return &Out{ID: "fig4", Table: t, Metrics: m, Notes: notes}
}

// Fig7 regenerates the occupancy comparison (coroutines vs threads) as
// the fraction of data off-chip grows. Occupancy is Σ active-reg ×
// size-bytes × lifetime-cycles, the paper's metric.
func Fig7(r *runner.Runner, scale int) (*Out, error) {
	t := stats.NewTable("Fig 7 — Controller occupancy (byte-cycles), coroutine vs thread",
		"CacheDiv", "OffChipFrac", "Coroutine", "Thread", "Ratio")
	p := hashidx.TPCH()[2]
	divs := []int{2, 8, 32, 128}
	var specs []runner.Spec
	for _, div := range divs {
		for _, mode := range []ctrl.ExecMode{ctrl.ModeCoroutine, ctrl.ModeThread} {
			specs = append(specs, runner.Spec{
				DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name,
				Scale: scale, DivMul: div, Mode: mode,
			})
		}
	}
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	m := map[string]float64{}
	var worstRatio float64
	for i, div := range divs {
		rc, rt := res[2*i], res[2*i+1]
		ratio := float64(rt.Occupancy) / float64(rc.Occupancy)
		if ratio > worstRatio {
			worstRatio = ratio
		}
		t.Add(fmt.Sprintf("%d", div), stats.F2(1-rc.HitRate),
			stats.I(rc.Occupancy), stats.I(rt.Occupancy), stats.F1(ratio)+"x")
	}
	m["max_thread_over_coroutine"] = worstRatio
	return &Out{ID: "fig7", Table: t, Metrics: m,
		Notes: []string{"Paper: threads show ~1000x more occupancy; occupancy grows with the off-chip fraction."}}, nil
}

// Fig14 regenerates the headline performance comparison: X-Cache vs the
// hardwired baseline DSA and vs an equally sized address-based cache with
// an ideal walker, plus the memory-access reduction.
func Fig14(sw *Sweep) *Out {
	t := stats.NewTable("Fig 14 — Speedup and memory accesses",
		"DSA", "Workload", "vs baseline DSA", "vs addr cache", "DRAM accs X", "DRAM accs addr", "Reduction")
	m := map[string]float64{}
	var vsAddr, vsBase, memRed []float64
	for _, x := range sw.Results {
		if x.Kind != dsa.KindXCache {
			continue
		}
		a, okA := sw.Get(x.DSA, x.Workload, dsa.KindAddr)
		b, okB := sw.Get(x.DSA, x.Workload, dsa.KindBaseline)
		row := []string{x.DSA, x.Workload, "-", "-", stats.I(x.DRAMAccesses), "-", "-"}
		if okB {
			s := x.Speedup(b)
			vsBase = append(vsBase, s)
			row[2] = stats.F2(s) + "x"
		}
		if okA {
			s := x.Speedup(a)
			vsAddr = append(vsAddr, s)
			row[3] = stats.F2(s) + "x"
			row[5] = stats.I(a.DRAMAccesses)
			red := float64(a.DRAMAccesses) / float64(x.DRAMAccesses)
			memRed = append(memRed, red)
			row[6] = stats.F2(red) + "x"
		}
		t.Add(row...)
	}
	// Partial sweeps annotate every failed cell in the table itself, so
	// a degraded run is visibly degraded rather than silently smaller.
	for _, f := range sw.Failed {
		t.Add(f.DSA, fmt.Sprintf("%s[%s]", f.Workload, f.Kind),
			"FAILED: "+f.Fail, "-", "-", "-", "-")
	}
	m["speedup_vs_addr_geomean"] = geomean(vsAddr)
	m["speedup_vs_baseline_geomean"] = geomean(vsBase)
	m["mem_reduction_geomean"] = geomean(memRed)
	notes := []string{
		"Paper: 1.7x average over address-based caches; up to 1.54x over Widx; memory accesses reduced 2-8x.",
	}
	notes = append(notes, sw.FailureNotes()...)
	return &Out{ID: "fig14", Table: t, Metrics: m, Notes: notes}
}

// Fig17 regenerates "X-Cache runtime vs Widx" for TPC-H-22 across the
// fraction of the index that fits on chip, runtimes normalized to the
// smallest cache (≈ all data in DRAM).
func Fig17(r *runner.Runner, scale int) (*Out, error) {
	t := stats.NewTable("Fig 17 — Runtime vs % on-chip (TPC-H-22, normalized to smallest cache)",
		"CacheDiv", "HitRate", "X-Cache", "Widx")
	p := hashidx.TPCH()[2]
	divs := []int{64, 16, 4, 1}
	var specs []runner.Spec
	for _, div := range divs {
		for _, k := range []dsa.Kind{dsa.KindXCache, dsa.KindBaseline} {
			specs = append(specs, runner.Spec{
				DSA: runner.DSAWidx, Kind: k, Workload: p.Name,
				Scale: scale, DivMul: div,
			})
		}
	}
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}
	var xCyc, bCyc []uint64
	var hit []float64
	for i := range divs {
		x, b := res[2*i], res[2*i+1]
		xCyc = append(xCyc, x.Cycles)
		bCyc = append(bCyc, b.Cycles)
		hit = append(hit, x.HitRate)
	}
	for i, div := range divs {
		t.Add(fmt.Sprintf("%d", div), stats.F2(hit[i]),
			stats.F2(float64(xCyc[i])/float64(xCyc[0])),
			stats.F2(float64(bCyc[i])/float64(bCyc[0])))
	}
	m := map[string]float64{
		"xcache_gain_largest_cache": float64(xCyc[0]) / float64(xCyc[len(xCyc)-1]),
		"widx_gain_largest_cache":   float64(bCyc[0]) / float64(bCyc[len(bCyc)-1]),
		"hit_rate_spread":           hit[len(hit)-1] - hit[0],
	}
	return &Out{ID: "fig17", Table: t, Metrics: m,
		Notes: []string{"Paper: as hit rate rises, X-Cache's meta-tag advantage over Widx grows."}}, nil
}

// Fig18 regenerates the #Active × #Exe design-space sweep for GraphPulse
// (p2p-08) and Widx (TPC-H-22), runtimes normalized to the smallest
// configuration of each DSA.
func Fig18(r *runner.Runner, scale int) (*Out, error) {
	t := stats.NewTable("Fig 18 — Sweeping #Active and #Exe (normalized runtime)",
		"DSA", "#Active", "#Exe", "Runtime")
	m := map[string]float64{}

	type point struct{ act, exe int }
	points := []point{{8, 2}, {16, 4}, {32, 8}, {64, 16}}

	p := hashidx.TPCH()[2]
	var specs []runner.Spec
	for _, pt := range points {
		specs = append(specs, runner.Spec{
			DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: p.Name,
			Scale: scale, NumActive: pt.act, NumExe: pt.exe,
		})
	}
	for _, pt := range points {
		specs = append(specs, runner.Spec{
			DSA: runner.DSAGraphPulse, Kind: dsa.KindXCache, Workload: "p2p-08",
			Scale: scale, NumActive: pt.act, NumExe: pt.exe,
		})
	}
	res, err := r.Run(specs)
	if err != nil {
		return nil, err
	}

	// Widx TPC-H-22.
	var widxCycles []uint64
	for i := range points {
		widxCycles = append(widxCycles, res[i].Cycles)
	}
	for i, pt := range points {
		t.Add("Widx", fmt.Sprintf("%d", pt.act), fmt.Sprintf("%d", pt.exe),
			stats.F2(float64(widxCycles[i])/float64(widxCycles[0])))
	}

	// GraphPulse p2p-08.
	var gpCycles []uint64
	for i := range points {
		gpCycles = append(gpCycles, res[len(points)+i].Cycles)
	}
	for i, pt := range points {
		t.Add("GraphPulse", fmt.Sprintf("%d", pt.act), fmt.Sprintf("%d", pt.exe),
			stats.F2(float64(gpCycles[i])/float64(gpCycles[0])))
	}

	m["widx_gain"] = float64(widxCycles[0]) / float64(widxCycles[len(widxCycles)-1])
	m["graphpulse_gain"] = float64(gpCycles[0]) / float64(gpCycles[len(gpCycles)-1])
	return &Out{ID: "fig18", Table: t, Metrics: m,
		Notes: []string{"Paper: GraphPulse benefits markedly from more parallelism (up to ~2x); Widx, DRAM-bound, gains ≤10% beyond its design point."}}, nil
}
