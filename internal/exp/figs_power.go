package exp

import (
	"xcache/internal/dsa"
	"xcache/internal/stats"
)

// Fig15 regenerates the total-power comparison: the address-based cache
// against X-Cache on each workload. Power is on-chip energy divided by
// runtime (pJ/cycle ≡ mW at the paper's 1 GHz).
func Fig15(sw *Sweep) *Out {
	t := stats.NewTable("Fig 15 — Total on-chip power and energy, X-Cache vs address cache",
		"DSA", "Workload", "X pJ/cyc", "Addr pJ/cyc", "Power overhead", "Energy overhead")
	xs, as := sw.Pairs(dsa.KindAddr)
	m := map[string]float64{}
	var pow, en []float64
	for i := range xs {
		x, a := xs[i], as[i]
		px := x.Energy.OnChip() / float64(x.Cycles)
		pa := a.Energy.OnChip() / float64(a.Cycles)
		po := pa/px - 1
		eo := a.Energy.OnChip()/x.Energy.OnChip() - 1
		pow = append(pow, po)
		en = append(en, eo)
		t.Add(x.DSA, x.Workload, stats.F2(px), stats.F2(pa), stats.Pct(po), stats.Pct(eo))
	}
	minmax := func(v []float64) (float64, float64) {
		if len(v) == 0 {
			// A fully degraded partial sweep has no surviving pair; 0s
			// keep the metrics JSON-marshalable.
			return 0, 0
		}
		lo, hi := v[0], v[0]
		for _, x := range v {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return lo, hi
	}
	m["addr_overhead_min"], m["addr_overhead_max"] = minmax(pow)
	m["addr_energy_overhead_min"], m["addr_energy_overhead_max"] = minmax(en)
	notes := []string{
		"Paper: address-based caches consume 26-79% more power than X-Cache.",
		"Where X-Cache finishes much faster, its power (energy/time) can exceed the slower address cache's; the energy overhead column is time-independent and is positive for every workload.",
	}
	notes = append(notes, sw.FailureNotes()...)
	return &Out{ID: "fig15", Table: t, Metrics: m, Notes: notes}
}

// Fig16 regenerates the X-Cache power breakdown: data RAM dominant, tags
// and the routine RAM small, controller ≈24%.
func Fig16(sw *Sweep) *Out {
	t := stats.NewTable("Fig 16 — X-Cache power breakdown",
		"DSA", "Workload", "Data RAM", "Meta-tags", "Routine RAM", "Controller (total)")
	m := map[string]float64{}
	var tagMax, dataMin, ctrlSum, rtnMax float64
	dataMin = 1
	n := 0.0
	for _, x := range sw.Results {
		if x.Kind != dsa.KindXCache {
			continue
		}
		total := x.Energy.OnChip()
		data := x.Energy.DataRAM / total
		tag := x.Energy.TagRAM / total
		rtn := x.Energy.RoutineRAM / total
		ctl := x.Energy.Controller() / total
		if tag > tagMax {
			tagMax = tag
		}
		if rtn > rtnMax {
			rtnMax = rtn
		}
		if data < dataMin {
			dataMin = data
		}
		ctrlSum += ctl
		n++
		t.Add(x.DSA, x.Workload, stats.Pct(data), stats.Pct(tag), stats.Pct(rtn), stats.Pct(ctl))
	}
	m["tag_share_max"] = tagMax
	m["routine_ram_share_max"] = rtnMax
	m["data_share_min"] = dataMin
	if n > 0 {
		m["controller_share_avg"] = ctrlSum / n
	} else {
		m["controller_share_avg"] = 0
	}
	notes := []string{
		"Paper: 66-89% of energy on data; tags 1.5-6.6%; routine RAM <4.2%; controller ≈24%.",
	}
	notes = append(notes, sw.FailureNotes()...)
	return &Out{ID: "fig16", Table: t, Metrics: m, Notes: notes}
}
