package exp

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"xcache/internal/exp/runner"
	"xcache/internal/stats"
)

var update = flag.Bool("update", false, "rewrite testdata/golden snapshots")

// goldenScale pins the snapshots at the default xcache-bench scale, so
// the golden files are simultaneously the regression reference for every
// headline number and the byte-identity witness for the parallel runner.
const goldenScale = 25

var (
	goldenOnce   sync.Once
	goldenRunner *runner.Runner
	goldenSw     *Sweep
	goldenErr    error
)

// goldenSweep runs the shared scale-25 sweep once, on an 8-worker
// runner — the golden files it feeds must match serial output exactly
// (TestSweepDeterminism pins that equivalence).
func goldenSweep(t *testing.T) (*runner.Runner, *Sweep) {
	t.Helper()
	goldenOnce.Do(func() {
		goldenRunner = runner.New(8)
		goldenSw, goldenErr = RunSweep(goldenRunner, goldenScale)
	})
	if goldenErr != nil {
		t.Fatal(goldenErr)
	}
	return goldenRunner, goldenSw
}

// goldenOuts regenerates every table and figure at goldenScale, in the
// xcache-bench "all" order.
func goldenOuts(t *testing.T) []*Out {
	t.Helper()
	r, sw := goldenSweep(t)
	outs := []*Out{Table1(), Table2(), Table3(), Table4(), Fig4(sw)}
	for _, f := range []func(*runner.Runner, int) (*Out, error){
		Fig7,
		func(r *runner.Runner, scale int) (*Out, error) { return Fig14(sw), nil },
		func(r *runner.Runner, scale int) (*Out, error) { return Fig15(sw), nil },
		func(r *runner.Runner, scale int) (*Out, error) { return Fig16(sw), nil },
		Fig17,
		Fig18,
		func(r *runner.Runner, scale int) (*Out, error) { return Fig19(), nil },
		func(r *runner.Runner, scale int) (*Out, error) { return Fig20(), nil },
		ExtensionBTree,
		AblationProgrammability,
		AblationDesignChoices,
		ApproxCacheDiv,
		ApproxGeometry,
		ApproxError,
	} {
		o, err := f(r, goldenScale)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, o)
	}
	return outs
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".json")
}

func marshalOut(t *testing.T, o *Out) []byte {
	t.Helper()
	b, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestGoldenOutputs fails on any metric or table-cell drift against the
// checked-in snapshots and prints a per-cell diff. Regenerate with
//
//	go test ./internal/exp -run TestGoldenOutputs -update
func TestGoldenOutputs(t *testing.T) {
	outs := goldenOuts(t)
	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, o := range outs {
		if seen[o.ID] {
			t.Fatalf("duplicate output id %q", o.ID)
		}
		seen[o.ID] = true
		got := marshalOut(t, o)
		path := goldenPath(o.ID)
		if *update {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: missing golden snapshot (run with -update): %v", o.ID, err)
			continue
		}
		if bytes.Equal(got, want) {
			continue
		}
		// Decode the snapshot and report exactly which cells and metrics
		// drifted.
		var ref Out
		if err := json.Unmarshal(want, &ref); err != nil {
			t.Errorf("%s: corrupt golden snapshot: %v", o.ID, err)
			continue
		}
		var diffs []string
		if o.Table != nil && ref.Table != nil {
			diffs = append(diffs, stats.Diff(o.Table, ref.Table)...)
		}
		for k, v := range o.Metrics {
			if rv, ok := ref.Metrics[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("metric %s: got %v, absent in snapshot", k, v))
			} else if v != rv {
				diffs = append(diffs, fmt.Sprintf("metric %s: got %v want %v", k, v, rv))
			}
		}
		for k, rv := range ref.Metrics {
			if _, ok := o.Metrics[k]; !ok {
				diffs = append(diffs, fmt.Sprintf("metric %s: want %v, absent in output", k, rv))
			}
		}
		if len(diffs) == 0 {
			diffs = append(diffs, "notes or encoding drifted (tables and metrics match)")
		}
		t.Errorf("%s: output drifted from %s:", o.ID, path)
		for _, d := range diffs {
			t.Errorf("  %s", d)
		}
	}
	if !*update {
		// Every snapshot on disk must correspond to a live output: a
		// renamed figure must not leave a stale golden behind.
		entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			id := e.Name()
			if filepath.Ext(id) != ".json" {
				continue
			}
			id = id[:len(id)-len(".json")]
			if !seen[id] {
				t.Errorf("stale golden snapshot %s: no output with id %q", e.Name(), id)
			}
		}
	}
}
