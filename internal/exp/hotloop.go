package exp

import (
	"fmt"
	"time"

	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
	"xcache/internal/stats"
)

// hotloopSpec is an ALU-dense spin: ~10 actions per loop iteration, 96
// iterations per request, no DRAM traffic — so nearly every simulated
// cycle is spent inside the controller's microcode step loop, which is
// exactly the code the pre-decoded executor accelerates.
func hotloopSpec() program.Spec {
	return program.Spec{
		Name: "hotloop",
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				li r4, 96
				li r5, 3
				li r6, 7
			loop:
				add r6, r6, r5
				xor r7, r6, r4
				shl r8, r7, 3
				shr r9, r8, 2
				and r10, r9, r6
				or r11, r10, r5
				mul r12, r11, r5
				addi r6, r12, 13
				dec r4
				bnz r4, loop
				enqresp r6, OK
				abort
			`},
		},
	}
}

// hotloopRun executes reqs spins on the given executor backend and
// returns the action count (deterministic) and the wall time (not).
func hotloopRun(exec ctrl.ExecPath, reqs int) (actions uint64, wall time.Duration, err error) {
	prog, err := hotloopSpec().Compile()
	if err != nil {
		return 0, 0, err
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	tags := metatag.New(metatag.Config{Sets: 64, Ways: 4, KeyWords: 1}, meter)
	data := dataram.New(dataram.Config{Sectors: 64, WordsPerSector: 4}, meter)
	c, err := ctrl.New(k, ctrl.Config{NumActive: 8, NumExe: 4, Exec: exec},
		prog, tags, data, d.Req, d.Resp, meter)
	if err != nil {
		return 0, 0, err
	}
	sent, done := 0, 0
	k.Add(sim.ComponentFunc(func(cy sim.Cycle) {
		for {
			if _, ok := c.RespQ.Pop(); !ok {
				break
			}
			done++
		}
		for sent < reqs {
			r := ctrl.MetaReq{ID: uint64(sent + 1), Op: ctrl.MetaLoad,
				Key: metatag.Key{uint64(sent), 0}, Issued: cy}
			if !c.ReqQ.Push(r) {
				return
			}
			sent++
		}
	}))
	start := time.Now()
	if !k.RunUntil(func() bool { return done >= reqs }, 50_000_000) {
		return 0, 0, fmt.Errorf("hotloop: %d/%d responses after cycle budget", done, reqs)
	}
	wall = time.Since(start)
	if tr := c.Trap(); tr != nil {
		return 0, 0, fmt.Errorf("hotloop trapped: %w", tr)
	}
	return c.Stats().Actions, wall, nil
}

// Hotloop measures the controller's microcode step loop on the selected
// executor backends ("interp", "fast" or "both") and reports
// ns-per-action plus, when both run, the fast-path speedup. The action
// counts are deterministic (and byte-stable in baselines); the
// nanosecond metrics are wall-clock and machine-dependent — baseline
// comparisons must use a relative tolerance, which is what the
// `make bench-diff` gate does with the speedup ratio.
func Hotloop(which string, reqs int) (*Out, error) {
	if reqs <= 0 {
		reqs = 512
	}
	runInterp := which == "both" || which == "interp"
	runFast := which == "both" || which == "fast"
	if !runInterp && !runFast {
		return nil, fmt.Errorf("hotloop: unknown executor selection %q (want both|interp|fast)", which)
	}
	out := &Out{
		ID:      "hotloop",
		Table:   stats.NewTable("Controller hot-loop microbenchmark", "executor", "ns/action", "Mactions/s"),
		Metrics: map[string]float64{},
		Notes: []string{
			"wall-clock microbenchmark: ns/action and speedup are machine-dependent; action counts are deterministic",
		},
	}
	measure := func(name string, exec ctrl.ExecPath) (float64, error) {
		if _, _, err := hotloopRun(exec, reqs/8); err != nil { // warmup
			return 0, err
		}
		actions, wall, err := hotloopRun(exec, reqs)
		if err != nil {
			return 0, err
		}
		ns := float64(wall.Nanoseconds()) / float64(actions)
		out.Metrics[name+"_ns_per_action"] = ns
		out.Metrics["actions"] = float64(actions)
		out.Table.Add(name, fmt.Sprintf("%.1f", ns), fmt.Sprintf("%.1f", 1e3/ns))
		return ns, nil
	}
	var nsInterp, nsFast float64
	var err error
	if runInterp {
		if nsInterp, err = measure("interp", ctrl.ExecInterp); err != nil {
			return nil, err
		}
	}
	if runFast {
		if nsFast, err = measure("fast", ctrl.ExecFast); err != nil {
			return nil, err
		}
	}
	if runInterp && runFast {
		out.Metrics["speedup_x"] = nsInterp / nsFast
		out.Notes = append(out.Notes,
			fmt.Sprintf("pre-decoded fast path is %.2fx the interpreter on this host", nsInterp/nsFast))
	}
	return out, nil
}
