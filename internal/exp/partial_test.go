package exp

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"xcache/internal/dsa"
	"xcache/internal/exp/runner"
)

// TestPartialSweepCleanMatchesStrict pins the graceful-degradation
// contract's happy path: when nothing fails, RunSweepPartial is
// byte-identical to the strict RunSweep (same results, empty Failed, no
// annotation rows or notes), so the golden snapshots cover both paths.
func TestPartialSweepCleanMatchesStrict(t *testing.T) {
	strict := sweep(t)
	partial, err := RunSweepPartial(context.Background(), testRunner, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.Failed) != 0 {
		t.Fatalf("clean partial sweep recorded failures: %+v", partial.Failed)
	}
	a, err := json.Marshal(strict)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(partial)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("clean RunSweepPartial is not byte-identical to RunSweep")
	}
	if notes := partial.FailureNotes(); len(notes) != 0 {
		t.Fatalf("clean sweep produced failure notes: %v", notes)
	}
}

// TestPartialSweepAllCellsFailed: when not a single cell survives (here:
// the context is already canceled), the partial sweep errors instead of
// returning an empty, plausible-looking result set.
func TestPartialSweepAllCellsFailed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A fresh runner: no warm cache entries, so every cell fails fast
	// with FailCanceled and no simulation actually runs.
	_, err := RunSweepPartial(ctx, runner.New(1), testScale)
	if err == nil {
		t.Fatal("fully failed sweep returned no error")
	}
	if !strings.Contains(err.Error(), "all") || !strings.Contains(err.Error(), "canceled") {
		t.Errorf("error does not describe the total failure: %v", err)
	}
}

// degradedSweep clones the clean test sweep and knocks one XCache cell
// out, the way RunSweepPartial would under a wedge.
func degradedSweep(t *testing.T) (*Sweep, dsa.Result) {
	t.Helper()
	clean := sweep(t)
	sw := &Sweep{Scale: clean.Scale}
	var dropped dsa.Result
	for _, r := range clean.Results {
		if dropped.DSA == "" && r.Kind == dsa.KindXCache {
			dropped = r
			continue
		}
		sw.Results = append(sw.Results, r)
	}
	sw.Failed = append(sw.Failed, FailedCell{
		DSA: dropped.DSA, Workload: dropped.Workload, Kind: dropped.Kind,
		Fail: "stall", Class: "transient", Err: "scripted wedge",
	})
	return sw, dropped
}

// TestFiguresAnnotateFailedCells: a degraded sweep must be visibly
// degraded — the failed cell appears as a FAILED row in Fig 14 and as a
// failure note on every sweep-derived figure — and every figure must
// still render and produce JSON-marshalable metrics.
func TestFiguresAnnotateFailedCells(t *testing.T) {
	sw, dropped := degradedSweep(t)

	f14 := Fig14(sw)
	if !strings.Contains(f14.Table.String(), "FAILED: stall") {
		t.Error("Fig 14 table does not annotate the failed cell")
	}
	for _, out := range []*Out{Fig4(sw), f14, Fig15(sw), Fig16(sw)} {
		found := false
		for _, n := range out.Notes {
			if strings.Contains(n, "FAILED") && strings.Contains(n, dropped.DSA) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: failure note missing from %v", out.ID, out.Notes)
		}
		if _, err := json.Marshal(out.Metrics); err != nil {
			t.Errorf("%s: metrics not marshalable: %v", out.ID, err)
		}
	}
}

// TestFiguresSurviveFullyDegradedSweep: even a sweep where every cell
// failed must render (empty tables, zeroed metrics) rather than panic or
// emit NaNs — xcache-bench -partial leans on this.
func TestFiguresSurviveFullyDegradedSweep(t *testing.T) {
	sw := &Sweep{Scale: testScale}
	for _, r := range sweep(t).Results {
		sw.Failed = append(sw.Failed, FailedCell{
			DSA: r.DSA, Workload: r.Workload, Kind: r.Kind,
			Fail: "deadline", Class: "transient", Err: "scripted",
		})
	}
	for _, out := range []*Out{Fig4(sw), Fig14(sw), Fig15(sw), Fig16(sw)} {
		b, err := json.Marshal(out.Metrics)
		if err != nil {
			t.Errorf("%s: metrics not marshalable under total degradation: %v", out.ID, err)
		}
		if strings.Contains(string(b), "NaN") {
			t.Errorf("%s: NaN leaked into metrics: %s", out.ID, b)
		}
		if len(out.Notes) < len(sw.Failed) {
			t.Errorf("%s: only %d notes for %d failed cells", out.ID, len(out.Notes), len(sw.Failed))
		}
	}
}
