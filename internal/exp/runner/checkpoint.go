package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"xcache/internal/dsa"
)

// Checkpoint is the crash-safe on-disk journal of completed runs: one
// JSON file per spec, named by the spec's content hash, written
// atomically (temp file + rename). Because a result is a pure function
// of its spec, loading a checkpointed result is indistinguishable from
// re-executing it — which is why a sweep killed mid-run and resumed from
// the same directory produces byte-identical merged output to an
// uninterrupted run. Failed runs are never journaled.
type Checkpoint struct {
	dir string
}

// ckptFile is the on-disk record. Key is stored alongside the result so
// a load can verify the file really belongs to the requesting spec (a
// format change or hand-edited file is ignored, not trusted).
type ckptFile struct {
	Key    string
	Result dsa.Result
}

// OpenCheckpoint opens (creating if needed) a checkpoint directory.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty checkpoint directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
	}
	return &Checkpoint{dir: dir}, nil
}

// Dir returns the journal directory.
func (c *Checkpoint) Dir() string { return c.dir }

func (c *Checkpoint) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

// load returns the journaled result for s, if a valid record exists. A
// missing, unreadable, corrupt, or key-mismatched file is treated as a
// cache miss — resume must degrade to re-execution, never to an abort.
func (c *Checkpoint) load(s Spec) (dsa.Result, bool) {
	if c == nil {
		return dsa.Result{}, false
	}
	b, err := os.ReadFile(c.path(s.Hash()))
	if err != nil {
		return dsa.Result{}, false
	}
	var f ckptFile
	if err := json.Unmarshal(b, &f); err != nil || f.Key != s.Key() {
		return dsa.Result{}, false
	}
	return f.Result, true
}

// save journals a completed result atomically: written to a temp file in
// the same directory, synced, then renamed over the final name, so a
// crash mid-write leaves either the old state or the new — never a torn
// record.
func (c *Checkpoint) save(s Spec, r dsa.Result) error {
	if c == nil {
		return nil
	}
	b, err := json.MarshalIndent(ckptFile{Key: s.Key(), Result: r}, "", "  ")
	if err != nil {
		return err
	}
	hash := s.Hash()
	tmp, err := os.CreateTemp(c.dir, hash+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), c.path(hash))
}
