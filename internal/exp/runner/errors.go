package runner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xcache/internal/check"
	"xcache/internal/ctrl"
)

// Class splits the failure taxonomy into the two retry policies: a
// transient failure may succeed on re-execution (host-dependent causes —
// wall-deadline overruns, recovered panics — or injected-fault wedges the
// soak suite deliberately provokes), a permanent one is a pure function
// of the spec and will fail identically forever (malformed spec,
// deterministic invariant violation).
type Class int

// The two retry classes.
const (
	Permanent Class = iota
	Transient
)

// String names the class for logs and JSON output.
func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// FailKind is the runner-level failure taxonomy. The first four lift
// check.FailureKind out of a supervised simulation; the rest are failure
// modes of the sweep engine itself.
type FailKind int

// Every way a spec can fail.
const (
	FailUnknown   FailKind = iota
	FailStall              // watchdog: no forward progress (check.FailStall)
	FailInvariant          // invariant checker violation (check.FailInvariant)
	FailOverflow           // recovered queue-overflow panic (check.FailOverflow)
	FailBudget             // simulation cycle budget exhausted (check.FailBudget)
	FailPanic              // per-worker panic recovered by the pool
	FailDeadline           // per-spec wall deadline exceeded
	FailCanceled           // context canceled before/while the spec ran
	FailSpec               // malformed spec: unknown DSA, workload, or kind
	FailTrap               // structural microcode trap (check.FailTrap / ctrl.Trap)
)

// String names the kind for logs, stats and JSON output.
func (k FailKind) String() string {
	switch k {
	case FailStall:
		return "stall"
	case FailInvariant:
		return "invariant"
	case FailOverflow:
		return "overflow"
	case FailBudget:
		return "budget"
	case FailPanic:
		return "panic"
	case FailDeadline:
		return "deadline"
	case FailCanceled:
		return "canceled"
	case FailSpec:
		return "spec"
	case FailTrap:
		return "trap"
	}
	return fmt.Sprintf("unknown(%d)", int(k))
}

// RunError is the structured error every failing spec resolves to: the
// spec's canonical key, the taxonomy kind and retry class, how many
// executions were attempted (attempts > 1 means transient retries were
// consumed), the StallReport when the simulation aborted under
// supervision, and the underlying cause.
type RunError struct {
	Key      string
	Kind     FailKind
	Class    Class
	Attempts int
	Report   *check.StallReport // non-nil for supervised aborts
	Err      error
}

// Error renders kind/class/attempts plus the cause; the spec key is left
// to the caller (Runner.Run already prefixes it).
func (e *RunError) Error() string {
	return fmt.Sprintf("%s (%s, %d attempt(s)): %v", e.Kind, e.Class, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *RunError) Unwrap() error { return e.Err }

// Transient reports whether the bounded-retry policy applies.
func (e *RunError) Transient() bool { return e.Class == Transient }

// panicError is a recovered per-worker panic, isolated so one bad spec
// cannot take down the whole sweep.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string {
	return fmt.Sprintf("recovered panic: %v\n%s", p.val, p.stack)
}

// deadlineError marks a spec that overran its per-spec wall deadline.
// The simulation goroutine keeps running detached (a cycle-level kernel
// cannot be preempted) but the worker slot is released, so a runaway run
// degrades to a typed error instead of hanging the pool.
type deadlineError struct {
	limit time.Duration
}

func (d *deadlineError) Error() string {
	return fmt.Sprintf("spec wall deadline (%s) exceeded; simulation abandoned", d.limit)
}

// classify folds an execution error into the taxonomy.
//
// Supervised aborts keep their check kind. They are transient when the
// spec injects faults — the wedge is provoked (an injected-fault fill
// timeout surfaces as a stall or a fill-retry-exhaustion invariant), so
// it gets the bounded-retry treatment and must never poison the memo
// table — and permanent otherwise: the simulator is deterministic, so an
// unprovoked stall, invariant violation, overflow or budget exhaustion
// is a kernel bug that reproduces identically on every retry. Deadlines
// and recovered panics are transient — both can be host-dependent.
// Cancellation and malformed specs are permanent (never retried), but
// every failure is evicted, so a resumed sweep re-executes them.
func classify(s Spec, err error, attempts int) *RunError {
	re := &RunError{Key: s.Key(), Attempts: attempts, Err: err, Class: Permanent}

	var cf *check.Failure
	var trap *ctrl.Trap
	switch {
	case errors.As(err, &cf):
		re.Report = cf.Report
		switch cf.Kind {
		case check.FailStall:
			re.Kind = FailStall
		case check.FailInvariant:
			re.Kind = FailInvariant
		case check.FailOverflow:
			re.Kind = FailOverflow
		case check.FailBudget:
			re.Kind = FailBudget
		case check.FailTrap:
			re.Kind = FailTrap
		}
		// A trap is a pure function of the loaded program — injected DRAM
		// and queue faults never corrupt microcode — so unlike the other
		// supervised kinds it is permanent even under fault injection.
		if s.Faults.Any() && cf.Kind != check.FailTrap {
			re.Class = Transient
		}
	case errors.As(err, &trap):
		// An unsupervised run surfaced the controller's trap directly.
		re.Kind = FailTrap
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		re.Kind = FailCanceled
	default:
		var pe *panicError
		var de *deadlineError
		switch {
		case errors.As(err, &pe):
			re.Kind = FailPanic
			re.Class = Transient
		case errors.As(err, &de):
			re.Kind = FailDeadline
			re.Class = Transient
		default:
			re.Kind = FailSpec
		}
	}
	return re
}

// Retry bounds the deterministic backoff policy for transient failures.
type Retry struct {
	// Max is the number of additional attempts after the first (0
	// disables retry). Only transient failures consume attempts.
	Max int
	// Backoff is the sleep before the first retry; attempt k sleeps
	// Backoff << (k-1), capped at 30s. Backoff affects wall time only —
	// results are a pure function of the spec — so any value preserves
	// the determinism contract. 0 retries immediately.
	Backoff time.Duration
}

// delay returns the deterministic backoff before retry attempt k (1-based).
func (r Retry) delay(k int) time.Duration {
	if r.Backoff <= 0 {
		return 0
	}
	const cap = 30 * time.Second
	d := r.Backoff
	for i := 1; i < k; i++ {
		d <<= 1
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}
