package runner

import (
	"testing"

	"xcache/internal/ctrl"
	"xcache/internal/dsa"
)

// TestExecPathEquivalence runs every DSA's real microcode program under
// both executor backends — the reference interpreter and the pre-decoded
// fast path — and requires bit-identical Results: cycles, DRAM traffic,
// hit rates, latency percentiles, occupancy, the full energy breakdown
// and the functional check. This is the end-to-end counterpart of the
// ctrl package's per-cycle lockstep harness.
func TestExecPathEquivalence(t *testing.T) {
	cases := []Spec{
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-19", Scale: 100},
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 100},
		{DSA: DSADASX, Kind: dsa.KindXCache, Workload: "TPC-H-20", Scale: 100},
		{DSA: DSASpArch, Kind: dsa.KindXCache, Workload: "p2p-31", Scale: 100},
		{DSA: DSAGamma, Kind: dsa.KindXCache, Workload: "p2p-31", Scale: 100},
		{DSA: DSAGraphPulse, Kind: dsa.KindXCache, Workload: "p2p-08", Scale: 100},
		{DSA: DSABTreeIdx, Kind: dsa.KindXCache, Workload: "zipf", Scale: 100},
		// Controller variants share the executor machinery; pin them too.
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 100, Mode: ctrl.ModeThread},
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 100, Hardwired: true},
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 100, Check: true},
	}
	for _, s := range cases {
		s := s
		name := s.DSA + "/" + s.Workload
		if s.Mode != 0 {
			name += "/thread"
		}
		if s.Hardwired {
			name += "/hardwired"
		}
		if s.Check {
			name += "/checked"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			fast, interp := s, s
			fast.Exec = ctrl.ExecFast
			interp.Exec = ctrl.ExecInterp
			if fast.Key() == interp.Key() {
				t.Fatal("executor choice missing from the canonical spec key")
			}
			rf, err := fast.Execute()
			if err != nil {
				t.Fatalf("fast path: %v", err)
			}
			ri, err := interp.Execute()
			if err != nil {
				t.Fatalf("interpreter: %v", err)
			}
			if rf != ri {
				t.Fatalf("executor results diverged\nfast:   %+v\ninterp: %+v", rf, ri)
			}
		})
	}
}
