package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"xcache/internal/check"
	"xcache/internal/dsa"
)

// fakeResult fabricates a plausible successful result for seam-scripted
// executions, keyed so different specs stay distinguishable.
func fakeResult(s Spec, cycles uint64) dsa.Result {
	return dsa.Result{DSA: s.DSA, Workload: s.Workload, Kind: s.Kind, Cycles: cycles, Checked: true}
}

// faultedSpec is a spec whose injector is armed, so supervised aborts
// classify as transient.
func faultedSpec() Spec {
	s := tinySpec()
	s.Check = true
	s.Seed = 1
	s.Faults = check.FaultConfig{DropResp: 2e-2}
	return s
}

func stallFailure() error {
	rep := &check.StallReport{Kind: check.FailStall, Cycle: 1234, Reason: "no forward progress (test)"}
	return fmt.Errorf("scripted wedge: %w", rep.Failure())
}

func TestClassifyTaxonomy(t *testing.T) {
	faulted, clean := faultedSpec(), tinySpec()
	rep := func(k check.FailureKind) error {
		r := &check.StallReport{Kind: k, Cycle: 7}
		return fmt.Errorf("wrapped: %w", r.Failure())
	}
	cases := []struct {
		name  string
		spec  Spec
		err   error
		kind  FailKind
		class Class
	}{
		{"faulted stall", faulted, rep(check.FailStall), FailStall, Transient},
		{"faulted budget", faulted, rep(check.FailBudget), FailBudget, Transient},
		{"faulted invariant", faulted, rep(check.FailInvariant), FailInvariant, Transient},
		{"faulted overflow", faulted, rep(check.FailOverflow), FailOverflow, Transient},
		{"clean stall", clean, rep(check.FailStall), FailStall, Permanent},
		{"clean invariant", clean, rep(check.FailInvariant), FailInvariant, Permanent},
		{"clean budget", clean, rep(check.FailBudget), FailBudget, Permanent},
		{"canceled", clean, context.Canceled, FailCanceled, Permanent},
		{"ctx deadline", clean, context.DeadlineExceeded, FailCanceled, Permanent},
		{"panic", clean, &panicError{val: "boom"}, FailPanic, Transient},
		{"wall deadline", clean, &deadlineError{limit: time.Second}, FailDeadline, Transient},
		{"malformed spec", clean, errors.New("unknown DSA"), FailSpec, Permanent},
	}
	for _, c := range cases {
		re := classify(c.spec, c.err, 3)
		if re.Kind != c.kind || re.Class != c.class {
			t.Errorf("%s: classified %s/%s, want %s/%s", c.name, re.Kind, re.Class, c.kind, c.class)
		}
		if re.Attempts != 3 || re.Key != c.spec.Key() {
			t.Errorf("%s: attempts/key not threaded: %+v", c.name, re)
		}
		if !errors.Is(re, c.err) && re.Err != c.err {
			t.Errorf("%s: cause not unwrappable", c.name)
		}
	}
	// Supervised aborts carry their report through to the RunError.
	re := classify(faulted, rep(check.FailStall), 1)
	if re.Report == nil || re.Report.Cycle != 7 {
		t.Errorf("stall report not attached: %+v", re.Report)
	}
}

func TestRetryDelayDeterministic(t *testing.T) {
	r := Retry{Max: 10, Backoff: 100 * time.Millisecond}
	want := []time.Duration{100, 200, 400, 800, 1600}
	for i, w := range want {
		if d := r.delay(i + 1); d != w*time.Millisecond {
			t.Errorf("delay(%d) = %v, want %v", i+1, d, w*time.Millisecond)
		}
	}
	if d := (Retry{Max: 99, Backoff: time.Second}).delay(40); d != 30*time.Second {
		t.Errorf("uncapped backoff: %v", d)
	}
	if d := (Retry{Max: 3}).delay(2); d != 0 {
		t.Errorf("zero backoff should retry immediately, got %v", d)
	}
}

func TestTransientFailureRetriedToSuccess(t *testing.T) {
	r, err := NewFrom(Config{Workers: 1, Retry: Retry{Max: 3}})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r.exec = func(s Spec) (dsa.Result, error) {
		calls++
		if calls <= 2 {
			return dsa.Result{}, stallFailure()
		}
		return fakeResult(s, 100), nil
	}
	res, err := r.One(faultedSpec())
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if calls != 3 || res.Cycles != 100 {
		t.Fatalf("calls=%d res=%+v", calls, res)
	}
	st := r.Stats()
	if st.Launched != 1 || st.Retried != 2 || st.Failed != 0 || st.Evicted != 0 {
		t.Fatalf("stats %+v, want 1 launched / 2 retried / 0 failed", st)
	}
	if len(st.Runs) != 3 {
		t.Fatalf("%d attempt records, want 3 (one per execution)", len(st.Runs))
	}
	if st.Runs[0].Err != "stall" || st.Runs[1].Err != "stall" || st.Runs[2].Err != "" {
		t.Fatalf("attempt annotations wrong: %+v", st.Runs)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	r, err := NewFrom(Config{Workers: 1, Retry: Retry{Max: 2}})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r.exec = func(Spec) (dsa.Result, error) {
		calls++
		return dsa.Result{}, stallFailure()
	}
	_, err = r.One(faultedSpec())
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a *RunError: %v", err)
	}
	if calls != 3 { // 1 first try + 2 retries
		t.Fatalf("calls=%d, want 3", calls)
	}
	if re.Kind != FailStall || re.Attempts != 3 || !re.Transient() {
		t.Fatalf("terminal error %+v", re)
	}
	st := r.Stats()
	if st.Failed != 1 || st.Evicted != 1 || st.Retried != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPermanentFailureNotRetried(t *testing.T) {
	r, err := NewFrom(Config{Workers: 1, Retry: Retry{Max: 5}})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	r.exec = func(Spec) (dsa.Result, error) {
		calls++
		return dsa.Result{}, stallFailure()
	}
	// Same wedge, but the spec injects no faults: a deterministic
	// simulator reproduces it on every retry, so none are spent.
	_, err = r.One(tinySpec())
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailStall || re.Transient() {
		t.Fatalf("unexpected classification: %v", err)
	}
	if calls != 1 || r.Stats().Retried != 0 {
		t.Fatalf("permanent failure consumed retries: calls=%d stats=%+v", calls, r.Stats())
	}
}

func TestPanicIsolatedToSpec(t *testing.T) {
	r := New(2)
	bomb := tinySpec()
	bomb.Workload = "TPC-H-19" // distinct hash from the good spec
	r.exec = func(s Spec) (dsa.Result, error) {
		if s.Workload == bomb.Workload {
			panic("scripted kernel bug")
		}
		return fakeResult(s, 42), nil
	}
	outs := r.RunAll(context.Background(), []Spec{tinySpec(), bomb, tinySpec()})
	if outs[0].Err != nil || outs[2].Err != nil {
		t.Fatalf("panic leaked into healthy specs: %+v", outs)
	}
	if outs[1].Err == nil || outs[1].Err.Kind != FailPanic || !outs[1].Err.Transient() {
		t.Fatalf("panic outcome %+v, want transient FailPanic", outs[1].Err)
	}
	if !errors.Is(outs[1].Err, outs[1].Err.Err) {
		t.Fatal("panic cause not unwrappable")
	}
	if msg := outs[1].Err.Error(); msg == "" || !containsAll(msg, "panic", "scripted kernel bug") {
		t.Errorf("panic error lost its payload: %q", msg)
	}
	if n := r.cachedFailures(); n != 0 {
		t.Fatalf("%d failed entries survive in the cache", n)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func TestSpecWallDeadline(t *testing.T) {
	r, err := NewFrom(Config{Workers: 1, SpecWall: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	r.exec = func(s Spec) (dsa.Result, error) {
		<-release // runaway simulation: blocks until the test releases it
		return fakeResult(s, 1), nil
	}
	start := time.Now()
	_, err = r.One(tinySpec())
	close(release)
	var re *RunError
	if !errors.As(err, &re) || re.Kind != FailDeadline || !re.Transient() {
		t.Fatalf("deadline outcome: %v", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("worker slot held for %v — pool would hang on a runaway run", since)
	}
	if n := r.cachedFailures(); n != 0 {
		t.Fatalf("%d failed entries survive in the cache", n)
	}
}

func TestContextCancelFailsFast(t *testing.T) {
	r := New(2)
	executed := 0
	r.exec = func(s Spec) (dsa.Result, error) {
		executed++
		return fakeResult(s, 1), nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := r.RunAll(ctx, []Spec{tinySpec(), faultedSpec()})
	for i, o := range outs {
		if o.Err == nil || o.Err.Kind != FailCanceled || o.Err.Transient() {
			t.Fatalf("outcome %d under canceled ctx: %+v", i, o.Err)
		}
	}
	if executed != 0 {
		t.Fatalf("%d specs executed under a canceled context", executed)
	}
	// Canceled entries are evicted: a later uncanceled request re-executes.
	if _, err := r.One(tinySpec()); err != nil {
		t.Fatalf("re-execution after cancellation: %v", err)
	}
	if executed != 1 {
		t.Fatalf("canceled entry poisoned the cache (executed=%d)", executed)
	}
}

// TestStatsConsistencyUnderFailure pins the counter contract documented
// on Stats: every resolve request increments exactly one of Launched,
// Cached or Resumed; Failed == Evicted; Retried counts extra attempts;
// Runs has one record per execution attempt.
func TestStatsConsistencyUnderFailure(t *testing.T) {
	dir := t.TempDir()
	mk := func() (*Runner, *int, *sync.Mutex) {
		r, err := NewFrom(Config{Workers: 4, Retry: Retry{Max: 1}, CheckpointDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		calls := map[string]int{}
		total := 0
		r.exec = func(s Spec) (dsa.Result, error) {
			mu.Lock()
			calls[s.Key()]++
			k := calls[s.Key()]
			total++
			mu.Unlock()
			switch s.Workload {
			case "TPC-H-19": // permanent: malformed-spec style failure
				return dsa.Result{}, errors.New("scripted permanent failure")
			case "TPC-H-20": // transient, recovers on the retry
				if k == 1 {
					return dsa.Result{}, stallFailure()
				}
				return fakeResult(s, 10), nil
			case "wedge": // transient, never recovers
				return dsa.Result{}, stallFailure()
			default:
				return fakeResult(s, 10), nil
			}
		}
		return r, &total, &mu
	}

	spec := func(workload string, faulted bool) Spec {
		s := tinySpec()
		s.Workload = workload
		if faulted {
			s.Check = true
			s.Faults = check.FaultConfig{DropResp: 2e-2}
		}
		return s
	}
	specs := []Spec{
		spec("TPC-H-22", false), // success
		spec("TPC-H-19", false), // permanent failure
		spec("TPC-H-20", true),  // transient, recovers after 1 retry
		spec("wedge", true),     // transient, exhausts Retry.Max=1
		spec("TPC-H-22", false), // duplicate → cache hit or shared entry
	}

	r, total, mu := mk()
	outs := r.RunAll(context.Background(), specs)
	st := r.Stats()

	requests := len(specs)
	if got := st.Launched + st.Cached + st.Resumed; got != requests {
		t.Fatalf("Launched+Cached+Resumed = %d, want %d (every request increments exactly one)", got, requests)
	}
	if st.Failed != st.Evicted {
		t.Fatalf("Failed=%d Evicted=%d: a failed entry survived (or a success was evicted)", st.Failed, st.Evicted)
	}
	if st.Failed != 2 { // permanent + exhausted wedge
		t.Fatalf("Failed=%d, want 2", st.Failed)
	}
	if st.Retried != 2 { // one for TPC-H-20, one for the wedge
		t.Fatalf("Retried=%d, want 2", st.Retried)
	}
	mu.Lock()
	executions := *total
	mu.Unlock()
	if len(st.Runs) != executions {
		t.Fatalf("%d Runs records, want one per execution (%d)", len(st.Runs), executions)
	}
	if st.Launched+st.Retried != executions {
		t.Fatalf("Launched+Retried=%d, want executions=%d", st.Launched+st.Retried, executions)
	}
	if outs[0].Err != nil || outs[2].Err != nil || outs[4].Err != nil {
		t.Fatalf("healthy cells failed: %+v", outs)
	}
	if outs[1].Err == nil || outs[3].Err == nil {
		t.Fatal("scripted failures did not surface")
	}
	if outs[3].Err.Attempts != 2 {
		t.Fatalf("wedge attempts = %d, want 2", outs[3].Err.Attempts)
	}
	if st.Checkpointed != 2 { // the two distinct successes; failures never journal
		t.Fatalf("Checkpointed=%d, want 2", st.Checkpointed)
	}
	if n := r.cachedFailures(); n != 0 {
		t.Fatalf("%d failed entries survive in the cache", n)
	}

	// Second runner over the same journal: successes resume, failures
	// (never journaled) re-execute — and the counters stay consistent.
	r2, _, _ := mk()
	r2.RunAll(context.Background(), specs)
	st2 := r2.Stats()
	if got := st2.Launched + st2.Cached + st2.Resumed; got != requests {
		t.Fatalf("resumed run: Launched+Cached+Resumed = %d, want %d", got, requests)
	}
	if st2.Resumed != 2 {
		t.Fatalf("resumed run: Resumed=%d, want 2 (both journaled successes)", st2.Resumed)
	}
	if st2.Failed != st2.Evicted || st2.Failed != 2 {
		t.Fatalf("resumed run: Failed=%d Evicted=%d, want 2/2", st2.Failed, st2.Evicted)
	}
	if st2.Checkpointed != 0 {
		t.Fatalf("resumed run re-journaled resumed results: %+v", st2)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	ck, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := tinySpec()
	want := fakeResult(s, 777)
	if _, ok := ck.load(s); ok {
		t.Fatal("load hit before save")
	}
	if err := ck.save(s, want); err != nil {
		t.Fatal(err)
	}
	got, ok := ck.load(s)
	if !ok || got != want {
		t.Fatalf("round trip: ok=%v got=%+v", ok, got)
	}
	// A different spec must not see this record.
	other := s
	other.Scale = 401
	if _, ok := ck.load(other); ok {
		t.Fatal("different spec resolved another spec's checkpoint")
	}
	// nil receiver is a miss + no-op, so the runner can call unconditionally.
	var nilCk *Checkpoint
	if _, ok := nilCk.load(s); ok {
		t.Fatal("nil checkpoint returned a hit")
	}
	if err := nilCk.save(s, want); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCorruptAndMismatchedFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := tinySpec()

	// Corrupt JSON (a torn write that somehow reached the final name).
	if err := os.WriteFile(ck.path(s.Hash()), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.load(s); ok {
		t.Fatal("corrupt checkpoint file trusted")
	}

	// Valid JSON but for the wrong spec (hand-moved or stale-format file).
	b, _ := json.Marshal(ckptFile{Key: "someone-else", Result: fakeResult(s, 1)})
	if err := os.WriteFile(ck.path(s.Hash()), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := ck.load(s); ok {
		t.Fatal("key-mismatched checkpoint file trusted")
	}

	// The runner degrades both cases to re-execution, not an abort.
	r, err := NewFrom(Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r.exec = func(s Spec) (dsa.Result, error) { return fakeResult(s, 9), nil }
	if _, err := r.One(s); err != nil {
		t.Fatalf("corrupt checkpoint aborted the run: %v", err)
	}
	st := r.Stats()
	if st.Launched != 1 || st.Resumed != 0 {
		t.Fatalf("stats %+v, want relaunch (1 launched / 0 resumed)", st)
	}
	// The re-executed result overwrote the corrupt record atomically.
	if got, ok := ck.load(s); !ok || got.Cycles != 9 {
		t.Fatalf("journal not repaired: ok=%v got=%+v", ok, got)
	}
}

// TestInterruptedSweepResumesByteIdentical is the acceptance criterion:
// a sweep killed mid-run (context cancellation) and resumed from the
// same -checkpoint directory produces byte-identical merged output to an
// uninterrupted clean serial run.
func TestInterruptedSweepResumesByteIdentical(t *testing.T) {
	specs := []Spec{}
	for _, q := range []string{"TPC-H-19", "TPC-H-20", "TPC-H-22"} {
		for _, k := range []dsa.Kind{dsa.KindXCache, dsa.KindAddr} {
			specs = append(specs, Spec{DSA: DSAWidx, Kind: k, Workload: q, Scale: 400})
		}
	}

	// Reference: uninterrupted clean serial run, no resilience machinery.
	clean, err := New(1).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}

	// First invocation: serial, checkpointed, killed after two completions.
	dir := t.TempDir()
	r1, err := NewFrom(Config{Workers: 1, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := 0
	inner := r1.exec
	r1.exec = func(s Spec) (dsa.Result, error) {
		started++
		if started == 3 {
			// The "kill": the first two specs have fully settled (serial
			// pool), this one dies mid-flight, the rest fail fast.
			cancel()
			return dsa.Result{}, ctx.Err()
		}
		return inner(s)
	}
	outs := r1.RunAll(ctx, specs)
	killed := 0
	for _, o := range outs {
		if o.Err != nil {
			if o.Err.Kind != FailCanceled {
				t.Fatalf("interrupted run produced a non-cancellation failure: %+v", o.Err)
			}
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("cancellation killed nothing — test is vacuous")
	}
	if got := r1.Stats().Checkpointed; got != 2 {
		t.Fatalf("first invocation journaled %d results, want 2", got)
	}

	// Second invocation: same checkpoint dir, fresh process (new Runner),
	// this time running to completion — and in parallel, to show resume
	// and scheduling don't leak into the merged output.
	r2, err := NewFrom(Config{Workers: 4, CheckpointDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := r2.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("resumed sweep output is not byte-identical to the clean serial run")
	}
	st := r2.Stats()
	if st.Resumed != 2 || st.Launched != len(specs)-2 {
		t.Fatalf("resume stats %+v, want 2 resumed / %d launched", st, len(specs)-2)
	}

	// Checkpoint files themselves are the journal: one per completed spec.
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != len(specs) {
		t.Fatalf("%d journal files, want %d", len(files), len(specs))
	}
}

// TestFaultedRetriedSweepByteIdentical is the other half of the
// determinism-under-resilience acceptance: a sweep that suffers injected
// transient faults and recovers through retry produces byte-identical
// output to a clean run of the same specs.
func TestFaultedRetriedSweepByteIdentical(t *testing.T) {
	specs := []Spec{}
	for _, q := range []string{"TPC-H-19", "TPC-H-20", "TPC-H-22"} {
		s := faultedSpec()
		s.Workload = q
		specs = append(specs, s)
	}

	clean, err := New(1).Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(clean)

	// Every spec wedges once (scripted) before its real execution: the
	// retry layer absorbs the transient and the result is untouched.
	r, err := NewFrom(Config{Workers: 3, Retry: Retry{Max: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	wedged := map[string]bool{}
	inner := r.exec
	r.exec = func(s Spec) (dsa.Result, error) {
		mu.Lock()
		first := !wedged[s.Key()]
		wedged[s.Key()] = true
		mu.Unlock()
		if first {
			return dsa.Result{}, stallFailure()
		}
		return inner(s)
	}
	faulty, err := r.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(faulty)
	if string(gotJSON) != string(wantJSON) {
		t.Fatal("retried sweep output is not byte-identical to the clean run")
	}
	st := r.Stats()
	if st.Retried != len(specs) || st.Failed != 0 {
		t.Fatalf("stats %+v, want %d retried / 0 failed", st, len(specs))
	}
}
