package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"xcache/internal/dsa"
)

// Runner executes Specs across a pool of workers and memoises every
// completed run in a content-addressed cache, so the same point
// requested by several figures (the baseline config appears in Fig 4,
// Fig 14 and Fig 15) simulates exactly once per process.
//
// Determinism contract: Run returns results in spec order, each result
// a pure function of its Spec. Worker count, completion order, retries
// and checkpoint resume affect only wall time and Stats — never the
// returned values. Errors are reported for the lowest-indexed failing
// spec, again independent of scheduling.
//
// Resilience: every failure resolves to a structured *RunError
// (classified transient vs permanent), worker panics are isolated to
// their spec, transient failures are retried with deterministic backoff,
// failed entries are evicted instead of poisoning the memo table, a
// per-spec wall deadline degrades a runaway run to a typed error instead
// of hanging the pool, and completed results can be journaled to a
// crash-safe on-disk checkpoint for resume.
type Runner struct {
	cfg  Config
	ckpt *Checkpoint

	// exec is the execution function (Spec.Execute in production); a seam
	// so resilience tests can script failures without a real simulation.
	exec func(Spec) (dsa.Result, error)

	mu      sync.Mutex
	cache   map[string]*entry
	stats   Stats
	running int // workers currently executing a simulation
}

// Config configures a Runner beyond its worker count.
type Config struct {
	// Workers is the pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Retry bounds re-execution of transiently failing specs.
	Retry Retry
	// CheckpointDir, when non-empty, journals every completed result to a
	// content-addressed on-disk store and consults it before executing,
	// so an interrupted sweep resumes instead of recomputing.
	CheckpointDir string
	// SpecWall is the per-spec wall-clock deadline; 0 disables it. A spec
	// exceeding it fails with FailDeadline (transient) and its simulation
	// goroutine is abandoned, freeing the worker slot.
	SpecWall time.Duration
}

// entry is one content-addressed cache slot. done closes when the
// simulation finishes; until then other requesters for the same hash
// block on it instead of launching a duplicate run.
type entry struct {
	done chan struct{}
	res  dsa.Result
	err  *RunError
}

// New returns a Runner with the given worker count; workers <= 0 uses
// GOMAXPROCS. New(1) gives serial execution with the same caching and
// merge semantics.
func New(workers int) *Runner {
	r, err := NewFrom(Config{Workers: workers})
	if err != nil {
		// Unreachable: only the checkpoint store can fail to open.
		panic(err)
	}
	return r
}

// NewFrom returns a Runner for the full configuration. It fails only
// when the checkpoint directory cannot be created.
func NewFrom(cfg Config) (*Runner, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Retry.Max < 0 {
		cfg.Retry.Max = 0
	}
	r := &Runner{cfg: cfg, cache: map[string]*entry{}, exec: Spec.Execute}
	if cfg.CheckpointDir != "" {
		ckpt, err := OpenCheckpoint(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		r.ckpt = ckpt
	}
	return r, nil
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.cfg.Workers }

// One executes a single spec (through the cache).
func (r *Runner) One(s Spec) (dsa.Result, error) {
	res, rerr := r.resolve(context.Background(), s)
	if rerr != nil {
		return dsa.Result{}, rerr
	}
	return res, nil
}

// Outcome is one spec's terminal state in a partial run: either a result
// or a classified failure, never both.
type Outcome struct {
	Res dsa.Result
	Err *RunError // nil on success
}

// Run executes every spec, at most Workers concurrently, and returns
// the results in spec order. If any spec fails, the error of the
// lowest-indexed failing spec is returned (the remaining specs still
// run to completion so the cache stays warm for retries).
func (r *Runner) Run(specs []Spec) ([]dsa.Result, error) {
	return r.RunCtx(context.Background(), specs)
}

// RunCtx is Run under a context: cancelling it makes unstarted specs
// fail fast with FailCanceled and abandons in-flight simulations, so a
// sweep can be interrupted (and later resumed from a checkpoint) without
// waiting for the full matrix.
func (r *Runner) RunCtx(ctx context.Context, specs []Spec) ([]dsa.Result, error) {
	outs := r.RunAll(ctx, specs)
	results := make([]dsa.Result, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Key(), o.Err)
		}
		results[i] = o.Res
	}
	return results, nil
}

// RunAll is the graceful-degradation entry point: every spec runs to a
// terminal Outcome — result or classified *RunError — and no failure
// aborts the batch. Outcomes are in spec order; successful cells obey
// the same determinism contract as Run.
func (r *Runner) RunAll(ctx context.Context, specs []Spec) []Outcome {
	n := len(specs)
	outs := make([]Outcome, n)
	do := func(i int) {
		res, rerr := r.resolve(ctx, specs[i])
		if rerr != nil {
			outs[i] = Outcome{Err: rerr}
		} else {
			outs[i] = Outcome{Res: res}
		}
	}

	workers := r.cfg.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := range specs {
			do(i)
		}
		return outs
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				do(i)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return outs
}

// resolve returns the result for s, executing it (with retry, panic
// isolation and deadline supervision) if no other request has, or
// waiting on / reusing the cached run otherwise.
func (r *Runner) resolve(ctx context.Context, s Spec) (dsa.Result, *RunError) {
	key := s.Hash()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.Cached++
		r.mu.Unlock()
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			// The in-flight run keeps going (its own resolve owns it);
			// this requester gives up waiting.
			return dsa.Result{}, classify(s, ctx.Err(), 0)
		}
	}
	e := &entry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	// Crash-safe resume: a journaled result is a pure function of the
	// spec, so loading it is indistinguishable from re-executing.
	if res, ok := r.ckpt.load(s); ok {
		e.res = res
		close(e.done)
		r.mu.Lock()
		r.stats.Resumed++
		r.mu.Unlock()
		return e.res, nil
	}

	r.mu.Lock()
	r.stats.Launched++
	r.running++
	if r.running > r.stats.PeakWorkers {
		r.stats.PeakWorkers = r.running
	}
	r.mu.Unlock()

	res, rerr := r.attempt(ctx, s)

	e.res, e.err = res, rerr
	close(e.done)

	r.mu.Lock()
	r.running--
	if rerr != nil {
		// Evict: a failed simulation must never be memoised, or one
		// transient fault poisons every later figure sharing the spec.
		r.stats.Failed++
		r.stats.Evicted++
		delete(r.cache, key)
	} else {
		r.stats.SimCycles += res.Cycles
	}
	r.mu.Unlock()

	if rerr == nil && r.ckpt != nil {
		if err := r.ckpt.save(s, res); err != nil {
			// The in-memory result is still valid; surface via Stats.
			r.mu.Lock()
			r.stats.CheckpointErrs++
			r.mu.Unlock()
		} else {
			r.mu.Lock()
			r.stats.Checkpointed++
			r.mu.Unlock()
		}
	}
	if rerr != nil {
		return dsa.Result{}, rerr
	}
	return res, nil
}

// attempt runs s under the bounded-retry policy: transient failures are
// re-executed up to Retry.Max extra times with deterministic backoff;
// permanent failures and exhausted budgets surface immediately. Because
// a successful execution is a pure function of the spec, a retried
// success is bit-identical to a first-try success — retries change only
// wall time and Stats.
func (r *Runner) attempt(ctx context.Context, s Spec) (dsa.Result, *RunError) {
	for attempts := 1; ; attempts++ {
		start := time.Now()
		res, err := r.execOne(ctx, s)
		wall := time.Since(start)
		if err == nil {
			r.note(s, res.Cycles, wall, "")
			return res, nil
		}
		rerr := classify(s, err, attempts)
		r.note(s, 0, wall, rerr.Kind.String())
		if !rerr.Transient() || attempts > r.cfg.Retry.Max || ctx.Err() != nil {
			return dsa.Result{}, rerr
		}
		r.mu.Lock()
		r.stats.Retried++
		r.mu.Unlock()
		if d := r.cfg.Retry.delay(attempts); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return dsa.Result{}, classify(s, ctx.Err(), attempts)
			}
		}
	}
}

// note records one execution attempt in the per-run stats.
func (r *Runner) note(s Spec, cycles uint64, wall time.Duration, fail string) {
	r.mu.Lock()
	r.stats.Wall += wall
	r.stats.Runs = append(r.stats.Runs, RunStat{
		Key:    s.Key(),
		Cycles: cycles,
		Wall:   wall,
		Err:    fail,
	})
	r.mu.Unlock()
}

// execOne performs a single supervised execution: panic-shielded, and —
// when a deadline or cancellable context applies — raced against the
// per-spec wall timer and ctx. On timeout or cancellation the simulation
// goroutine is abandoned (a cycle-level kernel cannot be preempted); it
// finishes on its own and its result is discarded, but the worker slot
// is released immediately, so the pool never hangs on a runaway run.
func (r *Runner) execOne(ctx context.Context, s Spec) (dsa.Result, error) {
	if err := ctx.Err(); err != nil {
		return dsa.Result{}, err
	}
	if r.cfg.SpecWall <= 0 && ctx.Done() == nil {
		return r.execShielded(s)
	}
	type outT struct {
		res dsa.Result
		err error
	}
	ch := make(chan outT, 1)
	go func() {
		res, err := r.execShielded(s)
		ch <- outT{res, err}
	}()
	var timeout <-chan time.Time
	if r.cfg.SpecWall > 0 {
		t := time.NewTimer(r.cfg.SpecWall)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timeout:
		return dsa.Result{}, &deadlineError{limit: r.cfg.SpecWall}
	case <-ctx.Done():
		return dsa.Result{}, ctx.Err()
	}
}

// execShielded isolates a per-spec panic to that spec.
func (r *Runner) execShielded(s Spec) (res dsa.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{val: p, stack: debug.Stack()}
		}
	}()
	return r.exec(s)
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Runs = append([]RunStat(nil), r.stats.Runs...)
	s.Workers = r.cfg.Workers
	return s
}

// cachedFailures counts failed entries still resident in the memo table.
// The taxonomy's eviction contract keeps this at zero once all in-flight
// runs settle; the fault-matrix soak asserts it.
func (r *Runner) cachedFailures() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.cache {
		select {
		case <-e.done:
			if e.err != nil {
				n++
			}
		default:
		}
	}
	return n
}
