package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"xcache/internal/dsa"
)

// Runner executes Specs across a pool of workers and memoises every
// completed run in a content-addressed cache, so the same point
// requested by several figures (the baseline config appears in Fig 4,
// Fig 14 and Fig 15) simulates exactly once per process.
//
// Determinism contract: Run returns results in spec order, each result
// a pure function of its Spec. Worker count and completion order affect
// only wall time and Stats — never the returned values. Errors are
// reported for the lowest-indexed failing spec, again independent of
// scheduling.
type Runner struct {
	workers int

	mu      sync.Mutex
	cache   map[string]*entry
	stats   Stats
	running int // workers currently executing a simulation
}

// entry is one content-addressed cache slot. done closes when the
// simulation finishes; until then other requesters for the same hash
// block on it instead of launching a duplicate run.
type entry struct {
	done chan struct{}
	res  dsa.Result
	err  error
}

// New returns a Runner with the given worker count; workers <= 0 uses
// GOMAXPROCS. New(1) gives serial execution with the same caching and
// merge semantics.
func New(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, cache: map[string]*entry{}}
}

// Workers returns the configured pool size.
func (r *Runner) Workers() int { return r.workers }

// One executes a single spec (through the cache).
func (r *Runner) One(s Spec) (dsa.Result, error) {
	return r.resolve(s)
}

// Run executes every spec, at most r.workers concurrently, and returns
// the results in spec order. If any spec fails, the error of the
// lowest-indexed failing spec is returned (the remaining specs still
// run to completion so the cache stays warm for retries).
func (r *Runner) Run(specs []Spec) ([]dsa.Result, error) {
	n := len(specs)
	results := make([]dsa.Result, n)
	errs := make([]error, n)

	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, s := range specs {
			results[i], errs[i] = r.resolve(s)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i], errs[i] = r.resolve(specs[i])
				}
			}()
		}
		for i := range specs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Key(), err)
		}
	}
	return results, nil
}

// resolve returns the result for s, executing it if no other request
// has, or waiting on / reusing the cached run otherwise.
func (r *Runner) resolve(s Spec) (dsa.Result, error) {
	key := s.Hash()
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.Cached++
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &entry{done: make(chan struct{})}
	r.cache[key] = e
	r.stats.Launched++
	r.running++
	if r.running > r.stats.PeakWorkers {
		r.stats.PeakWorkers = r.running
	}
	r.mu.Unlock()

	start := time.Now()
	e.res, e.err = s.Execute()
	wall := time.Since(start)
	close(e.done)

	r.mu.Lock()
	r.running--
	r.stats.Wall += wall
	if e.err != nil {
		r.stats.Failed++
	} else {
		r.stats.SimCycles += e.res.Cycles
	}
	r.stats.Runs = append(r.stats.Runs, RunStat{
		Key:    s.Key(),
		Cycles: e.res.Cycles,
		Wall:   wall,
	})
	r.mu.Unlock()
	return e.res, e.err
}

// Stats returns a snapshot of the runner's counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Runs = append([]RunStat(nil), r.stats.Runs...)
	s.Workers = r.workers
	return s
}
