package runner

import (
	"runtime"
	"strings"
	"testing"

	"xcache/internal/check"
	"xcache/internal/ctrl"
	"xcache/internal/dsa"
)

// tinySpec is a real but very small simulation (Widx at scale 400 runs
// in a few milliseconds).
func tinySpec() Spec {
	return Spec{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 400}
}

func badSpec() Spec {
	return Spec{DSA: "NoSuchDSA", Kind: dsa.KindXCache, Workload: "w", Scale: 1}
}

func TestNewDefaults(t *testing.T) {
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0) workers = %d, want GOMAXPROCS", w)
	}
	if w := New(3).Workers(); w != 3 {
		t.Errorf("New(3) workers = %d", w)
	}
}

func TestRunEmpty(t *testing.T) {
	res, err := New(4).Run(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty Run: %v, %d results", err, len(res))
	}
}

func TestOneExecutesAndCaches(t *testing.T) {
	r := New(2)
	a, err := r.One(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == 0 || !a.Checked {
		t.Fatalf("implausible result: %+v", a)
	}
	b, err := r.One(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached result differs from first execution")
	}
	st := r.Stats()
	if st.Launched != 1 || st.Cached != 1 || st.Failed != 0 {
		t.Fatalf("stats %+v, want 1 launched / 1 cached / 0 failed", st)
	}
	if st.SimCycles != a.Cycles {
		t.Errorf("SimCycles %d, want %d", st.SimCycles, a.Cycles)
	}
	if len(st.Runs) != 1 || st.Runs[0].Key != tinySpec().Key() {
		t.Errorf("per-run stats %+v", st.Runs)
	}
}

func TestFailedEntriesEvictedNotMemoised(t *testing.T) {
	r := New(2)
	_, err1 := r.One(badSpec())
	_, err2 := r.One(badSpec())
	if err1 == nil || err2 == nil {
		t.Fatal("bad spec did not error")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("deterministic failure diverged: %v vs %v", err1, err2)
	}
	// The failure must have been evicted, so the second request
	// re-executes instead of being served the memoised error.
	st := r.Stats()
	if st.Launched != 2 || st.Cached != 0 || st.Failed != 2 || st.Evicted != 2 {
		t.Fatalf("stats %+v, want 2 launched / 0 cached / 2 failed / 2 evicted", st)
	}
	if n := r.cachedFailures(); n != 0 {
		t.Fatalf("%d failed entries survive in the cache", n)
	}
}

func TestRunErrorNamesSpec(t *testing.T) {
	_, err := New(2).Run([]Spec{tinySpec(), badSpec()})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "NoSuchDSA") {
		t.Errorf("error %q does not carry the failing spec key", err)
	}
}

func TestExecuteRejectsUnknowns(t *testing.T) {
	cases := []Spec{
		{DSA: "NoSuchDSA", Kind: dsa.KindXCache, Workload: "w", Scale: 1},
		{DSA: DSAWidx, Kind: dsa.KindXCache, Workload: "no-such-query", Scale: 1},
		{DSA: DSASpArch, Kind: dsa.KindXCache, Workload: "p2p-08", Scale: 1},
		{DSA: DSAGraphPulse, Kind: dsa.KindXCache, Workload: "TPC-H-19", Scale: 1},
		{DSA: DSABTreeIdx, Kind: dsa.KindBaseline, Workload: "zipf", Scale: 1},
	}
	for _, s := range cases {
		if _, err := s.Execute(); err == nil {
			t.Errorf("%s: expected an error", s.Key())
		}
	}
}

func TestKeyDistinguishesEveryField(t *testing.T) {
	base := tinySpec()
	mutations := map[string]func(*Spec){
		"DSA":       func(s *Spec) { s.DSA = DSADASX },
		"Kind":      func(s *Spec) { s.Kind = dsa.KindAddr },
		"Workload":  func(s *Spec) { s.Workload = "TPC-H-19" },
		"Scale":     func(s *Spec) { s.Scale = 401 },
		"WorkScale": func(s *Spec) { s.WorkScale = 800 },
		"DivMul":    func(s *Spec) { s.DivMul = 2 },
		"Mode":      func(s *Spec) { s.Mode = 1 },
		"Exec":      func(s *Spec) { s.Exec = ctrl.ExecInterp },
		"Hardwired": func(s *Spec) { s.Hardwired = true },
		"Lookahead": func(s *Spec) { s.Lookahead = 16 },
		"NumActive": func(s *Spec) { s.NumActive = 8 },
		"NumExe":    func(s *Spec) { s.NumExe = 2 },
		"Check":     func(s *Spec) { s.Check = true },
		"DropResp":  func(s *Spec) { s.Faults.DropResp = 1e-3 },
		"FlipBit":   func(s *Spec) { s.Faults.FlipBit = 1e-4 },
		"Timeout":   func(s *Spec) { s.Faults.FillTimeout = 99 },
		"Seed":      func(s *Spec) { s.Seed = 9 },
	}
	for name, mutate := range mutations {
		m := base
		mutate(&m)
		if m.Key() == base.Key() {
			t.Errorf("mutating %s does not change the canonical key", name)
		}
		if m.Hash() == base.Hash() {
			t.Errorf("mutating %s does not change the content hash", name)
		}
	}
}

func TestCheckSpecAttachesHarness(t *testing.T) {
	s := tinySpec()
	s.Check = true
	s.Seed = 7
	s.Faults = check.FaultConfig{DropResp: 2e-2}
	r1, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Checked {
		t.Fatal("faulted run failed validation")
	}
	if r1.DroppedFills == 0 {
		t.Fatal("injector never fired: harness not attached")
	}
	r2, err := s.Execute()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("same faulted spec diverged:\n  %+v\n  %+v", r1, r2)
	}
}

func TestStatsSnapshotIsIsolated(t *testing.T) {
	r := New(1)
	if _, err := r.One(tinySpec()); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	st.Runs[0].Key = "clobbered"
	if r.Stats().Runs[0].Key != tinySpec().Key() {
		t.Error("Stats() exposes internal run slice")
	}
}

func TestStatsRendering(t *testing.T) {
	r := New(2)
	if _, err := r.One(tinySpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.One(tinySpec()); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	s := st.String()
	for _, want := range []string{"2 workers", "1 runs launched", "1 cache hits (50%)"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
	if d := st.Detail(); !strings.Contains(d, "TPC-H-22") {
		t.Errorf("detail %q missing run key", d)
	}
}
