package runner

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"xcache/internal/check"
	"xcache/internal/dsa"
)

// soakPoint is one cell of the fault matrix: an injector configuration
// plus the expected terminal state. expect is "ok" (the hardware
// retry/scrub machinery absorbs the faults), "fail" (the injector is
// guaranteed to wedge the machine), or "any" (outcome depends on the
// seed/DSA; the soak only asserts classification and pool health).
type soakPoint struct {
	name   string
	spec   Spec
	expect string
}

// soakMatrix returns the fault matrix over real simulations. The default
// set keeps plain `go test` fast; XCACHE_SOAK=full (the `make soak`
// tier) widens it to every injector class crossed with several seeds and
// three DSAs.
func soakMatrix(full bool) []soakPoint {
	mk := func(name, dsaName string, f check.FaultConfig, seed uint64, expect string) soakPoint {
		s := Spec{DSA: dsaName, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 400,
			Check: true, Faults: f, Seed: seed}
		if dsaName == DSABTreeIdx {
			s.Workload = "zipf"
		}
		return soakPoint{name: name, spec: s, expect: expect}
	}

	pts := []soakPoint{
		// Known outcomes on Widx, pinned:
		mk("clean-checked", DSAWidx, check.FaultConfig{}, 1, "ok"),
		mk("drop-light", DSAWidx, check.FaultConfig{DropResp: 2e-2}, 7, "ok"),
		// DropResp=1 drops every fill response: the controller's retry
		// budget exhausts and the run wedges, guaranteed.
		mk("drop-storm", DSAWidx, check.FaultConfig{DropResp: 1}, 1, "fail"),
		// With hardware fill-retry disabled, the first dropped fill is
		// never re-requested: a genuine watchdog-class wedge.
		mk("wedge-no-retry", DSAWidx, check.FaultConfig{DropResp: 0.3, FillTimeout: -1}, 1, "fail"),
	}
	if !full {
		return pts
	}
	for _, d := range []string{DSAWidx, DSADASX, DSABTreeIdx} {
		// At soak scale the B+-tree working set fits on chip: there are
		// few-to-no DRAM fills for the injector to drop, so the wedge
		// points are not guaranteed to wedge it.
		wedge := "fail"
		if d == DSABTreeIdx {
			wedge = "any"
		}
		for _, seed := range []uint64{2, 3, 5, 11} {
			pts = append(pts,
				mk("clean-checked", d, check.FaultConfig{}, seed, "ok"),
				mk("drop-light", d, check.FaultConfig{DropResp: 2e-2}, seed, "any"),
				mk("drop-heavy", d, check.FaultConfig{DropResp: 0.2}, seed, "any"),
				mk("delay", d, check.FaultConfig{DelayResp: 0.1, DelayMax: 64}, seed, "any"),
				mk("clog", d, check.FaultConfig{ClogQueue: 0.05}, seed, "any"),
				mk("flip", d, check.FaultConfig{FlipBit: 1e-4}, seed, "any"),
				mk("drop-storm", d, check.FaultConfig{DropResp: 1}, seed, wedge),
				mk("wedge-no-retry", d, check.FaultConfig{DropResp: 0.3, FillTimeout: -1}, seed, wedge),
			)
		}
	}
	return pts
}

// TestFaultMatrixSoak drives real simulations through the full
// resilience stack — fault injection, watchdog, retry, eviction, partial
// results — and asserts the acceptance properties: every failure is a
// classified *RunError, the pool drains without deadlock, and no failed
// entry survives in the cache. `make soak` runs the widened matrix under
// -race via XCACHE_SOAK=full.
func TestFaultMatrixSoak(t *testing.T) {
	full := os.Getenv("XCACHE_SOAK") == "full"
	pts := soakMatrix(full)
	specs := make([]Spec, len(pts))
	for i, p := range pts {
		specs[i] = p.spec
	}

	r, err := NewFrom(Config{Workers: 4, Retry: Retry{Max: 1}})
	if err != nil {
		t.Fatal(err)
	}

	// The pool must drain on its own; a generous watchdog turns a wedged
	// pool into a test failure instead of a hung CI job.
	ch := make(chan []Outcome, 1)
	go func() { ch <- r.RunAll(context.Background(), specs) }()
	var outs []Outcome
	select {
	case outs = <-ch:
	case <-time.After(5 * time.Minute):
		t.Fatal("soak pool deadlocked: RunAll did not drain within 5 minutes")
	}

	for i, o := range outs {
		p := pts[i]
		key := p.spec.Key()
		if o.Err == nil {
			if !o.Res.Checked {
				t.Errorf("%s: completed but failed validation: %+v", key, o.Res)
			}
			if p.expect == "fail" {
				t.Errorf("%s (%s): expected a wedge, run survived", key, p.name)
			}
			continue
		}
		if p.expect == "ok" {
			t.Errorf("%s (%s): expected recovery, got %v", key, p.name, o.Err)
		}
		// Every failure must be fully classified: a known taxonomy kind,
		// a retry class, an attempt count, and (for supervised aborts) a
		// stall report naming the wedge. Outcome.Err is typed *RunError;
		// also pin that the underlying check.Failure stays unwrappable.
		re := o.Err
		var cf *check.Failure
		if re.Report != nil && !errors.As(error(re), &cf) {
			t.Errorf("%s: check.Failure cause lost through the taxonomy", key)
		}
		if re.Kind == FailUnknown {
			t.Errorf("%s: unclassified failure: %v", key, re)
		}
		if re.Attempts < 1 {
			t.Errorf("%s: attempts=%d", key, re.Attempts)
		}
		switch re.Kind {
		case FailStall, FailInvariant, FailOverflow, FailBudget:
			if re.Report == nil {
				t.Errorf("%s: supervised abort without a stall report", key)
			}
			// All soak failures come from fault-injecting specs, so they
			// classify transient and the bounded retry policy must have
			// run dry (Max=1 → exactly 2 attempts).
			if !re.Transient() {
				t.Errorf("%s: injected-fault %s classified permanent", key, re.Kind)
			}
			if re.Attempts != 2 {
				t.Errorf("%s: transient %s made %d attempts, want 2", key, re.Kind, re.Attempts)
			}
		}
	}

	st := r.Stats()
	if st.Failed != st.Evicted {
		t.Errorf("Failed=%d Evicted=%d: eviction contract broken", st.Failed, st.Evicted)
	}
	if n := r.cachedFailures(); n != 0 {
		t.Errorf("%d failed entries survive in the cache after the soak", n)
	}

	// Determinism under resilience: replaying the whole matrix on a fresh
	// runner (different worker count, different completion order)
	// reproduces every outcome — successes bit-identical, failures
	// classified identically.
	r2, err := NewFrom(Config{Workers: 2, Retry: Retry{Max: 1}})
	if err != nil {
		t.Fatal(err)
	}
	outs2 := r2.RunAll(context.Background(), specs)
	for i := range outs {
		a, b := outs[i], outs2[i]
		key := pts[i].spec.Key()
		switch {
		case a.Err == nil && b.Err == nil:
			if a.Res != b.Res {
				t.Errorf("%s: replay diverged:\n  %+v\n  %+v", key, a.Res, b.Res)
			}
		case a.Err != nil && b.Err != nil:
			if a.Err.Kind != b.Err.Kind || a.Err.Class != b.Err.Class {
				t.Errorf("%s: replay classification diverged: %s/%s vs %s/%s",
					key, a.Err.Kind, a.Err.Class, b.Err.Kind, b.Err.Class)
			}
		default:
			t.Errorf("%s: replay flipped success/failure: %v vs %v", key, a.Err, b.Err)
		}
	}
}
