// Package runner is the parallel deterministic sweep engine behind
// internal/exp: every table/figure entry point decomposes into
// independent Specs (DSA × workload × idiom × scale × overrides), the
// Runner executes them across a worker pool with per-run isolated
// sim.Kernel/dram/check instances, memoises results in a
// content-addressed cache keyed by the canonical spec hash, and merges
// results deterministically by spec order — output is byte-identical to
// serial execution regardless of worker count or completion order.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dsa"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/hashidx"
)

// DSA names accepted by Spec.DSA. They match the dsa.Result.DSA strings
// the runners report, so a Spec round-trips through its Result.
const (
	DSAWidx       = "Widx"
	DSADASX       = "DASX"
	DSASpArch     = "SpArch"
	DSAGamma      = "Gamma"
	DSAGraphPulse = "GraphPulse"
	DSABTreeIdx   = "BTreeIdx"
)

// Spec identifies one independent simulation run. It is pure data — two
// equal Specs always produce bit-identical Results — which is what makes
// the content-addressed run cache and the determinism contract sound.
//
// Zero values mean "design point": DivMul 0 acts as 1, WorkScale 0
// follows Scale, Lookahead/NumActive/NumExe 0 keep the DSA defaults.
type Spec struct {
	DSA      string
	Kind     dsa.Kind
	Workload string // "TPC-H-19|20|22", "p2p-31", "p2p-08", "web-Google", "zipf"

	// Scale divides cache capacities (through each DSA's capacity
	// divisor rule); WorkScale divides the workload size and defaults to
	// Scale. They separate only where the evaluation scales a workload
	// further than its cache (web-Google in the Fig 14 sweep).
	Scale     int
	WorkScale int

	// Configuration overrides. DivMul multiplies the capacity divisor
	// (the Fig 7/17 cache-pressure sweeps). Ways overrides the meta-tag
	// associativity (the approx geometry scan); 0 keeps the DSA default.
	DivMul    int
	Mode      ctrl.ExecMode
	Exec      ctrl.ExecPath
	Hardwired bool
	Lookahead int
	NumActive int
	NumExe    int
	Ways      int

	// Approximation tier (internal/approx Engine B). A nonzero WinLen
	// runs only the probe-trace slice [WinStart, WinStart+WinLen) of the
	// workload — a sampled execution window, not the full run. Window
	// fields participate in Key(), so approximate cells live under
	// distinct content-hash keys and can never poison or mask an exact
	// cell in the run cache or a checkpoint. Windows are supported for
	// the hash-index probe DSAs (Widx, DASX).
	WinStart int
	WinLen   int

	// Hardening. Check attaches the internal/check harness (watchdog +
	// invariants); Faults adds seeded fault injection driven by Seed.
	// Each run gets its own harness instance — nothing is shared.
	Check  bool
	Faults check.FaultConfig
	Seed   uint64
}

// Key returns the canonical encoding of the spec: a fixed-order,
// self-delimiting rendering of every field. Equal specs have equal keys
// and distinct specs distinct keys.
func (s Spec) Key() string {
	return fmt.Sprintf("%s/%s[%s] scale=%d work=%d div=%d mode=%d xp=%d hard=%t la=%d act=%d exe=%d ways=%d win=%d+%d chk=%t faults=%.6g,%.6g,%d,%.6g,%.6g,%d seed=%d",
		s.DSA, s.Workload, s.Kind, s.Scale, s.workScale(), s.divMul(),
		s.Mode, s.Exec, s.Hardwired, s.Lookahead, s.NumActive, s.NumExe,
		s.Ways, s.WinStart, s.WinLen,
		s.Check, s.Faults.DropResp, s.Faults.DelayResp, s.Faults.DelayMax,
		s.Faults.ClogQueue, s.Faults.FlipBit, s.Faults.FillTimeout, s.Seed)
}

// Hash returns the content address of the spec: SHA-256 over Key().
func (s Spec) Hash() string {
	h := sha256.Sum256([]byte(s.Key()))
	return hex.EncodeToString(h[:])
}

func (s Spec) workScale() int {
	if s.WorkScale > 0 {
		return s.WorkScale
	}
	return s.Scale
}

func (s Spec) divMul() int {
	if s.DivMul > 0 {
		return s.DivMul
	}
	return 1
}

// CacheDiv maps a workload scale to the cache-capacity divisor that
// keeps the working-set-to-capacity ratio of the paper's configuration
// for the hash-index DSAs (Widx, DASX).
func CacheDiv(scale int) int {
	d := scale / 3
	if d < 1 {
		d = 1
	}
	return d
}

// SpgemmDiv is the capacity divisor rule for the SpGEMM DSAs (SpArch,
// Gamma) and the B+-tree extension, whose hot working sets shrink faster
// than the hash indices'.
func SpgemmDiv(scale int) int {
	d := scale / 8
	if d < 1 {
		d = 1
	}
	return d
}

func (s Spec) checkConfig() *check.Config {
	if !s.Check && !s.Faults.Any() {
		return nil
	}
	cfg := check.Default()
	cfg.Faults = s.Faults
	cfg.Seed = s.Seed
	return cfg
}

func (s Spec) tpchProfile() (hashidx.Profile, error) {
	for _, p := range hashidx.TPCH() {
		if p.Name == s.Workload {
			return p, nil
		}
	}
	return hashidx.Profile{}, fmt.Errorf("runner: unknown %s workload %q", s.DSA, s.Workload)
}

// Execute materialises the spec into a workload plus options and runs it
// on a fresh, fully isolated simulation instance. It is safe to call
// from any number of goroutines concurrently.
func (s Spec) Execute() (dsa.Result, error) {
	return s.execute(nil)
}

// ExecuteTraced is Execute with a controller trace sink attached: the
// run additionally emits its meta-tag reference trace (ctrl.TraceEvent
// stream) to sink. It is the capture path of the approximate evaluation
// tier and is supported for the programmed-X-Cache kind of the
// hash-index DSAs only.
func (s Spec) ExecuteTraced(sink ctrl.TraceSink) (dsa.Result, error) {
	if sink == nil {
		return dsa.Result{}, fmt.Errorf("runner: ExecuteTraced requires a sink")
	}
	if s.DSA != DSAWidx || s.Kind != dsa.KindXCache {
		return dsa.Result{}, fmt.Errorf("runner: tracing is supported for %s[%s] only, not %s[%s]",
			DSAWidx, dsa.KindXCache, s.DSA, s.Kind)
	}
	return s.execute(sink)
}

func (s Spec) execute(sink ctrl.TraceSink) (dsa.Result, error) {
	if s.WinLen != 0 && s.DSA != DSAWidx && s.DSA != DSADASX {
		return dsa.Result{}, fmt.Errorf("runner: %s does not support sampled windows", s.DSA)
	}
	switch s.DSA {
	case DSAWidx:
		p, err := s.tpchProfile()
		if err != nil {
			return dsa.Result{}, err
		}
		w := widx.DefaultWork(p, s.workScale())
		w.WinStart, w.WinLen = s.WinStart, s.WinLen
		opt := widx.Options{
			Cfg:   core.WidxConfig().Scaled(CacheDiv(s.Scale) * s.divMul()),
			Mode:  s.Mode,
			Check: s.checkConfig(),
			Trace: sink,
		}
		s.applyCfg(&opt.Cfg)
		switch s.Kind {
		case dsa.KindXCache:
			return widx.RunXCache(w, opt)
		case dsa.KindAddr:
			return widx.RunAddr(w, opt)
		case dsa.KindBaseline:
			return widx.RunBaseline(w, opt)
		}

	case DSADASX:
		p, err := s.tpchProfile()
		if err != nil {
			return dsa.Result{}, err
		}
		w := widx.DefaultWork(p, s.workScale())
		w.WinStart, w.WinLen = s.WinStart, s.WinLen
		opt := dasx.Options{
			Cfg:       core.DASXConfig().Scaled(CacheDiv(s.Scale) * s.divMul()),
			Lookahead: s.Lookahead,
			Check:     s.checkConfig(),
		}
		s.applyCfg(&opt.Cfg)
		switch s.Kind {
		case dsa.KindXCache:
			return dasx.RunXCache(w, opt)
		case dsa.KindAddr:
			return dasx.RunAddr(w, opt)
		case dsa.KindBaseline:
			return dasx.RunBaseline(w, opt)
		}

	case DSASpArch, DSAGamma:
		if s.Workload != "p2p-31" {
			return dsa.Result{}, fmt.Errorf("runner: unknown %s workload %q", s.DSA, s.Workload)
		}
		alg := spgemm.SpArch
		cfg := core.SpArchConfig()
		if s.DSA == DSAGamma {
			alg = spgemm.Gamma
			cfg = core.GammaConfig()
		}
		w := spgemm.P2PGnutella31(s.workScale())
		opt := spgemm.Options{
			Cfg:       cfg.Scaled(SpgemmDiv(s.Scale) * s.divMul()),
			Lookahead: s.Lookahead,
			Check:     s.checkConfig(),
		}
		s.applyCfg(&opt.Cfg)
		switch s.Kind {
		case dsa.KindXCache:
			return spgemm.RunXCache(alg, w, opt)
		case dsa.KindAddr:
			return spgemm.RunAddr(alg, w, opt)
		case dsa.KindBaseline:
			return spgemm.RunBaseline(alg, w, opt)
		}

	case DSAGraphPulse:
		var w graphpulse.Work
		switch s.Workload {
		case "p2p-08":
			w = graphpulse.P2PGnutella08(s.workScale())
		case "web-Google":
			w = graphpulse.WebGoogle(s.workScale())
		default:
			return dsa.Result{}, fmt.Errorf("runner: unknown %s workload %q", s.DSA, s.Workload)
		}
		cfg := core.GraphPulseConfig()
		if s.Scale > 1 || w.N > cfg.Sets {
			// Keep the collision-free identity-indexed store: sets ≥ 2N.
			sets := 1024
			for sets < 2*w.N {
				sets *= 2
			}
			cfg.Sets = sets
			cfg.Sectors = 2 * sets
		}
		opt := graphpulse.Options{Cfg: cfg, Check: s.checkConfig()}
		s.applyCfg(&opt.Cfg)
		switch s.Kind {
		case dsa.KindXCache:
			return graphpulse.RunXCache(w, opt)
		case dsa.KindAddr:
			return graphpulse.RunAddr(w, opt)
		case dsa.KindBaseline:
			return graphpulse.RunBaseline(w, opt)
		}

	case DSABTreeIdx:
		if s.Workload != "zipf" {
			return dsa.Result{}, fmt.Errorf("runner: unknown %s workload %q", s.DSA, s.Workload)
		}
		w := btreeidx.DefaultWork(s.workScale())
		opt := btreeidx.Options{
			Cfg:   btreeidx.Config().Scaled(SpgemmDiv(s.Scale) * s.divMul()),
			Check: s.checkConfig(),
		}
		s.applyCfg(&opt.Cfg)
		switch s.Kind {
		case dsa.KindXCache:
			return btreeidx.RunXCache(w, opt)
		case dsa.KindAddr:
			return btreeidx.RunAddr(w, opt)
		}

	default:
		return dsa.Result{}, fmt.Errorf("runner: unknown DSA %q", s.DSA)
	}
	return dsa.Result{}, fmt.Errorf("runner: %s does not support kind %q", s.DSA, s.Kind)
}

// applyCfg applies the config-level overrides shared by every DSA.
func (s Spec) applyCfg(cfg *core.Config) {
	cfg.Exec = s.Exec
	cfg.Hardwired = s.Hardwired
	if s.NumActive > 0 {
		cfg.NumActive = s.NumActive
	}
	if s.NumExe > 0 {
		cfg.NumExe = s.NumExe
	}
	if s.Ways > 0 {
		// Associativity override at fixed set count: capacity scales with
		// ways, which is what the approx geometry scan sweeps. Sectors
		// follow so the data RAM keeps its 2× provisioning rule.
		cfg.Sectors = cfg.Sectors / cfg.Ways * s.Ways
		cfg.Ways = s.Ways
	}
}
