package runner

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats summarises what a Runner did: how many simulations were
// launched vs served from the content-addressed cache, how many failed,
// the total simulated cycles and cumulative simulation wall time (sum
// over runs — larger than elapsed time when workers overlap), and the
// peak number of concurrently executing simulations.
type Stats struct {
	Workers     int
	Launched    int
	Cached      int
	Failed      int
	PeakWorkers int
	SimCycles   uint64
	Wall        time.Duration
	Runs        []RunStat
}

// RunStat records one executed (non-cached) simulation.
type RunStat struct {
	Key    string
	Cycles uint64
	Wall   time.Duration
}

// HitRate is the fraction of requests served from the run cache.
func (s Stats) HitRate() float64 {
	total := s.Launched + s.Cached
	if total == 0 {
		return 0
	}
	return float64(s.Cached) / float64(total)
}

// String renders the summary block xcache-bench -v prints.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d workers (peak %d concurrent), %d runs launched, %d cache hits (%.0f%%), %d failed\n",
		s.Workers, s.PeakWorkers, s.Launched, s.Cached, 100*s.HitRate(), s.Failed)
	fmt.Fprintf(&b, "runner: %d simulated cycles, %.2fs cumulative simulation time\n",
		s.SimCycles, s.Wall.Seconds())
	return b.String()
}

// Detail renders the per-run table, slowest first (ties broken by key
// so the rendering is stable for equal durations).
func (s Stats) Detail() string {
	runs := append([]RunStat(nil), s.Runs...)
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Wall != runs[j].Wall {
			return runs[i].Wall > runs[j].Wall
		}
		return runs[i].Key < runs[j].Key
	})
	var b strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&b, "%8.3fs  %12d cyc  %s\n", r.Wall.Seconds(), r.Cycles, r.Key)
	}
	return b.String()
}
