package runner

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stats summarises what a Runner did: how many simulations were
// launched vs served from the content-addressed cache or resumed from
// the on-disk checkpoint, how many failed after the retry policy ran
// out, the retry/eviction/journal activity, the total simulated cycles
// and cumulative simulation wall time (sum over attempts — larger than
// elapsed time when workers overlap), and the peak number of
// concurrently executing simulations.
//
// Counter contract (pinned by TestStatsConsistencyUnderFailure): every
// resolve request increments exactly one of Launched, Cached or Resumed.
// Retried counts extra execution attempts beyond each first one. Failed
// and Evicted count terminal failures (after retries), and stay equal —
// no failed entry survives in the memo table. Checkpointed counts
// successful journal writes; CheckpointErrs successful runs whose
// journal write failed (the in-memory result is still served).
type Stats struct {
	Workers     int
	Launched    int
	Cached      int
	Resumed     int
	Failed      int
	Retried     int
	Evicted     int
	PeakWorkers int

	Checkpointed   int
	CheckpointErrs int

	SimCycles uint64
	Wall      time.Duration
	Runs      []RunStat
}

// RunStat records one execution attempt (non-cached). Err is empty on
// success and the taxonomy kind ("stall", "panic", ...) on failure.
type RunStat struct {
	Key    string
	Cycles uint64
	Wall   time.Duration
	Err    string
}

// HitRate is the fraction of requests served without executing: run
// cache hits plus checkpoint resumes.
func (s Stats) HitRate() float64 {
	total := s.Launched + s.Cached + s.Resumed
	if total == 0 {
		return 0
	}
	return float64(s.Cached+s.Resumed) / float64(total)
}

// String renders the summary block xcache-bench -v prints.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runner: %d workers (peak %d concurrent), %d runs launched, %d cache hits (%.0f%%), %d failed\n",
		s.Workers, s.PeakWorkers, s.Launched, s.Cached, 100*s.HitRate(), s.Failed)
	fmt.Fprintf(&b, "runner: %d simulated cycles, %.2fs cumulative simulation time\n",
		s.SimCycles, s.Wall.Seconds())
	if s.Retried > 0 || s.Evicted > 0 || s.Resumed > 0 || s.Checkpointed > 0 || s.CheckpointErrs > 0 {
		fmt.Fprintf(&b, "runner: %d retried, %d evicted, %d resumed from checkpoint, %d checkpointed",
			s.Retried, s.Evicted, s.Resumed, s.Checkpointed)
		if s.CheckpointErrs > 0 {
			fmt.Fprintf(&b, " (%d journal write failures)", s.CheckpointErrs)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Detail renders the per-attempt table, slowest first (ties broken by
// key so the rendering is stable for equal durations). Failed attempts
// carry their taxonomy kind.
func (s Stats) Detail() string {
	runs := append([]RunStat(nil), s.Runs...)
	sort.Slice(runs, func(i, j int) bool {
		if runs[i].Wall != runs[j].Wall {
			return runs[i].Wall > runs[j].Wall
		}
		return runs[i].Key < runs[j].Key
	})
	var b strings.Builder
	for _, r := range runs {
		fmt.Fprintf(&b, "%8.3fs  %12d cyc  %s", r.Wall.Seconds(), r.Cycles, r.Key)
		if r.Err != "" {
			fmt.Fprintf(&b, "  [FAILED: %s]", r.Err)
		}
		b.WriteString("\n")
	}
	return b.String()
}
