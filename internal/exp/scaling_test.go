package exp

import (
	"fmt"
	"testing"

	"xcache/internal/core"
	"xcache/internal/dsa"
	"xcache/internal/dsa/widx"
	"xcache/internal/exp/runner"
	"xcache/internal/hashidx"
)

// TestCacheDivPreservesRegime is the pure-function half of the scaling
// contract: the capacity divisor tracks the workload divisor so the
// working-set-to-capacity ratio stays inside a fixed band at every
// scale (the rounding floor makes small scales coarser).
func TestCacheDivPreservesRegime(t *testing.T) {
	for s := 6; s <= 1024; s++ {
		ratio := float64(s) / float64(runner.CacheDiv(s))
		if ratio < 3 || ratio > 4 {
			t.Fatalf("scale %d: workload/capacity divisor ratio %.2f outside [3,4]", s, ratio)
		}
		if d, d2 := runner.CacheDiv(s), runner.CacheDiv(2*s); d2 < d {
			t.Fatalf("CacheDiv not monotone: CacheDiv(%d)=%d > CacheDiv(%d)=%d", s, d, 2*s, d2)
		}
	}
	for s := 1; s < 3; s++ {
		if runner.CacheDiv(s) != 1 {
			t.Fatalf("CacheDiv(%d) = %d, want 1", s, runner.CacheDiv(s))
		}
	}
	for s := 8; s <= 1024; s++ {
		if runner.SpgemmDiv(s) < runner.SpgemmDiv(s/2) {
			t.Fatalf("SpgemmDiv not monotone at %d", s)
		}
	}
}

// TestScaledCapacityTracksWorkingSet checks the end-to-end regime: the
// Widx index size over the actual scaled cache capacity (sets × ways ×
// words, after Scaled's power-of-two rounding) stays within a bounded
// band across scales, so every scale exercises the same cache-pressure
// regime the paper's results depend on.
func TestScaledCapacityTracksWorkingSet(t *testing.T) {
	p := hashidx.TPCH()[0]
	minR, maxR := 0.0, 0.0
	for _, s := range []int{6, 12, 25, 50, 100, 200} {
		w := widx.DefaultWork(p, s)
		cfg := core.WidxConfig().Scaled(runner.CacheDiv(s))
		capacity := float64(cfg.Sets * cfg.Ways * cfg.WordsPerSector)
		r := float64(w.NumKeys) / capacity
		if minR == 0 || r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR/minR > 4 {
		t.Fatalf("working-set-to-capacity ratio drifts %.1fx across scales (band limit 4x)", maxR/minR)
	}
}

// kindOrder renders the relative ordering of the three idioms for one
// workload as a string like "xcache<addr<baseline".
func kindOrder(sw *Sweep, dsaName, workload string) (string, bool) {
	type kc struct {
		k dsa.Kind
		c uint64
	}
	var ks []kc
	for _, k := range sweepKinds {
		r, ok := sw.Get(dsaName, workload, k)
		if !ok {
			return "", false
		}
		ks = append(ks, kc{k, r.Cycles})
	}
	// Insertion sort by cycles; stable for the fixed kind order.
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && ks[j].c < ks[j-1].c; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
	s := ""
	for i, e := range ks {
		if i > 0 {
			s += "<"
		}
		s += string(e.k)
	}
	return s, true
}

// TestScaleMetamorphic is the metamorphic half: doubling the scale
// divisor must not change the relative ordering of the three storage
// idioms on any workload (the Fig 14 ranking), nor flip any Fig 4
// meta-tag-vs-address-tag improvement below 1. The doubling is
// testScale/2 → testScale: past testScale the workloads hit their
// minimum-size floors (64-key indices) and leave the cache-pressure
// regime the invariant is about.
func TestScaleMetamorphic(t *testing.T) {
	swB := sweep(t) // testScale
	swA, err := RunSweep(testRunner, testScale/2)
	if err != nil {
		t.Fatal(err)
	}

	for _, r := range swA.Results {
		if r.Kind != dsa.KindXCache {
			continue
		}
		ordA, okA := kindOrder(swA, r.DSA, r.Workload)
		ordB, okB := kindOrder(swB, r.DSA, r.Workload)
		if !okA || !okB {
			t.Errorf("%s/%s missing kinds at one scale", r.DSA, r.Workload)
			continue
		}
		if ordA != ordB {
			t.Errorf("%s/%s: idiom ordering changed with scale: %s (scale %d) vs %s (scale %d)",
				r.DSA, r.Workload, ordA, testScale/2, ordB, testScale)
		}
	}

	for _, sw := range []*Sweep{swA, swB} {
		out := Fig4(sw)
		if g := out.Metrics["l2u_improvement_geomean"]; g <= 1.0 {
			t.Errorf("scale %d: Fig 4 meta-tag improvement geomean %.3f fell to/below 1", sw.Scale, g)
		}
		xs, as := sw.Pairs(dsa.KindAddr)
		for i := range xs {
			if xs[i].AvgLoadToUse == 0 || as[i].AvgLoadToUse == 0 {
				continue
			}
			if imp := as[i].AvgLoadToUse / xs[i].AvgLoadToUse; imp <= 1.0 {
				t.Errorf("scale %d: %s/%s meta-tag l2u improvement %.3f ≤ 1",
					sw.Scale, xs[i].DSA, xs[i].Workload, imp)
			}
		}
	}
}

// TestSpecKeysUnique pins the canonical-encoding contract the run cache
// relies on: distinct sweep and figure points never collide.
func TestSpecKeysUnique(t *testing.T) {
	var specs []runner.Spec
	specs = append(specs, SweepSpecs(25)...)
	specs = append(specs, SweepSpecs(100)...)
	for _, div := range []int{2, 8, 32, 128} {
		specs = append(specs, runner.Spec{
			DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22",
			Scale: 25, DivMul: div,
		})
	}
	seenKey := map[string]string{}
	seenHash := map[string]string{}
	for _, s := range specs {
		k, h := s.Key(), s.Hash()
		if prev, ok := seenKey[k]; ok {
			t.Fatalf("key collision: %q for %+v and %s", k, s, prev)
		}
		seenKey[k] = fmt.Sprintf("%+v", s)
		if prev, ok := seenHash[h]; ok && prev != k {
			t.Fatalf("hash collision: %s for %q and %q", h, k, prev)
		}
		seenHash[h] = k
	}
	// DivMul 0 and 1 are the same point and must share a cache slot.
	a := runner.Spec{DSA: runner.DSAWidx, Kind: dsa.KindXCache, Workload: "TPC-H-22", Scale: 25}
	b := a
	b.DivMul = 1
	if a.Hash() != b.Hash() {
		t.Error("DivMul 0 and 1 should be content-identical")
	}
}
