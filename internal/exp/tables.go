package exp

import (
	"fmt"

	"xcache/internal/area"
	"xcache/internal/core"
	"xcache/internal/energy"
	"xcache/internal/stats"
)

// Table1 prints the qualitative storage-idiom taxonomy (§2.2).
func Table1() *Out {
	t := stats.NewTable("Table 1 — X-Cache vs. state-of-the-art storage idioms",
		"Property", "Caches", "Scratch+DMA", "Scratch+AE", "FIFOs", "X-Cache")
	t.Add("Granularity", "Blocks", "Tiles", "Word", "Elements", "DSA-specific")
	t.Add("Meta-to-Addr", "Always walk+translate", "Always", "Always", "Always", "Only misses")
	t.Add("Behavior", "Dynamic", "Static (affine)", "Static pattern", "Stream", "Dynamic")
	t.Add("Target", "-", "Dense tiles", "Linear structures", "Streams", "Flexible")
	t.Add("Addressing", "Implicit", "Explicit", "Implicit", "Implicit", "Implicit")
	t.Add("Coupling", "Coupled (ld/st)", "Decoupled", "Coupled", "Decoupled", "Decoupled")
	t.Add("Walker", "Hardwired", "No (DSA walks)", "Fixed FSM", "Only FIFO", "Programmable")
	t.Add("Control", "Complex (MSHRs)", "Simple (dbl-buffer)", "Complex (thread)", "Simple", "Simple (routines)")
	t.Add("Multi-fill", "No", "Tile", "Limited", "Only FIFO", "Yes (coroutines)")
	t.Add("LD/ST order", "Arbitrary", "Limited", "On-chip only", "FIFO", "Arbitrary")
	t.Add("Preload", "Separate prefetcher", "Tile DMA", "Limited (credit)", "Limited", "Yes (FSM driven)")
	return &Out{ID: "table1", Table: t}
}

// Table2 prints the X-Cache features each DSA exercises (§5).
func Table2() *Out {
	t := stats.NewTable("Table 2 — X-Cache features benefiting DSAs",
		"DSA", "Tag", "Preload", "Coupling", "Data", "DS")
	t.Add("Widx", "Key", "No", "Coupled", "Rid", "Hash Table")
	t.Add("DASX", "Key", "Yes", "Decoupled", "Rid", "Hash Table")
	t.Add("GraphPulse", "Node Idx", "No", "Decoupled", "Event", "Graph")
	t.Add("SpArch", "Col Idx", "Yes", "Decoupled", "B.Row", "CSR")
	t.Add("Gamma", "Col Idx", "Yes", "Decoupled", "B.Row", "CSR")
	return &Out{ID: "table2", Table: t}
}

// Table3 prints the per-DSA design points actually used by the library.
func Table3() *Out {
	t := stats.NewTable("Table 3 — X-Cache design parameters per DSA",
		"DSA", "#Active", "#Exe", "#Way", "#Set", "#Word")
	for _, c := range core.Table3() {
		t.Add(c.Name, fmt.Sprintf("%d", c.NumActive), fmt.Sprintf("%d", c.NumExe),
			fmt.Sprintf("%d", c.Ways), fmt.Sprintf("%d", c.Sets), fmt.Sprintf("%d", c.WordsPerSector))
	}
	return &Out{ID: "table3", Table: t}
}

// Table4 prints the energy parameters of the model (1 GHz, pJ).
func Table4() *Out {
	p := energy.DefaultParams()
	t := stats.NewTable("Table 4 — Energy parameters (pJ, 1 GHz)", "Event", "Energy")
	t.Add("Register (per bit)", fmt.Sprintf("%.2e", p.RegPerBit))
	t.Add("Add", fmt.Sprintf("%.2e", p.Add))
	t.Add("Mul", fmt.Sprintf("%.1f", p.Mul))
	t.Add("Bitwise op", fmt.Sprintf("%.2e", p.Bitwise))
	t.Add("Shift", fmt.Sprintf("%.2e", p.Shift))
	t.Add("Tag (per byte)", fmt.Sprintf("%.1f", p.TagPerByte))
	t.Add("L1/data RAM (per 32 B)", fmt.Sprintf("%.1f", p.RAMPer32B))
	return &Out{ID: "table4", Table: t}
}

// Fig19 regenerates the FPGA synthesis utilization for the paper's
// synthesis point (#Exe=4, #Active=8) and for each Table 3 design point.
func Fig19() *Out {
	t := stats.NewTable("Fig 19 — FPGA synthesis (Cyclone IV GX class)",
		"Config", "LEs", "Comb", "Registers", "Top reg module", "Top logic module")
	m := map[string]float64{}
	emit := func(name string, in area.Inputs) {
		f := area.EstimateFPGA(in)
		topReg, topLogic := "", ""
		best, bestL := -1, -1
		for _, mod := range area.Modules {
			if f.RegByMod[mod] > best {
				best, topReg = f.RegByMod[mod], mod
			}
			if f.LEByMod[mod] > bestL {
				bestL, topLogic = f.LEByMod[mod], mod
			}
		}
		t.Add(name, stats.I(f.LEs), stats.I(f.Comb), stats.I(f.Registers), topReg, topLogic)
	}
	ref := area.Inputs{NumExe: 4, NumActive: 8}
	emit("paper synth (#Exe=4 #Active=8)", ref)
	for _, c := range core.Table3() {
		emit(c.Name, area.Inputs{NumExe: c.NumExe, NumActive: c.NumActive})
	}
	f := area.EstimateFPGA(ref)
	m["ref_les"] = float64(f.LEs)
	m["ref_regs"] = float64(f.Registers)
	return &Out{ID: "fig19", Table: t, Metrics: m,
		Notes: []string{"Paper: 6985 LEs (6%), 5766 comb (5%), 3457 registers (2%) on EP4CGX150DF31C8; X-Reg dominates registers, Action-Executors dominate logic."}}
}

// Fig20 regenerates the 45 nm ASIC layout summary.
func Fig20() *Out {
	t := stats.NewTable("Fig 20 — ASIC layout @45nm (controller, no RAMs)",
		"Config", "Cells", "Controller mm²", "256K-cache RAM mm²")
	m := map[string]float64{}
	ref := area.Inputs{NumExe: 4, NumActive: 8}
	a := area.EstimateASIC(ref)
	t.Add("paper synth (#Exe=4 #Active=8)", stats.I(a.Cells),
		fmt.Sprintf("%.3f", a.ControllerMM2), fmt.Sprintf("%.2f", area.RAMMM2(256*1024)))
	for _, c := range core.Table3() {
		ai := area.EstimateASIC(area.Inputs{NumExe: c.NumExe, NumActive: c.NumActive})
		ramBytes := c.Sets*c.Ways*c.WordsPerSector*8*2 + c.Sets*c.Ways*12
		t.Add(c.Name, stats.I(ai.Cells), fmt.Sprintf("%.3f", ai.ControllerMM2),
			fmt.Sprintf("%.2f", area.RAMMM2(ramBytes)))
	}
	m["ref_cells"] = float64(a.Cells)
	m["ref_mm2"] = a.ControllerMM2
	return &Out{ID: "fig20", Table: t, Metrics: m,
		Notes: []string{"Paper: 0.11 mm² and 65K cells at 45 nm; a 256K RAM alone needs 0.8 mm²."}}
}
