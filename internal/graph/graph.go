// Package graph provides the graph substrate for the GraphPulse DSA:
// CSR adjacency, synthetic generators matched to the paper's inputs
// (p2p-Gnutella08: N=6.3K NNZ=21K; web-Google: N=916K NNZ=5.1M), a
// reference PageRank, and the event-driven (delta-propagation) PageRank
// semantics GraphPulse accelerates, used to validate the simulated DSA.
package graph

import (
	"math"
	"math/rand"

	"xcache/internal/mem"
	"xcache/internal/sparse"
)

// Graph is a directed graph in CSR form.
type Graph struct {
	N      int
	OutPtr []int64 // len N+1
	OutDst []int64 // len E
}

// E returns the edge count.
func (g *Graph) E() int { return len(g.OutDst) }

// Out returns the out-neighbours of v.
func (g *Graph) Out(v int) []int64 {
	return g.OutDst[g.OutPtr[v]:g.OutPtr[v+1]]
}

// OutDeg returns the out-degree of v.
func (g *Graph) OutDeg(v int) int { return int(g.OutPtr[v+1] - g.OutPtr[v]) }

// FromCSR adapts a square sparse matrix as a graph.
func FromCSR(m *sparse.CSR) *Graph {
	return &Graph{N: m.Rows, OutPtr: m.RowPtr, OutDst: m.Col}
}

// RMAT generates a power-law directed graph with n vertices and e edges.
func RMAT(n, e int, seed int64) *Graph {
	return FromCSR(sparse.RMAT(n, e, seed))
}

// Ring generates a deterministic ring plus chords; useful in tests where
// every vertex must have in- and out-edges.
func Ring(n, chord int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var coords []sparse.Coord
	for v := 0; v < n; v++ {
		coords = append(coords, sparse.Coord{R: v, C: (v + 1) % n, V: 1})
		for c := 0; c < chord; c++ {
			coords = append(coords, sparse.Coord{R: v, C: rng.Intn(n), V: 1})
		}
	}
	return FromCSR(sparse.FromCOO(n, n, coords))
}

// PageRankParams configure both reference implementations.
type PageRankParams struct {
	Damping float64 // default 0.85
	Eps     float64 // convergence threshold on per-vertex residual
	MaxIter int
}

func (p *PageRankParams) defaults() {
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	if p.Eps == 0 {
		p.Eps = 1e-9
	}
	if p.MaxIter == 0 {
		p.MaxIter = 500
	}
}

// PageRank is the classic power-iteration reference.
func PageRank(g *Graph, p PageRankParams) []float64 {
	p.defaults()
	n := float64(g.N)
	rank := make([]float64, g.N)
	next := make([]float64, g.N)
	for v := range rank {
		rank[v] = 1 / n
	}
	for it := 0; it < p.MaxIter; it++ {
		base := (1 - p.Damping) / n
		dangling := 0.0
		for v := range next {
			next[v] = base
		}
		for v := 0; v < g.N; v++ {
			deg := g.OutDeg(v)
			if deg == 0 {
				dangling += rank[v]
				continue
			}
			share := p.Damping * rank[v] / float64(deg)
			for _, w := range g.Out(v) {
				next[w] += share
			}
		}
		spread := p.Damping * dangling / n
		delta := 0.0
		for v := range next {
			next[v] += spread
			delta += math.Abs(next[v] - rank[v])
		}
		rank, next = next, rank
		if delta < p.Eps {
			break
		}
	}
	return rank
}

// DeltaPageRank is the event-driven formulation GraphPulse implements:
// vertices accumulate incoming deltas; when a vertex's accumulated delta
// is applied, it emits damping·delta/deg to each out-neighbour. Events to
// the same vertex coalesce by addition — exactly the merge X-Cache
// performs in its meta-tagged event store. Returns ranks and the number
// of coalesced event applications (a work measure).
func DeltaPageRank(g *Graph, p PageRankParams) ([]float64, int) {
	p.defaults()
	n := float64(g.N)
	rank := make([]float64, g.N)
	delta := make([]float64, g.N)
	for v := range delta {
		rank[v] = (1 - p.Damping) / n
		delta[v] = (1 - p.Damping) / n
	}
	applications := 0
	for it := 0; it < p.MaxIter; it++ {
		// One superstep: drain all pending deltas, generate the next wave.
		nextDelta := make([]float64, g.N)
		active := false
		for v := 0; v < g.N; v++ {
			d := delta[v]
			if math.Abs(d) < p.Eps {
				continue
			}
			applications++
			active = true
			deg := g.OutDeg(v)
			if deg == 0 {
				continue
			}
			share := p.Damping * d / float64(deg)
			for _, w := range g.Out(v) {
				nextDelta[w] += share
				rank[w] += share
			}
		}
		delta = nextDelta
		if !active {
			break
		}
	}
	return rank, applications
}

// Layout is a graph laid out in the memory image.
type Layout struct {
	OutPtr uint64
	OutDst uint64
}

// WriteTo lays the adjacency out in the image.
func (g *Graph) WriteTo(img *mem.Image) Layout {
	l := Layout{OutPtr: img.AllocWords(g.N + 1), OutDst: img.AllocWords(g.E() + 1)}
	for i, p := range g.OutPtr {
		img.W64(l.OutPtr+uint64(i)*8, uint64(p))
	}
	for i, d := range g.OutDst {
		img.W64(l.OutDst+uint64(i)*8, uint64(d))
	}
	return l
}

// BFS returns hop distances from src (math.MaxInt32 for unreachable
// vertices) — the reference for the event-driven SSSP the GraphPulse DSA
// runs with min-coalescing on unit weights.
func BFS(g *Graph, src int) []int64 {
	const inf = int64(1) << 30
	dist := make([]int64, g.N)
	for v := range dist {
		dist[v] = inf
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Out(v) {
			if dist[w] > dist[v]+1 {
				dist[w] = dist[v] + 1
				queue = append(queue, int(w))
			}
		}
	}
	return dist
}
