package graph

import (
	"math"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
)

func TestPageRankSumsToOne(t *testing.T) {
	g := Ring(50, 2, 7)
	r := PageRank(g, PageRankParams{})
	sum := 0.0
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankUniformOnSymmetricRing(t *testing.T) {
	g := Ring(10, 0, 1) // pure ring: all vertices equivalent
	r := PageRank(g, PageRankParams{})
	for v := 1; v < g.N; v++ {
		if math.Abs(r[v]-r[0]) > 1e-9 {
			t.Fatalf("ring not uniform: r[0]=%v r[%d]=%v", r[0], v, r[v])
		}
	}
}

func TestDeltaPageRankMatchesPowerIteration(t *testing.T) {
	f := func(seed int64) bool {
		g := Ring(20+int(uint64(seed)%30), 2, seed)
		p := PageRankParams{Eps: 1e-12, MaxIter: 3000}
		a := PageRank(g, p)
		b, _ := DeltaPageRank(g, p)
		for v := range a {
			if math.Abs(a[v]-b[v]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaPageRankCountsWork(t *testing.T) {
	g := Ring(30, 1, 3)
	_, apps := DeltaPageRank(g, PageRankParams{Eps: 1e-10})
	if apps < g.N {
		t.Fatalf("only %d applications for %d vertices", apps, g.N)
	}
}

func TestRMATGraph(t *testing.T) {
	g := RMAT(512, 2000, 11)
	if g.N != 512 || g.E() != 2000 {
		t.Fatalf("n=%d e=%d", g.N, g.E())
	}
	for v := 0; v < g.N; v++ {
		for _, w := range g.Out(v) {
			if w < 0 || int(w) >= g.N {
				t.Fatalf("edge %d->%d out of range", v, w)
			}
		}
	}
}

func TestWriteToImage(t *testing.T) {
	g := Ring(8, 1, 2)
	img := mem.NewImage()
	l := g.WriteTo(img)
	for v := 0; v <= g.N; v++ {
		if img.R64(l.OutPtr+uint64(v)*8) != uint64(g.OutPtr[v]) {
			t.Fatalf("outptr[%d] mismatch", v)
		}
	}
	for i, d := range g.OutDst {
		if img.R64(l.OutDst+uint64(i)*8) != uint64(d) {
			t.Fatalf("outdst[%d] mismatch", i)
		}
	}
}
