// Package hashidx builds the database hash-index substrate for the Widx
// and DASX DSAs: chained-bucket hash indices laid out in the simulated
// memory image (so walkers genuinely chase next pointers and compare
// keys), plus probe-trace generators parameterized like the paper's
// TPC-H/MonetDB workload (queries 19/20 use string keys whose hashing
// costs ≈60 datapath cycles; query 22 uses numeric keys; probe skew is
// Zipfian).
package hashidx

import (
	"math/bits"
	"math/rand"

	"xcache/internal/mem"
)

// HashMul is the multiplicative-hash constant shared between the Go-side
// index builder and the Widx walker microcode (installed as an environment
// operand so both hash identically).
const HashMul = 0x9E3779B97F4A7C15

// NodeWords is the size of one index node: [key, rid, next].
const NodeWords = 3

// Index is a chained-bucket hash index resident in a memory image.
type Index struct {
	Buckets    int    // power of two
	Shift      uint   // 64 - log2(Buckets)
	Table      uint64 // bucket-head array base address
	Keys       []uint64
	RIDs       map[uint64]uint64 // reference mapping for validation
	nodes      int
	img        *mem.Image
	ChainTotal int // Σ chain lengths (for expected-walk stats)
	ChainMax   int
}

// BucketOf returns the bucket index of key.
func (ix *Index) BucketOf(key uint64) uint64 {
	return (key * HashMul) >> ix.Shift
}

// HeadAddr returns the address of bucket b's head pointer.
func (ix *Index) HeadAddr(b uint64) uint64 { return ix.Table + b*8 }

// Build lays out an index with the given keys, assigning rid(key) = 10·key+1.
// buckets is rounded up to a power of two.
func Build(img *mem.Image, keys []uint64, buckets int) *Index {
	b := 2 // minimum 2: the microcode shr path encodes shifts mod 64
	for b < buckets {
		b <<= 1
	}
	ix := &Index{
		Buckets: b,
		Shift:   uint(64 - bits.TrailingZeros(uint(b))),
		Table:   img.AllocWords(b),
		RIDs:    map[uint64]uint64{},
		img:     img,
	}
	chain := make(map[uint64]int)
	for _, key := range keys {
		if _, dup := ix.RIDs[key]; dup {
			continue
		}
		rid := 10*key + 1
		ix.RIDs[key] = rid
		ix.Keys = append(ix.Keys, key)
		// Prepend a node to the bucket chain; 32-byte aligned so a node is
		// one cache-block access for the address-based baseline.
		node := img.Alloc(NodeWords*8, 32)
		bkt := ix.BucketOf(key)
		head := img.R64(ix.HeadAddr(bkt))
		img.W64(node, key)
		img.W64(node+8, rid)
		img.W64(node+16, head)
		img.W64(ix.HeadAddr(bkt), node)
		ix.nodes++
		chain[bkt]++
	}
	for _, n := range chain {
		ix.ChainTotal += n
		if n > ix.ChainMax {
			ix.ChainMax = n
		}
	}
	return ix
}

// Lookup is the pure-Go reference probe.
func (ix *Index) Lookup(key uint64) (rid uint64, found bool) {
	cur := ix.img.R64(ix.HeadAddr(ix.BucketOf(key)))
	for cur != 0 {
		if ix.img.R64(cur) == key {
			return ix.img.R64(cur + 8), true
		}
		cur = ix.img.R64(cur + 16)
	}
	return 0, false
}

// Nodes returns the number of index nodes.
func (ix *Index) Nodes() int { return ix.nodes }

// Profile describes a probe workload in the style of one TPC-H query.
type Profile struct {
	Name         string
	HashCycles   int     // datapath hashing cost per probe (string keys ≈ 60)
	ZipfS        float64 // probe skew (1.01 ≈ mild, 1.4 ≈ heavy reuse)
	AbsentFrac   float64 // fraction of probes for keys not in the index
	ProbesPerKey float64 // trace length = ProbesPerKey × |keys|
}

// TPCH returns the paper's three query profiles. 19 and 20 carry
// string-key hashing (≈60 cycles on the baseline datapath); 22 is
// numeric. Skews differ so hit rates differ across queries.
func TPCH() []Profile {
	return []Profile{
		{Name: "TPC-H-19", HashCycles: 60, ZipfS: 1.35, AbsentFrac: 0.02, ProbesPerKey: 4},
		{Name: "TPC-H-20", HashCycles: 60, ZipfS: 1.25, AbsentFrac: 0.05, ProbesPerKey: 4},
		{Name: "TPC-H-22", HashCycles: 8, ZipfS: 1.15, AbsentFrac: 0.10, ProbesPerKey: 4},
	}
}

// Trace generates a probe-key sequence over the index per the profile.
func Trace(ix *Index, p Profile, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(len(ix.Keys)-1))
	out := make([]uint64, n)
	// Shuffle key identities so Zipf rank ≠ insertion order.
	perm := rng.Perm(len(ix.Keys))
	for i := range out {
		if rng.Float64() < p.AbsentFrac {
			out[i] = uint64(1<<40) + uint64(rng.Intn(1<<20)) // guaranteed absent
			continue
		}
		out[i] = ix.Keys[perm[zipf.Uint64()]]
	}
	return out
}

// SeqKeys returns [1..n] shifted to avoid key 0 (0 is the null pointer in
// node chains, not a legal key).
func SeqKeys(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}
