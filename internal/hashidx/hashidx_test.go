package hashidx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/mem"
)

func TestBuildAndLookup(t *testing.T) {
	img := mem.NewImage()
	ix := Build(img, SeqKeys(100), 16)
	for _, k := range SeqKeys(100) {
		rid, ok := ix.Lookup(k)
		if !ok || rid != 10*k+1 {
			t.Fatalf("key %d: rid=%d ok=%v", k, rid, ok)
		}
	}
	if _, ok := ix.Lookup(9999); ok {
		t.Fatal("found absent key")
	}
	if ix.Nodes() != 100 {
		t.Fatalf("nodes %d", ix.Nodes())
	}
}

func TestDuplicateKeysIgnored(t *testing.T) {
	img := mem.NewImage()
	ix := Build(img, []uint64{5, 5, 5, 7}, 4)
	if ix.Nodes() != 2 || len(ix.Keys) != 2 {
		t.Fatalf("nodes=%d keys=%d", ix.Nodes(), len(ix.Keys))
	}
}

func TestBucketDistributionAndChains(t *testing.T) {
	img := mem.NewImage()
	ix := Build(img, SeqKeys(1000), 256)
	if ix.ChainMax > 30 {
		t.Fatalf("pathological chain length %d", ix.ChainMax)
	}
	if ix.ChainTotal != 1000 {
		t.Fatalf("chain total %d", ix.ChainTotal)
	}
	// Shift consistency: bucket must be < Buckets.
	for _, k := range ix.Keys {
		if ix.BucketOf(k) >= uint64(ix.Buckets) {
			t.Fatalf("bucket %d out of range", ix.BucketOf(k))
		}
	}
}

// Property: every inserted key is findable with its rid; keys beyond the
// insert set are absent.
func TestLookupProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		img := mem.NewImage()
		rng := rand.New(rand.NewSource(seed))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(rng.Intn(1000) + 1)
		}
		ix := Build(img, keys, 32)
		for _, k := range ix.Keys {
			rid, ok := ix.Lookup(k)
			if !ok || rid != 10*k+1 {
				return false
			}
		}
		_, ok := ix.Lookup(1 << 50)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRespectsProfile(t *testing.T) {
	img := mem.NewImage()
	ix := Build(img, SeqKeys(500), 128)
	p := Profile{Name: "x", ZipfS: 1.3, AbsentFrac: 0.2}
	tr := Trace(ix, p, 5000, 1)
	absent, present := 0, 0
	freq := map[uint64]int{}
	for _, k := range tr {
		if _, ok := ix.RIDs[k]; ok {
			present++
			freq[k]++
		} else {
			absent++
		}
	}
	frac := float64(absent) / float64(len(tr))
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("absent fraction %v, want ≈0.2", frac)
	}
	// Zipf skew: the hottest key should be much hotter than average.
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < 3*present/len(freq) {
		t.Fatalf("no skew: max=%d avg=%d", max, present/len(freq))
	}
}

func TestTPCHProfiles(t *testing.T) {
	ps := TPCH()
	if len(ps) != 3 {
		t.Fatalf("profiles: %d", len(ps))
	}
	if ps[0].HashCycles != 60 || ps[1].HashCycles != 60 {
		t.Fatal("string-key queries must carry the 60-cycle hash cost")
	}
	if ps[2].HashCycles >= 60 {
		t.Fatal("TPC-H-22 is numeric-keyed; hash must be cheap")
	}
}

func TestNodesAlignedForBlockAccess(t *testing.T) {
	img := mem.NewImage()
	ix := Build(img, SeqKeys(50), 8)
	for _, k := range ix.Keys {
		cur := img.R64(ix.HeadAddr(ix.BucketOf(k)))
		for cur != 0 {
			if cur%32 != 0 {
				t.Fatalf("node at %#x not 32B aligned", cur)
			}
			cur = img.R64(cur + 16)
		}
	}
}
