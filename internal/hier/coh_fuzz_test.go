package hier

import (
	"errors"
	"testing"

	"xcache/internal/check"
)

// fuzzKeys bounds the key space so the fuzzer concentrates on sharing
// and conflict patterns instead of disjoint working sets.
const fuzzKeys = 16

// fuzzOp is one decoded fuzz record.
type fuzzOp struct {
	port int
	op   CohOp
	key  uint64
	pay  uint64
}

// decodeCohOps maps raw fuzz bytes onto per-port scripts. Each key is
// bound to one commutative store class (even → Merge, odd → MergeMin), so
// the final state is independent of the interleaving the ports happen to
// produce — the property the twin-rig comparison relies on. Ordering
// among non-commutative plain stores is litmus territory, not fuzz.
func decodeCohOps(data []byte) (nports int, ops []fuzzOp) {
	if len(data) < 5 {
		return 0, nil
	}
	nports = 2 + int(data[0])%3
	rec := data[1:]
	for len(rec) >= 4 && len(ops) < 64 {
		key := uint64(rec[2]) % fuzzKeys
		op := OpLoad
		if rec[1]%2 == 1 {
			if key%2 == 0 {
				op = OpMerge
			} else {
				op = OpMergeMin
			}
		}
		ops = append(ops, fuzzOp{
			port: int(rec[0]) % nports,
			op:   op,
			key:  key,
			pay:  uint64(rec[3]),
		})
		rec = rec[4:]
	}
	return nports, ops
}

// fuzzSeed is the deterministic initial value of key i.
func fuzzSeed(i int) uint64 { return uint64(1000 + i*13) }

// fuzzModel computes the interleaving-independent final state.
func fuzzModel(ops []fuzzOp) [fuzzKeys]uint64 {
	var final [fuzzKeys]uint64
	for i := range final {
		final[i] = fuzzSeed(i)
	}
	for _, o := range ops {
		switch o.op {
		case OpMerge:
			final[o.key] += o.pay
		case OpMergeMin:
			if o.pay < final[o.key] {
				final[o.key] = o.pay
			}
		}
	}
	return final
}

// fuzzRig runs the ops on a hierarchy with nports ports (ops whose port
// exceeds nports wrap) and returns the final state, read back coherently
// through port 0.
func fuzzRig(nports int, ops []fuzzOp, faults CohFaults) ([fuzzKeys]uint64, *CohSystem, error) {
	var final [fuzzKeys]uint64
	s, err := NewCohSystem(CohConfig{
		Ports:   nports,
		L1:      L1Config{Sets: 2, Ways: 1, WordsPerSector: 1},
		L2Sets:  8,
		L2Ways:  2,
		NumKeys: fuzzKeys,
		Faults:  faults,
	})
	if err != nil {
		return final, nil, err
	}
	for i := 0; i < fuzzKeys; i++ {
		s.Seed(i, fuzzSeed(i))
	}
	scripts := make([][]ScriptOp, nports)
	for _, o := range ops {
		p := o.port % nports
		scripts[p] = append(scripts[p], ScriptOp{Op: o.op, Key: o.key, Payload: o.pay})
	}
	h := check.Attach(s.K, check.Default())
	if _, err := RunScripts(s, h, scripts, 500_000); err != nil {
		return final, s, err
	}
	// Read the final state back through port 0: these loads recall any
	// Modified line still parked in another port.
	var drain []ScriptOp
	for i := 0; i < fuzzKeys; i++ {
		drain = append(drain, Ld(uint64(i)))
	}
	res, err := RunScripts(s, h, [][]ScriptOp{drain}, 500_000)
	if err != nil {
		return final, s, err
	}
	copy(final[:], res[0])
	return final, s, nil
}

// FuzzCoherence drives random multi-port workloads through twin rigs —
// the coherent N-port hierarchy and a flat single-port hierarchy (trivially
// coherent: no sharing exists) — and requires both to agree with the
// functional model. A third run injects snoop drops: it must either
// recover through retries and still agree, or trap with a typed liveness
// violation — silent divergence is the one forbidden outcome.
func FuzzCoherence(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 50, 1, 1, 0, 60, 2, 1, 1, 9, 0, 0, 1, 70})
	f.Add([]byte{1, 0, 1, 2, 5, 1, 1, 3, 7, 2, 1, 2, 3, 0, 1, 3, 11, 1, 0, 2, 0})
	f.Add([]byte{2, 3, 1, 15, 255, 2, 1, 15, 1, 1, 1, 14, 9, 0, 0, 15, 0, 4, 1, 14, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		nports, ops := decodeCohOps(data)
		if len(ops) == 0 {
			t.Skip()
		}
		want := fuzzModel(ops)

		coh, _, err := fuzzRig(nports, ops, CohFaults{})
		if err != nil {
			t.Fatalf("coherent rig failed: %v", err)
		}
		flat, _, err := fuzzRig(1, ops, CohFaults{})
		if err != nil {
			t.Fatalf("flat oracle rig failed: %v", err)
		}
		for i := 0; i < fuzzKeys; i++ {
			if coh[i] != want[i] || flat[i] != want[i] {
				t.Fatalf("key %d: coherent=%d flat=%d model=%d (ports=%d ops=%v)",
					i, coh[i], flat[i], want[i], nports, ops)
			}
		}

		// Fault run: seeded snoop drops. Completion requires equality;
		// a latched liveness violation is the sanctioned trap path.
		seed := uint64(len(data))
		for _, b := range data {
			seed = seed*31 + uint64(b)
		}
		faulty, _, err := fuzzRig(nports, ops, CohFaults{DropSnoop: 0.3, Seed: seed})
		if err != nil {
			var cv *check.CoherenceViolation
			if errors.As(err, &cv) && cv.Rule == "liveness" {
				return // trapped, not diverged
			}
			t.Fatalf("faulty rig failed outside the liveness trap: %v", err)
		}
		for i := 0; i < fuzzKeys; i++ {
			if faulty[i] != want[i] {
				t.Fatalf("fault run silently diverged on key %d: got %d want %d", i, faulty[i], want[i])
			}
		}
	})
}

// TestCohFuzzCorpusSmoke replays the committed corpus deterministically
// (the fuzz entries also run under `go test -run Fuzz`, but this pins an
// explicit high-contention case with a visible failure message).
func TestCohFuzzCorpusSmoke(t *testing.T) {
	data := []byte{2}
	for i := 0; i < 48; i++ {
		data = append(data, byte(i*5), byte(i), byte(i%6), byte(i*3+1))
	}
	nports, ops := decodeCohOps(data)
	want := fuzzModel(ops)
	got, s, err := fuzzRig(nports, ops, CohFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("final state diverged:\ngot  %v\nwant %v", got, want)
	}
	if s.Dir.Stats().Invals == 0 && s.Dir.Stats().Downgrades == 0 {
		t.Error("high-contention workload exercised no recalls")
	}
}
