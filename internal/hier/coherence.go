// Coherent multi-level hierarchy: per-walker L1 X-Caches over a shared
// inclusive L2, kept consistent by a MESI-lite directory protocol.
//
// The paper's compositions (§6) are read-only upstream — MetaL1 forwards
// every store downstream. This file adds the missing write path: each
// walker (port) gets a private CohL1 that caches elements in Shared or
// Modified state, and a Directory serializes per-key transactions over
// the shared L2:
//
//   - states are M / S / I on the L1 meta-tag sectors (metatag.Entry.State
//     carries MesiS/MesiM; Dirty ≡ M);
//   - writes invalidate-on-allocate: a store grant invalidates every other
//     copy before the requester gets M;
//   - the L2 is inclusive: its eviction hook (ctrl.SetEvictHook)
//     back-invalidates L1 copies and flushes a dirty victim to the
//     element's home address, so a later re-walk observes the store;
//   - dropped invalidations (fault injection) retry on a timeout and,
//     past the retry budget, latch a typed liveness violation — the
//     protocol traps rather than silently diverging.
//
// The Directory implements check.CoherenceSource, so check.Attach audits
// single-writer, inclusion, and no-stale-fill invariants every cycle.
package hier

import (
	"fmt"

	"xcache/internal/check"
	"xcache/internal/dataram"
	"xcache/internal/energy"
	"xcache/internal/metatag"
	"xcache/internal/sim"
)

// L1 coherence states, stored in metatag.Entry.State. Invalid is simply
// absence from the array.
const (
	MesiS = 1 // Shared: read-only copy, other ports may hold it too
	MesiM = 2 // Modified: sole copy, locally dirty
)

// CohOp is a coherent port operation.
type CohOp uint8

// The coherent port operations. Stores are applied locally under M; the
// merge flavors mirror ctrl.MetaStoreMerge/MergeMin.
const (
	OpLoad CohOp = iota
	OpStore
	OpMerge
	OpMergeMin
)

func (o CohOp) isStore() bool { return o != OpLoad }

// CohReq is one request into a coherent L1 port.
type CohReq struct {
	ID      uint64
	Op      CohOp
	Key     metatag.Key
	Payload uint64
}

// CohResp answers a CohReq: loads return the element value, stores the
// post-store value.
type CohResp struct {
	ID    uint64
	Value uint64
}

// --- protocol messages (L1 ⇄ directory) ---

type dirReq struct {
	key   metatag.Key
	write bool
}

type dirGrant struct {
	key   metatag.Key
	state int8 // MesiS or MesiM
	val   uint64
}

const (
	snoopInval uint8 = iota + 1 // drop the copy, return a Modified value
	snoopDown                   // M → S, return the Modified value
)

type snoopMsg struct {
	key  metatag.Key
	kind uint8
	seq  uint64
}

type snoopAck struct {
	key  metatag.Key
	seq  uint64
	had  bool // the port still held the line when the snoop arrived
	wasM bool
	val  uint64 // valid iff had && wasM
}

// evictMsg notifies the directory that a port silently dropped a line
// (L1 capacity eviction); a Modified victim carries its value.
type evictMsg struct {
	key  metatag.Key
	wasM bool
	val  uint64
}

// CohL1Stats counts one coherent port's activity.
type CohL1Stats struct {
	Loads, Stores uint64
	Hits, Misses  uint64
	Upgrades      uint64 // stores that hit Shared and requested M
	Snoops        uint64
	Evictions     uint64
}

type cohMSHR struct {
	waiters []CohReq
	want    int8
	issued  bool
}

type cohPending struct {
	readyAt sim.Cycle
	resp    CohResp
}

// CohL1 is one walker's private coherent level: a small meta-tagged
// array holding single-word elements in Shared or Modified state. All
// traffic below it goes through the directory.
type CohL1 struct {
	Port  int
	Cfg   L1Config
	Tags  *metatag.Array
	Data  *dataram.RAM
	ReqQ  *sim.Queue[CohReq]
	RespQ *sim.Queue[CohResp]

	dirQ   *sim.Queue[dirReq]   // miss/upgrade requests to the directory
	grants *sim.Queue[dirGrant] // directory grants
	snoops *sim.Queue[snoopMsg] // directory-initiated recalls
	acks   *sim.Queue[snoopAck]
	evicts *sim.Queue[evictMsg]

	maxWaiters int
	mshrs      map[metatag.Key]*cohMSHR
	issueQ     []metatag.Key // deterministic re-issue order for dirQ pushes
	pend       []cohPending
	events     []check.CohEvent
	stats      CohL1Stats
}

func newCohL1(k *sim.Kernel, port int, cfg L1Config, maxWaiters int, meter *energy.Counters) *CohL1 {
	cfg.defaults()
	name := fmt.Sprintf("coh%d", port)
	l := &CohL1{
		Port:       port,
		Cfg:        cfg,
		Tags:       metatag.New(metatag.Config{Sets: cfg.Sets, Ways: cfg.Ways, KeyWords: cfg.KeyWords}, meter),
		Data:       dataram.New(dataram.Config{Sectors: cfg.Sectors, WordsPerSector: 1}, meter),
		ReqQ:       sim.NewQueue[CohReq](k, name+".req", cfg.ReqDepth),
		RespQ:      sim.NewQueue[CohResp](k, name+".resp", 64),
		dirQ:       sim.NewQueue[dirReq](k, name+".dir", 16),
		grants:     sim.NewQueue[dirGrant](k, name+".grant", 16),
		snoops:     sim.NewQueue[snoopMsg](k, name+".snoop", 16),
		acks:       sim.NewQueue[snoopAck](k, name+".ack", 16),
		evicts:     sim.NewQueue[evictMsg](k, name+".evict", 16),
		maxWaiters: maxWaiters,
		mshrs:      map[metatag.Key]*cohMSHR{},
	}
	k.Add(l)
	return l
}

// Stats returns a copy of the statistics.
func (l *CohL1) Stats() CohL1Stats { return l.stats }

// Idle reports whether no requests are queued or outstanding.
func (l *CohL1) Idle() bool {
	return l.ReqQ.Len() == 0 && len(l.mshrs) == 0 && len(l.pend) == 0
}

// ActivityCount implements the watchdog's progress counter.
func (l *CohL1) ActivityCount() uint64 {
	s := &l.stats
	return s.Loads + s.Stores + s.Hits + s.Snoops + s.Evictions
}

// Tick implements sim.Component.
func (l *CohL1) Tick(cy sim.Cycle) {
	// Matured responses out.
	keep := l.pend[:0]
	for _, p := range l.pend {
		if p.readyAt <= cy && l.RespQ.CanPush() {
			l.RespQ.MustPush(p.resp)
			continue
		}
		keep = append(keep, p)
	}
	l.pend = keep

	// Grants strictly before snoops: the directory serializes per key, so
	// a snoop in flight always logically follows any grant in flight (the
	// snooping transaction could only start after the granting one
	// finished). The two travel in separate queues, so enforce the order
	// here — otherwise an invalidation could overtake the grant it
	// follows and resurrect a stale copy.
	l.handleGrants(cy)
	l.handleSnoops()

	// Re-issue directory requests for MSHRs that could not push earlier
	// (queue full) or were re-armed by an upgrade.
	rest := l.issueQ[:0]
	for _, key := range l.issueQ {
		m, ok := l.mshrs[key]
		if !ok || m.issued {
			continue
		}
		if !l.dirQ.CanPush() {
			rest = append(rest, key)
			continue
		}
		l.dirQ.MustPush(dirReq{key: key, write: m.want == MesiM})
		m.issued = true
	}
	l.issueQ = rest

	l.admit(cy)
}

// handleSnoops services directory recalls: invalidations drop the copy,
// downgrades demote M to S; either returns a Modified value.
func (l *CohL1) handleSnoops() {
	for {
		if l.grants.Len() > 0 {
			return // a blocked grant must not be overtaken (see Tick)
		}
		s, ok := l.snoops.Peek()
		if !ok || !l.acks.CanPush() {
			return
		}
		l.snoops.Pop()
		l.stats.Snoops++
		ack := snoopAck{key: s.key, seq: s.seq}
		if e := l.Tags.Probe(s.key); e != nil {
			ack.had = true
			ack.wasM = e.State == MesiM
			if ack.wasM {
				ack.val = l.Data.Read(l.Data.SectorWordBase(e.SectorBase))
			}
			switch s.kind {
			case snoopInval:
				l.Data.Free(e.SectorBase, e.SectorCount)
				l.Tags.Dealloc(e)
			case snoopDown:
				e.State = MesiS
				e.Dirty = false
			}
		}
		l.acks.MustPush(ack)
	}
}

// handleGrants installs directory grants and serves the waiting requests.
func (l *CohL1) handleGrants(cy sim.Cycle) {
	for {
		g, ok := l.grants.Peek()
		if !ok || !l.evicts.CanPush() {
			return
		}
		l.grants.Pop()
		e := l.Tags.Probe(g.key)
		if e == nil {
			e = l.install(g.key, int(g.state), g.val)
		} else {
			// Upgrade in place: the Shared copy's value is already current
			// (the directory invalidated every writer before granting).
			e.State = int(g.state)
		}
		e.Dirty = g.state == MesiM
		l.events = append(l.events, check.CohEvent{Cycle: cy, Port: l.Port,
			Key: [2]uint64(g.key), Kind: check.CohEvGrant, State: g.state, Value: g.val})

		m := l.mshrs[g.key]
		if m == nil {
			continue // grant for a dropped MSHR cannot happen; tolerate anyway
		}
		done := true
		for i, w := range m.waiters {
			if w.Op.isStore() && e.State != MesiM {
				// A store queued behind a read grant: keep the Shared copy
				// and go back to the directory for ownership.
				m.waiters = append([]CohReq(nil), m.waiters[i:]...)
				m.want = MesiM
				m.issued = false
				l.issueQ = append(l.issueQ, g.key)
				l.stats.Upgrades++
				done = false
				break
			}
			l.serveNow(cy, e, w)
		}
		if done {
			delete(l.mshrs, g.key)
		}
	}
}

// admit looks up one new request per cycle.
func (l *CohL1) admit(cy sim.Cycle) {
	req, ok := l.ReqQ.Peek()
	if !ok {
		return
	}
	if m, exists := l.mshrs[req.Key]; exists {
		if len(m.waiters) >= l.maxWaiters {
			return // backpressure: hold in the request queue
		}
		l.ReqQ.Pop()
		l.count(req.Op)
		// A store joining a read MSHR upgrades when its grant reaches it.
		m.waiters = append(m.waiters, req)
		return
	}
	e := l.Tags.Probe(req.Key)
	if e != nil && (e.State == MesiM || !req.Op.isStore()) {
		l.ReqQ.Pop()
		l.count(req.Op)
		l.Tags.Touch(e)
		l.Tags.Account(true)
		l.stats.Hits++
		l.serveNow(cy, e, req)
		return
	}
	if len(l.mshrs) >= l.Cfg.MaxOutstanding {
		return
	}
	l.ReqQ.Pop()
	l.count(req.Op)
	want := int8(MesiS)
	if req.Op.isStore() {
		want = MesiM
	}
	if e != nil {
		l.stats.Upgrades++ // store hit Shared: request ownership, keep the copy
	} else {
		l.stats.Misses++
	}
	l.mshrs[req.Key] = &cohMSHR{waiters: []CohReq{req}, want: want}
	l.issueQ = append(l.issueQ, req.Key)
}

func (l *CohL1) count(op CohOp) {
	if op.isStore() {
		l.stats.Stores++
	} else {
		l.stats.Loads++
	}
}

// serveNow applies one request against a resident entry and schedules its
// response. Stores require M (guaranteed by the callers).
func (l *CohL1) serveNow(cy sim.Cycle, e *metatag.Entry, req CohReq) {
	w := l.Data.SectorWordBase(e.SectorBase)
	v := l.Data.Read(w)
	if req.Op.isStore() {
		switch req.Op {
		case OpStore:
			v = req.Payload
		case OpMerge:
			v += req.Payload
		case OpMergeMin:
			if req.Payload < v {
				v = req.Payload
			}
		}
		l.Data.Write(w, v)
		e.Dirty = true
		l.events = append(l.events, check.CohEvent{Cycle: cy, Port: l.Port,
			Key: [2]uint64(req.Key), Kind: check.CohEvApply, State: MesiM, Value: v})
	} else {
		l.events = append(l.events, check.CohEvent{Cycle: cy, Port: l.Port,
			Key: [2]uint64(req.Key), Kind: check.CohEvHit, State: int8(e.State), Value: v})
	}
	l.pend = append(l.pend, cohPending{readyAt: cy + sim.Cycle(l.Cfg.HitLatency),
		resp: CohResp{ID: req.ID, Value: v}})
}

// install allocates a granted line, notifying the directory of the victim
// it displaces (callers guarantee evicts.CanPush).
func (l *CohL1) install(key metatag.Key, state int, val uint64) *metatag.Entry {
	e, ev, ok := l.Tags.Alloc(key, state, metatag.NoWalker)
	if !ok {
		panic("hier: coherent L1 set full of transient entries")
	}
	if ev != nil {
		msg := evictMsg{key: ev.Key, wasM: ev.Dirty}
		if ev.SectorCount > 0 {
			if msg.wasM {
				msg.val = l.Data.Read(l.Data.SectorWordBase(ev.SectorBase))
			}
			l.Data.Free(ev.SectorBase, ev.SectorCount)
		}
		l.evicts.MustPush(msg)
		l.stats.Evictions++
	}
	base, ok := l.Data.Alloc(1)
	if !ok {
		panic("hier: coherent L1 data RAM exhausted (sectors must cover sets×ways)")
	}
	e.SectorBase = base
	e.SectorCount = 1
	l.Data.Write(l.Data.SectorWordBase(base), val)
	return e
}
