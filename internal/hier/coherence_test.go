package hier

import (
	"errors"
	"testing"

	"xcache/internal/check"
)

// cohRun builds a system, seeds keys 0..n-1 with seed(i), and runs the
// scripts under full invariant checking.
func cohRun(t *testing.T, cfg CohConfig, seed func(int) uint64, scripts [][]ScriptOp) (*CohSystem, [][]uint64) {
	t.Helper()
	s, err := NewCohSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Cfg.NumKeys; i++ {
		s.Seed(i, seed(i))
	}
	h := check.Attach(s.K, check.Default())
	res, err := RunScripts(s, h, scripts, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return s, res
}

// TestCohReadSharing: concurrent loads of one key leave both ports
// Shared, served by a single L2 walk.
func TestCohReadSharing(t *testing.T) {
	s, res := cohRun(t, CohConfig{}, func(i int) uint64 { return uint64(i + 100) }, [][]ScriptOp{
		{Ld(4), Ld(4), Ld(4)},
		{Ld(4), Ld(4)},
	})
	for p, vals := range res {
		for i, v := range vals {
			if v != 104 {
				t.Errorf("port %d load %d = %d, want 104", p, i, v)
			}
		}
	}
	if st := s.L2.Ctrl.Stats(); st.Misses != 1 {
		t.Errorf("L2 walks = %d, want 1 (one fill serves every sharer)", st.Misses)
	}
	if inv := s.Dir.Stats().Invals; inv != 0 {
		t.Errorf("%d invalidations for a read-only workload", inv)
	}
	// Repeat loads hit locally: 5 loads, 2 directory read transactions.
	if hits := s.Ports[0].Stats().Hits + s.Ports[1].Stats().Hits; hits != 3 {
		t.Errorf("L1 hits = %d, want 3", hits)
	}
}

// TestCohStoreInvalidates: a store recalls every reader's copy; the
// readers' next loads observe the new value.
func TestCohStoreInvalidates(t *testing.T) {
	s, res := cohRun(t, CohConfig{}, func(int) uint64 { return 9 }, [][]ScriptOp{
		{Ld(2), Poll(2, 77)},
		{Ld(2), St(2, 77)},
	})
	if res[0][0] != 9 || res[1][0] != 9 {
		t.Fatalf("initial loads = %d/%d, want 9", res[0][0], res[1][0])
	}
	if res[0][1] != 77 {
		t.Fatalf("port 0 re-read %d after the store, want 77", res[0][1])
	}
	if s.Dir.Stats().Invals == 0 {
		t.Error("store over a shared copy sent no invalidation")
	}
}

// TestCohL1EvictionWriteback: a Modified line silently evicted from a
// one-entry L1 reaches the L2, and another port reads it back intact.
func TestCohL1EvictionWriteback(t *testing.T) {
	cfg := CohConfig{L1: L1Config{Sets: 1, Ways: 1, WordsPerSector: 1}}
	s, res := cohRun(t, cfg, func(int) uint64 { return 0 }, [][]ScriptOp{
		// Same-set stores: the second evicts the first's M line.
		{St(1, 11), St(2, 22), Ld(1)},
		{Poll(1, 11), Poll(2, 22)},
	})
	if res[0][2] != 11 {
		t.Errorf("port 0 re-read key 1 = %d, want 11", res[0][2])
	}
	st := s.Dir.Stats()
	if st.L1Evictions == 0 {
		t.Error("no L1 eviction despite a one-entry cache")
	}
	if st.Writebacks == 0 {
		t.Error("evicted Modified value never written back to the L2")
	}
}

// TestCohMergeSerialization: merges from every port land exactly once
// regardless of interleaving; MergeMin keeps the global minimum.
func TestCohMergeSerialization(t *testing.T) {
	_, res := cohRun(t, CohConfig{Ports: 3}, func(int) uint64 { return 50 }, [][]ScriptOp{
		{Merge(0, 1), MergeMin(1, 30), Poll(0, 50+1+2+3)},
		{Merge(0, 2), MergeMin(1, 40), Poll(0, 56)},
		{Merge(0, 3), MergeMin(1, 35), Poll(0, 56), Poll(1, 30)},
	})
	if got := res[2][3]; got != 30 {
		t.Errorf("MergeMin converged to %d, want 30", got)
	}
}

// TestCohFaultRetry: with half the snoops dropped, the timeout+resend
// path recovers and the run still produces coherent values.
func TestCohFaultRetry(t *testing.T) {
	cfg := CohConfig{SnoopTimeout: 16, Faults: CohFaults{DropSnoop: 0.5, Seed: 7}}
	s, res := cohRun(t, cfg, func(int) uint64 { return 5 }, [][]ScriptOp{
		{Ld(0), Poll(0, 60)},
		{Ld(0), St(0, 60)},
	})
	if res[0][1] != 60 {
		t.Errorf("re-read %d after faulty invalidation, want 60", res[0][1])
	}
	st := s.Dir.Stats()
	if st.SnoopDrops == 0 {
		t.Fatal("fault injection armed but nothing was dropped")
	}
	if st.SnoopRetry == 0 {
		t.Error("drops occurred but no snoop was retried")
	}
}

// TestCohFaultLiveness: with every snoop dropped, the retry budget runs
// out and the directory latches a typed liveness violation — the protocol
// traps instead of silently diverging. The supervised runner classifies
// it as FailCoherence.
func TestCohFaultLiveness(t *testing.T) {
	s, err := NewCohSystem(CohConfig{
		SnoopTimeout:    8,
		MaxSnoopRetries: 3,
		Faults:          CohFaults{DropSnoop: 1.0, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := check.Attach(s.K, check.Default())
	_, err = RunScripts(s, h, [][]ScriptOp{
		{Ld(0), Poll(0, 60)},
		{Ld(0), St(0, 60)},
	}, 50_000)
	if err == nil {
		t.Fatal("dropped invalidations silently succeeded")
	}
	var cv *check.CoherenceViolation
	if !errors.As(err, &cv) || cv.Rule != "liveness" {
		t.Fatalf("error %v, want a liveness CoherenceViolation", err)
	}
	// The supervised Run classifies the latched violation as FailCoherence.
	ok, rep := check.Run(h, s.K, func() bool { return false }, 10)
	if ok || rep == nil || rep.Kind != check.FailCoherence {
		t.Fatalf("supervised run reported %+v, want FailCoherence", rep)
	}
}

// TestCohSnapshotShape: the snapshot is sorted, sized to the port count,
// and reflects resident states.
func TestCohSnapshotShape(t *testing.T) {
	s, _ := cohRun(t, CohConfig{}, func(int) uint64 { return 1 }, [][]ScriptOp{
		{Ld(3), St(6, 2)},
		{Ld(3)},
	})
	snap := s.Dir.CohSnapshot()
	var sawShared, sawMod bool
	last := uint64(0)
	for i, ln := range snap.Lines {
		if i > 0 && ln.Key[0] < last {
			t.Fatal("snapshot lines not sorted by key")
		}
		last = ln.Key[0]
		if len(ln.L1) != 2 {
			t.Fatalf("line has %d port states, want 2", len(ln.L1))
		}
		if ln.Key[0] == 3 && ln.L1[0] == check.CohShared && ln.L1[1] == check.CohShared {
			sawShared = true
		}
		if ln.Key[0] == 6 && ln.L1[0] == check.CohMod {
			sawMod = true
		}
	}
	if !sawShared || !sawMod {
		t.Errorf("snapshot missing expected states (shared=%v mod=%v)", sawShared, sawMod)
	}
}
