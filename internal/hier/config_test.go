package hier

import (
	"errors"
	"strings"
	"testing"

	"xcache/internal/energy"
	"xcache/internal/sim"
)

// TestL1ConfigValidate: every rejected geometry names the offending field
// in a typed *ConfigError; sane geometries (including ones relying on the
// defaulting pass) sail through.
func TestL1ConfigValidate(t *testing.T) {
	cases := []struct {
		name      string
		cfg       L1Config
		wantField string // "" → valid
	}{
		{"minimal", L1Config{Sets: 1, Ways: 1, WordsPerSector: 1}, ""},
		{"typical", L1Config{Sets: 8, Ways: 2, WordsPerSector: 4}, ""},
		{"explicit-everything", L1Config{Sets: 16, Ways: 4, KeyWords: 2,
			WordsPerSector: 8, Sectors: 256, HitLatency: 3, ReqDepth: 32,
			MaxOutstanding: 16}, ""},
		{"zero-sets", L1Config{Sets: 0, Ways: 2, WordsPerSector: 1}, "Sets"},
		{"negative-sets", L1Config{Sets: -8, Ways: 2, WordsPerSector: 1}, "Sets"},
		{"non-pow2-sets", L1Config{Sets: 12, Ways: 2, WordsPerSector: 1}, "Sets"},
		{"zero-ways", L1Config{Sets: 8, Ways: 0, WordsPerSector: 1}, "Ways"},
		{"negative-ways", L1Config{Sets: 8, Ways: -1, WordsPerSector: 1}, "Ways"},
		{"zero-sector-words", L1Config{Sets: 8, Ways: 2, WordsPerSector: 0}, "WordsPerSector"},
		{"negative-sectors", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, Sectors: -4}, "Sectors"},
		{"keywords-too-wide", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, KeyWords: 3}, "KeyWords"},
		{"negative-keywords", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, KeyWords: -1}, "KeyWords"},
		{"negative-latency", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, HitLatency: -2}, "HitLatency"},
		{"negative-depth", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, ReqDepth: -1}, "ReqDepth"},
		{"negative-outstanding", L1Config{Sets: 8, Ways: 2, WordsPerSector: 1, MaxOutstanding: -3}, "MaxOutstanding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.wantField == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %v (%T), want *ConfigError", err, err)
			}
			if ce.Field != tc.wantField {
				t.Fatalf("flagged field %q, want %q (err: %v)", ce.Field, tc.wantField, ce)
			}
			if !strings.Contains(ce.Error(), "L1Config."+tc.wantField) {
				t.Fatalf("message %q does not name the field", ce.Error())
			}
		})
	}
}

// TestL1ConfigValidateAtBuild: both constructors that size arrays from an
// L1Config reject a broken geometry before building anything.
func TestL1ConfigValidateAtBuild(t *testing.T) {
	bad := L1Config{Sets: 0, Ways: 2, WordsPerSector: 1}

	k := sim.NewKernel()
	if _, err := NewMetaL1(k, bad, nil, &energy.Counters{}); err == nil {
		t.Fatal("NewMetaL1 accepted a zero-set geometry")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "Sets" {
			t.Fatalf("NewMetaL1 error %v, want *ConfigError on Sets", err)
		}
	}

	if _, err := NewCohSystem(CohConfig{L1: bad}); err == nil {
		t.Fatal("NewCohSystem accepted a zero-set L1 geometry")
	} else {
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "Sets" {
			t.Fatalf("NewCohSystem error %v, want *ConfigError on Sets", err)
		}
	}
}
