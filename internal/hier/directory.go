package hier

import (
	"fmt"
	"sort"

	"xcache/internal/check"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// CohFaults configures protocol-level fault injection: each snoop push is
// dropped with probability DropSnoop (deterministically, from Seed). A
// dropped snoop is recovered by the directory's timeout+resend; past the
// retry budget the directory latches a liveness CoherenceViolation — it
// traps rather than letting the hierarchy silently diverge.
type CohFaults struct {
	DropSnoop float64
	Seed      uint64
}

// CohStats counts directory activity.
type CohStats struct {
	Txns        uint64 // transactions started (reads + writes)
	Grants      uint64
	Invals      uint64 // invalidation snoops sent (first sends, not retries)
	Downgrades  uint64 // M→S snoops sent
	Writebacks  uint64 // recalled M values written back into the L2
	BackInvals  uint64 // inclusion recalls after an L2 eviction
	Flushes     uint64 // dirty values flushed to their home address
	SnoopRetry  uint64
	SnoopDrops  uint64 // injected drops (including retried sends)
	L1Evictions uint64
}

// Transaction phases.
const (
	phSnoop uint8 = iota + 1 // waiting for snoop acks (and a recalled value)
	phL2                     // waiting for the L2's MetaLoad answer
	phGrant                  // waiting for room in the requester's grant queue
)

type dirTxn struct {
	key     metatag.Key
	port    int
	write   bool
	isBI    bool // back-invalidation (inclusion recall), no grant
	phase   uint8
	pending int // outstanding snoop acks
	needVal bool
	haveVal bool
	val     uint64
	haveL2  bool
}

type dirLine struct {
	sharers   uint64 // bitmask of ports holding S
	owner     int    // port holding M, or -1
	busy      *dirTxn
	pendingBI bool
	inL2      bool
	l2Ops     int // outstanding writeback MetaStores for this key
}

func (ln *dirLine) copies() uint64 {
	m := ln.sharers
	if ln.owner >= 0 {
		m |= 1 << uint(ln.owner)
	}
	return m
}

func (ln *dirLine) idle() bool {
	return ln.sharers == 0 && ln.owner < 0 && ln.busy == nil && !ln.pendingBI && ln.l2Ops == 0
}

type snoopRec struct {
	seq     uint64
	port    int
	key     metatag.Key
	kind    uint8
	txn     *dirTxn
	sent    sim.Cycle
	retries int
}

// Directory serializes coherence transactions: at most one in flight per
// key, each a short script of snoops, an optional L2 access, and a grant.
// It is the L2 controller's only client, so per-key ordering through the
// shared level follows from its single request FIFO.
type Directory struct {
	SnoopTimeout int
	MaxRetries   int

	ports  []*CohL1
	l2     *ctrl.Controller
	bridge *memBridge

	lines  map[metatag.Key]*dirLine
	txns   []*dirTxn
	biQ    []metatag.Key
	l2Out  []ctrl.MetaReq
	l2ByID map[uint64]*dirTxn
	wbIDs  map[uint64]metatag.Key
	snoops []*snoopRec

	snoopSeq uint64
	nextID   uint64
	rng      uint64
	faults   CohFaults
	rr       int // intake round-robin cursor
	err      error
	stats    CohStats
}

func newDirectory(k *sim.Kernel, l2 *ctrl.Controller, bridge *memBridge, faults CohFaults,
	snoopTimeout, maxRetries int) *Directory {
	d := &Directory{
		SnoopTimeout: snoopTimeout,
		MaxRetries:   maxRetries,
		l2:           l2,
		bridge:       bridge,
		lines:        map[metatag.Key]*dirLine{},
		l2ByID:       map[uint64]*dirTxn{},
		wbIDs:        map[uint64]metatag.Key{},
		faults:       faults,
		rng:          mixCoh(faults.Seed ^ 0x8b4d_17f3_a02c_55e9),
	}
	k.Add(d)
	return d
}

// Stats returns a copy of the statistics.
func (d *Directory) Stats() CohStats { return d.stats }

// Idle reports whether no transaction, snoop, or L2 access is in flight.
func (d *Directory) Idle() bool {
	return len(d.txns) == 0 && len(d.biQ) == 0 && len(d.l2Out) == 0 &&
		len(d.l2ByID) == 0 && len(d.wbIDs) == 0 && len(d.snoops) == 0
}

// ActivityCount implements the watchdog's progress counter.
func (d *Directory) ActivityCount() uint64 {
	s := &d.stats
	return s.Txns + s.Grants + s.Invals + s.Downgrades + s.Writebacks + s.SnoopRetry
}

// CheckInvariants implements the check package's per-cycle self-audit:
// it surfaces the latched liveness violation, if any.
func (d *Directory) CheckInvariants(sim.Cycle) error { return d.err }

// DiagnoseName implements check.Diagnoser.
func (d *Directory) DiagnoseName() string { return "coh-directory" }

// Diagnose implements check.Diagnoser.
func (d *Directory) Diagnose() []string {
	out := []string{fmt.Sprintf("%d lines tracked, %d txns, %d snoops outstanding, %d back-invals queued",
		len(d.lines), len(d.txns), len(d.snoops), len(d.biQ))}
	for _, t := range d.txns {
		out = append(out, fmt.Sprintf("txn key=%d port=%d write=%v bi=%v phase=%d acks=%d needVal=%v haveVal=%v",
			t.key[0], t.port, t.write, t.isBI, t.phase, t.pending, t.needVal, t.haveVal))
	}
	return out
}

func (d *Directory) line(key metatag.Key) *dirLine {
	ln := d.lines[key]
	if ln == nil {
		ln = &dirLine{owner: -1}
		d.lines[key] = ln
	}
	return ln
}

func (d *Directory) gc(key metatag.Key) {
	if ln := d.lines[key]; ln != nil && ln.idle() && !ln.inL2 {
		delete(d.lines, key)
	}
}

// roll draws a deterministic uniform [0,1) for fault decisions.
func (d *Directory) roll() float64 {
	d.rng += 0x9e3779b97f4a7c15
	return float64(mixCoh(d.rng)>>11) / float64(1<<53)
}

// Tick implements sim.Component.
func (d *Directory) Tick(cy sim.Cycle) {
	d.drainL2Resps()
	d.drainEvicts()
	d.drainAcks()
	d.retrySnoops(cy)
	d.advanceTxns()
	d.startBackInvals(cy)
	d.intake(cy)
	for len(d.l2Out) > 0 && d.l2.ReqQ.CanPush() {
		d.l2.ReqQ.MustPush(d.l2Out[0])
		d.l2Out = d.l2Out[1:]
	}
}

func (d *Directory) drainL2Resps() {
	for {
		resp, ok := d.l2.RespQ.Pop()
		if !ok {
			return
		}
		if key, isWB := d.wbIDs[resp.ID]; isWB {
			delete(d.wbIDs, resp.ID)
			if ln := d.lines[key]; ln != nil {
				ln.l2Ops--
				ln.inL2 = true // the MetaStore write-allocated the line
				d.gc(key)
			}
			continue
		}
		t := d.l2ByID[resp.ID]
		if t == nil {
			panic(fmt.Sprintf("hier: directory got L2 response for unknown id %d", resp.ID))
		}
		delete(d.l2ByID, resp.ID)
		t.haveL2 = true
		t.val = resp.Value
		d.line(t.key).inL2 = true
	}
}

func (d *Directory) drainEvicts() {
	for p, l1 := range d.ports {
		for {
			ev, ok := l1.evicts.Pop()
			if !ok {
				break
			}
			d.stats.L1Evictions++
			ln := d.line(ev.key)
			ln.sharers &^= 1 << uint(p)
			if ln.owner == p {
				ln.owner = -1
			}
			if ev.wasM {
				// The silently evicted M value is the newest copy. A busy
				// transaction waiting on it (its snoop will find nothing)
				// adopts it and performs the writeback itself; otherwise
				// the directory writes it back into the L2 here.
				if ln.busy != nil && ln.busy.needVal && !ln.busy.haveVal {
					ln.busy.val = ev.val
					ln.busy.haveVal = true
				} else {
					d.writeback(ev.key, ev.val)
				}
			}
			d.gc(ev.key)
		}
	}
}

func (d *Directory) drainAcks() {
	for p, l1 := range d.ports {
		for {
			ack, ok := l1.acks.Pop()
			if !ok {
				break
			}
			rec := d.takeSnoop(ack.seq)
			if rec == nil {
				continue // late duplicate from a retried snoop
			}
			rec.txn.pending--
			ln := d.line(ack.key)
			switch rec.kind {
			case snoopInval:
				ln.sharers &^= 1 << uint(p)
				if ln.owner == p {
					ln.owner = -1
				}
			case snoopDown:
				if ln.owner == p {
					ln.owner = -1
				}
				if ack.had {
					ln.sharers |= 1 << uint(p)
				}
			}
			if ack.had && ack.wasM && !rec.txn.haveVal {
				rec.txn.val = ack.val
				rec.txn.haveVal = true
			}
		}
	}
}

// takeSnoop removes and returns the outstanding record for seq.
func (d *Directory) takeSnoop(seq uint64) *snoopRec {
	for i, r := range d.snoops {
		if r.seq == seq {
			d.snoops = append(d.snoops[:i], d.snoops[i+1:]...)
			return r
		}
	}
	return nil
}

func (d *Directory) retrySnoops(cy sim.Cycle) {
	for _, r := range d.snoops {
		if cy-r.sent < sim.Cycle(d.SnoopTimeout) {
			continue
		}
		r.retries++
		if r.retries > d.MaxRetries {
			if d.err == nil {
				d.err = &check.CoherenceViolation{Cycle: cy, Rule: "liveness", Key: [2]uint64(r.key),
					Detail: fmt.Sprintf("snoop to port %d unacknowledged after %d retries", r.port, d.MaxRetries)}
			}
			continue
		}
		d.stats.SnoopRetry++
		r.sent = cy
		d.push(r)
	}
}

// sendSnoop records and (fault permitting) delivers one snoop.
func (d *Directory) sendSnoop(cy sim.Cycle, port int, key metatag.Key, kind uint8, t *dirTxn) {
	d.snoopSeq++
	r := &snoopRec{seq: d.snoopSeq, port: port, key: key, kind: kind, txn: t, sent: cy}
	d.snoops = append(d.snoops, r)
	t.pending++
	if kind == snoopInval {
		d.stats.Invals++
	} else {
		d.stats.Downgrades++
	}
	d.push(r)
}

// push attempts delivery of a recorded snoop; an injected drop or a full
// queue leaves it to the retry timer.
func (d *Directory) push(r *snoopRec) {
	if d.faults.DropSnoop > 0 && d.roll() < d.faults.DropSnoop {
		d.stats.SnoopDrops++
		return
	}
	if q := d.ports[r.port].snoops; q.CanPush() {
		q.MustPush(snoopMsg{key: r.key, kind: r.kind, seq: r.seq})
	}
}

// writeback pushes a recalled Modified value into the L2 (write-allocate:
// this also restores inclusion after an L2 eviction raced the recall).
func (d *Directory) writeback(key metatag.Key, val uint64) {
	d.nextID++
	id := d.nextID
	d.wbIDs[id] = key
	d.line(key).l2Ops++
	d.l2Out = append(d.l2Out, ctrl.MetaReq{ID: id, Op: ctrl.MetaStore, Key: key, Payload: val})
	d.stats.Writebacks++
}

func (d *Directory) advanceTxns() {
	keep := d.txns[:0]
	for _, t := range d.txns {
		if t.phase == phSnoop && t.pending == 0 && (!t.needVal || t.haveVal) {
			if t.haveVal {
				if t.isBI {
					// The line left the L2; its newest value goes to the
					// element's home address, not back into the cache.
					d.bridge.flush(t.key, t.val)
					d.stats.Flushes++
				} else {
					d.writeback(t.key, t.val)
				}
			}
			switch {
			case t.isBI:
				ln := d.line(t.key)
				ln.busy = nil
				ln.pendingBI = false
				d.gc(t.key)
				continue
			case t.haveVal:
				t.phase = phGrant
			default:
				t.phase = phL2
				d.nextID++
				d.l2ByID[d.nextID] = t
				d.l2Out = append(d.l2Out, ctrl.MetaReq{ID: d.nextID, Op: ctrl.MetaLoad, Key: t.key})
			}
		}
		if t.phase == phL2 && t.haveL2 {
			t.phase = phGrant
		}
		if t.phase == phGrant {
			l1 := d.ports[t.port]
			if l1.grants.CanPush() {
				state := int8(MesiS)
				ln := d.line(t.key)
				if t.write {
					state = MesiM
					ln.owner = t.port
					ln.sharers = 0
				} else {
					ln.sharers |= 1 << uint(t.port)
				}
				l1.grants.MustPush(dirGrant{key: t.key, state: state, val: t.val})
				d.stats.Grants++
				ln.busy = nil
				// A back-inval flagged while the transaction ran stays
				// flagged: whether it is moot (the transaction's own L2
				// access re-established the line) is decided by
				// startBackInvals against the L2's actual tag state — the
				// L2 may have evicted the line again after our refill.
				continue
			}
		}
		keep = append(keep, t)
	}
	d.txns = keep
}

// startBackInvals launches inclusion recalls for lines the L2 evicted
// while L1 copies were live.
func (d *Directory) startBackInvals(cy sim.Cycle) {
	rest := d.biQ[:0]
	for _, key := range d.biQ {
		ln := d.lines[key]
		if ln == nil || !ln.pendingBI {
			continue
		}
		// The L2's tag array is the ground truth for inclusion: a recall
		// is moot once the line is back (a transaction's refill or an
		// eviction writeback re-allocated it — transient entries count,
		// their walker completes into a stable line).
		if d.l2.Tags.Probe(key) != nil {
			ln.pendingBI = false
			d.gc(key)
			continue
		}
		// Wait out a busy transaction or an in-flight writeback for the
		// key: either re-establishes the line, re-deciding the recall.
		if ln.busy != nil || ln.l2Ops > 0 {
			rest = append(rest, key)
			continue
		}
		if ln.copies() == 0 {
			ln.pendingBI = false
			d.gc(key)
			continue
		}
		t := &dirTxn{key: key, isBI: true, port: -1, phase: phSnoop, needVal: ln.owner >= 0}
		ln.busy = t
		d.txns = append(d.txns, t)
		d.stats.BackInvals++
		for p := 0; p < len(d.ports); p++ {
			if ln.copies()&(1<<uint(p)) != 0 {
				d.sendSnoop(cy, p, key, snoopInval, t)
			}
		}
	}
	d.biQ = rest
}

// intake starts new transactions, round-robin across ports, holding a
// port's head request while its key is busy (per-key serialization).
func (d *Directory) intake(cy sim.Cycle) {
	n := len(d.ports)
	for i := 0; i < n; i++ {
		p := (d.rr + i) % n
		req, ok := d.ports[p].dirQ.Peek()
		if !ok {
			continue
		}
		ln := d.line(req.key)
		if ln.busy != nil || ln.pendingBI {
			continue // head-of-line: per-key order is the protocol's backbone
		}
		d.ports[p].dirQ.Pop()
		t := &dirTxn{key: req.key, port: p, write: req.write, phase: phSnoop}
		ln.busy = t
		d.txns = append(d.txns, t)
		d.stats.Txns++
		if req.write {
			for q := 0; q < n; q++ {
				if q != p && ln.copies()&(1<<uint(q)) != 0 {
					d.sendSnoop(cy, q, req.key, snoopInval, t)
				}
			}
			t.needVal = ln.owner >= 0 && ln.owner != p
		} else if ln.owner >= 0 && ln.owner != p {
			d.sendSnoop(cy, ln.owner, req.key, snoopDown, t)
			t.needVal = true
		}
	}
	d.rr = (d.rr + 1) % n
}

// --- check.CoherenceSource ---

// CohSnapshot implements check.CoherenceSource: the cross-hierarchy state
// of every tracked line, in sorted-key order.
func (d *Directory) CohSnapshot() check.CohSnapshot {
	acc := map[metatag.Key]*check.CohLine{}
	get := func(key metatag.Key) *check.CohLine {
		ln := acc[key]
		if ln == nil {
			ln = &check.CohLine{Key: [2]uint64(key), L1: make([]int8, len(d.ports))}
			acc[key] = ln
		}
		return ln
	}
	for p, l1 := range d.ports {
		l1.Tags.ForEach(func(e *metatag.Entry) {
			get(e.Key).L1[p] = int8(e.State)
		})
	}
	d.l2.Tags.ForEach(func(e *metatag.Entry) {
		ln := get(e.Key)
		if e.Walker != metatag.NoWalker {
			ln.Pending = true // transient: a walker is filling it
		} else {
			ln.L2 = true
		}
	})
	// A busy transaction, queued back-inval, or outstanding writeback
	// keeps the line logically pending: every in-flight message window
	// (grant, snoop, ack, evict notice, queued L2 op) is covered by one of
	// the three, because each is cleared only after its counterpart lands.
	for key, dl := range d.lines {
		if dl.busy != nil || dl.pendingBI || dl.l2Ops > 0 {
			get(key).Pending = true
		}
	}
	keys := make([]metatag.Key, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	snap := check.CohSnapshot{Lines: make([]check.CohLine, 0, len(keys))}
	for _, k := range keys {
		snap.Lines = append(snap.Lines, *acc[k])
	}
	return snap
}

// CohEvents implements check.CoherenceSource: it drains every port's
// value events in port order.
func (d *Directory) CohEvents() []check.CohEvent {
	var out []check.CohEvent
	for _, l1 := range d.ports {
		out = append(out, l1.events...)
		l1.events = nil
	}
	return out
}

// onL2Evict is the L2 controller's eviction hook: flush a dirty victim to
// its home address and schedule inclusion recalls for live L1 copies.
// Returning true takes ownership of the writeback (the controller skips
// its spill path).
func (d *Directory) onL2Evict(n ctrl.EvictNote) bool {
	if n.Dirty && len(n.Words) > 0 {
		d.bridge.flush(n.Key, n.Words[0])
		d.stats.Flushes++
	}
	ln := d.lines[n.Key]
	if ln == nil {
		return true
	}
	ln.inL2 = false
	if ln.copies() != 0 || ln.busy != nil {
		if !ln.pendingBI {
			ln.pendingBI = true
			d.biQ = append(d.biQ, n.Key)
		}
	} else {
		d.gc(n.Key)
	}
	return true
}

// --- memBridge: the L2's memory port, plus home-address flushes ---

// flushIDBit tags bridge-originated DRAM writes; it sits below ctrl's
// writeback flag (63) and the hierarchy's l1IDBit (62), above walker ids.
const flushIDBit = uint64(1) << 61

// memBridge sits between the L2 controller and the DRAM channel. It
// forwards walker fills unchanged, and adds a flush path that writes a
// dirty L2 victim back to the element's home address — holding any fill
// that overlaps a pending flush until the write is acknowledged, so a
// re-walk can never read the stale home value.
type memBridge struct {
	d      *dram.DRAM
	l2Req  *sim.Queue[dram.Request]
	l2Resp *sim.Queue[dram.Response]

	base    uint64
	flushQ  []dram.Request
	pending map[uint64]int // word address → outstanding flush writes
	ids     map[uint64]uint64
	seq     uint64
}

func newMemBridge(k *sim.Kernel, d *dram.DRAM, l2Req *sim.Queue[dram.Request],
	l2Resp *sim.Queue[dram.Response]) *memBridge {
	b := &memBridge{d: d, l2Req: l2Req, l2Resp: l2Resp,
		pending: map[uint64]int{}, ids: map[uint64]uint64{}}
	k.Add(b)
	return b
}

// flush registers a home-address write for key's value. The address is
// marked pending synchronously, before the write is even issued, so a
// fill racing the flush is held from this cycle on.
func (b *memBridge) flush(key metatag.Key, val uint64) {
	addr := b.base + key[0]*8
	b.seq++
	id := flushIDBit | b.seq
	b.ids[id] = addr
	b.pending[addr]++
	b.flushQ = append(b.flushQ, dram.Request{ID: id, Addr: addr, Words: 1, Write: true, Data: []uint64{val}})
}

// Tick implements sim.Component.
func (b *memBridge) Tick(sim.Cycle) {
	for {
		resp, ok := b.d.Resp.Peek()
		if !ok {
			break
		}
		if addr, mine := b.ids[resp.ID]; mine {
			b.d.Resp.Pop()
			delete(b.ids, resp.ID)
			if b.pending[addr]--; b.pending[addr] == 0 {
				delete(b.pending, addr)
			}
			continue
		}
		if !b.l2Resp.CanPush() {
			break
		}
		b.d.Resp.Pop()
		b.l2Resp.MustPush(resp)
	}
	for len(b.flushQ) > 0 && b.d.Req.CanPush() {
		b.d.Req.MustPush(b.flushQ[0])
		b.flushQ = b.flushQ[1:]
	}
	for {
		req, ok := b.l2Req.Peek()
		if !ok || !b.d.Req.CanPush() {
			break
		}
		if !req.Write && b.overlaps(req) {
			break // hold the fill until the flush it races is acknowledged
		}
		b.l2Req.Pop()
		b.d.Req.MustPush(req)
	}
}

func (b *memBridge) overlaps(req dram.Request) bool {
	if len(b.pending) == 0 && len(b.flushQ) == 0 {
		return false
	}
	for w := 0; w < req.Words; w++ {
		if b.pending[req.Addr+uint64(w)*8] > 0 {
			return true
		}
	}
	return false
}

// --- the assembled coherent system ---

// CohConfig sizes a coherent hierarchy.
type CohConfig struct {
	Ports    int
	L1       L1Config
	L2Sets   int
	L2Ways   int
	L2Active int

	SnoopTimeout    int // 0 → 64
	MaxSnoopRetries int // 0 → 8
	MaxWaiters      int // 0 → 8

	NumKeys int // size of the backing element array (0 → 256)
	Faults  CohFaults
}

func (c *CohConfig) defaults() {
	if c.Ports == 0 {
		c.Ports = 2
	}
	// Default only a fully-zero L1: a partially-filled geometry with
	// Sets == 0 is a caller mistake Validate must surface, not paper over.
	if c.L1 == (L1Config{}) {
		c.L1 = L1Config{Sets: 8, Ways: 2, WordsPerSector: 1}
	}
	if c.L2Sets == 0 {
		c.L2Sets = 64
	}
	if c.L2Ways == 0 {
		c.L2Ways = 4
	}
	if c.L2Active == 0 {
		c.L2Active = 8
	}
	if c.SnoopTimeout == 0 {
		c.SnoopTimeout = 64
	}
	if c.MaxSnoopRetries == 0 {
		c.MaxSnoopRetries = 8
	}
	if c.MaxWaiters == 0 {
		c.MaxWaiters = 8
	}
	if c.NumKeys == 0 {
		c.NumKeys = 256
	}
}

// cohArraySpec is the shared L2's walker program: loads walk the backing
// array (as the hierarchy example does); stores write-allocate the
// incoming value without a DRAM read — the directory only stores recalled
// Modified values, which are by construction the newest copy.
func cohArraySpec() program.Spec {
	return program.Spec{
		Name:   "coharray",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid`},
			{State: "Default", Event: "MetaStore", Asm: `
				allocm
				allocdi r7, 1
				writed r7, r0
				li r8, 1
				update r7, r8
				enqresp r0, OK
				halt Valid`},
		},
	}
}

// CohSystem is the assembled coherent hierarchy: N CohL1 ports, the
// directory, a shared walking L2, and its DRAM channel behind the flush
// bridge.
type CohSystem struct {
	K     *sim.Kernel
	Img   *mem.Image
	DRAM  *dram.DRAM
	L2    *core.Cache
	Dir   *Directory
	Ports []*CohL1
	Base  uint64
	Meter *energy.Counters
	Cfg   CohConfig
}

// NewCohSystem builds the hierarchy. Element i's home is Base + 8i; use
// Seed to initialize values before the first request.
func NewCohSystem(cfg CohConfig) (*CohSystem, error) {
	cfg.defaults()
	if err := cfg.L1.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	l2Req := sim.NewQueue[dram.Request](k, "cohbridge.req", 32)
	l2Resp := sim.NewQueue[dram.Response](k, "cohbridge.resp", 64)
	l2, err := core.Build(k, core.Config{Name: "CohL2", Sets: cfg.L2Sets, Ways: cfg.L2Ways,
		KeyWords: 1, WordsPerSector: 1, NumActive: cfg.L2Active, NumExe: 2, RespDataWords: 1},
		cohArraySpec(), l2Req, l2Resp, meter)
	if err != nil {
		return nil, err
	}
	bridge := newMemBridge(k, d, l2Req, l2Resp)
	dir := newDirectory(k, l2.Ctrl, bridge, cfg.Faults, cfg.SnoopTimeout, cfg.MaxSnoopRetries)
	s := &CohSystem{K: k, Img: img, DRAM: d, L2: l2, Dir: dir, Meter: meter, Cfg: cfg}
	for p := 0; p < cfg.Ports; p++ {
		l1 := newCohL1(k, p, cfg.L1, cfg.MaxWaiters, meter)
		s.Ports = append(s.Ports, l1)
		dir.ports = append(dir.ports, l1)
	}
	s.Base = img.AllocWords(cfg.NumKeys)
	bridge.base = s.Base
	l2.SetEnv(0, s.Base)
	l2.Ctrl.SetEvictHook(dir.onL2Evict)
	return s, nil
}

// Seed writes element i's initial value into the backing image.
func (s *CohSystem) Seed(i int, v uint64) {
	s.Img.W64(s.Base+uint64(i)*8, v)
}

// Idle reports whether the whole hierarchy has quiesced.
func (s *CohSystem) Idle() bool {
	if !s.Dir.Idle() {
		return false
	}
	for _, p := range s.Ports {
		if !p.Idle() {
			return false
		}
	}
	return true
}

// Err surfaces the directory's latched protocol violation, if any.
func (s *CohSystem) Err() error { return s.Dir.err }

// mixCoh is the splitmix64 finalizer driving deterministic fault rolls.
func mixCoh(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
