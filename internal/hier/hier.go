// Package hier implements the §6 compositions of X-Cache:
//
//   - MX  — multi-level X-Cache: an upstream L1 with no walker that
//     requests one meta-tag at a time from the downstream X-Cache; only
//     the last level walks and translates to addresses.
//   - MXA — X-Cache over an address-based cache: the walker's fills
//     become cache-line requests to a conventional cache (non-inclusive,
//     different namespaces).
//   - MXS — X-Cache beside a stream port: the DSA partitions its data,
//     streaming the affine part with global addresses (matrix A,
//     adjacency lists) while dynamic accesses go through X-Cache. The
//     SpGEMM and GraphPulse datapaths already use this shape; Stream is
//     the reusable port.
package hier

import (
	"fmt"

	"xcache/internal/addrcache"
	"xcache/internal/ctrl"
	"xcache/internal/dataram"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// --- MX: upstream meta-tagged level with no walker. ---

// L1Config sizes the upstream level.
type L1Config struct {
	Sets           int
	Ways           int
	KeyWords       int
	WordsPerSector int
	Sectors        int // 0 → 2×Sets×Ways
	HitLatency     int // 0 → 2 (smaller/closer than the walking level)
	ReqDepth       int
	MaxOutstanding int
}

// ConfigError is the typed error an invalid hierarchy configuration
// builds to. It names the offending field so callers can surface the
// exact knob instead of a latent zero-capacity cache.
type ConfigError struct {
	Field  string
	Value  int
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("hier: L1Config.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// Validate rejects geometries the defaulting pass would silently turn
// into a broken cache: sector sizing derives 2×Sets×Ways, so a zero or
// negative dimension yields a level that can never hold data, and the
// meta-tag array indexes sets by mask, so Sets must be a power of two.
func (c L1Config) Validate() error {
	if c.Sets <= 0 {
		return &ConfigError{Field: "Sets", Value: c.Sets, Reason: "must be positive"}
	}
	if c.Sets&(c.Sets-1) != 0 {
		return &ConfigError{Field: "Sets", Value: c.Sets, Reason: "must be a power of two"}
	}
	if c.Ways <= 0 {
		return &ConfigError{Field: "Ways", Value: c.Ways, Reason: "must be positive"}
	}
	if c.WordsPerSector <= 0 {
		return &ConfigError{Field: "WordsPerSector", Value: c.WordsPerSector, Reason: "must be positive"}
	}
	if c.Sectors < 0 {
		return &ConfigError{Field: "Sectors", Value: c.Sectors, Reason: "must be non-negative (0 derives 2×Sets×Ways)"}
	}
	if c.KeyWords < 0 || c.KeyWords > 2 {
		return &ConfigError{Field: "KeyWords", Value: c.KeyWords, Reason: "must be 0 (default 1), 1 or 2"}
	}
	if c.HitLatency < 0 {
		return &ConfigError{Field: "HitLatency", Value: c.HitLatency, Reason: "must be non-negative"}
	}
	if c.ReqDepth < 0 {
		return &ConfigError{Field: "ReqDepth", Value: c.ReqDepth, Reason: "must be non-negative"}
	}
	if c.MaxOutstanding < 0 {
		return &ConfigError{Field: "MaxOutstanding", Value: c.MaxOutstanding, Reason: "must be non-negative"}
	}
	return nil
}

func (c *L1Config) defaults() {
	if c.Sectors == 0 {
		c.Sectors = 2 * c.Sets * c.Ways
	}
	if c.HitLatency == 0 {
		c.HitLatency = 2
	}
	if c.ReqDepth == 0 {
		c.ReqDepth = 16
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 8
	}
	if c.KeyWords == 0 {
		c.KeyWords = 1
	}
}

// L1Stats counts upstream activity.
type L1Stats struct {
	Loads, Hits, Misses uint64
	Forwards            uint64
	Responses           uint64
	L2USum, L2UCount    uint64
}

// AvgLoadToUse returns the mean L1 load-to-use.
func (s L1Stats) AvgLoadToUse() float64 {
	if s.L2UCount == 0 {
		return 0
	}
	return float64(s.L2USum) / float64(s.L2UCount)
}

type l1mshr struct {
	waiters []ctrl.MetaReq
}

type l1pending struct {
	readyAt sim.Cycle
	resp    ctrl.MetaResp
	issued  sim.Cycle
}

// MetaL1 is the walker-less upstream X-Cache level: the meta-tag
// namespace is global across the hierarchy (like addresses), so it simply
// requests a meta-tag at a time from the downstream level on a miss.
// It caches read-only elements; meta stores are forwarded downstream.
type MetaL1 struct {
	Cfg   L1Config
	Tags  *metatag.Array
	Data  *dataram.RAM
	ReqQ  *sim.Queue[ctrl.MetaReq]
	RespQ *sim.Queue[ctrl.MetaResp]

	l2Req  *sim.Queue[ctrl.MetaReq]
	l2Resp *sim.Queue[ctrl.MetaResp]

	mshrs  map[metatag.Key]*l1mshr
	ids    map[uint64]metatag.Key // forwarded id → key
	nextID uint64
	pend   []l1pending
	stats  L1Stats
	Meter  *energy.Counters
}

// NewMetaL1 builds the upstream level over the downstream controller's
// queues. The geometry is validated before any array is sized; a typed
// *ConfigError names the offending field.
func NewMetaL1(k *sim.Kernel, cfg L1Config, l2 *ctrl.Controller, meter *energy.Counters) (*MetaL1, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults()
	l := &MetaL1{
		Cfg:    cfg,
		Tags:   metatag.New(metatag.Config{Sets: cfg.Sets, Ways: cfg.Ways, KeyWords: cfg.KeyWords}, meter),
		Data:   dataram.New(dataram.Config{Sectors: cfg.Sectors, WordsPerSector: cfg.WordsPerSector}, meter),
		ReqQ:   sim.NewQueue[ctrl.MetaReq](k, "l1.req", cfg.ReqDepth),
		RespQ:  sim.NewQueue[ctrl.MetaResp](k, "l1.resp", 64),
		l2Req:  l2.ReqQ,
		l2Resp: l2.RespQ,
		mshrs:  map[metatag.Key]*l1mshr{},
		ids:    map[uint64]metatag.Key{},
		Meter:  meter,
	}
	k.Add(l)
	return l, nil
}

// Stats returns a copy of the statistics.
func (l *MetaL1) Stats() L1Stats { return l.stats }

// Idle reports whether no requests are queued or outstanding.
func (l *MetaL1) Idle() bool {
	return l.ReqQ.Len() == 0 && len(l.mshrs) == 0 && len(l.pend) == 0
}

const l1IDBit = uint64(1) << 62

// Tick implements sim.Component.
func (l *MetaL1) Tick(cy sim.Cycle) {
	// Deliver matured hits.
	keep := l.pend[:0]
	for _, p := range l.pend {
		if p.readyAt <= cy && l.RespQ.CanPush() {
			l.RespQ.MustPush(p.resp)
			l.stats.Responses++
			l.stats.L2USum += uint64(cy - p.issued)
			l.stats.L2UCount++
			continue
		}
		keep = append(keep, p)
	}
	l.pend = keep

	// Downstream responses: fill and answer waiters.
	for {
		resp, ok := l.l2Resp.Peek()
		if !ok {
			break
		}
		key, mine := l.ids[resp.ID]
		if !mine {
			break // not ours (shouldn't happen when L1 owns the L2 port)
		}
		l.l2Resp.Pop()
		delete(l.ids, resp.ID)
		m := l.mshrs[key]
		delete(l.mshrs, key)
		if resp.Status == program.StatusOK && len(resp.Data) > 0 {
			l.install(key, resp.Data)
		}
		for _, w := range m.waiters {
			out := resp
			out.ID = w.ID
			l.pend = append(l.pend, l1pending{readyAt: cy + 1, resp: out, issued: w.Issued})
		}
	}

	// One lookup per cycle.
	req, ok := l.ReqQ.Peek()
	if !ok {
		return
	}
	if req.Op != ctrl.MetaLoad {
		// Stores bypass to the walking level (read-only upstream).
		if !l.l2Req.CanPush() {
			return
		}
		l.ReqQ.Pop()
		l.l2Req.MustPush(req)
		l.stats.Forwards++
		return
	}
	l.stats.Loads++
	if e := l.Tags.Lookup(req.Key); e != nil && e.State == program.StateValid {
		l.Tags.Touch(e)
		l.stats.Hits++
		words := int(e.SectorCount) * l.Data.Cfg.WordsPerSector
		resp := ctrl.MetaResp{ID: req.ID, Status: program.StatusOK, Words: words}
		if words > 0 {
			resp.Data = l.Data.ReadRun(e.SectorBase, words)
			resp.Value = resp.Data[0]
		}
		l.ReqQ.Pop()
		l.pend = append(l.pend, l1pending{readyAt: cy + sim.Cycle(l.Cfg.HitLatency), resp: resp, issued: req.Issued})
		return
	}
	l.stats.Misses++
	if m, exists := l.mshrs[req.Key]; exists {
		l.ReqQ.Pop()
		m.waiters = append(m.waiters, req)
		return
	}
	if len(l.mshrs) >= l.Cfg.MaxOutstanding || !l.l2Req.CanPush() {
		return
	}
	l.ReqQ.Pop()
	l.nextID++
	id := l1IDBit | l.nextID
	l.ids[id] = req.Key
	l.mshrs[req.Key] = &l1mshr{waiters: []ctrl.MetaReq{req}}
	fwd := req
	fwd.ID = id
	fwd.Issued = cy
	l.l2Req.MustPush(fwd)
	l.stats.Forwards++
}

// install caches a downstream element, evicting LRU entries for space.
func (l *MetaL1) install(key metatag.Key, words []uint64) {
	sectors := (len(words) + l.Data.Cfg.WordsPerSector - 1) / l.Data.Cfg.WordsPerSector
	if sectors == 0 {
		return
	}
	entry, ev, ok := l.Tags.Alloc(key, program.StateValid, metatag.NoWalker)
	if !ok {
		return // set full of... cannot happen: L1 entries are never transient
	}
	if ev != nil && ev.SectorCount > 0 {
		l.Data.Free(ev.SectorBase, ev.SectorCount)
	}
	base, ok := l.Data.Alloc(sectors)
	if !ok {
		// No room: drop the allocation (uncached pass-through).
		l.Tags.Dealloc(entry)
		return
	}
	entry.SectorBase = base
	entry.SectorCount = int32(sectors)
	w := l.Data.SectorWordBase(base)
	for i, v := range words {
		l.Data.Write(w+int32(i), v)
	}
}

// --- MXA: X-Cache walker fills served by an address cache. ---

type mxaJob struct {
	req       dram.Request
	remaining int
	data      []uint64
	base      uint64
}

// XCOverAddr adapts an X-Cache's memory port onto an address-based cache:
// each walker fill becomes one or more cache-line requests; the address
// cache sees a plain stream of line addresses (§6: "the address cache
// simply sees a stream of cache line requests"). Read-only — the
// composition rejects dirty writebacks, matching the read-only DSAs that
// use it.
type XCOverAddr struct {
	in   *sim.Queue[dram.Request]
	out  *sim.Queue[dram.Response]
	ac   *addrcache.Cache
	jobs map[uint64]*mxaJob
	next uint64
	acct map[uint64][]uint64 // access id → job id list (one per block)
}

// NewXCOverAddr creates the adapter; xcReq/xcResp are the queues handed to
// core.Build as its "memory" port.
func NewXCOverAddr(k *sim.Kernel, ac *addrcache.Cache) (adapter *XCOverAddr, xcReq *sim.Queue[dram.Request], xcResp *sim.Queue[dram.Response]) {
	a := &XCOverAddr{
		in:   sim.NewQueue[dram.Request](k, "mxa.req", 32),
		out:  sim.NewQueue[dram.Response](k, "mxa.resp", 64),
		ac:   ac,
		jobs: map[uint64]*mxaJob{},
	}
	k.Add(a)
	return a, a.in, a.out
}

// Tick implements sim.Component.
func (a *XCOverAddr) Tick(cy sim.Cycle) {
	// Completions from the address cache.
	for {
		resp, ok := a.ac.RespQ.Pop()
		if !ok {
			break
		}
		job := a.jobs[resp.ID>>16]
		if job == nil {
			panic("hier: MXA response for unknown job")
		}
		// Copy the words this block contributes.
		blockWords := len(resp.Data)
		for i := 0; i < blockWords; i++ {
			addr := resp.BlockBase + uint64(i)*8
			if addr >= job.req.Addr && addr < job.req.Addr+uint64(job.req.Words)*8 {
				job.data[(addr-job.req.Addr)/8] = resp.Data[i]
			}
		}
		job.remaining--
		if job.remaining == 0 {
			a.out.MustPush(dram.Response{ID: job.req.ID, Addr: job.req.Addr, Data: job.data})
			delete(a.jobs, resp.ID>>16)
		}
	}

	// New fills from the X-Cache walker: one fill per cycle, split into
	// the cache-line accesses that cover it.
	req, ok := a.in.Peek()
	if !ok {
		return
	}
	if req.Write {
		panic("hier: MXA composition is read-only (dirty meta data cannot spill through an address cache)")
	}
	bb := a.ac.BlockBytes()
	first := req.Addr &^ (bb - 1)
	last := (req.Addr + uint64(req.Words)*8 - 1) &^ (bb - 1)
	nBlocks := int((last-first)/bb) + 1
	if a.ac.ReqQ.Free() < nBlocks {
		return
	}
	a.in.Pop()
	a.next++
	jid := a.next
	a.jobs[jid] = &mxaJob{req: req, remaining: nBlocks, data: make([]uint64, req.Words), base: first}
	for i := 0; i < nBlocks; i++ {
		a.ac.ReqQ.MustPush(addrcache.Access{ID: jid<<16 | uint64(i), Addr: first + uint64(i)*bb, Issued: cy})
	}
}

// --- MXS: a sequential stream port beside X-Cache. ---

// Stream is the sequential prefetch port of the MXS composition: the DSA
// partitions its data, streaming the affine part (matrix A, adjacency
// lists) with global addresses over a dedicated channel while dynamic
// accesses go through X-Cache. It prefetches ahead in fixed bursts and
// meters how many words the datapath may consume. A stream binds to a
// request/response queue pair — a whole DRAM channel (NewStream) or one
// DRAMMux port when the channel is shared with a walker cache.
type Stream struct {
	req         *sim.Queue[dram.Request]
	resp        *sim.Queue[dram.Response]
	d           *dram.DRAM // non-nil only when the stream owns the channel
	cursor, end uint64
	outstanding int
	avail       uint64
	burstWords  int
	maxOutst    int
	bufferWords uint64 // credit cap: buffered + in-flight words
}

// NewStream builds a stream over [from, from+words·8) on the given DRAM
// channel, prefetching in 8-word bursts, up to 4 outstanding, with a
// 64-word FIFO. Use SetBuffer before the first Tick when a consumer takes
// larger units than that.
func NewStream(k *sim.Kernel, d *dram.DRAM, from, words uint64) *Stream {
	s := NewStreamOn(k, d.Req, d.Resp, from, words)
	s.d = d
	return s
}

// NewStreamOn builds a stream over an arbitrary request/response queue
// pair — typically one DRAMMux port, so the affine stream and a walker
// cache contend for the same channel instead of each owning one.
func NewStreamOn(k *sim.Kernel, req *sim.Queue[dram.Request], resp *sim.Queue[dram.Response],
	from, words uint64) *Stream {
	s := &Stream{req: req, resp: resp, cursor: from, end: from + words*8,
		burstWords: 8, maxOutst: 4, bufferWords: 64}
	k.Add(s)
	return s
}

// SetBuffer resizes the stream FIFO (in words). The buffer must cover the
// largest single Take a consumer will perform, or that Take can never be
// satisfied.
func (s *Stream) SetBuffer(words uint64) {
	if words > s.bufferWords {
		s.bufferWords = words
	}
}

// Tick implements sim.Component.
func (s *Stream) Tick(cy sim.Cycle) {
	for {
		if _, ok := s.resp.Pop(); !ok {
			break
		}
		s.outstanding--
		s.avail += uint64(s.burstWords)
	}
	// Credit-based flow control: never exceed the stream FIFO's capacity
	// in buffered plus in-flight words.
	for s.outstanding < s.maxOutst &&
		s.avail+uint64((s.outstanding+1)*s.burstWords) <= s.bufferWords &&
		s.cursor < s.end {
		if !s.req.Push(dram.Request{ID: s.cursor, Addr: s.cursor, Words: s.burstWords}) {
			break
		}
		s.cursor += uint64(s.burstWords) * 8
		s.outstanding++
	}
}

// Take consumes n streamed words if available.
func (s *Stream) Take(n uint64) bool {
	if s.avail < n {
		return false
	}
	s.avail -= n
	return true
}

// Avail reports the currently buffered words.
func (s *Stream) Avail() uint64 { return s.avail }

// Done reports whether the whole range has been fetched.
func (s *Stream) Done() bool { return s.cursor >= s.end && s.outstanding == 0 }

// DRAMStats exposes the stream channel's statistics. On a shared mux
// port the channel is not the stream's to report; the zero value is
// returned (use the DRAM's own Stats there).
func (s *Stream) DRAMStats() dram.Stats {
	if s.d == nil {
		return dram.Stats{}
	}
	return s.d.Stats()
}

// --- Shared-channel mux: several clients over one DRAM channel. ---

// muxPortShift places the port tag in request-ID bits 52..61: above any
// address-sized stream cursor and the controller's walker ids, below the
// hierarchy's l1IDBit (62) and ctrl's writeback flag (63), both of which
// must survive the round trip untouched.
const (
	muxPortShift = 52
	muxPortMask  = uint64(0x3FF) << muxPortShift
)

type muxPort struct {
	req  *sim.Queue[dram.Request]
	resp *sim.Queue[dram.Response]
}

// DRAMMux multiplexes several clients — walker caches, stream ports —
// onto one DRAM channel. Each client binds to a private queue pair; the
// mux tags forwarded request IDs with the port index and routes each
// response back to its port by the same tag, so clients keep their own
// ID namespaces (walker ids, stream cursors, writeback flags).
type DRAMMux struct {
	d     *dram.DRAM
	k     *sim.Kernel
	ports []muxPort
	rr    int
	stats DRAMMuxStats
}

// DRAMMuxStats counts mux activity per direction.
type DRAMMuxStats struct {
	Forwarded uint64 // requests multiplexed onto the channel
	Returned  uint64 // responses routed back to a port
}

// NewDRAMMux builds a mux over the channel. Create every port before
// the first kernel step.
func NewDRAMMux(k *sim.Kernel, d *dram.DRAM) *DRAMMux {
	m := &DRAMMux{d: d, k: k}
	k.Add(m)
	return m
}

// Port adds a client port named name, returning the request/response
// queue pair the client should treat as its private DRAM channel.
func (m *DRAMMux) Port(name string, depth int) (req *sim.Queue[dram.Request], resp *sim.Queue[dram.Response]) {
	if depth <= 0 {
		depth = 16
	}
	p := muxPort{
		req:  sim.NewQueue[dram.Request](m.k, name+".req", depth),
		resp: sim.NewQueue[dram.Response](m.k, name+".resp", depth),
	}
	m.ports = append(m.ports, p)
	return p.req, p.resp
}

// Stats returns a copy of the mux statistics.
func (m *DRAMMux) Stats() DRAMMuxStats { return m.stats }

// Tick implements sim.Component: route channel responses back to their
// ports, then multiplex waiting requests round-robin onto the channel.
func (m *DRAMMux) Tick(cy sim.Cycle) {
	for {
		resp, ok := m.d.Resp.Peek()
		if !ok {
			break
		}
		tag := int((resp.ID & muxPortMask) >> muxPortShift)
		if tag < 1 || tag > len(m.ports) {
			panic(fmt.Sprintf("hier: DRAMMux response with unknown port tag %d", tag))
		}
		p := m.ports[tag-1]
		if !p.resp.CanPush() {
			break // hold in the channel queue until the port drains
		}
		m.d.Resp.Pop()
		resp.ID &^= muxPortMask
		p.resp.MustPush(resp)
		m.stats.Returned++
	}
	if len(m.ports) == 0 {
		return
	}
	// Round-robin across ports, one request per port per cycle, while the
	// channel accepts them.
	for i := 0; i < len(m.ports); i++ {
		if !m.d.Req.CanPush() {
			break
		}
		pi := (m.rr + i) % len(m.ports)
		req, ok := m.ports[pi].req.Peek()
		if !ok {
			continue
		}
		if req.ID&muxPortMask != 0 {
			panic(fmt.Sprintf("hier: DRAMMux client request ID %#x collides with the port tag bits", req.ID))
		}
		m.ports[pi].req.Pop()
		req.ID |= uint64(pi+1) << muxPortShift
		m.d.Req.MustPush(req)
		m.stats.Forwarded++
	}
	m.rr = (m.rr + 1) % len(m.ports)
}
