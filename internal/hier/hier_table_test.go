package hier

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/sim"
)

// twoLevel assembles the standard composition — MetaL1 over a walking L2
// over DRAM — with n seeded array elements (array[i] = i + 500).
func twoLevel(t *testing.T, l1cfg L1Config, n int) (*sim.Kernel, *MetaL1, *core.Cache, *dram.DRAM) {
	t.Helper()
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	l2, err := core.Build(k, l2Config(), arraySpec(), d.Req, d.Resp, meter)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewMetaL1(k, l1cfg, l2.Ctrl, meter)
	if err != nil {
		t.Fatal(err)
	}
	base := img.AllocWords(n)
	for i := 0; i < n; i++ {
		img.W64(base+uint64(i)*8, uint64(i+500))
	}
	l2.SetEnv(0, base)
	return k, l1, l2, d
}

// sendAll pushes the keys one at a time and returns the responses by id.
func sendAll(t *testing.T, k *sim.Kernel, l1 *MetaL1, keys []uint64) map[uint64]ctrl.MetaResp {
	t.Helper()
	got := map[uint64]ctrl.MetaResp{}
	for i, key := range keys {
		id := uint64(i + 1)
		l1.ReqQ.MustPush(ctrl.MetaReq{ID: id, Op: ctrl.MetaLoad,
			Key: metatag.Key{key, 0}, Issued: k.Cycle()})
		if !k.RunUntil(func() bool {
			drainResp(l1.RespQ, got)
			_, ok := got[id]
			return ok
		}, 100_000) {
			t.Fatalf("no response for key %d (id %d)", key, id)
		}
	}
	return got
}

// TestHierComposition: the L1-over-L2 composition answers correctly
// across geometries, and per-level stats expose where each access hit.
func TestHierComposition(t *testing.T) {
	cases := []struct {
		name string
		cfg  L1Config
		keys []uint64
		// After the sequence: exact L1 ledger expectations.
		wantHits   uint64
		wantMisses uint64
	}{
		{
			// Every repeat of a resident key hits L1.
			name:     "repeats hit L1",
			cfg:      L1Config{Sets: 8, Ways: 2, WordsPerSector: 4},
			keys:     []uint64{3, 3, 3, 3},
			wantHits: 3, wantMisses: 1,
		},
		{
			// Distinct keys within capacity: all cold misses, no hits.
			name:     "cold misses",
			cfg:      L1Config{Sets: 8, Ways: 2, WordsPerSector: 4},
			keys:     []uint64{1, 2, 3, 4, 5},
			wantHits: 0, wantMisses: 5,
		},
		{
			// A single-set, single-way L1 thrashes: the revisit of key 0
			// after key 8 (same set) must miss again.
			name:     "capacity thrash",
			cfg:      L1Config{Sets: 1, Ways: 1, WordsPerSector: 4},
			keys:     []uint64{0, 8, 0},
			wantHits: 0, wantMisses: 3,
		},
		{
			// Two ways in one set keep both conflicting keys resident.
			name:     "associativity rescues",
			cfg:      L1Config{Sets: 1, Ways: 2, WordsPerSector: 4},
			keys:     []uint64{0, 8, 0, 8},
			wantHits: 2, wantMisses: 2,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k, l1, _, _ := twoLevel(t, c.cfg, 64)
			got := sendAll(t, k, l1, c.keys)
			for i, key := range c.keys {
				r := got[uint64(i+1)]
				if r.Status != 0 || r.Value != key+500 {
					t.Fatalf("key %d: status %d value %d, want OK %d", key, r.Status, r.Value, key+500)
				}
			}
			st := l1.Stats()
			if st.Loads != uint64(len(c.keys)) {
				t.Errorf("loads %d, want %d", st.Loads, len(c.keys))
			}
			if st.Hits != c.wantHits || st.Misses != c.wantMisses {
				t.Errorf("L1 hits/misses %d/%d, want %d/%d", st.Hits, st.Misses, c.wantHits, c.wantMisses)
			}
			if st.Responses != uint64(len(c.keys)) {
				t.Errorf("responses %d, want %d", st.Responses, len(c.keys))
			}
		})
	}
}

// TestHierMissPropagation: each L1 miss forwards exactly one request
// downstream, and the downstream level's own hit/miss split follows
// residency there — misses propagate level by level, hits cut the chain.
func TestHierMissPropagation(t *testing.T) {
	cases := []struct {
		name string
		keys []uint64
		// Expected downstream (L2 controller) ledger after the sequence.
		wantForwards uint64 // L1 -> L2 requests
		wantL2Hits   uint64
		wantL2Misses uint64 // L2 walker spawns (DRAM walks)
	}{
		{
			// Cold keys: every miss walks all the way to DRAM.
			name:         "cold chain to dram",
			keys:         []uint64{10, 11, 12},
			wantForwards: 3, wantL2Hits: 0, wantL2Misses: 3,
		},
		{
			// Thrash L1 (set-conflicting keys on a 1x1 L1) while L2 holds
			// both: later misses stop at L2, which answers from its array.
			name:         "l2 absorbs l1 thrash",
			keys:         []uint64{0, 8, 0, 8},
			wantForwards: 4, wantL2Hits: 2, wantL2Misses: 2,
		},
		{
			// L1 hits never reach L2 at all.
			name:         "l1 hit cuts chain",
			keys:         []uint64{5, 5, 5},
			wantForwards: 1, wantL2Hits: 0, wantL2Misses: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// 1-set/1-way L1 makes L1 residency trivially predictable.
			k, l1, l2, d := twoLevel(t, L1Config{Sets: 1, Ways: 1, WordsPerSector: 4}, 64)
			got := sendAll(t, k, l1, c.keys)
			for i, key := range c.keys {
				if r := got[uint64(i+1)]; r.Value != key+500 {
					t.Fatalf("key %d answered %d", key, r.Value)
				}
			}
			if f := l1.Stats().Forwards; f != c.wantForwards {
				t.Errorf("forwards %d, want %d", f, c.wantForwards)
			}
			cs := l2.Ctrl.Stats()
			if cs.Hits != c.wantL2Hits || cs.Misses != c.wantL2Misses {
				t.Errorf("L2 hits/misses %d/%d, want %d/%d", cs.Hits, cs.Misses, c.wantL2Hits, c.wantL2Misses)
			}
			// DRAM reads equal L2 walks: nothing else touches memory in
			// this composition (no evictions at this working-set size).
			if reads := d.Stats().Reads; reads != c.wantL2Misses {
				t.Errorf("DRAM reads %d, want %d", reads, c.wantL2Misses)
			}
			if !l1.Idle() {
				t.Error("L1 not idle after all responses")
			}
		})
	}
}

// TestHierLevelStats: the L1 load-to-use average reflects the hit
// latency configuration, and hit traffic is accounted at the right level.
func TestHierLevelStats(t *testing.T) {
	cases := []struct {
		name       string
		hitLatency int
	}{
		{name: "default latency 2", hitLatency: 0},
		{name: "latency 6", hitLatency: 6},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k, l1, _, _ := twoLevel(t, L1Config{Sets: 8, Ways: 2, WordsPerSector: 4, HitLatency: c.hitLatency}, 64)
			// Warm the key (cold walk), then snapshot and measure hits only.
			sendAll(t, k, l1, []uint64{9})
			warm := l1.Stats()
			if warm.L2UCount != warm.Responses {
				t.Fatalf("L2U count %d, want %d (every response)", warm.L2UCount, warm.Responses)
			}
			sendAll(t, k, l1, []uint64{9, 9, 9, 9, 9})
			st := l1.Stats()
			if st.Hits != 5 {
				t.Fatalf("hits %d, want 5", st.Hits)
			}
			want := c.hitLatency
			if want == 0 {
				want = 2
			}
			// Hit-only load-to-use: matures HitLatency cycles after lookup,
			// plus a small fixed pipeline overhead (queue commit + delivery).
			avg := float64(st.L2USum-warm.L2USum) / float64(st.L2UCount-warm.L2UCount)
			if avg < float64(want) || avg > float64(want)+3 {
				t.Errorf("avg hit load-to-use %.1f outside [%d, %d]", avg, want, want+3)
			}
			// A larger hit latency must be visible in the aggregate mean too.
			if st.AvgLoadToUse() <= avg/2 {
				t.Errorf("aggregate avg %.1f implausibly below hit avg %.1f", st.AvgLoadToUse(), avg)
			}
		})
	}
}
