package hier

import (
	"testing"

	"xcache/internal/addrcache"
	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/program"
	"xcache/internal/sim"
)

// arraySpec caches array[key] (e0 = base); the walking level for both
// compositions.
func arraySpec() program.Spec {
	return program.Spec{
		Name:   "arraywalk",
		States: []string{"WaitFill"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

func l2Config() core.Config {
	return core.Config{Name: "L2", Sets: 64, Ways: 4, WordsPerSector: 4,
		NumActive: 8, NumExe: 2, RespDataWords: 8}
}

type resps struct {
	got map[uint64]ctrl.MetaResp
}

func drainResp(q *sim.Queue[ctrl.MetaResp], into map[uint64]ctrl.MetaResp) {
	for {
		r, ok := q.Pop()
		if !ok {
			return
		}
		into[r.ID] = r
	}
}

func TestMXTwoLevelFunctionalAndLatency(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	l2, err := core.Build(k, l2Config(), arraySpec(), d.Req, d.Resp, meter)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewMetaL1(k, L1Config{Sets: 8, Ways: 2, WordsPerSector: 4}, l2.Ctrl, meter)
	if err != nil {
		t.Fatal(err)
	}

	base := img.AllocWords(64)
	for i := 0; i < 64; i++ {
		img.W64(base+uint64(i)*8, uint64(i+500))
	}
	l2.SetEnv(0, base)

	got := map[uint64]ctrl.MetaResp{}
	send := func(id, key uint64) ctrl.MetaResp {
		l1.ReqQ.MustPush(ctrl.MetaReq{ID: id, Op: ctrl.MetaLoad,
			Key: metatag.Key{key, 0}, Issued: k.Cycle()})
		if !k.RunUntil(func() bool {
			drainResp(l1.RespQ, got)
			_, ok := got[id]
			return ok
		}, 100000) {
			t.Fatalf("no response for id %d", id)
		}
		return got[id]
	}

	// Cold: misses both levels, walks in L2.
	start := k.Cycle()
	r := send(1, 7)
	if r.Value != 507 {
		t.Fatalf("cold value %d", r.Value)
	}
	coldLat := k.Cycle() - start

	// L1 hit: short load-to-use, no L2 traffic.
	fwdBefore := l1.Stats().Forwards
	start = k.Cycle()
	r = send(2, 7)
	if r.Value != 507 {
		t.Fatalf("hit value %d", r.Value)
	}
	l1Lat := k.Cycle() - start
	if l1.Stats().Forwards != fwdBefore {
		t.Fatal("L1 hit leaked to L2")
	}
	if l1Lat >= coldLat {
		t.Fatalf("L1 hit latency %d not below cold %d", l1Lat, coldLat)
	}

	// L1 capacity eviction: key 7 evicted, but the L2 still holds it, so
	// the re-probe is an L2 hit (faster than cold, no new DRAM access).
	for i := uint64(10); i < 30; i++ {
		send(100+i, i)
	}
	dramBefore := d.Stats().Reads
	start = k.Cycle()
	r = send(3, 7)
	l2Lat := k.Cycle() - start
	if r.Value != 507 {
		t.Fatalf("l2 value %d", r.Value)
	}
	if d.Stats().Reads != dramBefore && l1.Stats().Hits > 0 {
		// Key 7 may still be L1-resident if the working set fit; only
		// assert when it actually went to L2.
		t.Logf("note: key 7 still in L1")
	}
	if l2Lat >= coldLat {
		t.Fatalf("L2 hit latency %d not below cold %d", l2Lat, coldLat)
	}
}

func TestMXSharedNamespaceMerging(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	l2, err := core.Build(k, l2Config(), arraySpec(), d.Req, d.Resp, meter)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := NewMetaL1(k, L1Config{Sets: 8, Ways: 2, WordsPerSector: 4}, l2.Ctrl, meter)
	if err != nil {
		t.Fatal(err)
	}
	base := img.AllocWords(16)
	img.W64(base+8*3, 42)
	l2.SetEnv(0, base)

	// Two same-key probes back to back: one downstream forward.
	l1.ReqQ.MustPush(ctrl.MetaReq{ID: 1, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}, Issued: 0})
	l1.ReqQ.MustPush(ctrl.MetaReq{ID: 2, Op: ctrl.MetaLoad, Key: metatag.Key{3, 0}, Issued: 0})
	got := map[uint64]ctrl.MetaResp{}
	if !k.RunUntil(func() bool {
		drainResp(l1.RespQ, got)
		return len(got) == 2
	}, 100000) {
		t.Fatal("responses missing")
	}
	if got[1].Value != 42 || got[2].Value != 42 {
		t.Fatalf("values: %+v", got)
	}
	if l1.Stats().Forwards != 1 {
		t.Fatalf("forwards %d, want 1 (L1 MSHR merge)", l1.Stats().Forwards)
	}
}

func TestMXAWalkerOverAddressCache(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	ac := addrcache.New(k, addrcache.Config{Sets: 32, Ways: 4}, d.Req, d.Resp, meter)
	_, xcReq, xcResp := NewXCOverAddr(k, ac)
	xc, err := core.Build(k, l2Config(), arraySpec(), xcReq, xcResp, meter)
	if err != nil {
		t.Fatal(err)
	}
	base := img.AllocWords(64)
	for i := 0; i < 64; i++ {
		img.W64(base+uint64(i)*8, uint64(i)*3)
	}
	xc.SetEnv(0, base)

	got := map[uint64]ctrl.MetaResp{}
	for i := uint64(0); i < 16; i++ {
		xc.Ctrl.ReqQ.MustPush(ctrl.MetaReq{ID: i, Op: ctrl.MetaLoad,
			Key: metatag.Key{i, 0}, Issued: k.Cycle()})
		if !k.RunUntil(func() bool {
			drainResp(xc.Ctrl.RespQ, got)
			_, ok := got[i]
			return ok
		}, 100000) {
			t.Fatalf("no response for key %d", i)
		}
		if got[i].Value != i*3 {
			t.Fatalf("key %d: %d want %d", i, got[i].Value, i*3)
		}
	}
	st := ac.Stats()
	if st.Accesses == 0 {
		t.Fatal("address cache never saw the walker's line requests")
	}
	// Spatial locality: 8-byte walks over 32-byte lines must hit the
	// address cache for 3 of 4 consecutive keys.
	if st.Hits == 0 {
		t.Fatal("no address-cache hits despite sequential fills")
	}
	if d.Stats().Reads >= st.Accesses {
		t.Fatalf("non-inclusive filtering failed: %d DRAM reads for %d line requests",
			d.Stats().Reads, st.Accesses)
	}
}

func TestMXAFillSpanningTwoBlocks(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	meter := &energy.Counters{}
	ac := addrcache.New(k, addrcache.Config{Sets: 32, Ways: 4}, d.Req, d.Resp, meter)
	_, xcReq, xcResp := NewXCOverAddr(k, ac)

	// Issue a raw 4-word fill that straddles a 32-byte boundary.
	base := img.AllocWords(16)
	for i := 0; i < 16; i++ {
		img.W64(base+uint64(i)*8, uint64(i+1))
	}
	xcReq.MustPush(dram.Request{ID: 77, Addr: base + 16, Words: 4})
	var resp dram.Response
	if !k.RunUntil(func() bool {
		r, ok := xcResp.Pop()
		resp = r
		return ok
	}, 100000) {
		t.Fatal("adapter never responded")
	}
	if resp.ID != 77 || len(resp.Data) != 4 {
		t.Fatalf("resp: %+v", resp)
	}
	for i, v := range resp.Data {
		if v != uint64(i+3) {
			t.Fatalf("word %d: %d want %d", i, v, i+3)
		}
	}
	if ac.Stats().Accesses != 2 {
		t.Fatalf("straddling fill took %d line accesses, want 2", ac.Stats().Accesses)
	}
}

func TestStreamSequentialDelivery(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	base := img.AllocWords(256)
	s := NewStream(k, d, base, 256)

	// Nothing available before the first bursts land.
	if s.Take(1) {
		t.Fatal("stream delivered before any fetch completed")
	}
	consumed := uint64(0)
	if !k.RunUntil(func() bool {
		for s.Take(8) {
			consumed += 8
		}
		return consumed == 256
	}, 100000) {
		t.Fatalf("stream stalled at %d/256 words", consumed)
	}
	if !s.Done() {
		t.Fatal("stream not done after full consumption")
	}
	if s.DRAMStats().Reads != 256/8 {
		t.Fatalf("stream issued %d bursts, want 32", s.DRAMStats().Reads)
	}
	// Row locality: sequential streaming should be mostly row hits.
	if s.DRAMStats().RowHits <= s.DRAMStats().RowMisses {
		t.Fatalf("sequential stream without row locality: %+v", s.DRAMStats())
	}
}

func TestStreamBackpressure(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	base := img.AllocWords(1024)
	s := NewStream(k, d, base, 1024)
	// Never consume: the prefetcher must cap its buffering (4 bursts
	// outstanding plus what has landed) rather than fetch the whole range.
	k.Run(2000)
	if s.Avail() > 64 {
		t.Fatalf("prefetcher ran unbounded: %d words buffered", s.Avail())
	}
	if s.Done() {
		t.Fatal("stream claims done without consumption")
	}
}
