package hier

import (
	"fmt"
	"strings"

	"xcache/internal/check"
)

// The coherence litmus suite: classic multi-copy shapes (store buffering,
// message passing, load buffering), write-serialization, upgrade, and an
// inclusion-violation shape, each expressed as deterministic per-port
// scripts over the coherent hierarchy. The directory serializes
// transactions per key, so the hierarchy is sequentially consistent —
// every "forbidden" relaxed outcome must be architecturally impossible
// here, and each test's Check enforces that independent of the golden.
//
// Litmus naming: lowercase shape mnemonics from the memory-model
// literature (sb, mp, lb), coh-* for write-serialization shapes, and
// descriptive names for hierarchy-specific shapes (inclusion, upgrade).

// Litmus is one litmus test: a hierarchy configuration, seeded initial
// values, per-port scripts, and the architectural assertion.
type Litmus struct {
	Name    string
	Cfg     CohConfig
	Seeds   map[int]uint64
	Scripts [][]ScriptOp
	Check   func(s *CohSystem, res [][]uint64) error
}

// RunLitmus executes one litmus test under full invariant checking and
// returns the canonical rendered outcome.
func RunLitmus(l Litmus) (string, error) {
	s, err := NewCohSystem(l.Cfg)
	if err != nil {
		return "", err
	}
	for i, v := range l.Seeds {
		s.Seed(i, v)
	}
	h := check.Attach(s.K, check.Default())
	res, err := RunScripts(s, h, l.Scripts, 100_000)
	if err != nil {
		return "", fmt.Errorf("%s: %w", l.Name, err)
	}
	if err := l.Check(s, res); err != nil {
		return "", fmt.Errorf("%s: %v", l.Name, err)
	}
	return renderLitmus(l.Name, s, res), nil
}

// renderLitmus produces the canonical outcome line pinned by the golden:
// per-port response values plus the directory's protocol ledger.
func renderLitmus(name string, s *CohSystem, res [][]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", name)
	for p, vals := range res {
		fmt.Fprintf(&b, " P%d=%v", p, vals)
	}
	st := s.Dir.Stats()
	fmt.Fprintf(&b, " | txns=%d grants=%d inval=%d down=%d backinval=%d wb=%d flush=%d",
		st.Txns, st.Grants, st.Invals, st.Downgrades, st.BackInvals, st.Writebacks, st.Flushes)
	return b.String()
}

func forbid(cond bool, shape string) error {
	if cond {
		return fmt.Errorf("forbidden outcome observed: %s", shape)
	}
	return nil
}

func expectVal(res [][]uint64, port, idx int, want uint64) error {
	if idx >= len(res[port]) {
		return fmt.Errorf("port %d produced %d results, need index %d", port, len(res[port]), idx)
	}
	if got := res[port][idx]; got != want {
		return fmt.Errorf("port %d result %d = %d, want %d", port, idx, got, want)
	}
	return nil
}

// LitmusTests returns the full suite.
func LitmusTests() []Litmus {
	return []Litmus{
		{
			// Store buffering: both ports store then read the other's key.
			// Under SC at least one load observes the other store.
			Name: "sb",
			Scripts: [][]ScriptOp{
				{St(0, 1), Ld(1)},
				{St(1, 1), Ld(0)},
			},
			Check: func(_ *CohSystem, res [][]uint64) error {
				return forbid(res[0][1] == 0 && res[1][1] == 0, "sb: both loads read 0")
			},
		},
		{
			// Message passing: data must be visible once the flag is.
			Name:  "mp",
			Seeds: map[int]uint64{0: 0, 1: 0},
			Scripts: [][]ScriptOp{
				{St(0, 42), St(1, 1)},
				{Poll(1, 1), Ld(0)},
			},
			Check: func(_ *CohSystem, res [][]uint64) error {
				return expectVal(res, 1, 1, 42)
			},
		},
		{
			// Load buffering: neither load may observe the other port's
			// later store (no value can appear out of thin air under SC
			// with in-order ports).
			Name: "lb",
			Scripts: [][]ScriptOp{
				{Ld(0), St(1, 1)},
				{Ld(1), St(0, 1)},
			},
			Check: func(_ *CohSystem, res [][]uint64) error {
				return forbid(res[0][0] == 1 && res[1][0] == 1, "lb: both loads read the later stores")
			},
		},
		{
			// Write serialization: concurrent merges from both ports must
			// both land exactly once; both ports converge on the sum.
			Name: "coh-ww",
			Scripts: [][]ScriptOp{
				{Merge(3, 5), Poll(3, 12)},
				{Merge(3, 7), Poll(3, 12)},
			},
			Check: func(_ *CohSystem, res [][]uint64) error {
				if err := expectVal(res, 0, 1, 12); err != nil {
					return err
				}
				return expectVal(res, 1, 1, 12)
			},
		},
		{
			// Ownership upgrade: a Shared pair, one port upgrades with a
			// merge; the other's copy is invalidated and re-reads the new
			// value.
			Name:  "upgrade",
			Seeds: map[int]uint64{5: 10},
			Scripts: [][]ScriptOp{
				{Ld(5), Merge(5, 1)},
				{Ld(5), Poll(5, 11)},
			},
			Check: func(s *CohSystem, res [][]uint64) error {
				if err := expectVal(res, 0, 0, 10); err != nil {
					return err
				}
				if err := expectVal(res, 1, 1, 11); err != nil {
					return err
				}
				if s.Dir.Stats().Invals == 0 {
					return fmt.Errorf("upgrade completed without any invalidation")
				}
				return nil
			},
		},
		{
			// Inclusion violation shape: port 0 takes key 0 Modified, then
			// port 1 floods a tiny L2 until key 0's set is evicted. The
			// back-invalidation must recall the M copy and flush its value
			// to the home address, so port 0's re-read still observes 7.
			Name: "inclusion",
			Cfg: CohConfig{
				Ports:   2,
				L2Sets:  4,
				L2Ways:  2,
				NumKeys: 64,
			},
			Scripts: [][]ScriptOp{
				{St(0, 7), Poll(40, 1), Ld(0)},
				{
					Ld(8), Ld(9), Ld(10), Ld(11), Ld(12), Ld(13), Ld(14), Ld(15),
					Ld(16), Ld(17), Ld(18), Ld(19), Ld(20), Ld(21), Ld(22), Ld(23),
					Ld(24), Ld(25), Ld(26), Ld(27), Ld(28), Ld(29), Ld(30), Ld(31),
					Ld(32), Ld(33), Ld(34), Ld(35), Ld(36), Ld(37), Ld(38), Ld(39),
					St(40, 1),
				},
			},
			Check: func(s *CohSystem, res [][]uint64) error {
				if err := expectVal(res, 0, 2, 7); err != nil {
					return err
				}
				if s.Dir.Stats().BackInvals == 0 {
					return fmt.Errorf("flood never triggered a back-invalidation")
				}
				if s.Dir.Stats().Flushes == 0 {
					return fmt.Errorf("the recalled Modified value was never flushed home")
				}
				return nil
			},
		},
	}
}
