package hier

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateLitmus = flag.Bool("update", false, "rewrite testdata/litmus.golden with the observed outcomes")

// TestLitmusSuite runs every litmus test under full invariant checking.
// Each test's Check enforces the architectural assertion (forbidden
// outcomes stay impossible); the golden file additionally pins the exact
// rendered outcome — response values and the directory's protocol ledger
// — so an unintended protocol change is caught even when it stays
// architecturally legal.
func TestLitmusSuite(t *testing.T) {
	var lines []string
	for _, l := range LitmusTests() {
		out, err := RunLitmus(l)
		if err != nil {
			t.Errorf("%v", err)
			continue
		}
		t.Log(out)
		lines = append(lines, out)
	}
	if t.Failed() {
		return
	}
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", "litmus.golden")
	if *updateLitmus {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("litmus outcomes drifted from golden.\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLitmusDeterminism: the whole suite renders identically across runs —
// scripts, protocol, and fault rolls are fully deterministic.
func TestLitmusDeterminism(t *testing.T) {
	l := LitmusTests()[0]
	a, err := RunLitmus(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLitmus(l)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("non-deterministic litmus outcome:\n%s\n%s", a, b)
	}
}
