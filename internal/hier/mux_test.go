package hier

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/ctrl"
	"xcache/internal/dram"
	"xcache/internal/energy"
	"xcache/internal/mem"
	"xcache/internal/metatag"
	"xcache/internal/sim"
)

// TestStreamWalkerSharedChannel: an affine stream and a walker cache bind
// to two DRAMMux ports over one channel. Under contention both clients
// must finish with correct data — every response routed back to the port
// that issued its request — and the single channel must carry the traffic
// of both.
func TestStreamWalkerSharedChannel(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	d := dram.New(k, dram.DefaultConfig(), img)
	mux := NewDRAMMux(k, d)
	meter := &energy.Counters{}

	xcReq, xcResp := mux.Port("mux.xc", 16)
	xc, err := core.Build(k, l2Config(), arraySpec(), xcReq, xcResp, meter)
	if err != nil {
		t.Fatal(err)
	}
	arr := img.AllocWords(64)
	for i := 0; i < 64; i++ {
		img.W64(arr+uint64(i)*8, uint64(i)*7)
	}
	xc.SetEnv(0, arr)

	const streamWords = 512
	streamBase := img.AllocWords(streamWords)
	sReq, sResp := mux.Port("mux.stream", 16)
	s := NewStreamOn(k, sReq, sResp, streamBase, streamWords)

	// Drive both concurrently: the stream consumes continuously while the
	// walker sweeps all 64 keys, so their bursts interleave on the channel.
	got := map[uint64]ctrl.MetaResp{}
	next := uint64(0)
	consumed := uint64(0)
	ok := k.RunUntil(func() bool {
		if next < 64 && xc.Ctrl.ReqQ.CanPush() {
			xc.Ctrl.ReqQ.MustPush(ctrl.MetaReq{ID: next, Op: ctrl.MetaLoad,
				Key: metatag.Key{next, 0}, Issued: k.Cycle()})
			next++
		}
		drainResp(xc.Ctrl.RespQ, got)
		for s.Take(8) {
			consumed += 8
		}
		return len(got) == 64 && consumed == streamWords
	}, 200_000)
	if !ok {
		t.Fatalf("shared channel wedged: %d/64 walks, %d/%d stream words",
			len(got), consumed, uint64(streamWords))
	}
	for i := uint64(0); i < 64; i++ {
		if got[i].Value != i*7 {
			t.Fatalf("walker key %d = %d, want %d (cross-port response routing?)",
				i, got[i].Value, i*7)
		}
	}
	if !s.Done() {
		t.Fatal("stream not done after consuming its full range")
	}

	// Routing ledger: everything forwarded came back to a port, and the
	// one channel saw both clients' reads.
	ms := mux.Stats()
	if ms.Forwarded == 0 || ms.Returned != ms.Forwarded {
		t.Fatalf("mux ledger forwarded=%d returned=%d", ms.Forwarded, ms.Returned)
	}
	if reads := d.Stats().Reads; reads < streamWords/8 {
		t.Fatalf("channel saw %d reads, fewer than the stream's %d bursts alone",
			reads, streamWords/8)
	}
	// On a shared port the stream cannot claim the channel's stats.
	if s.DRAMStats() != (dram.Stats{}) {
		t.Fatal("stream reported channel stats it does not own")
	}
}
