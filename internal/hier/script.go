package hier

import (
	"fmt"

	"xcache/internal/check"
	"xcache/internal/metatag"
	"xcache/internal/sim"
)

// ScriptOp is one step of a per-port coherence script. Scripts run
// closed-loop: each port waits for its response before issuing the next
// op, so a script is a deterministic cross-controller interleaving — the
// substrate of the litmus suite and the coherence fuzz rigs.
type ScriptOp struct {
	Op      CohOp
	Key     uint64
	Payload uint64
	Gap     int    // idle cycles after the response before the next op
	Poll    bool   // reissue the load until its value equals Want
	Want    uint64 // the value a Poll waits for
}

// Ld, St, Merge, and Poll build script steps.
func Ld(key uint64) ScriptOp            { return ScriptOp{Op: OpLoad, Key: key} }
func St(key, val uint64) ScriptOp       { return ScriptOp{Op: OpStore, Key: key, Payload: val} }
func Merge(key, val uint64) ScriptOp    { return ScriptOp{Op: OpMerge, Key: key, Payload: val} }
func Poll(key, want uint64) ScriptOp    { return ScriptOp{Op: OpLoad, Key: key, Poll: true, Want: want} }
func MergeMin(key, val uint64) ScriptOp { return ScriptOp{Op: OpMergeMin, Key: key, Payload: val} }

type scriptPort struct {
	ops      []ScriptOp
	idx      int
	seq      uint64
	waitID   uint64
	gapUntil sim.Cycle
	results  []uint64
}

// RunScripts drives one script per port to completion (plus a quiesce
// tail), under the harness's supervision when h is non-nil. It returns
// each port's response values in script order; a poll records only its
// final, matching value. Any latched coherence violation, invariant
// failure, or L2 trap aborts with an error.
func RunScripts(s *CohSystem, h *check.Harness, scripts [][]ScriptOp, maxCycles int) ([][]uint64, error) {
	if len(scripts) > len(s.Ports) {
		return nil, fmt.Errorf("hier: %d scripts for %d ports", len(scripts), len(s.Ports))
	}
	ports := make([]*scriptPort, len(scripts))
	for i, ops := range scripts {
		ports[i] = &scriptPort{ops: ops}
	}
	results := func() [][]uint64 {
		out := make([][]uint64, len(ports))
		for i, p := range ports {
			out[i] = p.results
		}
		return out
	}
	fail := func(err error) ([][]uint64, error) { return results(), err }

	for i := 0; i < maxCycles; i++ {
		cy := s.K.Cycle()
		done := true
		for pi, p := range ports {
			l1 := s.Ports[pi]
			for {
				resp, ok := l1.RespQ.Pop()
				if !ok {
					break
				}
				if resp.ID != p.waitID {
					return fail(fmt.Errorf("hier: port %d got response id %d, waiting for %d", pi, resp.ID, p.waitID))
				}
				op := p.ops[p.idx]
				p.waitID = 0
				if op.Poll && resp.Value != op.Want {
					p.gapUntil = cy + 4 // retry the poll shortly
					continue
				}
				p.results = append(p.results, resp.Value)
				p.idx++
				p.gapUntil = cy + sim.Cycle(op.Gap)
			}
			if p.idx < len(p.ops) {
				done = false
				if p.waitID == 0 && cy >= p.gapUntil && l1.ReqQ.CanPush() {
					op := p.ops[p.idx]
					p.seq++
					p.waitID = uint64(pi+1)<<32 | p.seq
					l1.ReqQ.MustPush(CohReq{ID: p.waitID, Op: op.Op,
						Key: metatag.Key{op.Key, 0}, Payload: op.Payload})
				}
			} else if p.waitID != 0 {
				done = false
			}
		}
		if done && s.Idle() {
			return results(), nil
		}
		if h != nil {
			if err := h.Step(); err != nil {
				return fail(fmt.Errorf("hier: queue overflow: %w", err))
			}
			if err := h.Err(); err != nil {
				return fail(err)
			}
		} else {
			s.K.Step()
			if err := s.Err(); err != nil {
				return fail(err)
			}
		}
		if t := s.L2.Ctrl.Trap(); t != nil {
			return fail(fmt.Errorf("hier: L2 trapped: %w", t))
		}
	}
	return fail(fmt.Errorf("hier: scripts did not complete within %d cycles", maxCycles))
}
