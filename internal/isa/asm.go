package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses one routine's worth of microcode source. Syntax:
//
//	; comment                 — also '#' and '//' comments
//	label:                    — branch targets, local to this routine
//	  addi r3, r1, -8
//	  lde r4, e0              — environment operand 0
//	  beq r3, r4, match
//	  state WAIT_FILL         — names resolved through syms
//
// syms maps names (states, events, response statuses, DSA constants) to
// immediate values. Branch targets become routine-relative instruction
// indices.
func Assemble(src string, syms map[string]int64) ([]Instr, error) {
	type fixup struct {
		instr int
		label string
		line  int
	}
	var (
		prog   []Instr
		labels = map[string]int{}
		fixups []fixup
	)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels, possibly followed by an instruction on the same line.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			name := strings.TrimSpace(line[:colon])
			if !isIdent(name) {
				return nil, fmt.Errorf("line %d: bad label %q", lineNo+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		mnemonic, rest := splitMnemonic(line)
		op, ok := opByName(mnemonic)
		if !ok {
			return nil, fmt.Errorf("line %d: unknown op %q", lineNo+1, mnemonic)
		}
		operands := splitOperands(rest)
		in := Instr{Op: op}
		shape := op.OpShape()
		want := operandCount(shape)
		if len(operands) != want {
			return nil, fmt.Errorf("line %d: %s takes %d operands, got %d", lineNo+1, op.Name(), want, len(operands))
		}
		parseReg := func(s string, into *uint8) error {
			r, err := regIndex(s)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			*into = r
			return nil
		}
		parseImm := func(s string) error {
			v, err := immValue(s, syms)
			if err != nil {
				return fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			if v < ImmMin || v > ImmMax {
				return fmt.Errorf("line %d: immediate %d out of range", lineNo+1, v)
			}
			in.Imm = int32(v)
			return nil
		}
		parseLabel := func(s string) error {
			if v, err := immValue(s, syms); err == nil {
				if v < ImmMin || v > ImmMax {
					return fmt.Errorf("line %d: branch target %d out of range", lineNo+1, v)
				}
				in.Imm = int32(v)
				return nil
			}
			if !isIdent(s) {
				return fmt.Errorf("line %d: bad branch target %q", lineNo+1, s)
			}
			fixups = append(fixups, fixup{instr: len(prog), label: s, line: lineNo + 1})
			return nil
		}
		var err error
		switch shape {
		case ShapeNone:
		case ShapeR:
			err = parseReg(operands[0], &in.Dst)
		case ShapeRR:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				err = parseReg(operands[1], &in.A)
			}
		case ShapeRRR:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				if err = parseReg(operands[1], &in.A); err == nil {
					err = parseReg(operands[2], &in.B)
				}
			}
		case ShapeRI:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				err = parseImm(operands[1])
			}
		case ShapeRRI:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				if err = parseReg(operands[1], &in.A); err == nil {
					err = parseImm(operands[2])
				}
			}
		case ShapeI:
			err = parseImm(operands[0])
		case ShapeL:
			err = parseLabel(operands[0])
		case ShapeRL:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				err = parseLabel(operands[1])
			}
		case ShapeRRL:
			if err = parseReg(operands[0], &in.Dst); err == nil {
				if err = parseReg(operands[1], &in.A); err == nil {
					err = parseLabel(operands[2])
				}
			}
		}
		if err != nil {
			return nil, err
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		if target > ImmMax {
			return nil, fmt.Errorf("line %d: label %q target %d out of immediate range", f.line, f.label, target)
		}
		prog[f.instr].Imm = int32(target)
	}
	return prog, nil
}

// Disassemble renders a routine as text, one instruction per line.
func Disassemble(prog []Instr) string {
	var b strings.Builder
	for pc, in := range prog {
		fmt.Fprintf(&b, "%3d: %s\n", pc, in.String())
	}
	return b.String()
}

func stripComment(s string) string {
	for _, marker := range []string{";", "#", "//"} {
		if i := strings.Index(s, marker); i >= 0 {
			s = s[:i]
		}
	}
	return s
}

func splitMnemonic(line string) (mnemonic, rest string) {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return strings.ToLower(line[:i]), line[i+1:]
	}
	return strings.ToLower(line), ""
}

func splitOperands(rest string) []string {
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func operandCount(s Shape) int {
	switch s {
	case ShapeNone:
		return 0
	case ShapeR, ShapeI, ShapeL:
		return 1
	case ShapeRR, ShapeRI, ShapeRL:
		return 2
	default:
		return 3
	}
}

func regIndex(s string) (uint8, error) {
	s = strings.ToLower(s)
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func immValue(s string, syms map[string]int64) (int64, error) {
	ls := strings.ToLower(s)
	// Environment operand shorthand: e0..e15.
	if len(ls) >= 2 && ls[0] == 'e' {
		if n, err := strconv.Atoi(ls[1:]); err == nil && n >= 0 && n < 16 {
			return int64(n), nil
		}
	}
	if v, err := strconv.ParseInt(ls, 0, 64); err == nil {
		return v, nil
	}
	if syms != nil {
		if v, ok := syms[s]; ok {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unresolvable immediate %q", s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func opByName(name string) (Op, bool) {
	for op := Op(1); op < opMax; op++ {
		if opTable[op].name == name {
			return op, true
		}
	}
	return OpInvalid, false
}
