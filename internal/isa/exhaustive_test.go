package isa

import (
	"fmt"
	"strings"
	"testing"
)

// TestEveryOpAssembles builds a syntactically valid instance of every op
// and round-trips it through the assembler, encoder and disassembler.
func TestEveryOpAssembles(t *testing.T) {
	syms := map[string]int64{"S": 1}
	for op := Op(1); op < opMax; op++ {
		var src string
		switch op.OpShape() {
		case ShapeNone:
			src = op.Name()
		case ShapeR:
			src = op.Name() + " r3"
		case ShapeRR:
			src = op.Name() + " r3, r4"
		case ShapeRRR:
			src = op.Name() + " r3, r4, r5"
		case ShapeRI:
			src = op.Name() + " r3, 7"
		case ShapeRRI:
			src = op.Name() + " r3, r4, 7"
		case ShapeI:
			src = op.Name() + " 1"
		case ShapeL:
			src = "x: " + op.Name() + " x"
		case ShapeRL:
			src = "x: " + op.Name() + " r3, x"
		case ShapeRRL:
			src = "x: " + op.Name() + " r3, r4, x"
		}
		prog, err := Assemble(src, syms)
		if err != nil {
			t.Errorf("%s: %v", op.Name(), err)
			continue
		}
		if prog[0].Op != op {
			t.Errorf("%s assembled to %s", op.Name(), prog[0].Op.Name())
		}
		// Encode/decode round trip.
		got := Decode(prog[0].MustEncode())
		if got.Op != op {
			t.Errorf("%s: encode/decode changed op to %s", op.Name(), got.Op.Name())
		}
		// Disassembly re-assembles to the same instruction (branch targets
		// print as @N which the assembler reads as absolute immediates).
		dis := strings.TrimSpace(prog[0].String())
		dis = strings.ReplaceAll(dis, "@", "")
		prog2, err := Assemble(dis, syms)
		if err != nil {
			t.Errorf("%s: disassembly %q did not re-assemble: %v", op.Name(), dis, err)
			continue
		}
		if prog2[0].MustEncode() != prog[0].MustEncode() {
			t.Errorf("%s: disassembly round trip %q changed encoding", op.Name(), dis)
		}
	}
}

// TestCategoryCoverage pins every op to its hardware module category so
// category drift (which changes energy accounting) is caught.
func TestCategoryCoverage(t *testing.T) {
	want := map[Category][]Op{
		CatAGEN:    {OpAdd, OpAnd, OpOr, OpXor, OpAddi, OpInc, OpDec, OpShl, OpShr, OpSra, OpSrl, OpNot, OpAllocR, OpMul, OpLi, OpMov, OpLde},
		CatQueue:   {OpEnqFill, OpEnqFillI, OpEnqWb, OpEnqResp, OpEnqEv, OpPeek, OpDeq},
		CatMeta:    {OpAllocM, OpDeallocM, OpUpdate, OpState, OpHalt, OpAbort},
		CatControl: {OpBmiss, OpBhit, OpBeq, OpBnz, OpBlt, OpBge, OpBle, OpJmp},
		CatDataRAM: {OpAllocD, OpAllocDI, OpDeallocD, OpReadD, OpWriteD},
	}
	covered := 0
	for cat, ops := range want {
		for _, op := range ops {
			if op.Category() != cat {
				t.Errorf("%s: category %v, want %v", op.Name(), op.Category(), cat)
			}
			covered++
		}
	}
	if covered != int(opMax)-1 {
		t.Errorf("category table covers %d ops, ISA has %d", covered, opMax-1)
	}
	for _, cat := range []Category{CatAGEN, CatQueue, CatMeta, CatControl, CatDataRAM} {
		if cat.String() == "?" {
			t.Errorf("category %d has no name", cat)
		}
	}
}

func TestOpNamesUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(1); op < opMax; op++ {
		name := op.Name()
		if name == "" || strings.HasPrefix(name, "op") {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", name, prev, op)
		}
		seen[name] = op
	}
}

func TestDisassembleStable(t *testing.T) {
	src := "li r1, -5\nshl r2, r1, 63\nbeq r1, r2, 0"
	p1, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	d1 := Disassemble(p1)
	// Disassembling twice is identical (no hidden state).
	if d2 := Disassemble(p1); d1 != d2 {
		t.Fatal("disassembly not deterministic")
	}
	if !strings.Contains(d1, "li r1, -5") {
		t.Fatalf("negative immediate lost:\n%s", d1)
	}
}

func TestWordBytesMatchesEncoding(t *testing.T) {
	if WordBytes != 4 {
		t.Fatalf("WordBytes %d; encoding is 32-bit", WordBytes)
	}
	var w interface{} = Instr{Op: OpAdd}.MustEncode()
	if _, ok := w.(uint32); !ok {
		t.Fatalf("encoding is %T, want uint32", w)
	}
}

func ExampleAssemble() {
	prog, _ := Assemble(`
		lde r4, e0
		shl r5, r1, 3
		add r5, r4, r5
		enqfilli r5, 1
		state WAIT
	`, map[string]int64{"WAIT": 2})
	fmt.Print(Disassemble(prog))
	// Output:
	//   0: lde r4, 0
	//   1: shl r5, r1, 3
	//   2: add r5, r4, r5
	//   3: enqfilli r5, 1
	//   4: state 2
}
