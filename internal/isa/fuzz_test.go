package isa

import (
	"strings"
	"testing"
)

// FuzzDecode pins the decoder's total-function contract: any 32-bit word
// decodes without panicking, renders without panicking, and — whenever
// the decoded instruction re-encodes (i.e. its opcode is defined) — the
// decode→encode→decode round trip is a fixed point. Decode clamps every
// field into its operand domain (5-bit registers, 16-bit immediate), so
// the only legal Encode failure on a decoded instruction is an undefined
// opcode.
func FuzzDecode(f *testing.F) {
	for op := Op(1); op < opMax; op++ {
		in := Instr{Op: op, Dst: 3, A: 7}
		if op.OpShape() == ShapeRRR {
			in.B = 9
		} else {
			in.Imm = -5
		}
		f.Add(in.MustEncode())
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Add(uint32(0xffff))
	f.Add(uint32(63) << 26) // highest (undefined) opcode
	f.Fuzz(func(t *testing.T, w uint32) {
		in := Decode(w)
		_ = in.String()
		word, err := in.Encode()
		if err != nil {
			if in.Op.Valid() {
				t.Fatalf("decoded instruction %s does not re-encode: %v", in, err)
			}
			return
		}
		if again := Decode(word); again != in {
			t.Fatalf("decode→encode→decode unstable: %+v vs %+v (word %08x)", in, again, w)
		}
	})
}

// FuzzAssemble pins the assembler's contract: arbitrary source never
// panics, and everything it accepts encodes into real microcode words —
// an assembled instruction that cannot encode (e.g. a numeric branch
// target outside the 16-bit immediate) is an assembler bug, caught here.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"allocm\nhalt Valid",
		"lde r4, e0\nshl r5, r1, 3\nadd r5, r4, r5\nenqfilli r5, 1\nstate WAIT",
		"top:\n  dec r2\n  bnz r2, top\n  beq r1, r3, done\n  jmp top\ndone:\n  halt VALID",
		"peek r6, 0 ; comment\nallocdi r7, 1\nwrited r7, r6\nli r8, 1\nupdate r7, r8\nenqresp r6, OK\nabort",
		"jmp 99999",     // out-of-immediate numeric branch target
		"li r1, -40000", // out-of-range immediate
		"9bad: add r1, r2, r3",
		"x: x: inc r1",
		"li r40, 1",
		"enqfill r4, r5\nenqwb r4, r5, 2\nenqev 1\ndeq",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	syms := map[string]int64{"Valid": 1, "VALID": 1, "WAIT": 2, "OK": 0, "NOTFOUND": 1}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src, syms)
		if err != nil {
			if !strings.Contains(err.Error(), "line") && !strings.Contains(err.Error(), "label") {
				t.Fatalf("assembler error without location context: %v", err)
			}
			return
		}
		for pc, in := range prog {
			if _, err := in.Encode(); err != nil {
				t.Fatalf("assembled pc %d (%s) does not encode: %v", pc, in, err)
			}
		}
		_ = Disassemble(prog)
	})
}
