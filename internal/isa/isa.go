// Package isa defines X-Cache's microcode action set (Fig 8 of the paper).
// Actions are the only primitives the programmable controller can invoke;
// each is implementable atomically in hardware with a fixed one-cycle
// latency. There are five categories, each targeting one hardware module:
// address generation (AGEN), message queues, meta-tags, control flow, and
// the data RAMs.
//
// Instructions encode to 32-bit microcode words stored in the routine RAM.
// The package also provides a small assembler/disassembler used by the
// walker compiler (package program) and by cmd/xcache-asm.
package isa

import "fmt"

// Op identifies a microcode action.
type Op uint8

// The action set. Names track the paper's Fig 8 table; a few pragmatic
// additions (li, mov, mul, lde, jmp) are noted inline.
const (
	OpInvalid Op = iota

	// AGEN — address generation / ALU.
	OpAdd    // add rd, ra, rb
	OpAnd    // and rd, ra, rb
	OpOr     // or rd, ra, rb
	OpXor    // xor rd, ra, rb
	OpAddi   // addi rd, ra, imm
	OpInc    // inc rd
	OpDec    // dec rd
	OpShl    // shl rd, ra, imm
	OpShr    // shr rd, ra, imm (logical; alias of srl kept for the paper's table)
	OpSra    // sra rd, ra, imm (arithmetic)
	OpSrl    // srl rd, ra, imm (logical)
	OpNot    // not rd, ra
	OpAllocR // allocr rd — mark an X-register live (occupancy/energy accounting)
	OpMul    // mul rd, ra, rb — hashing support; costed per Table 4
	OpLi     // li rd, imm — load a small constant
	OpMov    // mov rd, ra
	OpLde    // lde rd, imm — load DSA-specific environment operand #imm

	// Queues — message/request queues.
	OpEnqFill  // enqfill ra, rb — DRAM read: addr in ra, word count in rb
	OpEnqFillI // enqfilli ra, imm — DRAM read with immediate word count
	OpEnqWb    // enqwb ra, rb, imm — DRAM write: addr ra, imm words from data-RAM base in rb
	OpEnqResp  // enqresp ra, imm — respond to the requester: value in ra, status imm
	OpEnqEv    // enqev imm — enqueue internal event #imm to self
	OpPeek     // peek rd, imm — read word #imm of the waking message
	OpDeq      // deq — explicitly consume the waking message

	// Meta-tags.
	OpAllocM   // allocm — allocate a meta-tag entry for the walker's key
	OpDeallocM // deallocm — release the entry
	OpUpdate   // update ra, rb — set entry sector base (ra) and count (rb)
	OpState    // state imm — set entry state, end routine, keep walker (yield)
	OpHalt     // halt imm — set entry state, end routine, free the walker
	OpAbort    // abort — dealloc entry, free the walker (e.g., not-found)

	// Control flow.
	OpBmiss // bmiss lbl — branch if the walker's key misses in the meta-tags
	OpBhit  // bhit lbl — branch if it hits (stable entry)
	OpBeq   // beq ra, rb, lbl
	OpBnz   // bnz ra, lbl
	OpBlt   // blt ra, rb, lbl
	OpBge   // bge ra, rb, lbl
	OpBle   // ble ra, rb, lbl
	OpJmp   // jmp lbl

	// Data RAMs.
	OpAllocD   // allocd rd, ra — allocate ra sectors; data-RAM word base → rd
	OpAllocDI  // allocdi rd, imm — immediate sector count
	OpDeallocD // deallocd — free this walker's entry sectors
	OpReadD    // readd rd, ra — rd = dataRAM[ra]
	OpWriteD   // writed ra, rb — dataRAM[ra] = rb

	opMax
)

// Category groups ops by the hardware module they drive (Fig 8).
type Category uint8

// Action categories.
const (
	CatAGEN Category = iota
	CatQueue
	CatMeta
	CatControl
	CatDataRAM
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CatAGEN:
		return "AGEN"
	case CatQueue:
		return "Queue"
	case CatMeta:
		return "Meta"
	case CatControl:
		return "Control"
	case CatDataRAM:
		return "DataRAM"
	}
	return "?"
}

// Category returns the op's hardware category.
func (o Op) Category() Category {
	switch {
	case o >= OpAdd && o <= OpLde:
		return CatAGEN
	case o >= OpEnqFill && o <= OpDeq:
		return CatQueue
	case o >= OpAllocM && o <= OpAbort:
		return CatMeta
	case o >= OpBmiss && o <= OpJmp:
		return CatControl
	default:
		return CatDataRAM
	}
}

// Shape describes an op's operand syntax.
type Shape uint8

// Operand shapes. Letters give operand order: R register, I immediate,
// L label (an immediate that may be written as a label).
const (
	ShapeNone Shape = iota
	ShapeR          // op rd
	ShapeRR         // op rd, ra
	ShapeRRR        // op rd, ra, rb
	ShapeRI         // op rd, imm
	ShapeRRI        // op rd, ra, imm
	ShapeI          // op imm
	ShapeL          // op lbl
	ShapeRL         // op ra, lbl
	ShapeRRL        // op ra, rb, lbl
)

type opInfo struct {
	name  string
	shape Shape
}

var opTable = [opMax]opInfo{
	OpAdd:      {"add", ShapeRRR},
	OpAnd:      {"and", ShapeRRR},
	OpOr:       {"or", ShapeRRR},
	OpXor:      {"xor", ShapeRRR},
	OpAddi:     {"addi", ShapeRRI},
	OpInc:      {"inc", ShapeR},
	OpDec:      {"dec", ShapeR},
	OpShl:      {"shl", ShapeRRI},
	OpShr:      {"shr", ShapeRRI},
	OpSra:      {"sra", ShapeRRI},
	OpSrl:      {"srl", ShapeRRI},
	OpNot:      {"not", ShapeRR},
	OpAllocR:   {"allocr", ShapeR},
	OpMul:      {"mul", ShapeRRR},
	OpLi:       {"li", ShapeRI},
	OpMov:      {"mov", ShapeRR},
	OpLde:      {"lde", ShapeRI},
	OpEnqFill:  {"enqfill", ShapeRR},
	OpEnqFillI: {"enqfilli", ShapeRI},
	OpEnqWb:    {"enqwb", ShapeRRI},
	OpEnqResp:  {"enqresp", ShapeRI},
	OpEnqEv:    {"enqev", ShapeI},
	OpPeek:     {"peek", ShapeRI},
	OpDeq:      {"deq", ShapeNone},
	OpAllocM:   {"allocm", ShapeNone},
	OpDeallocM: {"deallocm", ShapeNone},
	OpUpdate:   {"update", ShapeRR},
	OpState:    {"state", ShapeI},
	OpHalt:     {"halt", ShapeI},
	OpAbort:    {"abort", ShapeNone},
	OpBmiss:    {"bmiss", ShapeL},
	OpBhit:     {"bhit", ShapeL},
	OpBeq:      {"beq", ShapeRRL},
	OpBnz:      {"bnz", ShapeRL},
	OpBlt:      {"blt", ShapeRRL},
	OpBge:      {"bge", ShapeRRL},
	OpBle:      {"ble", ShapeRRL},
	OpJmp:      {"jmp", ShapeL},
	OpAllocD:   {"allocd", ShapeRR},
	OpAllocDI:  {"allocdi", ShapeRI},
	OpDeallocD: {"deallocd", ShapeNone},
	OpReadD:    {"readd", ShapeRR},
	OpWriteD:   {"writed", ShapeRR},
}

// Name returns the assembler mnemonic.
func (o Op) Name() string {
	if o < opMax && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", o)
}

// OpShape returns the operand shape for an op.
func (o Op) OpShape() Shape {
	if o < opMax {
		return opTable[o].shape
	}
	return ShapeNone
}

// IsTerminal reports whether the op legally ends a routine.
func (o Op) IsTerminal() bool {
	return o == OpState || o == OpHalt || o == OpAbort
}

// IsBranch reports whether the op's immediate is a routine-relative
// microcode target.
func (o Op) IsBranch() bool {
	switch o.OpShape() {
	case ShapeL, ShapeRL, ShapeRRL:
		return true
	}
	return false
}

// regFieldNames are the encoding-order register operand slot names.
var regFieldNames = [3]string{"dst", "a", "b"}

// RegFieldName names the k'th register operand slot as RegOperands orders
// them: "dst", "a", "b".
func RegFieldName(k int) string {
	if k >= 0 && k < len(regFieldNames) {
		return regFieldNames[k]
	}
	return "?"
}

// RegOperands returns the register fields the instruction's shape actually
// reads or writes, in encoding order (dst, a, b), and how many of them are
// meaningful. Fields beyond n carry don't-care bits from decode and must
// be ignored; the controller's bounds checks and the static verifier both
// consume this single source of truth for which operands matter.
func (i Instr) RegOperands() (regs [3]uint8, n int) {
	switch i.Op.OpShape() {
	case ShapeR, ShapeRI, ShapeRL:
		return [3]uint8{i.Dst}, 1
	case ShapeRR, ShapeRRI, ShapeRRL:
		return [3]uint8{i.Dst, i.A}, 2
	case ShapeRRR:
		return [3]uint8{i.Dst, i.A, i.B}, 3
	}
	return regs, 0
}

// Instr is one decoded microcode action. Branch immediates are
// routine-relative instruction indices.
type Instr struct {
	Op   Op
	Dst  uint8 // first register operand (written for ALU ops)
	A    uint8 // second register operand
	B    uint8 // third register operand (RRR shape)
	Imm  int32 // immediate / branch target, 16-bit signed range
	Note string
}

// ImmMin and ImmMax bound the encodable immediate.
const (
	ImmMin = -32768
	ImmMax = 32767
)

// Valid reports whether o names a defined action (OpInvalid excluded).
func (o Op) Valid() bool {
	return o > OpInvalid && o < opMax && opTable[o].name != ""
}

// EncodeError reports why an instruction cannot be packed into a
// microcode word: an undefined op or an immediate outside the 16-bit
// signed field.
type EncodeError struct {
	Instr  Instr
	Reason string
}

// Error implements error.
func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %s: %s", e.Instr.Op.Name(), e.Reason)
}

// Encode packs the instruction into a 32-bit microcode word:
//
//	[31:26] op  [25:21] dst  [20:16] a  [15:0] imm (or b in [4:0] for RRR)
//
// It returns an *EncodeError for an undefined op or an immediate outside
// [ImmMin, ImmMax]; it never panics.
func (i Instr) Encode() (uint32, error) {
	if !i.Op.Valid() {
		return 0, &EncodeError{Instr: i, Reason: fmt.Sprintf("undefined op %d", i.Op)}
	}
	if i.Imm < ImmMin || i.Imm > ImmMax {
		return 0, &EncodeError{Instr: i, Reason: fmt.Sprintf("immediate %d out of range", i.Imm)}
	}
	w := uint32(i.Op)<<26 | uint32(i.Dst&0x1f)<<21 | uint32(i.A&0x1f)<<16
	if i.Op.OpShape() == ShapeRRR {
		w |= uint32(i.B & 0x1f)
	} else {
		w |= uint32(uint16(int16(i.Imm)))
	}
	return w, nil
}

// MustEncode is Encode for instructions known valid by construction
// (compiler-emitted code); it panics on the error path and is the only
// panic left in this package.
func (i Instr) MustEncode() uint32 {
	w, err := i.Encode()
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a microcode word.
func Decode(w uint32) Instr {
	in := Instr{
		Op:  Op(w >> 26),
		Dst: uint8(w >> 21 & 0x1f),
		A:   uint8(w >> 16 & 0x1f),
	}
	if in.Op.OpShape() == ShapeRRR {
		in.B = uint8(w & 0x1f)
	} else {
		in.Imm = int32(int16(uint16(w & 0xffff)))
	}
	return in
}

// String renders the instruction in assembler syntax.
func (i Instr) String() string {
	switch i.Op.OpShape() {
	case ShapeNone:
		return i.Op.Name()
	case ShapeR:
		return fmt.Sprintf("%s r%d", i.Op.Name(), i.Dst)
	case ShapeRR:
		return fmt.Sprintf("%s r%d, r%d", i.Op.Name(), i.Dst, i.A)
	case ShapeRRR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op.Name(), i.Dst, i.A, i.B)
	case ShapeRI:
		return fmt.Sprintf("%s r%d, %d", i.Op.Name(), i.Dst, i.Imm)
	case ShapeRRI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op.Name(), i.Dst, i.A, i.Imm)
	case ShapeI:
		return fmt.Sprintf("%s %d", i.Op.Name(), i.Imm)
	case ShapeL:
		return fmt.Sprintf("%s @%d", i.Op.Name(), i.Imm)
	case ShapeRL:
		return fmt.Sprintf("%s r%d, @%d", i.Op.Name(), i.Dst, i.Imm)
	case ShapeRRL:
		return fmt.Sprintf("%s r%d, r%d, @%d", i.Op.Name(), i.Dst, i.A, i.Imm)
	}
	return i.Op.Name()
}

// WordBytes is the size of one encoded microcode action, used by the
// energy model to charge routine-RAM fetches.
const WordBytes = 4
