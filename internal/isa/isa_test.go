package isa

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	// Every op × the corner immediates of the 16-bit field (RRR ops carry
	// B instead). Exhaustive over the opcode space, so a new op with a
	// broken shape entry fails here before anything executes it.
	imms := []int32{0, 1, -1, ImmMin, ImmMax}
	for op := Op(1); op < opMax; op++ {
		for _, imm := range imms {
			in := Instr{Op: op, Dst: 3, A: 7, Imm: imm}
			if op.OpShape() == ShapeRRR {
				in.Imm = 0
				in.B = 9
			}
			got := Decode(in.MustEncode())
			if got.Op != in.Op || got.Dst != in.Dst || got.A != in.A || got.B != in.B || got.Imm != in.Imm {
				t.Errorf("%s imm=%d: round trip %+v -> %+v", op.Name(), imm, in, got)
			}
		}
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(opRaw, dst, a, b uint8, imm int16) bool {
		op := Op(opRaw%uint8(opMax-1)) + 1
		in := Instr{Op: op, Dst: dst & 0x1f, A: a & 0x1f}
		if op.OpShape() == ShapeRRR {
			in.B = b & 0x1f
		} else {
			in.Imm = int32(imm)
		}
		got := Decode(in.MustEncode())
		return got.Op == in.Op && got.Dst == in.Dst && got.A == in.A &&
			got.B == in.B && got.Imm == in.Imm
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestImmediateRangeEnforced(t *testing.T) {
	bad := Instr{Op: OpAddi, Imm: 40000}
	if _, err := bad.Encode(); err == nil {
		t.Fatal("expected error for out-of-range immediate")
	} else {
		var ee *EncodeError
		if !errors.As(err, &ee) || !strings.Contains(ee.Error(), "out of range") {
			t.Fatalf("wrong error: %v", err)
		}
	}
	if _, err := (Instr{Op: OpInvalid}).Encode(); err == nil {
		t.Fatal("expected error for invalid opcode")
	}
	if _, err := (Instr{Op: opMax}).Encode(); err == nil {
		t.Fatal("expected error for out-of-table opcode")
	}
	// MustEncode keeps the panic contract for known-good code paths.
	defer func() {
		if recover() == nil {
			t.Fatal("expected MustEncode panic for out-of-range immediate")
		}
	}()
	bad.MustEncode()
}

func TestCategories(t *testing.T) {
	cases := map[Op]Category{
		OpAdd:      CatAGEN,
		OpAllocR:   CatAGEN,
		OpLde:      CatAGEN,
		OpEnqFill:  CatQueue,
		OpPeek:     CatQueue,
		OpAllocM:   CatMeta,
		OpHalt:     CatMeta,
		OpBeq:      CatControl,
		OpJmp:      CatControl,
		OpAllocD:   CatDataRAM,
		OpWriteD:   CatDataRAM,
		OpDeallocD: CatDataRAM,
	}
	for op, want := range cases {
		if got := op.Category(); got != want {
			t.Errorf("%s: category %v, want %v", op.Name(), got, want)
		}
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
	; hash and fetch
	lde r4, e0        ; table base
	shl r5, r1, 3
	add r5, r4, r5
	enqfilli r5, 1
	state WAIT
	`
	prog, err := Assemble(src, map[string]int64{"WAIT": 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 5 {
		t.Fatalf("got %d instrs", len(prog))
	}
	if prog[0].Op != OpLde || prog[0].Dst != 4 || prog[0].Imm != 0 {
		t.Fatalf("lde parsed as %+v", prog[0])
	}
	if prog[3].Op != OpEnqFillI || prog[3].Dst != 5 || prog[3].Imm != 1 {
		t.Fatalf("enqfilli parsed as %+v", prog[3])
	}
	if prog[4].Op != OpState || prog[4].Imm != 2 {
		t.Fatalf("state parsed as %+v", prog[4])
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	src := `
	top:
	  dec r2
	  bnz r2, top
	  beq r1, r3, done
	  jmp top
	done:
	  halt VALID
	`
	prog, err := Assemble(src, map[string]int64{"VALID": 1})
	if err != nil {
		t.Fatal(err)
	}
	if prog[1].Op != OpBnz || prog[1].Imm != 0 {
		t.Fatalf("bnz target: %+v", prog[1])
	}
	if prog[2].Op != OpBeq || prog[2].Imm != 4 {
		t.Fatalf("beq target: %+v", prog[2])
	}
	if prog[3].Op != OpJmp || prog[3].Imm != 0 {
		t.Fatalf("jmp target: %+v", prog[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"frobnicate r1", "unknown op"},
		{"add r1, r2", "takes 3 operands"},
		{"add r1, r2, 7", "expected register"},
		{"bnz r1, nowhere", "undefined label"},
		{"li r1, BOGUS", "unresolvable"},
		{"li r40, 1", "bad register"},
		{"li r1, 99999", "out of range"},
		{"x: x: add r1, r2, r3", "duplicate label"},
		{"9bad: add r1, r2, r3", "bad label"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, nil); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("src %q: err=%v, want containing %q", c.src, err, c.frag)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	  li r1, 5
	loop:
	  addi r2, r2, 8
	  dec r1
	  bnz r1, loop
	  allocm
	  allocdi r6, 2
	  update r6, r1
	  writed r6, r2
	  enqresp r2, 0
	  halt 1
	`
	prog, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	dis := Disassemble(prog)
	for _, want := range []string{"li r1, 5", "bnz r1, @1", "allocm", "writed r6, r2", "halt 1"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestTerminalOps(t *testing.T) {
	for _, op := range []Op{OpState, OpHalt, OpAbort} {
		if !op.IsTerminal() {
			t.Errorf("%s should be terminal", op.Name())
		}
	}
	if OpAdd.IsTerminal() || OpEnqResp.IsTerminal() {
		t.Error("non-terminal op reported terminal")
	}
}

func TestIsBranch(t *testing.T) {
	for _, op := range []Op{OpBmiss, OpBhit, OpBeq, OpBnz, OpBlt, OpBge, OpBle, OpJmp} {
		if !op.IsBranch() {
			t.Errorf("%s should be a branch", op.Name())
		}
	}
	if OpAddi.IsBranch() || OpState.IsBranch() {
		t.Error("non-branch op reported branch")
	}
}

func TestCommentStyles(t *testing.T) {
	src := "li r1, 1 ; semi\nli r2, 2 # hash\nli r3, 3 // slashes\nhalt 0"
	prog, err := Assemble(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 4 {
		t.Fatalf("got %d instrs, want 4", len(prog))
	}
}
