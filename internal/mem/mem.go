// Package mem provides the simulated physical memory image that backs the
// DRAM model. DSAs lay their data structures (hash indices, CSR matrices,
// graph adjacency) out in an Image; the DRAM model serves real words from
// it, so cache walkers genuinely traverse pointers and compare keys rather
// than replaying canned traces.
//
// The image is word (8-byte) granular: the controller datapaths in this
// repository operate on 64-bit words, matching the paper's #Word-wide data
// sectors.
package mem

import "fmt"

// WordBytes is the size of the machine word used throughout the simulator.
const WordBytes = 8

// Image is a sparse simulated physical address space plus a bump allocator.
// The zero address is reserved (used as a null pointer by walkers), so
// allocation starts at a non-zero base.
type Image struct {
	words map[uint64]uint64
	brk   uint64
}

// NewImage returns an empty image whose allocator starts at base 0x1000.
func NewImage() *Image {
	return &Image{words: make(map[uint64]uint64), brk: 0x1000}
}

// Alloc reserves n bytes aligned to align (which must be a power of two and
// at least WordBytes) and returns the base address. The memory is zeroed.
func (im *Image) Alloc(n, align uint64) uint64 {
	if align < WordBytes || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", align))
	}
	base := (im.brk + align - 1) &^ (align - 1)
	im.brk = base + n
	return base
}

// Brk returns the current top of the allocated region.
func (im *Image) Brk() uint64 { return im.brk }

// Footprint returns the number of distinct words ever written.
func (im *Image) Footprint() int { return len(im.words) }

// W64 writes a 64-bit word. addr must be word-aligned.
func (im *Image) W64(addr, v uint64) {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned write at %#x", addr))
	}
	if v == 0 {
		delete(im.words, addr)
		return
	}
	im.words[addr] = v
}

// R64 reads a 64-bit word; unwritten memory reads as zero.
func (im *Image) R64(addr uint64) uint64 {
	if addr%WordBytes != 0 {
		panic(fmt.Sprintf("mem: unaligned read at %#x", addr))
	}
	return im.words[addr]
}

// WriteWords writes a slice of words starting at addr.
func (im *Image) WriteWords(addr uint64, ws []uint64) {
	for i, w := range ws {
		im.W64(addr+uint64(i)*WordBytes, w)
	}
}

// ReadWords reads n words starting at addr into a fresh slice.
func (im *Image) ReadWords(addr uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = im.R64(addr + uint64(i)*WordBytes)
	}
	return out
}

// AllocWords reserves and returns the base of an n-word, word-aligned
// region.
func (im *Image) AllocWords(n int) uint64 {
	return im.Alloc(uint64(n)*WordBytes, WordBytes)
}
