package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAlignmentAndDisjointness(t *testing.T) {
	im := NewImage()
	a := im.Alloc(24, 8)
	b := im.Alloc(100, 64)
	c := im.Alloc(8, 8)
	if a%8 != 0 || b%64 != 0 || c%8 != 0 {
		t.Fatalf("misaligned allocations: %#x %#x %#x", a, b, c)
	}
	if a == 0 {
		t.Fatal("allocation at null address")
	}
	if b < a+24 || c < b+100 {
		t.Fatalf("overlapping allocations: a=%#x b=%#x c=%#x", a, b, c)
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	im := NewImage()
	base := im.AllocWords(4)
	im.WriteWords(base, []uint64{1, 0, 3, ^uint64(0)})
	got := im.ReadWords(base, 4)
	want := []uint64{1, 0, 3, ^uint64(0)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	im := NewImage()
	base := im.AllocWords(2)
	if im.R64(base) != 0 || im.R64(base+8) != 0 {
		t.Fatal("fresh allocation not zeroed")
	}
}

func TestUnalignedAccessPanics(t *testing.T) {
	im := NewImage()
	for _, f := range []func(){
		func() { im.R64(3) },
		func() { im.W64(5, 1) },
		func() { im.Alloc(8, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestZeroWritesDoNotGrowFootprint(t *testing.T) {
	im := NewImage()
	base := im.AllocWords(100)
	for i := 0; i < 100; i++ {
		im.W64(base+uint64(i)*8, 0)
	}
	if im.Footprint() != 0 {
		t.Fatalf("footprint %d after zero writes", im.Footprint())
	}
	im.W64(base, 9)
	im.W64(base, 0)
	if im.Footprint() != 0 {
		t.Fatalf("footprint %d after overwrite with zero", im.Footprint())
	}
}

// Property: any written word reads back, at any word-aligned address.
func TestWriteReadProperty(t *testing.T) {
	f := func(slot uint16, v uint64) bool {
		im := NewImage()
		addr := uint64(slot) * WordBytes
		im.W64(addr, v)
		return im.R64(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
