// Package metatag implements the DSA-specific tag array of §4.1 y1/y2.
// Entries are tagged by metadata fields (row/col indices, hash keys,
// vertex ids) rather than addresses; each entry carries the walker state
// used to sequence routines, the active-walker id, and decoupled
// start/count sector pointers into the data RAM.
package metatag

import (
	"fmt"
	"math/bits"

	"xcache/internal/energy"
)

// Key is a meta-tag: up to two 64-bit metadata fields. DSAs with a single
// field (vertex id, row index) leave the second word zero and configure
// KeyWords=1.
type Key [2]uint64

// Mix hashes the key for set selection (splitmix64 over both words).
func (k Key) Mix() uint64 {
	z := k[0] ^ (k[1] * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// NoWalker marks an entry with no active walker.
const NoWalker = -1

// Entry is one meta-tag slot.
type Entry struct {
	Valid  bool
	Key    Key
	State  int   // program state id (program.StateValid when stable)
	Walker int32 // active walker id, or NoWalker
	Dirty  bool

	// Decoupled sector pointers (§4.1 y6): the entry's data occupies
	// SectorBase..SectorBase+SectorCount-1 in the data RAM.
	SectorBase  int32
	SectorCount int32

	// Parity is the even-parity bit stored over the key words at
	// allocation; a tag-RAM soft error (CorruptKeyBit) leaves it stale so
	// the controller's scrub path can detect and refetch.
	Parity uint8
	// untracked marks an entry whose stored key bits were corrupted after
	// allocation: the duplicate-alloc guard no longer tracks it.
	untracked bool

	lru uint64
}

// keyParity returns the even-parity bit over both key words.
func keyParity(k Key) uint8 {
	return uint8((bits.OnesCount64(k[0]) + bits.OnesCount64(k[1])) & 1)
}

// ParityOK reports whether the stored parity matches the stored key.
func (e *Entry) ParityOK() bool { return e.Parity == keyParity(e.Key) }

// Config sets the array geometry.
type Config struct {
	Sets     int
	Ways     int
	KeyWords int // 1 or 2 meta-tag fields compared
	// TagBytes is the stored tag entry footprint charged on miss-path
	// reads/writes; SigBytes is the compact per-lookup signature (see
	// package energy). Zero values default to 12 and 1.
	TagBytes int
	SigBytes int
	// IdentityIndex selects the set by key[0] & (Sets-1) instead of a
	// mixed hash — the natural index for dense meta-tags like GraphPulse
	// vertex ids, where it makes the direct-mapped array collision-free.
	IdentityIndex bool
}

func (c *Config) defaults() {
	if c.TagBytes == 0 {
		c.TagBytes = 12
	}
	if c.SigBytes == 0 {
		c.SigBytes = 1
	}
	if c.KeyWords == 0 {
		c.KeyWords = 1
	}
}

// Stats counts array activity.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	Misses     uint64
	Allocs     uint64
	AllocFails uint64 // all ways transient — walker must retry
	Evictions  uint64
	DirtyEvict uint64
}

// Evicted describes a victim removed by Alloc so the controller can
// writeback/deallocate its sectors.
type Evicted struct {
	Key         Key
	Dirty       bool
	SectorBase  int32
	SectorCount int32
}

// Array is the meta-tag RAM.
type Array struct {
	Cfg     Config
	sets    [][]Entry
	tick    uint64
	stats   Stats
	Meter   *energy.Counters
	present map[Key]struct{} // fast duplicate guard (mirrors hardware invariant)
}

// New builds an array; sets must be a power of two.
func New(cfg Config, meter *energy.Counters) *Array {
	cfg.defaults()
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("metatag: sets must be a positive power of two, got %d", cfg.Sets))
	}
	if cfg.Ways <= 0 {
		panic("metatag: ways must be positive")
	}
	a := &Array{Cfg: cfg, Meter: meter, present: make(map[Key]struct{})}
	a.sets = make([][]Entry, cfg.Sets)
	for i := range a.sets {
		a.sets[i] = make([]Entry, cfg.Ways)
		for w := range a.sets[i] {
			a.sets[i][w].Walker = NoWalker
		}
	}
	return a
}

// Stats returns a copy of lifetime statistics.
func (a *Array) Stats() Stats { return a.stats }

// Capacity returns sets × ways.
func (a *Array) Capacity() int { return a.Cfg.Sets * a.Cfg.Ways }

// norm zeroes key words beyond KeyWords so hashing and equality ignore
// them consistently.
func (a *Array) norm(k Key) Key {
	if a.Cfg.KeyWords < 2 {
		k[1] = 0
	}
	return k
}

func (a *Array) set(k Key) []Entry {
	if a.Cfg.IdentityIndex {
		return a.sets[k[0]&uint64(a.Cfg.Sets-1)]
	}
	return a.sets[k.Mix()&uint64(a.Cfg.Sets-1)]
}

func (a *Array) match(e *Entry, k Key) bool {
	if !e.Valid || e.Key[0] != k[0] {
		return false
	}
	return a.Cfg.KeyWords < 2 || e.Key[1] == k[1]
}

// Lookup probes for key, charging the per-lookup signature energy and
// counting the access. It returns the entry (hit in any state, including
// transient) or nil. Stable-hit accounting is the caller's job via Touch.
func (a *Array) Lookup(k Key) *Entry {
	e := a.Probe(k)
	a.Account(e != nil)
	return e
}

// Probe searches without charging energy or counting stats — the
// controller front-end uses it to re-examine a queued request it may not
// admit this cycle; Account is called once on actual admission.
func (a *Array) Probe(k Key) *Entry {
	k = a.norm(k)
	for i := range a.set(k) {
		e := &a.set(k)[i]
		if a.match(e, k) {
			return e
		}
	}
	return nil
}

// Account records one performed lookup (signature read + hit/miss).
func (a *Array) Account(hit bool) {
	a.stats.Lookups++
	if a.Meter != nil {
		a.Meter.TagBytes += uint64(a.Cfg.SigBytes)
	}
	if hit {
		a.stats.Hits++
	} else {
		a.stats.Misses++
	}
}

// Touch refreshes LRU state for a hit entry.
func (a *Array) Touch(e *Entry) {
	a.tick++
	e.lru = a.tick
}

// Alloc reserves an entry for key in state; the caller guarantees key is
// not already present (hardware invariant: one live tag per key). If a
// victim must be evicted it is returned so the controller can clean up.
// ok is false when every way holds a transient entry (walker must retry).
func (a *Array) Alloc(k Key, state int, walker int32) (*Entry, *Evicted, bool) {
	k = a.norm(k)
	if _, dup := a.present[k]; dup {
		panic(fmt.Sprintf("metatag: duplicate alloc for key %v", k))
	}
	set := a.set(k)
	var victim *Entry
	for i := range set {
		e := &set[i]
		if !e.Valid {
			victim = e
			break
		}
		// Only stable entries (no active walker) may be evicted.
		if e.Walker != NoWalker {
			continue
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	if victim == nil {
		a.stats.AllocFails++
		return nil, nil, false
	}
	var ev *Evicted
	if victim.Valid {
		a.stats.Evictions++
		if victim.Dirty {
			a.stats.DirtyEvict++
		}
		ev = &Evicted{Key: victim.Key, Dirty: victim.Dirty,
			SectorBase: victim.SectorBase, SectorCount: victim.SectorCount}
		if !victim.untracked {
			delete(a.present, victim.Key)
		}
	}
	a.stats.Allocs++
	if a.Meter != nil {
		a.Meter.TagBytes += uint64(a.Cfg.TagBytes) // full entry write
	}
	a.tick++
	*victim = Entry{Valid: true, Key: k, State: state, Walker: walker,
		Parity: keyParity(k), lru: a.tick}
	a.present[k] = struct{}{}
	return victim, ev, true
}

// Dealloc invalidates an entry (abort / not-found / explicit deallocm).
func (a *Array) Dealloc(e *Entry) {
	if !e.Valid {
		return
	}
	if a.Meter != nil {
		a.Meter.TagBytes += StateBytes // valid-bit/state clear
	}
	if !e.untracked {
		delete(a.present, e.Key)
	}
	*e = Entry{Walker: NoWalker}
}

// CorruptKeyBit flips one stored key bit of a valid entry, modeling a
// tag-RAM soft error. The duplicate-alloc guard drops the entry (hardware
// has no such mirror; the stale bits simply occupy the way until the
// parity scrub or an eviction removes them). word must be within the
// configured KeyWords.
func (a *Array) CorruptKeyBit(e *Entry, word, bit int) {
	if !e.Valid {
		panic("metatag: corrupting an invalid entry")
	}
	if word < 0 || word >= a.Cfg.KeyWords || bit < 0 || bit > 63 {
		panic(fmt.Sprintf("metatag: corrupt word %d bit %d out of range", word, bit))
	}
	if !e.untracked {
		delete(a.present, e.Key)
		e.untracked = true
	}
	e.Key[word] ^= 1 << uint(bit)
}

// ScrubSet sweeps key's set for stable entries whose stored parity no
// longer matches their key, invoking fn on each (so the controller can
// free data sectors and count the refetch) before invalidating it. It
// returns the number of entries scrubbed. Entries with an active walker
// are left alone; their walker settles them first.
func (a *Array) ScrubSet(k Key, fn func(*Entry)) int {
	k = a.norm(k)
	set := a.set(k)
	n := 0
	for i := range set {
		e := &set[i]
		if !e.Valid || e.Walker != NoWalker || e.ParityOK() {
			continue
		}
		if fn != nil {
			fn(e)
		}
		a.Dealloc(e)
		n++
	}
	return n
}

// StateBytes is the width of the entry fields a state transition or
// sector-pointer update rewrites (state byte + packed pointers), far
// narrower than the full tag entry written at allocation.
const StateBytes = 2

// Update charges a narrow entry write (state transition or sector-pointer
// update).
func (a *Array) Update() {
	if a.Meter != nil {
		a.Meter.TagBytes += StateBytes
	}
}

// Live returns the number of valid entries (for invariant checks).
func (a *Array) Live() int { return len(a.present) }

// ForEach visits every valid entry; used by drain paths (GraphPulse pops
// its coalesced events) and tests.
func (a *Array) ForEach(fn func(e *Entry)) {
	for si := range a.sets {
		for wi := range a.sets[si] {
			if a.sets[si][wi].Valid {
				fn(&a.sets[si][wi])
			}
		}
	}
}

// EvictLRUStable removes the least-recently-used stable (Valid,
// walker-free) entry anywhere in the array, returning its eviction record.
// The controller uses it to reclaim data-RAM sectors when a walker's
// allocation cannot be satisfied within its own set.
func (a *Array) EvictLRUStable() (*Evicted, bool) {
	var victim *Entry
	for si := range a.sets {
		for wi := range a.sets[si] {
			e := &a.sets[si][wi]
			if !e.Valid || e.Walker != NoWalker || e.State != 1 {
				continue
			}
			if victim == nil || e.lru < victim.lru {
				victim = e
			}
		}
	}
	if victim == nil {
		return nil, false
	}
	a.stats.Evictions++
	if victim.Dirty {
		a.stats.DirtyEvict++
	}
	ev := &Evicted{Key: victim.Key, Dirty: victim.Dirty,
		SectorBase: victim.SectorBase, SectorCount: victim.SectorCount}
	a.Dealloc(victim)
	return ev, true
}
