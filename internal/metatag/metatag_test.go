package metatag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"xcache/internal/energy"
	"xcache/internal/program"
)

func newArray(sets, ways int) *Array {
	return New(Config{Sets: sets, Ways: ways, KeyWords: 2}, &energy.Counters{})
}

func TestLookupAfterAlloc(t *testing.T) {
	a := newArray(16, 4)
	k := Key{42, 7}
	e, ev, ok := a.Alloc(k, program.StateFirstCustom, 3)
	if !ok || ev != nil {
		t.Fatalf("alloc: ok=%v ev=%v", ok, ev)
	}
	if e.State != program.StateFirstCustom || e.Walker != 3 {
		t.Fatalf("entry: %+v", e)
	}
	got := a.Lookup(k)
	if got != e {
		t.Fatal("lookup did not find allocated entry")
	}
	if a.Lookup(Key{42, 8}) != nil {
		t.Fatal("lookup matched wrong second key word")
	}
}

func TestKeyWords1IgnoresSecondWord(t *testing.T) {
	a := New(Config{Sets: 16, Ways: 2, KeyWords: 1}, nil)
	a.Alloc(Key{5, 0}, program.StateValid, NoWalker)
	if a.Lookup(Key{5, 99}) == nil {
		t.Fatal("KeyWords=1 must compare only the first word")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set, 2 ways.
	a := newArray(1, 2)
	e1, _, _ := a.Alloc(Key{1, 0}, program.StateValid, NoWalker)
	e1.SectorBase, e1.SectorCount = 10, 2
	e2, _, _ := a.Alloc(Key{2, 0}, program.StateValid, NoWalker)
	_ = e2
	a.Touch(a.Lookup(Key{1, 0})) // make key 1 MRU
	_, ev, ok := a.Alloc(Key{3, 0}, program.StateValid, NoWalker)
	if !ok || ev == nil {
		t.Fatalf("expected eviction, ok=%v ev=%v", ok, ev)
	}
	if ev.Key != (Key{2, 0}) {
		t.Fatalf("evicted %v, want key 2 (LRU)", ev.Key)
	}
	if a.Lookup(Key{1, 0}) == nil || a.Lookup(Key{3, 0}) == nil {
		t.Fatal("survivors missing")
	}
	if a.Lookup(Key{2, 0}) != nil {
		t.Fatal("evicted key still present")
	}
}

func TestEvictionCarriesSectorsAndDirty(t *testing.T) {
	a := newArray(1, 1)
	e, _, _ := a.Alloc(Key{1, 0}, program.StateValid, NoWalker)
	e.SectorBase, e.SectorCount, e.Dirty = 7, 3, true
	_, ev, ok := a.Alloc(Key{2, 0}, program.StateValid, NoWalker)
	if !ok || ev == nil || !ev.Dirty || ev.SectorBase != 7 || ev.SectorCount != 3 {
		t.Fatalf("eviction record: %+v ok=%v", ev, ok)
	}
	if a.Stats().DirtyEvict != 1 {
		t.Fatalf("dirty evict stat %d", a.Stats().DirtyEvict)
	}
}

func TestTransientEntriesNotEvicted(t *testing.T) {
	a := newArray(1, 2)
	a.Alloc(Key{1, 0}, program.StateFirstCustom, 0) // walker 0 active
	a.Alloc(Key{2, 0}, program.StateFirstCustom, 1) // walker 1 active
	_, _, ok := a.Alloc(Key{3, 0}, program.StateValid, NoWalker)
	if ok {
		t.Fatal("alloc succeeded with all ways transient")
	}
	if a.Stats().AllocFails != 1 {
		t.Fatalf("alloc fails %d", a.Stats().AllocFails)
	}
	// Settle one walker; alloc must now succeed, evicting it.
	e := a.Lookup(Key{1, 0})
	e.State = program.StateValid
	e.Walker = NoWalker
	_, ev, ok := a.Alloc(Key{3, 0}, program.StateValid, NoWalker)
	if !ok || ev == nil || ev.Key != (Key{1, 0}) {
		t.Fatalf("post-settle alloc: ok=%v ev=%+v", ok, ev)
	}
}

func TestDealloc(t *testing.T) {
	a := newArray(4, 2)
	e, _, _ := a.Alloc(Key{9, 9}, program.StateFirstCustom, 0)
	a.Dealloc(e)
	if a.Lookup(Key{9, 9}) != nil {
		t.Fatal("dealloc left entry visible")
	}
	if a.Live() != 0 {
		t.Fatalf("live=%d", a.Live())
	}
}

func TestDuplicateAllocPanics(t *testing.T) {
	a := newArray(4, 2)
	a.Alloc(Key{1, 1}, program.StateValid, NoWalker)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate alloc")
		}
	}()
	a.Alloc(Key{1, 1}, program.StateValid, NoWalker)
}

func TestEnergyAccounting(t *testing.T) {
	m := &energy.Counters{}
	a := New(Config{Sets: 4, Ways: 2, SigBytes: 2, TagBytes: 10}, m)
	a.Lookup(Key{1, 0})
	if m.TagBytes != 2 {
		t.Fatalf("lookup charged %d tag bytes, want 2", m.TagBytes)
	}
	a.Alloc(Key{1, 0}, program.StateValid, NoWalker)
	if m.TagBytes != 12 {
		t.Fatalf("alloc charged to %d, want 12", m.TagBytes)
	}
	a.Update()
	if m.TagBytes != 12+StateBytes {
		t.Fatalf("update charged to %d, want %d (narrow state write)", m.TagBytes, 12+StateBytes)
	}
}

// Property: under random alloc/dealloc/lookup sequences, (1) live count
// never exceeds capacity, (2) every key reported live is findable, (3) no
// key is present twice (Alloc would panic), (4) hits+misses == lookups.
func TestArrayInvariantsProperty(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newArray(8, 2)
		live := map[Key]*Entry{}
		for i := 0; i < int(ops%500)+50; i++ {
			k := Key{uint64(rng.Intn(40)), 0}
			switch rng.Intn(3) {
			case 0: // alloc if absent
				if _, ok := live[k]; ok {
					continue
				}
				e, ev, ok := a.Alloc(k, program.StateValid, NoWalker)
				if !ok {
					return false // no transient entries here; must succeed
				}
				if ev != nil {
					delete(live, ev.Key)
				}
				live[k] = e
			case 1: // dealloc if present
				if e, ok := live[k]; ok {
					a.Dealloc(e)
					delete(live, k)
				}
			case 2: // lookup must agree with model
				got := a.Lookup(k)
				_, want := live[k]
				if (got != nil) != want {
					return false
				}
			}
			if a.Live() != len(live) || a.Live() > a.Capacity() {
				return false
			}
		}
		st := a.Stats()
		return st.Hits+st.Misses == st.Lookups
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachVisitsAllLive(t *testing.T) {
	a := newArray(8, 4)
	for i := 0; i < 20; i++ {
		a.Alloc(Key{uint64(i), 0}, program.StateValid, NoWalker)
	}
	n := 0
	a.ForEach(func(e *Entry) { n++ })
	if n != a.Live() {
		t.Fatalf("ForEach visited %d, live %d", n, a.Live())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{{Sets: 3, Ways: 1}, {Sets: 0, Ways: 1}, {Sets: 4, Ways: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("cfg %+v: expected panic", cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

func TestParityStoredOnAlloc(t *testing.T) {
	a := newArray(4, 2)
	e, _, ok := a.Alloc(Key{0b1011, 0b1}, 0, 3)
	if !ok {
		t.Fatal("alloc failed")
	}
	if !e.ParityOK() {
		t.Fatal("fresh entry fails its own parity")
	}
	if e.Parity != 0 { // 4 set bits → even parity bit 0
		t.Fatalf("parity bit %d, want 0", e.Parity)
	}
}

func TestCorruptKeyBitDetectedAndScrubbed(t *testing.T) {
	a := newArray(4, 2)
	k := Key{42, 7}
	e, _, _ := a.Alloc(k, 1, NoWalker)
	e.Walker = NoWalker
	a.CorruptKeyBit(e, 0, 5)
	if e.ParityOK() {
		t.Fatal("single-bit corruption passed the parity check")
	}
	// The scrub must find the entry via the original key's set, hand it
	// to the callback, and invalidate it.
	var scrubbed []Key
	n := a.ScrubSet(k, func(v *Entry) { scrubbed = append(scrubbed, v.Key) })
	if n != 1 || len(scrubbed) != 1 {
		t.Fatalf("scrubbed %d entries, want 1", n)
	}
	if e.Valid {
		t.Fatal("scrubbed entry still valid")
	}
	// The key is allocatable again: the duplicate-alloc guard released it.
	if _, _, ok := a.Alloc(k, 1, NoWalker); !ok {
		t.Fatal("re-alloc after scrub failed")
	}
}

func TestCorruptedVictimDoesNotPoisonPresentMap(t *testing.T) {
	a := New(Config{Sets: 1, Ways: 2, KeyWords: 1}, nil)
	e, _, _ := a.Alloc(Key{9, 0}, 1, NoWalker)
	a.CorruptKeyBit(e, 0, 0) // stored key bits become 8
	// Key 8 is genuinely live in the other way.
	if _, _, ok := a.Alloc(Key{8, 0}, 1, NoWalker); !ok {
		t.Fatal("alloc of key 8 failed")
	}
	// Evicting the corrupted entry (the LRU victim) must not remove key
	// 8's duplicate-guard record just because the corrupted bits read 8.
	_, ev, ok := a.Alloc(Key{5, 0}, 1, NoWalker)
	if !ok || ev == nil || ev.Key[0] != 8 {
		t.Fatalf("expected the corrupted entry evicted, got ev=%+v ok=%v", ev, ok)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate alloc of a live key did not panic: guard was poisoned by the corrupted victim")
		}
	}()
	a.Alloc(Key{8, 0}, 1, NoWalker)
}

func TestScrubSkipsActiveWalkersAndCleanEntries(t *testing.T) {
	a := newArray(1, 4) // one set: every key lands together
	clean, _, _ := a.Alloc(Key{1, 0}, 1, NoWalker)
	walked, _, _ := a.Alloc(Key{2, 0}, 0, 7) // active walker
	a.CorruptKeyBit(walked, 0, 3)
	if n := a.ScrubSet(Key{1, 0}, nil); n != 0 {
		t.Fatalf("scrub removed %d entries; clean and walker-held entries must survive", n)
	}
	if !clean.Valid || !walked.Valid {
		t.Fatal("scrub invalidated a protected entry")
	}
	// Once the walker releases it, the corrupted entry is fair game.
	walked.Walker = NoWalker
	if n := a.ScrubSet(Key{1, 0}, nil); n != 1 {
		t.Fatalf("scrub after walker release removed %d, want 1", n)
	}
}

func TestCorruptKeyBitRangeChecks(t *testing.T) {
	a := New(Config{Sets: 1, Ways: 1, KeyWords: 1}, nil)
	e, _, _ := a.Alloc(Key{1, 0}, 1, NoWalker)
	for _, bad := range [][2]int{{1, 0}, {-1, 0}, {0, 64}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CorruptKeyBit(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			a.CorruptKeyBit(e, bad[0], bad[1])
		}()
	}
}
