package program

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"xcache/internal/isa"
)

// The microcode binary is the artifact the X-Cache toolflow loads into
// the controller's routine table and microcode RAM (Fig 12: "a compiler
// that ... translates them into a microcode binary that runs on a
// programmable controller"). Layout (little endian):
//
//	magic   [4]byte "XCuC"
//	version u16
//	nameLen u16, name bytes
//	states  u16, events u16
//	per state name:  u16 len + bytes
//	per event name:  u16 len + bytes
//	table   states×events × i32 (routine start or -1)
//	codeLen u32, code words u32 each
const (
	binMagic   = "XCuC"
	binVersion = 1
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *Program) MarshalBinary() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(binMagic)
	w := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	wstr := func(s string) {
		if len(s) > 0xffff {
			s = s[:0xffff]
		}
		w(uint16(len(s)))
		b.WriteString(s)
	}
	w(uint16(binVersion))
	wstr(p.Name)
	w(uint16(p.NumStates()))
	w(uint16(p.NumEvents()))
	for _, n := range p.StateNames {
		wstr(n)
	}
	for _, n := range p.EventNames {
		wstr(n)
	}
	for _, row := range p.Table {
		for _, pc := range row {
			w(pc)
		}
	}
	w(uint32(len(p.Code)))
	for pc, in := range p.Code {
		word, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("program: code[%d]: %w", pc, err)
		}
		w(word)
	}
	return b.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler, rebuilding the
// routine table, name maps and decoded microcode.
func (p *Program) UnmarshalBinary(data []byte) error {
	r := bytes.NewReader(data)
	magic := make([]byte, 4)
	if _, err := r.Read(magic); err != nil || string(magic) != binMagic {
		return fmt.Errorf("program: bad magic %q", magic)
	}
	rd := func(v any) error { return binary.Read(r, binary.LittleEndian, v) }
	rstr := func() (string, error) {
		var n uint16
		if err := rd(&n); err != nil {
			return "", err
		}
		buf := make([]byte, n)
		if _, err := r.Read(buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var version uint16
	if err := rd(&version); err != nil {
		return err
	}
	if version != binVersion {
		return fmt.Errorf("program: unsupported binary version %d", version)
	}
	var err error
	if p.Name, err = rstr(); err != nil {
		return err
	}
	var states, events uint16
	if err := rd(&states); err != nil {
		return err
	}
	if err := rd(&events); err != nil {
		return err
	}
	if states == 0 || events == 0 || states > 256 || events > 256 {
		return fmt.Errorf("program: implausible table %d×%d", states, events)
	}
	p.StateNames = make([]string, states)
	p.EventNames = make([]string, events)
	p.StateIDs = map[string]int{}
	p.EventIDs = map[string]int{}
	for i := range p.StateNames {
		if p.StateNames[i], err = rstr(); err != nil {
			return err
		}
		p.StateIDs[p.StateNames[i]] = i
	}
	for i := range p.EventNames {
		if p.EventNames[i], err = rstr(); err != nil {
			return err
		}
		p.EventIDs[p.EventNames[i]] = i
	}
	p.Table = make([][]int32, states)
	p.Starts = nil
	for st := range p.Table {
		p.Table[st] = make([]int32, events)
		for ev := range p.Table[st] {
			if err := rd(&p.Table[st][ev]); err != nil {
				return err
			}
		}
	}
	var codeLen uint32
	if err := rd(&codeLen); err != nil {
		return err
	}
	if codeLen > 1<<20 {
		return fmt.Errorf("program: implausible code length %d", codeLen)
	}
	p.Code = make([]isa.Instr, codeLen)
	for i := range p.Code {
		var w uint32
		if err := rd(&w); err != nil {
			return err
		}
		p.Code[i] = isa.Decode(w)
	}
	// Validate routine pointers and rebuild Starts.
	for st := range p.Table {
		for ev, pc := range p.Table[st] {
			if pc == -1 {
				continue
			}
			if pc < 0 || int(pc) >= len(p.Code) {
				return fmt.Errorf("program: routine pointer (%d,%d)=%d outside code", st, ev, pc)
			}
			p.Starts = append(p.Starts, pc)
		}
	}
	return nil
}
