package program

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	p, err := minimalSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var q Program
	if err := q.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.NumStates() != p.NumStates() || q.NumEvents() != p.NumEvents() {
		t.Fatalf("header mismatch: %s %dx%d", q.Name, q.NumStates(), q.NumEvents())
	}
	if len(q.Code) != len(p.Code) {
		t.Fatalf("code length %d vs %d", len(q.Code), len(p.Code))
	}
	for i := range p.Code {
		if q.Code[i].MustEncode() != p.Code[i].MustEncode() {
			t.Fatalf("code[%d] differs: %s vs %s", i, q.Code[i], p.Code[i])
		}
	}
	for st := range p.Table {
		for ev := range p.Table[st] {
			if q.Table[st][ev] != p.Table[st][ev] {
				t.Fatalf("table (%d,%d): %d vs %d", st, ev, q.Table[st][ev], p.Table[st][ev])
			}
		}
	}
	// Names and ids preserved.
	for name, id := range p.StateIDs {
		if name == "Invalid" {
			continue // alias collapsed by serialization
		}
		if q.StateIDs[name] != id {
			t.Fatalf("state %q id %d vs %d", name, q.StateIDs[name], id)
		}
	}
	// Lookup works identically through the deserialized program.
	pc1, ok1 := p.Lookup(StateInvalid, EvMetaLoad)
	pc2, ok2 := q.Lookup(StateInvalid, EvMetaLoad)
	if ok1 != ok2 || pc1 != pc2 {
		t.Fatalf("lookup divergence: (%d,%v) vs (%d,%v)", pc1, ok1, pc2, ok2)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	p, _ := minimalSpec().Compile()
	good, _ := p.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)/2],
		"version":   append(append([]byte{}, good[:4]...), append([]byte{99, 0}, good[6:]...)...),
	}
	for name, data := range cases {
		var q Program
		if err := q.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestBinaryRejectsBadRoutinePointer(t *testing.T) {
	p, _ := minimalSpec().Compile()
	data, _ := p.MarshalBinary()
	// Find the table region: flip a -1 entry to a huge pointer. The table
	// starts after header+names; easiest robust approach: corrupt via
	// re-marshal of a tampered program.
	p.Table[StateValid][EvFill] = 9999
	bad, _ := p.MarshalBinary()
	var q Program
	if err := q.UnmarshalBinary(bad); err == nil {
		t.Error("out-of-range routine pointer accepted")
	}
	_ = data
}

func TestBinaryDeterministic(t *testing.T) {
	p, _ := minimalSpec().Compile()
	a, _ := p.MarshalBinary()
	b, _ := p.MarshalBinary()
	if !bytes.Equal(a, b) {
		t.Fatal("marshal not deterministic")
	}
}
