package program

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xcache/internal/isa"
)

// TestCompileRandomSpecs generates random (but well-formed) walker specs
// and checks compiler invariants: every declared transition is reachable
// through Lookup, routine starts are disjoint and ordered, and code size
// is the sum of routine lengths.
func TestCompileRandomSpecs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nStates := rng.Intn(4) + 1
		nEvents := rng.Intn(3)
		s := Spec{Name: "fuzz"}
		for i := 0; i < nStates; i++ {
			s.States = append(s.States, fmt.Sprintf("S%d", i))
		}
		for i := 0; i < nEvents; i++ {
			s.Events = append(s.Events, fmt.Sprintf("E%d", i))
		}
		allStates := append([]string{"Default"}, s.States...)
		allEvents := append([]string{"MetaLoad", "MetaStore", "Fill", "Retry"}, s.Events...)
		type key struct{ st, ev string }
		used := map[key]bool{}
		// Always include the required miss entry point.
		s.Transitions = append(s.Transitions, Transition{
			State: "Default", Event: "MetaLoad", Asm: randomRoutine(rng, allStates),
		})
		used[key{"Default", "MetaLoad"}] = true
		for i := 0; i < rng.Intn(6); i++ {
			st := allStates[rng.Intn(len(allStates))]
			ev := allEvents[rng.Intn(len(allEvents))]
			if used[key{st, ev}] {
				continue
			}
			used[key{st, ev}] = true
			s.Transitions = append(s.Transitions, Transition{State: st, Event: ev,
				Asm: randomRoutine(rng, allStates)})
		}

		p, err := s.Compile()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Every transition resolvable, all starts valid and distinct.
		seen := map[int32]bool{}
		for _, tr := range s.Transitions {
			pc, ok := p.Lookup(p.StateIDs[tr.State], p.EventIDs[tr.Event])
			if !ok || pc < 0 || int(pc) >= len(p.Code) {
				return false
			}
			if seen[pc] {
				return false
			}
			seen[pc] = true
		}
		// Undeclared transitions are absent.
		if _, ok := p.Lookup(StateValid, EvRetry); ok && !used[key{"Valid", "Retry"}] {
			return false
		}
		return p.CodeBytes() == len(p.Code)*isa.WordBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// randomRoutine emits a small legal routine ending in a terminal action.
func randomRoutine(rng *rand.Rand, states []string) string {
	var b strings.Builder
	for i := 0; i < rng.Intn(5); i++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "addi r%d, r%d, %d\n", rng.Intn(8)+4, rng.Intn(8)+4, rng.Intn(100))
		case 1:
			fmt.Fprintf(&b, "li r%d, %d\n", rng.Intn(8)+4, rng.Intn(1000))
		case 2:
			fmt.Fprintf(&b, "xor r%d, r%d, r%d\n", rng.Intn(8)+4, rng.Intn(8)+4, rng.Intn(8)+4)
		case 3:
			fmt.Fprintf(&b, "inc r%d\n", rng.Intn(8)+4)
		}
	}
	switch rng.Intn(3) {
	case 0:
		fmt.Fprintf(&b, "state %s\n", states[rng.Intn(len(states))])
	case 1:
		b.WriteString("halt Valid\n")
	default:
		b.WriteString("abort\n")
	}
	return b.String()
}

func TestRoutineTableDimensions(t *testing.T) {
	s := Spec{
		Name:   "dims",
		States: []string{"A", "B", "C"},
		Events: []string{"X", "Y"},
		Transitions: []Transition{
			{State: "Default", Event: "MetaLoad", Asm: "halt Valid"},
		},
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 5 { // Default, Valid, A, B, C
		t.Fatalf("states %d", p.NumStates())
	}
	if p.NumEvents() != 6 { // 4 builtins + X, Y
		t.Fatalf("events %d", p.NumEvents())
	}
	if p.TableEntries() != 30 {
		t.Fatalf("table entries %d", p.TableEntries())
	}
}

func TestLookupOutOfRange(t *testing.T) {
	p, err := (Spec{Name: "x", Transitions: []Transition{
		{State: "Default", Event: "MetaLoad", Asm: "halt Valid"},
	}}).Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {99, 0}, {0, 99}} {
		if _, ok := p.Lookup(c[0], c[1]); ok {
			t.Errorf("Lookup(%d,%d) reported a transition", c[0], c[1])
		}
	}
}

func TestStateAndEventNamesAligned(t *testing.T) {
	s := Spec{Name: "n", States: []string{"Walk"}, Events: []string{"Go"},
		Transitions: []Transition{{State: "Default", Event: "MetaLoad", Asm: "halt Valid"}}}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for name, id := range p.StateIDs {
		if name == "Invalid" { // alias of Default
			continue
		}
		if p.StateNames[id] != name {
			t.Errorf("state %q maps to id %d named %q", name, id, p.StateNames[id])
		}
	}
	for name, id := range p.EventIDs {
		if p.EventNames[id] != name {
			t.Errorf("event %q maps to id %d named %q", name, id, p.EventNames[id])
		}
	}
}
