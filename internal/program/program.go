// Package program implements the walker compiler of the X-Cache toolflow
// (Fig 12): it takes the table-driven walker specification the paper gives
// designers — one line per (state, event) transition with the actions to
// run — and compiles it into the three controller structures of Fig 8/9:
// the trigger table (event ids), the routine table (a [state][event] array
// of microcode pointers) and the microcode RAM image.
package program

import (
	"fmt"
	"sort"
	"strings"

	"xcache/internal/isa"
)

// Built-in walker states. Transient, walker-defined states are numbered
// from StateFirstCustom upward by the compiler.
const (
	// StateInvalid ("Default") is the start state: no meta-tag entry
	// exists, the routine fired by a miss runs from here.
	StateInvalid = 0
	// StateValid is the stable state in which the entry services hits
	// through the dedicated hit pipeline.
	StateValid = 1
	// StateFirstCustom is the first id assigned to spec-defined states.
	StateFirstCustom = 2
)

// Built-in events delivered by the controller front-end. Custom internal
// events (raised with enqev) are numbered from EvFirstCustom upward.
const (
	// EvMetaLoad fires when a meta load misses (or targets an entry whose
	// state has a transition defined for it).
	EvMetaLoad = 0
	// EvMetaStore fires when a meta store misses.
	EvMetaStore = 1
	// EvFill fires when a DRAM response for this walker arrives.
	EvFill = 2
	// EvRetry fires when a previously failed resource allocation should be
	// retried.
	EvRetry = 3
	// EvFirstCustom is the first id assigned to spec-defined events.
	EvFirstCustom = 4
)

// Response statuses a routine can pass to enqresp. These are visible to
// the assembler in every routine.
const (
	StatusOK       = 0 // data present; value/sectors attached
	StatusNotFound = 1 // walk completed without finding the element
)

var builtinSyms = map[string]int64{
	"Default":  StateInvalid,
	"Invalid":  StateInvalid,
	"Valid":    StateValid,
	"OK":       StatusOK,
	"NOTFOUND": StatusNotFound,
}

var builtinEvents = map[string]int{
	"MetaLoad":  EvMetaLoad,
	"MetaStore": EvMetaStore,
	"Fill":      EvFill,
	"Retry":     EvRetry,
}

// Transition is one line of the walker specification: in state State, on
// event Event, run the assembled Asm actions. Every routine must end in a
// terminal action (state, halt or abort) on all paths.
type Transition struct {
	State string
	Event string
	Asm   string
}

// Spec is the designer-facing walker description.
type Spec struct {
	Name   string
	States []string         // custom transient states (beyond Default/Valid)
	Events []string         // custom internal events (beyond the built-ins)
	Consts map[string]int64 // extra assembler symbols (DSA constants)

	Transitions []Transition
}

// Program is the compiled controller image.
type Program struct {
	Name       string
	StateIDs   map[string]int
	EventIDs   map[string]int
	StateNames []string
	EventNames []string

	// Table maps [state][event] to the microcode start index of the
	// routine, or -1 when no transition is defined.
	Table [][]int32
	// Code is the microcode RAM image. Branch immediates inside a routine
	// are routine-relative.
	Code []isa.Instr
	// Starts lists routine start offsets in Code, ascending (diagnostics).
	Starts []int32
}

// Compile validates and lowers the spec.
func (s Spec) Compile() (*Program, error) {
	p := &Program{
		Name:     s.Name,
		StateIDs: map[string]int{"Default": StateInvalid, "Invalid": StateInvalid, "Valid": StateValid},
		EventIDs: map[string]int{},
	}
	for name, id := range builtinEvents {
		p.EventIDs[name] = id
	}
	for i, name := range s.States {
		if _, dup := p.StateIDs[name]; dup {
			return nil, fmt.Errorf("program %s: duplicate state %q", s.Name, name)
		}
		p.StateIDs[name] = StateFirstCustom + i
	}
	for i, name := range s.Events {
		if _, dup := p.EventIDs[name]; dup {
			return nil, fmt.Errorf("program %s: duplicate event %q", s.Name, name)
		}
		p.EventIDs[name] = EvFirstCustom + i
	}
	numStates := StateFirstCustom + len(s.States)
	numEvents := EvFirstCustom + len(s.Events)
	p.StateNames = make([]string, numStates)
	p.StateNames[StateInvalid] = "Default"
	p.StateNames[StateValid] = "Valid"
	copy(p.StateNames[StateFirstCustom:], s.States)
	p.EventNames = make([]string, numEvents)
	for name, id := range builtinEvents {
		p.EventNames[id] = name
	}
	copy(p.EventNames[EvFirstCustom:], s.Events)

	syms := map[string]int64{}
	for k, v := range builtinSyms {
		syms[k] = v
	}
	for name, id := range p.StateIDs {
		syms[name] = int64(id)
	}
	for name, id := range p.EventIDs {
		syms[name] = int64(id)
	}
	for k, v := range s.Consts {
		if _, dup := syms[k]; dup {
			return nil, fmt.Errorf("program %s: const %q shadows a state/event/builtin", s.Name, k)
		}
		syms[k] = v
	}

	p.Table = make([][]int32, numStates)
	for st := range p.Table {
		p.Table[st] = make([]int32, numEvents)
		for ev := range p.Table[st] {
			p.Table[st][ev] = -1
		}
	}

	for _, tr := range s.Transitions {
		st, ok := p.StateIDs[tr.State]
		if !ok {
			return nil, fmt.Errorf("program %s: transition references undeclared state %q", s.Name, tr.State)
		}
		ev, ok := p.EventIDs[tr.Event]
		if !ok {
			return nil, fmt.Errorf("program %s: transition references undeclared event %q", s.Name, tr.Event)
		}
		if p.Table[st][ev] != -1 {
			return nil, fmt.Errorf("program %s: duplicate transition (%s, %s)", s.Name, tr.State, tr.Event)
		}
		code, err := isa.Assemble(tr.Asm, syms)
		if err != nil {
			return nil, fmt.Errorf("program %s: (%s, %s): %v", s.Name, tr.State, tr.Event, err)
		}
		if err := validateRoutine(code, numStates); err != nil {
			return nil, fmt.Errorf("program %s: (%s, %s): %v", s.Name, tr.State, tr.Event, err)
		}
		start := int32(len(p.Code))
		p.Table[st][ev] = start
		p.Starts = append(p.Starts, start)
		p.Code = append(p.Code, code...)
	}
	if p.Table[StateInvalid][EvMetaLoad] == -1 && p.Table[StateInvalid][EvMetaStore] == -1 {
		return nil, fmt.Errorf("program %s: no (Default, MetaLoad) or (Default, MetaStore) transition; misses cannot start", s.Name)
	}
	return p, nil
}

// validateRoutine enforces the execution model: branch targets stay inside
// the routine, the routine cannot fall off its end, and state operands are
// in range.
func validateRoutine(code []isa.Instr, numStates int) error {
	if len(code) == 0 {
		return fmt.Errorf("empty routine")
	}
	for pc, in := range code {
		if in.Op.IsBranch() {
			if in.Imm < 0 || int(in.Imm) >= len(code) {
				return fmt.Errorf("pc %d: branch target %d outside routine of %d actions", pc, in.Imm, len(code))
			}
		}
		if (in.Op == isa.OpState || in.Op == isa.OpHalt) && (in.Imm < 0 || int(in.Imm) >= numStates) {
			return fmt.Errorf("pc %d: state operand %d out of range", pc, in.Imm)
		}
	}
	last := code[len(code)-1].Op
	if !last.IsTerminal() && last != isa.OpJmp {
		return fmt.Errorf("routine does not end in a terminal action (ends with %s)", last.Name())
	}
	return nil
}

// Lookup returns the routine start for (state, event), reporting whether a
// transition is defined.
func (p *Program) Lookup(state, event int) (int32, bool) {
	if state < 0 || state >= len(p.Table) || event < 0 || event >= len(p.Table[state]) {
		return -1, false
	}
	pc := p.Table[state][event]
	return pc, pc >= 0
}

// NumStates returns the number of walker states including built-ins.
func (p *Program) NumStates() int { return len(p.Table) }

// NumEvents returns the number of events including built-ins.
func (p *Program) NumEvents() int {
	if len(p.Table) == 0 {
		return 0
	}
	return len(p.Table[0])
}

// CodeBytes returns the microcode RAM footprint in bytes.
func (p *Program) CodeBytes() int { return len(p.Code) * isa.WordBytes }

// TableEntries returns the routine-table size (states × events).
func (p *Program) TableEntries() int { return p.NumStates() * p.NumEvents() }

// Dump renders the routine table and microcode for diagnostics and for
// cmd/xcache-asm.
func (p *Program) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s: %d states × %d events, %d microcode words (%d B)\n",
		p.Name, p.NumStates(), p.NumEvents(), len(p.Code), p.CodeBytes())
	type row struct {
		st, ev int
		pc     int32
	}
	var rows []row
	for st := range p.Table {
		for ev, pc := range p.Table[st] {
			if pc >= 0 {
				rows = append(rows, row{st, ev, pc})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pc < rows[j].pc })
	for _, r := range rows {
		end := len(p.Code)
		for _, s := range p.Starts {
			if int(s) > int(r.pc) && int(s) < end {
				end = int(s)
			}
		}
		fmt.Fprintf(&b, "\n[%s, %s] @%d:\n%s", p.StateNames[r.st], p.EventNames[r.ev], r.pc,
			isa.Disassemble(p.Code[r.pc:end]))
	}
	return b.String()
}
