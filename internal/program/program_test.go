package program

import (
	"strings"
	"testing"

	"xcache/internal/isa"
)

func minimalSpec() Spec {
	return Spec{
		Name:   "toy",
		States: []string{"WaitFill"},
		Consts: map[string]int64{"STRIDE": 8},
		Transitions: []Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				state WaitFill
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
		},
	}
}

func TestCompileMinimal(t *testing.T) {
	p, err := minimalSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStates() != 3 {
		t.Fatalf("states=%d want 3 (Default, Valid, WaitFill)", p.NumStates())
	}
	if p.NumEvents() != 4 {
		t.Fatalf("events=%d want 4 builtins", p.NumEvents())
	}
	pc, ok := p.Lookup(StateInvalid, EvMetaLoad)
	if !ok || pc != 0 {
		t.Fatalf("miss routine at %d ok=%v", pc, ok)
	}
	wf := p.StateIDs["WaitFill"]
	if wf != StateFirstCustom {
		t.Fatalf("WaitFill id %d", wf)
	}
	pc2, ok := p.Lookup(wf, EvFill)
	if !ok || pc2 != 6 {
		t.Fatalf("fill routine at %d ok=%v", pc2, ok)
	}
	if _, ok := p.Lookup(StateValid, EvFill); ok {
		t.Fatal("undefined transition reported present")
	}
	if p.CodeBytes() != 13*isa.WordBytes {
		t.Fatalf("code bytes %d", p.CodeBytes())
	}
}

func TestCompileResolvesStateNamesInAsm(t *testing.T) {
	p, err := minimalSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	// Last instruction of the miss routine must carry WaitFill's id.
	in := p.Code[5]
	if in.Op != isa.OpState || int(in.Imm) != p.StateIDs["WaitFill"] {
		t.Fatalf("state instr: %+v", in)
	}
}

func TestCompileCustomEvents(t *testing.T) {
	s := Spec{
		Name:   "ev",
		States: []string{"Loop"},
		Events: []string{"Kick"},
		Transitions: []Transition{
			{State: "Default", Event: "MetaLoad", Asm: "allocm\nenqev Kick\nstate Loop"},
			{State: "Loop", Event: "Kick", Asm: "halt Valid"},
		},
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if p.EventIDs["Kick"] != EvFirstCustom {
		t.Fatalf("Kick id %d", p.EventIDs["Kick"])
	}
	if p.Code[1].Op != isa.OpEnqEv || int(p.Code[1].Imm) != EvFirstCustom {
		t.Fatalf("enqev: %+v", p.Code[1])
	}
}

func TestCompileErrors(t *testing.T) {
	base := minimalSpec()

	noTerm := base
	noTerm.Transitions = []Transition{{State: "Default", Event: "MetaLoad", Asm: "allocm\naddi r1, r1, 1"}}
	if _, err := noTerm.Compile(); err == nil || !strings.Contains(err.Error(), "terminal") {
		t.Errorf("non-terminal routine: err=%v", err)
	}

	dup := base
	dup.Transitions = append(dup.Transitions, dup.Transitions[0])
	if _, err := dup.Compile(); err == nil || !strings.Contains(err.Error(), "duplicate transition") {
		t.Errorf("duplicate transition: err=%v", err)
	}

	badState := base
	badState.Transitions = []Transition{{State: "Nope", Event: "MetaLoad", Asm: "halt Valid"}}
	if _, err := badState.Compile(); err == nil || !strings.Contains(err.Error(), "undeclared state") {
		t.Errorf("undeclared state: err=%v", err)
	}

	badEvent := base
	badEvent.Transitions = []Transition{{State: "Default", Event: "Nope", Asm: "halt Valid"}}
	if _, err := badEvent.Compile(); err == nil || !strings.Contains(err.Error(), "undeclared event") {
		t.Errorf("undeclared event: err=%v", err)
	}

	noMiss := Spec{Name: "x", States: []string{"S"},
		Transitions: []Transition{{State: "S", Event: "Fill", Asm: "halt Valid"}}}
	if _, err := noMiss.Compile(); err == nil || !strings.Contains(err.Error(), "misses cannot start") {
		t.Errorf("missing miss routine: err=%v", err)
	}

	dupState := base
	dupState.States = []string{"Valid"}
	if _, err := dupState.Compile(); err == nil || !strings.Contains(err.Error(), "duplicate state") {
		t.Errorf("state shadowing builtin: err=%v", err)
	}

	shadowConst := base
	shadowConst.Consts = map[string]int64{"WaitFill": 3}
	if _, err := shadowConst.Compile(); err == nil || !strings.Contains(err.Error(), "shadows") {
		t.Errorf("const shadowing state: err=%v", err)
	}

	emptyRoutine := base
	emptyRoutine.Transitions = []Transition{{State: "Default", Event: "MetaLoad", Asm: "; nothing"}}
	if _, err := emptyRoutine.Compile(); err == nil || !strings.Contains(err.Error(), "empty routine") {
		t.Errorf("empty routine: err=%v", err)
	}
}

func TestBranchTargetBounds(t *testing.T) {
	s := Spec{Name: "b", Transitions: []Transition{
		{State: "Default", Event: "MetaLoad", Asm: "bnz r1, 9\nhalt Valid"},
	}}
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "outside routine") {
		t.Errorf("branch out of routine: err=%v", err)
	}
}

func TestStateOperandBounds(t *testing.T) {
	s := Spec{Name: "b", Transitions: []Transition{
		{State: "Default", Event: "MetaLoad", Asm: "state 17"},
	}}
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("state id out of range: err=%v", err)
	}
}

func TestDumpContainsRoutines(t *testing.T) {
	p, err := minimalSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	d := p.Dump()
	for _, want := range []string{"[Default, MetaLoad] @0", "[WaitFill, Fill] @6", "allocm", "enqresp"} {
		if !strings.Contains(d, want) {
			t.Errorf("dump missing %q:\n%s", want, d)
		}
	}
}

func TestJmpMayEndRoutine(t *testing.T) {
	s := Spec{Name: "j", Transitions: []Transition{
		{State: "Default", Event: "MetaLoad", Asm: "top: dec r1\nhalt Valid\njmp top"},
	}}
	if _, err := s.Compile(); err != nil {
		t.Fatalf("jmp-terminated routine rejected: %v", err)
	}
}
