package program

import (
	"fmt"
	"sort"
	"sync/atomic"

	"xcache/internal/isa"
)

// VerifyConfig describes the controller instance a program is about to be
// loaded into. Verify checks the program against these limits so every
// statically-decidable trap is rejected before the first cycle runs.
type VerifyConfig struct {
	// NumXRegs is the per-walker X-register file size; every register
	// operand must index below it.
	NumXRegs int
	// MaxFillWords bounds immediate fill requests (enqfilli), writebacks
	// (enqwb) and the message width a Fill routine may peek into.
	MaxFillWords int
	// MaxRoutineSteps is the runtime runaway budget. Any acyclic path
	// through a routine executes each instruction at most once, so a
	// routine no longer than the budget cannot exhaust it without looping
	// — and loops are the runtime runaway trap's job, not the verifier's.
	MaxRoutineSteps int
	// DataSectors is the data-RAM capacity; an immediate allocation
	// (allocdi) larger than the whole RAM can never succeed. 0 disables
	// the check (capacity unknown at verify time).
	DataSectors int
	// EnvSlots is the number of lde environment operands (16 in hardware).
	EnvSlots int
}

// DefaultVerifyConfig mirrors the ctrl.Config defaults (Table 3 instance).
func DefaultVerifyConfig() VerifyConfig {
	return VerifyConfig{NumXRegs: 16, MaxFillWords: 8, MaxRoutineSteps: 4096, EnvSlots: 16}
}

// VerifyError pinpoints the first rejected instruction: which transition's
// routine, the absolute microcode index, and why.
type VerifyError struct {
	Program string
	State   string // "" for program-level (table) errors
	Event   string
	PC      int // absolute index into Code, -1 for table errors
	Instr   isa.Instr
	Reason  string
}

// Error implements error.
func (e *VerifyError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("verify %s: %s", e.Program, e.Reason)
	}
	return fmt.Sprintf("verify %s: [%s, %s] pc %d (%s): %s",
		e.Program, e.State, e.Event, e.PC, e.Instr.String(), e.Reason)
}

// verifyCalls counts Verify invocations so bench_test.go can pin the
// load-once contract: verification must never run on the per-cycle path.
var verifyCalls atomic.Int64

// VerifyCalls returns the number of Verify invocations so far.
func VerifyCalls() int64 { return verifyCalls.Load() }

// Facts is the per-instruction evidence a successful verification
// produces. The controller's pre-decoded executor (ctrl exec_fast)
// consumes it to decide, per microcode word, which dynamic checks the
// verifier has already discharged. See DESIGN.md §12 for the soundness
// argument tying each fact to the checks it licenses.
type Facts struct {
	// Start[pc] is the absolute start of the routine extent containing
	// pc — the region verifyRoutine checked, running from a table pointer
	// to the next pointer (or the end of the microcode RAM) — or -1 when
	// pc precedes every routine pointer. A pc with Start[pc] >= 0 passed
	// every static check (valid op, register operands in the X-register
	// file, immediates within their operand domains); a pc with -1 is
	// unreachable from any table entry but can still execute through a
	// stale program counter after LoadProgram, so it gets no discharge.
	Start []int32
}

// Verify statically checks a compiled or binary-loaded program against a
// controller configuration. It guarantees the absence of every
// statically-decidable trap: undefined ops, register operands outside the
// X-register file, immediates outside their operand's domain (states,
// events, environment slots, fill word counts, message peeks), branch
// targets escaping their routine, routines that can fall off their end,
// yields into states no event can ever wake, and straight-line step
// counts over the runaway budget. Register-indirect accesses (data-RAM
// addresses, register fill sizes) and looping routines remain runtime
// concerns, covered by the ctrl trap model.
func Verify(p *Program, cfg VerifyConfig) error {
	_, err := VerifyFacts(p, cfg)
	return err
}

// VerifyFacts is Verify, additionally returning the per-instruction facts
// the checks established (nil on rejection). One verifier invocation is
// counted whichever entry point is used.
func VerifyFacts(p *Program, cfg VerifyConfig) (*Facts, error) {
	verifyCalls.Add(1)
	def := DefaultVerifyConfig()
	if cfg.NumXRegs <= 0 {
		cfg.NumXRegs = def.NumXRegs
	}
	if cfg.MaxFillWords <= 0 {
		cfg.MaxFillWords = def.MaxFillWords
	}
	if cfg.MaxRoutineSteps <= 0 {
		cfg.MaxRoutineSteps = def.MaxRoutineSteps
	}
	if cfg.EnvSlots <= 0 {
		cfg.EnvSlots = def.EnvSlots
	}

	tabErr := func(reason string) error {
		return &VerifyError{Program: p.Name, PC: -1, Reason: reason}
	}
	if p.NumStates() == 0 || p.NumEvents() == 0 {
		return nil, tabErr("empty routine table")
	}
	for st, row := range p.Table {
		if len(row) != p.NumEvents() {
			return nil, tabErr(fmt.Sprintf("ragged routine table: state %d has %d events, want %d", st, len(row), p.NumEvents()))
		}
	}
	if p.NumStates() <= StateValid || EvFill >= p.NumEvents() {
		return nil, tabErr("routine table smaller than the built-in states/events")
	}
	_, okLd := p.Lookup(StateInvalid, EvMetaLoad)
	_, okSt := p.Lookup(StateInvalid, EvMetaStore)
	if !okLd && !okSt {
		return nil, tabErr("no (Default, MetaLoad) or (Default, MetaStore) transition; misses cannot start")
	}

	// Routine extents: each table pointer starts a routine that runs to
	// the next pointer (or the end of the microcode RAM). Entries may
	// share a start; each is verified under its own event's message width.
	starts := make([]int, 0, len(p.Starts))
	seen := map[int]bool{}
	for st := range p.Table {
		for ev, pc := range p.Table[st] {
			if pc == -1 {
				continue
			}
			if pc < 0 || int(pc) >= len(p.Code) {
				return nil, tabErr(fmt.Sprintf("routine pointer (%d,%d)=%d outside microcode", st, ev, pc))
			}
			if !seen[int(pc)] {
				seen[int(pc)] = true
				starts = append(starts, int(pc))
			}
		}
	}
	sort.Ints(starts)
	extent := func(start int) int {
		i := sort.SearchInts(starts, start+1)
		if i < len(starts) {
			return starts[i]
		}
		return len(p.Code)
	}
	// hasWake[s] reports whether any event can run a routine for state s,
	// i.e. whether a walker yielding into s can ever be woken again.
	hasWake := make([]bool, p.NumStates())
	for st, row := range p.Table {
		for _, pc := range row {
			if pc >= 0 {
				hasWake[st] = true
				break
			}
		}
	}

	for st := range p.Table {
		for ev, pc := range p.Table[st] {
			if pc == -1 {
				continue
			}
			if err := verifyRoutine(p, cfg, st, ev, int(pc), extent(int(pc)), hasWake); err != nil {
				return nil, err
			}
		}
	}
	facts := &Facts{Start: make([]int32, len(p.Code))}
	for i := range facts.Start {
		facts.Start[i] = -1
	}
	for _, s := range starts {
		for pc := s; pc < extent(s); pc++ {
			facts.Start[pc] = int32(s)
		}
	}
	return facts, nil
}

// verifyRoutine checks one (state, event) routine occupying Code[start:end).
func verifyRoutine(p *Program, cfg VerifyConfig, st, ev, start, end int, hasWake []bool) error {
	n := end - start
	fail := func(pc int, reason string) error {
		return &VerifyError{Program: p.Name, State: p.StateNames[st], Event: p.EventNames[ev],
			PC: pc, Instr: p.Code[pc], Reason: reason}
	}
	if n <= 0 {
		return &VerifyError{Program: p.Name, State: p.StateNames[st], Event: p.EventNames[ev],
			PC: -1, Reason: "empty routine"}
	}
	if n > cfg.MaxRoutineSteps {
		return fail(start, fmt.Sprintf("routine of %d actions exceeds the %d-step runaway budget on a straight-line path", n, cfg.MaxRoutineSteps))
	}
	// Only a Fill response carries message payload words; every other
	// event's message exposes just the address (-1) and word-count (-2)
	// pseudo-slots.
	msgWords := 0
	if ev == EvFill {
		msgWords = cfg.MaxFillWords
	}
	for pc := start; pc < end; pc++ {
		in := p.Code[pc]
		if !in.Op.Valid() {
			return fail(pc, fmt.Sprintf("undefined op %d", in.Op))
		}
		// Register operands the shape actually uses. Unused fields are
		// ignored: decode reconstructs them from don't-care bits.
		regs, nregs := in.RegOperands()
		for k := 0; k < nregs; k++ {
			if int(regs[k]) >= cfg.NumXRegs {
				return fail(pc, fmt.Sprintf("register %s=r%d outside the %d-entry X-register file",
					isa.RegFieldName(k), regs[k], cfg.NumXRegs))
			}
		}
		if in.Imm < isa.ImmMin || in.Imm > isa.ImmMax {
			return fail(pc, fmt.Sprintf("immediate %d outside the 16-bit field", in.Imm))
		}
		switch in.Op {
		case isa.OpState, isa.OpHalt:
			if in.Imm < 0 || int(in.Imm) >= p.NumStates() {
				return fail(pc, fmt.Sprintf("state operand %d out of range [0,%d)", in.Imm, p.NumStates()))
			}
			if in.Op == isa.OpState && !hasWake[in.Imm] {
				return fail(pc, fmt.Sprintf("yield into state %s, which no event can wake", p.StateNames[in.Imm]))
			}
		case isa.OpEnqEv:
			if in.Imm < 0 || int(in.Imm) >= p.NumEvents() {
				return fail(pc, fmt.Sprintf("event operand %d out of range [0,%d)", in.Imm, p.NumEvents()))
			}
		case isa.OpLde:
			if in.Imm < 0 || int(in.Imm) >= cfg.EnvSlots {
				return fail(pc, fmt.Sprintf("environment operand %d out of range [0,%d)", in.Imm, cfg.EnvSlots))
			}
		case isa.OpPeek:
			if in.Imm < -2 || int(in.Imm) >= msgWords {
				return fail(pc, fmt.Sprintf("message peek %d outside the %d-word %s message (pseudo-slots -1 address, -2 word count)",
					in.Imm, msgWords, p.EventNames[ev]))
			}
		case isa.OpEnqFillI:
			if in.Imm < 1 || int(in.Imm) > cfg.MaxFillWords {
				return fail(pc, fmt.Sprintf("fill of %d words outside [1,%d]", in.Imm, cfg.MaxFillWords))
			}
		case isa.OpEnqWb:
			if in.Imm < 1 || int(in.Imm) > cfg.MaxFillWords {
				return fail(pc, fmt.Sprintf("writeback of %d words outside [1,%d]", in.Imm, cfg.MaxFillWords))
			}
		case isa.OpAllocDI:
			if in.Imm < 1 {
				return fail(pc, fmt.Sprintf("allocation of %d sectors; need at least 1", in.Imm))
			}
			if cfg.DataSectors > 0 && int(in.Imm) > cfg.DataSectors {
				return fail(pc, fmt.Sprintf("allocation of %d sectors exceeds the %d-sector data RAM", in.Imm, cfg.DataSectors))
			}
		}
		if in.Op.IsBranch() {
			if in.Imm < 0 || int(in.Imm) >= n {
				return fail(pc, fmt.Sprintf("branch target %d outside routine of %d actions", in.Imm, n))
			}
		} else if pc == end-1 && !in.Op.IsTerminal() {
			return fail(pc, "routine can fall off its end (last action is not terminal)")
		}
	}
	return nil
}
