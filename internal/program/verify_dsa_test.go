package program_test

import (
	"testing"

	"xcache/internal/core"
	"xcache/internal/dsa/btreeidx"
	"xcache/internal/dsa/dasx"
	"xcache/internal/dsa/graphpulse"
	"xcache/internal/dsa/spgemm"
	"xcache/internal/dsa/widx"
	"xcache/internal/program"
)

// TestVerifyAllDSAPrograms pins that every shipped walker program passes
// the static verifier under its own design point's limits — the same
// check ctrl.New runs at load, asserted here directly so a verifier
// regression names the program instead of failing some simulation far
// downstream.
func TestVerifyAllDSAPrograms(t *testing.T) {
	cases := []struct {
		name string
		spec program.Spec
		cfg  core.Config
	}{
		{"widx", widx.Spec(56), core.WidxConfig()},
		{"dasx", dasx.Spec(56), core.DASXConfig()},
		{"sparch", spgemm.Spec(), core.SpArchConfig()},
		{"gamma", spgemm.Spec(), core.GammaConfig()},
		{"graphpulse", graphpulse.Spec(), core.GraphPulseConfig()},
		{"btreeidx", btreeidx.Spec(), btreeidx.Config()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := c.spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			vcfg := program.DefaultVerifyConfig()
			if c.cfg.MaxFillWords > 0 {
				vcfg.MaxFillWords = c.cfg.MaxFillWords
			}
			if c.cfg.NumXRegs > 0 {
				vcfg.NumXRegs = c.cfg.NumXRegs
			}
			if err := program.Verify(p, vcfg); err != nil {
				t.Fatalf("%s rejected by the verifier: %v", c.name, err)
			}
		})
	}
}
