package program

import (
	"strings"
	"testing"

	"xcache/internal/isa"
)

// compileToy compiles minimalSpec and fails the test on error.
func compileToy(t *testing.T) *Program {
	t.Helper()
	p, err := minimalSpec().Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// findOp returns the index of the first instruction with the given op.
func findOp(t *testing.T, p *Program, op isa.Op) int {
	t.Helper()
	for pc, in := range p.Code {
		if in.Op == op {
			return pc
		}
	}
	t.Fatalf("no %s in program", op.Name())
	return -1
}

func TestVerifyAcceptsCompiledProgram(t *testing.T) {
	p := compileToy(t)
	if err := Verify(p, DefaultVerifyConfig()); err != nil {
		t.Fatalf("minimal spec rejected: %v", err)
	}
	// The zero config resolves to the defaults.
	if err := Verify(p, VerifyConfig{}); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}

func TestVerifyCallsCounter(t *testing.T) {
	p := compileToy(t)
	before := VerifyCalls()
	_ = Verify(p, VerifyConfig{})
	_ = Verify(p, VerifyConfig{})
	if got := VerifyCalls() - before; got != 2 {
		t.Fatalf("VerifyCalls delta %d, want 2", got)
	}
}

// TestVerifyRejections drives every verifier check through a mutated
// program and pins the rejection reason. Mutation (rather than source
// assembly) is used where the compiler would reject the construct first —
// the verifier must also stand alone against binaries that never went
// through Compile.
func TestVerifyRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(t *testing.T, p *Program)
		cfg    VerifyConfig
		frag   string
	}{
		{"undefined_op", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpAllocM)] = isa.Instr{Op: isa.Op(60)}
		}, VerifyConfig{}, "undefined op"},
		{"reg_oob", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpShl)].Dst = 20
		}, VerifyConfig{}, "X-register file"},
		{"reg_oob_small_file", func(t *testing.T, p *Program) {},
			VerifyConfig{NumXRegs: 4}, "X-register file"},
		{"imm_16bit", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpShl)].Imm = 100000
		}, VerifyConfig{}, "16-bit field"},
		{"env_slot", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpLde)].Imm = 20
		}, VerifyConfig{}, "environment operand"},
		{"peek_beyond_fill", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpPeek)].Imm = 8
		}, VerifyConfig{}, "message peek"},
		{"peek_negative", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpPeek)].Imm = -3
		}, VerifyConfig{}, "message peek"},
		{"peek_in_payloadless_routine", func(t *testing.T, p *Program) {
			// The MetaLoad routine has no message payload; slot 0 is gone.
			p.Code[findOp(t, p, isa.OpAllocM)] = isa.Instr{Op: isa.OpPeek, Dst: 5, Imm: 0}
		}, VerifyConfig{}, "message peek"},
		{"fill_zero_words", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpEnqFillI)].Imm = 0
		}, VerifyConfig{}, "fill of 0 words"},
		{"fill_too_wide", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpEnqFillI)].Imm = 9
		}, VerifyConfig{MaxFillWords: 8}, "fill of 9 words"},
		{"writeback_too_wide", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpEnqFillI)] = isa.Instr{Op: isa.OpEnqWb, Dst: 4, A: 5, Imm: 12}
		}, VerifyConfig{MaxFillWords: 8}, "writeback of 12 words"},
		{"allocdi_zero", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpAllocDI)].Imm = 0
		}, VerifyConfig{}, "at least 1"},
		{"allocdi_over_capacity", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpAllocDI)].Imm = 4097
		}, VerifyConfig{DataSectors: 4096}, "exceeds the 4096-sector data RAM"},
		{"state_oob", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpState)].Imm = 99
		}, VerifyConfig{}, "state operand"},
		{"halt_oob", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpHalt)].Imm = -1
		}, VerifyConfig{}, "state operand"},
		{"yield_into_dead_state", func(t *testing.T, p *Program) {
			// Valid has no transitions: a walker yielding there sleeps forever.
			p.Code[findOp(t, p, isa.OpState)].Imm = StateValid
		}, VerifyConfig{}, "no event can wake"},
		{"branch_escapes_routine", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpAllocM)] = isa.Instr{Op: isa.OpJmp, Imm: 40}
		}, VerifyConfig{}, "branch target"},
		{"fall_off_end", func(t *testing.T, p *Program) {
			p.Code[findOp(t, p, isa.OpHalt)] = isa.Instr{Op: isa.OpMov, Dst: 5, A: 6}
		}, VerifyConfig{}, "fall off its end"},
		{"straight_line_budget", func(t *testing.T, p *Program) {},
			VerifyConfig{MaxRoutineSteps: 3}, "runaway budget"},
		{"no_miss_entry", func(t *testing.T, p *Program) {
			p.Table[StateInvalid][EvMetaLoad] = -1
			p.Table[StateInvalid][EvMetaStore] = -1
		}, VerifyConfig{}, "misses cannot start"},
		{"pointer_outside_code", func(t *testing.T, p *Program) {
			p.Table[StateInvalid][EvMetaLoad] = 1000
		}, VerifyConfig{}, "outside microcode"},
		{"ragged_table", func(t *testing.T, p *Program) {
			p.Table[1] = p.Table[1][:1]
		}, VerifyConfig{}, "ragged routine table"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := compileToy(t)
			c.mutate(t, p)
			err := Verify(p, c.cfg)
			if err == nil {
				t.Fatal("verifier accepted a bad program")
			}
			ve, ok := err.(*VerifyError)
			if !ok {
				t.Fatalf("error type %T, want *VerifyError", err)
			}
			if !strings.Contains(ve.Error(), c.frag) {
				t.Fatalf("rejection %q does not mention %q", ve.Error(), c.frag)
			}
		})
	}
}

func TestVerifyEmptyProgram(t *testing.T) {
	if err := Verify(&Program{Name: "empty"}, VerifyConfig{}); err == nil {
		t.Fatal("empty program accepted")
	}
}

// TestVerifyAcceptsLoops pins that a backward branch (a data-dependent
// loop, as in the SpGEMM row-fetch routine) passes the straight-line
// budget check: runaway loops are the runtime trap's job.
func TestVerifyAcceptsLoops(t *testing.T) {
	s := Spec{
		Name:   "loopy",
		States: []string{"W"},
		Transitions: []Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				li r5, 4
			top:
				enqfilli r4, 1
				dec r5
				bnz r5, top
				state W
			`},
			{State: "W", Event: "Fill", Asm: `
				peek r6, 0
				enqresp r6, OK
				abort
			`},
		},
	}
	p, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(p, VerifyConfig{MaxRoutineSteps: 7}); err != nil {
		t.Fatalf("looping routine rejected despite fitting the straight-line budget: %v", err)
	}
}
