package serve

import "xcache/internal/sim"

// BreakerConfig tunes the per-shard circuit breaker.
type BreakerConfig struct {
	// Window is the decay period for the trip counters: every Window
	// cycles the accumulated trap/timeout counts halve, so only a
	// *sustained* fault rate trips the breaker while an isolated blip
	// decays away. Default 2048.
	Window int
	// TrapTrip is the decayed trap count that opens the breaker (default
	// 2 — traps are structural and deterministic, so tolerance is low).
	TrapTrip int
	// TimeoutTrip is the decayed attempt-timeout count that opens the
	// breaker (default 32 — timeouts can be transient congestion).
	TimeoutTrip int
	// Cooldown is how long the shard rests after draining before probes
	// are admitted; it doubles (capped at 16×) each time a probe round
	// fails. Default 2048.
	Cooldown int
	// Probes is the number of consecutive half-open successes required to
	// close again. Default 4.
	Probes int
	// Disabled turns the breaker off entirely (requests always admitted).
	Disabled bool
}

func (c *BreakerConfig) defaults() {
	if c.Window == 0 {
		c.Window = 2048
	}
	if c.TrapTrip == 0 {
		c.TrapTrip = 2
	}
	if c.TimeoutTrip == 0 {
		c.TimeoutTrip = 32
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2048
	}
	if c.Probes == 0 {
		c.Probes = 4
	}
}

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState int

// The breaker states.
const (
	BreakerClosed   BreakerState = iota // healthy: admit everything
	BreakerOpen                         // tripped: shed, drain, cool down
	BreakerHalfOpen                     // probing: admit a few, watch them
)

// String names the state for logs and JSON.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// breaker is one shard's circuit breaker. Closed, it counts traps and
// attempt timeouts with periodic decay; past a threshold it opens: new
// requests shed with ShedBreaker while the shard drains through the
// controller's trap-quiesce path, the latched ctrl.Trap is cleared, and
// after a cooldown a few probe requests test the water. Probe successes
// close it; a probe failure reopens with a doubled cooldown.
type breaker struct {
	cfg   BreakerConfig
	state BreakerState

	traps     int
	timeouts  int
	lastDecay sim.Cycle

	drained       bool
	cooldown      int // current cooldown (doubles per failed probe round)
	cooldownUntil sim.Cycle
	probeBudget   int // half-open admissions remaining
	probeOK       int // consecutive probe successes

	// Lifetime accounting for the report.
	trips      uint64
	openCycles uint64
}

func newBreaker(cfg BreakerConfig) breaker {
	cfg.defaults()
	return breaker{cfg: cfg, cooldown: cfg.Cooldown}
}

// admit reports whether a new request may enter the shard, and whether it
// is a half-open probe (the caller tags it so completions and timeouts
// feed back into probeSuccess/probeFail).
func (b *breaker) admit() (ok, probe bool) {
	if b.cfg.Disabled {
		return true, false
	}
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerHalfOpen:
		if b.probeBudget > 0 {
			b.probeBudget--
			return true, true
		}
	}
	return false, false
}

// allowForward reports whether the shard should be fed from its ingress
// queue this cycle. Open means drain: nothing new reaches the controller.
func (b *breaker) allowForward() bool {
	return b.cfg.Disabled || b.state != BreakerOpen
}

func (b *breaker) trip(c sim.Cycle) {
	if b.cfg.Disabled || b.state == BreakerOpen {
		return
	}
	b.state = BreakerOpen
	b.trips++
	b.drained = false
	b.traps, b.timeouts = 0, 0
	b.probeOK = 0
}

// recordTrap feeds n controller traps into the trip counters.
func (b *breaker) recordTrap(n int, c sim.Cycle) {
	if b.cfg.Disabled || n <= 0 {
		return
	}
	switch b.state {
	case BreakerClosed:
		b.traps += n
		if b.traps >= b.cfg.TrapTrip {
			b.trip(c)
		}
	case BreakerHalfOpen:
		// A trap during probing: the shard is still sick.
		b.probeFail(c)
	}
}

// recordTimeout feeds one attempt timeout into the trip counters.
func (b *breaker) recordTimeout(c sim.Cycle) {
	if b.cfg.Disabled || b.state != BreakerClosed {
		return
	}
	b.timeouts++
	if b.timeouts >= b.cfg.TimeoutTrip {
		b.trip(c)
	}
}

// probeSuccess records a completed half-open probe.
func (b *breaker) probeSuccess() {
	if b.state != BreakerHalfOpen {
		return
	}
	b.probeOK++
	if b.probeOK >= b.cfg.Probes {
		b.state = BreakerClosed
		b.traps, b.timeouts = 0, 0
		b.cooldown = b.cfg.Cooldown
	}
}

// probeFail reopens the breaker with a doubled (capped) cooldown.
func (b *breaker) probeFail(c sim.Cycle) {
	if b.state != BreakerHalfOpen {
		return
	}
	if b.cooldown < 16*b.cfg.Cooldown {
		b.cooldown *= 2
	}
	b.trip(c)
}

// maintain advances time-driven transitions. idle reports whether the
// shard's controller has fully drained (walkers retired, fills answered);
// maintain returns true exactly once per open episode when the drain
// completes — the caller clears the controller's latched trap then.
func (b *breaker) maintain(c sim.Cycle, idle func() bool) (clearTrap bool) {
	if b.cfg.Disabled {
		return false
	}
	// Counter decay keeps "sustained rate" semantics.
	if c-b.lastDecay >= sim.Cycle(b.cfg.Window) {
		b.traps /= 2
		b.timeouts /= 2
		b.lastDecay = c
	}
	if b.state != BreakerOpen {
		return false
	}
	b.openCycles++
	if !b.drained {
		if !idle() {
			return false
		}
		b.drained = true
		b.cooldownUntil = c + sim.Cycle(b.cooldown)
		return true
	}
	if c >= b.cooldownUntil {
		b.state = BreakerHalfOpen
		b.probeBudget = b.cfg.Probes
		b.probeOK = 0
	}
	return false
}
