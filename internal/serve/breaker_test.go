package serve

import (
	"testing"

	"xcache/internal/program"
	"xcache/internal/sim"
)

// --- unit: the breaker state machine in isolation ---

func TestBreakerTripsOnTraps(t *testing.T) {
	b := newBreaker(BreakerConfig{TrapTrip: 2})
	if b.state != BreakerClosed {
		t.Fatal("not closed at birth")
	}
	b.recordTrap(1, 10)
	if b.state != BreakerClosed {
		t.Fatal("tripped below threshold")
	}
	b.recordTrap(1, 11)
	if b.state != BreakerOpen {
		t.Fatal("did not trip at threshold")
	}
	if b.trips != 1 {
		t.Fatalf("trips = %d, want 1", b.trips)
	}
	if ok, _ := b.admit(); ok {
		t.Fatal("open breaker admitted")
	}
	if b.allowForward() {
		t.Fatal("open breaker allows forwarding")
	}
}

func TestBreakerTimeoutDecay(t *testing.T) {
	b := newBreaker(BreakerConfig{Window: 100, TimeoutTrip: 4})
	b.recordTimeout(1)
	b.recordTimeout(2)
	b.recordTimeout(3)
	// Decay halves the count (3 -> 1) before it can reach the trip point.
	b.maintain(150, func() bool { return false })
	b.recordTimeout(151)
	b.recordTimeout(152)
	if b.state != BreakerClosed {
		t.Fatal("tripped despite decay")
	}
	b.recordTimeout(153)
	if b.state != BreakerOpen {
		t.Fatal("did not trip on sustained timeouts")
	}
}

func TestBreakerDrainProbeClose(t *testing.T) {
	b := newBreaker(BreakerConfig{TrapTrip: 1, Cooldown: 50, Probes: 2})
	b.recordTrap(1, 100)
	if b.state != BreakerOpen {
		t.Fatal("not open")
	}
	// Not idle yet: no drain, no trap clear.
	if b.maintain(101, func() bool { return false }) {
		t.Fatal("cleared trap before idle")
	}
	// Idle: drain completes exactly once, starting the cooldown.
	if !b.maintain(102, func() bool { return true }) {
		t.Fatal("did not signal trap clear on drain")
	}
	if b.maintain(103, func() bool { return true }) {
		t.Fatal("signalled trap clear twice")
	}
	// Cooldown holds...
	b.maintain(140, func() bool { return true })
	if b.state != BreakerOpen {
		t.Fatal("left open before cooldown")
	}
	// ...then half-open with a probe budget.
	b.maintain(152, func() bool { return true })
	if b.state != BreakerHalfOpen {
		t.Fatal("not half-open after cooldown")
	}
	var probes int
	for {
		ok, probe := b.admit()
		if !ok {
			break
		}
		if !probe {
			t.Fatal("half-open admission not marked probe")
		}
		probes++
	}
	if probes != 2 {
		t.Fatalf("probe budget %d, want 2", probes)
	}
	b.probeSuccess()
	b.probeSuccess()
	if b.state != BreakerClosed {
		t.Fatal("did not close after successful probes")
	}
}

func TestBreakerProbeFailDoublesCooldown(t *testing.T) {
	b := newBreaker(BreakerConfig{TrapTrip: 1, Cooldown: 50, Probes: 1})
	b.recordTrap(1, 0)
	b.maintain(1, func() bool { return true }) // drain @1, cooldown 50
	b.maintain(52, func() bool { return true })
	if b.state != BreakerHalfOpen {
		t.Fatal("not half-open")
	}
	b.admit()
	b.probeFail(53)
	if b.state != BreakerOpen {
		t.Fatal("probe failure did not reopen")
	}
	if b.cooldown != 100 {
		t.Fatalf("cooldown %d after failed probe, want 100", b.cooldown)
	}
	if b.trips != 2 {
		t.Fatalf("trips = %d, want 2", b.trips)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true})
	b.recordTrap(100, 1)
	b.recordTimeout(2)
	if ok, _ := b.admit(); !ok || b.state != BreakerClosed {
		t.Fatal("disabled breaker interfered")
	}
	if b.maintain(5000, func() bool { return true }) {
		t.Fatal("disabled breaker asked for a trap clear")
	}
}

// --- integration: a poisoned walker program trips the breaker through
// the controller's real trap path, and the service degrades gracefully ---

// poisonSpec walks array[key] like ArraySpec, but keys below e1 branch
// into a Poison state that declares no Fill handler: when the fill
// arrives, the controller raises TrapMissingTransition and quiesces the
// walker. A structural program fault, exactly what the breaker is for.
func poisonSpec() program.Spec {
	return program.Spec{
		Name:   "poisonwalk",
		States: []string{"WaitFill", "Poison"},
		Transitions: []program.Transition{
			{State: "Default", Event: "MetaLoad", Asm: `
				allocm
				lde r4, e0
				lde r6, e1
				shl r5, r1, 3
				add r5, r4, r5
				enqfilli r5, 1
				blt r1, r6, poison
				state WaitFill
			poison:
				state Poison
			`},
			{State: "WaitFill", Event: "Fill", Asm: `
				peek r6, 0
				allocdi r7, 1
				writed r7, r6
				li r8, 1
				update r7, r8
				enqresp r6, OK
				halt Valid
			`},
			// Poison handles only MetaStore — enough to satisfy the static
			// verifier's wakeability check — so the Fill we enqueued has no
			// routine and raises TrapMissingTransition at runtime.
			{State: "Poison", Event: "MetaStore", Asm: `
				halt Valid
			`},
		},
	}
}

func TestBreakerPoisonedShard(t *testing.T) {
	const poisonBelow = 32
	cfg := Config{
		Shards:  1,
		Tenants: []TenantGroup{{Count: 4, Rate: 0.05, Skew: 1.1}},
		Keys:    1 << 10,
		// Hot-skewed keys hammer the poisoned range continuously.
		Duration: 30_000,
		Seed:     17,
		Spec:     poisonSpec(),
		Breaker:  BreakerConfig{Window: 1024, TrapTrip: 2, Cooldown: 512, Probes: 2},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.shards[0].cache.SetEnv(1, poisonBelow)
	r, err := s.Run()
	if err != nil {
		t.Fatalf("Run under poisoned program: %v", err)
	}
	checkLedger(t, r)

	sh := r.Shards[0]
	if sh.Traps == 0 {
		t.Fatal("poison program raised no traps")
	}
	if sh.BreakerTrips == 0 {
		t.Fatal("sustained traps did not trip the breaker")
	}
	if sh.BreakerOpenCycles == 0 {
		t.Fatal("breaker never spent a cycle open")
	}
	var shedBreaker, failedTrap, completed uint64
	for _, tr := range r.Tenants {
		shedBreaker += tr.ShedBreaker
		failedTrap += tr.FailedTrap
		completed += tr.Completed
	}
	if shedBreaker == 0 {
		t.Error("open breaker shed nothing")
	}
	if failedTrap == 0 {
		t.Error("no trap casualties recorded")
	}
	// Graceful degradation: healthy keys must keep completing between
	// (and despite) breaker episodes.
	if completed == 0 {
		t.Error("no requests completed at all — degradation not graceful")
	}
}

// TestBreakerRecovers: poison traffic only at the start; once it stops,
// probes succeed and the breaker closes again.
func TestBreakerRecovers(t *testing.T) {
	const poisonBelow = 16
	cfg := Config{
		Shards:   1,
		Tenants:  []TenantGroup{{Count: 2, Rate: 0.05}},
		Keys:     1 << 10,
		Duration: 40_000,
		Seed:     19,
		Spec:     poisonSpec(),
		Breaker:  BreakerConfig{Window: 512, TrapTrip: 2, Cooldown: 256, Probes: 2},
		// Uniform keys: poison hits are early and incidental; after the
		// breaker cycles, most traffic is healthy.
		Expect: nil,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.shards[0].cache.SetEnv(1, poisonBelow)
	r, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkLedger(t, r)
	sh := r.Shards[0]
	if sh.BreakerTrips == 0 {
		t.Skip("seed produced no trips; poison range too cold")
	}
	// The breaker must not be latched open forever: it spent some cycles
	// open but far fewer than the whole run.
	if sh.BreakerOpenCycles >= uint64(cfg.Duration) {
		t.Errorf("breaker open %d of %d cycles — never recovered", sh.BreakerOpenCycles, cfg.Duration)
	}
	var completed uint64
	for _, tr := range r.Tenants {
		completed += tr.Completed
	}
	if completed == 0 {
		t.Error("nothing completed despite recovery window")
	}
}

// Compile-time interface checks.
var _ sim.Component = (*Service)(nil)

// TestBreakerHalfOpenTrapReopens pins the half-open race: a trap that
// lands while probes are in flight must reopen the breaker (with a
// doubled cooldown), and the straggler probe successes that were already
// in flight must NOT close it afterwards — closed state may only be
// reached through a full, clean probe round.
func TestBreakerHalfOpenTrapReopens(t *testing.T) {
	b := newBreaker(BreakerConfig{TrapTrip: 1, Cooldown: 50, Probes: 4})
	b.recordTrap(1, 0)
	b.maintain(1, func() bool { return true }) // drain, cooldown 50
	b.maintain(52, func() bool { return true })
	if b.state != BreakerHalfOpen {
		t.Fatal("not half-open after cooldown")
	}

	// Admit all four probes; three succeed, then a trap races in before
	// the last one resolves.
	for i := 0; i < 4; i++ {
		if ok, probe := b.admit(); !ok || !probe {
			t.Fatalf("probe %d not admitted", i)
		}
	}
	b.probeSuccess()
	b.probeSuccess()
	b.probeSuccess()
	if b.state != BreakerHalfOpen {
		t.Fatal("closed one probe early")
	}
	b.recordTrap(1, 60)
	if b.state != BreakerOpen {
		t.Fatalf("trap during half-open left state %v, want open", b.state)
	}
	if b.cooldown != 100 {
		t.Fatalf("cooldown %d after half-open trap, want doubled to 100", b.cooldown)
	}
	if b.trips != 2 {
		t.Fatalf("trips = %d, want 2", b.trips)
	}

	// The straggler: the fourth probe completes after the reopen. It must
	// not flip the breaker closed from the open state.
	b.probeSuccess()
	if b.state != BreakerOpen {
		t.Fatalf("late probe success closed an open breaker (state %v)", b.state)
	}
	// Nor may a late timeout in the open state touch the trip counters'
	// closed-state semantics.
	b.recordTimeout(61)
	if b.state != BreakerOpen || b.timeouts != 0 {
		t.Fatalf("late timeout perturbed open breaker: state %v timeouts %d", b.state, b.timeouts)
	}

	// The next probe round must demand a full clean sweep: after the
	// doubled cooldown, four fresh successes close it.
	b.maintain(62, func() bool { return true }) // drain again
	b.maintain(163, func() bool { return true })
	if b.state != BreakerHalfOpen {
		t.Fatalf("not half-open after doubled cooldown (state %v)", b.state)
	}
	if b.probeOK != 0 {
		t.Fatalf("probe successes carried across reopen: %d", b.probeOK)
	}
	for i := 0; i < 4; i++ {
		b.admit()
		b.probeSuccess()
	}
	if b.state != BreakerClosed {
		t.Fatal("clean probe round did not close")
	}
}
