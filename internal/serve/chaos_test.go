package serve

import (
	"encoding/json"
	"testing"

	"xcache/internal/check"
)

// chaosConfig is the full-load, full-fault-cocktail soak configuration:
// bursty skewed multi-priority tenants (the top priority SLO-governed)
// at 1.5x overload over 4 shards and 2 DRAM channels, with dropped and
// delayed DRAM responses, clogged controller queues, meta-tag bit flips,
// and a channel-outage cocktail (burst latency, a hard outage, and an
// issue stall) all injected from the run seed.
func chaosConfig(seed uint64, workers int) Config {
	return Config{
		Shards:   4,
		Channels: 2,
		Tenants: []TenantGroup{
			{Count: 12, Priority: 0, Rate: 0.02, Skew: 1.1},
			{Count: 8, Priority: 3, Rate: 0.015, BurstLen: 1500, BurstOn: 0.3},
			{Count: 4, Priority: 7, Rate: 0.01, SLO: 6000},
		},
		Keys:        1 << 13,
		Duration:    40_000,
		Seed:        seed,
		Overload:    1.5,
		TickWorkers: workers,
		Faults: check.FaultConfig{
			DropResp:  0.01,
			DelayResp: 0.02,
			DelayMax:  128,
			ClogQueue: 0.002,
			FlipBit:   0.0005,
			Channels: []check.ChannelFault{
				{Channel: 0, Mode: check.ChanBurst, Start: 5_000, Cycles: 3_000, Extra: 64},
				{Channel: 1, Mode: check.ChanOutage, Start: 15_000, Cycles: 5_000},
				{Channel: 1, Mode: check.ChanStall, Start: 32_000, Cycles: 1_500},
			},
		},
	}
}

// TestChaosSoak is the deterministic chaos soak the issue pins: seeded
// faults under full load, and the service must stay live (no watchdog
// bark, no overflow, no invariant violation — any of those fails Run),
// keep the conservation ledger exact, actually exercise every fault
// class, and produce a byte-identical stats JSON when re-run on the same
// seed — including with parallel shard ticking.
func TestChaosSoak(t *testing.T) {
	r := run(t, chaosConfig(42, 1))
	checkLedger(t, r)

	if r.Faults == nil {
		t.Fatal("no fault accounting in report")
	}
	if r.Faults.Drops == 0 || r.Faults.Delays == 0 || r.Faults.Clogs == 0 || r.Faults.Flips == 0 {
		t.Fatalf("a fault class never fired: %+v", *r.Faults)
	}
	if r.Faults.ChanFaults == 0 {
		t.Fatal("channel fault episodes never fired")
	}
	// The hard outage must have tripped the failover machinery, and the
	// channel must have been re-admitted before the end of the run.
	if r.Degraded == nil || r.Degraded.Quarantines == 0 {
		t.Fatal("channel outage never quarantined a channel")
	}
	if r.Degraded.EndedDegraded {
		t.Error("channel still quarantined at end of run — recovery failed")
	}
	if r.Degraded.Resteered == 0 {
		t.Error("quarantine without any re-steered traffic")
	}
	if r.SLO == nil {
		t.Fatal("governed tenants but no SLO report")
	}
	if r.Totals.Completed == 0 {
		t.Fatal("chaos run completed nothing")
	}
	// Graceful degradation under chaos: the service keeps serving. The
	// exact split between completed/shed/failed is seed-dependent, but
	// completions must dominate failures by an order of magnitude.
	if r.Totals.Failed*10 > r.Totals.Completed {
		t.Errorf("failed %d vs completed %d — not graceful", r.Totals.Failed, r.Totals.Completed)
	}
	// The recovery machinery must actually have worked for something to
	// complete under this cocktail.
	var fillRetries uint64
	for _, sh := range r.Shards {
		fillRetries += sh.FillRetries
	}
	if fillRetries == 0 {
		t.Error("drops injected but no fill retries — recovery path dead")
	}

	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	// Same seed, serial rerun: byte-identical.
	b2, err := json.Marshal(run(t, chaosConfig(42, 1)))
	if err != nil {
		t.Fatalf("marshal rerun: %v", err)
	}
	if string(b1) != string(b2) {
		t.Error("same-seed chaos reruns produced different stats JSON")
	}
	// Same seed, 8 tick workers: still byte-identical.
	b3, err := json.Marshal(run(t, chaosConfig(42, 8)))
	if err != nil {
		t.Fatalf("marshal parallel: %v", err)
	}
	if string(b1) != string(b3) {
		t.Error("parallel chaos rerun produced different stats JSON")
	}
	// A different seed must not accidentally share the stream.
	b4, err := json.Marshal(run(t, chaosConfig(43, 1)))
	if err != nil {
		t.Fatalf("marshal seed 43: %v", err)
	}
	if string(b1) == string(b4) {
		t.Error("different seeds produced identical runs")
	}
}

// TestChaosSeedSweep runs shorter soaks across several seeds so a
// seed-specific wedge cannot hide behind the pinned seed above.
func TestChaosSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short")
	}
	for seed := uint64(100); seed < 105; seed++ {
		cfg := chaosConfig(seed, 0)
		cfg.Duration = 15_000
		r := run(t, cfg)
		checkLedger(t, r)
		if r.Totals.Completed == 0 {
			t.Errorf("seed %d: nothing completed", seed)
		}
	}
}
