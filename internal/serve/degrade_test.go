package serve

import (
	"encoding/json"
	"errors"
	"testing"

	"xcache/internal/check"
	"xcache/internal/dram"
	"xcache/internal/mem"
	"xcache/internal/sim"
)

// outageConfig is the graceful-degradation proof fixture: governed
// high-priority tenants at 1.5x overload over 2 channels, with one
// channel going hard-dark mid-run and returning before the arrival
// window closes.
const (
	outageStart = 20_000
	outageLen   = 8_000
)

func outageConfig(seed uint64, workers int) Config {
	return Config{
		Shards:   4,
		Channels: 2,
		Tenants: []TenantGroup{
			{Count: 16, Priority: 0, Rate: 0.02},
			{Count: 8, Priority: 7, Rate: 0.02, SLO: 6000},
		},
		Keys:        1 << 13,
		Duration:    60_000,
		Seed:        seed,
		Overload:    1.5,
		TickWorkers: workers,
		Faults: check.FaultConfig{
			Channels: []check.ChannelFault{
				{Channel: 1, Mode: check.ChanOutage, Start: outageStart, Cycles: outageLen},
			},
		},
	}
}

// TestChannelOutageRecovery is the deterministic graceful-degradation
// proof from the issue: under a seeded channel outage at 1.5x load,
// (a) no conservation-audit violation (a violation fails Run), (b) SLO
// attainment for the highest-priority tenants recovers to at least its
// pre-fault level within a bounded number of epochs after the channel
// returns, and (c) the report is byte-stable across serial vs 8 tick
// workers.
func TestChannelOutageRecovery(t *testing.T) {
	r := run(t, outageConfig(42, 1))
	checkLedger(t, r)

	// The outage must actually have happened and been detected.
	if r.Faults == nil || r.Faults.ChanFaults == 0 {
		t.Fatal("outage episode never fired")
	}
	if r.Degraded == nil || r.Degraded.Quarantines == 0 {
		t.Fatal("outage never quarantined the channel")
	}
	if r.Degraded.Resteered == 0 {
		t.Error("no traffic re-steered around the dead channel")
	}
	if r.Degraded.EndedDegraded {
		t.Error("channel still quarantined at end of run — half-open probe never re-admitted it")
	}
	ch1 := r.DRAM.Channels[1]
	if ch1.OutageCycles == 0 {
		t.Error("channel 1 reports no outage cycles")
	}
	if ch1.State != "healthy" {
		t.Errorf("channel 1 ended %s, want healthy", ch1.State)
	}

	// (b) Highest-priority SLO attainment recovers. The series is one
	// sample per epoch; compare the pre-fault floor against the best
	// level reached in the bounded window after the channel returns.
	if r.SLO == nil {
		t.Fatal("no SLO report")
	}
	var series []float64
	for _, a := range r.SLO.Attainment {
		if a.Priority == 7 {
			series = series[:0]
			series = append(series, a.Series...)
		}
	}
	if len(series) == 0 {
		t.Fatal("no priority-7 attainment series")
	}
	epoch := r.Config.SLOEpoch
	preEnd := outageStart / epoch // epochs fully before the fault
	preMin := 1.0
	pre := 0
	for _, v := range series[:preEnd] {
		if v >= 0 {
			pre++
			if v < preMin {
				preMin = v
			}
		}
	}
	if pre == 0 {
		t.Fatal("no governed traffic before the fault")
	}
	// Bounded recovery: within recoveryEpochs epochs of the channel
	// returning, attainment must touch the pre-fault floor again.
	const recoveryEpochs = 16
	recStart := (outageStart + outageLen) / epoch
	recEnd := recStart + recoveryEpochs
	if recEnd > len(series) {
		recEnd = len(series)
	}
	recovered := false
	for _, v := range series[recStart:recEnd] {
		if v >= preMin {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Errorf("priority-7 attainment never recovered to pre-fault floor %.3f within %d epochs after the outage (post series %v)",
			preMin, recoveryEpochs, series[recStart:recEnd])
	}

	// (c) Byte-stable: serial rerun and 8 tick workers are identical.
	b1, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	b2, err := json.Marshal(run(t, outageConfig(42, 1)))
	if err != nil {
		t.Fatalf("marshal rerun: %v", err)
	}
	if string(b1) != string(b2) {
		t.Error("same-seed outage reruns differ")
	}
	b3, err := json.Marshal(run(t, outageConfig(42, 8)))
	if err != nil {
		t.Fatalf("marshal parallel: %v", err)
	}
	if string(b1) != string(b3) {
		t.Error("serial vs 8-worker outage reports differ")
	}
}

// TestDegradedErrorType: the typed error wraps ErrDegraded and carries
// the channel context.
func TestDegradedErrorType(t *testing.T) {
	err := error(&DegradedError{Channel: 1, Cycle: 20512, Reason: "no progress for 512 cycles"})
	if !errors.Is(err, ErrDegraded) {
		t.Fatal("DegradedError does not unwrap to ErrDegraded")
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Channel != 1 || de.Cycle != 20512 {
		t.Fatalf("errors.As lost fields: %+v", de)
	}
	want := "serve: degraded: channel 1 quarantined at cycle 20512 (no progress for 512 cycles)"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
}

// freezeAfter is a test disruptor: the channel goes hard-dark from a
// fixed cycle onward.
type freezeAfter sim.Cycle

func (f freezeAfter) ChannelState(c sim.Cycle) (bool, bool, int) {
	return c >= sim.Cycle(f), false, 0
}

// TestMuxFailover drives the mux directly: two channels, one frozen
// permanently mid-run. Requests natively owned by the dead channel must
// still complete (re-steered to the healthy one), the dead channel must
// be quarantined, and new traffic must flow entirely through the healthy
// channel.
func TestMuxFailover(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	base := img.AllocWords(1 << 12)
	for i := 0; i < 1<<12; i++ {
		img.W64(base+uint64(i)*8, uint64(i))
	}
	cfg0, cfg1 := dram.DefaultConfig(), dram.DefaultConfig()
	cfg0.Name, cfg1.Name = "ch0", "ch1"
	d0 := dram.New(k, cfg0, img)
	d1 := dram.New(k, cfg1, img)
	d1.Disrupt = freezeAfter(100)

	reqs := []*sim.Queue[dram.Request]{sim.NewQueue[dram.Request](k, "t.req", 256)}
	resps := []*sim.Queue[dram.Response]{sim.NewQueue[dram.Response](k, "t.resp", 256)}
	m := newDRAMMux(k, []*dram.DRAM{d0, d1}, PolicyInterleave, 128, reqs, resps)

	// Open-loop: issue one read per cycle, alternating rows so both
	// channels own traffic; run long enough for quarantine + steady
	// re-steered service.
	const n = 512
	issued, returned := 0, 0
	rows := cfg0.RowBytes
	ok := k.RunUntil(func() bool {
		if issued < n && reqs[0].CanPush() {
			reqs[0].MustPush(dram.Request{
				ID:    uint64(issued),
				Addr:  base + uint64(issued)%(2*rows/8)*8, // alternate channel rows
				Words: 1,
			})
			issued++
		}
		for {
			if _, o := resps[0].Pop(); !o {
				break
			}
			returned++
		}
		return returned == n
	}, 50_000)

	// Requests already inside the frozen channel when it died are lost
	// (no controller retry path in this harness), so demand completion of
	// everything issued after quarantine plus everything channel 0 owned.
	if m.chans[1].health != chanQuarantined && m.chans[1].health != chanProbing {
		t.Fatalf("dead channel health %v, want quarantined/probing", m.chans[1].health)
	}
	if m.resteered == 0 {
		t.Fatal("no requests re-steered off the dead channel")
	}
	lost := issued - returned
	stuck := d1.Pending() + d1.Req.Len()
	if !ok && lost > stuck {
		t.Fatalf("%d requests missing but only %d stuck in the dead channel", lost, stuck)
	}
	if m.degraded() == nil {
		t.Fatal("mux.degraded() nil with a quarantined channel")
	}
}

// TestMultiChannelKnee pins the scale story: with 2 channels the
// shed-at-saturation knee sits at a strictly higher tenant count than
// with 1. The data bus is throttled so channel bandwidth is the binding
// resource (utilization hits ~1.0 at the knee), buckets are wide open,
// and retries are off with long deadlines so shedding is pure ingress
// queue-shed at the bandwidth equilibrium — not a retry storm.
func TestMultiChannelKnee(t *testing.T) {
	counts := []int{2, 4, 8, 16}
	const kneeShed = 0.10
	dc := dram.DefaultConfig()
	dc.TBusPerWord = 16
	knee := func(channels int) int {
		for i, n := range counts {
			r := run(t, Config{
				Shards:      4,
				Channels:    channels,
				DRAM:        dc,
				Tenants:     []TenantGroup{{Count: n, Rate: 0.025}},
				Keys:        1 << 16, // mostly-miss: every request reaches DRAM
				Duration:    12_000,
				MaxCycles:   96_000,
				Seed:        9,
				BucketRate:  1,
				BucketBurst: 64,
				Deadline:    30_000,
				Timeout:     15_000,
				Retries:     0,
				Watchdog:    60_000,
			})
			checkLedger(t, r)
			if r.Totals.ShedRate >= kneeShed {
				return i
			}
		}
		return len(counts)
	}
	k1, k2 := knee(1), knee(2)
	if k1 >= len(counts) {
		t.Fatalf("single channel never hit the %.0f%% shed knee — load too low to measure", 100*kneeShed)
	}
	if k2 <= k1 {
		t.Errorf("knee did not move: 1-channel knee at %d tenants, 2-channel at %d",
			counts[k1], counts[min(k2, len(counts)-1)])
	}
}
