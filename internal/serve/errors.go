package serve

import (
	"errors"
	"fmt"

	"xcache/internal/check"
)

// ErrOverload is the sentinel all admission-control rejections unwrap to:
// errors.Is(err, ErrOverload) holds for every shed, whatever the reason.
var ErrOverload = errors.New("serve: overload")

// ShedReason classifies why admission control refused a request.
type ShedReason int

// The admission rejection reasons, in the order admission checks them.
const (
	// ShedBreaker: the target shard's circuit breaker is open (or out of
	// half-open probe budget); the shard is being drained or proved.
	ShedBreaker ShedReason = iota + 1
	// ShedRate: the tenant's token bucket is empty — it is offering more
	// than its contracted rate.
	ShedRate
	// ShedQueue: the shard's ingress queue is beyond this priority's
	// depth threshold (lower priorities shed at shallower depths).
	ShedQueue
)

// String names the reason for logs and JSON.
func (r ShedReason) String() string {
	switch r {
	case ShedBreaker:
		return "breaker"
	case ShedRate:
		return "rate"
	case ShedQueue:
		return "queue"
	}
	return fmt.Sprintf("shed(%d)", int(r))
}

// OverloadError is the typed admission failure: which tenant was shed, at
// which shard, and why. It unwraps to ErrOverload.
type OverloadError struct {
	Tenant int
	Shard  int
	Reason ShedReason
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overload: tenant %d shed at shard %d (%s)", e.Tenant, e.Shard, e.Reason)
}

// Unwrap ties the typed error to the ErrOverload sentinel.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// transientKind folds the check.FailureKind taxonomy into the retry
// decision: a stalled attempt (timeout — the request may simply be stuck
// behind a transient: a dropped fill, a clogged queue) is worth retrying;
// a trap casualty is a structural program fault and deterministic, so
// retrying would only burn budget.
func transientKind(k check.FailureKind) bool {
	switch k {
	case check.FailStall, check.FailBudget:
		return true
	default:
		return false
	}
}
