package serve

import (
	"errors"
	"fmt"

	"xcache/internal/check"
)

// ErrOverload is the sentinel all admission-control rejections unwrap to:
// errors.Is(err, ErrOverload) holds for every shed, whatever the reason.
var ErrOverload = errors.New("serve: overload")

// ShedReason classifies why admission control refused a request.
type ShedReason int

// The admission rejection reasons, in the order admission checks them.
const (
	// ShedBreaker: the target shard's circuit breaker is open (or out of
	// half-open probe budget); the shard is being drained or proved.
	ShedBreaker ShedReason = iota + 1
	// ShedRate: the tenant's token bucket is empty — it is offering more
	// than its contracted rate.
	ShedRate
	// ShedQueue: the shard's ingress queue is beyond this priority's
	// depth threshold (lower priorities shed at shallower depths).
	ShedQueue
	// ShedSLO: the tenant's SLO governor has throttled its admission
	// below the contracted rate because its observed p99 exceeded the
	// latency budget — the service is trading this tenant's throughput
	// for its latency, by policy.
	ShedSLO
)

// String names the reason for logs and JSON.
func (r ShedReason) String() string {
	switch r {
	case ShedBreaker:
		return "breaker"
	case ShedRate:
		return "rate"
	case ShedQueue:
		return "queue"
	case ShedSLO:
		return "slo"
	}
	return fmt.Sprintf("shed(%d)", int(r))
}

// OverloadError is the typed admission failure: which tenant was shed, at
// which shard, and why. It unwraps to ErrOverload.
type OverloadError struct {
	Tenant int
	Shard  int
	Reason ShedReason
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: overload: tenant %d shed at shard %d (%s)", e.Tenant, e.Shard, e.Reason)
}

// Unwrap ties the typed error to the ErrOverload sentinel.
func (e *OverloadError) Unwrap() error { return ErrOverload }

// ErrDegraded is the sentinel every channel-degradation condition
// unwraps to: errors.Is(err, ErrDegraded) holds whenever the service is
// (or was) running with a DRAM channel quarantined. Degradation is not
// fatal — the mux re-steers traffic around the sick channel — so it is
// surfaced in reports rather than aborting the run.
var ErrDegraded = errors.New("serve: degraded")

// DegradedError is the typed channel-degradation record: which channel
// was quarantined, when, and why. It unwraps to ErrDegraded.
type DegradedError struct {
	Channel int
	Cycle   uint64
	Reason  string // e.g. "no progress for 512 cycles", "probe timeout"
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("serve: degraded: channel %d quarantined at cycle %d (%s)", e.Channel, e.Cycle, e.Reason)
}

// Unwrap ties the typed error to the ErrDegraded sentinel.
func (e *DegradedError) Unwrap() error { return ErrDegraded }

// transientKind folds the check.FailureKind taxonomy into the retry
// decision: a stalled attempt (timeout — the request may simply be stuck
// behind a transient: a dropped fill, a clogged queue) is worth retrying;
// a trap casualty is a structural program fault and deterministic, so
// retrying would only burn budget.
func transientKind(k check.FailureKind) bool {
	switch k {
	case check.FailStall, check.FailBudget:
		return true
	default:
		return false
	}
}
