package serve

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseTenantSpec pins the tenant-spec parser's total-function
// contract: arbitrary input never panics, every accepted mix passes
// validate() group by group (so a parsed spec can always be simulated),
// and Format∘Parse∘Format is a fixed point — the canonical rendering
// reparses to the identical mix.
func FuzzParseTenantSpec(f *testing.F) {
	seeds := []string{
		"8",
		"4@3",
		"1@7:rate=1",
		"16@2:rate=0.05,skew=0.9,burst=200/0.25",
		"8:rate=0.02;2@7:rate=0.1",
		"8@0:rate=0.05;56@2:rate=0.01,skew=1.2,burst=2000/0.25",
		" 8 @ 1 : rate=0.02 ",
		"",
		";",
		"0",
		"-3",
		"4@8",
		"4:rate=2",
		"4:rate=NaN",
		"4:rate=1e309",
		"4:skew=Inf",
		"4:burst=100/1.5",
		"4:burst=0/0.5",
		"4:color=red",
		"4:rate=",
		"@",
		"4@@2",
		"4:rate=0.01,rate=0.02",
		"999999999999999999999999",
		"1;1;1;1;1;1;1;1",
		"4@7:slo=6000",
		"8@2:rate=0.02,slo=4096;4@7:slo=512",
		"4:slo=0",
		"4:slo=-1",
		"4:slo=x",
		"4:slo=",
		"4:slo=999999999",
		"4:slo=0.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		groups, err := ParseTenantSpec(s)
		if err != nil {
			return
		}
		if len(groups) == 0 {
			t.Fatalf("ParseTenantSpec(%q) accepted with zero groups", s)
		}
		for i, g := range groups {
			if verr := g.validate(); verr != nil {
				t.Fatalf("ParseTenantSpec(%q) accepted invalid group %d: %v", s, i, verr)
			}
		}
		canon := FormatTenantSpec(groups)
		if strings.Count(canon, ";") != len(groups)-1 {
			t.Fatalf("canonical form %q has wrong group count", canon)
		}
		back, err := ParseTenantSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v", canon, err)
		}
		if !reflect.DeepEqual(groups, back) {
			t.Fatalf("canonical round trip diverged:\n  %q -> %+v\n  %q -> %+v", s, groups, canon, back)
		}
		if again := FormatTenantSpec(back); again != canon {
			t.Fatalf("Format not a fixed point: %q vs %q", canon, again)
		}
	})
}
