package serve

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/sim"
)

// Shard-id tagging for requests multiplexed onto the shared DRAM
// channel. Controller request ids occupy the low 32 bits (walker index,
// possibly OR'd with the bit-63 writeback flag and the bit-62 hierarchy
// flag), so bits 32..47 are free for the shard index.
const (
	muxShardShift = 32
	muxShardMask  = uint64(0xffff)
)

// dramMux funnels the per-shard memory channels into the single shared
// DRAM channel: requests are round-robined in (shard id tagged into the
// request id), responses are routed back by that tag with the id
// restored. It is a plain serially-ticked component, so the shared
// channel needs no locking even when the shards tick in parallel — the
// shards only touch their own queue endpoints.
type dramMux struct {
	d     *dram.DRAM
	reqs  []*sim.Queue[dram.Request]
	resps []*sim.Queue[dram.Response]
	rr    int

	forwarded uint64
	returned  uint64
}

func newDRAMMux(k *sim.Kernel, d *dram.DRAM, reqs []*sim.Queue[dram.Request], resps []*sim.Queue[dram.Response]) *dramMux {
	if len(reqs) != len(resps) {
		panic(fmt.Sprintf("serve: mux port mismatch: %d req vs %d resp", len(reqs), len(resps)))
	}
	m := &dramMux{d: d, reqs: reqs, resps: resps}
	k.Add(m)
	return m
}

// Tick implements sim.Component.
func (m *dramMux) Tick(c sim.Cycle) {
	// Responses first: route by shard tag. A full shard response queue
	// blocks head-of-line; the DRAM model's own respHold spill keeps the
	// channel itself from wedging behind it.
	for {
		r, ok := m.d.Resp.Peek()
		if !ok {
			break
		}
		s := int(r.ID >> muxShardShift & muxShardMask)
		if s >= len(m.resps) {
			panic(fmt.Sprintf("serve: mux response with shard tag %d of %d", s, len(m.resps)))
		}
		if !m.resps[s].CanPush() {
			break
		}
		m.d.Resp.Pop()
		r.ID &^= muxShardMask << muxShardShift
		m.resps[s].MustPush(r)
		m.returned++
	}

	// Requests: round-robin across shards for fairness, bounded by the
	// channel queue's free space this cycle.
	free := m.d.Req.Free()
	for n := 0; n < free; {
		advanced := false
		for i := 0; i < len(m.reqs) && n < free; i++ {
			s := (m.rr + i) % len(m.reqs)
			rq, ok := m.reqs[s].Peek()
			if !ok {
				continue
			}
			m.reqs[s].Pop()
			rq.ID |= uint64(s) << muxShardShift
			m.d.Req.MustPush(rq)
			n++
			advanced = true
			m.rr = (s + 1) % len(m.reqs)
		}
		if !advanced {
			break
		}
	}
}
