package serve

import (
	"fmt"

	"xcache/internal/dram"
	"xcache/internal/sim"
)

// Shard-id tagging for requests multiplexed onto the shared DRAM
// channels. Controller request ids occupy the low 32 bits (walker index,
// possibly OR'd with the bit-63 writeback flag and the bit-62 hierarchy
// flag), so bits 32..47 are free for the shard index.
const (
	muxShardShift = 32
	muxShardMask  = uint64(0xffff)
)

// ChannelPolicy selects how the mux steers a request to a DRAM channel
// when every channel is healthy.
type ChannelPolicy int

// The steering policies.
const (
	// PolicyInterleave spreads traffic by address at row granularity
	// (addr/RowBytes mod M): every shard uses every channel, so one
	// shard's burst cannot monopolize a channel.
	PolicyInterleave ChannelPolicy = iota
	// PolicyAffine pins each shard to channel (shard mod M): channel
	// locality is maximal (row-buffer hits survive interleaving) at the
	// price of per-shard hot spots.
	PolicyAffine
)

// String names the policy for flags and JSON.
func (p ChannelPolicy) String() string {
	switch p {
	case PolicyInterleave:
		return "interleave"
	case PolicyAffine:
		return "affine"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseChannelPolicy is the inverse of String, for the CLI flag.
func ParseChannelPolicy(s string) (ChannelPolicy, error) {
	switch s {
	case "interleave", "":
		return PolicyInterleave, nil
	case "affine":
		return PolicyAffine, nil
	}
	return 0, fmt.Errorf("serve: unknown channel policy %q (want interleave|affine)", s)
}

// Channel health states for the failover state machine.
type chanHealth int

const (
	chanHealthy chanHealth = iota
	// chanQuarantined: the watchdog saw no progress for a full window
	// while work was pending; traffic is re-steered away until a probe
	// succeeds.
	chanQuarantined
	// chanProbing: the quarantine cooldown expired; up to probeNeed
	// requests are routed natively as half-open probes. Enough returned
	// responses re-admit the channel; silence re-quarantines it with a
	// doubled cooldown.
	chanProbing
)

func (h chanHealth) String() string {
	switch h {
	case chanHealthy:
		return "healthy"
	case chanQuarantined:
		return "quarantined"
	case chanProbing:
		return "probing"
	}
	return fmt.Sprintf("health(%d)", int(h))
}

// Failover tuning. The watchdog window must comfortably exceed a loaded
// channel's worst-case service time (hundreds of cycles) but sit well
// below the controller fill-retry timeout (1024) so re-steering beats
// the first retry wave; probes and cooldowns are sized to the same
// scale, with the breaker-style doubling bounding probe spam during a
// long outage.
const (
	chanWatchdogDefault = 512  // silent cycles (with work pending) before quarantine
	chanProbeNeed       = 4    // returned responses required to re-admit
	chanProbeTimeout    = 1024 // cycles after the first probe before giving up
	chanCooldownBase    = 1024 // quarantine → first probe delay
	chanCooldownCap     = 16   // max cooldown doubling multiplier
	chanMaxErrors       = 16   // DegradedError records kept per run
)

// muxChannel is one DRAM channel plus its health/failover state.
type muxChannel struct {
	d      *dram.DRAM
	health chanHealth

	lastSig      uint64    // progress signature at last observed change
	lastProgress sim.Cycle // cycle of that change

	quarantinedAt sim.Cycle
	cooldownMult  int       // doubling multiplier, capped at chanCooldownCap
	probeStart    sim.Cycle // cycle the first live probe was forwarded (0 = none yet)
	probeSent     int
	probeBase     uint64 // returned count when probing began

	forwarded         uint64
	returned          uint64
	resteeredAway     uint64 // requests this channel would have owned, steered elsewhere
	quarantines       uint64
	quarantinedCycles uint64 // cycles spent not healthy
}

// dramMux funnels the per-shard memory channels into M shared DRAM
// channels: requests are steered by policy (shard id tagged into the
// request id), responses are routed back by that tag with the id
// restored. It is a plain serially-ticked component, so the shared
// channels need no locking even when the shards tick in parallel — the
// shards only touch their own queue endpoints.
//
// Failover: a per-channel watchdog watches a progress signature (DRAM
// activity + responses drained). A channel that sits silent for a full
// window with work pending is quarantined — its traffic deterministically
// re-steers to the next healthy channel by index — and re-admitted
// through a breaker-style half-open probe. Requests already stuck inside
// a quarantined channel are recovered by the controllers' fill-retry
// path: the retry re-enters the mux and is steered healthy, and the late
// original response (if the channel ever wakes) is deduplicated upstream.
type dramMux struct {
	chans    []*muxChannel
	reqs     []*sim.Queue[dram.Request]
	resps    []*sim.Queue[dram.Response]
	rr       int
	policy   ChannelPolicy
	rowBytes uint64
	watchdog sim.Cycle

	forwarded      uint64
	returned       uint64
	resteered      uint64
	degradedCycles uint64 // cycles with ≥1 channel not healthy
	errs           []*DegradedError
}

func newDRAMMux(k *sim.Kernel, chans []*dram.DRAM, policy ChannelPolicy, watchdog int,
	reqs []*sim.Queue[dram.Request], resps []*sim.Queue[dram.Response]) *dramMux {
	if len(reqs) != len(resps) {
		panic(fmt.Sprintf("serve: mux port mismatch: %d req vs %d resp", len(reqs), len(resps)))
	}
	if len(chans) == 0 {
		panic("serve: mux with no channels")
	}
	if watchdog <= 0 {
		watchdog = chanWatchdogDefault
	}
	m := &dramMux{
		reqs: reqs, resps: resps, policy: policy,
		rowBytes: chans[0].Cfg.RowBytes, watchdog: sim.Cycle(watchdog),
	}
	for _, d := range chans {
		m.chans = append(m.chans, &muxChannel{d: d, cooldownMult: 1})
	}
	k.Add(m)
	return m
}

// prefer is the policy's native channel for a request — the channel that
// owns it when everything is healthy.
func (m *dramMux) prefer(shard int, addr uint64) int {
	if len(m.chans) == 1 {
		return 0
	}
	if m.policy == PolicyAffine {
		return shard % len(m.chans)
	}
	return int(addr / m.rowBytes % uint64(len(m.chans)))
}

// steer picks the channel a request actually goes to this cycle: the
// native channel when it is healthy (or probing with probe budget and
// room), else the next healthy channel by index with queue space, else
// -1 (nowhere to go — the request waits in its shard queue). Pure
// decision: push-side bookkeeping happens in noteForward after the push
// succeeds.
func (m *dramMux) steer(pref int) int {
	ch := m.chans[pref]
	switch ch.health {
	case chanHealthy:
		if ch.d.Req.CanPush() {
			return pref
		}
		// Transient fullness on a healthy channel is ordinary
		// backpressure, not degradation: hold rather than re-steer, so
		// single-channel semantics (and row locality) are preserved.
		return -1
	case chanProbing:
		if ch.probeSent < chanProbeNeed && ch.d.Req.CanPush() {
			return pref
		}
	}
	for i := 1; i < len(m.chans); i++ {
		c := (pref + i) % len(m.chans)
		if m.chans[c].health == chanHealthy && m.chans[c].d.Req.CanPush() {
			return c
		}
	}
	return -1
}

// noteForward records a successful push onto channel ci for a request
// natively owned by pref.
func (m *dramMux) noteForward(c sim.Cycle, pref, ci int) {
	m.forwarded++
	ch := m.chans[ci]
	ch.forwarded++
	if ci != pref {
		m.resteered++
		m.chans[pref].resteeredAway++
	}
	if ch.health == chanProbing {
		ch.probeSent++
		if ch.probeStart == 0 {
			ch.probeStart = c
		}
	}
}

// quarantine moves a channel to the quarantined state and records the
// typed degradation error.
func (m *dramMux) quarantine(c sim.Cycle, ci int, reason string) {
	ch := m.chans[ci]
	ch.health = chanQuarantined
	ch.quarantinedAt = c
	ch.quarantines++
	if len(m.errs) < chanMaxErrors {
		m.errs = append(m.errs, &DegradedError{Channel: ci, Cycle: uint64(c), Reason: reason})
	}
}

// updateHealth runs the per-channel failover state machine once per
// cycle, before any steering: watchdog detection, cooldown expiry, and
// probe verdicts all use the state as of the top of the cycle, so the
// decision sequence is identical at every TickWorkers setting.
func (m *dramMux) updateHealth(c sim.Cycle) {
	degraded := false
	for ci, ch := range m.chans {
		sig := ch.d.ActivityCount() + ch.returned
		if sig != ch.lastSig {
			ch.lastSig = sig
			ch.lastProgress = c
		}
		switch ch.health {
		case chanHealthy:
			hasWork := ch.d.Pending() > 0 || ch.d.Req.Len() > 0
			if len(m.chans) > 1 && hasWork && c-ch.lastProgress >= m.watchdog {
				m.quarantine(c, ci, fmt.Sprintf("no progress for %d cycles", c-ch.lastProgress))
			}
		case chanQuarantined:
			cooldown := sim.Cycle(chanCooldownBase * ch.cooldownMult)
			if c-ch.quarantinedAt >= cooldown {
				ch.health = chanProbing
				ch.probeSent = 0
				ch.probeStart = 0
				ch.probeBase = ch.returned
			}
		case chanProbing:
			if ch.returned-ch.probeBase >= chanProbeNeed {
				// The channel answered a full probe burst: re-admit and
				// reset the cooldown backoff.
				ch.health = chanHealthy
				ch.cooldownMult = 1
				ch.lastProgress = c
			} else if ch.probeStart > 0 && c-ch.probeStart >= chanProbeTimeout {
				if ch.cooldownMult < chanCooldownCap {
					ch.cooldownMult *= 2
				}
				m.quarantine(c, ci, fmt.Sprintf("probe timeout after %d cycles", c-ch.probeStart))
			}
		}
		if ch.health != chanHealthy {
			ch.quarantinedCycles++
			degraded = true
		}
	}
	if degraded {
		m.degradedCycles++
	}
}

// Tick implements sim.Component.
func (m *dramMux) Tick(c sim.Cycle) {
	m.updateHealth(c)

	// Responses first: route by shard tag. A full shard response queue
	// blocks head-of-line; the DRAM model's own respHold spill keeps the
	// channel itself from wedging behind it.
	for _, ch := range m.chans {
		for {
			r, ok := ch.d.Resp.Peek()
			if !ok {
				break
			}
			s := int(r.ID >> muxShardShift & muxShardMask)
			if s >= len(m.resps) {
				panic(fmt.Sprintf("serve: mux response with shard tag %d of %d", s, len(m.resps)))
			}
			if !m.resps[s].CanPush() {
				break
			}
			ch.d.Resp.Pop()
			r.ID &^= muxShardMask << muxShardShift
			m.resps[s].MustPush(r)
			ch.returned++
			m.returned++
		}
	}

	// Requests: round-robin across shards for fairness. Each pass pops
	// at most one request per shard; a shard whose target channel has no
	// room is skipped (head-of-line holds) and the loop ends when a full
	// pass makes no progress.
	for {
		advanced := false
		for i := 0; i < len(m.reqs); i++ {
			s := (m.rr + i) % len(m.reqs)
			rq, ok := m.reqs[s].Peek()
			if !ok {
				continue
			}
			pref := m.prefer(s, rq.Addr)
			ci := m.steer(pref)
			if ci < 0 {
				continue
			}
			m.reqs[s].Pop()
			rq.ID |= uint64(s) << muxShardShift
			m.chans[ci].d.Req.MustPush(rq)
			m.noteForward(c, pref, ci)
			advanced = true
			m.rr = (s + 1) % len(m.reqs)
		}
		if !advanced {
			break
		}
	}
}

// degraded reports whether any channel is currently not healthy, with
// the first still-standing quarantine's typed error.
func (m *dramMux) degraded() *DegradedError {
	for ci, ch := range m.chans {
		if ch.health != chanHealthy {
			for _, e := range m.errs {
				if e.Channel == ci {
					return e
				}
			}
			return &DegradedError{Channel: ci, Cycle: uint64(ch.quarantinedAt), Reason: "quarantined"}
		}
	}
	return nil
}

// DiagnoseName implements check.Diagnoser.
func (m *dramMux) DiagnoseName() string { return "mux" }

// Diagnose implements check.Diagnoser: per-channel health and traffic,
// for StallReports.
func (m *dramMux) Diagnose() []string {
	out := []string{fmt.Sprintf("policy=%s forwarded=%d returned=%d resteered=%d degraded_cycles=%d",
		m.policy, m.forwarded, m.returned, m.resteered, m.degradedCycles)}
	for ci, ch := range m.chans {
		out = append(out, fmt.Sprintf("channel%d: %s forwarded=%d returned=%d quarantines=%d pending=%d req=%d",
			ci, ch.health, ch.forwarded, ch.returned, ch.quarantines, ch.d.Pending(), ch.d.Req.Len()))
	}
	return out
}
