package serve

import (
	"testing"

	"xcache/internal/dram"
	"xcache/internal/mem"
	"xcache/internal/sim"
)

// TestMuxRoutesByShard: requests from distinct shard ports come back on
// the right port with the shard tag stripped, even when ids collide
// across shards.
func TestMuxRoutesByShard(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	base := img.AllocWords(64)
	for i := 0; i < 64; i++ {
		img.W64(base+uint64(i)*8, uint64(1000+i))
	}
	d := dram.New(k, dram.DefaultConfig(), img)

	const shards = 3
	reqs := make([]*sim.Queue[dram.Request], shards)
	resps := make([]*sim.Queue[dram.Response], shards)
	for i := range reqs {
		reqs[i] = sim.NewQueue[dram.Request](k, "t.req", 8)
		resps[i] = sim.NewQueue[dram.Response](k, "t.resp", 8)
	}
	newDRAMMux(k, []*dram.DRAM{d}, PolicyInterleave, 0, reqs, resps)

	// Same request id 7 on every shard, each reading a different word.
	for s := 0; s < shards; s++ {
		reqs[s].MustPush(dram.Request{ID: 7, Addr: base + uint64(s)*8, Words: 1})
	}
	got := map[int]dram.Response{}
	k.RunUntil(func() bool {
		for s := 0; s < shards; s++ {
			if r, ok := resps[s].Pop(); ok {
				if _, dup := got[s]; dup {
					t.Fatalf("shard %d answered twice", s)
				}
				got[s] = r
			}
		}
		return len(got) == shards
	}, 10_000)
	if len(got) != shards {
		t.Fatalf("only %d of %d responses arrived", len(got), shards)
	}
	for s, r := range got {
		if r.ID != 7 {
			t.Errorf("shard %d: id %d, want 7 (tag not stripped?)", s, r.ID)
		}
		if len(r.Data) != 1 || r.Data[0] != uint64(1000+s) {
			t.Errorf("shard %d: data %v, want [%d] — cross-shard routing", s, r.Data, 1000+s)
		}
	}
}

// TestMuxPreservesHighIDBits: the writeback flag (bit 63) survives the
// shard tagging round trip untouched.
func TestMuxTagBitsDisjoint(t *testing.T) {
	const wbFlag = uint64(1) << 63
	id := wbFlag | 0xdeadbeef
	tagged := id | uint64(5)<<muxShardShift
	if tagged&wbFlag == 0 {
		t.Fatal("tagging clobbered bit 63")
	}
	if got := int(tagged >> muxShardShift & muxShardMask); got != 5 {
		t.Fatalf("extracted shard %d, want 5", got)
	}
	if restored := tagged &^ (muxShardMask << muxShardShift); restored != id {
		t.Fatalf("restored id %#x, want %#x", restored, id)
	}
}

// TestMuxFairness: with both ports continuously loaded, neither shard
// starves: round-robin alternates service.
func TestMuxFairness(t *testing.T) {
	k := sim.NewKernel()
	img := mem.NewImage()
	base := img.AllocWords(8)
	d := dram.New(k, dram.DefaultConfig(), img)
	reqs := []*sim.Queue[dram.Request]{
		sim.NewQueue[dram.Request](k, "a.req", 64),
		sim.NewQueue[dram.Request](k, "b.req", 64),
	}
	resps := []*sim.Queue[dram.Response]{
		sim.NewQueue[dram.Response](k, "a.resp", 64),
		sim.NewQueue[dram.Response](k, "b.resp", 64),
	}
	newDRAMMux(k, []*dram.DRAM{d}, PolicyInterleave, 0, reqs, resps)

	const n = 32
	for i := 0; i < n; i++ {
		reqs[0].MustPush(dram.Request{ID: uint64(i), Addr: base, Words: 1})
		reqs[1].MustPush(dram.Request{ID: uint64(i), Addr: base, Words: 1})
	}
	var gotA, gotB int
	k.RunUntil(func() bool {
		for {
			if _, ok := resps[0].Pop(); ok {
				gotA++
				continue
			}
			break
		}
		for {
			if _, ok := resps[1].Pop(); ok {
				gotB++
				continue
			}
			break
		}
		return gotA == n && gotB == n
	}, 100_000)
	if gotA != n || gotB != n {
		t.Fatalf("responses: a=%d b=%d, want %d each — a port starved", gotA, gotB, n)
	}
}
