package serve

import "xcache/internal/stats"

// Report is the run summary xcache-serve emits as JSON. Every field is
// deterministic given (Config minus TickWorkers, Seed): the serial/
// parallel determinism test byte-compares two marshalled Reports, so
// nothing wall-clock-dependent — and no worker count — may appear here.
type Report struct {
	Config   ReportConfig    `json:"config"`
	Cycles   uint64          `json:"cycles"`
	Totals   Totals          `json:"totals"`
	Latency  Latency         `json:"latency"`
	Tenants  []TenantReport  `json:"tenants"`
	Shards   []ShardReport   `json:"shards"`
	DRAM     DRAMReport      `json:"dram"`
	SLO      *SLOReport      `json:"slo,omitempty"`
	Degraded *DegradedReport `json:"degraded,omitempty"`
	Faults   *FaultReport    `json:"faults,omitempty"`
}

// ReportConfig echoes the run parameters that shape the results.
type ReportConfig struct {
	Shards        int     `json:"shards"`
	Channels      int     `json:"channels"`
	ChannelPolicy string  `json:"channel_policy"`
	Tenants       string  `json:"tenants"` // canonical spec string
	TenantCount   int     `json:"tenant_count"`
	Keys          int     `json:"keys"`
	Duration      int     `json:"duration"`
	Seed          uint64  `json:"seed"`
	Overload      float64 `json:"overload"`
	IngressDepth  int     `json:"ingress_depth"`
	Deadline      int     `json:"deadline"`
	Timeout       int     `json:"timeout"`
	Retries       int     `json:"retries"`
	Backoff       int     `json:"backoff"`
	SLOEpoch      int     `json:"slo_epoch"`
}

// Totals is the service-wide ledger. Conservation holds exactly:
// generated == completed + shed + failed (pending is zero at report time).
type Totals struct {
	Generated uint64 `json:"generated"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Failed    uint64 `json:"failed"`
	Retries   uint64 `json:"retries"`

	// ThroughputKcycle is completed requests per thousand cycles.
	ThroughputKcycle float64 `json:"throughput_kcycle"`
	// ShedRate is shed / generated (0 when nothing was generated).
	ShedRate float64 `json:"shed_rate"`
}

// Latency summarises admission-to-completion latency in cycles. The
// percentiles are histogram-bucket upper bounds clamped to the observed
// maximum, so a single sample (or an all-equal window) reports every
// percentile at exactly that value, and no percentile ever exceeds Max.
type Latency struct {
	P50  uint64  `json:"p50"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

// TenantReport is one tenant's ledger and service quality.
type TenantReport struct {
	Tenant   int     `json:"tenant"`
	Group    int     `json:"group"`
	Priority int     `json:"priority"`
	Rate     float64 `json:"rate"`

	Generated      uint64 `json:"generated"`
	Completed      uint64 `json:"completed"`
	NotFound       uint64 `json:"not_found"`
	ShedRate       uint64 `json:"shed_rate_limit"`
	ShedQueue      uint64 `json:"shed_queue"`
	ShedBreaker    uint64 `json:"shed_breaker"`
	ShedSLO        uint64 `json:"shed_slo"`
	FailedDeadline uint64 `json:"failed_deadline"`
	FailedTrap     uint64 `json:"failed_trap"`
	Retries        uint64 `json:"retries"`

	Latency          Latency    `json:"latency"`
	ThroughputKcycle float64    `json:"throughput_kcycle"`
	SLO              *TenantSLO `json:"slo,omitempty"`
}

// TenantSLO is a governed tenant's latency-budget scorecard (present
// only when the tenant's group declared an SLO).
type TenantSLO struct {
	Target    uint64  `json:"target"` // p99 budget, cycles
	Factor    float64 `json:"factor"` // final admission factor, in [1/64, 1]
	Throttles uint64  `json:"throttles"`
	Met       uint64  `json:"met"`
	Measured  uint64  `json:"measured"` // completions + failures
	// Attainment is met/measured: the fraction of governed outcomes
	// (failures count as misses) inside the budget.
	Attainment float64 `json:"attainment"`
}

// SLOReport is the fleet SLO scorecard: attainment per priority level
// with an SLO, cumulative and as a per-epoch series (for convergence
// and recovery plots). -1 in the series marks an epoch with no governed
// traffic at that priority.
type SLOReport struct {
	Epoch      int           `json:"epoch_cycles"`
	Attainment []SLOPriority `json:"attainment"`
}

// SLOPriority is one priority level's SLO attainment.
type SLOPriority struct {
	Priority   int       `json:"priority"`
	Met        uint64    `json:"met"`
	Measured   uint64    `json:"measured"`
	Attainment float64   `json:"attainment"`
	Series     []float64 `json:"series"`
}

// ShardReport is one shard's traffic, backpressure and breaker history.
type ShardReport struct {
	Shard     int    `json:"shard"`
	Forwarded uint64 `json:"forwarded"`
	Timeouts  uint64 `json:"timeouts"`
	BPCycles  uint64 `json:"backpressure_cycles"`

	BreakerState      string `json:"breaker_state"`
	BreakerTrips      uint64 `json:"breaker_trips"`
	BreakerOpenCycles uint64 `json:"breaker_open_cycles"`

	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Traps         uint64 `json:"traps"`
	StallCycles   uint64 `json:"stall_cycles"`
	FillRetries   uint64 `json:"fill_retries"`
	SpuriousFills uint64 `json:"spurious_fills"`
	ParityScrubs  uint64 `json:"parity_scrubs"`
}

// DRAMReport is the memory subsystem's pressure summary: totals across
// every channel (PeakPending is the max over channels, the rest are
// sums) plus the per-channel breakdown.
type DRAMReport struct {
	Reads       uint64 `json:"reads"`
	Writes      uint64 `json:"writes"`
	RowHits     uint64 `json:"row_hits"`
	RowMisses   uint64 `json:"row_misses"`
	BusBusy     uint64 `json:"bus_busy"`
	PeakPending int    `json:"peak_pending"`

	Channels []ChannelReport `json:"channels"`
}

// ChannelReport is one DRAM channel's traffic, utilization and failover
// history.
type ChannelReport struct {
	Channel int    `json:"channel"`
	State   string `json:"state"` // health at end of run

	Reads     uint64 `json:"reads"`
	Writes    uint64 `json:"writes"`
	RowHits   uint64 `json:"row_hits"`
	RowMisses uint64 `json:"row_misses"`
	BusBusy   uint64 `json:"bus_busy"`
	// Utilization is BusBusy / run cycles: the fraction of the run this
	// channel's data bus was transferring.
	Utilization float64 `json:"utilization"`
	PeakPending int     `json:"peak_pending"`

	Forwarded         uint64 `json:"forwarded"`
	Returned          uint64 `json:"returned"`
	Resteered         uint64 `json:"resteered"` // natively-owned requests steered elsewhere
	Quarantines       uint64 `json:"quarantines"`
	QuarantinedCycles uint64 `json:"quarantined_cycles"`

	OutageCycles uint64 `json:"outage_cycles"`
	StallCycles  uint64 `json:"stall_cycles"`
	BurstDelays  uint64 `json:"burst_delays"`
}

// DegradedReport summarises channel failover activity (present only
// when at least one channel was quarantined during the run). Errors
// holds the typed ErrDegraded records, in quarantine order.
type DegradedReport struct {
	DegradedCycles uint64   `json:"degraded_cycles"` // cycles with ≥1 unhealthy channel
	Resteered      uint64   `json:"resteered"`
	Quarantines    uint64   `json:"quarantines"`
	EndedDegraded  bool     `json:"ended_degraded"` // a channel was still unhealthy at exit
	Errors         []string `json:"errors"`
}

// FaultReport counts the chaos actually injected (present only when
// fault injection was configured).
type FaultReport struct {
	Drops      uint64 `json:"drops"`
	Delays     uint64 `json:"delays"`
	Clogs      uint64 `json:"clogs"`
	Flips      uint64 `json:"flips"`
	ChanFaults uint64 `json:"chan_faults"`
}

// latencyOf folds a histogram into the Latency summary. Percentiles are
// the histogram's bucket-top upper bounds clamped to the observed max:
// the clamp pins the degenerate windows (single sample, all-equal
// samples) to the exact value instead of a power-of-two overestimate,
// and keeps every percentile ≤ Max. An empty window is all zeros.
func latencyOf(h *stats.Histogram, sum, max, n uint64) Latency {
	l := Latency{Max: max}
	if n == 0 {
		return l
	}
	clamp := func(v uint64) uint64 {
		if v > max {
			return max
		}
		return v
	}
	l.P50 = clamp(h.Percentile(0.50))
	l.P99 = clamp(h.Percentile(0.99))
	l.P999 = clamp(h.Percentile(0.999))
	l.Mean = float64(sum) / float64(n)
	return l
}

func (s *Service) report() *Report {
	cycles := uint64(s.K.Cycle())
	r := &Report{
		Config: ReportConfig{
			Shards: s.Cfg.Shards, Channels: s.Cfg.Channels,
			ChannelPolicy: s.Cfg.ChannelPolicy.String(),
			Tenants:       FormatTenantSpec(s.Cfg.Tenants),
			TenantCount:   len(s.tenants), Keys: s.Cfg.Keys,
			Duration: s.Cfg.Duration, Seed: s.Cfg.Seed, Overload: s.Cfg.Overload,
			IngressDepth: s.Cfg.IngressDepth, Deadline: s.Cfg.Deadline,
			Timeout: s.Cfg.Timeout, Retries: s.Cfg.Retries, Backoff: s.Cfg.Backoff,
			SLOEpoch: s.Cfg.SLOEpoch,
		},
		Cycles: cycles,
	}

	var all stats.Histogram
	var allSum, allMax, allCompleted uint64
	kcycles := float64(cycles) / 1000
	for ti := range s.tenants {
		t := &s.tenants[ti]
		tr := TenantReport{
			Tenant: ti, Group: t.group, Priority: t.prio, Rate: t.rate,
			Generated: t.generated, Completed: t.completed, NotFound: t.notFound,
			ShedRate: t.shedRate, ShedQueue: t.shedQueue, ShedBreaker: t.shedBreaker,
			ShedSLO:        t.shedSLO,
			FailedDeadline: t.failedDeadline, FailedTrap: t.failedTrap,
			Retries: t.retries,
			Latency: latencyOf(&t.lat, t.latSum, t.latMax, t.completed-t.notFound),
		}
		if kcycles > 0 {
			tr.ThroughputKcycle = float64(t.completed) / kcycles
		}
		if t.slo > 0 {
			ts := &TenantSLO{
				Target: t.slo, Factor: t.sloFactor, Throttles: t.sloThrottles,
				Met: t.sloMet, Measured: t.sloMeasured,
			}
			if ts.Measured > 0 {
				ts.Attainment = float64(ts.Met) / float64(ts.Measured)
			}
			tr.SLO = ts
		}
		r.Tenants = append(r.Tenants, tr)
		all.Merge(&t.lat)
		allSum += t.latSum
		if t.latMax > allMax {
			allMax = t.latMax
		}
		allCompleted += t.completed - t.notFound
	}
	r.Latency = latencyOf(&all, allSum, allMax, allCompleted)
	r.Totals = Totals{
		Generated: s.accepted, Completed: s.completed, Shed: s.shed,
		Failed: s.failed, Retries: s.reissues,
	}
	if kcycles > 0 {
		r.Totals.ThroughputKcycle = float64(s.completed) / kcycles
	}
	if s.accepted > 0 {
		r.Totals.ShedRate = float64(s.shed) / float64(s.accepted)
	}

	if s.sloAny {
		sr := &SLOReport{Epoch: s.Cfg.SLOEpoch}
		for p := 0; p < len(s.sloGoverned); p++ {
			if !s.sloGoverned[p] {
				continue
			}
			sp := SLOPriority{Priority: p, Series: s.sloSeries[p]}
			for ti := range s.tenants {
				if t := &s.tenants[ti]; t.prio == p && t.slo > 0 {
					sp.Met += t.sloMet
					sp.Measured += t.sloMeasured
				}
			}
			if sp.Measured > 0 {
				sp.Attainment = float64(sp.Met) / float64(sp.Measured)
			}
			sr.Attainment = append(sr.Attainment, sp)
		}
		r.SLO = sr
	}

	for _, sh := range s.shards {
		cs := sh.cache.Ctrl.Stats()
		r.Shards = append(r.Shards, ShardReport{
			Shard: sh.idx, Forwarded: sh.forwarded, Timeouts: sh.timeouts,
			BPCycles:     sh.bpCycles,
			BreakerState: sh.br.state.String(), BreakerTrips: sh.br.trips,
			BreakerOpenCycles: sh.br.openCycles,
			Hits:              cs.Hits, Misses: cs.Misses, Traps: cs.Traps,
			StallCycles: cs.StallCycles, FillRetries: cs.FillRetries,
			SpuriousFills: cs.SpuriousFills, ParityScrubs: cs.ParityScrubs,
		})
	}

	for ci, ch := range s.mux.chans {
		ds := ch.d.Stats()
		cr := ChannelReport{
			Channel: ci, State: ch.health.String(),
			Reads: ds.Reads, Writes: ds.Writes, RowHits: ds.RowHits,
			RowMisses: ds.RowMisses, BusBusy: ds.BusBusy, PeakPending: ds.PeakPending,
			Forwarded: ch.forwarded, Returned: ch.returned, Resteered: ch.resteeredAway,
			Quarantines: ch.quarantines, QuarantinedCycles: ch.quarantinedCycles,
			OutageCycles: ds.OutageCycles, StallCycles: ds.StallCycles,
			BurstDelays: ds.BurstDelays,
		}
		if cycles > 0 {
			cr.Utilization = float64(ds.BusBusy) / float64(cycles)
		}
		r.DRAM.Channels = append(r.DRAM.Channels, cr)
		r.DRAM.Reads += ds.Reads
		r.DRAM.Writes += ds.Writes
		r.DRAM.RowHits += ds.RowHits
		r.DRAM.RowMisses += ds.RowMisses
		r.DRAM.BusBusy += ds.BusBusy
		if ds.PeakPending > r.DRAM.PeakPending {
			r.DRAM.PeakPending = ds.PeakPending
		}
	}

	var quarantines uint64
	for _, ch := range s.mux.chans {
		quarantines += ch.quarantines
	}
	if quarantines > 0 {
		dr := &DegradedReport{
			DegradedCycles: s.mux.degradedCycles, Resteered: s.mux.resteered,
			Quarantines: quarantines, EndedDegraded: s.mux.degraded() != nil,
		}
		for _, e := range s.mux.errs {
			dr.Errors = append(dr.Errors, e.Error())
		}
		r.Degraded = dr
	}

	if s.inj != nil {
		r.Faults = &FaultReport{
			Drops: s.inj.Drops, Delays: s.inj.Delays,
			Clogs: s.inj.Clogs, Flips: s.inj.Flips,
			ChanFaults: s.inj.ChanFaults,
		}
	}
	return r
}
