package serve

import "xcache/internal/stats"

// Report is the run summary xcache-serve emits as JSON. Every field is
// deterministic given (Config minus TickWorkers, Seed): the serial/
// parallel determinism test byte-compares two marshalled Reports, so
// nothing wall-clock-dependent — and no worker count — may appear here.
type Report struct {
	Config  ReportConfig   `json:"config"`
	Cycles  uint64         `json:"cycles"`
	Totals  Totals         `json:"totals"`
	Latency Latency        `json:"latency"`
	Tenants []TenantReport `json:"tenants"`
	Shards  []ShardReport  `json:"shards"`
	DRAM    DRAMReport     `json:"dram"`
	Faults  *FaultReport   `json:"faults,omitempty"`
}

// ReportConfig echoes the run parameters that shape the results.
type ReportConfig struct {
	Shards       int     `json:"shards"`
	Tenants      string  `json:"tenants"` // canonical spec string
	TenantCount  int     `json:"tenant_count"`
	Keys         int     `json:"keys"`
	Duration     int     `json:"duration"`
	Seed         uint64  `json:"seed"`
	Overload     float64 `json:"overload"`
	IngressDepth int     `json:"ingress_depth"`
	Deadline     int     `json:"deadline"`
	Timeout      int     `json:"timeout"`
	Retries      int     `json:"retries"`
	Backoff      int     `json:"backoff"`
}

// Totals is the service-wide ledger. Conservation holds exactly:
// generated == completed + shed + failed (pending is zero at report time).
type Totals struct {
	Generated uint64 `json:"generated"`
	Completed uint64 `json:"completed"`
	Shed      uint64 `json:"shed"`
	Failed    uint64 `json:"failed"`
	Retries   uint64 `json:"retries"`

	// ThroughputKcycle is completed requests per thousand cycles.
	ThroughputKcycle float64 `json:"throughput_kcycle"`
	// ShedRate is shed / generated (0 when nothing was generated).
	ShedRate float64 `json:"shed_rate"`
}

// Latency summarises admission-to-completion latency in cycles.
type Latency struct {
	P50  uint64  `json:"p50"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

// TenantReport is one tenant's ledger and service quality.
type TenantReport struct {
	Tenant   int     `json:"tenant"`
	Group    int     `json:"group"`
	Priority int     `json:"priority"`
	Rate     float64 `json:"rate"`

	Generated      uint64 `json:"generated"`
	Completed      uint64 `json:"completed"`
	NotFound       uint64 `json:"not_found"`
	ShedRate       uint64 `json:"shed_rate_limit"`
	ShedQueue      uint64 `json:"shed_queue"`
	ShedBreaker    uint64 `json:"shed_breaker"`
	FailedDeadline uint64 `json:"failed_deadline"`
	FailedTrap     uint64 `json:"failed_trap"`
	Retries        uint64 `json:"retries"`

	Latency          Latency `json:"latency"`
	ThroughputKcycle float64 `json:"throughput_kcycle"`
}

// ShardReport is one shard's traffic, backpressure and breaker history.
type ShardReport struct {
	Shard     int    `json:"shard"`
	Forwarded uint64 `json:"forwarded"`
	Timeouts  uint64 `json:"timeouts"`
	BPCycles  uint64 `json:"backpressure_cycles"`

	BreakerState      string `json:"breaker_state"`
	BreakerTrips      uint64 `json:"breaker_trips"`
	BreakerOpenCycles uint64 `json:"breaker_open_cycles"`

	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Traps         uint64 `json:"traps"`
	StallCycles   uint64 `json:"stall_cycles"`
	FillRetries   uint64 `json:"fill_retries"`
	SpuriousFills uint64 `json:"spurious_fills"`
	ParityScrubs  uint64 `json:"parity_scrubs"`
}

// DRAMReport is the shared channel's pressure summary.
type DRAMReport struct {
	Reads       uint64 `json:"reads"`
	Writes      uint64 `json:"writes"`
	RowHits     uint64 `json:"row_hits"`
	RowMisses   uint64 `json:"row_misses"`
	BusBusy     uint64 `json:"bus_busy"`
	PeakPending int    `json:"peak_pending"`
}

// FaultReport counts the chaos actually injected (present only when
// fault injection was configured).
type FaultReport struct {
	Drops  uint64 `json:"drops"`
	Delays uint64 `json:"delays"`
	Clogs  uint64 `json:"clogs"`
	Flips  uint64 `json:"flips"`
}

func latencyOf(h *stats.Histogram, sum, max, n uint64) Latency {
	l := Latency{Max: max}
	if n == 0 {
		return l
	}
	l.P50 = h.Percentile(0.50)
	l.P99 = h.Percentile(0.99)
	l.P999 = h.Percentile(0.999)
	l.Mean = float64(sum) / float64(n)
	return l
}

func (s *Service) report() *Report {
	cycles := uint64(s.K.Cycle())
	r := &Report{
		Config: ReportConfig{
			Shards: s.Cfg.Shards, Tenants: FormatTenantSpec(s.Cfg.Tenants),
			TenantCount: len(s.tenants), Keys: s.Cfg.Keys,
			Duration: s.Cfg.Duration, Seed: s.Cfg.Seed, Overload: s.Cfg.Overload,
			IngressDepth: s.Cfg.IngressDepth, Deadline: s.Cfg.Deadline,
			Timeout: s.Cfg.Timeout, Retries: s.Cfg.Retries, Backoff: s.Cfg.Backoff,
		},
		Cycles: cycles,
	}

	var all stats.Histogram
	var allSum, allMax, allCompleted uint64
	kcycles := float64(cycles) / 1000
	for ti := range s.tenants {
		t := &s.tenants[ti]
		tr := TenantReport{
			Tenant: ti, Group: t.group, Priority: t.prio, Rate: t.rate,
			Generated: t.generated, Completed: t.completed, NotFound: t.notFound,
			ShedRate: t.shedRate, ShedQueue: t.shedQueue, ShedBreaker: t.shedBreaker,
			FailedDeadline: t.failedDeadline, FailedTrap: t.failedTrap,
			Retries: t.retries,
			Latency: latencyOf(&t.lat, t.latSum, t.latMax, t.completed-t.notFound),
		}
		if kcycles > 0 {
			tr.ThroughputKcycle = float64(t.completed) / kcycles
		}
		r.Tenants = append(r.Tenants, tr)
		all.Merge(&t.lat)
		allSum += t.latSum
		if t.latMax > allMax {
			allMax = t.latMax
		}
		allCompleted += t.completed - t.notFound
	}
	r.Latency = latencyOf(&all, allSum, allMax, allCompleted)
	r.Totals = Totals{
		Generated: s.accepted, Completed: s.completed, Shed: s.shed,
		Failed: s.failed, Retries: s.reissues,
	}
	if kcycles > 0 {
		r.Totals.ThroughputKcycle = float64(s.completed) / kcycles
	}
	if s.accepted > 0 {
		r.Totals.ShedRate = float64(s.shed) / float64(s.accepted)
	}

	for _, sh := range s.shards {
		cs := sh.cache.Ctrl.Stats()
		r.Shards = append(r.Shards, ShardReport{
			Shard: sh.idx, Forwarded: sh.forwarded, Timeouts: sh.timeouts,
			BPCycles:     sh.bpCycles,
			BreakerState: sh.br.state.String(), BreakerTrips: sh.br.trips,
			BreakerOpenCycles: sh.br.openCycles,
			Hits:              cs.Hits, Misses: cs.Misses, Traps: cs.Traps,
			StallCycles: cs.StallCycles, FillRetries: cs.FillRetries,
			SpuriousFills: cs.SpuriousFills, ParityScrubs: cs.ParityScrubs,
		})
	}

	ds := s.d.Stats()
	r.DRAM = DRAMReport{
		Reads: ds.Reads, Writes: ds.Writes, RowHits: ds.RowHits,
		RowMisses: ds.RowMisses, BusBusy: ds.BusBusy, PeakPending: ds.PeakPending,
	}
	if s.inj != nil {
		r.Faults = &FaultReport{
			Drops: s.inj.Drops, Delays: s.inj.Delays,
			Clogs: s.inj.Clogs, Flips: s.inj.Flips,
		}
	}
	return r
}
