package serve

import (
	"testing"

	"xcache/internal/stats"
)

// TestLatencyOf pins the percentile summary's edge cases: an empty
// window is all zeros, a single sample reports itself at every
// percentile, all-equal samples collapse to that value, and mixed
// distributions clamp bucket-top estimates to the observed max.
func TestLatencyOf(t *testing.T) {
	fold := func(samples []uint64) Latency {
		var h stats.Histogram
		var sum, max uint64
		for _, v := range samples {
			h.Add(v)
			sum += v
			if v > max {
				max = v
			}
		}
		return latencyOf(&h, sum, max, uint64(len(samples)))
	}

	cases := []struct {
		name    string
		samples []uint64
		want    Latency
	}{
		{
			name:    "empty window",
			samples: nil,
			want:    Latency{},
		},
		{
			name:    "single sample",
			samples: []uint64{137},
			want:    Latency{P50: 137, P99: 137, P999: 137, Max: 137, Mean: 137},
		},
		{
			name:    "single zero sample",
			samples: []uint64{0},
			want:    Latency{},
		},
		{
			name:    "all equal",
			samples: []uint64{500, 500, 500, 500},
			want:    Latency{P50: 500, P99: 500, P999: 500, Max: 500, Mean: 500},
		},
		{
			// 9 samples in bucket [64,128), one at 1000: p50 reports the
			// low bucket's top (127), tail percentiles land in the high
			// bucket and clamp to the observed max rather than the
			// bucket top 1023.
			name:    "tail clamps to observed max",
			samples: []uint64{100, 100, 100, 100, 100, 100, 100, 100, 100, 1000},
			want:    Latency{P50: 127, P99: 1000, P999: 1000, Max: 1000, Mean: 190},
		},
		{
			// All samples share one power-of-two bucket [64,128): every
			// percentile reports the bucket top clamped to the max.
			name:    "one bucket spread",
			samples: []uint64{64, 100, 120},
			want:    Latency{P50: 120, P99: 120, P999: 120, Max: 120, Mean: 284.0 / 3},
		},
	}
	for _, tc := range cases {
		got := fold(tc.samples)
		if got != tc.want {
			t.Errorf("%s: latencyOf = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// TestLatencyPercentilesMonotone: for any sample set, p50 ≤ p99 ≤ p999 ≤
// max — the clamp must never invert the ordering.
func TestLatencyPercentilesMonotone(t *testing.T) {
	sets := [][]uint64{
		{1},
		{1, 2, 3, 4, 5, 6, 7, 8},
		{10, 10, 10, 10_000},
		{0, 0, 0, 1},
		{1 << 20, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
	}
	for _, samples := range sets {
		var h stats.Histogram
		var sum, max uint64
		for _, v := range samples {
			h.Add(v)
			sum += v
			if v > max {
				max = v
			}
		}
		l := latencyOf(&h, sum, max, uint64(len(samples)))
		if l.P50 > l.P99 || l.P99 > l.P999 || l.P999 > l.Max {
			t.Errorf("samples %v: percentiles not monotone: %+v", samples, l)
		}
	}
}
