package serve

import "math"

// The service's randomness follows internal/check's injector discipline:
// every decision is a stateless splitmix64-style hash of (seed, stream,
// cycle, salt). No hidden PRNG state means a run is exactly reproducible
// from its seed regardless of tick order, worker count, or which fault
// classes are enabled — the property the chaos soak's byte-stable-JSON
// assertion rests on.
const (
	streamArrival = 101 + iota // per-tenant per-cycle arrival gate
	streamKey                  // key choice for an arrival
	streamPhase                // per-tenant burst phase offset
)

func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// roll returns a uniform value in [0,1) determined entirely by the seed,
// the stream, and the two salts.
func roll(seed, stream, a, b uint64) float64 {
	z := seed ^ stream*0x9e3779b97f4a7c15 ^ a*0xff51afd7ed558ccd ^ b*0xc4ceb9fe1a85ec53
	return float64(mix64(z)>>11) / (1 << 53)
}

// zipfKey maps a uniform u in [0,1) onto [0, n) with a power-law
// popularity of exponent s via the continuous inverse-CDF approximation:
// low keys are hot, the tail is cold. s = 0 degenerates to uniform.
func zipfKey(u float64, n int, s float64) uint64 {
	if n <= 1 {
		return 0
	}
	fn := float64(n)
	var x float64
	switch {
	case s == 0:
		x = u*fn + 1
	case math.Abs(s-1) < 1e-9:
		x = math.Pow(fn, u)
	default:
		x = math.Pow((math.Pow(fn, 1-s)-1)*u+1, 1/(1-s))
	}
	k := uint64(x) - 1
	if k >= uint64(n) {
		k = uint64(n) - 1
	}
	return k
}
